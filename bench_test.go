// Benchmarks regenerating the paper's tables and figures: one testing.B
// benchmark per artifact (see DESIGN.md §5 for the experiment index).
// Each benchmark runs a scaled-down version of its experiment and reports
// the headline quantities via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// reproduces the shape of every result. cmd/experiments runs the same
// experiments at full suite scale with tabular output.
package frontsim_test

import (
	"testing"

	"frontsim/internal/asmdb"
	"frontsim/internal/cfg"
	"frontsim/internal/core"
	"frontsim/internal/experiment"
	"frontsim/internal/feedback"
	"frontsim/internal/hwpf"
	"frontsim/internal/obs"
	"frontsim/internal/preload"
	"frontsim/internal/program"
	"frontsim/internal/runner"
	"frontsim/internal/stats"
	"frontsim/internal/trace"
	"frontsim/internal/workload"
)

// benchParams returns the scaled-down experiment parameters used by every
// benchmark.
func benchParams() experiment.Params {
	p := experiment.DefaultParams()
	p.WarmupInstrs = 150_000
	p.MeasureInstrs = 400_000
	p.ProfileInstrs = 500_000
	return p
}

// benchSpecs is the representative sub-suite (one crypto, two int, three
// srv) the benchmarks sweep; the full 48 run through cmd/experiments.
func benchSpecs() []workload.Spec {
	names := []string{
		"secret_crypto52", "secret_int_44", "secret_int_124",
		"public_srv_60", "secret_srv12", "secret_srv41",
	}
	out := make([]workload.Spec, 0, len(names))
	for _, n := range names {
		s, ok := workload.Lookup(n)
		if !ok {
			panic("missing workload " + n)
		}
		out = append(out, s)
	}
	return out
}

// runSuite regenerates the benchmark sub-suite, optionally through a run
// cache — pass nil for the always-cold path the figure benchmarks use, or
// a runner.Cache to measure cold/warm cache behavior.
func runSuite(b *testing.B, c *runner.Cache) []*experiment.Matrix {
	b.Helper()
	p := benchParams()
	p.Cache = c
	ms, err := experiment.RunSuite(benchSpecs(), p, nil)
	if err != nil {
		b.Fatal(err)
	}
	return ms
}

func speedups(ms []*experiment.Matrix, f func(*experiment.Matrix) core.Stats) []float64 {
	out := make([]float64, len(ms))
	for i, m := range ms {
		out[i] = m.Speedup(f(m))
	}
	return out
}

// BenchmarkTable1Config regenerates Table I (machine parameters) and
// verifies the configuration validates; reported metric is the FTQ depth
// ratio between the two front-ends.
func BenchmarkTable1Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiment.TableI()
		if len(t.Rows) == 0 {
			b.Fatal("empty Table I")
		}
		if err := core.DefaultConfig().Validate(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(core.DefaultConfig().Frontend.FTQEntries), "ftq-industry")
	b.ReportMetric(float64(core.ConservativeConfig().Frontend.FTQEntries), "ftq-conservative")
}

// BenchmarkFigure1IPC regenerates Figure 1: IPC speedups over the
// conservative baseline for every series (geomean reported).
func BenchmarkFigure1IPC(b *testing.B) {
	var ms []*experiment.Matrix
	for i := 0; i < b.N; i++ {
		ms = runSuite(b, nil)
	}
	b.ReportMetric(stats.Geomean(speedups(ms, func(m *experiment.Matrix) core.Stats { return m.AsmdbCons })), "asmdb")
	b.ReportMetric(stats.Geomean(speedups(ms, func(m *experiment.Matrix) core.Stats { return m.AsmdbConsIdeal })), "asmdb-ideal")
	b.ReportMetric(stats.Geomean(speedups(ms, func(m *experiment.Matrix) core.Stats { return m.FDP })), "fdp24")
	b.ReportMetric(stats.Geomean(speedups(ms, func(m *experiment.Matrix) core.Stats { return m.AsmdbFDP })), "asmdb+fdp24")
	b.ReportMetric(stats.Geomean(speedups(ms, func(m *experiment.Matrix) core.Stats { return m.AsmdbFDPIdeal })), "ideal+fdp24")
	b.ReportMetric(stats.Geomean(speedups(ms, func(m *experiment.Matrix) core.Stats { return m.EIPFDP })), "eip+fdp24")
}

// BenchmarkFigure7Bloat regenerates Figure 7: static and dynamic code
// bloat from AsmDB's insertions (averages reported, percent).
func BenchmarkFigure7Bloat(b *testing.B) {
	var ms []*experiment.Matrix
	for i := 0; i < b.N; i++ {
		ms = runSuite(b, nil)
	}
	var static, dynamic []float64
	for _, m := range ms {
		static = append(static, 100*m.StaticBloat)
		dynamic = append(dynamic, 100*m.AsmdbFDP.DynamicBloat())
	}
	b.ReportMetric(stats.Mean(static), "static-bloat-%")
	b.ReportMetric(stats.Mean(dynamic), "dynamic-bloat-%")
}

// BenchmarkFigure8FetchLatency regenerates Figure 8: average cycles to
// fetch head vs non-head FTQ entries at both depths.
func BenchmarkFigure8FetchLatency(b *testing.B) {
	var ms []*experiment.Matrix
	for i := 0; i < b.N; i++ {
		ms = runSuite(b, nil)
	}
	mean := func(f func(*experiment.Matrix) float64) float64 {
		var xs []float64
		for _, m := range ms {
			xs = append(xs, f(m))
		}
		return stats.Mean(xs)
	}
	b.ReportMetric(mean(func(m *experiment.Matrix) float64 { return m.FDP.FTQ.AvgHeadFetch() }), "head@24-cyc")
	b.ReportMetric(mean(func(m *experiment.Matrix) float64 { return m.Cons.FTQ.AvgHeadFetch() }), "head@2-cyc")
	b.ReportMetric(mean(func(m *experiment.Matrix) float64 { return m.FDP.FTQ.AvgNonHeadFetch() }), "nonhead@24-cyc")
	b.ReportMetric(mean(func(m *experiment.Matrix) float64 { return m.Cons.FTQ.AvgNonHeadFetch() }), "nonhead@2-cyc")
}

// stallMetric reports a per-million-instruction FTQ counter across the
// Fig 9/10/11 series.
func stallMetric(b *testing.B, ms []*experiment.Matrix, metric func(core.Stats) int64) {
	per := func(st core.Stats) float64 {
		if st.Instructions == 0 {
			return 0
		}
		return float64(metric(st)) / float64(st.Instructions) * 1e6
	}
	mean := func(f func(*experiment.Matrix) core.Stats) float64 {
		var xs []float64
		for _, m := range ms {
			xs = append(xs, per(f(m)))
		}
		return stats.Mean(xs)
	}
	b.ReportMetric(mean(func(m *experiment.Matrix) core.Stats { return m.Cons }), "ftq2")
	b.ReportMetric(mean(func(m *experiment.Matrix) core.Stats { return m.AsmdbCons }), "ftq2+asmdb")
	b.ReportMetric(mean(func(m *experiment.Matrix) core.Stats { return m.FDP }), "ftq24")
	b.ReportMetric(mean(func(m *experiment.Matrix) core.Stats { return m.AsmdbFDP }), "ftq24+asmdb")
}

// BenchmarkFigure9HeadStalls regenerates Figure 9: head-entry stall cycles.
func BenchmarkFigure9HeadStalls(b *testing.B) {
	var ms []*experiment.Matrix
	for i := 0; i < b.N; i++ {
		ms = runSuite(b, nil)
	}
	stallMetric(b, ms, func(st core.Stats) int64 { return st.FTQ.HeadStallCycles })
}

// BenchmarkFigure10Waiting regenerates Figure 10: entries waiting behind a
// stalling head.
func BenchmarkFigure10Waiting(b *testing.B) {
	var ms []*experiment.Matrix
	for i := 0; i < b.N; i++ {
		ms = runSuite(b, nil)
	}
	stallMetric(b, ms, func(st core.Stats) int64 { return st.FTQ.WaitingEntryCycles })
}

// BenchmarkFigure11Partial regenerates Figure 11: Scenario-3 entries
// promoted to head before completing fetch.
func BenchmarkFigure11Partial(b *testing.B) {
	var ms []*experiment.Matrix
	for i := 0; i < b.N; i++ {
		ms = runSuite(b, nil)
	}
	stallMetric(b, ms, func(st core.Stats) int64 { return st.FTQ.PartialEntries })
}

// BenchmarkMethodologyMPKI regenerates the §IV workload characterization:
// the L1-I MPKI band on the 24-entry baseline.
func BenchmarkMethodologyMPKI(b *testing.B) {
	var ms []*experiment.Matrix
	for i := 0; i < b.N; i++ {
		ms = runSuite(b, nil)
	}
	var mpki []float64
	for _, m := range ms {
		mpki = append(mpki, m.FDP.L1IMPKI())
	}
	b.ReportMetric(stats.Min(mpki), "mpki-min")
	b.ReportMetric(stats.Mean(mpki), "mpki-mean")
	b.ReportMetric(stats.Max(mpki), "mpki-max")
}

// BenchmarkL1IAccessReduction regenerates the §V-B observation: the deep
// FTQ's same-line merging reduces L1-I accesses versus the 2-entry FTQ.
func BenchmarkL1IAccessReduction(b *testing.B) {
	var ms []*experiment.Matrix
	for i := 0; i < b.N; i++ {
		ms = runSuite(b, nil)
	}
	var reductions []float64
	for _, m := range ms {
		a2 := float64(m.Cons.L1I.Accesses) / float64(m.Cons.Instructions)
		a24 := float64(m.FDP.L1I.Accesses) / float64(m.FDP.Instructions)
		if a2 > 0 {
			reductions = append(reductions, 100*(1-a24/a2))
		}
	}
	b.ReportMetric(stats.Mean(reductions), "l1i-access-reduction-%")
}

// benchOneWorkload builds the standard single-workload AsmDB pipeline used
// by the extension benchmarks.
func benchPipeline(b *testing.B, name string) (*program.Program, *cfg.Graph, *asmdb.Plan, uint64) {
	b.Helper()
	spec, _ := workload.Lookup(name)
	prog, err := spec.Build()
	if err != nil {
		b.Fatal(err)
	}
	seed := spec.Seed ^ 0x5eed5eed5eed5eed
	graph, err := cfg.Profile(trace.NewLimit(program.NewExecutor(prog, seed), 500_000), cfg.Options{IPC: 0.5})
	if err != nil {
		b.Fatal(err)
	}
	plan, err := asmdb.Build(graph, asmdb.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	return prog, graph, plan, seed
}

// BenchmarkExtensionPreload runs the §VI metadata-preloading prototype on
// the industry front-end and reports its speedup over plain FDP.
func BenchmarkExtensionPreload(b *testing.B) {
	prog, _, plan, seed := benchPipeline(b, "public_srv_60")
	var fdpIPC, preIPC float64
	for i := 0; i < b.N; i++ {
		mk := func() core.Config {
			c := core.DefaultConfig()
			c.WarmupInstrs, c.MaxInstrs = 150_000, 400_000
			return c
		}
		base, err := core.RunSource(mk(), program.NewExecutor(prog, seed))
		if err != nil {
			b.Fatal(err)
		}
		pl, err := preload.New(preload.DefaultConfig(), plan)
		if err != nil {
			b.Fatal(err)
		}
		c := mk()
		c.Frontend.Prefetcher = pl
		st, err := core.RunSource(c, program.NewExecutor(prog, seed))
		if err != nil {
			b.Fatal(err)
		}
		fdpIPC, preIPC = base.IPC(), st.IPC()
	}
	b.ReportMetric(fdpIPC, "fdp-ipc")
	b.ReportMetric(preIPC, "preload-ipc")
	b.ReportMetric(preIPC/fdpIPC, "speedup")
}

// BenchmarkExtensionFeedback runs the §VI feedback-directed tuning loop
// and reports the best candidate's speedup over the untuned baseline.
func BenchmarkExtensionFeedback(b *testing.B) {
	prog, graph, _, seed := benchPipeline(b, "public_srv_60")
	var best float64
	for i := 0; i < b.N; i++ {
		eval := core.DefaultConfig()
		eval.WarmupInstrs, eval.MaxInstrs = 100_000, 250_000
		opts := feedback.DefaultOptions(eval, seed)
		opts.Fanouts = []float64{0.3, 0.6}
		opts.SiteCounts = []int{2}
		res, err := feedback.Tune(prog, graph, opts)
		if err != nil {
			b.Fatal(err)
		}
		best = res.Best.Speedup
	}
	b.ReportMetric(best, "best-speedup")
}

// BenchmarkAblationFTQDepth sweeps FTQ depth (ablation A1).
func BenchmarkAblationFTQDepth(b *testing.B) {
	specs := benchSpecs()[3:4] // one server workload
	var tab *stats.Table
	for i := 0; i < b.N; i++ {
		var err error
		tab, err = experiment.AblationFTQDepth(specs, []int{2, 8, 24, 32}, benchParams())
		if err != nil {
			b.Fatal(err)
		}
	}
	_ = tab
}

// BenchmarkAblationFanout sweeps AsmDB's fanout threshold (ablation A2).
func BenchmarkAblationFanout(b *testing.B) {
	specs := benchSpecs()[3:4]
	for i := 0; i < b.N; i++ {
		if _, err := experiment.AblationFanout(specs, []float64{0.2, 0.5}, benchParams()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationFrontend toggles PFC and GHR filtering (ablation A3).
func BenchmarkAblationFrontend(b *testing.B) {
	specs := benchSpecs()[3:4]
	for i := 0; i < b.N; i++ {
		if _, err := experiment.AblationFrontend(specs, benchParams()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSuiteColdCache measures a from-scratch suite regeneration with
// the run cache enabled but empty: the first-iteration cost a user pays
// before warm re-runs kick in. Each iteration gets a fresh cache
// directory so every run stays cold.
func BenchmarkSuiteColdCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c, err := runner.OpenCache(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		runSuite(b, c)
	}
}

// BenchmarkSuiteBatch measures the cold suite in both execution modes —
// lockstep batching (the default; one stream generation + decode per
// workload program, fanned out to every cold cell) versus the historical
// per-cell jobs (one executor per cell). Results and cache contents are
// byte-identical between modes (TestBatchEquivalence, make batch-smoke);
// only wall-clock differs. The ratio is the number quoted in
// EXPERIMENTS.md §timing.
func BenchmarkSuiteBatch(b *testing.B) {
	run := func(b *testing.B, batch bool) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			c, err := runner.OpenCache(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			p := benchParams()
			p.Cache = c
			p.Batch = batch
			if _, err := experiment.RunSuite(benchSpecs(), p, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("batched", func(b *testing.B) { run(b, true) })
	b.Run("per-cell", func(b *testing.B) { run(b, false) })
}

// BenchmarkSuiteWarmCache primes the cache once outside the timer, then
// measures fully-warm regenerations — the fast-iteration number quoted in
// EXPERIMENTS.md. Compare against BenchmarkSuiteColdCache.
func BenchmarkSuiteWarmCache(b *testing.B) {
	c, err := runner.OpenCache(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	runSuite(b, c) // prime
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runSuite(b, c)
	}
	b.StopTimer()
	m := c.Metrics()
	if m.Misses > int64(m.Puts) { // only the priming run may miss
		b.Fatalf("warm iterations missed the cache: %+v", m)
	}
	b.ReportMetric(float64(m.Hits)/float64(b.N), "cache-hits/op")
}

// BenchmarkSimThroughput measures raw simulator speed (instructions per
// second) on the industry configuration — the engineering metric for the
// simulator itself rather than a paper artifact.
func BenchmarkSimThroughput(b *testing.B) {
	spec, _ := workload.Lookup("secret_srv12")
	prog, err := spec.Build()
	if err != nil {
		b.Fatal(err)
	}
	c := core.DefaultConfig()
	c.WarmupInstrs = 0
	c.MaxInstrs = 300_000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := core.RunSource(c, program.NewExecutor(prog, 1))
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(0)
		_ = st
	}
	b.ReportMetric(float64(c.MaxInstrs)*float64(b.N)/b.Elapsed().Seconds(), "instrs/s")
}

// BenchmarkHWPrefetchers compares the hardware comparators on one server
// workload (the Figure 1 EIP series at benchmark scale).
func BenchmarkHWPrefetchers(b *testing.B) {
	spec, _ := workload.Lookup("secret_srv41")
	prog, err := spec.Build()
	if err != nil {
		b.Fatal(err)
	}
	seed := spec.Seed ^ 0x5eed5eed5eed5eed
	var nlIPC, eipIPC float64
	for i := 0; i < b.N; i++ {
		mk := func() core.Config {
			c := core.DefaultConfig()
			c.WarmupInstrs, c.MaxInstrs = 150_000, 400_000
			return c
		}
		c := mk()
		c.Frontend.Prefetcher = hwpf.NewNextLine(2)
		st, err := core.RunSource(c, program.NewExecutor(prog, seed))
		if err != nil {
			b.Fatal(err)
		}
		nlIPC = st.IPC()
		eip, err := hwpf.NewEIP(hwpf.DefaultEIPConfig())
		if err != nil {
			b.Fatal(err)
		}
		c = mk()
		c.Frontend.Prefetcher = eip
		if st, err = core.RunSource(c, program.NewExecutor(prog, seed)); err != nil {
			b.Fatal(err)
		}
		eipIPC = st.IPC()
	}
	b.ReportMetric(nlIPC, "nextline-ipc")
	b.ReportMetric(eipIPC, "eip-ipc")
}

// BenchmarkSuiteFastForward measures the event-driven cycle-skipping fast
// path on the cold suite restricted to the 24-entry-FTQ FDP configuration
// (the paper's industry-standard machine, and the acceptance target for
// the ≥2× speedup): every benchmark workload simulated cycle-by-cycle
// (off) versus fast-forwarded (on), no cache. Results are byte-identical
// in both modes (TestFastForwardEquivalence); only wall-clock differs.
func BenchmarkSuiteFastForward(b *testing.B) {
	type built struct {
		prog *program.Program
		seed uint64
	}
	var progs []built
	for _, spec := range benchSpecs() {
		prog, err := spec.Build()
		if err != nil {
			b.Fatal(err)
		}
		progs = append(progs, built{prog, spec.Seed ^ 0x5eed5eed5eed5eed})
	}
	run := func(b *testing.B, ff bool) {
		var instrs, cycles int64
		for i := 0; i < b.N; i++ {
			for _, pr := range progs {
				c := core.DefaultConfig()
				c.WarmupInstrs, c.MaxInstrs = 150_000, 400_000
				c.FastForward = ff
				st, err := core.RunSource(c, program.NewExecutor(pr.prog, pr.seed))
				if err != nil {
					b.Fatal(err)
				}
				instrs += st.Instructions
				cycles += st.Cycles
			}
		}
		b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "instrs/s")
		b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/s")
	}
	b.Run("fdp24-off", func(b *testing.B) { run(b, false) })
	b.Run("fdp24-on", func(b *testing.B) { run(b, true) })
}

// BenchmarkSimObsOverhead measures the cost of the observability layer in
// its three regimes: sink absent (every hook is one nil compare — the
// regime all normal runs pay), a realistic stride-64 sampler, and the
// worst-case stride-1 sampler with the event stream discarded into the
// ring. off vs the historical run loop is the ≤2% acceptance bound.
func BenchmarkSimObsOverhead(b *testing.B) {
	spec, _ := workload.Lookup("secret_srv12")
	prog, err := spec.Build()
	if err != nil {
		b.Fatal(err)
	}
	mk := func() core.Config {
		c := core.DefaultConfig()
		c.WarmupInstrs = 0
		c.MaxInstrs = 300_000
		return c
	}
	run := func(b *testing.B, sink func() *obs.Observer) {
		for i := 0; i < b.N; i++ {
			c := mk()
			if sink != nil {
				c.Obs = sink()
			}
			st, err := core.RunSource(c, program.NewExecutor(prog, 1))
			if err != nil {
				b.Fatal(err)
			}
			_ = st
		}
		b.ReportMetric(float64(mk().MaxInstrs)*float64(b.N)/b.Elapsed().Seconds(), "instrs/s")
	}
	b.Run("off", func(b *testing.B) { run(b, nil) })
	b.Run("stride64", func(b *testing.B) {
		run(b, func() *obs.Observer { return obs.NewObserver(obs.Options{Stride: 64}) })
	})
	b.Run("stride1", func(b *testing.B) {
		run(b, func() *obs.Observer { return obs.NewObserver(obs.Options{Stride: 1}) })
	})
}
