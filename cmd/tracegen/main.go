// Command tracegen generates a suite workload's dynamic instruction stream
// and serializes it as a compressed trace file (or prints a composition
// report with -report).
//
// Usage:
//
//	tracegen -workload secret_srv12 -instrs 5000000 -o secret_srv12.fsim.gz
//	tracegen -workload secret_int_44 -report
package main

import (
	"flag"
	"fmt"
	"os"

	"frontsim/internal/isa"
	"frontsim/internal/trace"
	"frontsim/internal/workload"
)

func main() {
	var (
		name   = flag.String("workload", "secret_srv12", "suite workload name")
		instrs = flag.Int64("instrs", 5_000_000, "instructions to emit")
		out    = flag.String("o", "", "output trace path (defaults to <workload>.fsim.gz)")
		report = flag.Bool("report", false, "print a stream composition report instead of writing a trace")
	)
	flag.Parse()

	if err := run(*name, *instrs, *out, *report); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(name string, instrs int64, out string, report bool) error {
	if instrs <= 0 {
		return fmt.Errorf("-instrs must be positive, got %d (an empty trace would be written)", instrs)
	}
	spec, ok := workload.Lookup(name)
	if !ok {
		return fmt.Errorf("unknown workload %q", name)
	}
	src, err := spec.NewSource()
	if err != nil {
		return err
	}
	limited := trace.NewLimit(src, instrs)

	if report {
		st, err := trace.Measure(limited)
		if err != nil {
			return err
		}
		fmt.Printf("workload       %s (%s)\n", spec.Name, spec.Category)
		fmt.Printf("instructions   %d\n", st.Instructions)
		fmt.Printf("footprint      %d KiB (%d lines)\n", st.Footprint()>>10, st.UniqueLines)
		fmt.Printf("branch frac    %.3f (taken %.3f)\n", st.BranchFraction(),
			float64(st.TakenBranch)/float64(max64(st.Instructions, 1)))
		for c := 0; c < isa.NumClasses; c++ {
			if st.ByClass[c] == 0 {
				continue
			}
			fmt.Printf("  %-14s %9d (%.2f%%)\n", isa.Class(c), st.ByClass[c],
				100*float64(st.ByClass[c])/float64(st.Instructions))
		}
		return nil
	}

	if out == "" {
		out = name + ".fsim.gz"
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := trace.NewWriter(f)
	if err != nil {
		return err
	}
	n, err := trace.Copy(w, limited)
	if err != nil {
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	info, err := f.Stat()
	if err != nil {
		return err
	}
	fmt.Printf("wrote %d instructions to %s (%d bytes, %.2f bits/instr)\n",
		n, out, info.Size(), 8*float64(info.Size())/float64(n))
	return nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
