package main

import (
	"os"
	"path/filepath"
	"testing"

	"frontsim/internal/trace"
)

func TestRunWritesTrace(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "w.fsim.gz")
	if err := run("secret_crypto52", 50_000, out, false); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := trace.Collect(r, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 50_000 {
		t.Fatalf("trace holds %d instructions", len(got))
	}
}

func TestRunReport(t *testing.T) {
	if err := run("secret_int_44", 30_000, "", true); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownWorkload(t *testing.T) {
	if err := run("bogus", 1000, "", true); err == nil {
		t.Fatal("accepted unknown workload")
	}
}

// TestRunRejectsNonPositiveBudget pins the -instrs validation: a zero or
// negative budget must fail loudly instead of silently writing an
// empty-but-valid trace file. Before the fix both calls succeeded.
func TestRunRejectsNonPositiveBudget(t *testing.T) {
	dir := t.TempDir()
	for _, n := range []int64{0, -1} {
		out := filepath.Join(dir, "empty.fsim.gz")
		if err := run("secret_crypto52", n, out, false); err == nil {
			t.Fatalf("run accepted -instrs %d", n)
		}
		if _, err := os.Stat(out); err == nil {
			t.Fatalf("-instrs %d still wrote a trace file", n)
		}
	}
}
