package main

import (
	"context"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
)

// TestServeDebugClosesOnCancel pins the -http endpoint's lifecycle: it
// serves /metrics while live, and cancelling its context closes the
// listener and returns nil (a drained shutdown, not an error).
func TestServeDebugClosesOnCancel(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serveDebug(ctx, ln, nil) }()

	res, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("live /metrics: %v", err)
	}
	body, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if res.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d: %s", res.StatusCode, body)
	}
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("serveDebug after cancel = %v, want nil", err)
	}
	// The listener must actually be closed: its port is free to rebind
	// and new connections are refused.
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Fatal("listener still accepting after cancel")
	}
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("port not released after cancel: %v", err)
	}
	ln2.Close()
}
