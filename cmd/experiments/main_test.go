package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"frontsim/internal/core"

	"frontsim/internal/experiment"
	"frontsim/internal/obs"
)

func tinyParams() experiment.Params {
	p := experiment.DefaultParams()
	p.WarmupInstrs = 50_000
	p.MeasureInstrs = 150_000
	p.ProfileInstrs = 200_000
	return p
}

func TestRunTable1(t *testing.T) {
	if err := run(0, 1, "", "", 1, tinyParams(), "", true, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunFigure1WithCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run(1, 0, "", "", 1, tinyParams(), dir, true, false); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "figure1.csv")); err != nil {
		t.Fatal("figure1.csv not written")
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run(99, 0, "", "", 1, tinyParams(), "", true, false); err == nil {
		t.Fatal("accepted unknown figure")
	}
}

func TestRunUnknownTable(t *testing.T) {
	if err := run(0, 9, "", "", 1, tinyParams(), "", true, false); err == nil {
		t.Fatal("accepted unknown table")
	}
}

func TestRunUnknownAblation(t *testing.T) {
	if err := run(0, 0, "nope", "", 1, tinyParams(), "", true, false); err == nil {
		t.Fatal("accepted unknown ablation")
	}
}

func TestRunUnknownExtension(t *testing.T) {
	if err := run(0, 0, "", "nope", 1, tinyParams(), "", true, false); err == nil {
		t.Fatal("accepted unknown extension")
	}
}

func TestRunWithObsCollectsAndExports(t *testing.T) {
	dir := t.TempDir()
	p := tinyParams()
	col := &obs.SuiteCollector{}
	p.Obs = col
	p.ObsRun = fileObsFactory(dir, 64)
	if err := run(1, 0, "", "", 1, p, "", true, false); err != nil {
		t.Fatal(err)
	}
	if col.Len() == 0 {
		t.Fatal("suite collector recorded no runs")
	}
	if err := writeObsExports(dir, col); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"metrics.json", "metrics.prom"} {
		fi, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("missing export %s: %v", name, err)
		}
		if fi.Size() == 0 {
			t.Fatalf("export %s is empty", name)
		}
	}
	bundles, err := filepath.Glob(filepath.Join(dir, "*.samples.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(bundles) == 0 {
		t.Fatal("no per-run sample bundles written")
	}
}

func TestRunAblationFTQ(t *testing.T) {
	if err := run(0, 0, "ftq", "", 1, tinyParams(), "", true, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunExtensionISpy(t *testing.T) {
	if err := run(0, 0, "", "ispy", 1, tinyParams(), "", true, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunSamplingValidate(t *testing.T) {
	p := tinyParams()
	p.Sampling = core.SamplingConfig{IntervalInstrs: 25_000, DetailInstrs: 2_500, WarmInstrs: 5_000}
	// One tiny suite of this size still runs every mechanism twice; the
	// coverage contract itself is only meaningful at full scale, so a
	// failure here must be the hard error for sub-90% coverage or nothing.
	err := run(0, 0, "", "", 1, p, "", true, true)
	if err != nil && !strings.Contains(err.Error(), "below the 90% contract") {
		t.Fatal(err)
	}
	p.Sampling = core.SamplingConfig{}
	if err := run(0, 0, "", "", 1, p, "", true, true); err == nil {
		t.Fatal("sampling-validate accepted a disabled sampling config")
	}
}
