package main

import (
	"os"
	"path/filepath"
	"testing"

	"frontsim/internal/experiment"
)

func tinyParams() experiment.Params {
	p := experiment.DefaultParams()
	p.WarmupInstrs = 50_000
	p.MeasureInstrs = 150_000
	p.ProfileInstrs = 200_000
	return p
}

func TestRunTable1(t *testing.T) {
	if err := run(0, 1, "", "", 1, tinyParams(), "", true); err != nil {
		t.Fatal(err)
	}
}

func TestRunFigure1WithCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run(1, 0, "", "", 1, tinyParams(), dir, true); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "figure1.csv")); err != nil {
		t.Fatal("figure1.csv not written")
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run(99, 0, "", "", 1, tinyParams(), "", true); err == nil {
		t.Fatal("accepted unknown figure")
	}
}

func TestRunUnknownTable(t *testing.T) {
	if err := run(0, 9, "", "", 1, tinyParams(), "", true); err == nil {
		t.Fatal("accepted unknown table")
	}
}

func TestRunUnknownAblation(t *testing.T) {
	if err := run(0, 0, "nope", "", 1, tinyParams(), "", true); err == nil {
		t.Fatal("accepted unknown ablation")
	}
}

func TestRunUnknownExtension(t *testing.T) {
	if err := run(0, 0, "", "nope", 1, tinyParams(), "", true); err == nil {
		t.Fatal("accepted unknown extension")
	}
}

func TestRunAblationFTQ(t *testing.T) {
	if err := run(0, 0, "ftq", "", 1, tinyParams(), "", true); err != nil {
		t.Fatal(err)
	}
}

func TestRunExtensionISpy(t *testing.T) {
	if err := run(0, 0, "", "ispy", 1, tinyParams(), "", true); err != nil {
		t.Fatal(err)
	}
}
