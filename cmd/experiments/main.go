// Command experiments reproduces every table and figure in the paper's
// evaluation over the 48-workload suite, plus the ablations from DESIGN.md.
//
// Usage:
//
//	experiments                         # all figures, default scale
//	experiments -figure 1               # just Figure 1
//	experiments -table 1                # just Table I
//	experiments -ablation ftq           # the FTQ-depth sweep
//	experiments -ablation mechanism     # the cross-prefetcher matrix
//	experiments -instrs 4000000 -n 12   # larger runs, first 12 workloads
//	experiments -csv out/               # additionally write CSV per figure
//	experiments -jobs 8                 # bound the work-stealing pool
//	experiments -cache results/cache    # reuse cached runs (the default)
//	experiments -no-cache               # force every run cold
package main

import (
	"context"
	_ "expvar" // expvar JSON on /debug/vars when -http is set
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // profiling on /debug/pprof when -http is set
	"os"
	"path/filepath"
	"strings"
	"time"

	"frontsim/internal/core"
	"frontsim/internal/experiment"
	"frontsim/internal/obs"
	"frontsim/internal/runner"
	"frontsim/internal/serve"
	"frontsim/internal/stats"
	"frontsim/internal/workload"
)

func main() {
	var (
		figure   = flag.Int("figure", 0, "only this figure (1,7,8,9,10,11); 0 = all")
		table    = flag.Int("table", 0, "only this table (1); 0 = all")
		ablation = flag.String("ablation", "", "run an ablation: ftq, fanout, frontend, predictor, replacement, wrongpath, btb, mechanism")
		ext      = flag.String("extension", "", "run an extension experiment: preload, feedback, ispy")
		n        = flag.Int("n", workload.Count, "number of suite workloads (prefix)")
		instrs   = flag.Int64("instrs", 1_500_000, "measured instructions per run")
		warmup   = flag.Int64("warmup", 500_000, "warmup instructions per run")
		profile  = flag.Int64("profile", 2_000_000, "AsmDB profiling instructions")
		par      = flag.Int("par", 0, "parallel jobs (0 = GOMAXPROCS); alias of -jobs")
		jobs     = flag.Int("jobs", 0, "work-stealing pool workers (0 = GOMAXPROCS)")
		cacheDir = flag.String("cache", filepath.Join("results", "cache"), "run-cache directory")
		noCache  = flag.Bool("no-cache", false, "disable the run cache (every run cold)")
		csvDir   = flag.String("csv", "", "directory to write per-figure CSV files")
		quiet    = flag.Bool("quiet", false, "suppress progress output")
		audit    = flag.Bool("audit", false, "check simulator invariants every cycle (FTQ cycle conservation, ordering); panics with a repro dump on violation")
		fastFwd  = flag.Bool("fast-forward", true, "event-driven cycle skipping (byte-identical results; =false forces cycle-by-cycle)")
		batch    = flag.Bool("batch", true, "lockstep-batch cold cells sharing a workload stream (byte-identical results; =false forces one run per cell)")
		obsOn    = flag.Bool("obs", false, "record observability bundles per live run plus suite metrics.json/metrics.prom")
		obsDir   = flag.String("obs-dir", filepath.Join("results", "obs"), "directory for -obs output files")
		obsStrd  = flag.Int64("obs-stride", 64, "cycles between time-series samples under -obs")
		httpAddr = flag.String("http", "", "serve /metrics, /debug/pprof and /debug/vars on this address (e.g. :6060)")
		sampInt  = flag.Int64("sampling-interval", 0, "SMARTS sampling unit period in instructions (0 = exact simulation; sampled cells never share cache entries with exact ones)")
		sampDet  = flag.Int64("sampling-detail", 1_000, "measured detailed-window length per sampling unit")
		sampWarm = flag.Int64("sampling-warm", 2_000, "detailed (unmeasured) warm-up before each measured window")
		sampVal  = flag.Bool("sampling-validate", false, "run the full suite exact AND sampled across every mechanism and report the estimator's error distribution and 95%-CI coverage")
	)
	flag.Parse()

	p := experiment.DefaultParams()
	p.MeasureInstrs = *instrs
	p.WarmupInstrs = *warmup
	p.ProfileInstrs = *profile
	p.Parallelism = *par
	if *jobs != 0 {
		p.Parallelism = *jobs
	}
	p.Audit = *audit
	p.FastForward = *fastFwd
	p.Batch = *batch
	if *sampInt > 0 {
		p.Sampling = core.SamplingConfig{
			IntervalInstrs: *sampInt,
			DetailInstrs:   *sampDet,
			WarmInstrs:     *sampWarm,
		}
	} else if *sampVal {
		// The validated default geometry for suite-scale budgets: ~50
		// windows across the 1.5M-instruction coverage budget.
		p.Sampling = core.SamplingConfig{IntervalInstrs: 30_000, DetailInstrs: 3_000, WarmInstrs: 6_000}
	}
	if !*noCache {
		c, err := runner.OpenCache(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments: open cache:", err)
			os.Exit(1)
		}
		p.Cache = c
		defer func() {
			if m := c.Metrics(); !*quiet && m.Hits+m.Misses > 0 {
				fmt.Fprintf(os.Stderr, "run cache: %d hits, %d misses, %d stored (%s)\n",
					m.Hits, m.Misses, m.Puts, c.Dir())
			}
		}()
	}

	var col *obs.SuiteCollector
	if *obsOn {
		if err := os.MkdirAll(*obsDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "experiments: obs dir:", err)
			os.Exit(1)
		}
		col = &obs.SuiteCollector{}
		p.Obs = col
		p.ObsRun = fileObsFactory(*obsDir, *obsStrd)
	}
	httpCtx, httpCancel := context.WithCancel(context.Background())
	defer httpCancel()
	var httpErr chan error
	if *httpAddr != "" {
		ln, lerr := net.Listen("tcp", *httpAddr)
		if lerr != nil {
			fmt.Fprintln(os.Stderr, "experiments: http:", lerr)
			os.Exit(1)
		}
		httpErr = make(chan error, 1)
		go func() { httpErr <- serveDebug(httpCtx, ln, col) }()
	}

	err := run(*figure, *table, *ablation, *ext, *n, p, *csvDir, *quiet, *sampVal)
	if col != nil {
		if eerr := writeObsExports(*obsDir, col); eerr != nil && err == nil {
			err = eerr
		}
	}
	// Drain the debug listener through the shared shutdown path so a
	// scrape in flight at exit still completes.
	httpCancel()
	if httpErr != nil {
		if herr := <-httpErr; herr != nil && err == nil {
			err = herr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// fileObsFactory hands each live run a file-backed observer writing its
// sample/event bundle under dir; cached cells never reach it.
func fileObsFactory(dir string, stride int64) func(workload, series string) obs.Sink {
	return func(workload, series string) obs.Sink {
		fo, err := obs.NewFileObserver(dir, workload+"__"+series, obs.Options{Stride: stride})
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments: observer:", err)
			return nil
		}
		return fo
	}
}

// writeObsExports writes the suite-level metric rollup (per-run points plus
// mean/min/max/p50/p95 aggregates) as canonical JSON and Prometheus text.
func writeObsExports(dir string, col *obs.SuiteCollector) error {
	ms := col.Export()
	jf, err := os.Create(filepath.Join(dir, "metrics.json"))
	if err != nil {
		return err
	}
	if err := ms.WriteJSON(jf); err != nil {
		jf.Close()
		return err
	}
	if err := jf.Close(); err != nil {
		return err
	}
	pf, err := os.Create(filepath.Join(dir, "metrics.prom"))
	if err != nil {
		return err
	}
	if err := ms.WritePrometheus(pf); err != nil {
		pf.Close()
		return err
	}
	return pf.Close()
}

// serveDebug exposes live metrics plus the stdlib pprof and expvar debug
// pages (registered on http.DefaultServeMux by their imports) on ln for
// long suite runs, with real header/write timeouts, until ctx is
// cancelled — then it drains through the same shutdown path cmd/simd
// uses (serve.ListenAndServe) and returns nil.
func serveDebug(ctx context.Context, ln net.Listener, col *obs.SuiteCollector) error {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		var ms obs.MetricSet
		if col != nil {
			ms = col.Export()
		}
		if err := ms.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.Handle("/debug/", http.DefaultServeMux)
	return serve.ListenAndServe(ctx, serve.NewHTTPServer(ln.Addr().String(), mux), ln, 5*time.Second)
}

func run(figure, table int, ablation, ext string, n int, p experiment.Params, csvDir string, quiet bool, sampValidate bool) error {
	specs := workload.All()
	if n < len(specs) {
		specs = specs[:n]
	}

	emit := func(t *stats.Table, slug string) error {
		fmt.Println(t)
		if csvDir != "" {
			if err := os.MkdirAll(csvDir, 0o755); err != nil {
				return err
			}
			f, err := os.Create(filepath.Join(csvDir, slug+".csv"))
			if err != nil {
				return err
			}
			defer f.Close()
			return t.RenderCSV(f)
		}
		return nil
	}

	// Ablations and extensions use a representative sub-suite to keep
	// runtimes sane; with a truncated -n only the indices that exist are
	// taken (indexing past len(specs) used to panic for 6 < n < 21).
	sub := specs
	if len(sub) > 6 {
		sub = nil
		for _, i := range []int{0, 1, 4, 8, 16, 20} {
			if i < len(specs) {
				sub = append(sub, specs[i])
			}
		}
	}

	if sampValidate {
		t, cov, err := experiment.SamplingValidation(specs, p)
		if err != nil {
			return err
		}
		if err := emit(t, "sampling_validation"); err != nil {
			return err
		}
		if cov < 0.90 {
			return fmt.Errorf("sampling validation: CI coverage %.1f%% below the 90%% contract", 100*cov)
		}
		return nil
	}

	if ext != "" {
		switch strings.ToLower(ext) {
		case "preload":
			t, err := experiment.ExtensionPreload(sub, p)
			if err != nil {
				return err
			}
			return emit(t, "extension_preload")
		case "feedback":
			t, err := experiment.ExtensionFeedback(sub, p)
			if err != nil {
				return err
			}
			return emit(t, "extension_feedback")
		case "ispy":
			t, err := experiment.ExtensionISpy(sub, p)
			if err != nil {
				return err
			}
			return emit(t, "extension_ispy")
		default:
			return fmt.Errorf("unknown extension %q", ext)
		}
	}

	if ablation != "" {
		switch strings.ToLower(ablation) {
		case "ftq":
			t, err := experiment.AblationFTQDepth(sub, []int{2, 4, 8, 16, 24, 32}, p)
			if err != nil {
				return err
			}
			return emit(t, "ablation_ftq")
		case "fanout":
			t, err := experiment.AblationFanout(sub, []float64{0.1, 0.3, 0.5, 0.7}, p)
			if err != nil {
				return err
			}
			return emit(t, "ablation_fanout")
		case "frontend":
			t, err := experiment.AblationFrontend(sub, p)
			if err != nil {
				return err
			}
			return emit(t, "ablation_frontend")
		case "predictor":
			t, err := experiment.AblationPredictor(sub, p)
			if err != nil {
				return err
			}
			return emit(t, "ablation_predictor")
		case "replacement":
			t, err := experiment.AblationReplacement(sub, p)
			if err != nil {
				return err
			}
			return emit(t, "ablation_replacement")
		case "wrongpath":
			t, err := experiment.AblationWrongPath(sub, []int{0, 2, 4, 8}, p)
			if err != nil {
				return err
			}
			return emit(t, "ablation_wrongpath")
		case "btb":
			t, err := experiment.AblationBTB(sub, []int{0, 512, 1024, 4096}, p)
			if err != nil {
				return err
			}
			return emit(t, "ablation_btb")
		case "mechanism":
			t, err := experiment.AblationMechanism(sub, p)
			if err != nil {
				return err
			}
			return emit(t, "ablation_mechanism")
		default:
			return fmt.Errorf("unknown ablation %q", ablation)
		}
	}

	if table == 1 || (figure == 0 && table == 0) {
		if err := emit(experiment.TableI(), "table1"); err != nil {
			return err
		}
		if figure == 0 && table == 1 {
			return nil
		}
	}
	if table != 0 && table != 1 {
		return fmt.Errorf("unknown table %d", table)
	}
	if table == 1 && figure == 0 {
		return nil
	}

	progress := func(s string) { fmt.Fprintln(os.Stderr, s) }
	jobProgress := func(s string) { fmt.Fprintln(os.Stderr, s) }
	if quiet {
		progress, jobProgress = nil, nil
	}
	start := time.Now()
	ms, err := experiment.RunSuiteMonitor(specs, p, progress, jobProgress)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "suite of %d workloads completed in %s\n\n", len(ms), time.Since(start).Round(time.Second))

	type fig struct {
		id   int
		make func([]*experiment.Matrix) *stats.Table
		slug string
	}
	figs := []fig{
		{1, experiment.Figure1, "figure1"},
		{7, experiment.Figure7, "figure7"},
		{8, experiment.Figure8, "figure8"},
		{9, experiment.Figure9, "figure9"},
		{10, experiment.Figure10, "figure10"},
		{11, experiment.Figure11, "figure11"},
	}
	ran := false
	for _, f := range figs {
		if figure != 0 && figure != f.id {
			continue
		}
		ran = true
		if err := emit(f.make(ms), f.slug); err != nil {
			return err
		}
	}
	if figure == 0 {
		if err := emit(experiment.Methodology(ms), "methodology"); err != nil {
			return err
		}
		if err := emit(experiment.HeadStallBreakdown(ms), "headstall_breakdown"); err != nil {
			return err
		}
	} else if !ran {
		return fmt.Errorf("unknown figure %d", figure)
	}
	return nil
}
