package main

import (
	"os"
	"path/filepath"
	"testing"

	"frontsim/internal/analysis"
)

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above working directory")
		}
		dir = parent
	}
}

// TestRepoIsLintClean is the acceptance gate: the full suite over the whole
// module must report nothing. Any new finding either gets a real fix or a
// reasoned //lint:allow — never a silent regression.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	diags, err := run(moduleRoot(t), []string{"./..."}, analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestRunRejectsBadPattern pins the error (not panic) path for a pattern
// that matches nothing resolvable.
func TestRunRejectsBadPattern(t *testing.T) {
	if _, err := run(moduleRoot(t), []string{"./nonexistent/..."}, analysis.All()); err == nil {
		t.Fatal("run accepted a pattern matching no packages")
	}
}
