package main

import (
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"frontsim/internal/analysis"
)

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above working directory")
		}
		dir = parent
	}
}

// TestRepoIsLintClean is the acceptance gate: the full suite over the whole
// module must report nothing — including stale suppressions, so the strict
// CI invocation cannot regress. Any new finding either gets a real fix or
// a reasoned //lint:allow — never a silent regression.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	diags, unused, err := run(moduleRoot(t), []string{"./..."}, analysis.All(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	for _, d := range unused {
		t.Errorf("stale suppression: %s", d)
	}
}

// TestRepoIsLintCleanUnderAuditTag re-lints the tree with the audit tag
// set, so the audit-only file set (force-enabled invariant checking) is
// held to the same contracts as the default build.
func TestRepoIsLintCleanUnderAuditTag(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	diags, unused, err := run(moduleRoot(t), []string{"./..."}, analysis.All(), []string{"audit"})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	for _, d := range unused {
		t.Errorf("stale suppression: %s", d)
	}
}

// TestRunRejectsBadPattern pins the error (not panic) path for a pattern
// that matches nothing resolvable.
func TestRunRejectsBadPattern(t *testing.T) {
	if _, _, err := run(moduleRoot(t), []string{"./nonexistent/..."}, analysis.All(), nil); err == nil {
		t.Fatal("run accepted a pattern matching no packages")
	}
}

func sampleDiags() (diags, unused []analysis.Diagnostic) {
	diags = []analysis.Diagnostic{{
		Pos:      token.Position{Filename: "a.go", Line: 3, Column: 7},
		Analyzer: "detmap",
		Message:  "map iteration order leaks",
	}}
	unused = []analysis.Diagnostic{{
		Pos:      token.Position{Filename: "b.go", Line: 9, Column: 1},
		Analyzer: analysis.UnusedAllowName,
		Message:  "//lint:allow x suppresses nothing; remove the stale directive",
	}}
	return diags, unused
}

// TestReportJSON pins the machine-readable shape: one array, one record
// per finding, severity distinguishing blocking from informational.
func TestReportJSON(t *testing.T) {
	diags, unused := sampleDiags()
	var sb strings.Builder
	blocking := report(&sb, diags, unused, true, false)
	if blocking != 1 {
		t.Fatalf("blocking = %d, want 1 (unused suppressions do not block by default)", blocking)
	}
	var records []finding
	if err := json.Unmarshal([]byte(sb.String()), &records); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, sb.String())
	}
	if len(records) != 2 {
		t.Fatalf("got %d records, want 2", len(records))
	}
	want := finding{File: "a.go", Line: 3, Col: 7, Analyzer: "detmap",
		Message: "map iteration order leaks", Severity: "error"}
	if records[0] != want {
		t.Errorf("diagnostic record = %+v, want %+v", records[0], want)
	}
	if records[1].Analyzer != analysis.UnusedAllowName || records[1].Severity != "warning" {
		t.Errorf("unused record = %+v, want analyzer %q severity \"warning\"",
			records[1], analysis.UnusedAllowName)
	}
}

// TestReportStrict pins that -strict escalates stale suppressions to
// blocking errors, in both output modes.
func TestReportStrict(t *testing.T) {
	diags, unused := sampleDiags()
	var sb strings.Builder
	if blocking := report(&sb, diags, unused, true, true); blocking != 2 {
		t.Fatalf("strict blocking = %d, want 2", blocking)
	}
	var records []finding
	if err := json.Unmarshal([]byte(sb.String()), &records); err != nil {
		t.Fatal(err)
	}
	if records[1].Severity != "error" {
		t.Errorf("strict unused severity = %q, want \"error\"", records[1].Severity)
	}
	sb.Reset()
	if blocking := report(&sb, nil, unused, false, false); blocking != 0 {
		t.Errorf("default blocking = %d, want 0", blocking)
	}
	if !strings.Contains(sb.String(), "(warning)") {
		t.Errorf("text mode must mark non-blocking findings: %q", sb.String())
	}
}

// TestEmptyJSONOutput pins that a clean run still emits a valid (empty)
// JSON array, so downstream tooling never special-cases success.
func TestEmptyJSONOutput(t *testing.T) {
	var sb strings.Builder
	if blocking := report(&sb, nil, nil, true, true); blocking != 0 {
		t.Fatalf("blocking = %d, want 0", blocking)
	}
	var records []finding
	if err := json.Unmarshal([]byte(sb.String()), &records); err != nil {
		t.Fatalf("clean run output is not a JSON array: %v\n%s", err, sb.String())
	}
	if len(records) != 0 {
		t.Fatalf("clean run emitted %d records", len(records))
	}
}
