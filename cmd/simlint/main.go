// Command simlint runs the simulator's custom static-analysis suite (see
// internal/analysis): determinism, clock- and randomness-hygiene, float
// comparison, and cache-key schema checks that go vet cannot express.
//
// Usage:
//
//	simlint ./...                      # whole module (the CI invocation)
//	simlint ./internal/ftq ./cmd/...   # specific packages or subtrees
//	simlint -analyzers detmap,floateq ./...
//	simlint -list                      # describe the suite
//
// Exit status is 1 when any diagnostic is reported. Suppress a finding
// with `//lint:allow <reason>` on the flagged line or the line above.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"frontsim/internal/analysis"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list the analyzers and exit")
		names = flag.String("analyzers", "", "comma-separated subset of analyzers to run (default all)")
		dir   = flag.String("C", ".", "module root to analyze")
	)
	flag.Parse()

	suite := analysis.All()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *names != "" {
		suite = suite[:0]
		for _, name := range strings.Split(*names, ",") {
			a := analysis.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "simlint: unknown analyzer %q (use -list)\n", name)
				os.Exit(2)
			}
			suite = append(suite, a)
		}
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	diags, err := run(*dir, patterns, suite)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func run(dir string, patterns []string, suite []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	loader, err := analysis.NewLoader(dir)
	if err != nil {
		return nil, err
	}
	paths, err := loader.Expand(patterns)
	if err != nil {
		return nil, err
	}
	var diags []analysis.Diagnostic
	for _, ip := range paths {
		pkg, err := loader.Load(ip)
		if err != nil {
			return nil, err
		}
		diags = append(diags, analysis.RunAnalyzers(pkg, suite)...)
	}
	return diags, nil
}
