// Command simlint runs the simulator's custom static-analysis suite (see
// internal/analysis): determinism, clock- and randomness-hygiene, float
// comparison, cache-key schema, context-threading, lock-discipline,
// goroutine-lifecycle and fingerprint-purity checks that go vet cannot
// express.
//
// Usage:
//
//	simlint ./...                      # whole module (the CI invocation)
//	simlint ./internal/ftq ./cmd/...   # specific packages or subtrees
//	simlint -analyzers detmap,floateq ./...
//	simlint -tags audit ./...          # lint the audit-tagged file set
//	simlint -json ./...                # machine-readable findings
//	simlint -strict ./...              # stale //lint:allow directives block
//	simlint -list                      # describe the suite
//
// Exit status is 1 when any blocking finding is reported. Suppress a
// finding with `//lint:allow <reason>` on the flagged line or the line
// above. A directive that suppresses nothing is itself reported — as a
// warning by default, as a blocking finding under -strict — but only on
// full-suite runs: a -analyzers subset cannot tell a stale directive from
// one aimed at an analyzer that was not run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"frontsim/internal/analysis"
)

func main() {
	var (
		list   = flag.Bool("list", false, "list the analyzers and exit")
		names  = flag.String("analyzers", "", "comma-separated subset of analyzers to run (default all)")
		dir    = flag.String("C", ".", "module root to analyze")
		tags   = flag.String("tags", "", "comma-separated build tags, like go build -tags")
		asJSON = flag.Bool("json", false, "emit findings as a JSON array instead of text")
		strict = flag.Bool("strict", false, "treat stale //lint:allow directives as blocking findings")
	)
	flag.Parse()

	suite := analysis.All()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	fullSuite := *names == ""
	if !fullSuite {
		suite = suite[:0]
		for _, name := range strings.Split(*names, ",") {
			a := analysis.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "simlint: unknown analyzer %q (use -list)\n", name)
				os.Exit(2)
			}
			suite = append(suite, a)
		}
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	diags, unused, err := run(*dir, patterns, suite, splitTags(*tags))
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		os.Exit(2)
	}
	if !fullSuite {
		unused = nil
	}
	blocking := report(os.Stdout, diags, unused, *asJSON, *strict)
	if blocking > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s)\n", blocking)
		os.Exit(1)
	}
}

// run expands patterns and applies the suite, returning analyzer findings
// and unused-suppression findings separately so the caller decides whether
// the latter block.
func run(dir string, patterns []string, suite []*analysis.Analyzer, tags []string) (diags, unused []analysis.Diagnostic, err error) {
	loader, err := analysis.NewLoader(dir)
	if err != nil {
		return nil, nil, err
	}
	loader.SetBuildTags(tags)
	paths, err := loader.Expand(patterns)
	if err != nil {
		return nil, nil, err
	}
	for _, ip := range paths {
		pkg, err := loader.Load(ip)
		if err != nil {
			return nil, nil, err
		}
		d, u := analysis.RunAnalyzersTracked(pkg, suite)
		diags = append(diags, d...)
		unused = append(unused, u...)
	}
	return diags, unused, nil
}

// finding is the -json record shape. Severity "error" blocks (exit 1);
// "warning" is informational.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Severity string `json:"severity"`
}

// report renders the findings to w — text lines or one JSON array — and
// returns how many block. Analyzer diagnostics always block; unused
// suppressions block only under strict.
func report(w io.Writer, diags, unused []analysis.Diagnostic, asJSON, strict bool) int {
	blocking := len(diags)
	unusedSeverity := "warning"
	if strict {
		unusedSeverity = "error"
		blocking += len(unused)
	}
	if asJSON {
		records := make([]finding, 0, len(diags)+len(unused))
		for _, d := range diags {
			records = append(records, toFinding(d, "error"))
		}
		for _, d := range unused {
			records = append(records, toFinding(d, unusedSeverity))
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(records); err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
		}
		return blocking
	}
	for _, d := range diags {
		fmt.Fprintln(w, d)
	}
	for _, d := range unused {
		fmt.Fprintf(w, "%s (%s)\n", d, unusedSeverity)
	}
	return blocking
}

func toFinding(d analysis.Diagnostic, severity string) finding {
	return finding{
		File:     d.Pos.Filename,
		Line:     d.Pos.Line,
		Col:      d.Pos.Column,
		Analyzer: d.Analyzer,
		Message:  d.Message,
		Severity: severity,
	}
}

// splitTags parses the -tags value the way the go tool does: comma
// separated, empty elements dropped.
func splitTags(s string) []string {
	var tags []string
	for _, t := range strings.Split(s, ",") {
		if t = strings.TrimSpace(t); t != "" {
			tags = append(tags, t)
		}
	}
	return tags
}
