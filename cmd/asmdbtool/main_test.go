package main

import (
	"os"
	"path/filepath"
	"testing"

	"frontsim/internal/asmdb"
)

func TestRunPlanOnly(t *testing.T) {
	if err := run("secret_crypto52", 300_000, 0.3, 320, true, 5, false, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithRerun(t *testing.T) {
	if testing.Short() {
		t.Skip("rerun path is slow")
	}
	if err := run("secret_crypto52", 300_000, 0.3, 320, false, 0, true, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunWritesPlanJSON(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "plan.json")
	if err := run("secret_crypto52", 300_000, 0.3, 320, false, 0, false, path); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	plan, err := asmdb.ReadPlan(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Insertions) == 0 {
		t.Fatal("empty serialized plan")
	}
}

func TestRunUnknownWorkload(t *testing.T) {
	if err := run("bogus", 1000, 0.3, 320, false, 0, false, ""); err == nil {
		t.Fatal("accepted unknown workload")
	}
}
