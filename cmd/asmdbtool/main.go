// Command asmdbtool runs the AsmDB software-prefetching pipeline for one
// workload — profile, CFG construction, target ranking, insertion-site
// selection — and reports the plan: coverage, static/dynamic bloat and,
// with -sites, the individual insertions.
//
// Usage:
//
//	asmdbtool -workload secret_srv12
//	asmdbtool -workload secret_srv12 -fanout 0.2 -sites -top 20
package main

import (
	"flag"
	"fmt"
	"os"

	"frontsim/internal/asmdb"
	"frontsim/internal/cfg"
	"frontsim/internal/core"
	"frontsim/internal/program"
	"frontsim/internal/trace"
	"frontsim/internal/workload"
)

func main() {
	var (
		name     = flag.String("workload", "secret_srv12", "suite workload name")
		profileN = flag.Int64("profile-instrs", 2_000_000, "profiling stream length")
		fanout   = flag.Float64("fanout", asmdb.DefaultOptions().FanoutThreshold, "fanout probability threshold")
		window   = flag.Int("window", asmdb.DefaultOptions().Window, "max insertion distance (instructions)")
		sites    = flag.Bool("sites", false, "print individual insertions")
		top      = flag.Int("top", 20, "insertions to print with -sites")
		rerun    = flag.Bool("rerun", false, "run the rewritten binary on the 24-entry FDP and report IPC")
		planOut  = flag.String("plan", "", "write the insertion plan as JSON to this path")
	)
	flag.Parse()
	if err := run(*name, *profileN, *fanout, *window, *sites, *top, *rerun, *planOut); err != nil {
		fmt.Fprintln(os.Stderr, "asmdbtool:", err)
		os.Exit(1)
	}
}

func run(name string, profileN int64, fanout float64, window int, sites bool, top int, rerun bool, planOut string) error {
	spec, ok := workload.Lookup(name)
	if !ok {
		return fmt.Errorf("unknown workload %q", name)
	}
	prog, err := spec.Build()
	if err != nil {
		return err
	}
	seed := spec.Seed ^ 0x5eed5eed5eed5eed

	// Baseline IPC for the minimum-distance heuristic (paper: IPC x LLC
	// latency).
	baseCfg := core.ConservativeConfig()
	baseCfg.WarmupInstrs, baseCfg.MaxInstrs = 200_000, 600_000
	base, err := core.RunSource(baseCfg, program.NewExecutor(prog, seed))
	if err != nil {
		return err
	}

	graph, err := cfg.Profile(trace.NewLimit(program.NewExecutor(prog, seed), profileN), cfg.Options{IPC: base.IPC()})
	if err != nil {
		return err
	}
	opts := asmdb.DefaultOptions()
	opts.FanoutThreshold = fanout
	opts.Window = window
	plan, err := asmdb.Build(graph, opts)
	if err != nil {
		return err
	}

	fmt.Printf("workload         %s\n", spec.Name)
	fmt.Printf("profiled         %d instructions, %d basic blocks, %.1f MPKI\n",
		graph.Instructions, len(graph.Nodes), graph.MPKI())
	fmt.Printf("baseline IPC     %.3f (conservative front-end)\n", base.IPC())
	fmt.Printf("min distance     %d instructions (IPC x LLC latency)\n", plan.MinDistance)
	fmt.Printf("targets covered  %d (%.1f%% of profiled misses)\n", plan.TargetsCovered, 100*plan.Coverage())
	fmt.Printf("insertions       %d (static bloat %.2f%%)\n", len(plan.Insertions), 100*plan.StaticBloat(prog))

	if planOut != "" {
		f, err := os.Create(planOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := plan.Encode(f); err != nil {
			return err
		}
		fmt.Printf("plan written    %s\n", planOut)
	}

	if sites {
		n := top
		if n > len(plan.Insertions) {
			n = len(plan.Insertions)
		}
		fmt.Printf("\n%-12s %-12s %9s %7s %9s\n", "site", "target", "dist", "prob", "misses")
		for _, ins := range plan.Insertions[:n] {
			fmt.Printf("%-12v %-12v %9d %7.2f %9d\n", ins.Site, ins.Target, ins.Distance, ins.Prob, ins.TargetMisses)
		}
	}

	if rerun {
		rewritten, applied, err := asmdb.Apply(prog, plan)
		if err != nil {
			return err
		}
		runCfg := core.DefaultConfig()
		runCfg.WarmupInstrs, runCfg.MaxInstrs = 500_000, 1_500_000
		fdp, err := core.RunSource(runCfg, program.NewExecutor(prog, seed))
		if err != nil {
			return err
		}
		withPf, err := core.RunSource(runCfg, program.NewExecutor(rewritten, seed))
		if err != nil {
			return err
		}
		fmt.Printf("\napplied          %d insertions\n", applied)
		fmt.Printf("FDP-24 IPC       %.3f (MPKI %.1f)\n", fdp.IPC(), fdp.L1IMPKI())
		fmt.Printf("AsmDB+FDP-24 IPC %.3f (MPKI %.1f, dynamic bloat %.1f%%)\n",
			withPf.IPC(), withPf.L1IMPKI(), 100*withPf.DynamicBloat())
	}
	return nil
}
