// Command simd is the simulation service: a long-running HTTP/JSON
// daemon answering simulation-cell and suite requests from the
// content-addressed run cache, executing misses on a work-stealing pool
// with request coalescing, bounded admission (429 + Retry-After under
// overload), end-to-end cancellation, and graceful SIGTERM drain.
//
// With -peers/-self the node joins a cluster: the cell address space is
// consistent-hash sharded across the peer set, a local cache miss probes
// the cell's home node before executing, and the peer's bytes are
// written back into the local cache — one execution per fingerprint
// globally. SIGHUP (or POST /cluster/reload) re-reads the peers file;
// the new map applies to future requests only.
//
// Usage:
//
//	simd -addr :8091 -cache results/cache
//	simd -max-concurrent 4 -queue 32 -drain-timeout 30s
//	simd -addr :8091 -peers peers.txt -self node-a
//
// Endpoints:
//
//	POST /v1/cell          one simulation cell (workload, series | overrides)
//	POST /v1/suite         a grid of cells
//	GET  /v1/workloads     the suite's workloads and series
//	GET  /healthz          ok | draining
//	GET  /metrics          Prometheus text (request + run-cache counters)
//	GET  /metrics.json     the same counters as a canonical-JSON metric set
//	GET  /cluster/metrics  cluster-wide rollup of every peer's counters
//	POST /cluster/reload   re-read the peers file (SIGHUP equivalent)
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"frontsim/internal/experiment"
	"frontsim/internal/runner"
	"frontsim/internal/serve"
)

func main() {
	var (
		addr       = flag.String("addr", ":8091", "listen address")
		cacheDir   = flag.String("cache", filepath.Join("results", "cache"), "run-cache directory (\"\" disables caching)")
		jobs       = flag.Int("jobs", 0, "work-stealing pool workers (0 = GOMAXPROCS)")
		maxConc    = flag.Int("max-concurrent", 0, "cells executing at once (0 = pool workers)")
		queue      = flag.Int("queue", 64, "cells waiting for an execution slot before shedding 429s")
		retryAfter = flag.Duration("retry-after", time.Second, "Retry-After hint on 429/503 responses")
		drainTO    = flag.Duration("drain-timeout", 30*time.Second, "SIGTERM drain deadline before in-flight cells are cancelled")
		warmup     = flag.Int64("warmup", 500_000, "default warmup instructions per run")
		instrs     = flag.Int64("instrs", 1_500_000, "default measured instructions per run")
		profile    = flag.Int64("profile", 2_000_000, "default AsmDB profiling instructions")
		metricsOut = flag.String("metrics-out", "", "write a final Prometheus metrics snapshot here on shutdown")
		peersFile  = flag.String("peers", "", "cluster membership file (\"name url\" per line); enables cluster mode")
		selfName   = flag.String("self", "", "this node's name in the -peers file (required with -peers)")
		replicas   = flag.Int("peer-replicas", 0, "virtual nodes per peer on the consistent-hash ring (0 = 64)")
	)
	flag.Parse()

	p := experiment.DefaultParams()
	p.WarmupInstrs = *warmup
	p.MeasureInstrs = *instrs
	p.ProfileInstrs = *profile

	var cache *runner.Cache
	if *cacheDir != "" {
		c, err := runner.OpenCache(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simd: open cache:", err)
			os.Exit(1)
		}
		cache = c
	}

	srv := serve.New(serve.Options{
		Params:        p,
		Cache:         cache,
		Workers:       *jobs,
		MaxConcurrent: *maxConc,
		MaxQueue:      *queue,
		RetryAfter:    *retryAfter,
	})
	defer srv.Close()

	if *peersFile != "" {
		if *selfName == "" {
			fmt.Fprintln(os.Stderr, "simd: -peers requires -self")
			os.Exit(1)
		}
		peers, err := serve.LoadPeers(*peersFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simd:", err)
			os.Exit(1)
		}
		cfg := serve.ClusterConfig{
			Self:     *selfName,
			Peers:    peers,
			Replicas: *replicas,
			Reload:   func() ([]serve.Peer, error) { return serve.LoadPeers(*peersFile) },
		}
		if err := srv.SetCluster(cfg); err != nil {
			fmt.Fprintln(os.Stderr, "simd:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "simd: cluster mode: self %q, %d peers (%s)\n", *selfName, len(peers), *peersFile)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simd: listen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "simd: serving on %s (cache %q)\n", ln.Addr(), cache.Dir())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// SIGHUP re-reads the peers file; the swapped ring applies to future
	// requests only. Harmless (logged) outside cluster mode.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-hup:
				if n, err := srv.ReloadCluster(); err != nil {
					fmt.Fprintln(os.Stderr, "simd: reload:", err)
				} else {
					fmt.Fprintf(os.Stderr, "simd: reloaded cluster membership: %d peers\n", n)
				}
			}
		}
	}()

	// The HTTP listener and the service drain share ctx: a signal closes
	// the listener (no new connections) while Drain below stops admission
	// and settles in-flight cells.
	httpErr := make(chan error, 1)
	go func() {
		httpErr <- serve.ListenAndServe(ctx, serve.NewHTTPServer(*addr, srv.Handler()), ln, *drainTO+5*time.Second)
	}()

	// flushMetrics writes the -metrics-out snapshot, at most once: it is
	// shared between the graceful-drain epilogue and the forced-exit path,
	// so a kill during drain cannot lose the file.
	var flushOnce sync.Once
	flushMetrics := func() {
		flushOnce.Do(func() {
			if *metricsOut == "" {
				return
			}
			f, err := os.Create(*metricsOut)
			if err == nil {
				err = srv.MetricSet().WritePrometheus(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "simd: metrics-out:", err)
			}
		})
	}

	select {
	case err := <-httpErr:
		// The server died without a signal (it cannot return nil before
		// ctx is cancelled): a real serve failure.
		fmt.Fprintln(os.Stderr, "simd: serve:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop()

	// A second signal during the drain forces an immediate exit — but not
	// via the default disposition, which would lose -metrics-out: flush
	// best-effort first, then exit nonzero.
	forced := make(chan os.Signal, 1)
	signal.Notify(forced, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(forced)
	fctx, fcancel := context.WithCancel(context.Background())
	defer fcancel()
	go func() {
		select {
		case <-fctx.Done():
		case <-forced:
			fmt.Fprintln(os.Stderr, "simd: forced exit; flushing metrics")
			flushMetrics()
			os.Exit(1)
		}
	}()

	fmt.Fprintf(os.Stderr, "simd: draining (deadline %s)\n", *drainTO)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "simd: drain deadline hit; cancelled in-flight cells:", err)
	}
	if err := <-httpErr; err != nil {
		fmt.Fprintln(os.Stderr, "simd: shutdown:", err)
	}

	flushMetrics()
	fmt.Fprintln(os.Stderr, "simd: drained")
}
