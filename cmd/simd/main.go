// Command simd is the simulation service: a long-running HTTP/JSON
// daemon answering simulation-cell and suite requests from the
// content-addressed run cache, executing misses on a work-stealing pool
// with request coalescing, bounded admission (429 + Retry-After under
// overload), end-to-end cancellation, and graceful SIGTERM drain.
//
// Usage:
//
//	simd -addr :8091 -cache results/cache
//	simd -max-concurrent 4 -queue 32 -drain-timeout 30s
//
// Endpoints:
//
//	POST /v1/cell      one simulation cell (workload, series | overrides)
//	POST /v1/suite     a grid of cells
//	GET  /v1/workloads the suite's workloads and series
//	GET  /healthz      ok | draining
//	GET  /metrics      Prometheus text (request + run-cache counters)
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"frontsim/internal/experiment"
	"frontsim/internal/runner"
	"frontsim/internal/serve"
)

func main() {
	var (
		addr       = flag.String("addr", ":8091", "listen address")
		cacheDir   = flag.String("cache", filepath.Join("results", "cache"), "run-cache directory (\"\" disables caching)")
		jobs       = flag.Int("jobs", 0, "work-stealing pool workers (0 = GOMAXPROCS)")
		maxConc    = flag.Int("max-concurrent", 0, "cells executing at once (0 = pool workers)")
		queue      = flag.Int("queue", 64, "cells waiting for an execution slot before shedding 429s")
		retryAfter = flag.Duration("retry-after", time.Second, "Retry-After hint on 429/503 responses")
		drainTO    = flag.Duration("drain-timeout", 30*time.Second, "SIGTERM drain deadline before in-flight cells are cancelled")
		warmup     = flag.Int64("warmup", 500_000, "default warmup instructions per run")
		instrs     = flag.Int64("instrs", 1_500_000, "default measured instructions per run")
		profile    = flag.Int64("profile", 2_000_000, "default AsmDB profiling instructions")
		metricsOut = flag.String("metrics-out", "", "write a final Prometheus metrics snapshot here on shutdown")
	)
	flag.Parse()

	p := experiment.DefaultParams()
	p.WarmupInstrs = *warmup
	p.MeasureInstrs = *instrs
	p.ProfileInstrs = *profile

	var cache *runner.Cache
	if *cacheDir != "" {
		c, err := runner.OpenCache(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simd: open cache:", err)
			os.Exit(1)
		}
		cache = c
	}

	srv := serve.New(serve.Options{
		Params:        p,
		Cache:         cache,
		Workers:       *jobs,
		MaxConcurrent: *maxConc,
		MaxQueue:      *queue,
		RetryAfter:    *retryAfter,
	})
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simd: listen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "simd: serving on %s (cache %q)\n", ln.Addr(), cache.Dir())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The HTTP listener and the service drain share ctx: a signal closes
	// the listener (no new connections) while Drain below stops admission
	// and settles in-flight cells.
	httpErr := make(chan error, 1)
	go func() {
		httpErr <- serve.ListenAndServe(ctx, serve.NewHTTPServer(*addr, srv.Handler()), ln, *drainTO+5*time.Second)
	}()

	select {
	case err := <-httpErr:
		// The server died without a signal (it cannot return nil before
		// ctx is cancelled): a real serve failure.
		fmt.Fprintln(os.Stderr, "simd: serve:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop() // further signals kill immediately

	fmt.Fprintf(os.Stderr, "simd: draining (deadline %s)\n", *drainTO)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "simd: drain deadline hit; cancelled in-flight cells:", err)
	}
	if err := <-httpErr; err != nil {
		fmt.Fprintln(os.Stderr, "simd: shutdown:", err)
	}

	ms := srv.MetricSet()
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err == nil {
			err = ms.WritePrometheus(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "simd: metrics-out:", err)
		}
	}
	fmt.Fprintln(os.Stderr, "simd: drained")
}
