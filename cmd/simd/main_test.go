package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"frontsim/internal/workload"
)

// lineBuffer collects a subprocess stream and lets the test wait for
// markers in it.
type lineBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (l *lineBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.buf.Write(p)
}

func (l *lineBuffer) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.buf.String()
}

func (l *lineBuffer) waitFor(t *testing.T, marker string) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		if s := l.String(); strings.Contains(s, marker) {
			return s
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("subprocess never printed %q; stderr so far:\n%s", marker, l.String())
	return ""
}

// TestForcedExitFlushesMetrics is the regression test for -metrics-out
// losing its file on a hard kill: the snapshot used to be written only by
// the graceful-drain epilogue, so a second SIGTERM during a long drain
// (the documented force-exit path) dropped it. The forced path must flush
// best-effort before exiting nonzero.
func TestForcedExitFlushesMetrics(t *testing.T) {
	dir := t.TempDir()
	bin := filepath.Join(dir, "simd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	metricsOut := filepath.Join(dir, "final.prom")
	var stderr lineBuffer
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-cache", filepath.Join(dir, "cache"),
		"-metrics-out", metricsOut,
		"-drain-timeout", "10m", // far past the test: only a forced exit ends the drain
		"-jobs", "2",
	)
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cmd.Process.Kill() }()

	addrRe := regexp.MustCompile(`serving on (\S+)`)
	m := addrRe.FindStringSubmatch(stderr.waitFor(t, "serving on"))
	if m == nil {
		t.Fatalf("no listen address in stderr:\n%s", stderr.String())
	}
	base := "http://" + m[1]

	// A cell far too slow to finish: the drain below will wait on it until
	// the second signal forces the exit.
	go func() {
		body := fmt.Sprintf(`{"workload":%q,"warmup_instrs":1000,"measure_instrs":5000000000}`,
			workload.Names()[0])
		res, err := http.Post(base+"/v1/cell", "application/json", strings.NewReader(body))
		if err == nil {
			res.Body.Close() // the kill below aborts this request; any outcome is fine
		}
	}()
	// Wait until the cell is actually executing, so the drain cannot
	// complete on its own.
	executing := func() bool {
		res, err := http.Get(base + "/metrics")
		if err != nil {
			return false
		}
		defer res.Body.Close()
		b, err := io.ReadAll(res.Body)
		return err == nil && strings.Contains(string(b), `simd_cells_total{source="executed"} 1`)
	}
	for i := 0; i < 10000 && !executing(); i++ {
		time.Sleep(time.Millisecond)
	}

	// First SIGTERM: graceful drain begins and blocks on the slow cell.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	stderr.waitFor(t, "draining")

	// Second SIGTERM past the drain: forced exit.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("process survived the forced exit; stderr:\n%s", stderr.String())
	}
	if code := cmd.ProcessState.ExitCode(); code != 1 {
		t.Fatalf("forced exit code = %d, want 1; stderr:\n%s", code, stderr.String())
	}
	stderr.waitFor(t, "forced exit")

	// The whole point: the metrics snapshot survived the kill.
	snap, err := os.ReadFile(metricsOut)
	if err != nil {
		t.Fatalf("metrics snapshot lost on forced exit: %v", err)
	}
	if !strings.Contains(string(snap), "simd_requests_total") {
		t.Fatalf("snapshot lacks counters:\n%s", snap)
	}
}
