// Command ftqtrace renders a per-cycle timeline of the FTQ's state for a
// window of a workload's execution — a direct visualization of the paper's
// Scenario 1/2/3 taxonomy.
//
// Each output line is one cycle:
//
//	cycle 1234  [R..RRF........................]  head-stall  ipc-so-far=0.41
//
// where each cell is one FTQ slot from the head: 'R' fetched and ready,
// '.' still fetching, '_' empty. The state column names the paper's
// scenario for that cycle. Front-end events (flushes, redirects, PFC
// corrections, merges) landing on a cycle are appended to its line.
//
// The timeline is driven entirely by the obs stride-1 sample/event stream
// from core.Sim — ftqtrace holds no private copy of the cycle loop.
//
// Usage:
//
//	ftqtrace -workload secret_srv12 -ftq 24 -skip 100000 -cycles 120
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"frontsim/internal/core"
	"frontsim/internal/obs"
	"frontsim/internal/workload"
)

func main() {
	var (
		name   = flag.String("workload", "secret_srv12", "suite workload name")
		ftqN   = flag.Int("ftq", 24, "FTQ depth")
		skip   = flag.Int64("skip", 100_000, "instructions to execute before tracing")
		cycles = flag.Int64("cycles", 100, "cycles to trace")
	)
	flag.Parse()
	if err := run(os.Stdout, *name, *ftqN, *skip, *cycles); err != nil {
		fmt.Fprintln(os.Stderr, "ftqtrace:", err)
		os.Exit(1)
	}
}

// timelineSink renders each stride-1 obs.Sample as one timeline line,
// annotated with the front-end events that fired since the previous
// sample. It prints nothing until enabled.
type timelineSink struct {
	w       *os.File
	cap     int
	enabled bool
	pending []string
}

func (t *timelineSink) SampleStride() int64 { return 1 }

func (t *timelineSink) Event(e obs.Event) {
	if !t.enabled {
		return
	}
	t.pending = append(t.pending, e.Kind.String())
}

func (t *timelineSink) Sample(s obs.Sample) {
	if !t.enabled {
		return
	}
	var cells strings.Builder
	for i := 0; i < t.cap; i++ {
		switch {
		case i >= s.FTQOcc:
			cells.WriteByte('_')
		case i < 64 && s.FTQReadyMask&(1<<uint(i)) != 0:
			cells.WriteByte('R')
		default:
			cells.WriteByte('.')
		}
	}
	ipc := 0.0
	if s.Cycle > 0 {
		ipc = float64(s.Retired) / float64(s.Cycle)
	}
	fmt.Fprintf(t.w, "cycle %8d  [%s]  %s  retired=%d ipc=%.3f",
		s.Cycle, cells.String(), stateName(s.Scenario), s.Retired, ipc)
	if len(t.pending) > 0 {
		fmt.Fprintf(t.w, "  events=%s", strings.Join(t.pending, ","))
		t.pending = t.pending[:0]
	}
	fmt.Fprintln(t.w)
}

// stateName keeps the command's historical vocabulary: the paper numbers
// shoot-through as Scenario 1.
func stateName(s obs.Scenario) string {
	switch s {
	case obs.ScenarioShootThrough:
		return "scenario-1"
	case obs.Scenario2:
		return "scenario-2"
	case obs.Scenario3:
		return "scenario-3"
	default:
		return "empty     "
	}
}

func run(w *os.File, name string, ftqN int, skip, cycles int64) error {
	spec, ok := workload.Lookup(name)
	if !ok {
		return fmt.Errorf("unknown workload %q", name)
	}
	src, err := spec.NewSource()
	if err != nil {
		return err
	}

	cfg := core.DefaultConfig()
	cfg.Frontend.FTQEntries = ftqN
	sink := &timelineSink{w: w, cap: ftqN}
	cfg.Obs = sink

	sim, err := core.New(cfg, src)
	if err != nil {
		return err
	}
	for sim.Retired() < skip && !sim.Done() {
		sim.Step()
	}
	fmt.Fprintf(w, "workload %s, FTQ=%d, tracing %d cycles from cycle %d (after %d retired instructions)\n",
		spec.Name, ftqN, cycles, sim.Now(), sim.Retired())
	fmt.Fprintf(w, "cells from head: R=ready .=fetching _=empty\n\n")
	sink.enabled = true
	for i := int64(0); i < cycles && !sim.Done(); i++ {
		sim.Step()
	}
	return nil
}
