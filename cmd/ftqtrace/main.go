// Command ftqtrace renders a per-cycle timeline of the FTQ's state for a
// window of a workload's execution — a direct visualization of the paper's
// Scenario 1/2/3 taxonomy.
//
// Each output line is one cycle:
//
//	cycle 1234  [R..RRF........................]  head-stall  ipc-so-far=0.41
//
// where each cell is one FTQ slot from the head: 'R' fetched and ready,
// '.' still fetching, '_' empty. The state column names the paper's
// scenario for that cycle.
//
// Usage:
//
//	ftqtrace -workload secret_srv12 -ftq 24 -skip 100000 -cycles 120
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"frontsim/internal/backend"
	"frontsim/internal/cache"
	"frontsim/internal/core"
	"frontsim/internal/frontend"
	"frontsim/internal/isa"
	"frontsim/internal/workload"
)

func main() {
	var (
		name   = flag.String("workload", "secret_srv12", "suite workload name")
		ftqN   = flag.Int("ftq", 24, "FTQ depth")
		skip   = flag.Int64("skip", 100_000, "instructions to execute before tracing")
		cycles = flag.Int64("cycles", 100, "cycles to trace")
	)
	flag.Parse()
	if err := run(os.Stdout, *name, *ftqN, *skip, *cycles); err != nil {
		fmt.Fprintln(os.Stderr, "ftqtrace:", err)
		os.Exit(1)
	}
}

func run(w *os.File, name string, ftqN int, skip, cycles int64) error {
	spec, ok := workload.Lookup(name)
	if !ok {
		return fmt.Errorf("unknown workload %q", name)
	}
	src, err := spec.NewSource()
	if err != nil {
		return err
	}

	cfg := core.DefaultConfig()
	cfg.Frontend.FTQEntries = ftqN

	mem, err := cache.NewHierarchy(cfg.Memory)
	if err != nil {
		return err
	}
	fe, err := frontend.New(cfg.Frontend, src, mem, nil)
	if err != nil {
		return err
	}
	be, err := backend.New(cfg.Backend, mem, fe)
	if err != nil {
		return err
	}

	// The same cycle loop core.Sim runs, with a tracing hook.
	var (
		now cache.Cycle
		buf []isa.Instr
	)
	step := func(tracing bool) {
		fe.Cycle(now)
		budget := be.DispatchBudget()
		if budget > cfg.DecodeWidth {
			budget = cfg.DecodeWidth
		}
		if budget > 0 {
			buf = fe.Dequeue(now, budget, buf[:0])
			if len(buf) > 0 {
				be.Dispatch(buf, now)
			}
		}
		be.Retire(now)
		if tracing {
			fmt.Fprintln(w, render(fe, be, now))
		}
		now++
	}

	for be.Stats().RetiredProgram < skip && !(fe.Done() && be.Drained()) {
		step(false)
	}
	fmt.Fprintf(w, "workload %s, FTQ=%d, tracing %d cycles from cycle %d (after %d retired instructions)\n",
		spec.Name, ftqN, cycles, now, be.Stats().RetiredProgram)
	fmt.Fprintf(w, "cells from head: R=ready .=fetching _=empty\n\n")
	for i := int64(0); i < cycles && !(fe.Done() && be.Drained()); i++ {
		step(true)
	}
	return nil
}

// render draws one cycle's FTQ occupancy and scenario classification.
func render(fe *frontend.Frontend, be *backend.Backend, now cache.Cycle) string {
	q := fe.FTQ()
	var cells strings.Builder
	for i := 0; i < q.Cap(); i++ {
		e := q.EntryAt(i)
		switch {
		case e == nil:
			cells.WriteByte('_')
		case e.Ready() <= now:
			cells.WriteByte('R')
		default:
			cells.WriteByte('.')
		}
	}
	state := "empty     "
	if head := q.Head(); head != nil {
		if head.Ready() <= now {
			state = "scenario-1" // shoot-through
		} else {
			// Distinguish plain head stall from shadow stall: any ready
			// follower behind an incomplete head is the classic Scenario
			// 2; an incomplete follower queue is heading toward Scenario 3.
			readyBehind := false
			for i := 1; i < q.Len(); i++ {
				if q.EntryAt(i).Ready() <= now {
					readyBehind = true
					break
				}
			}
			if readyBehind {
				state = "scenario-2"
			} else {
				state = "scenario-3"
			}
		}
	}
	st := be.Stats()
	ipc := 0.0
	if now > 0 {
		ipc = float64(st.RetiredProgram) / float64(now)
	}
	return fmt.Sprintf("cycle %8d  [%s]  %s  retired=%d ipc=%.3f",
		now, cells.String(), state, st.RetiredProgram, ipc)
}
