package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunProducesTimeline(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := run(f, "secret_crypto52", 8, 5_000, 12); err != nil {
		t.Fatal(err)
	}
	f.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	if !strings.Contains(out, "scenario-") && !strings.Contains(out, "empty") {
		t.Fatalf("no scenario classification in output:\n%s", out)
	}
	// 12 traced lines plus the header's "tracing %d cycles from cycle"
	// mention.
	lines := strings.Count(out, "cycle ")
	if lines < 12 || lines > 13 {
		t.Fatalf("traced %d cycle mentions, want 12 lines + header", lines)
	}
	// Cell width equals the FTQ depth.
	idx := strings.Index(out, "[")
	end := strings.Index(out[idx:], "]")
	if end-1 != 8 {
		t.Fatalf("cell width %d, want 8", end-1)
	}
}

func TestRunUnknownWorkload(t *testing.T) {
	if err := run(os.Stdout, "bogus", 8, 0, 1); err == nil {
		t.Fatal("accepted unknown workload")
	}
}
