package main

import (
	"os"
	"path/filepath"
	"testing"

	"frontsim/internal/trace"
	"frontsim/internal/workload"
)

func testOpts() options {
	return options{
		workload: "secret_crypto52",
		ftq:      24,
		instrs:   120_000,
		warmup:   30_000,
		hwpf:     "none",
	}
}

func TestRunSuiteWorkload(t *testing.T) {
	for _, hw := range []string{"none", "nextline", "eip"} {
		o := testOpts()
		o.hwpf = hw
		if err := run(o); err != nil {
			t.Fatalf("hw=%s: %v", hw, err)
		}
	}
}

func TestRunConservativeNoPFC(t *testing.T) {
	o := testOpts()
	o.ftq = 2
	o.instrs = 100_000
	o.warmup = 20_000
	o.noPFC = true
	o.noGHR = true
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunJSONOutput(t *testing.T) {
	o := testOpts()
	o.instrs = 80_000
	o.warmup = 20_000
	o.json = true
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsUnknownWorkload(t *testing.T) {
	o := testOpts()
	o.workload = "nope"
	if err := run(o); err == nil {
		t.Fatal("accepted unknown workload")
	}
}

func TestRunRejectsUnknownHWPF(t *testing.T) {
	o := testOpts()
	o.hwpf = "warp"
	if err := run(o); err == nil {
		t.Fatal("accepted unknown prefetcher")
	}
}

func TestRunFromTraceFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.fsim.gz")
	spec, _ := workload.Lookup("secret_crypto52")
	src, err := spec.NewSource()
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := trace.NewWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.Copy(w, trace.NewLimit(src, 150_000)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	o := testOpts()
	o.workload = ""
	o.tracePath = path
	o.instrs = 100_000
	o.warmup = 20_000
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunMissingTraceFile(t *testing.T) {
	o := testOpts()
	o.workload = ""
	o.tracePath = "/nonexistent/trace.gz"
	if err := run(o); err == nil {
		t.Fatal("accepted missing trace file")
	}
}

func TestRunWithObsWritesBundle(t *testing.T) {
	dir := t.TempDir()
	o := testOpts()
	o.instrs = 80_000
	o.warmup = 20_000
	o.obs = true
	o.obsDir = dir
	o.obsStride = 16
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"secret_crypto52.events.jsonl",
		"secret_crypto52.samples.jsonl",
		"secret_crypto52.metrics.json",
		"secret_crypto52.metrics.prom",
	} {
		fi, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("missing obs output %s: %v", name, err)
		}
		if name != "secret_crypto52.events.jsonl" && fi.Size() == 0 {
			t.Fatalf("obs output %s is empty", name)
		}
	}
}
