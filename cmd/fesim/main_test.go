package main

import (
	"os"
	"path/filepath"
	"testing"

	"frontsim/internal/trace"
	"frontsim/internal/workload"
)

func TestRunSuiteWorkload(t *testing.T) {
	for _, hw := range []string{"none", "nextline", "eip"} {
		if err := run("secret_crypto52", "", 24, 120_000, 30_000, false, false, hw, false); err != nil {
			t.Fatalf("hw=%s: %v", hw, err)
		}
	}
}

func TestRunConservativeNoPFC(t *testing.T) {
	if err := run("secret_crypto52", "", 2, 100_000, 20_000, true, true, "none", false); err != nil {
		t.Fatal(err)
	}
}

func TestRunJSONOutput(t *testing.T) {
	if err := run("secret_crypto52", "", 24, 80_000, 20_000, false, false, "none", true); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsUnknownWorkload(t *testing.T) {
	if err := run("nope", "", 24, 1000, 0, false, false, "none", false); err == nil {
		t.Fatal("accepted unknown workload")
	}
}

func TestRunRejectsUnknownHWPF(t *testing.T) {
	if err := run("secret_crypto52", "", 24, 1000, 0, false, false, "warp", false); err == nil {
		t.Fatal("accepted unknown prefetcher")
	}
}

func TestRunFromTraceFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.fsim.gz")
	spec, _ := workload.Lookup("secret_crypto52")
	src, err := spec.NewSource()
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := trace.NewWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.Copy(w, trace.NewLimit(src, 150_000)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if err := run("", path, 24, 100_000, 20_000, false, false, "none", false); err != nil {
		t.Fatal(err)
	}
}

func TestRunMissingTraceFile(t *testing.T) {
	if err := run("", "/nonexistent/trace.gz", 24, 1000, 0, false, false, "none", false); err == nil {
		t.Fatal("accepted missing trace file")
	}
}
