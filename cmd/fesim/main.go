// Command fesim runs a single front-end simulation of one workload under a
// chosen configuration and prints the full statistics snapshot.
//
// Usage:
//
//	fesim -workload secret_srv12 -ftq 24 -instrs 1500000 -warmup 500000
//	fesim -workload secret_int_44 -ftq 2 -no-pfc
//	fesim -trace trace.fsim.gz -ftq 24
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"frontsim/internal/core"
	"frontsim/internal/hwpf"
	"frontsim/internal/trace"
	"frontsim/internal/workload"
)

func main() {
	var (
		workloadName = flag.String("workload", "secret_srv12", "suite workload name (see -list)")
		tracePath    = flag.String("trace", "", "run a serialized trace file instead of a suite workload")
		list         = flag.Bool("list", false, "list suite workloads and exit")
		ftq          = flag.Int("ftq", 24, "FTQ depth (2 = paper's conservative front-end)")
		instrs       = flag.Int64("instrs", 1_500_000, "measured program instructions")
		warmup       = flag.Int64("warmup", 500_000, "warmup instructions excluded from statistics")
		noPFC        = flag.Bool("no-pfc", false, "disable post-fetch correction")
		noGHRFilter  = flag.Bool("no-ghr-filter", false, "disable GHR not-taken/BTB-miss filtering")
		hw           = flag.String("hwpf", "none", "hardware L1-I prefetcher: none, nextline, eip")
		asJSON       = flag.Bool("json", false, "emit the statistics snapshot as JSON")
	)
	flag.Parse()

	if *list {
		for i, n := range workload.Names() {
			s, _ := workload.Lookup(n)
			fmt.Printf("%2d  %-18s %s\n", i+1, n, s.Category)
		}
		return
	}
	if err := run(*workloadName, *tracePath, *ftq, *instrs, *warmup, *noPFC, *noGHRFilter, *hw, *asJSON); err != nil {
		fmt.Fprintln(os.Stderr, "fesim:", err)
		os.Exit(1)
	}
}

func run(name, tracePath string, ftq int, instrs, warmup int64, noPFC, noGHRFilter bool, hw string, asJSON bool) error {
	cfg := core.DefaultConfig()
	cfg.Name = fmt.Sprintf("ftq%d", ftq)
	cfg.Frontend.FTQEntries = ftq
	cfg.Frontend.EnablePFC = !noPFC
	cfg.Frontend.BPU.FilterGHR = !noGHRFilter
	cfg.WarmupInstrs = warmup
	cfg.MaxInstrs = instrs

	switch hw {
	case "none":
	case "nextline":
		cfg.Frontend.Prefetcher = hwpf.NewNextLine(2)
	case "eip":
		eip, err := hwpf.NewEIP(hwpf.DefaultEIPConfig())
		if err != nil {
			return err
		}
		cfg.Frontend.Prefetcher = eip
	default:
		return fmt.Errorf("unknown -hwpf %q", hw)
	}

	var src trace.Source
	if tracePath != "" {
		f, err := os.Open(tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		r, err := trace.NewReader(f)
		if err != nil {
			return err
		}
		src = r
	} else {
		spec, ok := workload.Lookup(name)
		if !ok {
			return fmt.Errorf("unknown workload %q (try -list)", name)
		}
		s, err := spec.NewSource()
		if err != nil {
			return err
		}
		src = s
	}

	st, err := core.RunSource(cfg, src)
	if err != nil {
		return err
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(jsonStats(st))
	}
	fmt.Print(st.Summary())
	return nil
}

// jsonStats augments the raw counters with the derived headline metrics so
// downstream scripts need no recomputation.
func jsonStats(st core.Stats) map[string]interface{} {
	return map[string]interface{}{
		"config":                   st.Config,
		"ipc":                      st.IPC(),
		"l1i_mpki":                 st.L1IMPKI(),
		"dynamic_bloat":            st.DynamicBloat(),
		"avg_head_fetch_cycles":    st.FTQ.AvgHeadFetch(),
		"avg_nonhead_fetch_cycles": st.FTQ.AvgNonHeadFetch(),
		"counters":                 st,
	}
}
