// Command fesim runs a single front-end simulation of one workload under a
// chosen configuration and prints the full statistics snapshot.
//
// Usage:
//
//	fesim -workload secret_srv12 -ftq 24 -instrs 1500000 -warmup 500000
//	fesim -workload secret_int_44 -ftq 2 -no-pfc
//	fesim -trace trace.fsim.gz -ftq 24
//	fesim -workload secret_srv12 -obs -obs-dir out -obs-stride 64
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"frontsim/internal/core"
	"frontsim/internal/hwpf"
	"frontsim/internal/obs"
	"frontsim/internal/trace"
	"frontsim/internal/workload"
)

// options collects everything the command-line surface controls; run takes
// it whole so tests can exercise arbitrary combinations.
type options struct {
	workload  string
	tracePath string
	ftq       int
	instrs    int64
	warmup    int64
	noPFC     bool
	noGHR     bool
	hwpf      string
	json      bool
	fastFwd   bool

	sampInterval int64
	sampDetail   int64
	sampWarm     int64

	obs       bool
	obsDir    string
	obsStride int64
}

func main() {
	var o options
	flag.StringVar(&o.workload, "workload", "secret_srv12", "suite workload name (see -list)")
	flag.StringVar(&o.tracePath, "trace", "", "run a serialized trace file instead of a suite workload")
	list := flag.Bool("list", false, "list suite workloads and exit")
	flag.IntVar(&o.ftq, "ftq", 24, "FTQ depth (2 = paper's conservative front-end)")
	flag.Int64Var(&o.instrs, "instrs", 1_500_000, "measured program instructions")
	flag.Int64Var(&o.warmup, "warmup", 500_000, "warmup instructions excluded from statistics")
	flag.BoolVar(&o.noPFC, "no-pfc", false, "disable post-fetch correction")
	flag.BoolVar(&o.noGHR, "no-ghr-filter", false, "disable GHR not-taken/BTB-miss filtering")
	flag.StringVar(&o.hwpf, "hwpf", "none", "hardware L1-I prefetcher: none, nextline, eip")
	flag.BoolVar(&o.json, "json", false, "emit the statistics snapshot as JSON")
	flag.BoolVar(&o.fastFwd, "fast-forward", true, "event-driven cycle skipping (byte-identical results; =false forces cycle-by-cycle)")
	flag.Int64Var(&o.sampInterval, "sampling-interval", 0, "SMARTS sampling unit period in instructions (0 = exact simulation)")
	flag.Int64Var(&o.sampDetail, "sampling-detail", 1_000, "measured detailed-window length per sampling unit")
	flag.Int64Var(&o.sampWarm, "sampling-warm", 2_000, "detailed (unmeasured) warm-up before each window")
	flag.BoolVar(&o.obs, "obs", false, "record an observability bundle: per-cycle samples, front-end events, metrics")
	flag.StringVar(&o.obsDir, "obs-dir", "obs", "directory for -obs output files")
	flag.Int64Var(&o.obsStride, "obs-stride", 64, "cycles between time-series samples under -obs")
	flag.Parse()

	if *list {
		for i, n := range workload.Names() {
			s, _ := workload.Lookup(n)
			fmt.Printf("%2d  %-18s %s\n", i+1, n, s.Category)
		}
		return
	}
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "fesim:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	cfg := core.DefaultConfig()
	cfg.Name = fmt.Sprintf("ftq%d", o.ftq)
	cfg.Frontend.FTQEntries = o.ftq
	cfg.Frontend.EnablePFC = !o.noPFC
	cfg.Frontend.BPU.FilterGHR = !o.noGHR
	cfg.WarmupInstrs = o.warmup
	cfg.MaxInstrs = o.instrs
	cfg.FastForward = o.fastFwd
	if o.sampInterval > 0 {
		cfg.Sampling = core.SamplingConfig{
			IntervalInstrs: o.sampInterval,
			DetailInstrs:   o.sampDetail,
			WarmInstrs:     o.sampWarm,
		}
	}

	switch o.hwpf {
	case "none":
	case "nextline":
		cfg.Frontend.Prefetcher = hwpf.NewNextLine(2)
	case "eip":
		eip, err := hwpf.NewEIP(hwpf.DefaultEIPConfig())
		if err != nil {
			return err
		}
		cfg.Frontend.Prefetcher = eip
	default:
		return fmt.Errorf("unknown -hwpf %q", o.hwpf)
	}

	var src trace.Source
	label := o.workload
	if o.tracePath != "" {
		label = "trace"
		f, err := os.Open(o.tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		r, err := trace.NewReader(f)
		if err != nil {
			return err
		}
		src = r
	} else {
		spec, ok := workload.Lookup(o.workload)
		if !ok {
			return fmt.Errorf("unknown workload %q (try -list)", o.workload)
		}
		s, err := spec.NewSource()
		if err != nil {
			return err
		}
		src = s
	}

	var fo *obs.FileObserver
	if o.obs {
		var err error
		fo, err = obs.NewFileObserver(o.obsDir, label, obs.Options{Stride: o.obsStride})
		if err != nil {
			return err
		}
		cfg.Obs = fo
	}

	st, err := core.RunSource(cfg, src)
	if err != nil {
		return err
	}
	if fo != nil {
		if err := fo.Close(); err != nil {
			return fmt.Errorf("closing observer: %w", err)
		}
		if err := writeMetrics(o.obsDir, label, &st, fo); err != nil {
			return err
		}
	}
	if o.json {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(jsonStats(st))
	}
	fmt.Print(st.Summary())
	return nil
}

// writeMetrics exports the run's metrics — the snapshot's headline series
// plus the observer's event counters — as canonical JSON and Prometheus
// text next to the sample/event files.
func writeMetrics(dir, label string, st *core.Stats, fo *obs.FileObserver) error {
	labels := []obs.Label{
		{Key: "workload", Value: label},
		{Key: "config", Value: st.Config},
	}
	ms := st.MetricSet(labels...)
	ms = append(ms, fo.EventCountsMetricSet(labels...)...)
	ms.Sort()
	base := filepath.Join(dir, obs.SanitizeLabel(label)+".metrics")
	jf, err := os.Create(base + ".json")
	if err != nil {
		return err
	}
	if err := ms.WriteJSON(jf); err != nil {
		jf.Close()
		return err
	}
	if err := jf.Close(); err != nil {
		return err
	}
	pf, err := os.Create(base + ".prom")
	if err != nil {
		return err
	}
	if err := ms.WritePrometheus(pf); err != nil {
		pf.Close()
		return err
	}
	return pf.Close()
}

// jsonStats augments the raw counters with the derived headline metrics so
// downstream scripts need no recomputation.
func jsonStats(st core.Stats) map[string]interface{} {
	return map[string]interface{}{
		"config":                   st.Config,
		"ipc":                      st.IPC(),
		"l1i_mpki":                 st.L1IMPKI(),
		"dynamic_bloat":            st.DynamicBloat(),
		"avg_head_fetch_cycles":    st.FTQ.AvgHeadFetch(),
		"avg_nonhead_fetch_cycles": st.FTQ.AvgNonHeadFetch(),
		"counters":                 st,
	}
}
