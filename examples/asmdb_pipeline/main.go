// AsmDB pipeline: the full software-instruction-prefetching workflow from
// the paper's §II-B and §IV on one workload —
//
//  1. execute and gather information (profiling run),
//  2. generate a profile (weighted CFG + miss ranking),
//  3. modify the target binary (insertion-site selection + rewriting),
//  4. rerun the binary with software instruction prefetching —
//
// on both the conservative and the industry-standard front-end, showing
// the paper's central result: the same prefetches that help a 2-entry FTQ
// do nothing (or harm) on a 24-entry FTQ.
package main

import (
	"fmt"
	"log"

	"frontsim/internal/asmdb"
	"frontsim/internal/cfg"
	"frontsim/internal/core"
	"frontsim/internal/program"
	"frontsim/internal/trace"
	"frontsim/internal/workload"
)

const (
	warmup  = 400_000
	measure = 1_200_000
	profile = 1_600_000
)

func run(cfgC core.Config, prog *program.Program, seed uint64) core.Stats {
	cfgC.WarmupInstrs, cfgC.MaxInstrs = warmup, measure
	st, err := core.RunSource(cfgC, program.NewExecutor(prog, seed))
	if err != nil {
		log.Fatal(err)
	}
	return st
}

func main() {
	spec, _ := workload.Lookup("public_srv_60")
	prog, err := spec.Build()
	if err != nil {
		log.Fatal(err)
	}
	seed := spec.Seed ^ 0x5eed5eed5eed5eed

	// Step 1-2: profile the instruction stream and build the weighted CFG.
	base := run(core.ConservativeConfig(), prog, seed)
	graph, err := cfg.Profile(
		trace.NewLimit(program.NewExecutor(prog, seed), profile),
		cfg.Options{IPC: base.IPC()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiled %d instructions: %d blocks, %.1f L1-I MPKI\n",
		graph.Instructions, len(graph.Nodes), graph.MPKI())

	// Step 3: rank misses, pick insertion sites, rewrite the binary.
	plan, err := asmdb.Build(graph, asmdb.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	rewritten, applied, err := asmdb.Apply(prog, plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan: %d insertions over %d miss targets (%.0f%% miss coverage, min distance %d instrs)\n",
		applied, plan.TargetsCovered, 100*plan.Coverage(), plan.MinDistance)
	fmt.Printf("static bloat: %.2f%% (%d -> %d instructions)\n\n",
		100*plan.StaticBloat(prog), prog.NumInstrs(), rewritten.NumInstrs())

	// Step 4: rerun on both front-ends.
	consAsmdb := run(core.ConservativeConfig(), rewritten, seed)
	fdp := run(core.DefaultConfig(), prog, seed)
	fdpAsmdb := run(core.DefaultConfig(), rewritten, seed)

	fmt.Printf("%-26s %8s %8s %10s\n", "configuration", "IPC", "MPKI", "dyn bloat")
	row := func(name string, st core.Stats) {
		fmt.Printf("%-26s %8.3f %8.1f %9.1f%%\n", name, st.IPC(), st.L1IMPKI(), 100*st.DynamicBloat())
	}
	row("conservative (FTQ=2)", base)
	row("asmdb + conservative", consAsmdb)
	row("fdp (FTQ=24)", fdp)
	row("asmdb + fdp", fdpAsmdb)

	fmt.Printf("\nAsmDB gains %+.1f%% on the conservative front-end but %+.1f%% on the\n",
		100*(consAsmdb.IPC()/base.IPC()-1), 100*(fdpAsmdb.IPC()/fdp.IPC()-1))
	fmt.Println("aggressive one — the destructive interference the paper characterizes.")
}
