// Quickstart: build a synthetic server workload, simulate it on the
// paper's two front-ends (conservative 2-entry FTQ and industry-standard
// 24-entry FTQ), and print the comparison — the minimal end-to-end use of
// the library's public surface.
package main

import (
	"fmt"
	"log"

	"frontsim/internal/core"
	"frontsim/internal/workload"
)

func main() {
	// Every workload from the paper's 48-trace suite is available by name.
	spec, ok := workload.Lookup("secret_srv12")
	if !ok {
		log.Fatal("unknown workload")
	}
	fmt.Printf("workload %s: %s category, %d functions\n\n", spec.Name, spec.Category, spec.Funcs)

	for _, mk := range []func() core.Config{core.ConservativeConfig, core.DefaultConfig} {
		cfg := mk()
		cfg.WarmupInstrs = 300_000
		cfg.MaxInstrs = 1_000_000

		src, err := spec.NewSource()
		if err != nil {
			log.Fatal(err)
		}
		st, err := core.RunSource(cfg, src)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s IPC %.3f  L1-I MPKI %5.1f  head-stall %3.0f%% of cycles  FTQ merge rate %.0f%%\n",
			cfg.Name,
			st.IPC(),
			st.L1IMPKI(),
			100*float64(st.FTQ.HeadStallCycles)/float64(st.Cycles),
			100*float64(st.FTQ.LinesMerged)/float64(st.FTQ.LinesMerged+st.FTQ.LinesRequested))
	}
	fmt.Println("\nThe deeper FTQ trades head-stall exposure for fetch overlap — the")
	fmt.Println("baseline effect the paper's characterization builds on (its Fig. 1).")
}
