// Scenarios: a hand-crafted demonstration of the paper's three front-end
// states (§III) using the FTQ directly:
//
//	Scenario 1 — shoot-through: every entry fetched, decode-bound.
//	Scenario 2 — stalling head: a slow head blocks completed followers.
//	Scenario 3 — shadow stalls: an entry reaches the head still fetching
//	             because the previous head only partially covered it.
//
// The example drives a small FTQ with a scripted memory so the state
// transitions are exact and visible.
package main

import (
	"fmt"

	"frontsim/internal/cache"
	"frontsim/internal/ftq"
	"frontsim/internal/isa"
)

// block builds a basic block of n ALU instructions at pc.
func block(pc isa.Addr, n int) []isa.Instr {
	out := make([]isa.Instr, n)
	for i := range out {
		out[i] = isa.Instr{PC: pc + isa.Addr(i*isa.InstrSize), Class: isa.ClassALU}
	}
	return out
}

// scriptedFetch returns per-line latencies from a table (default 4 cycles,
// an L1-I hit).
func scriptedFetch(lat map[isa.Addr]cache.Cycle) ftq.FetchFunc {
	return func(line isa.Addr, now cache.Cycle) cache.Cycle {
		if l, ok := lat[line.Line()]; ok {
			return now + l
		}
		return now + 4
	}
}

func drainAndReport(name string, q *ftq.FTQ, until cache.Cycle) {
	for now := cache.Cycle(0); now < until; now++ {
		q.Tick(now)
		q.PopReady(now, 6, nil)
	}
	st := q.Stats()
	fmt.Printf("%-28s head-stall=%3d cycles  waiting=%d entries (%d entry-cycles)  partial=%d entries\n",
		name, st.HeadStallCycles, st.WaitingEntries, st.WaitingEntryCycles, st.PartialEntries)
}

func main() {
	fmt.Println("FTQ scenario walkthrough (paper §III)")
	fmt.Println()

	// Scenario 1: every block hits the L1-I; the queue shoots through.
	q := ftq.New(4)
	fetch := scriptedFetch(nil)
	q.Push(block(0x1000, 4), 0, fetch)
	q.Push(block(0x2000, 4), 0, fetch)
	q.Push(block(0x3000, 4), 0, fetch)
	drainAndReport("scenario 1 (shoot-through)", q, 20)

	// Scenario 2: the head misses to the LLC (60 cycles) while its
	// followers hit; they complete and wait behind it.
	q = ftq.New(4)
	fetch = scriptedFetch(map[isa.Addr]cache.Cycle{0x1000: 60})
	q.Push(block(0x1000, 4), 0, fetch)
	q.Push(block(0x2000, 4), 0, fetch)
	q.Push(block(0x3000, 4), 0, fetch)
	drainAndReport("scenario 2 (stalling head)", q, 80)

	// Scenario 3: the head's 30-cycle stall only partially covers the
	// follower's 90-cycle fetch: the follower becomes head still fetching.
	q = ftq.New(4)
	fetch = scriptedFetch(map[isa.Addr]cache.Cycle{0x1000: 30, 0x2000: 90})
	q.Push(block(0x1000, 4), 0, fetch)
	q.Push(block(0x2000, 4), 0, fetch)
	q.Push(block(0x3000, 4), 0, fetch)
	drainAndReport("scenario 3 (shadow stall)", q, 120)

	fmt.Println()
	fmt.Println("Scenario 2 is where a software prefetch instruction helps — unless the")
	fmt.Println("prefetch itself adds entries that stall, which is the paper's finding on")
	fmt.Println("aggressive front-ends: inserted instructions raise Scenario-2 incidence")
	fmt.Println("faster than they remove it.")
}
