// Serveclient: drive a running simd service through serve.Client — the
// retrying client with jittered exponential backoff — firing a burst of
// concurrent duplicate and distinct cell requests, then verifying the
// service's guarantees from the outside:
//
//   - every response for the same fingerprint is byte-identical;
//   - the coalescing counter proves duplicates shared executions
//     (executed cells < requests);
//   - with -verify-cache, each response byte-matches the run-cache entry
//     at its fingerprint address (e.g. a cache cmd/experiments wrote).
//
// This is also the smoke driver behind `make serve-smoke`. Exit status 0
// means every check passed.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"sync"
	"time"

	"frontsim/internal/serve"
	"frontsim/internal/workload"
)

func main() {
	var (
		base     = flag.String("addr", "http://127.0.0.1:8091", "simd base URL")
		dup      = flag.Int("dup", 24, "concurrent duplicate requests for one cell")
		distinct = flag.Int("distinct", 8, "concurrent distinct cells (consecutive workloads)")
		series   = flag.String("series", "fdp24", "series for every cell")
		warmup   = flag.Int64("warmup", 0, "warmup instructions override (0 = server default)")
		instrs   = flag.Int64("instrs", 0, "measured instructions override (0 = server default)")
		profileI = flag.Int64("profile", 0, "profiling instructions override (0 = server default)")
		timeout  = flag.Duration("timeout", 10*time.Minute, "overall deadline")
		verify   = flag.String("verify-cache", "", "byte-compare responses against the run cache rooted here")
	)
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	client := &serve.Client{BaseURL: *base, MaxAttempts: 10, BaseBackoff: 50 * time.Millisecond}

	names := workload.Names()
	if *distinct+1 > len(names) {
		log.Fatalf("-distinct %d exceeds the %d-workload suite", *distinct, len(names)-1)
	}
	req := func(wl string) serve.CellRequest {
		return serve.CellRequest{
			Workload: wl, Series: *series,
			WarmupInstrs: *warmup, MeasureInstrs: *instrs, ProfileInstrs: *profileI,
		}
	}

	// One burst: dup requests for workload 0 plus one request for each of
	// the next distinct workloads, all in flight together.
	total := *dup + *distinct
	resps := make([]serve.CellResponse, total)
	errs := make([]error, total)
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		wl := names[0]
		if i >= *dup {
			wl = names[i-*dup+1]
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			resps[i], errs[i] = client.Cell(ctx, req(wl))
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			log.Fatalf("request %d: %v", i, err)
		}
	}

	// Duplicates must agree byte-for-byte.
	for i := 1; i < *dup; i++ {
		if resps[i].Fingerprint != resps[0].Fingerprint {
			log.Fatalf("duplicate %d fingerprint %s != %s", i, resps[i].Fingerprint, resps[0].Fingerprint)
		}
		if !bytes.Equal(resps[i].Stats, resps[0].Stats) {
			log.Fatalf("duplicate %d returned different bytes for fingerprint %s", i, resps[0].Fingerprint)
		}
	}

	// Coalescing proof from the service's own counters: the duplicates
	// cost at most one execution, so executed < total requests.
	metrics, err := client.Metrics(ctx)
	if err != nil {
		log.Fatalf("metrics: %v", err)
	}
	executed := metricValue(metrics, `simd_cells_total\{source="executed"\} (\d+)`)
	coalesced := metricValue(metrics, `simd_cells_total\{source="coalesced"\} (\d+)`)
	cached := metricValue(metrics, `simd_cells_total\{source="cache"\} (\d+)`)
	if executed >= int64(total) {
		log.Fatalf("no coalescing: %d executions for %d requests", executed, total)
	}

	if *verify != "" {
		for _, resp := range resps {
			if err := verifyAgainstCache(*verify, resp); err != nil {
				log.Fatalf("cache verification: %v", err)
			}
		}
		fmt.Printf("all %d responses verified against run cache %s\n", total, *verify)
	}

	fmt.Printf("%d requests ok (%d duplicates, %d distinct): executed %d, coalesced %d, cache hits %d\n",
		total, *dup, *distinct, executed, coalesced, cached)
}

// metricValue extracts a counter from Prometheus text; missing → 0.
func metricValue(text, pattern string) int64 {
	m := regexp.MustCompile(pattern).FindStringSubmatch(text)
	if m == nil {
		return 0
	}
	v, err := strconv.ParseInt(m[1], 10, 64)
	if err != nil {
		return 0
	}
	return v
}

// verifyAgainstCache asserts resp's stats bytes equal the run-cache entry
// at its fingerprint address — the byte-identity contract between served
// cells and cmd/experiments output sharing a fingerprint.
func verifyAgainstCache(dir string, resp serve.CellResponse) error {
	fp := resp.Fingerprint
	raw, err := os.ReadFile(filepath.Join(dir, fp[:2], fp+".json"))
	if err != nil {
		return fmt.Errorf("cell %s/%s: %w", resp.Workload, resp.Series, err)
	}
	var env struct {
		Value json.RawMessage `json:"value"`
	}
	if err := json.Unmarshal(raw, &env); err != nil {
		return fmt.Errorf("cell %s: parsing cache entry: %w", fp, err)
	}
	var want bytes.Buffer
	if err := json.Compact(&want, env.Value); err != nil {
		return err
	}
	if !bytes.Equal(resp.Stats, want.Bytes()) {
		return fmt.Errorf("cell %s: served bytes differ from cache entry:\nserved: %s\ncache:  %s",
			fp, resp.Stats, want.Bytes())
	}
	return nil
}
