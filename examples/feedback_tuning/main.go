// Feedback tuning: the paper's §VI second proposal in action. AsmDB's
// aggressiveness knobs are re-tuned from measured performance instead of a
// fixed profile-time policy: candidate rewritings are evaluated on the
// aggressive front-end and the best-performing binary wins — with the
// original, prefetch-free binary as the floor, so software prefetching can
// never be a regression.
package main

import (
	"fmt"
	"log"

	"frontsim/internal/cfg"
	"frontsim/internal/core"
	"frontsim/internal/feedback"
	"frontsim/internal/program"
	"frontsim/internal/trace"
	"frontsim/internal/workload"
)

func main() {
	spec, _ := workload.Lookup("secret_srv225")
	prog, err := spec.Build()
	if err != nil {
		log.Fatal(err)
	}
	seed := spec.Seed ^ 0x5eed5eed5eed5eed

	graph, err := cfg.Profile(
		trace.NewLimit(program.NewExecutor(prog, seed), 1_000_000),
		cfg.Options{IPC: 0.5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiled %s: %d blocks, %.1f MPKI\n\n", spec.Name, len(graph.Nodes), graph.MPKI())

	eval := core.DefaultConfig()
	eval.WarmupInstrs = 300_000
	eval.MaxInstrs = 800_000
	opts := feedback.DefaultOptions(eval, seed)

	res, err := feedback.Tune(prog, graph, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("baseline (no prefetching): IPC %.3f\n\n", res.BaselineIPC)
	fmt.Printf("%-8s %-6s %-11s %-8s %s\n", "fanout", "sites", "insertions", "IPC", "speedup")
	for _, c := range res.Candidates {
		marker := ""
		if c == res.Best {
			marker = "  <- chosen"
		}
		fmt.Printf("%-8.2f %-6d %-11d %-8.3f %.3f%s\n",
			c.Fanout, c.SitesPerTarget, c.Insertions, c.IPC, c.Speedup, marker)
	}
	if res.Best.Insertions == 0 {
		fmt.Println("\nfeedback disabled software prefetching for this workload —")
		fmt.Println("on an aggressive front-end that is frequently the right call.")
	} else {
		fmt.Printf("\nchosen operating point: fanout %.2f, %d sites/target (%+.1f%% over baseline)\n",
			res.Best.Fanout, res.Best.SitesPerTarget, 100*(res.Best.Speedup-1))
	}
}
