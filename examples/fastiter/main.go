// Fastiter: the edit-measure loop the run cache is built for. It runs a
// three-workload slice of the suite twice against the same on-disk cache —
// once cold, once warm — and prints both wall times plus the cache's
// hit/miss counters, demonstrating that a warm re-run skips simulation,
// profiling, and even program construction while producing bit-identical
// results.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"frontsim/internal/experiment"
	"frontsim/internal/runner"
	"frontsim/internal/workload"
)

func main() {
	dir, err := os.MkdirTemp("", "frontsim-cache-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	specs := workload.All()[:3]
	p := experiment.DefaultParams()
	p.WarmupInstrs = 200_000
	p.MeasureInstrs = 600_000
	p.ProfileInstrs = 800_000

	var times [2]time.Duration
	var results [2]string
	for pass := 0; pass < 2; pass++ {
		// A fresh handle per pass keeps the hit/miss counters per-pass;
		// the directory, and therefore the cached runs, persist.
		c, err := runner.OpenCache(dir)
		if err != nil {
			log.Fatal(err)
		}
		p.Cache = c

		start := time.Now() //lint:allow times the host-side cold/warm cache passes, not simulated cycles
		ms, err := experiment.RunSuite(specs, p, nil)
		if err != nil {
			log.Fatal(err)
		}
		times[pass] = time.Since(start) //lint:allow times the host-side cold/warm cache passes, not simulated cycles
		results[pass] = experiment.Figure1(ms).String()

		m := c.Metrics()
		label := [2]string{"cold", "warm"}[pass]
		fmt.Printf("%s pass: %8s  (%d hits, %d misses, %d stored)\n",
			label, times[pass].Round(time.Millisecond), m.Hits, m.Misses, m.Puts)
	}

	fmt.Println()
	fmt.Println(results[1])
	if results[0] != results[1] {
		log.Fatal("warm results diverged from cold results")
	}
	fmt.Printf("warm/cold = %.1f%%, tables byte-identical\n",
		100*float64(times[1])/float64(times[0]))
}
