// Prefetcher comparison: hardware instruction prefetchers (next-line and
// an EIP-style entangling prefetcher) against fetch-directed prefetching
// and AsmDB on one server workload — the comparator set behind the paper's
// Figure 1 series.
package main

import (
	"fmt"
	"log"

	"frontsim/internal/asmdb"
	"frontsim/internal/cfg"
	"frontsim/internal/core"
	"frontsim/internal/frontend"
	"frontsim/internal/hwpf"
	"frontsim/internal/program"
	"frontsim/internal/trace"
	"frontsim/internal/workload"
)

const (
	warmup  = 400_000
	measure = 1_200_000
)

func main() {
	spec, _ := workload.Lookup("secret_srv41")
	prog, err := spec.Build()
	if err != nil {
		log.Fatal(err)
	}
	seed := spec.Seed ^ 0x5eed5eed5eed5eed

	run := func(name string, pf frontend.InstrPrefetcher, p *program.Program, ftqDepth int) core.Stats {
		c := core.DefaultConfig()
		c.Name = name
		c.Frontend.FTQEntries = ftqDepth
		c.Frontend.Prefetcher = pf
		c.WarmupInstrs, c.MaxInstrs = warmup, measure
		st, err := core.RunSource(c, program.NewExecutor(p, seed))
		if err != nil {
			log.Fatal(err)
		}
		return st
	}

	base := run("conservative", nil, prog, 2)

	// AsmDB needs its profile-and-rewrite pipeline.
	graph, err := cfg.Profile(trace.NewLimit(program.NewExecutor(prog, seed), 1_600_000),
		cfg.Options{IPC: base.IPC()})
	if err != nil {
		log.Fatal(err)
	}
	plan, err := asmdb.Build(graph, asmdb.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	rewritten, _, err := asmdb.Apply(prog, plan)
	if err != nil {
		log.Fatal(err)
	}

	eip, err := hwpf.NewEIP(hwpf.DefaultEIPConfig())
	if err != nil {
		log.Fatal(err)
	}

	results := []struct {
		name string
		st   core.Stats
	}{
		{"conservative (FTQ=2)", base},
		{"asmdb + conservative", run("asmdb+cons", nil, rewritten, 2)},
		{"fdp (FTQ=24)", run("fdp", nil, prog, 24)},
		{"fdp + next-line(2)", run("fdp+nl", hwpf.NewNextLine(2), prog, 24)},
		{"fdp + eip", run("fdp+eip", eip, prog, 24)},
		{"fdp + asmdb", run("fdp+asmdb", nil, rewritten, 24)},
	}

	fmt.Printf("%-24s %8s %9s %8s\n", "configuration", "IPC", "speedup", "MPKI")
	for _, r := range results {
		fmt.Printf("%-24s %8.3f %8.2fx %8.1f\n", r.name, r.st.IPC(), r.st.IPC()/base.IPC(), r.st.L1IMPKI())
	}
	fmt.Printf("\nEIP learned %d entanglings and issued %d prefetches.\n", eip.Entangled(), eip.Issued())
}
