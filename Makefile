# Developer entry points; CI (.github/workflows/ci.yml) runs the same steps.

GO ?= go

.PHONY: all build lint test race audit vet check

all: check

build:
	$(GO) build ./...

# lint runs the simulator's custom static-analysis suite (cmd/simlint):
# determinism, clock/randomness hygiene, float equality, cache-key schema.
# Suppress a finding with `//lint:allow <reason>` — see DESIGN.md.
lint:
	$(GO) run ./cmd/simlint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# audit compiles the per-cycle invariant checks into every run (the
# `audit` build tag) and exercises the pipeline packages under them.
audit:
	$(GO) test -tags audit ./internal/core ./internal/ftq ./internal/frontend

vet:
	$(GO) vet ./...

check: vet build lint race audit
