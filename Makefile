# Developer entry points; CI (.github/workflows/ci.yml) runs the same steps.

GO ?= go

.PHONY: all build lint test race audit vet check obs-smoke

all: check

build:
	$(GO) build ./...

# lint runs the simulator's custom static-analysis suite (cmd/simlint):
# determinism, clock/randomness hygiene, float equality, cache-key schema.
# Suppress a finding with `//lint:allow <reason>` — see DESIGN.md.
lint:
	$(GO) run ./cmd/simlint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# audit compiles the per-cycle invariant checks into every run (the
# `audit` build tag) and exercises the pipeline packages under them.
audit:
	$(GO) test -tags audit ./internal/core ./internal/ftq ./internal/frontend

vet:
	$(GO) vet ./...

# obs-smoke proves observation is purely observational end to end: the
# same short run with and without -obs must print byte-identical JSON
# statistics, while the -obs run leaves a sample/event/metrics bundle.
obs-smoke:
	rm -rf /tmp/frontsim-obs-smoke && mkdir -p /tmp/frontsim-obs-smoke
	$(GO) run ./cmd/fesim -workload secret_srv12 -instrs 120000 -warmup 30000 -json > /tmp/frontsim-obs-smoke/off.json
	$(GO) run ./cmd/fesim -workload secret_srv12 -instrs 120000 -warmup 30000 -json \
		-obs -obs-dir /tmp/frontsim-obs-smoke/bundle -obs-stride 16 > /tmp/frontsim-obs-smoke/on.json
	cmp /tmp/frontsim-obs-smoke/off.json /tmp/frontsim-obs-smoke/on.json
	test -s /tmp/frontsim-obs-smoke/bundle/secret_srv12.samples.jsonl
	test -s /tmp/frontsim-obs-smoke/bundle/secret_srv12.metrics.json
	test -s /tmp/frontsim-obs-smoke/bundle/secret_srv12.metrics.prom
	@echo "obs-smoke: stats byte-identical with observation on/off"

check: vet build lint race audit obs-smoke
