# Developer entry points; CI (.github/workflows/ci.yml) runs the same steps.

GO ?= go

.PHONY: all build lint lint-strict test race audit vet check obs-smoke ff-smoke serve-smoke batch-smoke cluster-smoke prefetch-smoke sampling-smoke cover

all: check

build:
	$(GO) build ./...

# lint runs the simulator's custom static-analysis suite (cmd/simlint):
# determinism, clock/randomness hygiene, float equality, cache-key schema,
# context threading, lock discipline, goroutine lifecycle, and fingerprint
# purity. Suppress a finding with `//lint:allow <reason>` — see DESIGN.md.
lint:
	$(GO) run ./cmd/simlint ./...

# lint-strict is the CI invocation: the full suite over both the default
# and the audit-tagged file sets, with stale //lint:allow directives
# escalated to blocking findings.
lint-strict:
	$(GO) run ./cmd/simlint -strict ./...
	$(GO) run ./cmd/simlint -strict -tags audit ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# audit compiles the per-cycle invariant checks into every run (the
# `audit` build tag) and exercises the pipeline packages under them.
audit:
	$(GO) test -tags audit ./internal/core ./internal/ftq ./internal/frontend

vet:
	$(GO) vet ./...

# obs-smoke proves observation is purely observational end to end: the
# same short run with and without -obs must print byte-identical JSON
# statistics, while the -obs run leaves a sample/event/metrics bundle.
obs-smoke:
	rm -rf /tmp/frontsim-obs-smoke && mkdir -p /tmp/frontsim-obs-smoke
	$(GO) run ./cmd/fesim -workload secret_srv12 -instrs 120000 -warmup 30000 -json > /tmp/frontsim-obs-smoke/off.json
	$(GO) run ./cmd/fesim -workload secret_srv12 -instrs 120000 -warmup 30000 -json \
		-obs -obs-dir /tmp/frontsim-obs-smoke/bundle -obs-stride 16 > /tmp/frontsim-obs-smoke/on.json
	cmp /tmp/frontsim-obs-smoke/off.json /tmp/frontsim-obs-smoke/on.json
	test -s /tmp/frontsim-obs-smoke/bundle/secret_srv12.samples.jsonl
	test -s /tmp/frontsim-obs-smoke/bundle/secret_srv12.metrics.json
	test -s /tmp/frontsim-obs-smoke/bundle/secret_srv12.metrics.prom
	@echo "obs-smoke: stats byte-identical with observation on/off"

# ff-smoke proves the event-driven fast path is invisible end to end:
# the same runs with -fast-forward on and off must print byte-identical
# JSON statistics, both for a single cell (conservative and FDP
# front-ends) and for a scaled-down experiment suite.
ff-smoke:
	rm -rf /tmp/frontsim-ff-smoke && mkdir -p /tmp/frontsim-ff-smoke
	$(GO) run ./cmd/fesim -workload secret_srv12 -instrs 120000 -warmup 30000 -json \
		-fast-forward=false > /tmp/frontsim-ff-smoke/fdp-off.json
	$(GO) run ./cmd/fesim -workload secret_srv12 -instrs 120000 -warmup 30000 -json \
		-fast-forward=true > /tmp/frontsim-ff-smoke/fdp-on.json
	cmp /tmp/frontsim-ff-smoke/fdp-off.json /tmp/frontsim-ff-smoke/fdp-on.json
	$(GO) run ./cmd/fesim -workload secret_srv12 -instrs 120000 -warmup 30000 -json \
		-ftq 2 -fast-forward=false > /tmp/frontsim-ff-smoke/cons-off.json
	$(GO) run ./cmd/fesim -workload secret_srv12 -instrs 120000 -warmup 30000 -json \
		-ftq 2 -fast-forward=true > /tmp/frontsim-ff-smoke/cons-on.json
	cmp /tmp/frontsim-ff-smoke/cons-off.json /tmp/frontsim-ff-smoke/cons-on.json
	$(GO) run ./cmd/experiments -n 2 -warmup 50000 -instrs 150000 -profile 200000 \
		-no-cache -fast-forward=false -quiet > /tmp/frontsim-ff-smoke/suite-off.txt
	$(GO) run ./cmd/experiments -n 2 -warmup 50000 -instrs 150000 -profile 200000 \
		-no-cache -fast-forward=true -quiet > /tmp/frontsim-ff-smoke/suite-on.txt
	diff /tmp/frontsim-ff-smoke/suite-off.txt /tmp/frontsim-ff-smoke/suite-on.txt
	@echo "ff-smoke: stats byte-identical with fast-forward on/off"

# serve-smoke proves the serving layer end to end: a warm cmd/experiments
# cache provides the reference bytes; a cold simd (2 execution slots,
# 4-deep queue, so the burst also exercises 429 + client retry) serves the
# same cells over HTTP to 32 concurrent serveclient requests (24
# duplicates of one cell + 8 distinct); the service's counters must show
# coalescing (executions < requests); every response must byte-match the
# experiments cache entry at its fingerprint; and SIGTERM must drain,
# flush metrics, and exit 0.
serve-smoke:
	rm -rf /tmp/frontsim-serve-smoke && mkdir -p /tmp/frontsim-serve-smoke
	$(GO) build -o /tmp/frontsim-serve-smoke/experiments ./cmd/experiments
	$(GO) build -o /tmp/frontsim-serve-smoke/simd ./cmd/simd
	$(GO) build -o /tmp/frontsim-serve-smoke/serveclient ./examples/serveclient
	/tmp/frontsim-serve-smoke/experiments -figure 1 -n 9 -warmup 20000 -instrs 60000 \
		-profile 80000 -cache /tmp/frontsim-serve-smoke/expcache -quiet > /dev/null
	/tmp/frontsim-serve-smoke/simd -addr 127.0.0.1:18091 \
		-cache /tmp/frontsim-serve-smoke/simdcache \
		-warmup 20000 -instrs 60000 -profile 80000 -max-concurrent 2 -queue 4 \
		-metrics-out /tmp/frontsim-serve-smoke/final.prom \
		2> /tmp/frontsim-serve-smoke/simd.log & \
	SIMD_PID=$$!; \
	trap "kill $$SIMD_PID 2>/dev/null" EXIT; \
	sleep 1; \
	/tmp/frontsim-serve-smoke/serveclient -addr http://127.0.0.1:18091 \
		-dup 24 -distinct 8 -warmup 20000 -instrs 60000 -profile 80000 \
		-verify-cache /tmp/frontsim-serve-smoke/expcache \
		|| { cat /tmp/frontsim-serve-smoke/simd.log; exit 1; }; \
	kill -TERM $$SIMD_PID; \
	wait $$SIMD_PID || { echo "simd did not drain cleanly"; cat /tmp/frontsim-serve-smoke/simd.log; exit 1; }; \
	trap - EXIT; \
	test -s /tmp/frontsim-serve-smoke/final.prom
	@echo "serve-smoke: coalescing, backpressure, byte-identity, and graceful drain verified"

# batch-smoke proves lockstep batching is invisible end to end: the same
# cold suite run with -batch on and off must print byte-identical tables
# AND leave byte-identical run-cache directories (same file names, same
# bytes) — batching never leaks into results or cache identity.
batch-smoke:
	rm -rf /tmp/frontsim-batch-smoke && mkdir -p /tmp/frontsim-batch-smoke
	$(GO) build -o /tmp/frontsim-batch-smoke/experiments ./cmd/experiments
	/tmp/frontsim-batch-smoke/experiments -n 2 -warmup 50000 -instrs 150000 -profile 200000 \
		-cache /tmp/frontsim-batch-smoke/cache-batch -batch=true -quiet \
		> /tmp/frontsim-batch-smoke/batch.txt
	/tmp/frontsim-batch-smoke/experiments -n 2 -warmup 50000 -instrs 150000 -profile 200000 \
		-cache /tmp/frontsim-batch-smoke/cache-solo -batch=false -quiet \
		> /tmp/frontsim-batch-smoke/solo.txt
	diff /tmp/frontsim-batch-smoke/batch.txt /tmp/frontsim-batch-smoke/solo.txt
	diff -r /tmp/frontsim-batch-smoke/cache-batch /tmp/frontsim-batch-smoke/cache-solo
	@echo "batch-smoke: tables and cache dirs byte-identical with batching on/off"

# cluster-smoke proves sharded cluster mode end to end, in-process with
# real execution: 3 nodes, an overlapping 48-request storm where every
# duplicate lands on a NON-home node, asserting cross-node singleflight
# (global executions == distinct fingerprints), responses byte-identical
# to the experiment harness, cache convergence across all three nodes,
# and — with the home node killed mid-storm — degradation to local
# execution with no 5xx.
cluster-smoke:
	$(GO) test -race -count=1 -run 'TestClusterSmoke|TestClusterHomeKilled' -v ./internal/serve
	@echo "cluster-smoke: cross-node singleflight, byte-identity, convergence, and home-loss degradation verified"

# prefetch-smoke proves the cross-prefetcher matrix end to end: the
# mechanism ablation (one cell per prefetch mechanism on one workload) run
# cold and then warm against the same run cache must print byte-identical
# tables — every mechanism's identity dimension round-trips through the
# cache, and a second identical invocation is pure hits.
prefetch-smoke:
	rm -rf /tmp/frontsim-prefetch-smoke && mkdir -p /tmp/frontsim-prefetch-smoke
	$(GO) build -o /tmp/frontsim-prefetch-smoke/experiments ./cmd/experiments
	/tmp/frontsim-prefetch-smoke/experiments -ablation mechanism -n 1 \
		-warmup 50000 -instrs 150000 -profile 200000 \
		-cache /tmp/frontsim-prefetch-smoke/cache -quiet \
		> /tmp/frontsim-prefetch-smoke/cold.txt
	/tmp/frontsim-prefetch-smoke/experiments -ablation mechanism -n 1 \
		-warmup 50000 -instrs 150000 -profile 200000 \
		-cache /tmp/frontsim-prefetch-smoke/cache -quiet \
		> /tmp/frontsim-prefetch-smoke/warm.txt
	diff /tmp/frontsim-prefetch-smoke/cold.txt /tmp/frontsim-prefetch-smoke/warm.txt
	@echo "prefetch-smoke: mechanism matrix byte-identical cold vs warm"

# sampling-smoke proves SMARTS sampling end to end: a sampled run must
# report a 95% confidence interval containing the exact run's IPC, be
# byte-stable across identical re-runs, and address run-cache entries
# disjoint from the exact run's — a warm exact cache serves a sampled
# suite nothing, and a warm sampled re-run adds nothing.
sampling-smoke:
	rm -rf /tmp/frontsim-sampling-smoke && mkdir -p /tmp/frontsim-sampling-smoke
	$(GO) build -o /tmp/frontsim-sampling-smoke/fesim ./cmd/fesim
	$(GO) build -o /tmp/frontsim-sampling-smoke/experiments ./cmd/experiments
	/tmp/frontsim-sampling-smoke/fesim -workload secret_srv12 -instrs 1500000 -warmup 200000 \
		> /tmp/frontsim-sampling-smoke/exact.txt
	/tmp/frontsim-sampling-smoke/fesim -workload secret_srv12 -instrs 1500000 -warmup 200000 \
		-sampling-interval 30000 -sampling-detail 3000 -sampling-warm 6000 \
		> /tmp/frontsim-sampling-smoke/sampled1.txt
	/tmp/frontsim-sampling-smoke/fesim -workload secret_srv12 -instrs 1500000 -warmup 200000 \
		-sampling-interval 30000 -sampling-detail 3000 -sampling-warm 6000 \
		> /tmp/frontsim-sampling-smoke/sampled2.txt
	cmp /tmp/frontsim-sampling-smoke/sampled1.txt /tmp/frontsim-sampling-smoke/sampled2.txt
	exact=$$(awk '$$1=="IPC" && $$2!="estimate" {print $$2; exit}' /tmp/frontsim-sampling-smoke/exact.txt); \
	awk -v exact="$$exact" '$$1=="IPC" && $$2=="estimate" { lo=$$4; hi=$$5; gsub(/[\[\],]/,"",lo); gsub(/[\[\],]/,"",hi); \
		if (exact+0 < lo+0 || exact+0 > hi+0) { printf "FAIL: exact IPC %s outside sampled 95%% CI [%s, %s]\n", exact, lo, hi; exit 1 } \
		printf "exact IPC %s inside sampled 95%% CI [%s, %s]\n", exact, lo, hi; found=1 } \
		END { if (!found) { print "FAIL: no IPC estimate line"; exit 1 } }' /tmp/frontsim-sampling-smoke/sampled1.txt
	/tmp/frontsim-sampling-smoke/experiments -ablation mechanism -n 1 \
		-warmup 50000 -instrs 150000 -profile 200000 \
		-cache /tmp/frontsim-sampling-smoke/cache -quiet \
		> /tmp/frontsim-sampling-smoke/exact-table.txt
	n1=$$(find /tmp/frontsim-sampling-smoke/cache -type f | wc -l); \
	/tmp/frontsim-sampling-smoke/experiments -ablation mechanism -n 1 \
		-warmup 50000 -instrs 150000 -profile 200000 \
		-sampling-interval 30000 -sampling-detail 3000 -sampling-warm 6000 \
		-cache /tmp/frontsim-sampling-smoke/cache -quiet \
		> /tmp/frontsim-sampling-smoke/sampled-table1.txt; \
	n2=$$(find /tmp/frontsim-sampling-smoke/cache -type f | wc -l); \
	test "$$n2" -gt "$$n1" || { echo "FAIL: sampled suite stored no new cache entries (shared with exact?)"; exit 1; }; \
	/tmp/frontsim-sampling-smoke/experiments -ablation mechanism -n 1 \
		-warmup 50000 -instrs 150000 -profile 200000 \
		-sampling-interval 30000 -sampling-detail 3000 -sampling-warm 6000 \
		-cache /tmp/frontsim-sampling-smoke/cache -quiet \
		> /tmp/frontsim-sampling-smoke/sampled-table2.txt; \
	n3=$$(find /tmp/frontsim-sampling-smoke/cache -type f | wc -l); \
	test "$$n3" -eq "$$n2" || { echo "FAIL: warm sampled re-run grew the cache"; exit 1; }
	diff /tmp/frontsim-sampling-smoke/sampled-table1.txt /tmp/frontsim-sampling-smoke/sampled-table2.txt
	grep -q '±' /tmp/frontsim-sampling-smoke/sampled-table1.txt
	! grep -q '±' /tmp/frontsim-sampling-smoke/exact-table.txt
	@echo "sampling-smoke: CI containment, cache disjointness, and byte-stable re-runs verified"

# cover builds the coverage profile the CI gate ratchets on
# (.github/coverage-baseline.txt) and prints the total.
cover:
	$(GO) test -count=1 -coverprofile=/tmp/frontsim-cover.out -covermode=atomic ./internal/...
	$(GO) tool cover -func=/tmp/frontsim-cover.out | tail -1

check: vet build lint-strict race audit obs-smoke ff-smoke serve-smoke batch-smoke cluster-smoke prefetch-smoke sampling-smoke
