module frontsim

go 1.22
