// Package frontsim is a trace-driven CPU front-end simulator reproducing
// "A Characterization of the Effects of Software Instruction Prefetching
// on an Aggressive Front-end" (ISPASS 2023).
//
// The simulator models a decoupled fetch-directed-prefetching (FDP)
// front-end — branch-predictor-driven FTQ fill, out-of-order L1-I fetch,
// in-order decode, post-fetch correction — over a full cache hierarchy and
// a simplified out-of-order back-end, together with the AsmDB software
// instruction prefetcher (profile, CFG analysis, binary rewriting) and the
// 48-workload synthetic suite standing in for the paper's CVP-1 traces.
//
// Start with the examples/ directory, the cmd/experiments tool (which
// regenerates every table and figure in the paper), and DESIGN.md for the
// system inventory. The root-level benchmarks in bench_test.go map one
// benchmark to each paper artifact.
package frontsim
