package bpu

import (
	"testing"
	"testing/quick"

	"frontsim/internal/isa"
)

func defaultBPU(t *testing.T) *BPU {
	t.Helper()
	b, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.GHRBits = 0 },
		func(c *Config) { c.GHRBits = 65 },
		func(c *Config) { c.GshareBits = 0 },
		func(c *Config) { c.BimodalBits = 40 },
		func(c *Config) { c.BTBEntries = 0 },
		func(c *Config) { c.BTBEntries = 100 }, // 25 sets with 4 ways
		func(c *Config) { c.BTBWays = 3 },      // non-pow2 sets
		func(c *Config) { c.RASDepth = 0 },
		func(c *Config) { c.IndirectBits = 0 },
	}
	for i, m := range mutations {
		c := DefaultConfig()
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestPredictAndTrainPanicsOnNonBranch(t *testing.T) {
	b := defaultBPU(t)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on non-branch")
		}
	}()
	b.PredictAndTrain(isa.Instr{Class: isa.ClassALU})
}

func TestConditionalLearning(t *testing.T) {
	b := defaultBPU(t)
	// A strongly-biased taken branch should converge: first encounter is a
	// BTB miss (pre-decode recovery), then correct path.
	in := isa.Instr{PC: 0x1000, Class: isa.ClassBranch, Taken: true, Target: 0x2000}
	first := b.PredictAndTrain(in)
	if first.CorrectPath {
		t.Fatal("first taken encounter should be a BTB miss wrong path")
	}
	if first.Recovery != RecoverPreDecode || !first.BTBMiss {
		t.Fatalf("first = %+v", first)
	}
	correct := 0
	for i := 0; i < 100; i++ {
		if b.PredictAndTrain(in).CorrectPath {
			correct++
		}
	}
	if correct < 95 {
		t.Fatalf("converged correct = %d/100", correct)
	}
}

func TestAlternatingBranchEventuallyPredicted(t *testing.T) {
	// gshare should learn a strict alternation via history.
	b := defaultBPU(t)
	taken := true
	in := isa.Instr{PC: 0x1000, Class: isa.ClassBranch, Target: 0x4000}
	lastCorrect := 0
	for i := 0; i < 4000; i++ {
		in.Taken = taken
		res := b.PredictAndTrain(in)
		if i >= 3800 && res.CorrectPath {
			lastCorrect++
		}
		taken = !taken
	}
	if lastCorrect < 190 {
		t.Fatalf("alternation accuracy in last 200: %d", lastCorrect)
	}
}

func TestNotTakenBTBMissIsCorrectPath(t *testing.T) {
	b := defaultBPU(t)
	in := isa.Instr{PC: 0x3000, Class: isa.ClassBranch, Taken: false, Target: 0x5000}
	res := b.PredictAndTrain(in)
	if !res.CorrectPath || !res.BTBMiss {
		t.Fatalf("not-taken BTB miss: %+v", res)
	}
	if b.Stats().GHRFiltered != 1 {
		t.Fatalf("GHRFiltered = %d", b.Stats().GHRFiltered)
	}
	if b.GHR() != 0 {
		t.Fatal("filtered branch leaked into GHR")
	}
}

func TestGHRFilterDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FilterGHR = false
	b := MustNew(cfg)
	in := isa.Instr{PC: 0x3000, Class: isa.ClassBranch, Taken: false, Target: 0x5000}
	b.PredictAndTrain(in)
	if b.Stats().GHRFiltered != 0 {
		t.Fatal("filter counted while disabled")
	}
	// GHR got a 0 shifted in; push a taken branch through BTB-hit path and
	// confirm history evolves.
	tk := isa.Instr{PC: 0x3100, Class: isa.ClassBranch, Taken: true, Target: 0x6000}
	b.PredictAndTrain(tk) // allocates BTB
	b.PredictAndTrain(tk)
	if b.GHR()&1 != 1 {
		t.Fatalf("GHR = %b, want low bit set", b.GHR())
	}
}

func TestJumpAndCallBTB(t *testing.T) {
	b := defaultBPU(t)
	j := isa.Instr{PC: 0x4000, Class: isa.ClassJump, Taken: true, Target: 0x8000}
	if res := b.PredictAndTrain(j); res.CorrectPath || res.Recovery != RecoverPreDecode {
		t.Fatalf("first jump: %+v", res)
	}
	if res := b.PredictAndTrain(j); !res.CorrectPath {
		t.Fatalf("second jump: %+v", res)
	}
	c := isa.Instr{PC: 0x4100, Class: isa.ClassCall, Taken: true, Target: 0x9000}
	b.PredictAndTrain(c)
	if res := b.PredictAndTrain(c); !res.CorrectPath {
		t.Fatalf("second call: %+v", res)
	}
}

func TestCallReturnRAS(t *testing.T) {
	b := defaultBPU(t)
	call := isa.Instr{PC: 0x4000, Class: isa.ClassCall, Taken: true, Target: 0x8000}
	ret := isa.Instr{PC: 0x8004, Class: isa.ClassReturn, Taken: true, Target: 0x4004}
	// Warm the BTB for both.
	b.PredictAndTrain(call)
	b.PredictAndTrain(ret)
	// Now a matched call/return pair predicts correctly.
	b.PredictAndTrain(call)
	res := b.PredictAndTrain(ret)
	if !res.CorrectPath {
		t.Fatalf("return after call: %+v", res)
	}
	// A return to a different site mispredicts via RAS.
	b.PredictAndTrain(call)
	bad := isa.Instr{PC: 0x8004, Class: isa.ClassReturn, Taken: true, Target: 0x7777}
	res = b.PredictAndTrain(bad)
	if res.CorrectPath || res.Recovery != RecoverExecute || !res.TargetMispredict {
		t.Fatalf("bad return: %+v", res)
	}
}

func TestIndirectPrediction(t *testing.T) {
	b := defaultBPU(t)
	in := isa.Instr{PC: 0x5000, Class: isa.ClassIndirect, Taken: true, Target: 0xa000}
	// First: BTB miss, execute recovery (target unknowable at pre-decode).
	res := b.PredictAndTrain(in)
	if res.CorrectPath || res.Recovery != RecoverExecute {
		t.Fatalf("first indirect: %+v", res)
	}
	// Stable target becomes predictable.
	if res := b.PredictAndTrain(in); !res.CorrectPath {
		t.Fatalf("second indirect: %+v", res)
	}
	// Target change mispredicts once.
	in2 := in
	in2.Target = 0xb000
	res = b.PredictAndTrain(in2)
	if res.CorrectPath || !res.TargetMispredict {
		t.Fatalf("changed indirect: %+v", res)
	}
	if res := b.PredictAndTrain(in2); !res.CorrectPath {
		t.Fatalf("relearned indirect: %+v", res)
	}
}

func TestStatsAccounting(t *testing.T) {
	b := defaultBPU(t)
	in := isa.Instr{PC: 0x1000, Class: isa.ClassBranch, Taken: true, Target: 0x2000}
	for i := 0; i < 10; i++ {
		b.PredictAndTrain(in)
	}
	st := b.Stats()
	if st.Branches != 10 || st.CondBranches != 10 {
		t.Fatalf("stats %+v", st)
	}
	if st.BTBLookups != 10 || st.BTBMisses != 1 {
		t.Fatalf("BTB stats %+v", st)
	}
	if acc := st.CondAccuracy(); acc < 0.5 {
		t.Fatalf("accuracy %v", acc)
	}
	if hr := st.BTBHitRate(); hr != 0.9 {
		t.Fatalf("BTB hit rate %v", hr)
	}
	b.ResetStats()
	if b.Stats().Branches != 0 {
		t.Fatal("ResetStats did not clear")
	}
	var empty Stats
	if empty.CondAccuracy() != 0 || empty.BTBHitRate() != 0 {
		t.Fatal("empty stats rates should be 0")
	}
}

func TestBTBEvictionLRU(t *testing.T) {
	btb := NewBTB(1, 2)
	btb.Update(0x1000, 0x2000, isa.ClassJump)
	btb.Update(0x1004, 0x3000, isa.ClassJump)
	btb.Lookup(0x1000) // refresh
	btb.Update(0x1008, 0x4000, isa.ClassJump)
	if _, ok := btb.Lookup(0x1000); !ok {
		t.Fatal("refreshed entry evicted")
	}
	if _, ok := btb.Lookup(0x1004); ok {
		t.Fatal("LRU entry survived")
	}
	if btb.HitRate() == 0 {
		t.Fatal("hit rate zero")
	}
}

func TestBTBUpdateRefreshesTarget(t *testing.T) {
	btb := NewBTB(4, 2)
	btb.Update(0x1000, 0x2000, isa.ClassIndirect)
	btb.Update(0x1000, 0x9000, isa.ClassIndirect)
	e, ok := btb.Lookup(0x1000)
	if !ok || e.Target != 0x9000 {
		t.Fatalf("entry %+v ok=%v", e, ok)
	}
}

func TestBTBPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewBTB(3, 2)
}

func TestRASLIFO(t *testing.T) {
	r := NewRAS(4)
	for i := 1; i <= 3; i++ {
		r.Push(isa.Addr(i * 0x100))
	}
	for i := 3; i >= 1; i-- {
		a, ok := r.Pop()
		if !ok || a != isa.Addr(i*0x100) {
			t.Fatalf("pop %d: %v %v", i, a, ok)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("pop on empty should fail")
	}
}

func TestRASOverflowWraps(t *testing.T) {
	r := NewRAS(2)
	r.Push(1)
	r.Push(2)
	r.Push(3) // overwrites 1
	if a, _ := r.Pop(); a != 3 {
		t.Fatalf("got %v", a)
	}
	if a, _ := r.Pop(); a != 2 {
		t.Fatalf("got %v", a)
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("oldest entry should be lost")
	}
}

func TestRASProperty(t *testing.T) {
	// Property: with fewer pushes than depth, RAS behaves as a stack.
	f := func(addrs []uint32) bool {
		if len(addrs) > 32 {
			addrs = addrs[:32]
		}
		r := NewRAS(64)
		for _, a := range addrs {
			r.Push(isa.Addr(a))
		}
		for i := len(addrs) - 1; i >= 0; i-- {
			got, ok := r.Pop()
			if !ok || got != isa.Addr(addrs[i]) {
				return false
			}
		}
		_, ok := r.Pop()
		return !ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRecoveryString(t *testing.T) {
	for _, r := range []Recovery{RecoverNone, RecoverPreDecode, RecoverExecute, Recovery(9)} {
		if r.String() == "" {
			t.Fatal("empty recovery name")
		}
	}
}

func TestBiasedBranchHighAccuracy(t *testing.T) {
	// A 95%-taken branch should reach ~95% accuracy — the band the
	// synthetic workloads rely on for realistic FDP run-ahead.
	b := defaultBPU(t)
	in := isa.Instr{PC: 0x1000, Class: isa.ClassBranch, Target: 0x2000}
	correct := 0
	n := 2000
	for i := 0; i < n; i++ {
		in.Taken = i%20 != 0 // 95% taken
		if b.PredictAndTrain(in).CorrectPath {
			correct++
		}
	}
	if acc := float64(correct) / float64(n); acc < 0.9 {
		t.Fatalf("biased accuracy %v", acc)
	}
}

func TestTwoLevelBTB(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L1BTBEntries = 8 // 2 sets x 4 ways: tiny, forces L1 evictions
	b := MustNew(cfg)
	j := isa.Instr{PC: 0x4000, Class: isa.ClassJump, Taken: true, Target: 0x8000}
	// First: full miss (PFC recovery).
	if res := b.PredictAndTrain(j); res.CorrectPath {
		t.Fatal("first sight should miss")
	}
	// Second: L1 hit (trained both levels), no L2 fill.
	if res := b.PredictAndTrain(j); !res.CorrectPath || res.BTBL2Fill {
		t.Fatalf("second sight: %+v", res)
	}
	// Thrash the tiny L1 with same-set jumps, then revisit: L2-only hit.
	for i := 1; i <= 16; i++ {
		o := isa.Instr{PC: isa.Addr(0x4000 + i*8*4), Class: isa.ClassJump, Taken: true, Target: 0x9000}
		b.PredictAndTrain(o)
	}
	res := b.PredictAndTrain(j)
	if !res.CorrectPath {
		t.Fatalf("L2 should still identify the branch: %+v", res)
	}
	if !res.BTBL2Fill {
		t.Fatalf("expected L2-only fill: %+v", res)
	}
	if b.Stats().BTBL2Fills == 0 {
		t.Fatal("no L2 fills counted")
	}
	// Promotion means the next lookup hits L1 directly.
	if res := b.PredictAndTrain(j); res.BTBL2Fill {
		t.Fatal("promotion did not stick")
	}
}

func TestTwoLevelBTBConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L1BTBEntries = 7 // not a multiple of 4 ways
	if err := cfg.Validate(); err == nil {
		t.Fatal("accepted bad L1 BTB size")
	}
	cfg.L1BTBEntries = 12 // 3 sets
	if err := cfg.Validate(); err == nil {
		t.Fatal("accepted non-pow2 L1 BTB sets")
	}
	cfg.L1BTBEntries = -4
	if err := cfg.Validate(); err == nil {
		t.Fatal("accepted negative L1 BTB size")
	}
}
