// Shadow-branch decoding ("Exposing Shadow Branches", Chacon et al. —
// note the source-paper author overlap): the fetch engine decodes the
// unused bytes of every fetched cache line and pre-fills BTB entries for
// the direct branches it finds there, so a later fetch that actually
// steers through those branches finds them identified and FDP stays on
// path. The simulator is trace-driven and has no raw bytes, so the
// decoder learns each line's decodable branches the first time they
// execute and replays them — installing into the BTB without displacing
// trained entries — whenever the line is fetched again.

package bpu

import (
	"fmt"

	"frontsim/internal/isa"
)

// ShadowConfig sizes the shadow-branch decoder. The zero value
// (LineEntries == 0) disables the mechanism.
type ShadowConfig struct {
	// LineEntries is the number of decoded-line records tracked
	// (direct-mapped by line, a power of two); 0 disables shadow decoding.
	LineEntries int
	// MaxPerLine caps the branch records retained per cache line; a line
	// holds at most LineSize/InstrSize branches, and the decoder keeps the
	// first MaxPerLine it observes.
	MaxPerLine int
}

// DefaultShadowConfig tracks 4K lines with up to 4 branches each.
func DefaultShadowConfig() ShadowConfig {
	return ShadowConfig{LineEntries: 4096, MaxPerLine: 4}
}

// Enabled reports whether the configuration models shadow decoding.
func (c ShadowConfig) Enabled() bool { return c.LineEntries > 0 }

// Validate checks the configuration; the disabled zero value is valid.
func (c ShadowConfig) Validate() error {
	if !c.Enabled() {
		return nil
	}
	if c.LineEntries&(c.LineEntries-1) != 0 {
		return fmt.Errorf("bpu: shadow LineEntries %d must be a power of two", c.LineEntries)
	}
	maxSlots := isa.LineSize / isa.InstrSize
	if c.MaxPerLine <= 0 || c.MaxPerLine > maxSlots {
		return fmt.Errorf("bpu: shadow MaxPerLine %d out of (0,%d]", c.MaxPerLine, maxSlots)
	}
	return nil
}

// ShadowBranch is one decodable branch found in a cache line: a direct
// branch whose target is encoded in its bytes (conditionals, jumps,
// calls), or a return, whose existence — though not its target — decodes
// from the bytes and whose target the RAS supplies.
type ShadowBranch struct {
	PC     isa.Addr
	Target isa.Addr
	Class  isa.Class
}

// decodable reports whether a branch of this class is discoverable by
// decoding raw line bytes: indirect branches read their target from a
// register, so shadow decode cannot expose them.
func decodable(c isa.Class) bool {
	switch c {
	case isa.ClassBranch, isa.ClassJump, isa.ClassCall, isa.ClassReturn:
		return true
	}
	return false
}

// shadowLine is one line's decoded-branch record.
type shadowLine struct {
	line     isa.Addr
	valid    bool
	branches []ShadowBranch
}

// ShadowStats counts decoder behaviour.
type ShadowStats struct {
	Observed     int64 // decodable branches recorded
	LineConflict int64 // records reset by a different line mapping in
	CapDropped   int64 // branches dropped by the per-line cap
}

// ShadowDecoder is the learned stand-in for a byte-level shadow decoder:
// a direct-mapped table of per-line branch records.
type ShadowDecoder struct {
	cfg   ShadowConfig
	table []shadowLine

	stats ShadowStats
}

// NewShadowDecoder builds the decoder; the config must validate and be
// enabled.
func NewShadowDecoder(cfg ShadowConfig) (*ShadowDecoder, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Enabled() {
		return nil, fmt.Errorf("bpu: constructing a disabled shadow decoder")
	}
	return &ShadowDecoder{cfg: cfg, table: make([]shadowLine, cfg.LineEntries)}, nil
}

// Stats returns a snapshot of the decoder counters.
func (d *ShadowDecoder) Stats() ShadowStats { return d.stats }

func (d *ShadowDecoder) slot(line isa.Addr) *shadowLine {
	return &d.table[line.LineIndex()&uint64(d.cfg.LineEntries-1)]
}

// Observe records one executed instruction into its line's record when its
// class is byte-decodable. A direct branch with no encoded target (the
// trace carries none) is skipped — there is nothing to decode. A conflict
// (different line mapping to the slot) resets the record, as the decoded
// metadata belongs to whatever line the table tracks.
func (d *ShadowDecoder) Observe(in isa.Instr) {
	if !decodable(in.Class) {
		return
	}
	if in.Target == 0 && in.Class != isa.ClassReturn {
		return
	}
	line := in.PC.Line()
	s := d.slot(line)
	if !s.valid || s.line != line {
		if s.valid {
			d.stats.LineConflict++
		}
		*s = shadowLine{line: line, valid: true, branches: s.branches[:0]}
	}
	for i := range s.branches {
		if s.branches[i].PC == in.PC {
			s.branches[i].Target = in.Target
			s.branches[i].Class = in.Class
			return
		}
	}
	if len(s.branches) >= d.cfg.MaxPerLine {
		d.stats.CapDropped++
		return
	}
	s.branches = append(s.branches, ShadowBranch{PC: in.PC, Target: in.Target, Class: in.Class})
	d.stats.Observed++
}

// DecodeLine returns the branches decodable from the given fetched line,
// in observation order, or nil when the line has no record. The returned
// slice aliases the record: callers must not retain it across Observe
// calls.
func (d *ShadowDecoder) DecodeLine(line isa.Addr) []ShadowBranch {
	line = line.Line()
	if s := d.slot(line); s.valid && s.line == line {
		return s.branches
	}
	return nil
}
