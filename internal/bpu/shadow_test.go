package bpu

import (
	"testing"

	"frontsim/internal/isa"
)

func TestShadowConfigValidate(t *testing.T) {
	maxSlots := isa.LineSize / isa.InstrSize
	cases := []struct {
		name string
		cfg  ShadowConfig
		ok   bool
	}{
		{"disabled-zero", ShadowConfig{}, true},
		{"default", DefaultShadowConfig(), true},
		{"full-line", ShadowConfig{LineEntries: 8, MaxPerLine: maxSlots}, true},
		{"npot-entries", ShadowConfig{LineEntries: 3, MaxPerLine: 2}, false},
		{"zero-cap", ShadowConfig{LineEntries: 8, MaxPerLine: 0}, false},
		{"cap-over-line", ShadowConfig{LineEntries: 8, MaxPerLine: maxSlots + 1}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.cfg.Validate(); (err == nil) != tc.ok {
				t.Fatalf("Validate() = %v, want ok=%v", err, tc.ok)
			}
		})
	}
	if _, err := NewShadowDecoder(ShadowConfig{}); err == nil {
		t.Fatal("NewShadowDecoder accepted a disabled config")
	}
}

// TestShadowPartialLineDecode pins which instructions a line's record
// retains: direct branches and returns decode, indirect branches and
// non-branches never enter the record, and a direct branch the trace never
// gave a target is skipped — its bytes encode nothing to decode.
func TestShadowPartialLineDecode(t *testing.T) {
	d, err := NewShadowDecoder(ShadowConfig{LineEntries: 16, MaxPerLine: 8})
	if err != nil {
		t.Fatal(err)
	}
	line := isa.Addr(0x1000)
	ins := []isa.Instr{
		{PC: line + 0, Class: isa.ClassALU},
		{PC: line + 4, Class: isa.ClassBranch, Target: 0x2000},
		{PC: line + 8, Class: isa.ClassIndirect, Target: 0x3000},     // register target: not decodable
		{PC: line + 12, Class: isa.ClassIndirectCall, Target: 0x3400}, // register target: not decodable
		{PC: line + 16, Class: isa.ClassBranch, Target: 0},            // no encoded target in the trace
		{PC: line + 20, Class: isa.ClassReturn},                       // decodes despite Target 0 (RAS supplies it)
		{PC: line + 24, Class: isa.ClassCall, Target: 0x4000},
	}
	for _, in := range ins {
		d.Observe(in)
	}
	got := d.DecodeLine(line)
	want := []ShadowBranch{
		{PC: line + 4, Target: 0x2000, Class: isa.ClassBranch},
		{PC: line + 20, Target: 0, Class: isa.ClassReturn},
		{PC: line + 24, Target: 0x4000, Class: isa.ClassCall},
	}
	if len(got) != len(want) {
		t.Fatalf("DecodeLine = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DecodeLine[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	if st := d.Stats(); st.Observed != 3 {
		t.Fatalf("Observed = %d, want 3", st.Observed)
	}
	if d.DecodeLine(line+isa.LineSize) != nil {
		t.Fatal("unrecorded line decoded branches")
	}
}

// TestShadowObserveDedupe pins in-place update: re-observing a branch
// refreshes its record instead of appending a duplicate.
func TestShadowObserveDedupe(t *testing.T) {
	d, err := NewShadowDecoder(ShadowConfig{LineEntries: 16, MaxPerLine: 4})
	if err != nil {
		t.Fatal(err)
	}
	pc := isa.Addr(0x2000)
	d.Observe(isa.Instr{PC: pc, Class: isa.ClassBranch, Target: 0x100})
	d.Observe(isa.Instr{PC: pc, Class: isa.ClassJump, Target: 0x200})
	got := d.DecodeLine(pc.Line())
	if len(got) != 1 {
		t.Fatalf("record holds %d branches after duplicate PC, want 1", len(got))
	}
	if got[0].Target != 0x200 || got[0].Class != isa.ClassJump {
		t.Fatalf("duplicate observation did not update in place: %+v", got[0])
	}
	if st := d.Stats(); st.Observed != 1 {
		t.Fatalf("Observed = %d, want 1", st.Observed)
	}
}

// TestShadowPerLineCap pins the cap: the first MaxPerLine branches are
// kept, later arrivals drop and count.
func TestShadowPerLineCap(t *testing.T) {
	d, err := NewShadowDecoder(ShadowConfig{LineEntries: 16, MaxPerLine: 2})
	if err != nil {
		t.Fatal(err)
	}
	line := isa.Addr(0x3000)
	for i := 0; i < 4; i++ {
		d.Observe(isa.Instr{PC: line + isa.Addr(i*isa.InstrSize), Class: isa.ClassBranch, Target: 0x100})
	}
	if got := d.DecodeLine(line); len(got) != 2 {
		t.Fatalf("record holds %d branches, want cap 2", len(got))
	}
	if st := d.Stats(); st.CapDropped != 2 || st.Observed != 2 {
		t.Fatalf("stats %+v, want CapDropped=2 Observed=2", st)
	}
}

// TestShadowLineConflict pins direct-mapped replacement: a different line
// aliasing into a slot resets the record, and the old line stops decoding.
func TestShadowLineConflict(t *testing.T) {
	cfg := ShadowConfig{LineEntries: 4, MaxPerLine: 4}
	d, err := NewShadowDecoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lineA := isa.Addr(0)
	lineB := lineA + isa.Addr(cfg.LineEntries*isa.LineSize) // same slot
	d.Observe(isa.Instr{PC: lineA + 4, Class: isa.ClassBranch, Target: 0x100})
	d.Observe(isa.Instr{PC: lineB + 8, Class: isa.ClassCall, Target: 0x200})
	if got := d.DecodeLine(lineA); got != nil {
		t.Fatalf("evicted line still decodes %+v", got)
	}
	got := d.DecodeLine(lineB)
	if len(got) != 1 || got[0].PC != lineB+8 {
		t.Fatalf("conflicting line decodes %+v, want only its own branch", got)
	}
	if st := d.Stats(); st.LineConflict != 1 {
		t.Fatalf("LineConflict = %d, want 1", st.LineConflict)
	}
}

// TestInstallShadowBTBConflict pins the opportunistic fill policy against
// the BTB: shadow fills take invalid ways only, never displace trained
// entries, and leave an already-identified branch untouched.
func TestInstallShadowBTBConflict(t *testing.T) {
	b := NewBTB(1, 2) // one set, two ways: every PC conflicts
	pcs := []isa.Addr{0x100, 0x200, 0x300}

	if installed, dropped := b.InstallShadow(pcs[0], 0x1000, isa.ClassBranch); !installed || dropped {
		t.Fatalf("first fill: installed=%v dropped=%v, want true,false", installed, dropped)
	}
	// Re-filling the same PC is a no-op, not a drop.
	if installed, dropped := b.InstallShadow(pcs[0], 0x9999, isa.ClassJump); installed || dropped {
		t.Fatalf("refill of present entry: installed=%v dropped=%v, want false,false", installed, dropped)
	}
	if e, ok := b.Lookup(pcs[0]); !ok || e.Target != 0x1000 || !e.Shadow {
		t.Fatalf("entry after refill attempt: %+v ok=%v", e, ok)
	}

	if installed, dropped := b.InstallShadow(pcs[1], 0x2000, isa.ClassCall); !installed || dropped {
		t.Fatalf("second fill: installed=%v dropped=%v, want true,false", installed, dropped)
	}
	// Set now full of valid entries: the fill must drop, not evict.
	if installed, dropped := b.InstallShadow(pcs[2], 0x3000, isa.ClassBranch); installed || !dropped {
		t.Fatalf("fill into full set: installed=%v dropped=%v, want false,true", installed, dropped)
	}
	if _, ok := b.Lookup(pcs[2]); ok {
		t.Fatal("dropped shadow fill is somehow present")
	}
	if e, ok := b.Lookup(pcs[1]); !ok || e.Target != 0x2000 {
		t.Fatalf("resident entry disturbed by dropped fill: %+v ok=%v", e, ok)
	}
}

// TestShadowFlagReportsOnce pins ShadowHits accounting: the provenance
// flag survives exactly one Lookup, and training overwrites it.
func TestShadowFlagReportsOnce(t *testing.T) {
	b := NewBTB(4, 2)
	pc := isa.Addr(0x500)
	if installed, _ := b.InstallShadow(pc, 0x1000, isa.ClassBranch); !installed {
		t.Fatal("install failed")
	}
	if e, ok := b.Lookup(pc); !ok || !e.Shadow {
		t.Fatalf("first lookup: %+v ok=%v, want Shadow=true", e, ok)
	}
	if e, ok := b.Lookup(pc); !ok || e.Shadow {
		t.Fatalf("second lookup: %+v ok=%v, want Shadow cleared", e, ok)
	}
	// A fresh shadow fill then a training update: the flag must not survive
	// the overwrite.
	pc2 := isa.Addr(0x600)
	if installed, _ := b.InstallShadow(pc2, 0x2000, isa.ClassBranch); !installed {
		t.Fatal("install failed")
	}
	b.Update(pc2, 0x2000, isa.ClassBranch)
	if e, ok := b.Lookup(pc2); !ok || e.Shadow {
		t.Fatalf("trained entry still flagged shadow: %+v ok=%v", e, ok)
	}
}
