package bpu

import "frontsim/internal/isa"

// BTBEntry holds one identified branch. Shadow marks an entry pre-filled
// by the shadow-branch decoder rather than trained by a resolved branch;
// the flag reports once — Lookup clears it on the first hit — and training
// (Update) overwrites it, so ShadowHits counts distinct predictions a
// shadow fill enabled.
type BTBEntry struct {
	Target isa.Addr
	Class  isa.Class
	Shadow bool
}

type btbLine struct {
	tag   uint64
	valid bool
	lru   uint64
	entry BTBEntry
}

// BTB is a set-associative branch target buffer with LRU replacement.
type BTB struct {
	sets  int
	ways  int
	lines []btbLine
	clk   uint64

	lookups int64
	hits    int64
}

// NewBTB builds a BTB with the given geometry; sets must be a power of two.
func NewBTB(sets, ways int) *BTB {
	if sets <= 0 || sets&(sets-1) != 0 || ways <= 0 {
		panic("bpu: invalid BTB geometry")
	}
	return &BTB{sets: sets, ways: ways, lines: make([]btbLine, sets*ways)}
}

func (b *BTB) index(pc isa.Addr) int {
	return int((uint64(pc) >> 2) & uint64(b.sets-1))
}

func (b *BTB) tag(pc isa.Addr) uint64 {
	return (uint64(pc) >> 2) / uint64(b.sets)
}

func (b *BTB) set(pc isa.Addr) []btbLine {
	i := b.index(pc)
	return b.lines[i*b.ways : (i+1)*b.ways]
}

// Lookup returns the entry for pc if present.
func (b *BTB) Lookup(pc isa.Addr) (BTBEntry, bool) {
	b.lookups++
	tag := b.tag(pc)
	set := b.set(pc)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			b.clk++
			set[i].lru = b.clk
			b.hits++
			e := set[i].entry
			// A shadow-filled entry reports its provenance on the first
			// demand lookup only (the returned copy keeps the flag).
			set[i].entry.Shadow = false
			return e, true
		}
	}
	return BTBEntry{}, false
}

// InstallShadow pre-fills the entry for a branch decoded from a fetched
// line's shadow bytes. Shadow fills are strictly opportunistic: an entry
// already present is left untouched (installed=false, dropped=false), and
// when every way holds a valid entry the fill is dropped rather than
// displacing trained state (dropped=true).
func (b *BTB) InstallShadow(pc, target isa.Addr, class isa.Class) (installed, dropped bool) {
	tag := b.tag(pc)
	set := b.set(pc)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return false, false
		}
	}
	for i := range set {
		if !set[i].valid {
			b.clk++
			set[i] = btbLine{tag: tag, valid: true, lru: b.clk,
				entry: BTBEntry{Target: target, Class: class, Shadow: true}}
			return true, false
		}
	}
	return false, true
}

// Update installs or refreshes the entry for pc.
func (b *BTB) Update(pc, target isa.Addr, class isa.Class) {
	tag := b.tag(pc)
	set := b.set(pc)
	b.clk++
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].entry = BTBEntry{Target: target, Class: class}
			set[i].lru = b.clk
			return
		}
	}
	// Victim selection: prefer an invalid way, else LRU.
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	set[victim] = btbLine{tag: tag, valid: true, lru: b.clk, entry: BTBEntry{Target: target, Class: class}}
}

// HitRate returns the lifetime hit rate.
func (b *BTB) HitRate() float64 {
	if b.lookups == 0 {
		return 0
	}
	return float64(b.hits) / float64(b.lookups)
}

// RAS is a fixed-depth return address stack. Overflow wraps (overwriting
// the oldest entry) and underflow returns ok=false, as in hardware.
type RAS struct {
	buf  []isa.Addr
	top  int // index of next push slot
	size int // live entries, capped at depth
}

// NewRAS builds a RAS with the given depth.
func NewRAS(depth int) *RAS {
	if depth <= 0 {
		panic("bpu: invalid RAS depth")
	}
	return &RAS{buf: make([]isa.Addr, depth)}
}

// Push records a return address.
func (r *RAS) Push(a isa.Addr) {
	r.buf[r.top] = a
	r.top = (r.top + 1) % len(r.buf)
	if r.size < len(r.buf) {
		r.size++
	}
}

// Pop returns the most recent return address.
func (r *RAS) Pop() (isa.Addr, bool) {
	if r.size == 0 {
		return 0, false
	}
	r.top = (r.top - 1 + len(r.buf)) % len(r.buf)
	r.size--
	return r.buf[r.top], true
}

// Depth returns the number of live entries.
func (r *RAS) Depth() int { return r.size }
