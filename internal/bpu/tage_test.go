package bpu

import (
	"testing"

	"frontsim/internal/isa"
	"frontsim/internal/xrand"
)

func newTAGE(t *testing.T) *TAGE {
	t.Helper()
	tg, err := NewTAGE(DefaultTAGEConfig())
	if err != nil {
		t.Fatal(err)
	}
	return tg
}

func TestTAGEConfigValidate(t *testing.T) {
	if err := DefaultTAGEConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	muts := []func(*TAGEConfig){
		func(c *TAGEConfig) { c.NumTables = 0 },
		func(c *TAGEConfig) { c.NumTables = 9 },
		func(c *TAGEConfig) { c.TableBits = 0 },
		func(c *TAGEConfig) { c.TagBits = 0 },
		func(c *TAGEConfig) { c.TagBits = 20 },
		func(c *TAGEConfig) { c.MinHistory = 0 },
		func(c *TAGEConfig) { c.MaxHistory = c.MinHistory },
		func(c *TAGEConfig) { c.BaseBits = 0 },
	}
	for i, m := range muts {
		c := DefaultTAGEConfig()
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestTAGEHistoryLengthsGeometric(t *testing.T) {
	tg := newTAGE(t)
	prev := 0
	for i, h := range tg.hist {
		if h <= prev {
			t.Fatalf("history lengths not increasing: %v", tg.hist)
		}
		if i == 0 && h != tg.cfg.MinHistory {
			t.Fatalf("first history %d, want %d", h, tg.cfg.MinHistory)
		}
		prev = h
	}
	if tg.hist[len(tg.hist)-1] != tg.cfg.MaxHistory {
		t.Fatalf("last history %d, want %d", tg.hist[len(tg.hist)-1], tg.cfg.MaxHistory)
	}
}

// trainLoop runs predict/train over a generated outcome sequence and
// returns accuracy over the last half.
func trainLoop(tg *TAGE, pcs []isa.Addr, outcomes func(i int, pc isa.Addr) bool, n int) float64 {
	correct, counted := 0, 0
	for i := 0; i < n; i++ {
		pc := pcs[i%len(pcs)]
		want := outcomes(i, pc)
		got := tg.Predict(pc)
		if i > n/2 {
			counted++
			if got == want {
				correct++
			}
		}
		tg.Train(pc, want)
	}
	return float64(correct) / float64(counted)
}

func TestTAGEBiasedBranch(t *testing.T) {
	tg := newTAGE(t)
	acc := trainLoop(tg, []isa.Addr{0x1000}, func(i int, pc isa.Addr) bool { return i%10 != 0 }, 4000)
	if acc < 0.85 {
		t.Fatalf("biased accuracy %v", acc)
	}
}

func TestTAGEAlternatingBranch(t *testing.T) {
	tg := newTAGE(t)
	acc := trainLoop(tg, []isa.Addr{0x1000}, func(i int, pc isa.Addr) bool { return i%2 == 0 }, 4000)
	if acc < 0.95 {
		t.Fatalf("alternation accuracy %v (TAGE should capture period-2 history)", acc)
	}
}

func TestTAGEPeriodicPattern(t *testing.T) {
	// A period-7 pattern is beyond bimodal but well within TAGE's shortest
	// histories.
	tg := newTAGE(t)
	pattern := []bool{true, true, false, true, false, false, true}
	acc := trainLoop(tg, []isa.Addr{0x2000}, func(i int, pc isa.Addr) bool { return pattern[i%len(pattern)] }, 8000)
	if acc < 0.90 {
		t.Fatalf("periodic accuracy %v", acc)
	}
}

func TestTAGEOutperformsTournamentOnCorrelated(t *testing.T) {
	// Two branches where the second's outcome equals the first's previous
	// outcome: pure history correlation.
	mk := func(useTage bool) float64 {
		cfg := DefaultConfig()
		cfg.UseTAGE = useTage
		b := MustNew(cfg)
		r := xrand.New(99)
		last := false
		correct, total := 0, 0
		for i := 0; i < 6000; i++ {
			a := isa.Instr{PC: 0x1000, Class: isa.ClassBranch, Taken: r.Bool(0.5), Target: 0x5000}
			res := b.PredictAndTrain(a)
			_ = res
			dep := isa.Instr{PC: 0x1100, Class: isa.ClassBranch, Taken: last, Target: 0x6000}
			res = b.PredictAndTrain(dep)
			if i > 3000 {
				total++
				if res.CorrectPath {
					correct++
				}
			}
			last = a.Taken
		}
		return float64(correct) / float64(total)
	}
	tageAcc, tourAcc := mk(true), mk(false)
	// Both see history; TAGE must be at least competitive and both should
	// learn the correlation far beyond the 50% floor.
	if tageAcc < 0.9 {
		t.Fatalf("TAGE correlated accuracy %v", tageAcc)
	}
	if tageAcc+0.02 < tourAcc {
		t.Fatalf("TAGE (%v) should not trail the tournament (%v) on correlated history", tageAcc, tourAcc)
	}
}

func TestBPUUseTAGEConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UseTAGE = true
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if b.tage == nil {
		t.Fatal("TAGE not attached")
	}
	// Bad TAGE config is rejected through the BPU config path.
	cfg.TAGE = TAGEConfig{NumTables: -1}
	if _, err := New(cfg); err == nil {
		t.Fatal("accepted bad TAGE config")
	}
}

func TestTAGEAllocationOnMispredict(t *testing.T) {
	tg := newTAGE(t)
	// Drive mispredicts; allocations should appear in tagged components.
	r := xrand.New(7)
	for i := 0; i < 2000; i++ {
		pc := isa.Addr(0x1000 + uint64(r.Intn(16))*4)
		taken := r.Bool(0.5)
		tg.Predict(pc)
		tg.Train(pc, taken)
	}
	allocated := 0
	for c := range tg.comps {
		for i := range tg.comps[c] {
			if tg.comps[c][i].tag != 0 || tg.comps[c][i].ctr != 0 {
				allocated++
			}
		}
	}
	if allocated == 0 {
		t.Fatal("no tagged entries allocated under mispredictions")
	}
}
