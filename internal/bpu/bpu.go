// Package bpu implements the branch-prediction substrate the decoupled
// front-end runs ahead with: a global history register with the Ishii et
// al. not-taken/BTB-miss filtering option, a bimodal+gshare tournament
// direction predictor (with a TAGE-like option), a set-associative branch
// target buffer, a return address stack, and a history-hashed indirect
// target predictor.
//
// The simulator is trace-driven, so prediction is evaluated against the
// known true outcome: PredictAndTrain returns how the front-end would have
// behaved (correct path, wrong path recoverable at pre-decode via
// post-fetch correction, or wrong path until execute) and trains the
// structures with the truth.
package bpu

import (
	"fmt"

	"frontsim/internal/isa"
)

// Recovery describes when the front-end learns it left the true path.
type Recovery uint8

const (
	// RecoverNone: the front-end followed the true path.
	RecoverNone Recovery = iota
	// RecoverPreDecode: a BTB-missed direct branch is discoverable when the
	// fetched cache line is pre-decoded (post-fetch correction, §II-A).
	RecoverPreDecode
	// RecoverExecute: the wrong path persists until the branch resolves in
	// the back-end.
	RecoverExecute
)

// String names the recovery point.
func (r Recovery) String() string {
	switch r {
	case RecoverNone:
		return "none"
	case RecoverPreDecode:
		return "pre-decode"
	case RecoverExecute:
		return "execute"
	}
	return fmt.Sprintf("recovery(%d)", uint8(r))
}

// Result reports the front-end-visible outcome of predicting one branch.
type Result struct {
	// CorrectPath is true when fetch continues along the true path.
	CorrectPath bool
	// Recovery is where the wrong path gets corrected (when !CorrectPath).
	Recovery Recovery
	// BTBMiss reports the branch was not identified by the BTB.
	BTBMiss bool
	// DirectionMispredict reports a conditional predicted the wrong way.
	DirectionMispredict bool
	// TargetMispredict reports an identified branch whose predicted target
	// (RAS or indirect predictor) was wrong.
	TargetMispredict bool
	// BTBL2Fill reports the branch was found only in the second BTB level
	// (two-level configuration): correct path, but the fill engine pays a
	// bubble while the entry is promoted.
	BTBL2Fill bool
}

// Config sizes the predictor structures. Defaults follow the
// industry-perspective FDP papers' budgets.
type Config struct {
	// GHRBits is the global history length used by gshare hashing.
	GHRBits int
	// GshareBits log2-sizes the gshare table.
	GshareBits int
	// BimodalBits log2-sizes the bimodal table.
	BimodalBits int
	// ChooserBits log2-sizes the tournament chooser.
	ChooserBits int
	// BTBEntries and BTBWays size the branch target buffer.
	BTBEntries int
	BTBWays    int
	// RASDepth is the return address stack depth.
	RASDepth int
	// IndirectBits log2-sizes the indirect target table.
	IndirectBits int
	// FilterGHR enables the Ishii et al. improvement: not-taken branches
	// that miss in the BTB do not pollute the GHR (they look like
	// sequential fetch, §II-A).
	FilterGHR bool
	// UseTAGE replaces the bimodal+gshare tournament with the TAGE-lite
	// predictor for conditional directions (ablation comparator).
	UseTAGE bool
	// L1BTBEntries, when positive, splits the BTB into two levels as in
	// the Ishii et al. design: a small first-level BTB consulted at full
	// fill speed (this many entries, same associativity) backed by the
	// main BTB; a hit only in the second level still identifies the
	// branch but costs the front-end a fill bubble (Result.BTBL2Fill).
	// Zero keeps the single-level BTB.
	L1BTBEntries int
	// TAGE sizes the TAGE-lite predictor when UseTAGE is set; the zero
	// value selects DefaultTAGEConfig.
	TAGE TAGEConfig
}

// DefaultConfig returns the paper-scale predictor budget.
func DefaultConfig() Config {
	return Config{
		GHRBits:      32,
		GshareBits:   16,
		BimodalBits:  14,
		ChooserBits:  14,
		BTBEntries:   16384,
		BTBWays:      4,
		RASDepth:     64,
		IndirectBits: 12,
		FilterGHR:    true,
	}
}

// Validate checks structural parameters.
func (c Config) Validate() error {
	if c.GHRBits <= 0 || c.GHRBits > 64 {
		return fmt.Errorf("bpu: GHRBits %d out of (0,64]", c.GHRBits)
	}
	for _, v := range []struct {
		name string
		bits int
	}{
		{"GshareBits", c.GshareBits},
		{"BimodalBits", c.BimodalBits},
		{"ChooserBits", c.ChooserBits},
		{"IndirectBits", c.IndirectBits},
	} {
		if v.bits <= 0 || v.bits > 28 {
			return fmt.Errorf("bpu: %s %d out of range", v.name, v.bits)
		}
	}
	if c.BTBEntries <= 0 || c.BTBWays <= 0 || c.BTBEntries%c.BTBWays != 0 {
		return fmt.Errorf("bpu: BTB geometry %d/%d invalid", c.BTBEntries, c.BTBWays)
	}
	sets := c.BTBEntries / c.BTBWays
	if sets&(sets-1) != 0 {
		return fmt.Errorf("bpu: BTB sets %d not a power of two", sets)
	}
	if c.RASDepth <= 0 {
		return fmt.Errorf("bpu: RASDepth %d", c.RASDepth)
	}
	if c.L1BTBEntries < 0 || c.L1BTBEntries%c.BTBWays != 0 {
		return fmt.Errorf("bpu: L1BTBEntries %d not a multiple of ways", c.L1BTBEntries)
	}
	if c.L1BTBEntries > 0 {
		sets := c.L1BTBEntries / c.BTBWays
		if sets&(sets-1) != 0 {
			return fmt.Errorf("bpu: L1 BTB sets %d not a power of two", sets)
		}
	}
	if c.UseTAGE {
		t := c.TAGE
		if t == (TAGEConfig{}) {
			t = DefaultTAGEConfig()
		}
		if err := t.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Stats counts predictor behaviour.
type Stats struct {
	Branches            int64
	CondBranches        int64
	CondMispredicts     int64
	BTBLookups          int64
	BTBMisses           int64
	BTBMissTaken        int64 // BTB misses on taken/unconditional branches
	RASPredictions      int64
	RASMispredicts      int64
	IndirectPredictions int64
	IndirectMispredicts int64
	WrongPath           int64 // results where CorrectPath=false
	GHRFiltered         int64 // not-taken BTB-miss branches kept out of GHR
	BTBL2Fills          int64 // hits found only in the second BTB level
	ShadowInstalls      int64 // BTB entries pre-filled by shadow decoding
	ShadowDrops         int64 // shadow fills dropped (set full of trained entries)
	ShadowHits          int64 // BTB hits a shadow fill enabled (first hit per fill)
}

// CondAccuracy returns conditional direction accuracy.
func (s *Stats) CondAccuracy() float64 {
	if s.CondBranches == 0 {
		return 0
	}
	return 1 - float64(s.CondMispredicts)/float64(s.CondBranches)
}

// BTBHitRate returns the BTB hit rate.
func (s *Stats) BTBHitRate() float64 {
	if s.BTBLookups == 0 {
		return 0
	}
	return 1 - float64(s.BTBMisses)/float64(s.BTBLookups)
}

// BPU is the complete branch prediction unit.
type BPU struct {
	cfg Config

	ghr     uint64
	ghrMask uint64

	gshare  []uint8 // 2-bit counters
	bimodal []uint8
	chooser []uint8 // 2-bit: >=2 prefer gshare

	btb   *BTB
	btbL1 *BTB // non-nil in the two-level configuration
	ras   *RAS
	ind   []isa.Addr // indirect target table
	tage  *TAGE      // non-nil when cfg.UseTAGE

	stats Stats
}

// lookupBTB consults the one- or two-level BTB. l2Only reports a hit found
// only in the second level (entry promoted to L1 as a side effect). Hits on
// shadow-filled entries are counted here — the entry's first-hit Shadow
// flag is exactly one prediction the pre-fill enabled.
func (b *BPU) lookupBTB(pc isa.Addr) (hit, l2Only bool) {
	if b.btbL1 == nil {
		e, ok := b.btb.Lookup(pc)
		if ok && e.Shadow {
			b.stats.ShadowHits++
		}
		return ok, false
	}
	if _, ok := b.btbL1.Lookup(pc); ok {
		// Keep the second level's recency warm too (inclusive management).
		b.btb.Lookup(pc)
		return true, false
	}
	e, ok := b.btb.Lookup(pc)
	if !ok {
		return false, false
	}
	if e.Shadow {
		b.stats.ShadowHits++
	}
	b.btbL1.Update(pc, e.Target, e.Class)
	return true, true
}

// ShadowInstall pre-fills the main BTB with a branch the shadow decoder
// exposed from a fetched line. Fills never displace trained entries: only
// invalid ways are used, and a full set drops the fill (counted). The
// two-level configuration installs into the second level only — shadow
// fills are speculative metadata, not promotion-worthy hits.
func (b *BPU) ShadowInstall(sb ShadowBranch) {
	installed, dropped := b.btb.InstallShadow(sb.PC, sb.Target, sb.Class)
	switch {
	case installed:
		b.stats.ShadowInstalls++
	case dropped:
		b.stats.ShadowDrops++
	}
}

// updateBTB trains both levels with the resolved branch.
func (b *BPU) updateBTB(pc, target isa.Addr, class isa.Class) {
	b.btb.Update(pc, target, class)
	if b.btbL1 != nil {
		b.btbL1.Update(pc, target, class)
	}
}

// New builds a BPU; the config must validate.
func New(cfg Config) (*BPU, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	b := &BPU{
		cfg:     cfg,
		ghrMask: (uint64(1) << cfg.GHRBits) - 1,
		gshare:  make([]uint8, 1<<cfg.GshareBits),
		bimodal: make([]uint8, 1<<cfg.BimodalBits),
		chooser: make([]uint8, 1<<cfg.ChooserBits),
		btb:     NewBTB(cfg.BTBEntries/cfg.BTBWays, cfg.BTBWays),
		ras:     NewRAS(cfg.RASDepth),
		ind:     make([]isa.Addr, 1<<cfg.IndirectBits),
	}
	// Weakly-taken initial counters converge faster on loop-heavy code.
	for i := range b.gshare {
		b.gshare[i] = 2
	}
	for i := range b.bimodal {
		b.bimodal[i] = 2
	}
	for i := range b.chooser {
		b.chooser[i] = 1
	}
	if cfg.UseTAGE {
		tcfg := cfg.TAGE
		if tcfg == (TAGEConfig{}) {
			tcfg = DefaultTAGEConfig()
		}
		tage, err := NewTAGE(tcfg)
		if err != nil {
			return nil, err
		}
		b.tage = tage
	}
	if cfg.L1BTBEntries > 0 {
		b.btbL1 = NewBTB(cfg.L1BTBEntries/cfg.BTBWays, cfg.BTBWays)
	}
	return b, nil
}

// MustNew panics on config error; convenience for defaults known valid.
func MustNew(cfg Config) *BPU {
	b, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return b
}

// Stats returns a snapshot of the counters.
func (b *BPU) Stats() Stats { return b.stats }

// ResetStats clears counters, keeping learned state.
func (b *BPU) ResetStats() { b.stats = Stats{} }

// GHR exposes the current (masked) global history for tests.
func (b *BPU) GHR() uint64 { return b.ghr & b.ghrMask }

func (b *BPU) gshareIndex(pc isa.Addr) int {
	h := uint64(pc) >> 2
	h ^= b.ghr & b.ghrMask
	return int(h & uint64(len(b.gshare)-1))
}

func (b *BPU) bimodalIndex(pc isa.Addr) int {
	return int((uint64(pc) >> 2) & uint64(len(b.bimodal)-1))
}

func (b *BPU) chooserIndex(pc isa.Addr) int {
	return int((uint64(pc) >> 2) & uint64(len(b.chooser)-1))
}

func counterTaken(c uint8) bool { return c >= 2 }

func bump(c uint8, taken bool) uint8 {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// predictDirection returns the direction prediction without training
// (tournament by default, TAGE-lite when configured).
func (b *BPU) predictDirection(pc isa.Addr) bool {
	if b.tage != nil {
		return b.tage.Predict(pc)
	}
	g := counterTaken(b.gshare[b.gshareIndex(pc)])
	m := counterTaken(b.bimodal[b.bimodalIndex(pc)])
	if counterTaken(b.chooser[b.chooserIndex(pc)]) {
		return g
	}
	return m
}

// trainDirection updates tables with the true outcome.
func (b *BPU) trainDirection(pc isa.Addr, taken bool) {
	if b.tage != nil {
		b.tage.Train(pc, taken)
		return
	}
	gi, mi, ci := b.gshareIndex(pc), b.bimodalIndex(pc), b.chooserIndex(pc)
	g := counterTaken(b.gshare[gi])
	m := counterTaken(b.bimodal[mi])
	if g != m {
		b.chooser[ci] = bump(b.chooser[ci], g == taken)
	}
	b.gshare[gi] = bump(b.gshare[gi], taken)
	b.bimodal[mi] = bump(b.bimodal[mi], taken)
}

func (b *BPU) pushGHR(taken bool) {
	b.ghr <<= 1
	if taken {
		b.ghr |= 1
	}
	b.ghr &= b.ghrMask
}

func (b *BPU) indirectIndex(pc isa.Addr) int {
	// Per-site last-target prediction: indexing by PC alone outperforms
	// history mixing here because the dominant indirect behaviour is
	// temporal repetition of a site's previous target; folding history in
	// scatters each site across many mostly-cold slots.
	h := (uint64(pc) >> 2) * 0x9e3779b97f4a7c15 >> 32
	return int(h & uint64(len(b.ind)-1))
}

// PredictAndTrain evaluates the front-end outcome for one dynamic branch
// (in must satisfy in.Class.IsBranch()) and trains all structures with the
// true outcome. The returned Result tells the caller whether run-ahead
// fetch stayed on the true path and, if not, where it recovers.
func (b *BPU) PredictAndTrain(in isa.Instr) Result {
	if !in.Class.IsBranch() {
		panic(fmt.Sprintf("bpu: PredictAndTrain on non-branch %v", in.Class))
	}
	b.stats.Branches++
	b.stats.BTBLookups++

	btbHit, l2Only := b.lookupBTB(in.PC)
	if l2Only {
		b.stats.BTBL2Fills++
	}
	var res Result

	switch in.Class {
	case isa.ClassBranch:
		b.stats.CondBranches++
		predTaken := b.predictDirection(in.PC)
		b.trainDirection(in.PC, in.Taken)
		if !btbHit {
			b.stats.BTBMisses++
			if in.Taken {
				// The front-end fetched sequentially past an undetected
				// taken branch; pre-decode of the fetched line exposes the
				// direct branch and its target (PFC).
				b.stats.BTBMissTaken++
				res = Result{CorrectPath: false, Recovery: RecoverPreDecode, BTBMiss: true}
				b.pushGHR(true)
			} else {
				// Sequential fetch was correct anyway. With FilterGHR the
				// branch stays out of the history (it was invisible).
				res = Result{CorrectPath: true, BTBMiss: true}
				if b.cfg.FilterGHR {
					b.stats.GHRFiltered++
				} else {
					b.pushGHR(false)
				}
			}
		} else {
			correct := predTaken == in.Taken
			if !correct {
				b.stats.CondMispredicts++
				res = Result{CorrectPath: false, Recovery: RecoverExecute, DirectionMispredict: true}
			} else {
				res = Result{CorrectPath: true}
			}
			b.pushGHR(in.Taken)
		}
	case isa.ClassJump, isa.ClassCall:
		if !btbHit {
			b.stats.BTBMisses++
			b.stats.BTBMissTaken++
			res = Result{CorrectPath: false, Recovery: RecoverPreDecode, BTBMiss: true}
		} else {
			// Direct target stored in the BTB; targets of direct branches
			// never change.
			res = Result{CorrectPath: true}
		}
		if in.Class == isa.ClassCall {
			b.ras.Push(in.PC + isa.InstrSize)
		}
	case isa.ClassReturn:
		if !btbHit {
			b.stats.BTBMisses++
			b.stats.BTBMissTaken++
			// Pre-decode identifies the return; the RAS then supplies the
			// target, so PFC recovers it like other direct branches.
			res = Result{CorrectPath: false, Recovery: RecoverPreDecode, BTBMiss: true}
			b.ras.Pop()
		} else {
			b.stats.RASPredictions++
			pred, ok := b.ras.Pop()
			if ok && pred == in.Target {
				res = Result{CorrectPath: true}
			} else {
				b.stats.RASMispredicts++
				res = Result{CorrectPath: false, Recovery: RecoverExecute, TargetMispredict: true}
			}
		}
	case isa.ClassIndirect, isa.ClassIndirectCall:
		if !btbHit {
			b.stats.BTBMisses++
			b.stats.BTBMissTaken++
			// Target comes from a register: pre-decode cannot recover it.
			res = Result{CorrectPath: false, Recovery: RecoverExecute, BTBMiss: true}
		} else {
			b.stats.IndirectPredictions++
			idx := b.indirectIndex(in.PC)
			pred := b.ind[idx]
			if pred == in.Target {
				res = Result{CorrectPath: true}
			} else {
				b.stats.IndirectMispredicts++
				res = Result{CorrectPath: false, Recovery: RecoverExecute, TargetMispredict: true}
			}
			b.ind[idx] = in.Target
		}
		if in.Class == isa.ClassIndirectCall {
			b.ras.Push(in.PC + isa.InstrSize)
		}
	}

	// Train the BTB with the truth: allocate on taken/unconditional
	// branches (a not-taken conditional that was never seen leaves no BTB
	// footprint, matching real allocate-on-taken BTBs).
	if in.Taken || btbHit {
		b.updateBTB(in.PC, in.Target, in.Class)
	}
	// Indirect table warms even on a BTB miss so the next encounter can
	// predict.
	if in.Class.IsIndirect() && !btbHit {
		b.ind[b.indirectIndex(in.PC)] = in.Target
	}

	if l2Only {
		res.BTBL2Fill = true
	}
	if !res.CorrectPath {
		b.stats.WrongPath++
	}
	return res
}
