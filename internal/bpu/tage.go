package bpu

import (
	"fmt"
	"math"

	"frontsim/internal/isa"
)

// TAGEConfig sizes the TAGE-lite conditional direction predictor: a
// bimodal base table plus NumTables partially-tagged components indexed
// with geometrically increasing history lengths (Seznec & Michaud's TAGE,
// reduced: no loop predictor, no statistical corrector, 2-bit useful
// counters).
type TAGEConfig struct {
	// NumTables is the number of tagged components.
	NumTables int
	// TableBits log2-sizes each tagged component.
	TableBits int
	// TagBits is the partial tag width.
	TagBits int
	// MinHistory and MaxHistory bound the geometric history series.
	MinHistory int
	MaxHistory int
	// BaseBits log2-sizes the bimodal base predictor.
	BaseBits int
}

// DefaultTAGEConfig returns a budget comparable to the tournament
// predictor's.
func DefaultTAGEConfig() TAGEConfig {
	return TAGEConfig{
		NumTables:  4,
		TableBits:  12,
		TagBits:    9,
		MinHistory: 4,
		MaxHistory: 64,
		BaseBits:   14,
	}
}

// Validate checks parameters.
func (c TAGEConfig) Validate() error {
	if c.NumTables <= 0 || c.NumTables > 8 {
		return fmt.Errorf("tage: NumTables %d", c.NumTables)
	}
	if c.TableBits <= 0 || c.TableBits > 24 || c.BaseBits <= 0 || c.BaseBits > 24 {
		return fmt.Errorf("tage: table sizing %d/%d", c.TableBits, c.BaseBits)
	}
	if c.TagBits <= 0 || c.TagBits > 16 {
		return fmt.Errorf("tage: TagBits %d", c.TagBits)
	}
	if c.MinHistory <= 0 || c.MaxHistory <= c.MinHistory {
		return fmt.Errorf("tage: history %d..%d", c.MinHistory, c.MaxHistory)
	}
	return nil
}

type tageEntry struct {
	tag    uint16
	ctr    int8  // signed 3-bit counter in [-4,3]; >=0 predicts taken
	useful uint8 // 2-bit usefulness
}

// TAGE is the TAGE-lite predictor. It maintains its own (long) global
// history, updated by the BPU alongside the short GHR.
type TAGE struct {
	cfg   TAGEConfig
	base  []uint8 // 2-bit bimodal
	comps [][]tageEntry
	hist  []int // history lengths per component

	// ghist is a circular raw history buffer long enough for MaxHistory.
	ghist   []uint8
	gpos    int
	useAlt  int8 // 4-bit use-alt-on-newly-allocated counter
	tick    int  // usefulness aging
	rng     uint32
	lastHit struct {
		comp   int // -1 base
		index  int
		alt    int // alternate component (-1 base)
		altIdx int
	}
}

// NewTAGE builds the predictor.
func NewTAGE(cfg TAGEConfig) (*TAGE, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &TAGE{
		cfg:   cfg,
		base:  make([]uint8, 1<<cfg.BaseBits),
		comps: make([][]tageEntry, cfg.NumTables),
		hist:  make([]int, cfg.NumTables),
		ghist: make([]uint8, cfg.MaxHistory),
		rng:   0x2545f491,
	}
	for i := range t.base {
		t.base[i] = 2
	}
	// Geometric history series between MinHistory and MaxHistory.
	ratio := float64(cfg.MaxHistory) / float64(cfg.MinHistory)
	for i := 0; i < cfg.NumTables; i++ {
		exp := float64(i) / float64(max(cfg.NumTables-1, 1))
		t.hist[i] = int(float64(cfg.MinHistory)*powf(ratio, exp) + 0.5)
		t.comps[i] = make([]tageEntry, 1<<cfg.TableBits)
	}
	return t, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func powf(base, exp float64) float64 { return math.Pow(base, exp) }

// foldHistory hashes the most recent n history bits into bits output bits.
func (t *TAGE) foldHistory(n, bits int) uint64 {
	var h uint64
	for i := 0; i < n; i++ {
		bit := uint64(t.ghist[(t.gpos-1-i+len(t.ghist)*4)%len(t.ghist)])
		h ^= bit << (i % bits)
	}
	return h
}

func (t *TAGE) index(comp int, pc isa.Addr) int {
	h := uint64(pc) >> 2
	h ^= h >> t.cfg.TableBits
	h ^= t.foldHistory(t.hist[comp], t.cfg.TableBits)
	h ^= uint64(comp) * 0x9e3779b9
	return int(h & uint64(len(t.comps[comp])-1))
}

func (t *TAGE) tag(comp int, pc isa.Addr) uint16 {
	h := uint64(pc) >> 2
	h ^= t.foldHistory(t.hist[comp], t.cfg.TagBits) * 3
	h ^= uint64(comp) * 0x85ebca6b
	return uint16(h & ((1 << t.cfg.TagBits) - 1))
}

func (t *TAGE) baseIndex(pc isa.Addr) int {
	return int((uint64(pc) >> 2) & uint64(len(t.base)-1))
}

// Predict returns the direction prediction for pc, recording provider
// state for the subsequent Train call.
func (t *TAGE) Predict(pc isa.Addr) bool {
	t.lastHit.comp, t.lastHit.alt = -1, -1
	// Find the two longest-history hitting components.
	for c := t.cfg.NumTables - 1; c >= 0; c-- {
		idx := t.index(c, pc)
		if t.comps[c][idx].tag == t.tag(c, pc) {
			if t.lastHit.comp < 0 {
				t.lastHit.comp, t.lastHit.index = c, idx
			} else {
				t.lastHit.alt, t.lastHit.altIdx = c, idx
				break
			}
		}
	}
	if t.lastHit.comp < 0 {
		return counterTaken(t.base[t.baseIndex(pc)])
	}
	e := &t.comps[t.lastHit.comp][t.lastHit.index]
	// Weak newly-allocated entries may defer to the alternate prediction.
	if t.useAlt >= 0 && (e.ctr == 0 || e.ctr == -1) && e.useful == 0 {
		return t.altPredict(pc)
	}
	return e.ctr >= 0
}

func (t *TAGE) altPredict(pc isa.Addr) bool {
	if t.lastHit.alt >= 0 {
		return t.comps[t.lastHit.alt][t.lastHit.altIdx].ctr >= 0
	}
	return counterTaken(t.base[t.baseIndex(pc)])
}

func (t *TAGE) nextRand() uint32 {
	t.rng ^= t.rng << 13
	t.rng ^= t.rng >> 17
	t.rng ^= t.rng << 5
	return t.rng
}

// Train updates the predictor with the true outcome; it must follow the
// Predict call for the same branch.
func (t *TAGE) Train(pc isa.Addr, taken bool) {
	pred := t.predictFromState(pc)
	provider := t.lastHit.comp

	if provider >= 0 {
		e := &t.comps[provider][t.lastHit.index]
		alt := t.altPredict(pc)
		providerPred := e.ctr >= 0
		// use-alt counter learns whether weak entries should defer.
		if (e.ctr == 0 || e.ctr == -1) && e.useful == 0 && providerPred != alt {
			if alt == taken {
				if t.useAlt < 7 {
					t.useAlt++
				}
			} else if t.useAlt > -8 {
				t.useAlt--
			}
		}
		// Usefulness: provider correct where alternate wrong.
		if providerPred == taken && alt != taken && e.useful < 3 {
			e.useful++
		}
		e.ctr = bumpSigned(e.ctr, taken)
	} else {
		bi := t.baseIndex(pc)
		t.base[bi] = bump(t.base[bi], taken)
	}

	// Allocate a longer-history entry on a misprediction.
	if pred != taken && provider < t.cfg.NumTables-1 {
		t.allocate(provider, pc, taken)
	}

	// Push the outcome into the long history.
	t.ghist[t.gpos] = boolBit(taken)
	t.gpos = (t.gpos + 1) % len(t.ghist)

	// Periodic usefulness aging.
	t.tick++
	if t.tick >= 1<<18 {
		t.tick = 0
		for c := range t.comps {
			for i := range t.comps[c] {
				t.comps[c][i].useful >>= 1
			}
		}
	}
}

// predictFromState recomputes the prediction using the recorded provider
// state (Predict has already run for this branch).
func (t *TAGE) predictFromState(pc isa.Addr) bool {
	if t.lastHit.comp < 0 {
		return counterTaken(t.base[t.baseIndex(pc)])
	}
	e := &t.comps[t.lastHit.comp][t.lastHit.index]
	if t.useAlt >= 0 && (e.ctr == 0 || e.ctr == -1) && e.useful == 0 {
		return t.altPredict(pc)
	}
	return e.ctr >= 0
}

// allocate installs a new entry in a component with longer history than
// the provider, preferring a not-useful victim.
func (t *TAGE) allocate(provider int, pc isa.Addr, taken bool) {
	start := provider + 1
	// Randomize the starting component a little, as TAGE does, to spread
	// allocations.
	if start < t.cfg.NumTables-1 && t.nextRand()&1 == 0 {
		start++
	}
	for c := start; c < t.cfg.NumTables; c++ {
		idx := t.index(c, pc)
		e := &t.comps[c][idx]
		if e.useful == 0 {
			e.tag = t.tag(c, pc)
			e.useful = 0
			if taken {
				e.ctr = 0
			} else {
				e.ctr = -1
			}
			return
		}
	}
	// No victim: age usefulness along the allocation path.
	for c := start; c < t.cfg.NumTables; c++ {
		idx := t.index(c, pc)
		if t.comps[c][idx].useful > 0 {
			t.comps[c][idx].useful--
		}
	}
}

func bumpSigned(c int8, taken bool) int8 {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > -4 {
		return c - 1
	}
	return c
}

func boolBit(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}
