package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"frontsim/internal/frontend"
	"frontsim/internal/isa"
)

// FingerprintSchema versions the canonical serialized form of Config. Bump
// it whenever Config's shape, the simulator's cycle-level semantics, or
// the Stats value schema change, so stale run-cache entries
// (internal/runner) stop matching.
//
// Schema history:
//
//	1  initial canonical form
//	2  ftq.Stats gained the per-cycle scenario partition (Cycles,
//	   Scenario2Cycles, Scenario3Cycles); schema-1 snapshots would decode
//	   with those counters silently zero
//	3  Stats gained WarmupOvershoot (warmup-boundary accounting); schema-2
//	   snapshots lack the field and StatsFromJSON's DisallowUnknownFields
//	   would reject schema-3 snapshots under the old decoder
//	4  the run loop gained the event-driven fast-forward path
//	   (Config.FastForward; fingerprint-excluded like Audit/Obs). The fast
//	   path is proven byte-identical, but schema-3 entries were written by
//	   binaries whose cycle loop predates the skip scheduler, so they are
//	   retired rather than trusted across the semantics boundary
//	5  the machine gained three prefetch-mechanism dimensions: the MANA
//	   spatial-region prefetcher (via the Prefetcher fingerprint string),
//	   shadow-branch decoding (frontend.Config.Shadow) and the I-TLB model
//	   (cache.HierarchyConfig.ITLB) — both serialized, so every canonical
//	   config form changed — and Stats gained the ITLB counter block plus
//	   bpu.Stats shadow counters, changing the cached value shape
//	6  sampled simulation (Config.Sampling, SMARTS-style systematic
//	   sampling): the Sampling block is serialized — sampled and exact
//	   runs of one machine must never share cache entries, so every
//	   canonical config form changed — and Stats gained the optional
//	   Sampling estimate block, changing the cached value shape
const FingerprintSchema = 6

// PrefetchFingerprinter lets an attached hardware prefetcher contribute a
// stable identity to Config.Fingerprint. Prefetchers are constructed fresh
// per run, so the fingerprint must cover their configuration, not learned
// state. Prefetchers that do not implement it hash as an opaque type name,
// which is stable within a build but does not distinguish differently
// configured instances — such configs must not be cached.
type PrefetchFingerprinter interface {
	PrefetchFingerprint() string
}

// triggerFingerprint is one Triggers entry in canonical (site-sorted)
// order. Target order within a site is preserved: the front-end fires
// trigger prefetches in slice order, so it is semantically meaningful.
type triggerFingerprint struct {
	Site    isa.Addr   `json:"site"`
	Targets []isa.Addr `json:"targets"`
}

// configFingerprint is the canonical serialized form Fingerprint hashes.
type configFingerprint struct {
	Schema     int                  `json:"schema"`
	Config     Config               `json:"config"` // Prefetcher and Triggers zeroed
	Prefetcher string               `json:"prefetcher"`
	Triggers   []triggerFingerprint `json:"triggers"`
}

// Fingerprint returns a stable content hash of the whole-machine
// configuration: equal fingerprints mean bit-identical simulation given
// the same instruction source. It is the config half of the run-cache key.
func (c Config) Fingerprint() string {
	shadow := c
	shadow.Frontend.Prefetcher = nil
	shadow.Triggers = nil
	fp := configFingerprint{
		Schema:     FingerprintSchema,
		Config:     shadow,
		Prefetcher: prefetcherFingerprint(c.Frontend.Prefetcher),
		Triggers:   canonicalTriggers(c.Triggers),
	}
	b, err := json.Marshal(fp)
	if err != nil {
		// Config holds only plain data once the interface field is
		// cleared; Marshal cannot fail on it.
		panic(fmt.Sprintf("core: fingerprinting config: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

func prefetcherFingerprint(p frontend.InstrPrefetcher) string {
	if p == nil {
		return ""
	}
	if f, ok := p.(PrefetchFingerprinter); ok {
		return f.PrefetchFingerprint()
	}
	return fmt.Sprintf("opaque:%T", p)
}

func canonicalTriggers(m map[isa.Addr][]isa.Addr) []triggerFingerprint {
	if len(m) == 0 {
		return nil
	}
	out := make([]triggerFingerprint, 0, len(m))
	for site, targets := range m { //lint:allow out is sorted by Site below; iteration order cannot escape
		out = append(out, triggerFingerprint{Site: site, Targets: targets})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out
}

// CanonicalJSON returns the stable serialized form of the snapshot — the
// run-cache value format. encoding/json renders float64 in the shortest
// exactly-round-tripping form, so decode(encode(s)) is bit-identical.
func (s Stats) CanonicalJSON() ([]byte, error) {
	return json.Marshal(s)
}

// StatsFromJSON decodes a snapshot written by CanonicalJSON. Unknown
// fields are rejected so schema drift surfaces as an error instead of a
// silently truncated snapshot.
func StatsFromJSON(b []byte) (Stats, error) {
	var s Stats
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Stats{}, fmt.Errorf("core: decoding stats: %w", err)
	}
	return s, nil
}
