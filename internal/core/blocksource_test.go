package core

import (
	"bytes"
	"testing"

	"frontsim/internal/isa"
	"frontsim/internal/trace"
	"frontsim/internal/workload"
)

// plainSource hides a source's BlockSource refinement, forcing the
// front-end onto the incremental Next/peek path.
type plainSource struct{ src trace.Source }

func (p plainSource) Next() (isa.Instr, error) { return p.src.Next() }

// TestBlockSourceEquivalence pins the block-level fill path against the
// incremental one: the same executor stream fed through both must produce
// byte-identical statistics. The incremental path defines the block
// boundary semantics; this is the differential harness that lets
// BlockSource implementations be trusted on the hot path.
func TestBlockSourceEquivalence(t *testing.T) {
	for _, name := range []string{"secret_srv12", "secret_crypto52"} {
		for _, conservative := range []bool{false, true} {
			cfgName := "fdp24"
			if conservative {
				cfgName = "cons"
			}
			t.Run(name+"/"+cfgName, func(t *testing.T) {
				t.Parallel()
				run := func(plain bool) []byte {
					cfg := smallConfig(cfgName, conservative)
					src := source(t, name)
					if _, ok := trace.AsBlockSource(src); !ok {
						t.Fatal("suite source is not block-capable; the fast path is untested")
					}
					if plain {
						src = plainSource{src}
					}
					st, err := RunSource(cfg, src)
					if err != nil {
						t.Fatal(err)
					}
					j, err := st.CanonicalJSON()
					if err != nil {
						t.Fatal(err)
					}
					return j
				}
				inc := run(true)
				blk := run(false)
				if !bytes.Equal(inc, blk) {
					t.Errorf("stats diverge between fill paths:\nincremental: %s\nblock:       %s", inc, blk)
				}
			})
		}
	}
}

// TestBlockSourceLimitChop pins Limit.NextBlock's end-of-budget semantics:
// whatever instruction count the budget lands on — mid-block, at a branch,
// at the cap — the block path must agree with the incremental path.
func TestBlockSourceLimitChop(t *testing.T) {
	spec, ok := workload.Lookup("secret_int_44")
	if !ok {
		t.Fatal("suite workload missing")
	}
	for _, budget := range []int64{1, 2, 7, 1000, 1001, 1002, 1003, 1004, 1005, 1006, 1007} {
		inc := trace.NewLimit(source(t, spec.Name), budget)
		blk := trace.NewLimit(source(t, spec.Name), budget)
		var incInstrs []isa.Instr
		for {
			in, err := inc.Next()
			if err != nil {
				break
			}
			incInstrs = append(incInstrs, in)
		}
		bs, ok := trace.AsBlockSource(blk)
		if !ok {
			t.Fatal("limit over executor is not block-capable")
		}
		var blkInstrs []isa.Instr
		for {
			out, err := bs.NextBlock(nil, 8)
			blkInstrs = append(blkInstrs, out...)
			if err != nil {
				break
			}
		}
		if len(incInstrs) != len(blkInstrs) {
			t.Fatalf("budget %d: %d instrs incremental vs %d block", budget, len(incInstrs), len(blkInstrs))
		}
		for i := range incInstrs {
			if incInstrs[i] != blkInstrs[i] {
				t.Fatalf("budget %d: instr %d differs: %+v vs %+v", budget, i, incInstrs[i], blkInstrs[i])
			}
		}
	}
}
