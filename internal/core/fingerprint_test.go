package core

import (
	"encoding/binary"
	"reflect"
	"testing"

	"frontsim/internal/isa"
)

func TestFingerprintStableAndSensitive(t *testing.T) {
	a := DefaultConfig().Fingerprint()
	if a != DefaultConfig().Fingerprint() {
		t.Fatal("fingerprint not deterministic")
	}
	if len(a) != 64 {
		t.Fatalf("fingerprint length %d", len(a))
	}
	if ConservativeConfig().Fingerprint() == a {
		t.Fatal("conservative and industry configs share a fingerprint")
	}
	c := DefaultConfig()
	c.MaxInstrs++
	if c.Fingerprint() == a {
		t.Fatal("instruction budget not captured")
	}
	c = DefaultConfig()
	c.Frontend.FTQEntries = 2
	if c.Fingerprint() == a {
		t.Fatal("FTQ depth not captured")
	}
}

func TestFingerprintTriggersOrderIndependent(t *testing.T) {
	mk := func(order []isa.Addr) string {
		c := DefaultConfig()
		c.Triggers = make(map[isa.Addr][]isa.Addr)
		for _, site := range order {
			c.Triggers[site] = []isa.Addr{site + 1, site + 2}
		}
		return c.Fingerprint()
	}
	sites := []isa.Addr{0x1000, 0x2000, 0x3000}
	rev := []isa.Addr{0x3000, 0x2000, 0x1000}
	if mk(sites) != mk(rev) {
		t.Fatal("trigger map insertion order leaked into the fingerprint")
	}
	// But target order within a site is load-bearing (fire order) and must
	// be captured.
	c := DefaultConfig()
	c.Triggers = map[isa.Addr][]isa.Addr{0x1000: {0x2000, 0x3000}}
	d := DefaultConfig()
	d.Triggers = map[isa.Addr][]isa.Addr{0x1000: {0x3000, 0x2000}}
	if c.Fingerprint() == d.Fingerprint() {
		t.Fatal("target order not captured")
	}
}

func TestStatsJSONRoundTrip(t *testing.T) {
	s := Stats{Config: "fdp24", Cycles: 123456, Instructions: 654321, SwPrefetchInstrs: 42}
	s.FTQ.HeadStallCycles = 999
	s.L1I.Accesses = 1 << 40
	s.L1I.Misses = 7
	s.BPU.CondBranches = 1000
	s.BPU.CondMispredicts = 31
	s.DRAMQueueing = 5

	b, err := s.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := StatsFromJSON(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("round trip drifted:\n got %+v\nwant %+v", got, s)
	}
	if got.Summary() != s.Summary() {
		t.Fatal("summaries differ after round trip")
	}
	// Schema drift must be loud: an unknown field fails the decode.
	if _, err := StatsFromJSON([]byte(`{"Cycles": 1, "NoSuchField": 2}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

// FuzzConfigFingerprint drives the canonical hashing with arbitrary field
// mutations and checks its two invariants: hashing is deterministic, and
// the trigger map's canonical form is independent of insertion order.
func FuzzConfigFingerprint(f *testing.F) {
	f.Add(int64(24), int64(2_000_000), uint64(0x40cafe), uint8(3))
	f.Add(int64(2), int64(1), uint64(0), uint8(0))
	f.Add(int64(-5), int64(-1), uint64(1<<63), uint8(255))
	f.Fuzz(func(t *testing.T, ftq int64, budget int64, site uint64, nTrig uint8) {
		c := DefaultConfig()
		c.Frontend.FTQEntries = int(ftq)
		c.MaxInstrs = budget
		c.Triggers = make(map[isa.Addr][]isa.Addr)
		d := DefaultConfig()
		d.Frontend.FTQEntries = int(ftq)
		d.MaxInstrs = budget
		d.Triggers = make(map[isa.Addr][]isa.Addr)

		// Same logical trigger set, inserted in opposite orders.
		n := int(nTrig%16) + 1
		var seq [8]byte
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(seq[:], site+uint64(i))
			s := isa.Addr(binary.LittleEndian.Uint64(seq[:]))
			c.Triggers[s] = []isa.Addr{s ^ 0xff, s + 64}
		}
		for i := n - 1; i >= 0; i-- {
			s := isa.Addr(site + uint64(i))
			d.Triggers[s] = []isa.Addr{s ^ 0xff, s + 64}
		}

		fc, fd := c.Fingerprint(), d.Fingerprint()
		if fc != c.Fingerprint() {
			t.Fatal("fingerprint not deterministic")
		}
		if fc != fd {
			t.Fatalf("insertion order changed fingerprint: %s vs %s", fc, fd)
		}
		// A disjoint budget must produce a different hash.
		c.MaxInstrs = budget + 1
		if c.Fingerprint() == fc {
			t.Fatal("budget change not captured")
		}
	})
}

// FuzzSamplingFingerprint proves the sampled/exact cache-isolation
// contract under arbitrary window geometry: a sampled config never shares
// a fingerprint with its exact counterpart, equal geometries hash equal,
// and any single-field geometry change is captured.
func FuzzSamplingFingerprint(f *testing.F) {
	f.Add(int64(100_000), int64(10_000), int64(20_000))
	f.Add(int64(1), int64(1), int64(0))
	f.Add(int64(1<<40), int64(1000), int64(0))
	f.Fuzz(func(t *testing.T, interval, detail, warm int64) {
		if interval <= 0 {
			interval = 1 - interval // keep sampling enabled
		}
		exact := DefaultConfig()
		sampled := DefaultConfig()
		sampled.Sampling = SamplingConfig{IntervalInstrs: interval, DetailInstrs: detail, WarmInstrs: warm}
		fe, fs := exact.Fingerprint(), sampled.Fingerprint()
		if fe == fs {
			t.Fatalf("sampled and exact configs share fingerprint %s", fs)
		}
		dup := DefaultConfig()
		dup.Sampling = sampled.Sampling
		if dup.Fingerprint() != fs {
			t.Fatal("equal sampling geometry hashed differently")
		}
		for _, mut := range []func(*SamplingConfig){
			func(sc *SamplingConfig) { sc.IntervalInstrs++ },
			func(sc *SamplingConfig) { sc.DetailInstrs++ },
			func(sc *SamplingConfig) { sc.WarmInstrs++ },
		} {
			m := sampled
			mut(&m.Sampling)
			if m.Fingerprint() == fs {
				t.Fatalf("geometry change not captured: %+v vs %+v", m.Sampling, sampled.Sampling)
			}
		}
	})
}
