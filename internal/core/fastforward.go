package core

import (
	"frontsim/internal/cache"
	"frontsim/internal/obs"
)

// NextEventCycle computes the earliest future cycle at which the machine's
// state can change — the event-driven scheduler behind the fast-forward
// path (Config.FastForward). It returns ok=false when the current cycle is
// itself interesting (fill can push, the head can dispatch, a prefetch
// releases, a retirement lands), in which case the caller must Step
// normally.
//
// A cycle is provably inert when all of the following hold, and each
// condition contributes its expiry to the returned bound:
//
//   - the fill engine is blocked (frontend.FillBlockedUntil): a drained
//     source or resolution-waiting stall never self-expires, a timed
//     stall expires at stallUntil, a full queue waits for a pop;
//   - no FTQ pop is possible: the queue is empty, the head's fetch
//     completes in the future (bound: the head's ready cycle, known at
//     push because the hierarchy computes completion times eagerly), or
//     the head is ready but the ROB is full (bound: the next retirement);
//   - no pending software prefetch comes due (bound: the release heap's
//     minimum);
//   - no in-flight instruction completes (bound: the ROB head's done
//     cycle, fixed at dispatch).
//
// Warmup and ROI boundaries are retirement-driven, so they cannot fire
// inside a span that retires nothing; they need no bound of their own.
func (s *Sim) NextEventCycle() (cache.Cycle, bool) {
	now := s.now
	target, blocked := s.fe.FillBlockedUntil(now)
	if !blocked {
		return 0, false
	}
	if h := s.fe.FTQ().Head(); h != nil {
		if h.Ready() <= now {
			if !s.be.ROBFull() {
				return 0, false // the head dispatches this cycle
			}
		} else {
			target = cache.MinCycle(target, h.Ready())
		}
	}
	if at, ok := s.fe.NextPendingPrefetchAt(); ok {
		if at <= now {
			return 0, false // a software prefetch releases this cycle
		}
		target = cache.MinCycle(target, at)
	}
	if at, ok := s.be.NextRetireAt(); ok {
		if at <= now {
			return 0, false // a retirement lands this cycle
		}
		target = cache.MinCycle(target, at)
	}
	if target == cache.CycleMax {
		// No finite event is known (e.g. drained source with an empty
		// pipeline); let the caller step and the run-loop termination or
		// wedge detection decide.
		return 0, false
	}
	return target, true
}

// StepN advances the simulation through the next interesting cycle: if
// NextEventCycle proves a span inert it jumps there in one bulk update,
// then executes exactly one real Step. It returns the total cycles
// advanced (span + 1) and the instructions retired by the stepped cycle.
// With no skippable span it degenerates to Step.
func (s *Sim) StepN() (cache.Cycle, int) {
	start := s.now
	if target, ok := s.NextEventCycle(); ok {
		s.skipTo(target)
	}
	retired := s.Step()
	return s.now - start, retired
}

// skipTo advances s.now to target, bulk-accounting the inert span
// [s.now, target): the FTQ scenario partition and fill-stall integrals
// update algebraically (frontend.SkipTo), the back-end's ROB-full counter
// likewise (backend.SkipCycles), audit mode re-checks the invariants at
// the jump boundary, and the observability sampler receives the same
// stride-aligned samples the per-cycle loop would have emitted.
func (s *Sim) skipTo(target cache.Cycle) {
	from := s.now
	s.fe.SkipTo(from, target)
	s.be.SkipCycles(int64(target - from))
	s.now = target
	if s.auditCheck != nil {
		// The counters after a bulk update must satisfy exactly the
		// invariants cycle target-1 would have seen; a broken skip formula
		// trips the same cycle-conservation identities per-cycle audits do.
		s.audit(target - 1)
	}
	if s.cfg.Obs != nil {
		s.synthSamples(from, target)
	}
}

// synthSamples emits the time-series points the per-cycle loop would have
// produced across the skipped span [from, to): one sample at every stride
// multiple. Counter fields are frozen at their span values (nothing
// retires, fills or issues inside an inert span); the FTQ view is
// recomputed per sampled cycle, which ReadyMask and Classify allow because
// they are pure in the sampled cycle.
func (s *Sim) synthSamples(from, to cache.Cycle) {
	first := from
	if rem := first % s.obsStride; rem != 0 {
		first += s.obsStride - rem
	}
	if first >= to {
		return
	}
	fes := s.fe.Stats()
	q := s.fe.FTQ()
	smp := obs.Sample{
		Retired:      s.be.Stats().RetiredProgram,
		FTQOcc:       q.Len(),
		FillStall:    s.fe.FillStalled(),
		L1IAccesses:  s.mem.L1I.Stats().Accesses,
		L1IMisses:    s.mem.L1I.Stats().Misses,
		L2Misses:     s.mem.L2.Stats().Misses,
		SwPrefetches: fes.SwPrefetchesIssued + fes.TriggerPrefetchesIssued,
	}
	for c := first; c < to; c += s.obsStride {
		smp.Cycle = int64(c)
		smp.FTQReadyMask = q.ReadyMask(c)
		smp.Scenario = q.Classify(c)
		s.cfg.Obs.Sample(smp)
	}
}
