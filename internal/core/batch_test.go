package core

import (
	"bytes"
	"context"
	"testing"

	"frontsim/internal/program"
	"frontsim/internal/trace"
	"frontsim/internal/workload"
	"frontsim/internal/xrand"
)

// batchProg builds a suite workload's program and executor seed, shared
// between a batch and its solo reference runs.
func batchProg(t testing.TB, name string) (*program.Program, uint64) {
	t.Helper()
	spec, ok := workload.Lookup(name)
	if !ok {
		t.Fatalf("unknown workload %s", name)
	}
	prog, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	return prog, spec.Seed ^ 0x5eed5eed5eed5eed
}

// memberSpec describes one batch member for the differential helpers: a
// config plus an optional per-member source budget (0 = unlimited).
type memberSpec struct {
	cfg   Config
	limit int64
}

// runBatchVsSolo runs the members once as a lockstep batch over a shared
// fan-out and once each as solo runs over fresh executors, asserting
// byte-identical canonical stats (or identical errors) per member at its
// detach point. It returns the batch's window high-water mark.
func runBatchVsSolo(t testing.TB, prog *program.Program, seed uint64, specs []memberSpec) int {
	t.Helper()
	fo := trace.NewFanout(program.NewExecutor(prog, seed))
	members := make([]BatchMember, len(specs))
	for i, ms := range specs {
		r := fo.NewReader()
		var src trace.Source = r
		if ms.limit > 0 {
			src = trace.NewLimit(r, ms.limit)
		}
		sim, err := New(ms.cfg, src)
		if err != nil {
			t.Fatal(err)
		}
		members[i] = BatchMember{Sim: sim, Pos: r.Consumed, Detach: r.Detach}
	}
	results := RunBatch(members)

	for i, ms := range specs {
		var src trace.Source = program.NewExecutor(prog, seed)
		if ms.limit > 0 {
			src = trace.NewLimit(src, ms.limit)
		}
		want, werr := RunSource(ms.cfg, src)
		got, gerr := results[i].Stats, results[i].Err
		if (gerr == nil) != (werr == nil) {
			t.Fatalf("member %d (%s): batch err %v, solo err %v", i, ms.cfg.Name, gerr, werr)
		}
		if gerr != nil {
			if gerr.Error() != werr.Error() {
				t.Fatalf("member %d (%s): batch err %q, solo err %q", i, ms.cfg.Name, gerr, werr)
			}
			continue
		}
		gj, err := got.CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		wj, err := want.CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gj, wj) {
			t.Fatalf("member %d (%s): stats diverge\nbatch: %s\nsolo:  %s", i, ms.cfg.Name, gj, wj)
		}
	}
	return fo.MaxWindow()
}

// TestRunBatchMatchesSolo pins the tentpole equivalence: heterogeneous
// configurations (both front-ends, mixed warmups, fast-forward on and
// off) batched over one shared stream produce stats byte-identical to
// their solo runs, while the shared window stays within the scheduling
// quantum.
func TestRunBatchMatchesSolo(t *testing.T) {
	prog, seed := batchProg(t, "secret_srv12")
	cons := smallConfig("b-cons", true)
	fdp := smallConfig("b-fdp", false)
	fdp.FastForward = true
	short := smallConfig("b-short", false)
	short.WarmupInstrs, short.MaxInstrs = 5_000, 60_000
	maxWin := runBatchVsSolo(t, prog, seed, []memberSpec{{cfg: cons}, {cfg: fdp}, {cfg: short}})
	if limit := 2*batchSlack + 8_192; maxWin > limit {
		t.Fatalf("lockstep batch window high-water %d > %d; members are not staying within the scheduling quantum", maxWin, limit)
	}
}

// TestRunBatchHeterogeneousLimits pins early detach: members whose Limit
// budgets chop the shared stream at different points (including inside
// warmup) detach early without perturbing the members that run on.
func TestRunBatchHeterogeneousLimits(t *testing.T) {
	prog, seed := batchProg(t, "public_srv_60")
	mk := func(name string, limit int64) memberSpec {
		c := smallConfig(name, false)
		return memberSpec{cfg: c, limit: limit}
	}
	runBatchVsSolo(t, prog, seed, []memberSpec{
		mk("b-lim-warmup", 9_000), // ends inside warmup: the !measured path
		mk("b-lim-mid", 60_000),
		mk("b-unlimited", 0),
	})
}

// TestRunBatchSingleton pins the batch-of-one degenerate case.
func TestRunBatchSingleton(t *testing.T) {
	prog, seed := batchProg(t, "secret_crypto52")
	c := smallConfig("b-solo", false)
	c.FastForward = true
	runBatchVsSolo(t, prog, seed, []memberSpec{{cfg: c}})
}

// TestRunBatchCancelled pins cancellation: every member of a batch run
// under a dead context reports the cancellation, none caches stats.
func TestRunBatchCancelled(t *testing.T) {
	prog, seed := batchProg(t, "secret_srv12")
	fo := trace.NewFanout(program.NewExecutor(prog, seed))
	var members []BatchMember
	for i := 0; i < 2; i++ {
		r := fo.NewReader()
		cfg := smallConfig("b-cancel", i == 0)
		cfg.FastForward = true // cancel is polled every jump
		sim, err := New(cfg, r)
		if err != nil {
			t.Fatal(err)
		}
		members = append(members, BatchMember{Sim: sim, Pos: r.Consumed, Detach: r.Detach})
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i, res := range RunBatchCtx(ctx, members) {
		if res.Err == nil {
			t.Fatalf("member %d completed under a cancelled context", i)
		}
		if res.Stats != (Stats{}) {
			t.Fatalf("member %d reported stats from a cancelled run", i)
		}
	}
}

// FuzzBatchEquivalence fuzzes the lockstep batch against solo runs:
// randomized workload seeds, batch sizes 1..4 (including ragged mixes
// where members share nothing but the stream), heterogeneous per-member
// warmup, measurement and Limit budgets, both front-ends, fast-forward
// mixed on and off. Every member must match its solo run byte-for-byte
// at its detach point.
func FuzzBatchEquivalence(f *testing.F) {
	f.Add(uint64(1))
	f.Add(uint64(0x5eed))
	f.Add(uint64(0xdeadbeef))
	f.Add(uint64(42))
	f.Fuzz(func(t *testing.T, raw uint64) {
		sm := xrand.NewSplitMix64(raw)
		spec := fuzzSpec(t, sm.Next())
		prog, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		seed := spec.Seed ^ 0x5eed5eed5eed5eed

		n := 1 + int(sm.Next()%4)
		specs := make([]memberSpec, n)
		for i := range specs {
			c := smallConfig("b-fuzz", sm.Next()%2 == 0)
			c.WarmupInstrs = int64(sm.Next() % 6_000)
			c.MaxInstrs = 5_000 + int64(sm.Next()%25_000)
			c.FastForward = sm.Next()%2 == 0
			ms := memberSpec{cfg: c}
			if sm.Next()%3 == 0 {
				// A budget around the run length exercises detach inside
				// warmup, mid-measurement, and never.
				ms.limit = int64(sm.Next() % uint64(c.WarmupInstrs+c.MaxInstrs+10_000))
				if ms.limit == 0 {
					ms.limit = 1
				}
			}
			specs[i] = ms
		}
		runBatchVsSolo(t, prog, seed, specs)
	})
}
