//go:build !audit

package core

// auditBuildTag is off in normal builds; auditing is then governed per run
// by Config.Audit.
const auditBuildTag = false
