package core

import (
	"fmt"
	"math"
	"reflect"

	"frontsim/internal/stats"
)

// SamplingConfig selects SMARTS-style systematic sampled simulation. The
// zero value means exact (full-detail) simulation; a non-zero config makes
// the run alternate functional warm-up — the instruction stream is
// consumed and caches, TLB, BTB and predictors stay warm, but no cycles
// are accounted — with short detailed windows whose per-window CPI samples
// feed a Student-t confidence interval on the mean (stats.Estimate),
// reported as an IPC interval (SamplingStats.IPCInterval).
//
// Every field participates in the configuration fingerprint: sampled and
// exact runs of the same machine are different experiments and must never
// share run-cache entries, nor may two sampled runs with different window
// geometry.
//
// The post-warm-up budget (Config.MaxInstrs) counts *all* program
// instructions the run covers — functional gaps, detailed warm-up,
// measured windows and window drains alike — so a sampled run traverses
// exactly the same region of the stream its exact counterpart measures.
type SamplingConfig struct {
	// IntervalInstrs is the sampling unit period in program instructions:
	// one measured window begins every IntervalInstrs. Zero disables
	// sampling (and then every other field must be zero too).
	IntervalInstrs int64
	// DetailInstrs is the measured detailed-window length per unit, in
	// program instructions.
	DetailInstrs int64
	// WarmInstrs is the detailed (full-timing, unmeasured) warm-up run
	// immediately before each measured window, giving the bandwidth model
	// and in-flight state a timing ramp the functional phase cannot
	// provide. May be zero.
	WarmInstrs int64
}

// Enabled reports whether the configuration selects sampled simulation.
func (c SamplingConfig) Enabled() bool { return c.IntervalInstrs > 0 }

// Validate checks the window geometry; the all-zero (disabled) value is
// valid, a partially-filled one is not.
func (c SamplingConfig) Validate() error {
	if !c.Enabled() {
		if c != (SamplingConfig{}) {
			return fmt.Errorf("core: sampling fields set without IntervalInstrs: %+v", c)
		}
		return nil
	}
	if c.DetailInstrs <= 0 {
		return fmt.Errorf("core: sampling DetailInstrs %d", c.DetailInstrs)
	}
	if c.WarmInstrs < 0 {
		return fmt.Errorf("core: sampling WarmInstrs %d", c.WarmInstrs)
	}
	if c.WarmInstrs+c.DetailInstrs > c.IntervalInstrs {
		return fmt.Errorf("core: sampling window warm %d + detail %d exceeds interval %d",
			c.WarmInstrs, c.DetailInstrs, c.IntervalInstrs)
	}
	return nil
}

// SamplingStats reports a sampled run's coverage accounting and the IPC
// estimate. It hangs off Stats only for sampled runs (nil for exact ones),
// so exact snapshots keep their shape.
type SamplingStats struct {
	// Windows is the number of complete measured windows aggregated into
	// the IPC estimate.
	Windows int64
	// TruncatedWindows counts sampling units the source drained out of
	// mid-warm-up or mid-window; their partial measurements are discarded,
	// never mixed into the estimate.
	TruncatedWindows int64
	// FunctionalInstrs counts program instructions consumed functionally:
	// the initial warm-up plus every inter-window gap.
	FunctionalInstrs int64
	// WarmDetailInstrs counts program instructions run in detailed timing
	// mode as per-window warm-up (unmeasured).
	WarmDetailInstrs int64
	// DrainInstrs counts program instructions that retired while window
	// tails drained out of the pipeline (unmeasured).
	DrainInstrs int64
	// CPI is the per-window cycles-per-instruction estimate: mean, sample
	// variance and 95% confidence interval over Windows samples. The
	// estimator works in CPI, as SMARTS does, because window instruction
	// counts are (nearly) fixed while cycle counts vary: the CPI sample
	// mean is unbiased, whereas averaging per-window IPC would
	// overweight fast windows (a harmonic-vs-arithmetic mean skew that
	// inflates the estimate badly on bursty workloads). IPC views derive
	// from it below.
	CPI stats.Estimate
}

// IPCMean returns the sampled IPC point estimate 1/mean(CPI) (0 when no
// window was measured).
func (s *SamplingStats) IPCMean() float64 {
	if s.CPI.Mean == 0 { //lint:allow exact-zero guard before division: no window measured means Mean is exactly 0
		return 0
	}
	return 1 / s.CPI.Mean
}

// IPCInterval returns the 95% confidence interval on IPC, mapped from the
// CPI interval (the transform x -> 1/x is monotone on positive CPI). A
// degenerate CPI interval reaching zero or below yields an unbounded
// upper limit.
func (s *SamplingStats) IPCInterval() (lo, hi float64) {
	ci := s.CPI.CI95()
	loCPI, hiCPI := s.CPI.Mean+ci, s.CPI.Mean-ci
	if loCPI <= 0 {
		return 0, math.Inf(1)
	}
	lo = 1 / loCPI
	if hiCPI <= 0 {
		return lo, math.Inf(1)
	}
	return lo, 1 / hiCPI
}

// IPCCI95 returns the half-width of the derived IPC interval (infinite
// when the interval is unbounded).
func (s *SamplingStats) IPCCI95() float64 {
	lo, hi := s.IPCInterval()
	return (hi - lo) / 2
}

// ContainsIPC reports whether x lies inside the 95% IPC confidence
// interval.
func (s *SamplingStats) ContainsIPC(x float64) bool {
	lo, hi := s.IPCInterval()
	return x >= lo && x <= hi
}

// samplingPhase is the state of the sampled run loop.
type samplingPhase uint8

const (
	// sampInit: nothing has run; the initial functional warm-up is pending.
	sampInit samplingPhase = iota
	// sampWarm: detailed but unmeasured timing ramp before a window.
	sampWarm
	// sampMeasure: detailed measured window; counters were reset at entry.
	sampMeasure
	// sampDrain: fill is gated; the window tail drains out of FTQ and ROB.
	sampDrain
	// sampDone: terminal.
	sampDone
)

// samplingState is the per-run sampling controller. All phase transitions
// are retirement- or drain-driven and evaluated between cycles
// (sampleSync), so they compose with the fast-forward scheduler exactly
// like the warm-up and budget boundaries do: a skipped span retires
// nothing and pops nothing, so no transition can fire inside one.
type samplingState struct {
	cfg SamplingConfig

	phase samplingPhase
	// consumed counts post-warm-up program instructions covered so far —
	// functional, warm, measured and drain alike (the budget clock).
	consumed int64
	// base is the back-end's retired-program count at the current phase's
	// entry; phase progress is the delta from it.
	base int64

	// agg accumulates the measured windows' counters field-by-field.
	agg Stats
	est stats.Estimate

	windows    int64
	truncated  int64
	functional int64
	warmDetail int64
	drain      int64
}

// sampleSync advances the sampling state machine as far as the machine
// state allows, running functional phases inline (they consume the stream
// but no simulated time). It is idempotent between cycles: when no
// transition applies it returns leaving everything untouched, so Done may
// call it any number of times per cycle. It must only run between fully
// simulated cycles.
func (s *Sim) sampleSync() {
	sp := s.samp
	for {
		switch sp.phase {
		case sampInit:
			got := s.fe.WarmFunctional(s.cfg.WarmupInstrs, s.now)
			sp.functional += got
			if got < s.cfg.WarmupInstrs {
				sp.phase = sampDone // source drained during warm-up
				continue
			}
			sp.base = s.be.RetiredProgramCount()
			sp.phase = sampWarm

		case sampWarm:
			delta := s.be.RetiredProgramCount() - sp.base
			if delta >= sp.cfg.WarmInstrs {
				sp.warmDetail += delta
				sp.consumed += delta
				s.beginWindow()
				sp.phase = sampMeasure
				continue
			}
			if s.fe.Done() && s.be.Drained() {
				sp.warmDetail += delta
				sp.consumed += delta
				sp.truncated++
				sp.phase = sampDone
				continue
			}
			return // keep stepping in detailed mode

		case sampMeasure:
			rp := s.be.RetiredProgramCount() // counters were reset at window entry
			if rp >= sp.cfg.DetailInstrs {
				w := s.snapshot()
				addStatsInto(&sp.agg, &w)
				sp.est.Add(float64(w.Cycles) / float64(w.Instructions))
				sp.windows++
				sp.consumed += w.Instructions
				s.measured = false
				s.fe.SetFill(false)
				sp.base = rp
				sp.phase = sampDrain
				continue
			}
			if s.fe.Done() && s.be.Drained() {
				// The stream ran dry mid-window: a short window is a biased
				// sample, so it is discarded, not averaged in.
				sp.consumed += rp
				sp.truncated++
				sp.phase = sampDone
				continue
			}
			return // keep stepping in detailed measured mode

		case sampDrain:
			if !(s.fe.FTQ().Empty() && s.be.Drained()) {
				return // keep stepping until the window tail retires
			}
			dr := s.be.RetiredProgramCount() - sp.base
			sp.drain += dr
			sp.consumed += dr
			s.fe.SetFill(true)
			if sp.consumed >= s.cfg.MaxInstrs || s.fe.Done() {
				sp.phase = sampDone
				continue
			}
			gap := sp.cfg.IntervalInstrs - sp.cfg.WarmInstrs - sp.cfg.DetailInstrs
			if remaining := s.cfg.MaxInstrs - sp.consumed; gap > remaining {
				gap = remaining
			}
			got := s.fe.WarmFunctional(gap, s.now)
			sp.functional += got
			sp.consumed += got
			if got < gap || sp.consumed >= s.cfg.MaxInstrs {
				sp.phase = sampDone
				continue
			}
			sp.base = s.be.RetiredProgramCount()
			sp.phase = sampWarm

		case sampDone:
			return
		}
	}
}

// beginWindow opens a measured window: counters reset, the cycle anchor
// moves, microarchitectural state stays warm. The sampled-mode analogue of
// beginMeasurement, minus the warm-up-overshoot bookkeeping (window
// overshoot is visible directly as Instructions > DetailInstrs).
func (s *Sim) beginWindow() {
	s.measured = true
	s.startCyc = s.now
	s.fe.ResetStats()
	s.be.ResetStats()
	s.mem.ResetStats()
}

// finish assembles the sampled run's aggregate snapshot: the summed
// measured-window counters (so IPC() is the ratio estimate over all
// windows) plus the sampling block with the per-window estimate.
func (sp *samplingState) finish(name string) Stats {
	st := sp.agg
	st.Config = name
	st.Sampling = &SamplingStats{
		Windows:          sp.windows,
		TruncatedWindows: sp.truncated,
		FunctionalInstrs: sp.functional,
		WarmDetailInstrs: sp.warmDetail,
		DrainInstrs:      sp.drain,
		CPI:              sp.est,
	}
	return st
}

// addStatsInto accumulates src's counters into dst field-by-field,
// recursing through the embedded per-component stats structs. Stats is
// all int64 counters apart from its Config label and the Sampling block,
// both of which are identity, not accumulators; any other field kind is a
// programming error caught loudly here (and by TestAddStatsCoversStats)
// rather than silently skipped.
func addStatsInto(dst, src *Stats) {
	addStructInt64(reflect.ValueOf(dst).Elem(), reflect.ValueOf(src).Elem())
}

func addStructInt64(d, s reflect.Value) {
	for i := 0; i < d.NumField(); i++ {
		f := d.Field(i)
		switch f.Kind() {
		case reflect.Int64:
			f.SetInt(f.Int() + s.Field(i).Int())
		case reflect.Struct:
			addStructInt64(f, s.Field(i))
		case reflect.Array:
			// Histogram buckets (e.g. ftq.Stats.HeadStallHist) sum
			// element-wise.
			if f.Type().Elem().Kind() != reflect.Int64 {
				panic(fmt.Sprintf("core: addStatsInto cannot accumulate array field %s of %s",
					d.Type().Field(i).Name, f.Type().Elem()))
			}
			for j := 0; j < f.Len(); j++ {
				e := f.Index(j)
				e.SetInt(e.Int() + s.Field(i).Index(j).Int())
			}
		case reflect.String, reflect.Pointer:
			// Config (a label) and Sampling (attached at finish).
		default:
			panic(fmt.Sprintf("core: addStatsInto cannot accumulate field %s of kind %s",
				d.Type().Field(i).Name, f.Kind()))
		}
	}
}
