package core

import (
	"bytes"
	"testing"

	"frontsim/internal/cache"
	"frontsim/internal/workload"
	"frontsim/internal/xrand"
)

// stepPair drives fast via StepN and slow via plain Step to the same
// cycle, asserting the architectural and accounting state agree at every
// jump boundary. It returns when either sim reports Done.
func stepPair(t *testing.T, fast, slow *Sim) {
	t.Helper()
	jumps := 0
	for !fast.Done() {
		if slow.Done() {
			t.Fatalf("slow sim done at cycle %d while fast sim is not", slow.Now())
		}
		n, _ := fast.StepN()
		if n > 1 {
			jumps++
		}
		for i := cache.Cycle(0); i < n; i++ {
			slow.Step()
		}
		if fast.Now() != slow.Now() {
			t.Fatalf("cycle divergence: fast %d, slow %d", fast.Now(), slow.Now())
		}
		if fast.Retired() != slow.Retired() {
			t.Fatalf("retired divergence at cycle %d: fast %d, slow %d", fast.Now(), fast.Retired(), slow.Retired())
		}
		fq, sq := fast.Frontend().FTQ().Stats(), slow.Frontend().FTQ().Stats()
		if fq != sq {
			t.Fatalf("FTQ stats divergence at cycle %d:\nfast %+v\nslow %+v", fast.Now(), fq, sq)
		}
		if ff, sf := fast.Frontend().Stats(), slow.Frontend().Stats(); ff != sf {
			t.Fatalf("frontend stats divergence at cycle %d:\nfast %+v\nslow %+v", fast.Now(), ff, sf)
		}
	}
	if !slow.Done() {
		t.Fatalf("fast sim done at cycle %d while slow sim is not", fast.Now())
	}
	if jumps == 0 {
		t.Fatal("fast path never jumped; the test exercised nothing")
	}
	fj, err := fast.snapshot().CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	sj, err := slow.snapshot().CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fj, sj) {
		t.Fatalf("final stats diverge:\nfast: %s\nslow: %s", fj, sj)
	}
}

// TestStepNEquivalence pins the paired step-vs-jump equality on real suite
// workloads under both front-end configurations.
func TestStepNEquivalence(t *testing.T) {
	for _, wl := range []string{"secret_srv12", "secret_crypto52"} {
		for _, conservative := range []bool{false, true} {
			wl, conservative := wl, conservative
			name := wl + "/fdp24"
			if conservative {
				name = wl + "/cons"
			}
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				cfg := smallConfig("ffpair", conservative)
				fast, err := New(cfg, source(t, wl))
				if err != nil {
					t.Fatal(err)
				}
				slow, err := New(cfg, source(t, wl))
				if err != nil {
					t.Fatal(err)
				}
				stepPair(t, fast, slow)
			})
		}
	}
}

// TestFastForwardRunByteIdentical pins Run-level equivalence: the same
// config and source with FastForward on and off produce byte-identical
// canonical stats, and the flag does not perturb the fingerprint.
func TestFastForwardRunByteIdentical(t *testing.T) {
	for _, conservative := range []bool{false, true} {
		cfg := smallConfig("ffrun", conservative)
		if on, off := cfg, cfg; func() bool {
			on.FastForward = true
			off.FastForward = false
			return on.Fingerprint() != off.Fingerprint()
		}() {
			t.Fatal("FastForward leaked into the fingerprint")
		}

		cfg.FastForward = false
		slow, err := RunSource(cfg, source(t, "secret_srv12"))
		if err != nil {
			t.Fatal(err)
		}
		cfg.FastForward = true
		fast, err := RunSource(cfg, source(t, "secret_srv12"))
		if err != nil {
			t.Fatal(err)
		}
		sj, err := slow.CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		fj, err := fast.CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sj, fj) {
			t.Fatalf("conservative=%v: stats diverge:\nslow: %s\nfast: %s", conservative, sj, fj)
		}
	}
}

// fuzzSpec derives a randomized workload from a fuzz seed: a suite spec
// with its structural seed replaced, so program shape, branch outcomes and
// memory behaviour all vary with the input.
func fuzzSpec(t testing.TB, raw uint64) workload.Spec {
	sm := xrand.NewSplitMix64(raw)
	names := []string{"public_srv_60", "secret_crypto52", "secret_int_44"}
	spec, ok := workload.Lookup(names[sm.Next()%uint64(len(names))])
	if !ok {
		t.Fatal("suite workload missing")
	}
	spec.Seed = sm.Next()
	return spec
}

// FuzzFastForwardEquivalence fuzzes the paired step-vs-jump property over
// randomized workload seeds: whatever program the seed generates, the
// event-driven fast path must visit the same cycles with the same
// accounting as the cycle-by-cycle loop.
func FuzzFastForwardEquivalence(f *testing.F) {
	f.Add(uint64(1), false)
	f.Add(uint64(0x5eed), true)
	f.Add(uint64(0xdeadbeef), false)
	f.Fuzz(func(t *testing.T, raw uint64, conservative bool) {
		spec := fuzzSpec(t, raw)
		cfg := smallConfig("fffuzz", conservative)
		cfg.WarmupInstrs = 2_000
		cfg.MaxInstrs = 20_000
		newSim := func() *Sim {
			src, err := spec.NewSource()
			if err != nil {
				t.Fatal(err)
			}
			s, err := New(cfg, src)
			if err != nil {
				t.Fatal(err)
			}
			return s
		}
		fast, slow := newSim(), newSim()
		jumps := 0
		for !fast.Done() {
			if slow.Done() {
				t.Fatalf("slow sim done at cycle %d while fast sim is not", slow.Now())
			}
			n, _ := fast.StepN()
			if n > 1 {
				jumps++
			}
			for i := cache.Cycle(0); i < n; i++ {
				slow.Step()
			}
			if fast.Now() != slow.Now() || fast.Retired() != slow.Retired() {
				t.Fatalf("divergence: fast (cycle %d, retired %d), slow (cycle %d, retired %d)",
					fast.Now(), fast.Retired(), slow.Now(), slow.Retired())
			}
			if fq, sq := fast.Frontend().FTQ().Stats(), slow.Frontend().FTQ().Stats(); fq != sq {
				t.Fatalf("seed %#x: FTQ stats divergence at cycle %d:\nfast %+v\nslow %+v", raw, fast.Now(), fq, sq)
			}
		}
		if !slow.Done() {
			t.Fatalf("fast sim done at cycle %d while slow sim is not", fast.Now())
		}
		fj, err := fast.snapshot().CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		sj, err := slow.snapshot().CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(fj, sj) {
			t.Fatalf("seed %#x: final stats diverge:\nfast: %s\nslow: %s", raw, fj, sj)
		}
		_ = jumps // sparse seeds may produce jump-free runs; equality still holds
	})
}
