package core

import (
	"fmt"
	"strings"

	"frontsim/internal/cache"
)

// Summary renders the snapshot as the human-readable report cmd/fesim
// prints: headline metrics, front-end behaviour, branch prediction, and
// per-level memory traffic.
func (s *Stats) Summary() string {
	var b strings.Builder
	p := func(format string, args ...interface{}) { fmt.Fprintf(&b, format+"\n", args...) }

	p("config                  %s", s.Config)
	p("instructions            %d (+%d software prefetches)", s.Instructions, s.SwPrefetchInstrs)
	p("cycles                  %d", s.Cycles)
	p("IPC                     %.4f", s.IPC())
	p("L1-I MPKI               %.2f", s.L1IMPKI())
	if sp := s.Sampling; sp != nil {
		p("")
		p("-- sampled run --")
		p("windows                 %d measured (%d truncated)", sp.Windows, sp.TruncatedWindows)
		lo, hi := sp.IPCInterval()
		p("IPC estimate            %.4f [%.4f, %.4f] (95%% CI on CPI %.4f ± %.4f)",
			sp.IPCMean(), lo, hi, sp.CPI.Mean, sp.CPI.CI95())
		p("coverage                %d functional, %d warm, %d measured, %d drain instrs",
			sp.FunctionalInstrs, sp.WarmDetailInstrs, s.Instructions, sp.DrainInstrs)
	}
	p("")
	p("-- front-end --")
	p("blocks filled           %d", s.Frontend.BlocksFilled)
	p("fill stall cycles       %d (pfc=%d execute=%d recoveries)",
		s.Frontend.FillStallCycles, s.Frontend.PFCRecoveries, s.Frontend.ExecuteRecoveries)
	p("ftq head-stall cycles   %d", s.FTQ.HeadStallCycles)
	p("ftq shoot-through       %d cycles", s.FTQ.ShootThroughCycles)
	p("ftq empty               %d cycles", s.FTQ.EmptyCycles)
	p("waiting entries         %d unique, %d entry-cycles", s.FTQ.WaitingEntries, s.FTQ.WaitingEntryCycles)
	p("partial (scenario 3)    %d entries", s.FTQ.PartialEntries)
	p("avg fetch: head         %.1f cycles, non-head %.1f cycles", s.FTQ.AvgHeadFetch(), s.FTQ.AvgNonHeadFetch())
	p("lines requested/merged  %d / %d", s.FTQ.LinesRequested, s.FTQ.LinesMerged)
	p("sw prefetches issued    %d instruction, %d trigger",
		s.Frontend.SwPrefetchesIssued, s.Frontend.TriggerPrefetchesIssued)
	if s.Frontend.WrongPathFetches > 0 {
		p("wrong-path fetches      %d", s.Frontend.WrongPathFetches)
	}
	p("")
	p("-- branch prediction --")
	p("cond accuracy           %.4f (%d/%d mispredicted)", s.BPU.CondAccuracy(), s.BPU.CondMispredicts, s.BPU.CondBranches)
	p("BTB hit rate            %.4f (taken misses %d)", s.BPU.BTBHitRate(), s.BPU.BTBMissTaken)
	p("RAS mispredicts         %d/%d", s.BPU.RASMispredicts, s.BPU.RASPredictions)
	p("indirect mispredicts    %d/%d", s.BPU.IndirectMispredicts, s.BPU.IndirectPredictions)
	p("")
	p("-- memory --")
	level := func(name string, st cache.Stats) {
		line := fmt.Sprintf("%-6s accesses %-10d misses %-9d hit %.3f prefetch-fills %d",
			name, st.Accesses, st.Misses, st.HitRate(), st.PrefetchFills)
		if st.PrefetchFills > 0 {
			line += fmt.Sprintf(" accuracy %.2f", st.PrefetchAccuracy())
		}
		p("%s", line)
	}
	level("L1-I", s.L1I)
	level("L1-D", s.L1D)
	level("L2", s.L2)
	level("LLC", s.LLC)
	p("DRAM   accesses %-10d queueing %d cycles", s.DRAMAccesses, s.DRAMQueueing)
	return b.String()
}
