package core

import (
	"strings"
	"testing"

	"frontsim/internal/isa"
	"frontsim/internal/trace"
	"frontsim/internal/workload"
)

func smallConfig(name string, conservative bool) Config {
	var c Config
	if conservative {
		c = ConservativeConfig()
	} else {
		c = DefaultConfig()
	}
	c.Name = name
	c.WarmupInstrs = 20_000
	c.MaxInstrs = 150_000
	return c
}

func source(t *testing.T, name string) trace.Source {
	t.Helper()
	s, ok := workload.Lookup(name)
	if !ok {
		t.Fatalf("unknown workload %s", name)
	}
	src, err := s.NewSource()
	if err != nil {
		t.Fatal(err)
	}
	return src
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := ConservativeConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.DecodeWidth = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted zero decode width")
	}
	bad = DefaultConfig()
	bad.MaxInstrs = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted zero MaxInstrs")
	}
	bad = DefaultConfig()
	bad.WarmupInstrs = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted negative warmup")
	}
}

func TestRunProducesPlausibleStats(t *testing.T) {
	st, err := RunSource(smallConfig("t", false), source(t, "secret_crypto52"))
	if err != nil {
		t.Fatal(err)
	}
	// The final cycle may retire a few instructions past the target.
	if st.Instructions < 150_000 || st.Instructions > 150_000+int64(DefaultConfig().Backend.RetireWidth) {
		t.Fatalf("Instructions = %d", st.Instructions)
	}
	if ipc := st.IPC(); ipc < 0.05 || ipc > 6 {
		t.Fatalf("implausible IPC %v", ipc)
	}
	if st.Cycles <= 0 {
		t.Fatal("no cycles")
	}
	if st.L1I.Accesses == 0 || st.BPU.Branches == 0 || st.FTQ.Pushed == 0 {
		t.Fatalf("missing substats: %+v", st)
	}
	// FTQ cycle accounting must partition total cycles.
	sum := st.FTQ.HeadStallCycles + st.FTQ.ShootThroughCycles + st.FTQ.EmptyCycles
	if sum != st.Cycles {
		t.Fatalf("FTQ cycle partition %d != cycles %d", sum, st.Cycles)
	}
}

func TestRunIsDeterministic(t *testing.T) {
	a, err := RunSource(smallConfig("t", false), source(t, "secret_int_44"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSource(smallConfig("t", false), source(t, "secret_int_44"))
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Instructions != b.Instructions || a.L1I.Misses != b.L1I.Misses {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestDeepFTQOutperformsConservative(t *testing.T) {
	// The paper's core premise: an industry-standard 24-entry FTQ beats a
	// conservative 2-entry FTQ on instruction-bound workloads.
	cons, err := RunSource(smallConfig("cons", true), source(t, "secret_srv12"))
	if err != nil {
		t.Fatal(err)
	}
	deep, err := RunSource(smallConfig("deep", false), source(t, "secret_srv12"))
	if err != nil {
		t.Fatal(err)
	}
	if deep.IPC() <= cons.IPC() {
		t.Fatalf("FDP24 IPC %v <= conservative %v", deep.IPC(), cons.IPC())
	}
	// Same-line merging gives the deep FTQ fewer L1-I accesses (§V-B).
	if deep.L1I.Accesses >= cons.L1I.Accesses {
		t.Fatalf("deep FTQ L1-I accesses %d >= conservative %d", deep.L1I.Accesses, cons.L1I.Accesses)
	}
	// Deeper FTQ sees fewer Scenario-3 partials (Fig. 11's direction).
	if deep.FTQ.PartialEntries >= cons.FTQ.PartialEntries {
		t.Fatalf("deep partials %d >= conservative %d", deep.FTQ.PartialEntries, cons.FTQ.PartialEntries)
	}
}

func TestHeadFetchLatencyExceedsNonHead(t *testing.T) {
	// Fig. 8's direction: entries that stall the head have longer fetch
	// latencies than covered entries.
	st, err := RunSource(smallConfig("t", false), source(t, "secret_srv12"))
	if err != nil {
		t.Fatal(err)
	}
	if st.FTQ.AvgHeadFetch() <= st.FTQ.AvgNonHeadFetch() {
		t.Fatalf("head fetch %v <= non-head %v", st.FTQ.AvgHeadFetch(), st.FTQ.AvgNonHeadFetch())
	}
}

func TestWarmupExcludedFromStats(t *testing.T) {
	warm := smallConfig("w", false)
	a, err := RunSource(warm, source(t, "secret_crypto52"))
	if err != nil {
		t.Fatal(err)
	}
	// The measured window covers exactly MaxInstrs program instructions —
	// warmup retirements are excluded from every counter.
	if a.Instructions < warm.MaxInstrs || a.Instructions > warm.MaxInstrs+int64(warm.Backend.RetireWidth) {
		t.Fatalf("measured %d instructions, want ~%d (warmup excluded)", a.Instructions, warm.MaxInstrs)
	}
	// And the warm window cannot have counted warmup cycles: a run that
	// measures from cycle zero over warmup+max instructions takes strictly
	// more cycles.
	whole := warm
	whole.WarmupInstrs = 0
	whole.MaxInstrs = warm.WarmupInstrs + warm.MaxInstrs
	b, err := RunSource(whole, source(t, "secret_crypto52"))
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles >= b.Cycles {
		t.Fatalf("warmup cycles leaked into measurement: %d >= %d", a.Cycles, b.Cycles)
	}
}

func TestShortSourceEndsCleanly(t *testing.T) {
	instrs := make([]isa.Instr, 100)
	pc := isa.Addr(0x400000)
	for i := range instrs {
		instrs[i] = isa.Instr{PC: pc, Class: isa.ClassALU}
		pc += isa.InstrSize
	}
	cfg := DefaultConfig()
	cfg.WarmupInstrs = 0
	st, err := RunSource(cfg, trace.NewSlice(instrs))
	if err != nil {
		t.Fatal(err)
	}
	if st.Instructions != 100 {
		t.Fatalf("retired %d", st.Instructions)
	}
}

func TestSourceEndsDuringWarmup(t *testing.T) {
	instrs := make([]isa.Instr, 50)
	pc := isa.Addr(0x400000)
	for i := range instrs {
		instrs[i] = isa.Instr{PC: pc, Class: isa.ClassALU}
		pc += isa.InstrSize
	}
	cfg := DefaultConfig()
	cfg.WarmupInstrs = 1000 // never reached
	st, err := RunSource(cfg, trace.NewSlice(instrs))
	if err != nil {
		t.Fatal(err)
	}
	if st.Instructions != 50 || st.Cycles == 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestSwPrefetchExcludedFromIPC(t *testing.T) {
	// A stream of prefetches plus ALUs: IPC counts only the ALUs.
	var instrs []isa.Instr
	pc := isa.Addr(0x400000)
	for i := 0; i < 200; i++ {
		class := isa.ClassALU
		if i%2 == 0 {
			class = isa.ClassSwPrefetch
		}
		in := isa.Instr{PC: pc, Class: class}
		if class == isa.ClassSwPrefetch {
			in.Target = 0x900000
		}
		instrs = append(instrs, in)
		pc += isa.InstrSize
	}
	cfg := DefaultConfig()
	cfg.WarmupInstrs = 0
	st, err := RunSource(cfg, trace.NewSlice(instrs))
	if err != nil {
		t.Fatal(err)
	}
	if st.Instructions != 100 || st.SwPrefetchInstrs != 100 {
		t.Fatalf("program=%d swpf=%d", st.Instructions, st.SwPrefetchInstrs)
	}
	if st.DynamicBloat() != 1.0 {
		t.Fatalf("DynamicBloat = %v", st.DynamicBloat())
	}
}

func TestTriggersFireThroughConfig(t *testing.T) {
	var instrs []isa.Instr
	pc := isa.Addr(0x400000)
	for i := 0; i < 64; i++ {
		instrs = append(instrs, isa.Instr{PC: pc, Class: isa.ClassALU})
		pc += isa.InstrSize
	}
	cfg := DefaultConfig()
	cfg.WarmupInstrs = 0
	cfg.Triggers = map[isa.Addr][]isa.Addr{0x400010: {0xa00000}}
	sim, err := New(cfg, trace.NewSlice(instrs))
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Frontend.TriggerPrefetchesIssued != 1 {
		t.Fatalf("trigger prefetches = %d", st.Frontend.TriggerPrefetchesIssued)
	}
	if !sim.Hierarchy().L1I.Probe(0xa00000) {
		t.Fatal("trigger target not prefetched")
	}
}

func TestStatsHelpers(t *testing.T) {
	var s Stats
	if s.IPC() != 0 || s.L1IMPKI() != 0 || s.DynamicBloat() != 0 {
		t.Fatal("zero-value stats helpers must be 0")
	}
	s.Cycles = 100
	s.Instructions = 250
	s.L1I.Misses = 5
	s.SwPrefetchInstrs = 25
	if s.IPC() != 2.5 {
		t.Fatalf("IPC %v", s.IPC())
	}
	if s.L1IMPKI() != 20 {
		t.Fatalf("MPKI %v", s.L1IMPKI())
	}
	if s.DynamicBloat() != 0.1 {
		t.Fatalf("bloat %v", s.DynamicBloat())
	}
}

func TestConfigNamesDiffer(t *testing.T) {
	if DefaultConfig().Name == ConservativeConfig().Name {
		t.Fatal("config names collide")
	}
	if !strings.Contains(ConservativeConfig().Name, "conservative") {
		t.Fatal("unexpected conservative name")
	}
	if ConservativeConfig().Frontend.FTQEntries != 2 || DefaultConfig().Frontend.FTQEntries != 24 {
		t.Fatal("FTQ depths wrong")
	}
}

func TestSummaryRendersAllSections(t *testing.T) {
	st, err := RunSource(smallConfig("t", false), source(t, "secret_crypto52"))
	if err != nil {
		t.Fatal(err)
	}
	out := st.Summary()
	for _, want := range []string{"IPC", "front-end", "branch prediction", "memory", "L1-I", "DRAM", "scenario 3"} {
		if !strings.Contains(out, want) {
			t.Errorf("Summary missing %q:\n%s", want, out)
		}
	}
}
