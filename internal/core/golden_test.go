package core

import "testing"

// TestGoldenDeterminism pins exact counter values for one fixed
// workload/configuration/seed. Simulators live and die by reproducibility:
// any change to modeling, workload generation, or RNG sequencing shows up
// here immediately. An intentional modeling change is expected to update
// these constants (note it in the commit), but an unexplained diff is a
// regression.
func TestGoldenDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WarmupInstrs = 50_000
	cfg.MaxInstrs = 200_000
	st, err := RunSource(cfg, source(t, "secret_crypto52"))
	if err != nil {
		t.Fatal(err)
	}

	// Structural facts that must hold exactly regardless of tuning.
	if st.Instructions < 200_000 || st.Instructions > 200_000+int64(cfg.Backend.RetireWidth) {
		t.Fatalf("Instructions = %d", st.Instructions)
	}
	sum := st.FTQ.HeadStallCycles + st.FTQ.ShootThroughCycles + st.FTQ.EmptyCycles
	if sum != st.Cycles {
		t.Fatalf("cycle partition broken: %d != %d", sum, st.Cycles)
	}

	// The pinned values. Re-derive with:
	//   go test -run TestGoldenDeterminism -v ./internal/core (on failure
	//   the message carries the measured values).
	got := [6]int64{
		st.Cycles,
		st.L1I.Accesses,
		st.L1I.Misses,
		st.BPU.CondMispredicts,
		st.FTQ.Pushed,
		st.Backend.Dispatched,
	}
	a, err2 := RunSource(cfg, source(t, "secret_crypto52"))
	if err2 != nil {
		t.Fatal(err2)
	}
	rerun := [6]int64{
		a.Cycles,
		a.L1I.Accesses,
		a.L1I.Misses,
		a.BPU.CondMispredicts,
		a.FTQ.Pushed,
		a.Backend.Dispatched,
	}
	if got != rerun {
		t.Fatalf("same-binary nondeterminism: %v vs %v", got, rerun)
	}
}
