//go:build audit

package core

// auditBuildTag forces per-cycle invariant auditing for every Sim in this
// build, regardless of Config.Audit: `go test -tags audit ./...` turns the
// whole test suite into an invariant regression run.
const auditBuildTag = true
