package core

import (
	"fmt"

	"frontsim/internal/cache"
)

// AuditViolation is the panic value raised when audit mode detects an
// invariant violation: a minimal reproduction record — the workload-
// independent config fingerprint plus the violating cycle — and the
// violated invariant.
type AuditViolation struct {
	Config      string // Config.Name
	Fingerprint string // Config.Fingerprint()
	Cycle       cache.Cycle
	Err         error
}

// Error renders the repro dump.
func (v *AuditViolation) Error() string {
	return fmt.Sprintf("core: AUDIT VIOLATION at cycle %d (config %q, fingerprint %s): %v",
		v.Cycle, v.Config, v.Fingerprint, v.Err)
}

// Unwrap exposes the underlying invariant error.
func (v *AuditViolation) Unwrap() error { return v.Err }

// auditing reports whether this run checks invariants every cycle: the
// per-run config flag, or globally via the audit build tag (see
// audit_tag_on.go).
func (s *Sim) auditing() bool { return s.cfg.Audit || auditBuildTag }

// audit runs the per-cycle invariant checks and panics with an
// AuditViolation on the first failure. The fingerprint is only computed on
// the failure path; a clean check allocates nothing.
func (s *Sim) audit(now cache.Cycle) {
	if err := s.auditCheck(now); err != nil {
		panic(&AuditViolation{
			Config:      s.cfg.Name,
			Fingerprint: s.cfg.Fingerprint(),
			Cycle:       now,
			Err:         err,
		})
	}
}
