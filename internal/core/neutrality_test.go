package core

import (
	"reflect"
	"testing"
)

// TestFingerprintNeutralRegistryMirrorsTags pins the two-way contract
// fpexclude enforces statically: every json:"-" Config field is registered
// as neutral, and every registry entry names a real excluded field.
func TestFingerprintNeutralRegistryMirrorsTags(t *testing.T) {
	typ := reflect.TypeOf(Config{})
	excluded := map[string]bool{}
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		if f.Tag.Get("json") != "-" {
			continue
		}
		excluded[f.Name] = true
		if test, ok := FingerprintNeutral[f.Name]; !ok {
			t.Errorf("Config.%s is fingerprint-excluded (json:\"-\") but missing from FingerprintNeutral", f.Name)
		} else if test == "" {
			t.Errorf("Config.%s is registered without an equivalence test", f.Name)
		}
	}
	for name := range FingerprintNeutral {
		if !excluded[name] {
			t.Errorf("FingerprintNeutral entry %q does not match a json:\"-\" Config field", name)
		}
	}
}
