package core

import (
	"bytes"
	"testing"

	"frontsim/internal/obs"
)

// TestObsObservational pins the obs layer's central guarantee: attaching a
// sink — at any stride, with the event trace on — cannot change simulated
// results. Canonical Stats JSON and the config fingerprint must be
// byte-identical with observation on or off, so observed and unobserved
// runs share run-cache entries.
func TestObsObservational(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WarmupInstrs = 30_000
	cfg.MaxInstrs = 150_000

	base, err := RunSource(cfg, source(t, "secret_srv12"))
	if err != nil {
		t.Fatal(err)
	}
	baseJSON, err := base.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	baseFP := cfg.Fingerprint()

	for _, stride := range []int64{1, 7, 64} {
		// The guarantee must hold in both run-loop modes: the fast-forward
		// path synthesizes the skipped spans' samples, and neither the sink
		// nor the synthesis may perturb results.
		for _, ff := range []bool{false, true} {
			var events bytes.Buffer
			o := obs.NewObserver(obs.Options{Stride: stride, SampleCap: 512, Events: &events})
			ocfg := cfg
			ocfg.Obs = o
			ocfg.FastForward = ff
			st, err := RunSource(ocfg, source(t, "secret_srv12"))
			if err != nil {
				t.Fatalf("stride %d ff=%v: %v", stride, ff, err)
			}
			gotJSON, err := st.CanonicalJSON()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(gotJSON, baseJSON) {
				t.Errorf("stride %d ff=%v: Stats diverged with observation on:\n%s\nvs\n%s", stride, ff, gotJSON, baseJSON)
			}
			if fp := ocfg.Fingerprint(); fp != baseFP {
				t.Errorf("stride %d ff=%v: fingerprint changed with a sink attached: %s vs %s", stride, ff, fp, baseFP)
			}
			// Guard against a vacuous pass: the sink must actually have been
			// driven.
			if o.TotalSamples() == 0 {
				t.Errorf("stride %d ff=%v: no samples delivered", stride, ff)
			}
			if err := o.Flush(); err != nil {
				t.Fatalf("stride %d ff=%v: event stream error: %v", stride, ff, err)
			}
		}
	}
}

// TestObsFastForwardSampleIdentity pins the fast path's sample synthesis:
// at every stride, a fast-forwarded run must deliver exactly the samples —
// same cycles, same contents, same order — and exactly the event trace
// bytes a cycle-by-cycle run produces. Skipped spans are invisible to the
// observer.
func TestObsFastForwardSampleIdentity(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WarmupInstrs = 10_000
	cfg.MaxInstrs = 60_000

	for _, stride := range []int64{1, 7, 64} {
		observe := func(ff bool) (*obs.Observer, *bytes.Buffer) {
			var events bytes.Buffer
			o := obs.NewObserver(obs.Options{Stride: stride, SampleCap: 1 << 20, Events: &events})
			c := cfg
			c.Obs = o
			c.FastForward = ff
			if _, err := RunSource(c, source(t, "secret_srv12")); err != nil {
				t.Fatalf("stride %d ff=%v: %v", stride, ff, err)
			}
			if err := o.Flush(); err != nil {
				t.Fatal(err)
			}
			return o, &events
		}
		slow, slowEvents := observe(false)
		fast, fastEvents := observe(true)

		ss, fs := slow.Samples(), fast.Samples()
		if len(ss) != len(fs) {
			t.Fatalf("stride %d: %d samples cycle-by-cycle vs %d fast-forwarded", stride, len(ss), len(fs))
		}
		if len(ss) == 0 {
			t.Fatalf("stride %d: no samples delivered", stride)
		}
		for i := range ss {
			if ss[i] != fs[i] {
				t.Fatalf("stride %d: sample %d diverges:\ncycle-by-cycle %+v\nfast-forward  %+v", stride, i, ss[i], fs[i])
			}
		}
		if !bytes.Equal(slowEvents.Bytes(), fastEvents.Bytes()) {
			t.Fatalf("stride %d: event traces diverge", stride)
		}
	}
}

// TestObsSampleStrideRespected checks the sampler fires every stride
// cycles (cycle numbers divisible by the stride) and that sample contents
// carry plausible, monotone cumulative counters.
func TestObsSampleStrideRespected(t *testing.T) {
	const stride = 16
	o := obs.NewObserver(obs.Options{Stride: stride, SampleCap: 1 << 16})
	cfg := DefaultConfig()
	cfg.WarmupInstrs = 10_000
	cfg.MaxInstrs = 50_000
	cfg.Obs = o
	st, err := RunSource(cfg, source(t, "secret_int_44"))
	if err != nil {
		t.Fatal(err)
	}
	samples := o.Samples()
	if len(samples) < 10 {
		t.Fatalf("only %d samples", len(samples))
	}
	prev := obs.Sample{Cycle: -1}
	for i, s := range samples {
		if s.Cycle%stride != 0 {
			t.Fatalf("sample %d at cycle %d, not a stride multiple", i, s.Cycle)
		}
		if s.Cycle <= prev.Cycle {
			t.Fatalf("sample %d cycle %d not increasing (prev %d)", i, s.Cycle, prev.Cycle)
		}
		if s.FTQOcc < 0 || s.FTQOcc > cfg.Frontend.FTQEntries {
			t.Fatalf("sample %d FTQ occupancy %d out of range", i, s.FTQOcc)
		}
		if i > 0 && (s.L1IAccesses < prev.L1IAccesses || s.SwPrefetches < prev.SwPrefetches) {
			// Counters are cumulative within a measurement phase; the one
			// allowed drop is the warmup-boundary reset.
			if prev.Retired > s.Retired {
				// warmup reset: fine
			} else {
				t.Fatalf("sample %d cumulative counters regressed: %+v -> %+v", i, prev, s)
			}
		}
		prev = s
	}
	if st.Cycles == 0 {
		t.Fatal("run measured nothing")
	}
}

// TestStatsMetricSetExports sanity-checks the per-run metrics export:
// labels propagate, headline values match the snapshot, and the set
// serializes deterministically.
func TestStatsMetricSetExports(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WarmupInstrs = 10_000
	cfg.MaxInstrs = 50_000
	st, err := RunSource(cfg, source(t, "secret_srv12"))
	if err != nil {
		t.Fatal(err)
	}
	ms := st.MetricSet(obs.Label{Key: "workload", Value: "secret_srv12"}, obs.Label{Key: "config", Value: cfg.Name})
	var ipcSeen, overshootSeen bool
	for _, m := range ms {
		if len(m.Labels) != 2 {
			t.Fatalf("metric %s has %d labels, want 2", m.Name, len(m.Labels))
		}
		switch m.Name {
		case "frontsim_ipc":
			ipcSeen = true
			if diff := m.Value - st.IPC(); diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("ipc metric %v != %v", m.Value, st.IPC())
			}
		case "frontsim_warmup_overshoot":
			overshootSeen = true
		}
	}
	if !ipcSeen || !overshootSeen {
		t.Fatalf("missing headline metrics (ipc=%v overshoot=%v)", ipcSeen, overshootSeen)
	}
	var a, b bytes.Buffer
	if err := ms.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := ms.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("MetricSet JSON not deterministic")
	}
	var prom bytes.Buffer
	if err := ms.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	if prom.Len() == 0 {
		t.Fatal("empty Prometheus export")
	}
}
