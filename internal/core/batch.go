package core

import (
	"context"
	"math"
)

// BatchMember is one simulator in a lockstep batch, typically built over
// a trace.FanoutReader so every member consumes one shared instruction
// stream:
//
//	fo := trace.NewFanout(program.NewExecutor(prog, seed))
//	r := fo.NewReader()
//	sim, _ := core.New(cfg, r)
//	member := core.BatchMember{Sim: sim, Pos: r.Consumed, Detach: r.Detach}
type BatchMember struct {
	Sim *Sim
	// Pos reports the member's stream position — instructions consumed
	// from the shared source (trace.FanoutReader.Consumed). The scheduler
	// always advances the rearmost live member, so positions stay within
	// the scheduling quantum (batchSlack) of each other and the shared
	// window stays bounded. Required.
	Pos func() int64
	// Detach, if non-nil, is called exactly once when the member finishes
	// (successfully or not), releasing its claim on the shared stream so
	// a member that exhausts its budget early stops pinning the window
	// without stalling the rest (trace.FanoutReader.Detach).
	Detach func()
}

// batchSlack is the lockstep scheduling quantum in stream instructions:
// the running member may advance this far past the rearmost other live
// member before the scheduler switches. A one-block quantum would keep
// the shared window minimal but thrash the host cache — every switch
// drags a different simulator's predictor, BTB and cache-model tables
// back in — so the quantum trades a bounded window (~slack instructions,
// well under a megabyte) for each member simulating long locality-
// friendly stretches. Results are interleaving-independent (each Sim's
// state is touched only by its own steps), so this is purely a
// wall-clock knob.
const batchSlack = 16 * 1024

// BatchResult is one member's outcome: exactly what a solo RunCtx over
// the same config and stream would have returned.
type BatchResult struct {
	Stats Stats
	Err   error
}

// RunBatch runs the members' simulations to completion in lockstep over
// their shared instruction stream. Each member executes the identical
// advance/finish sequence a solo Sim.Run would — the scheduler only
// chooses which member's loop body runs next, and a Sim's state is
// touched by nothing but its own steps — so every member's Stats are
// byte-identical to its solo run (TestRunBatchMatchesSolo,
// FuzzBatchEquivalence). A member that finishes early (budget exhausted,
// wedged, source drained) detaches and the rest continue.
func RunBatch(members []BatchMember) []BatchResult {
	return RunBatchCtx(context.Background(), members) //lint:allow ctx-less wrapper by contract: callers with a lifetime use RunBatchCtx
}

// RunBatchCtx is RunBatch with cooperative cancellation; each member
// observes the context exactly as its solo RunCtx would and reports the
// cancellation error in its BatchResult.
func RunBatchCtx(ctx context.Context, members []BatchMember) []BatchResult {
	for i := range members {
		if members[i].Pos == nil {
			panic("core: BatchMember.Pos is required")
		}
	}
	res := make([]BatchResult, len(members))
	states := make([]runState, len(members))
	done := make([]bool, len(members))
	for i := range states {
		states[i] = newRunState(ctx)
	}
	live := len(members)
	finish := func(i int, st Stats, err error) {
		res[i] = BatchResult{Stats: st, Err: err}
		done[i] = true
		live--
		if members[i].Detach != nil {
			members[i].Detach()
		}
	}
	for live > 0 {
		// The rearmost live member runs next (ties break to the lowest
		// index, keeping the schedule deterministic).
		mi := -1
		for i := range members {
			if done[i] {
				continue
			}
			if mi < 0 || members[i].Pos() < members[mi].Pos() {
				mi = i
			}
		}
		// It may advance until it is a full quantum past the rearmost of
		// the *other* live members — the barrier that bounds the shared
		// window's position spread at batchSlack plus one block. The last
		// survivor has no barrier and runs straight to completion.
		barrier := int64(math.MaxInt64)
		for i := range members {
			if done[i] || i == mi {
				continue
			}
			if p := members[i].Pos(); p < barrier {
				barrier = p
			}
		}
		for {
			fin, err := members[mi].Sim.advance(ctx, &states[mi])
			if err != nil {
				finish(mi, Stats{}, err)
				break
			}
			if fin {
				st, ferr := members[mi].Sim.finishRun()
				finish(mi, st, ferr)
				break
			}
			if members[mi].Pos() > barrier+batchSlack {
				break
			}
		}
	}
	return res
}
