package core

import (
	"testing"

	"frontsim/internal/trace"
)

// These tests check whole-machine invariants and the directional effects
// the paper's characterization rests on, across several workloads. They
// run at reduced scale to stay fast; the magnitudes are checked in the
// experiment harness and EXPERIMENTS.md.

func runDepth(t *testing.T, name string, depth int) Stats {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Frontend.FTQEntries = depth
	cfg.WarmupInstrs = 50_000
	cfg.MaxInstrs = 250_000
	st, err := RunSource(cfg, source(t, name))
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestCyclePartitionInvariant(t *testing.T) {
	// Every simulated cycle is exactly one of head-stall, shoot-through,
	// or empty — across workload categories and depths.
	for _, name := range []string{"secret_crypto52", "secret_int_44", "secret_srv12"} {
		for _, depth := range []int{2, 8, 24} {
			st := runDepth(t, name, depth)
			sum := st.FTQ.HeadStallCycles + st.FTQ.ShootThroughCycles + st.FTQ.EmptyCycles
			if sum != st.Cycles {
				t.Errorf("%s depth=%d: partition %d != cycles %d", name, depth, sum, st.Cycles)
			}
		}
	}
}

func TestIPCMonotonicInFTQDepth(t *testing.T) {
	// Deeper FTQs never hurt on instruction-bound workloads (they only add
	// run-ahead and merging capacity); allow a small tolerance for
	// second-order cache perturbation.
	for _, name := range []string{"secret_int_44", "secret_srv12"} {
		prev := 0.0
		for _, depth := range []int{2, 8, 24} {
			st := runDepth(t, name, depth)
			ipc := st.IPC()
			if ipc < prev*0.98 {
				t.Errorf("%s: IPC fell from %.3f to %.3f at depth %d", name, prev, ipc, depth)
			}
			prev = ipc
		}
	}
}

func TestL1IAccessesMonotonicInDepth(t *testing.T) {
	// FTQ-level merging strictly grows with depth (§V-B).
	for _, name := range []string{"secret_srv12"} {
		prev := int64(1 << 62)
		for _, depth := range []int{2, 8, 24} {
			acc := runDepth(t, name, depth).L1I.Accesses
			if acc > prev {
				t.Errorf("%s: L1-I accesses rose from %d to %d at depth %d", name, prev, acc, depth)
			}
			prev = acc
		}
	}
}

func TestInstructionConservation(t *testing.T) {
	// Everything the front-end fills is eventually dispatched and retired
	// (modulo pipeline residue at the stop point).
	st := runDepth(t, "secret_int_44", 24)
	fePushed := st.FTQ.Instructions
	dispatched := st.Backend.Dispatched
	retired := st.Backend.Retired
	// Counters reset at the warmup boundary while instructions are in
	// flight, so each stage may lead or lag its upstream by at most the
	// intervening buffer capacity.
	rob := int64(DefaultConfig().Backend.ROBSize)
	ftqInstrs := int64(24 * 8)
	if dispatched > fePushed+ftqInstrs || fePushed > dispatched+ftqInstrs+rob {
		t.Fatalf("dispatch/dequeue out of window: %d vs %d", dispatched, fePushed)
	}
	if retired > dispatched+rob || dispatched > retired+rob {
		t.Fatalf("retire/dispatch out of window: %d vs %d", retired, dispatched)
	}
}

func TestHierarchyFlowConservation(t *testing.T) {
	// Each level's misses equal the next level's demand accesses (both L1s
	// feed L2; L2 misses feed LLC; LLC misses feed DRAM). Prefetch fills
	// travel the same path, so compare total traffic.
	st := runDepth(t, "secret_srv12", 24)
	l2In := st.L1I.Misses + st.L1D.Misses
	if st.L2.Accesses != l2In {
		t.Fatalf("L2 demand accesses %d != L1 misses %d", st.L2.Accesses, l2In)
	}
	if st.LLC.Accesses != st.L2.Misses {
		t.Fatalf("LLC accesses %d != L2 misses %d", st.LLC.Accesses, st.L2.Misses)
	}
	if st.DRAMAccesses != st.LLC.Misses {
		t.Fatalf("DRAM accesses %d != LLC misses %d", st.DRAMAccesses, st.LLC.Misses)
	}
}

func TestWaitingNeverExceedsCapacityTimesStalls(t *testing.T) {
	// At most Cap-1 entries can wait during one head-stall cycle.
	for _, depth := range []int{2, 24} {
		st := runDepth(t, "secret_srv12", depth)
		limit := st.FTQ.HeadStallCycles * int64(depth-1)
		if st.FTQ.WaitingEntryCycles > limit {
			t.Errorf("depth %d: waiting %d exceeds bound %d", depth, st.FTQ.WaitingEntryCycles, limit)
		}
	}
}

func TestPartialEntriesBoundedByPushes(t *testing.T) {
	st := runDepth(t, "secret_srv12", 2)
	if st.FTQ.PartialEntries > st.FTQ.Pushed {
		t.Fatalf("partials %d exceed pushes %d", st.FTQ.PartialEntries, st.FTQ.Pushed)
	}
	if st.FTQ.WaitingEntries > st.FTQ.Pushed {
		t.Fatalf("waiting %d exceed pushes %d", st.FTQ.WaitingEntries, st.FTQ.Pushed)
	}
}

func TestBranchAccountingConsistent(t *testing.T) {
	st := runDepth(t, "secret_int_44", 24)
	b := st.BPU
	if b.CondMispredicts > b.CondBranches {
		t.Fatal("more cond mispredicts than cond branches")
	}
	if b.BTBMisses > b.BTBLookups {
		t.Fatal("more BTB misses than lookups")
	}
	if b.Branches != b.BTBLookups {
		t.Fatalf("branches %d != BTB lookups %d", b.Branches, b.BTBLookups)
	}
	wrongPathCauses := b.CondMispredicts + b.BTBMissTaken + b.RASMispredicts + b.IndirectMispredicts
	if b.WrongPath > wrongPathCauses {
		t.Fatalf("wrong-path events %d exceed cause sum %d", b.WrongPath, wrongPathCauses)
	}
}

func TestGHRFilterReducesNothingWhenDisabledMatters(t *testing.T) {
	// Toggling GHR filtering must keep the machine functional and change
	// only predictor-side behaviour.
	cfg := DefaultConfig()
	cfg.Frontend.BPU.FilterGHR = false
	cfg.WarmupInstrs = 30_000
	cfg.MaxInstrs = 150_000
	st, err := RunSource(cfg, source(t, "secret_int_44"))
	if err != nil {
		t.Fatal(err)
	}
	if st.BPU.GHRFiltered != 0 {
		t.Fatal("filter counted while disabled")
	}
	if st.IPC() <= 0 {
		t.Fatal("machine wedged with filter disabled")
	}
}

func TestTAGEConfigRunsWholeMachine(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Frontend.BPU.UseTAGE = true
	cfg.WarmupInstrs = 30_000
	cfg.MaxInstrs = 150_000
	st, err := RunSource(cfg, source(t, "secret_srv12"))
	if err != nil {
		t.Fatal(err)
	}
	if st.IPC() <= 0 || st.BPU.CondAccuracy() < 0.7 {
		t.Fatalf("TAGE machine stats: ipc=%v acc=%v", st.IPC(), st.BPU.CondAccuracy())
	}
}

func TestWarmupOvershootBoundedByRetireWidth(t *testing.T) {
	// The warmup flip is evaluated once per cycle, before that cycle's
	// retirement, so at the flip RetiredProgram can exceed WarmupInstrs by
	// at most one cycle's retirement minus one: overshoot ∈ [0,
	// RetireWidth).
	width := int64(DefaultConfig().Backend.RetireWidth)
	for _, name := range []string{"secret_crypto52", "secret_int_44", "secret_srv12"} {
		st := runDepth(t, name, 24)
		if st.WarmupOvershoot < 0 || st.WarmupOvershoot >= width {
			t.Errorf("%s: WarmupOvershoot %d outside [0, %d)", name, st.WarmupOvershoot, width)
		}
	}
	// A run whose source drains before the warmup boundary reports zero
	// overshoot (measurement never began).
	cfg := DefaultConfig()
	cfg.WarmupInstrs = 1 << 60
	cfg.MaxInstrs = 1 << 60
	st, err := RunSource(cfg, trace.NewLimit(source(t, "secret_int_44"), 30_000))
	if err != nil {
		t.Fatal(err)
	}
	if st.WarmupOvershoot != 0 {
		t.Fatalf("unmeasured run reports overshoot %d", st.WarmupOvershoot)
	}
}

func TestAllCategoriesRunClean(t *testing.T) {
	// One workload per category end-to-end; catches generator regressions
	// that only one regime exposes.
	for _, name := range []string{"secret_crypto80", "secret_int_155", "secret_srv222"} {
		st := runDepth(t, name, 24)
		if st.Instructions < 250_000 {
			t.Errorf("%s retired only %d", name, st.Instructions)
		}
		if st.IPC() <= 0.05 || st.IPC() > 6 {
			t.Errorf("%s implausible IPC %v", name, st.IPC())
		}
	}
}
