package core

import "frontsim/internal/obs"

// MetricSet renders the snapshot as exportable metrics (canonical JSON or
// Prometheus text via obs.MetricSet), carrying the given labels on every
// point. The selection follows the paper's headline measurements: IPC,
// L1-I MPKI, the FTQ scenario partition, line merging, and software
// prefetch accounting.
func (s *Stats) MetricSet(labels ...obs.Label) obs.MetricSet {
	var ms obs.MetricSet
	add := func(name, help string, v float64) {
		l := make([]obs.Label, len(labels))
		copy(l, labels)
		ms.Add(obs.Metric{Name: name, Help: help, Labels: l, Value: v})
	}
	add("frontsim_ipc", "Retired program instructions per cycle.", s.IPC())
	add("frontsim_cycles", "Measured cycles.", float64(s.Cycles))
	add("frontsim_instructions", "Retired program instructions.", float64(s.Instructions))
	add("frontsim_sw_prefetch_instrs", "Retired software prefetch instructions.", float64(s.SwPrefetchInstrs))
	add("frontsim_dynamic_bloat", "Fraction of extra fetched instructions due to software prefetches.", s.DynamicBloat())
	add("frontsim_l1i_mpki", "L1-I demand misses per thousand program instructions.", s.L1IMPKI())
	add("frontsim_l1i_accesses", "L1-I demand accesses.", float64(s.L1I.Accesses))
	add("frontsim_l2_misses", "L2 demand misses.", float64(s.L2.Misses))
	add("frontsim_ftq_shoot_through_cycles", "Cycles with a ready FTQ head (Scenario 1).", float64(s.FTQ.ShootThroughCycles))
	add("frontsim_ftq_scenario2_cycles", "Head-stall cycles with completed followers (Scenario 2).", float64(s.FTQ.Scenario2Cycles))
	add("frontsim_ftq_scenario3_cycles", "Head-stall cycles with no completed follower (Scenario 3).", float64(s.FTQ.Scenario3Cycles))
	add("frontsim_ftq_empty_cycles", "Cycles with an empty FTQ.", float64(s.FTQ.EmptyCycles))
	add("frontsim_ftq_lines_requested", "L1-I line fetches issued by the FTQ.", float64(s.FTQ.LinesRequested))
	add("frontsim_ftq_lines_merged", "FTQ entry lines satisfied by a resident entry's request.", float64(s.FTQ.LinesMerged))
	add("frontsim_warmup_overshoot", "Program instructions retired past WarmupInstrs before measurement began.", float64(s.WarmupOvershoot))
	if s.Sampling != nil {
		add("frontsim_sampling_windows", "Measured detailed windows aggregated into the sampled estimate.", float64(s.Sampling.Windows))
		add("frontsim_sampling_cpi_mean", "Mean of the per-window CPI samples.", s.Sampling.CPI.Mean)
		add("frontsim_sampling_cpi_ci95", "Half-width of the 95% confidence interval on the per-window CPI mean.", s.Sampling.CPI.CI95())
		add("frontsim_sampling_ipc_mean", "Sampled IPC point estimate (1/mean CPI).", s.Sampling.IPCMean())
		add("frontsim_sampling_functional_instrs", "Program instructions consumed functionally (initial warm-up plus gaps).", float64(s.Sampling.FunctionalInstrs))
	}
	return ms
}
