package core

// FingerprintNeutral is the fingerprint-neutrality registry the fpexclude
// analyzer cross-checks against Config's struct tags: every field excluded
// from serialization (json:"-") — and therefore invisible to
// Fingerprint() and the run-cache key — must be listed here, mapped to the
// equivalence test that pins byte-identical results across its settings.
// A field that is neither fingerprinted nor registered fails `make lint`;
// TestFingerprintNeutralRegistryMirrorsTags keeps the registry and the
// tags from drifting apart at test time too.
var FingerprintNeutral = map[string]string{
	"Audit":       "TestAuditCleanRun",
	"Obs":         "TestObsObservational",
	"FastForward": "TestFastForwardRunByteIdentical",
}
