// Package core assembles the whole simulated machine — decoupled FDP
// front-end, simplified OoO back-end, and the cache hierarchy — and runs
// trace-driven simulations with warmup handling, producing the full
// statistics snapshot behind every figure in the paper.
package core

import (
	"context"
	"errors"
	"fmt"

	"frontsim/internal/backend"
	"frontsim/internal/bpu"
	"frontsim/internal/cache"
	"frontsim/internal/frontend"
	"frontsim/internal/ftq"
	"frontsim/internal/isa"
	"frontsim/internal/obs"
	"frontsim/internal/trace"
)

// Config is the whole-machine configuration (the paper's Table I).
type Config struct {
	Name     string
	Frontend frontend.Config
	Backend  backend.Config
	Memory   cache.HierarchyConfig
	// DecodeWidth caps instructions moved from the FTQ to the back-end per
	// cycle.
	DecodeWidth int
	// WarmupInstrs are program instructions executed before statistics
	// reset.
	WarmupInstrs int64
	// MaxInstrs are program (non-prefetch) instructions measured after
	// warmup; the run ends when they retire or the source ends. In sampled
	// mode (Sampling.Enabled) it is the post-warm-up coverage budget:
	// functional gaps, detailed warm-up, measured windows and drains all
	// count toward it, so sampled and exact runs traverse the same stream
	// region.
	MaxInstrs int64
	// Sampling, when enabled, runs the simulation in SMARTS-style
	// systematic sampling mode: WarmupInstrs are consumed functionally,
	// then detailed windows of Sampling.DetailInstrs (each preceded by a
	// Sampling.WarmInstrs timing ramp) alternate with functional gaps, one
	// window per Sampling.IntervalInstrs. Per-window IPC samples feed the
	// confidence interval reported in Stats.Sampling. The whole block is
	// fingerprinted: sampled and exact runs never share cache entries.
	Sampling SamplingConfig
	// Triggers optionally maps trigger PCs to prefetch targets for the
	// no-insertion-overhead software prefetching mode.
	Triggers map[isa.Addr][]isa.Addr
	// Audit enables per-cycle invariant checking: FTQ cycle-conservation
	// (Scenario 1+2+3+empty == ticked cycles), occupancy bounds, and
	// in-order-delivery invariants, panicking with a minimal repro dump
	// (config fingerprint + cycle) on the first violation. Auditing is
	// pure observation — it cannot change simulated results — so it is
	// excluded from the fingerprint and audited and unaudited runs share
	// cache entries. The `audit` build tag forces it on for every run.
	Audit bool `json:"-"`
	// Obs, when non-nil, attaches an observability sink: a per-cycle
	// time-series sampler (at the sink's stride) plus structured front-end
	// events, threaded through the FTQ, fill engine and L1-I. Observation
	// is strictly read-only — simulated results are bit-identical with it
	// on or off — so, like Audit, it is excluded from the fingerprint and
	// observed and unobserved runs share cache entries.
	Obs obs.Sink `json:"-"`
	// FastForward enables the event-driven cycle-skipping fast path: when
	// the machine provably cannot change state before a known future cycle
	// (NextEventCycle), Run advances there in one jump, bulk-updating the
	// per-cycle counters algebraically instead of ticking through the
	// span (see DESIGN §10). The skipped cycles are accounted exactly, so
	// results are byte-identical with it on or off — pinned by
	// TestFastForwardEquivalence and FuzzFastForwardEquivalence — and,
	// like Audit and Obs, it is excluded from the fingerprint:
	// fast-forwarded and cycle-stepped runs share run-cache entries.
	FastForward bool `json:"-"`
}

// DefaultConfig returns the Table I machine with the industry-standard
// (24-entry FTQ) front-end.
func DefaultConfig() Config {
	return Config{
		Name:         "fdp24",
		Frontend:     frontend.DefaultConfig(),
		Backend:      backend.DefaultConfig(),
		Memory:       cache.DefaultHierarchyConfig(),
		DecodeWidth:  6,
		WarmupInstrs: 200_000,
		MaxInstrs:    2_000_000,
	}
}

// ConservativeConfig returns the Table I machine with the conservative
// 2-entry FTQ front-end.
func ConservativeConfig() Config {
	c := DefaultConfig()
	c.Name = "conservative"
	c.Frontend = frontend.ConservativeConfig()
	return c
}

// Validate checks every component configuration.
func (c Config) Validate() error {
	if c.DecodeWidth <= 0 {
		return fmt.Errorf("core: DecodeWidth %d", c.DecodeWidth)
	}
	if c.WarmupInstrs < 0 || c.MaxInstrs <= 0 {
		return fmt.Errorf("core: instruction budget warmup=%d max=%d", c.WarmupInstrs, c.MaxInstrs)
	}
	if err := c.Sampling.Validate(); err != nil {
		return err
	}
	if err := c.Frontend.Validate(); err != nil {
		return err
	}
	if err := c.Backend.Validate(); err != nil {
		return err
	}
	return c.Memory.Validate()
}

// Stats is the post-run statistics snapshot (warmup excluded).
type Stats struct {
	Config string

	Cycles int64
	// Instructions counts retired program instructions; software
	// prefetches are reported separately and excluded from IPC, matching
	// the paper's accounting.
	Instructions     int64
	SwPrefetchInstrs int64

	FTQ      ftq.Stats
	Frontend frontend.Stats
	BPU      bpu.Stats
	Backend  backend.Stats

	L1I cache.Stats
	L1D cache.Stats
	L2  cache.Stats
	LLC cache.Stats
	// ITLB holds instruction-TLB counters; all-zero when the config leaves
	// the TLB model disabled (Memory.ITLB.Entries == 0).
	ITLB cache.TLBStats

	DRAMAccesses int64
	DRAMQueueing int64

	// WarmupOvershoot counts the program instructions that retired past
	// WarmupInstrs before measurement began: the warmup flip is evaluated
	// once per cycle, so up to RetireWidth-1 instructions can slip into
	// warmup. They are excluded from the measured counters above; this
	// records how many, so warmup-boundary sensitivity is visible instead
	// of silent.
	WarmupOvershoot int64

	// Sampling carries a sampled run's coverage accounting and per-window
	// IPC estimate (mean, variance, 95% confidence interval); nil for
	// exact runs. In sampled snapshots every counter above is the sum over
	// the measured windows only, so IPC() is the ratio estimate across all
	// sampled cycles.
	Sampling *SamplingStats `json:",omitempty"`
}

// IPC returns retired program instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// L1IMPKI returns L1-I demand misses per thousand program instructions.
func (s *Stats) L1IMPKI() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.L1I.Misses) / float64(s.Instructions) * 1000
}

// DynamicBloat returns the fraction of extra fetched instructions due to
// software prefetches (Fig. 7b's metric).
func (s *Stats) DynamicBloat() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.SwPrefetchInstrs) / float64(s.Instructions)
}

// Sim is one simulation instance.
type Sim struct {
	cfg Config
	fe  *frontend.Frontend
	be  *backend.Backend
	mem *cache.Hierarchy

	now      cache.Cycle
	buf      []isa.Instr
	measured bool
	startCyc cache.Cycle

	// warmupOvershoot is the retired-instruction overshoot captured at the
	// warmup flip (see Stats.WarmupOvershoot).
	warmupOvershoot int64

	// obsStride caches the sink's sampling period (0 when no sink).
	obsStride cache.Cycle

	// auditCheck, when non-nil, runs at the end of every cycle and its
	// error panics the run with an AuditViolation repro dump. It defaults
	// to the front-end's CheckInvariants; tests inject failures here.
	auditCheck func(cache.Cycle) error

	// samp is the sampled-mode controller, nil for exact runs.
	samp *samplingState
}

// New builds a simulator over the given true-path source.
func New(cfg Config, src trace.Source) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	mem, err := cache.NewHierarchy(cfg.Memory)
	if err != nil {
		return nil, err
	}
	s := &Sim{cfg: cfg, mem: mem, buf: make([]isa.Instr, 0, cfg.DecodeWidth)}
	fe, err := frontend.New(cfg.Frontend, src, mem, cfg.Triggers)
	if err != nil {
		return nil, err
	}
	be, err := backend.New(cfg.Backend, mem, fe)
	if err != nil {
		return nil, err
	}
	s.fe = fe
	s.be = be
	if cfg.Sampling.Enabled() {
		s.samp = &samplingState{cfg: cfg.Sampling}
	}
	if s.auditing() {
		s.auditCheck = fe.CheckInvariants
	}
	if cfg.Obs != nil {
		fe.SetObserver(cfg.Obs)
		mem.SetObserver(cfg.Obs)
		s.obsStride = cfg.Obs.SampleStride()
		if s.obsStride <= 0 {
			s.obsStride = 1
		}
	}
	return s, nil
}

// Hierarchy exposes the memory system (examples and tests).
func (s *Sim) Hierarchy() *cache.Hierarchy { return s.mem }

// Now returns the current cycle (the next cycle Step will simulate).
func (s *Sim) Now() cache.Cycle { return s.now }

// Retired returns the program instructions retired so far in the current
// phase (the counter resets at the warmup boundary).
func (s *Sim) Retired() int64 { return s.be.RetiredProgramCount() }

// Frontend exposes the front-end (examples and tests).
func (s *Sim) Frontend() *frontend.Frontend { return s.fe }

// Done reports that the run has reached its post-warmup instruction
// budget, or that the source drained and the pipeline emptied. Like the
// historical Run loop it performs the warmup flip before the termination
// checks, so the flip-before-check ordering is preserved no matter how
// Done and Step calls interleave. In sampled mode it additionally drives
// the sampling state machine (functional phases run inline here, between
// cycles), so external drivers keep the canonical shape:
//
//	for !sim.Done() { sim.Step() }
func (s *Sim) Done() bool {
	if s.samp != nil {
		s.sampleSync()
		return s.samp.phase == sampDone
	}
	rp := s.be.RetiredProgramCount()
	if !s.measured && rp >= s.cfg.WarmupInstrs {
		s.beginMeasurement()
		rp = s.be.RetiredProgramCount() // counters reset at the flip
	}
	if s.measured && rp >= s.cfg.MaxInstrs {
		return true
	}
	return s.fe.Done() && s.be.Drained()
}

// Step advances the machine by exactly one cycle — warmup flip, front-end
// fill, dispatch, retire, audit, observation sample — and returns the
// number of instructions retired that cycle. Run drives it internally;
// external drivers (cmd/ftqtrace) use it for cycle-resolved control:
//
//	for !sim.Done() { sim.Step() }
func (s *Sim) Step() int {
	if s.samp == nil && !s.measured && s.be.RetiredProgramCount() >= s.cfg.WarmupInstrs {
		s.beginMeasurement()
	}
	s.fe.Cycle(s.now)
	budget := s.be.DispatchBudget()
	if budget > s.cfg.DecodeWidth {
		budget = s.cfg.DecodeWidth
	}
	if budget > 0 {
		s.buf = s.fe.Dequeue(s.now, budget, s.buf[:0])
		if len(s.buf) > 0 {
			s.be.Dispatch(s.buf, s.now)
		}
	}
	retired := s.be.Retire(s.now)
	if s.auditCheck != nil {
		s.audit(s.now)
	}
	if s.cfg.Obs != nil && s.now%s.obsStride == 0 {
		s.sample()
	}
	s.now++
	return retired
}

// sample emits one time-series point reflecting end-of-cycle state.
func (s *Sim) sample() {
	fes := s.fe.Stats()
	q := s.fe.FTQ()
	s.cfg.Obs.Sample(obs.Sample{
		Cycle:        int64(s.now),
		Retired:      s.be.Stats().RetiredProgram,
		FTQOcc:       q.Len(),
		FTQReadyMask: q.ReadyMask(s.now),
		Scenario:     q.LastState(),
		FillStall:    s.fe.FillStalled(),
		L1IAccesses:  s.mem.L1I.Stats().Accesses,
		L1IMisses:    s.mem.L1I.Stats().Misses,
		L2Misses:     s.mem.L2.Stats().Misses,
		SwPrefetches: fes.SwPrefetchesIssued + fes.TriggerPrefetchesIssued,
	})
}

// Run simulates until MaxInstrs program instructions retire after warmup,
// or the source drains. It returns the measured statistics. Run is the
// non-cancellable compatibility surface; anything that can be abandoned
// (the serve layer, batch members) calls RunCtx.
func (s *Sim) Run() (Stats, error) {
	return s.RunCtx(context.Background()) //lint:allow ctx-less wrapper by contract: callers with a lifetime use RunCtx
}

// cancelCheckInterval bounds how stale a cancellation can go unnoticed in
// cycle-stepping mode: ctx.Err takes a lock, so polling it every cycle
// would tax the hot loop; polling every few thousand cycles keeps the
// overhead unmeasurable while an abandoned run still stops within
// microseconds of wall time.
const cancelCheckInterval = 4096

// idleLimit bounds cycles without a retirement before a run is declared
// wedged.
const idleLimit = 1_000_000

// runState carries the per-run loop accounting — wedge detection and
// cancellation-poll pacing — outside the Sim so the lockstep batch driver
// (RunBatch) can interleave many sims through the identical loop body
// without perturbing any of them.
type runState struct {
	idle        cache.Cycle
	sinceCheck  int
	cancellable bool
}

func newRunState(ctx context.Context) runState {
	return runState{cancellable: ctx.Done() != nil}
}

// advance executes one iteration of the canonical run loop: the Done check
// (which performs the warmup flip), the cancellation poll, one Step or
// StepN, and idle/wedge accounting. It reports done=true when the run's
// termination condition has been reached (call finishRun next), and a
// non-nil error on cancellation or a wedged pipeline. RunCtx and RunBatch
// both drive runs exclusively through this body, which is what makes
// batched and solo runs bit-identical per member.
func (s *Sim) advance(ctx context.Context, rs *runState) (bool, error) {
	if s.Done() {
		return true, nil
	}
	if rs.cancellable {
		rs.sinceCheck++
		if s.cfg.FastForward || rs.sinceCheck >= cancelCheckInterval {
			rs.sinceCheck = 0
			if err := ctx.Err(); err != nil {
				return false, fmt.Errorf("core: run cancelled at cycle %d: %w", s.now, err)
			}
		}
	}
	retired := 0
	if s.cfg.FastForward {
		// Skipped spans retire nothing by construction, so they count
		// toward the idle window exactly as stepping through them would.
		n, r := s.StepN()
		retired = r
		rs.idle += n - 1
	} else {
		retired = s.Step()
	}
	if retired == 0 {
		rs.idle++
		if rs.idle > idleLimit {
			return false, fmt.Errorf("core: no retirement for %d cycles at cycle %d (wedged pipeline)", idleLimit, s.now)
		}
	} else {
		rs.idle = 0
	}
	return false, nil
}

// finishRun is the run epilogue shared by RunCtx and RunBatch: surface a
// real source failure, fall back to measuring the whole run when the
// source ended during warmup, and snapshot.
func (s *Sim) finishRun() (Stats, error) {
	if err := s.fe.Err(); err != nil && !errors.Is(err, trace.ErrEnd) {
		return Stats{}, fmt.Errorf("core: source failed: %w", err)
	}
	if s.samp != nil {
		return s.samp.finish(s.cfg.Name), nil
	}
	if !s.measured {
		// The source ended during warmup; measure what we have.
		s.startCyc = 0
	}
	return s.snapshot(), nil
}

// RunCtx is Run with cooperative cancellation. The context is polled only
// at cycle boundaries — every fast-forward jump, or every
// cancelCheckInterval plain steps — so a cancelled run always stops
// between fully-simulated cycles: every invariant the per-cycle audit
// checks still holds, and the partial counters (Snapshot) are internally
// consistent, never torn mid-cycle. On cancellation it returns zero Stats
// and an error wrapping ctx.Err(); the caller must not cache or publish
// results from a cancelled run.
//
// Cancellation never perturbs a run that completes: the poll is pure
// observation, so a run that finishes before its context dies is
// byte-identical to an uncancelled one (TestRunCtxObservational).
func (s *Sim) RunCtx(ctx context.Context) (Stats, error) {
	rs := newRunState(ctx)
	for {
		done, err := s.advance(ctx, &rs)
		if err != nil {
			return Stats{}, err
		}
		if done {
			break
		}
	}
	return s.finishRun()
}

// beginMeasurement resets all statistics at the warmup boundary, keeping
// microarchitectural state (caches, predictors) warm.
func (s *Sim) beginMeasurement() {
	s.measured = true
	s.startCyc = s.now
	// The flip is evaluated once per cycle, so the boundary can land up to
	// RetireWidth-1 instructions past WarmupInstrs; record the overshoot
	// before the counters reset.
	s.warmupOvershoot = s.be.RetiredProgramCount() - s.cfg.WarmupInstrs
	s.fe.ResetStats()
	s.be.ResetStats()
	s.mem.ResetStats()
}

func (s *Sim) snapshot() Stats {
	be := s.be.Stats()
	return Stats{
		Config:           s.cfg.Name,
		Cycles:           int64(s.now - s.startCyc),
		Instructions:     be.RetiredProgram,
		SwPrefetchInstrs: be.RetiredSwPf,
		FTQ:              s.fe.FTQ().Stats(),
		Frontend:         s.fe.Stats(),
		BPU:              s.fe.BPU().Stats(),
		Backend:          be,
		L1I:              s.mem.L1I.Stats(),
		L1D:              s.mem.L1D.Stats(),
		L2:               s.mem.L2.Stats(),
		LLC:              s.mem.LLC.Stats(),
		ITLB:             s.mem.ITLBStats(),
		DRAMAccesses:     s.mem.DRAM.Accesses(),
		DRAMQueueing:     s.mem.DRAM.QueueingCycles(),
		WarmupOvershoot:  s.warmupOvershoot,
	}
}

// Snapshot returns the statistics accumulated so far in the current
// measurement phase. Unlike Run's return value it is valid mid-run — in
// particular after a cancelled RunCtx — and, because RunCtx only stops at
// cycle boundaries, a post-cancellation snapshot satisfies the same
// invariants a completed run's does (the FTQ scenario partition sums to
// the cycle count, occupancy bounds hold, and so on).
func (s *Sim) Snapshot() Stats { return s.snapshot() }

// RunSource is a convenience: build a Sim over src and run it. Like Run,
// it is the non-cancellable compatibility surface over RunSourceCtx.
func RunSource(cfg Config, src trace.Source) (Stats, error) {
	return RunSourceCtx(context.Background(), cfg, src) //lint:allow ctx-less wrapper by contract: callers with a lifetime use RunSourceCtx
}

// RunSourceCtx is RunSource with cooperative cancellation (see RunCtx).
func RunSourceCtx(ctx context.Context, cfg Config, src trace.Source) (Stats, error) {
	s, err := New(cfg, src)
	if err != nil {
		return Stats{}, err
	}
	return s.RunCtx(ctx)
}
