package core

import (
	"errors"
	"fmt"
	"testing"

	"frontsim/internal/cache"
)

// TestAuditCleanRun is the acceptance check for audit mode: the default
// conservative and FDP configurations run a real workload with per-cycle
// invariant checking enabled and finish without a violation, and the
// scenario-partition identity holds in the final stats. It also pins that
// auditing is observational: stats are identical with it on or off (which
// is why Config.Audit is excluded from the fingerprint and cache key).
func TestAuditCleanRun(t *testing.T) {
	for _, conservative := range []bool{true, false} {
		name := fmt.Sprintf("cons=%v", conservative)
		cfg := smallConfig("audited", conservative)
		cfg.Audit = true
		audited, err := RunSource(cfg, source(t, "secret_crypto52"))
		if err != nil {
			t.Fatalf("%s: audited run failed: %v", name, err)
		}
		f := audited.FTQ
		if got := f.ShootThroughCycles + f.Scenario2Cycles + f.Scenario3Cycles + f.EmptyCycles; got != f.Cycles {
			t.Errorf("%s: final scenario partition %d != %d ticked cycles", name, got, f.Cycles)
		}
		if got := f.Scenario2Cycles + f.Scenario3Cycles; got != f.HeadStallCycles {
			t.Errorf("%s: scenario 2+3 = %d != %d head-stall cycles", name, got, f.HeadStallCycles)
		}

		cfg.Audit = false
		plain, err := RunSource(cfg, source(t, "secret_crypto52"))
		if err != nil {
			t.Fatalf("%s: unaudited run failed: %v", name, err)
		}
		if audited != plain {
			t.Errorf("%s: auditing perturbed results:\naudited %+v\nplain   %+v", name, audited, plain)
		}
	}
}

// TestAuditViolationPanics injects a failing check and asserts the panic
// carries the minimal repro dump: config name, fingerprint, and the
// violating cycle, with the underlying invariant error unwrappable.
func TestAuditViolationPanics(t *testing.T) {
	cfg := smallConfig("broken", false)
	s, err := New(cfg, source(t, "secret_int_44"))
	if err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("forged invariant failure")
	s.auditCheck = func(now cache.Cycle) error {
		if now == 100 {
			return sentinel
		}
		return nil
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic from failing audit check")
		}
		v, ok := r.(*AuditViolation)
		if !ok {
			t.Fatalf("panic value %T, want *AuditViolation", r)
		}
		if v.Cycle != 100 {
			t.Errorf("violation cycle %d, want 100", v.Cycle)
		}
		if v.Config != "broken" {
			t.Errorf("violation config %q", v.Config)
		}
		if v.Fingerprint != cfg.Fingerprint() {
			t.Errorf("violation fingerprint %q, want %q", v.Fingerprint, cfg.Fingerprint())
		}
		if !errors.Is(v, sentinel) {
			t.Error("AuditViolation does not unwrap to the invariant error")
		}
	}()
	s.Run()
}

// TestAuditOffByDefault pins that without the flag (and without the audit
// build tag) runs carry no per-cycle check at all — the hot loop must not
// pay for auditing it didn't ask for.
func TestAuditOffByDefault(t *testing.T) {
	if auditBuildTag {
		t.Skip("built with -tags audit: every run audits by design")
	}
	s, err := New(smallConfig("plain", false), source(t, "secret_int_44"))
	if err != nil {
		t.Fatal(err)
	}
	if s.auditCheck != nil {
		t.Fatal("auditCheck installed without Audit flag or build tag")
	}
}
