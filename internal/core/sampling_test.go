package core

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"frontsim/internal/stats"
	"frontsim/internal/trace"
)

// sampledConfig returns the test machine in sampled mode: 150k-instruction
// coverage budget sampled with 10k-instruction units (1k detailed warm-up,
// 2k measured window).
func sampledConfig(name string) Config {
	c := smallConfig(name, false)
	c.Sampling = SamplingConfig{IntervalInstrs: 10_000, DetailInstrs: 2_000, WarmInstrs: 1_000}
	return c
}

func TestSamplingConfigValidate(t *testing.T) {
	good := sampledConfig("s")
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []SamplingConfig{
		{DetailInstrs: 100},                                        // fields without an interval
		{IntervalInstrs: 1000},                                     // no window
		{IntervalInstrs: 1000, DetailInstrs: -1},                   // negative window
		{IntervalInstrs: 1000, DetailInstrs: 100, WarmInstrs: -1},  // negative warm
		{IntervalInstrs: 1000, DetailInstrs: 800, WarmInstrs: 300}, // window exceeds interval
		{IntervalInstrs: -5, DetailInstrs: 100},                    // negative interval
	}
	for _, sc := range cases {
		c := smallConfig("bad", false)
		c.Sampling = sc
		if err := c.Validate(); err == nil {
			t.Errorf("Validate accepted sampling config %+v", sc)
		}
	}
	if (SamplingConfig{}).Enabled() {
		t.Fatal("zero sampling config reports enabled")
	}
}

// TestSampledRunDeterminism pins byte-stability: two sampled runs over
// fresh sources of the same workload produce identical canonical JSON,
// including the estimate block.
func TestSampledRunDeterminism(t *testing.T) {
	cfg := sampledConfig("det")
	var snaps [][]byte
	for i := 0; i < 2; i++ {
		st, err := RunSource(cfg, source(t, "secret_crypto52"))
		if err != nil {
			t.Fatal(err)
		}
		if st.Sampling == nil {
			t.Fatal("sampled run returned no Sampling block")
		}
		b, err := st.CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, b)
	}
	if !bytes.Equal(snaps[0], snaps[1]) {
		t.Fatalf("sampled run is not byte-stable:\n%s\n%s", snaps[0], snaps[1])
	}
}

// TestSampledRunShape checks the coverage accounting: the expected window
// count for the budget/interval geometry, coverage summing to at least the
// budget, and a decodable snapshot (run-cache value round trip).
func TestSampledRunShape(t *testing.T) {
	cfg := sampledConfig("shape")
	st, err := RunSource(cfg, source(t, "secret_crypto52"))
	if err != nil {
		t.Fatal(err)
	}
	sp := st.Sampling
	if sp == nil {
		t.Fatal("no sampling block")
	}
	wantWindows := cfg.MaxInstrs / cfg.Sampling.IntervalInstrs // 15
	if sp.Windows < wantWindows-1 || sp.Windows > wantWindows+1 {
		t.Fatalf("windows = %d, want ~%d", sp.Windows, wantWindows)
	}
	if sp.CPI.N != sp.Windows {
		t.Fatalf("estimate over %d samples for %d windows", sp.CPI.N, sp.Windows)
	}
	// Coverage: everything after the functional warm-up counts toward the
	// budget. The warm-up itself is also in FunctionalInstrs.
	covered := sp.FunctionalInstrs - cfg.WarmupInstrs + sp.WarmDetailInstrs + st.Instructions + sp.DrainInstrs
	if covered < cfg.MaxInstrs {
		t.Fatalf("covered %d < budget %d", covered, cfg.MaxInstrs)
	}
	if covered > cfg.MaxInstrs+cfg.Sampling.IntervalInstrs {
		t.Fatalf("covered %d overshoots budget %d by more than one unit", covered, cfg.MaxInstrs)
	}
	if st.Instructions < sp.Windows*cfg.Sampling.DetailInstrs {
		t.Fatalf("measured %d instructions over %d windows", st.Instructions, sp.Windows)
	}
	if st.Cycles <= 0 || st.IPC() <= 0 {
		t.Fatalf("empty aggregate: %+v", st)
	}
	b, err := st.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := StatsFromJSON(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Sampling == nil || *got.Sampling != *sp {
		t.Fatalf("sampling block lost in round trip: %+v != %+v", got.Sampling, sp)
	}
}

// TestSampledEstimateTracksExact runs the same machine exactly and
// sampled: the sampled estimate must land near the exact IPC. The bound is
// deliberately loose (sampling error is what the CI quantifies); the
// experiment-level validation sweep measures the real distribution.
func TestSampledEstimateTracksExact(t *testing.T) {
	exact, err := RunSource(smallConfig("exact", false), source(t, "secret_crypto52"))
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := RunSource(sampledConfig("sampled"), source(t, "secret_crypto52"))
	if err != nil {
		t.Fatal(err)
	}
	sp := sampled.Sampling
	mean := sp.IPCMean()
	if relErr := math.Abs(mean-exact.IPC()) / exact.IPC(); relErr > 0.25 {
		t.Fatalf("sampled estimate %.4f vs exact %.4f: %.1f%% error", mean, exact.IPC(), 100*relErr)
	}
	if sp.CPI.CI95() <= 0 {
		t.Fatal("multi-window run reports no confidence interval")
	}
	if !sp.ContainsIPC(exact.IPC()) {
		lo, hi := sp.IPCInterval()
		t.Fatalf("exact IPC %.4f outside the sampled 95%% interval [%.4f, %.4f]", exact.IPC(), lo, hi)
	}
	// The ratio estimate (aggregate IPC over all windows) must agree with
	// the CPI-derived point estimate to within the interval's own scale.
	lo, hi := sp.IPCInterval()
	if sampled.IPC() < lo-0.05 || sampled.IPC() > hi+0.05 {
		t.Fatalf("ratio estimate %.4f far from interval [%.4f, %.4f]", sampled.IPC(), lo, hi)
	}
}

// TestSampledFastForwardEquivalence pins the conformance contract: the
// event-driven fast path must produce byte-identical sampled results, with
// audit on for good measure.
func TestSampledFastForwardEquivalence(t *testing.T) {
	var snaps [][]byte
	for _, ff := range []bool{false, true} {
		cfg := sampledConfig("ff")
		cfg.FastForward = ff
		cfg.Audit = true
		st, err := RunSource(cfg, source(t, "secret_srv12"))
		if err != nil {
			t.Fatal(err)
		}
		b, err := st.CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, b)
	}
	if !bytes.Equal(snaps[0], snaps[1]) {
		t.Fatalf("sampled fast-forward diverged:\n%s\n%s", snaps[0], snaps[1])
	}
}

// TestSampledBatchEquivalence pins lockstep batching over sampled members:
// each member's stats must be byte-identical to its solo run, including a
// mixed batch of sampled and exact members over one shared stream.
func TestSampledBatchEquivalence(t *testing.T) {
	prog, seed := batchProg(t, "secret_int_44")
	sampled := sampledConfig("s-batch")
	sampledFF := sampledConfig("s-batch-ff")
	sampledFF.FastForward = true
	exact := smallConfig("x-batch", false)
	runBatchVsSolo(t, prog, seed, []memberSpec{
		{cfg: sampled},
		{cfg: sampledFF},
		{cfg: exact},
	})
}

// TestSampledSourceDrainMidWindow: a source that drains inside a detailed
// window must discard the partial window (TruncatedWindows) and terminate
// cleanly, never averaging a short window into the estimate.
func TestSampledSourceDrainMidWindow(t *testing.T) {
	cfg := sampledConfig("short")
	// Enough stream for the warm-up and a few units, then dry.
	limit := cfg.WarmupInstrs + 3*cfg.Sampling.IntervalInstrs + cfg.Sampling.WarmInstrs + cfg.Sampling.DetailInstrs/2
	st, err := RunSource(cfg, trace.NewLimit(source(t, "secret_crypto52"), limit))
	if err != nil {
		t.Fatal(err)
	}
	sp := st.Sampling
	if sp == nil {
		t.Fatal("no sampling block")
	}
	if sp.Windows+sp.TruncatedWindows == 0 {
		t.Fatal("run saw no windows at all")
	}
	if sp.CPI.N != sp.Windows {
		t.Fatalf("truncated window leaked into the estimate: N=%d windows=%d", sp.CPI.N, sp.Windows)
	}
}

// TestSampledSourceDrainDuringWarmup: the stream ending inside the initial
// functional warm-up yields a clean zero-window result.
func TestSampledSourceDrainDuringWarmup(t *testing.T) {
	cfg := sampledConfig("tiny")
	st, err := RunSource(cfg, trace.NewLimit(source(t, "secret_crypto52"), cfg.WarmupInstrs/2))
	if err != nil {
		t.Fatal(err)
	}
	if st.Sampling == nil || st.Sampling.Windows != 0 {
		t.Fatalf("expected a zero-window sampled result, got %+v", st.Sampling)
	}
	if st.Cycles != 0 || st.Instructions != 0 {
		t.Fatalf("zero-window run reports measured work: %+v", st)
	}
}

// TestSampledAuditClean: a sampled run under per-cycle invariant auditing
// completes without violations (the fill gate and window resets must not
// break cycle conservation).
func TestSampledAuditClean(t *testing.T) {
	cfg := sampledConfig("audited")
	cfg.Audit = true
	if _, err := RunSource(cfg, source(t, "secret_crypto52")); err != nil {
		t.Fatal(err)
	}
}

// TestSamplingFingerprintDistinct: sampled and exact configs of the same
// machine, and sampled configs with different geometry, must all
// fingerprint differently — they may never share run-cache entries.
func TestSamplingFingerprintDistinct(t *testing.T) {
	exact := smallConfig("m", false)
	sampled := exact
	sampled.Sampling = SamplingConfig{IntervalInstrs: 10_000, DetailInstrs: 2_000, WarmInstrs: 1_000}
	other := sampled
	other.Sampling.DetailInstrs = 2_001
	fps := map[string]string{
		"exact":   exact.Fingerprint(),
		"sampled": sampled.Fingerprint(),
		"other":   other.Fingerprint(),
	}
	seen := map[string]string{}
	for name, fp := range fps {
		if prev, dup := seen[fp]; dup {
			t.Fatalf("%s and %s share fingerprint %s", name, prev, fp)
		}
		seen[fp] = name
	}
}

// TestAddStatsCoversStats sets every int64 leaf of Stats to 1 via
// reflection and accumulates it twice: every leaf must read 2, proving the
// aggregator reaches every counter (a new field of an unexpected kind
// panics inside addStatsInto instead of being silently dropped).
func TestAddStatsCoversStats(t *testing.T) {
	var unit Stats
	setOnes(reflect.ValueOf(&unit).Elem())
	var agg Stats
	addStatsInto(&agg, &unit)
	addStatsInto(&agg, &unit)
	checkTwos(t, reflect.ValueOf(agg), "Stats")
}

func setOnes(v reflect.Value) {
	for i := 0; i < v.NumField(); i++ {
		switch f := v.Field(i); f.Kind() {
		case reflect.Int64:
			f.SetInt(1)
		case reflect.Struct:
			setOnes(f)
		case reflect.Array:
			for j := 0; j < f.Len(); j++ {
				f.Index(j).SetInt(1)
			}
		}
	}
}

func checkTwos(t *testing.T, v reflect.Value, path string) {
	t.Helper()
	for i := 0; i < v.NumField(); i++ {
		name := path + "." + v.Type().Field(i).Name
		switch f := v.Field(i); f.Kind() {
		case reflect.Int64:
			if f.Int() != 2 {
				t.Errorf("%s = %d after two accumulations, want 2", name, f.Int())
			}
		case reflect.Struct:
			checkTwos(t, f, name)
		case reflect.Array:
			for j := 0; j < f.Len(); j++ {
				if f.Index(j).Int() != 2 {
					t.Errorf("%s[%d] = %d after two accumulations, want 2", name, j, f.Index(j).Int())
				}
			}
		}
	}
}

// TestSamplingStatsViews pins the derived IPC views on edge cases: the
// empty estimate, a healthy interval, and a CPI interval reaching zero,
// which must map to an unbounded IPC limit rather than a fabricated
// finite one.
func TestSamplingStatsViews(t *testing.T) {
	empty := &SamplingStats{}
	if got := empty.IPCMean(); got != 0 {
		t.Errorf("empty IPCMean = %v", got)
	}

	healthy := &SamplingStats{CPI: stats.Estimate{N: 16, Mean: 2.0, M2: 0.15}}
	lo, hi := healthy.IPCInterval()
	if !(0 < lo && lo < 0.5 && 0.5 < hi) || math.IsInf(hi, 1) {
		t.Errorf("healthy interval [%v, %v] does not bracket 0.5", lo, hi)
	}
	if hw := healthy.IPCCI95(); hw <= 0 || hw != (hi-lo)/2 {
		t.Errorf("IPCCI95 = %v, want half of [%v, %v]", hw, lo, hi)
	}
	if !healthy.ContainsIPC(0.5) || healthy.ContainsIPC(hi*2) {
		t.Error("ContainsIPC disagrees with IPCInterval")
	}

	// Variance so large the CPI interval crosses zero: unbounded IPC.
	wild := &SamplingStats{CPI: stats.Estimate{N: 2, Mean: 1.0, M2: 50}}
	if _, hi := wild.IPCInterval(); !math.IsInf(hi, 1) {
		t.Errorf("degenerate CPI interval produced finite IPC limit %v", hi)
	}
	if hw := wild.IPCCI95(); !math.IsInf(hw, 1) {
		t.Errorf("degenerate IPCCI95 = %v, want +Inf", hw)
	}
}
