package core

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"frontsim/internal/xrand"
)

// countdownCtx is a deterministic context.Context: it reports itself
// cancelled after Err has been consulted n times. Using it instead of a
// timer-cancelled context makes the cancellation point a pure function of
// the simulation's own poll sequence, so every seed reproduces exactly.
type countdownCtx struct {
	mu      sync.Mutex
	redeems int
	fire    int
	done    chan struct{}
}

func newCountdownCtx(fire int) *countdownCtx {
	return &countdownCtx{fire: fire, done: make(chan struct{})}
}

func (c *countdownCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *countdownCtx) Done() <-chan struct{}       { return c.done }
func (c *countdownCtx) Value(any) any               { return nil }
func (c *countdownCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.redeems++
	if c.redeems >= c.fire {
		select {
		case <-c.done:
		default:
			close(c.done)
		}
		return context.Canceled
	}
	return nil
}

// checkNotTorn asserts the partial snapshot satisfies the same accounting
// identities a completed run's statistics do — the scenario partition of
// the FTQ's ticked cycles, non-negative counters, and retirement
// consistency. A cancellation landing mid-cycle would break these.
func checkNotTorn(t *testing.T, s *Sim) {
	t.Helper()
	st := s.Snapshot()
	f := st.FTQ
	if got := f.ShootThroughCycles + f.Scenario2Cycles + f.Scenario3Cycles + f.EmptyCycles; got != f.Cycles {
		t.Fatalf("scenario partition torn: shoot %d + s2 %d + s3 %d + empty %d = %d, want %d ticked cycles",
			f.ShootThroughCycles, f.Scenario2Cycles, f.Scenario3Cycles, f.EmptyCycles, got, f.Cycles)
	}
	if f.HeadStallCycles != f.Scenario2Cycles+f.Scenario3Cycles {
		t.Fatalf("head-stall identity torn: %d != %d + %d", f.HeadStallCycles, f.Scenario2Cycles, f.Scenario3Cycles)
	}
	if st.Instructions < 0 || st.Cycles < 0 || st.SwPrefetchInstrs < 0 {
		t.Fatalf("negative counters in partial snapshot: %+v", st)
	}
	// The per-cycle audit's full invariant set must hold at the boundary
	// the run stopped on (the last completed cycle).
	if now := s.Now(); now > 0 {
		if err := s.Frontend().CheckInvariants(now - 1); err != nil {
			t.Fatalf("audit invariants violated after cancellation at cycle %d: %v", now, err)
		}
	}
}

// TestRunCtxCancelledStatsNotTorn cancels fast-forwarded runs at
// pseudo-randomized poll counts and asserts the partial statistics are
// never torn. Config.Audit is on, so every simulated cycle — including
// jump boundaries — also ran the full per-cycle invariant audit up to the
// cancellation point; under `-tags audit` the same holds for every other
// test in this package.
func TestRunCtxCancelledStatsNotTorn(t *testing.T) {
	rng := xrand.New(0xcafe_f00d)
	for i := 0; i < 8; i++ {
		fire := 1 + rng.Intn(400)
		for _, conservative := range []bool{false, true} {
			cfg := smallConfig("cancel", conservative)
			cfg.FastForward = true
			cfg.Audit = true
			sim, err := New(cfg, source(t, "secret_srv12"))
			if err != nil {
				t.Fatal(err)
			}
			ctx := newCountdownCtx(fire)
			st, err := sim.RunCtx(ctx)
			if err == nil {
				// The run finished before the countdown; still a valid case.
				if st.Cycles == 0 {
					t.Fatal("completed run returned empty stats")
				}
				continue
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("RunCtx = %v, want context.Canceled", err)
			}
			if st != (Stats{}) {
				t.Fatalf("cancelled RunCtx returned non-zero Stats: %+v", st)
			}
			checkNotTorn(t, sim)
		}
	}
}

// TestRunCtxCancelledStepModeNotTorn covers the non-fast-forward polling
// path (strided checks in the plain Step loop).
func TestRunCtxCancelledStepModeNotTorn(t *testing.T) {
	cfg := smallConfig("cancel-step", false)
	cfg.FastForward = false
	cfg.Audit = true
	sim, err := New(cfg, source(t, "secret_srv12"))
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.RunCtx(newCountdownCtx(2))
	if err == nil {
		t.Skip("run completed before the second poll; nothing to assert")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx = %v, want context.Canceled", err)
	}
	if st != (Stats{}) {
		t.Fatalf("cancelled RunCtx returned non-zero Stats: %+v", st)
	}
	checkNotTorn(t, sim)
}

// TestRunCtxObservational pins that polling a live (never-cancelled)
// context does not perturb results: RunCtx with a cancellable context and
// plain Run produce byte-identical statistics.
func TestRunCtxObservational(t *testing.T) {
	cfg := smallConfig("cancel-obs", false)
	cfg.FastForward = true

	plain, err := New(cfg, source(t, "secret_srv12"))
	if err != nil {
		t.Fatal(err)
	}
	pst, err := plain.Run()
	if err != nil {
		t.Fatal(err)
	}

	polled, err := New(cfg, source(t, "secret_srv12"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cst, err := polled.RunCtx(ctx)
	if err != nil {
		t.Fatal(err)
	}

	pj, err := pst.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	cj, err := cst.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pj, cj) {
		t.Fatalf("ctx polling perturbed results:\nplain:  %s\npolled: %s", pj, cj)
	}
}

// TestRunCtxPreCancelledStopsImmediately pins the fast exit: a context
// cancelled before the run starts must abort before simulating anything.
func TestRunCtxPreCancelledStopsImmediately(t *testing.T) {
	cfg := smallConfig("cancel-pre", false)
	cfg.FastForward = true
	sim, err := New(cfg, source(t, "secret_srv12"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sim.RunCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx = %v, want context.Canceled", err)
	}
	if sim.Now() != 0 {
		t.Fatalf("pre-cancelled run advanced to cycle %d", sim.Now())
	}
}
