package asmdb

import (
	"bytes"
	"strings"
	"testing"

	"frontsim/internal/cfg"
	"frontsim/internal/isa"
	"frontsim/internal/program"
	"frontsim/internal/trace"
	"frontsim/internal/workload"
)

// chainGraph builds a profiled CFG by hand: a linear chain of blocks
// a -> b -> c -> d where d is the miss target.
//
// Each block executes 100 times; block instruction lengths are chosen so
// distance thresholds can be exercised precisely.
func chainGraph(instrs ...int) *cfg.Graph {
	g := &cfg.Graph{Nodes: map[isa.Addr]*cfg.Node{}, Instructions: 10000, IPC: 1}
	var pcs []isa.Addr
	pc := isa.Addr(0x1000)
	for _, n := range instrs {
		node := &cfg.Node{PC: pc, Instrs: n, Execs: 100,
			Succs: map[isa.Addr]int64{}, Preds: map[isa.Addr]int64{}}
		g.Nodes[pc] = node
		pcs = append(pcs, pc)
		pc += isa.Addr(n * isa.InstrSize)
	}
	for i := 0; i+1 < len(pcs); i++ {
		g.Nodes[pcs[i]].Succs[pcs[i+1]] = 100
		g.Nodes[pcs[i+1]].Preds[pcs[i]] = 100
	}
	last := g.Nodes[pcs[len(pcs)-1]]
	last.Misses = 50
	g.TotalMisses = 50
	return g
}

func TestOptionsValidate(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatal(err)
	}
	muts := []func(*Options){
		func(o *Options) { o.LLCLatency = 0 },
		func(o *Options) { o.Window = 0 },
		func(o *Options) { o.FanoutThreshold = 0 },
		func(o *Options) { o.FanoutThreshold = 1.5 },
		func(o *Options) { o.MaxSitesPerTarget = 0 },
		func(o *Options) { o.MaxTargets = 0 },
		func(o *Options) { o.CoverageGoal = 0 },
	}
	for i, m := range muts {
		o := DefaultOptions()
		m(&o)
		if err := o.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestBuildRespectsMinDistance(t *testing.T) {
	// Chain of four 8-instr blocks; IPC=1, LLCLatency=10 => minDist 10.
	// The immediate predecessor (8 instrs away) is too close; the one
	// before it (16) and the first (24) are eligible.
	g := chainGraph(8, 8, 8, 8)
	opts := DefaultOptions()
	opts.LLCLatency = 10
	opts.Window = 100
	opts.MaxSitesPerTarget = 10
	plan, err := Build(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Insertions) != 2 {
		t.Fatalf("insertions = %d, want 2: %+v", len(plan.Insertions), plan.Insertions)
	}
	for _, ins := range plan.Insertions {
		if ins.Distance < plan.MinDistance {
			t.Fatalf("insertion below min distance: %+v", ins)
		}
		if ins.Site == 0x1000+2*32 {
			t.Fatalf("too-close site selected: %+v", ins)
		}
	}
	if plan.TargetsCovered != 1 || plan.MissesCovered != 50 {
		t.Fatalf("coverage accounting %+v", plan)
	}
	if plan.Coverage() != 1.0 {
		t.Fatalf("coverage %v", plan.Coverage())
	}
}

func TestBuildRespectsWindow(t *testing.T) {
	g := chainGraph(8, 8, 8, 8)
	opts := DefaultOptions()
	opts.LLCLatency = 10
	opts.Window = 17 // only the 16-instr-away site fits
	opts.MaxSitesPerTarget = 10
	plan, err := Build(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Insertions) != 1 || plan.Insertions[0].Distance != 16 {
		t.Fatalf("insertions %+v", plan.Insertions)
	}
}

func TestBuildFurthestFirstSiteSelection(t *testing.T) {
	g := chainGraph(8, 8, 8, 8)
	opts := DefaultOptions()
	opts.LLCLatency = 10
	opts.Window = 100
	opts.MaxSitesPerTarget = 1
	plan, err := Build(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Insertions) != 1 {
		t.Fatalf("insertions %+v", plan.Insertions)
	}
	if plan.Insertions[0].Distance != 24 {
		t.Fatalf("selected distance %d, want furthest 24", plan.Insertions[0].Distance)
	}
}

func TestBuildFanoutThresholdPrunes(t *testing.T) {
	// Diamond: a -> b (30%) and a -> c (70%), both -> d (miss). From d,
	// path probabilities backward are P(b->d)=1, P(a via b) includes edge
	// a->b = 0.3.
	g := &cfg.Graph{Nodes: map[isa.Addr]*cfg.Node{}, Instructions: 1000, IPC: 1, TotalMisses: 10}
	mk := func(pc isa.Addr, instrs int, execs int64) *cfg.Node {
		n := &cfg.Node{PC: pc, Instrs: instrs, Execs: execs,
			Succs: map[isa.Addr]int64{}, Preds: map[isa.Addr]int64{}}
		g.Nodes[pc] = n
		return n
	}
	a := mk(0x1000, 20, 100)
	b := mk(0x2000, 20, 30)
	c := mk(0x3000, 20, 70)
	d := mk(0x4000, 4, 100)
	d.Misses = 10
	link := func(from, to *cfg.Node, count int64) {
		from.Succs[to.PC] = count
		to.Preds[from.PC] = count
	}
	link(a, b, 30)
	link(a, c, 70)
	link(b, d, 30)
	link(c, d, 70)

	opts := DefaultOptions()
	opts.LLCLatency = 5
	opts.Window = 100
	opts.MaxSitesPerTarget = 10
	opts.FanoutThreshold = 0.5
	plan, err := Build(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Eligible sites: c (prob 1 along its edge? no - P(c->d)=1) and b
	// (P(b->d)=1); a reachable via c with prob 0.7 and via b with 0.3.
	// With threshold 0.5 the a-via-b path is pruned but a-via-c passes.
	sites := map[isa.Addr]float64{}
	for _, ins := range plan.Insertions {
		sites[ins.Site] = ins.Prob
	}
	if _, ok := sites[b.PC]; !ok {
		t.Fatal("b missing")
	}
	if _, ok := sites[c.PC]; !ok {
		t.Fatal("c missing")
	}
	if p, ok := sites[a.PC]; !ok || p < 0.69 || p > 0.71 {
		t.Fatalf("a prob %v ok=%v, want ~0.7", p, ok)
	}

	opts.FanoutThreshold = 0.8
	plan, err = Build(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, ins := range plan.Insertions {
		if ins.Site == a.PC {
			t.Fatal("a should be pruned at threshold 0.8")
		}
	}
}

func TestBuildCoverageGoalStops(t *testing.T) {
	// Two independent chains; the first target carries 90% of misses.
	g := chainGraph(8, 8, 8, 8)
	// Add a second, smaller-miss chain far away.
	pc := isa.Addr(0x9000)
	var prev *cfg.Node
	for i := 0; i < 4; i++ {
		n := &cfg.Node{PC: pc, Instrs: 8, Execs: 100,
			Succs: map[isa.Addr]int64{}, Preds: map[isa.Addr]int64{}}
		g.Nodes[pc] = n
		if prev != nil {
			prev.Succs[pc] = 100
			n.Preds[prev.PC] = 100
		}
		prev = n
		pc += 32
	}
	prev.Misses = 5
	g.TotalMisses = 55

	opts := DefaultOptions()
	opts.LLCLatency = 10
	opts.Window = 100
	opts.CoverageGoal = 0.80 // 50/55 = 0.91 > goal after the first target
	plan, err := Build(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if plan.TargetsCovered != 1 {
		t.Fatalf("targets covered %d, want 1 (goal reached)", plan.TargetsCovered)
	}
}

func TestBuildRejectsBadDistanceConfig(t *testing.T) {
	g := chainGraph(8, 8)
	opts := DefaultOptions()
	g.IPC = 100 // minDist = 100*40 = 4000 >= window
	if _, err := Build(g, opts); err == nil {
		t.Fatal("accepted min distance >= window")
	}
}

func buildWorkloadPlan(t *testing.T, name string) (*program.Program, *cfg.Graph, *Plan) {
	t.Helper()
	s, _ := workload.Lookup(name)
	prog, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	src := program.NewExecutor(prog, 1)
	g, err := cfg.Profile(trace.NewLimit(src, 400_000), cfg.Options{IPC: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Build(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return prog, g, plan
}

func TestApplyInsertsAndShifts(t *testing.T) {
	prog, _, plan := buildWorkloadPlan(t, "secret_srv12")
	if len(plan.Insertions) == 0 {
		t.Fatal("empty plan on a server workload")
	}
	rw, applied, err := Apply(prog, plan)
	if err != nil {
		t.Fatal(err)
	}
	if applied == 0 {
		t.Fatal("nothing applied")
	}
	if rw.NumInstrs() != prog.NumInstrs()+applied {
		t.Fatalf("instr count %d, want %d", rw.NumInstrs(), prog.NumInstrs()+applied)
	}
	if rw.StaticBytes() <= prog.StaticBytes() {
		t.Fatal("no static growth")
	}
	// The original program is untouched.
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	// Static bloat in the paper's 0-8% band for default tuning.
	bloat := plan.StaticBloat(prog)
	if bloat <= 0 || bloat > 0.15 {
		t.Fatalf("static bloat %v out of range", bloat)
	}
}

func TestApplyPreservesControlFlow(t *testing.T) {
	prog, _, plan := buildWorkloadPlan(t, "secret_int_44")
	rw, _, err := Apply(prog, plan)
	if err != nil {
		t.Fatal(err)
	}
	const n = 50_000
	orig, _ := trace.Collect(trace.NewLimit(program.NewExecutor(prog, 7), n), -1)
	var rewritten []isa.Instr
	src := program.NewExecutor(rw, 7)
	for len(rewritten) < len(orig) {
		in, err := src.Next()
		if err != nil {
			t.Fatal(err)
		}
		if in.Class == isa.ClassSwPrefetch {
			continue
		}
		rewritten = append(rewritten, in)
	}
	for i := range orig {
		if orig[i].Class != rewritten[i].Class || orig[i].Taken != rewritten[i].Taken {
			t.Fatalf("control flow diverged at %d: %v vs %v", i, orig[i], rewritten[i])
		}
	}
}

func TestTriggersResolveAllSites(t *testing.T) {
	prog, _, plan := buildWorkloadPlan(t, "secret_srv12")
	trig := Triggers(prog, plan)
	if len(trig) == 0 {
		t.Fatal("no triggers")
	}
	total := 0
	for site, targets := range trig {
		if _, _, ok := prog.Locate(site); !ok {
			t.Fatalf("trigger site %v not in program", site)
		}
		total += len(targets)
	}
	if total != len(plan.Insertions) {
		t.Fatalf("trigger targets %d != insertions %d", total, len(plan.Insertions))
	}
}

func TestPlanDeterministic(t *testing.T) {
	_, _, a := buildWorkloadPlan(t, "secret_srv12")
	_, _, b := buildWorkloadPlan(t, "secret_srv12")
	if len(a.Insertions) != len(b.Insertions) {
		t.Fatalf("plan sizes differ: %d vs %d", len(a.Insertions), len(b.Insertions))
	}
	for i := range a.Insertions {
		if a.Insertions[i] != b.Insertions[i] {
			t.Fatalf("plans diverge at %d", i)
		}
	}
}

func TestDedupAcrossTargets(t *testing.T) {
	_, _, plan := buildWorkloadPlan(t, "secret_srv12")
	seen := map[[2]isa.Addr]bool{}
	for _, ins := range plan.Insertions {
		key := [2]isa.Addr{ins.Site, ins.Target.Line()}
		if seen[key] {
			t.Fatalf("duplicate (site,target-line): %+v", ins)
		}
		seen[key] = true
	}
}

func TestStaticBloatEmptyProgram(t *testing.T) {
	p := &Plan{}
	if p.StaticBloat(&program.Program{}) != 0 {
		t.Fatal("empty program bloat should be 0")
	}
	if p.Coverage() != 0 {
		t.Fatal("empty coverage should be 0")
	}
}

func TestPlanSerializationRoundTrip(t *testing.T) {
	_, _, plan := buildWorkloadPlan(t, "secret_crypto52")
	var buf bytes.Buffer
	if err := plan.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPlan(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.MinDistance != plan.MinDistance || got.TotalMisses != plan.TotalMisses ||
		got.TargetsCovered != plan.TargetsCovered || got.MissesCovered != plan.MissesCovered {
		t.Fatalf("header mismatch: %+v vs %+v", got, plan)
	}
	if len(got.Insertions) != len(plan.Insertions) {
		t.Fatalf("insertion count %d vs %d", len(got.Insertions), len(plan.Insertions))
	}
	for i := range plan.Insertions {
		if got.Insertions[i] != plan.Insertions[i] {
			t.Fatalf("insertion %d: %+v vs %+v", i, got.Insertions[i], plan.Insertions[i])
		}
	}
}

func TestReadPlanRejectsGarbage(t *testing.T) {
	if _, err := ReadPlan(strings.NewReader("not json")); err == nil {
		t.Fatal("accepted garbage")
	}
	if _, err := ReadPlan(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Fatal("accepted unknown version")
	}
	if _, err := ReadPlan(strings.NewReader(`{"version":1,"insertions":[{"site":"zzz","target":"0x1"}]}`)); err == nil {
		t.Fatal("accepted bad address")
	}
}
