package asmdb

import "frontsim/internal/isa"

// walkState is one backward-walk frontier entry.
type walkState struct {
	pc   isa.Addr
	prob float64
	dist int
}

// before defines the deterministic pop order: highest probability first,
// then shortest distance, then lowest PC.
func (a walkState) before(b walkState) bool {
	if a.prob > b.prob {
		return true
	}
	if a.prob < b.prob {
		return false
	}
	if a.dist != b.dist {
		return a.dist < b.dist
	}
	return a.pc < b.pc
}

// walkHeap is a binary heap over walkState with the `before` ordering.
type walkHeap struct {
	items []walkState
}

func (h *walkHeap) len() int { return len(h.items) }

func (h *walkHeap) push(s walkState) {
	h.items = append(h.items, s)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.items[i].before(h.items[parent]) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *walkHeap) pop() walkState {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		first := i
		if l < len(h.items) && h.items[l].before(h.items[first]) {
			first = l
		}
		if r < len(h.items) && h.items[r].before(h.items[first]) {
			first = r
		}
		if first == i {
			break
		}
		h.items[i], h.items[first] = h.items[first], h.items[i]
		i = first
	}
	return top
}
