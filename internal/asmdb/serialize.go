package asmdb

import (
	"encoding/json"
	"fmt"
	"io"

	"frontsim/internal/isa"
)

// planJSON is the on-disk representation of a Plan. Addresses serialize as
// hex strings for human-diffable output.
type planJSON struct {
	Version        int             `json:"version"`
	MinDistance    int             `json:"min_distance"`
	TargetsCovered int             `json:"targets_covered"`
	MissesCovered  int64           `json:"misses_covered"`
	TotalMisses    int64           `json:"total_misses"`
	Insertions     []insertionJSON `json:"insertions"`
}

type insertionJSON struct {
	Site         string  `json:"site"`
	Target       string  `json:"target"`
	Distance     int     `json:"distance"`
	Prob         float64 `json:"prob"`
	TargetMisses int64   `json:"target_misses"`
}

const planFormatVersion = 1

// Encode serializes the plan as JSON.
func (p *Plan) Encode(w io.Writer) error {
	out := planJSON{
		Version:        planFormatVersion,
		MinDistance:    p.MinDistance,
		TargetsCovered: p.TargetsCovered,
		MissesCovered:  p.MissesCovered,
		TotalMisses:    p.TotalMisses,
		Insertions:     make([]insertionJSON, len(p.Insertions)),
	}
	for i, ins := range p.Insertions {
		out.Insertions[i] = insertionJSON{
			Site:         ins.Site.String(),
			Target:       ins.Target.String(),
			Distance:     ins.Distance,
			Prob:         ins.Prob,
			TargetMisses: ins.TargetMisses,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadPlan deserializes a plan written by Encode.
func ReadPlan(r io.Reader) (*Plan, error) {
	var in planJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("asmdb: decoding plan: %w", err)
	}
	if in.Version != planFormatVersion {
		return nil, fmt.Errorf("asmdb: unsupported plan version %d", in.Version)
	}
	p := &Plan{
		MinDistance:    in.MinDistance,
		TargetsCovered: in.TargetsCovered,
		MissesCovered:  in.MissesCovered,
		TotalMisses:    in.TotalMisses,
		Insertions:     make([]Insertion, len(in.Insertions)),
	}
	for i, ins := range in.Insertions {
		site, err := parseAddr(ins.Site)
		if err != nil {
			return nil, fmt.Errorf("asmdb: insertion %d site: %w", i, err)
		}
		target, err := parseAddr(ins.Target)
		if err != nil {
			return nil, fmt.Errorf("asmdb: insertion %d target: %w", i, err)
		}
		p.Insertions[i] = Insertion{
			Site:         site,
			Target:       target,
			Distance:     ins.Distance,
			Prob:         ins.Prob,
			TargetMisses: ins.TargetMisses,
		}
	}
	return p, nil
}

// parseAddr parses the hex form isa.Addr.String produces ("0x...").
func parseAddr(s string) (isa.Addr, error) {
	var v uint64
	if _, err := fmt.Sscanf(s, "0x%x", &v); err != nil {
		return 0, fmt.Errorf("bad address %q: %w", s, err)
	}
	return isa.Addr(v), nil
}
