// Package asmdb models the AsmDB software instruction prefetcher (Ayers et
// al., ISCA'19) as the paper evaluates it: profile the application's CFG
// and L1-I misses, rank the misses, walk the CFG backward from each
// high-impact miss to find insertion sites that are at least a minimum
// distance ahead (IPC x LLC latency) but within a window, filter sites by
// fanout (the probability the site's execution actually reaches the miss),
// and rewrite the binary with software prefetch instructions — shifting
// every later instruction address, exactly the code-bloat effect the paper
// characterizes. A no-insertion-overhead mode attaches prefetches to
// trigger PCs instead, for the paper's idealized comparison.
package asmdb

import (
	"fmt"
	"sort"

	"frontsim/internal/cfg"
	"frontsim/internal/isa"
	"frontsim/internal/program"
)

// Options tunes the prefetch generation pipeline.
type Options struct {
	// LLCLatency is the access latency used by the minimum-distance
	// heuristic (the paper's worst-case fetch latency proxy).
	LLCLatency float64
	// Window is the maximum distance, in instructions, an insertion site
	// may be ahead of its target.
	Window int
	// FanoutThreshold is the minimum probability that execution at the
	// insertion site reaches the target within the window. Lowering it
	// raises coverage and lowers accuracy (paper §II-B2).
	FanoutThreshold float64
	// MaxSitesPerTarget bounds multi-path coverage per miss target.
	MaxSitesPerTarget int
	// CoverageGoal stops target selection once this fraction of profiled
	// misses is covered.
	CoverageGoal float64
	// MaxTargets caps the number of miss blocks targeted.
	MaxTargets int
}

// DefaultOptions mirrors the paper's tuned configuration.
func DefaultOptions() Options {
	return Options{
		LLCLatency:        40,
		Window:            320,
		FanoutThreshold:   0.3,
		MaxSitesPerTarget: 4,
		CoverageGoal:      0.95,
		MaxTargets:        100_000,
	}
}

// Validate checks option sanity.
func (o Options) Validate() error {
	if o.LLCLatency <= 0 {
		return fmt.Errorf("asmdb: LLCLatency %v", o.LLCLatency)
	}
	if o.Window <= 0 {
		return fmt.Errorf("asmdb: Window %d", o.Window)
	}
	if o.FanoutThreshold <= 0 || o.FanoutThreshold > 1 {
		return fmt.Errorf("asmdb: FanoutThreshold %v", o.FanoutThreshold)
	}
	if o.MaxSitesPerTarget <= 0 || o.MaxTargets <= 0 {
		return fmt.Errorf("asmdb: non-positive caps")
	}
	if o.CoverageGoal <= 0 || o.CoverageGoal > 1 {
		return fmt.Errorf("asmdb: CoverageGoal %v", o.CoverageGoal)
	}
	return nil
}

// Insertion is one planned software prefetch.
type Insertion struct {
	// Site is the start PC of the basic block that triggers the prefetch
	// (the prefetch instruction is appended to this block's body).
	Site isa.Addr
	// Target is the start PC of the miss block being prefetched.
	Target isa.Addr
	// Distance is the path length, in instructions, from site to target.
	Distance int
	// Prob is the estimated probability the site's execution reaches the
	// target within the window (the fanout measure).
	Prob float64
	// TargetMisses is the profiled miss count motivating this prefetch.
	TargetMisses int64
}

// Plan is the full set of insertions for one workload.
type Plan struct {
	Insertions []Insertion
	// MinDistance is the computed IPC x LLC-latency threshold used.
	MinDistance int
	// TargetsCovered counts distinct miss blocks with at least one site.
	TargetsCovered int
	// MissesCovered sums profiled misses of covered targets.
	MissesCovered int64
	// TotalMisses is the profile's total for coverage reporting.
	TotalMisses int64
}

// Coverage returns the fraction of profiled misses covered by the plan.
func (p *Plan) Coverage() float64 {
	if p.TotalMisses == 0 {
		return 0
	}
	return float64(p.MissesCovered) / float64(p.TotalMisses)
}

// StaticBloat returns the fractional increase in static instructions the
// plan causes on prog (Fig. 7a's metric).
func (p *Plan) StaticBloat(prog *program.Program) float64 {
	if prog.NumInstrs() == 0 {
		return 0
	}
	return float64(len(p.Insertions)) / float64(prog.NumInstrs())
}

// Build runs target selection and site placement over a profiled graph.
func Build(g *cfg.Graph, opts Options) (*Plan, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	ipc := g.IPC
	if ipc <= 0 {
		ipc = 1
	}
	minDist := int(ipc * opts.LLCLatency)
	if minDist < 1 {
		minDist = 1
	}
	if minDist >= opts.Window {
		return nil, fmt.Errorf("asmdb: min distance %d >= window %d", minDist, opts.Window)
	}

	plan := &Plan{MinDistance: minDist, TotalMisses: g.TotalMisses}
	ranked := g.RankedByMisses()
	seen := make(map[[2]isa.Addr]bool) // (site, target-line) dedup

	var covered int64
	for ti, target := range ranked {
		if ti >= opts.MaxTargets {
			break
		}
		if g.TotalMisses > 0 && float64(covered)/float64(g.TotalMisses) >= opts.CoverageGoal {
			break
		}
		sites := findSites(g, target, minDist, opts)
		placed := 0
		for _, s := range sites {
			key := [2]isa.Addr{s.Site, s.Target.Line()}
			if seen[key] {
				continue
			}
			seen[key] = true
			plan.Insertions = append(plan.Insertions, s)
			placed++
			if placed >= opts.MaxSitesPerTarget {
				break
			}
		}
		if placed > 0 {
			plan.TargetsCovered++
			plan.MissesCovered += target.Misses
			covered += target.Misses
		}
	}
	// Deterministic order: by site then target.
	sort.Slice(plan.Insertions, func(i, j int) bool {
		if plan.Insertions[i].Site != plan.Insertions[j].Site {
			return plan.Insertions[i].Site < plan.Insertions[j].Site
		}
		return plan.Insertions[i].Target < plan.Insertions[j].Target
	})
	return plan, nil
}

// findSites walks the CFG backward from the target accumulating path
// probability and instruction distance, returning candidate insertion
// sites in the [minDist, Window] band with fanout above threshold, best
// first (highest probability, then shortest distance).
func findSites(g *cfg.Graph, target *cfg.Node, minDist int, opts Options) []Insertion {
	// Dijkstra-style maximum-probability walk backward from the target:
	// states pop in (prob desc, dist asc, pc asc) order, so the first pop
	// of a block carries its maximum reach probability (edge probabilities
	// are <= 1) with the shortest distance among max-probability paths.
	// The strict pop order makes the result independent of map iteration
	// order, which keeps plans — and therefore every rewritten binary —
	// bit-for-bit reproducible.
	h := &walkHeap{}
	h.push(walkState{pc: target.PC, prob: 1, dist: 0})
	done := make(map[isa.Addr]walkState)

	for h.len() > 0 {
		cur := h.pop()
		if _, ok := done[cur.pc]; ok {
			continue
		}
		done[cur.pc] = cur
		node := g.Node(cur.pc)
		if node == nil {
			continue
		}
		for predPC := range node.Preds { //lint:allow states pop in strict (prob, dist, pc) total order regardless of push order; see comment above
			if _, ok := done[predPC]; ok || predPC == target.PC {
				continue
			}
			pred := g.Node(predPC)
			if pred == nil || pred.Execs == 0 {
				continue
			}
			p := cur.prob * g.EdgeProb(predPC, cur.pc)
			if p < opts.FanoutThreshold {
				continue
			}
			d := cur.dist + pred.Instrs
			if d > opts.Window {
				continue
			}
			h.push(walkState{pc: predPC, prob: p, dist: d})
		}
	}
	out := make([]Insertion, 0, len(done))
	for pc, r := range done { //lint:allow out is fully sorted below (distance, prob, site); iteration order cannot escape
		if pc == target.PC || r.dist < minDist {
			continue
		}
		out = append(out, Insertion{
			Site:         pc,
			Target:       target.PC,
			Distance:     r.dist,
			Prob:         r.prob,
			TargetMisses: target.Misses,
		})
	}
	// Furthest-first: within the window, more lead distance means the
	// prefetch has the whole fetch latency to complete before the demand
	// arrives (timeliness dominates accuracy once fanout passes the
	// threshold). Ties break toward higher probability, then PC.
	sort.Slice(out, func(i, j int) bool {
		if out[i].Distance != out[j].Distance {
			return out[i].Distance > out[j].Distance
		}
		if out[i].Prob > out[j].Prob {
			return true
		}
		if out[i].Prob < out[j].Prob {
			return false
		}
		return out[i].Site < out[j].Site
	})
	return out
}

// Apply rewrites a clone of prog with the plan's prefetch instructions
// appended to each site block's body, re-laying-out the address space (the
// paper's static code bloat and cache-line-content shift). It returns the
// rewritten program and the number of insertions applied; insertions whose
// site or target no longer resolves are skipped.
func Apply(prog *program.Program, plan *Plan) (*program.Program, int, error) {
	clone := prog.Clone()
	// Resolve every address against the ORIGINAL layout before any
	// insertion shifts it.
	type resolved struct {
		site      program.BlockRef
		target    program.BlockRef
		targetOff int
	}
	rs := make([]resolved, 0, len(plan.Insertions))
	for _, ins := range plan.Insertions {
		siteRef, _, ok := clone.Locate(ins.Site)
		if !ok {
			continue
		}
		targetRef, off, ok := clone.Locate(ins.Target)
		if !ok {
			continue
		}
		rs = append(rs, resolved{site: siteRef, target: targetRef, targetOff: off})
	}
	applied := 0
	for _, r := range rs {
		blk := clone.Block(r.site)
		if blk == nil {
			continue
		}
		// Append at the end of the block body, just before the terminator
		// (the paper inserts "at the end of basic blocks that lead to the
		// high-impact instructions"). Layout is deferred to a single pass.
		if err := clone.InsertPrefetchDeferred(r.site, len(blk.Body), r.target, r.targetOff); err != nil {
			return nil, applied, fmt.Errorf("asmdb: applying insertion: %w", err)
		}
		applied++
	}
	clone.Layout()
	if err := clone.Validate(); err != nil {
		return nil, applied, fmt.Errorf("asmdb: rewritten program invalid: %w", err)
	}
	return clone, applied, nil
}

// Triggers builds the no-insertion-overhead trigger table: when any
// instruction of a site block is pushed into the FTQ, the target line is
// prefetched, with no instruction inserted and no address shift (the
// paper's idealized AsmDB).
func Triggers(prog *program.Program, plan *Plan) map[isa.Addr][]isa.Addr {
	out := make(map[isa.Addr][]isa.Addr, len(plan.Insertions))
	for _, ins := range plan.Insertions {
		if _, _, ok := prog.Locate(ins.Site); !ok {
			continue
		}
		out[ins.Site] = append(out[ins.Site], ins.Target)
	}
	return out
}
