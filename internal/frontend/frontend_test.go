package frontend

import (
	"testing"

	"frontsim/internal/cache"
	"frontsim/internal/isa"
	"frontsim/internal/trace"
)

func newHierarchy(t *testing.T) *cache.Hierarchy {
	t.Helper()
	h, err := cache.NewHierarchy(cache.DefaultHierarchyConfig())
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// seqStream builds n straight-line ALU instructions from pc.
func seqStream(pc isa.Addr, n int) []isa.Instr {
	out := make([]isa.Instr, n)
	for i := range out {
		out[i] = isa.Instr{PC: pc + isa.Addr(i*isa.InstrSize), Class: isa.ClassALU}
	}
	return out
}

func newFE(t *testing.T, cfg Config, instrs []isa.Instr, triggers map[isa.Addr][]isa.Addr) (*Frontend, *cache.Hierarchy) {
	t.Helper()
	h := newHierarchy(t)
	fe, err := New(cfg, trace.NewSlice(instrs), h, triggers)
	if err != nil {
		t.Fatal(err)
	}
	return fe, h
}

func drain(fe *Frontend, cycles int) []isa.Instr {
	var out []isa.Instr
	for now := cache.Cycle(0); now < cache.Cycle(cycles); now++ {
		fe.Cycle(now)
		out = fe.Dequeue(now, 6, out)
	}
	return out
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := ConservativeConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if ConservativeConfig().FTQEntries != 2 {
		t.Fatal("conservative FTQ depth")
	}
	bad := DefaultConfig()
	bad.FTQEntries = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted zero FTQ")
	}
	bad = DefaultConfig()
	bad.FillWidth = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted zero fill width")
	}
	bad = DefaultConfig()
	bad.PFCDelay = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted negative latency")
	}
}

func TestStraightLineDelivery(t *testing.T) {
	instrs := seqStream(0x400000, 64)
	fe, _ := newFE(t, DefaultConfig(), instrs, nil)
	out := drain(fe, 2000)
	if len(out) != 64 {
		t.Fatalf("delivered %d instrs, want 64", len(out))
	}
	for i, in := range out {
		if in.PC != instrs[i].PC {
			t.Fatalf("out of order at %d: %v vs %v", i, in.PC, instrs[i].PC)
		}
	}
	if !fe.Done() {
		t.Fatal("front-end not done")
	}
	if fe.Err() != nil {
		t.Fatal(fe.Err())
	}
}

func TestBlockificationEndsAtBranches(t *testing.T) {
	// alu, branch(taken), then target block.
	instrs := []isa.Instr{
		{PC: 0x1000, Class: isa.ClassALU},
		{PC: 0x1004, Class: isa.ClassBranch, Taken: true, Target: 0x2000},
		{PC: 0x2000, Class: isa.ClassALU},
		{PC: 0x2004, Class: isa.ClassALU},
	}
	fe, _ := newFE(t, DefaultConfig(), instrs, nil)
	out := drain(fe, 3000)
	if len(out) != 4 {
		t.Fatalf("delivered %d", len(out))
	}
	st := fe.FTQ().Stats()
	if st.Pushed != 2 {
		t.Fatalf("blocks pushed = %d, want 2", st.Pushed)
	}
}

func TestLongRunSplitsBlocks(t *testing.T) {
	instrs := seqStream(0x1000, 20) // no branches: 8+8+4
	fe, _ := newFE(t, DefaultConfig(), instrs, nil)
	drain(fe, 2000)
	if st := fe.FTQ().Stats(); st.Pushed != 3 {
		t.Fatalf("blocks = %d, want 3", st.Pushed)
	}
}

func TestMispredictStallsFillUntilResolve(t *testing.T) {
	// A first-seen taken conditional is a BTB miss: with PFC the fill
	// stalls until the block's fetch + PFC delay.
	instrs := []isa.Instr{
		{PC: 0x1000, Class: isa.ClassBranch, Taken: true, Target: 0x2000},
		{PC: 0x2000, Class: isa.ClassALU},
	}
	cfg := DefaultConfig()
	fe, _ := newFE(t, cfg, instrs, nil)
	fe.Cycle(0) // pushes branch block, predicts, stalls (fill width permitting)
	st := fe.Stats()
	if st.PFCRecoveries != 1 {
		t.Fatalf("PFCRecoveries = %d; stats %+v", st.PFCRecoveries, st)
	}
	if got := fe.FTQ().Stats().Pushed; got != 1 {
		t.Fatalf("pushed %d blocks, want 1 (fill stalled)", got)
	}
	// The ALU block enters only after the stall lifts (cold fetch takes
	// ~259 cycles + PFC delay).
	for now := cache.Cycle(1); now < 200; now++ {
		fe.Cycle(now)
	}
	if got := fe.FTQ().Stats().Pushed; got != 1 {
		t.Fatalf("fill resumed early: %d blocks", got)
	}
	for now := cache.Cycle(200); now < 400; now++ {
		fe.Cycle(now)
	}
	if got := fe.FTQ().Stats().Pushed; got != 2 {
		t.Fatalf("fill did not resume: %d blocks", got)
	}
	if fe.Stats().FillStallCycles == 0 {
		t.Fatal("no fill stall cycles recorded")
	}
}

func TestPFCDisabledWaitsForExecute(t *testing.T) {
	instrs := []isa.Instr{
		{PC: 0x1000, Class: isa.ClassBranch, Taken: true, Target: 0x2000},
		{PC: 0x2000, Class: isa.ClassALU},
	}
	cfg := DefaultConfig()
	cfg.EnablePFC = false
	fe, _ := newFE(t, cfg, instrs, nil)
	for now := cache.Cycle(0); now < 1000; now++ {
		fe.Cycle(now)
	}
	if got := fe.FTQ().Stats().Pushed; got != 1 {
		t.Fatalf("fill resumed without branch resolution: %d", got)
	}
	if fe.Stats().ExecuteRecoveries != 1 {
		t.Fatalf("stats %+v", fe.Stats())
	}
	// Branch is fill-sequence 0; resolving it resumes fill after the
	// redirect penalty.
	fe.OnBranchResolved(0, 1000)
	for now := cache.Cycle(1000); now < 1000+cfg.RedirectPenalty; now++ {
		fe.Cycle(now)
		if fe.FTQ().Stats().Pushed != 1 {
			t.Fatal("resumed before redirect penalty elapsed")
		}
	}
	for now := 1000 + cfg.RedirectPenalty; now < 1200; now++ {
		fe.Cycle(now)
	}
	if got := fe.FTQ().Stats().Pushed; got != 2 {
		t.Fatalf("fill did not resume after resolution: %d", got)
	}
}

func TestOnBranchResolvedIgnoresOtherSeqs(t *testing.T) {
	instrs := []isa.Instr{
		{PC: 0x1000, Class: isa.ClassBranch, Taken: true, Target: 0x2000},
		{PC: 0x2000, Class: isa.ClassALU},
	}
	cfg := DefaultConfig()
	cfg.EnablePFC = false
	fe, _ := newFE(t, cfg, instrs, nil)
	fe.Cycle(0)
	fe.OnBranchResolved(5, 10) // wrong seq: must not resume
	for now := cache.Cycle(1); now < 500; now++ {
		fe.Cycle(now)
	}
	if fe.FTQ().Stats().Pushed != 1 {
		t.Fatal("resumed on unrelated branch resolution")
	}
}

func TestSwPrefetchInstructionFires(t *testing.T) {
	target := isa.Addr(0x900000)
	instrs := []isa.Instr{
		{PC: 0x1000, Class: isa.ClassSwPrefetch, Target: target},
		{PC: 0x1004, Class: isa.ClassALU},
	}
	fe, h := newFE(t, DefaultConfig(), instrs, nil)
	drain(fe, 2000)
	if fe.Stats().SwPrefetchesIssued != 1 {
		t.Fatalf("SwPrefetchesIssued = %d", fe.Stats().SwPrefetchesIssued)
	}
	if !h.L1I.Probe(target) {
		t.Fatal("prefetch target not in L1-I")
	}
	if h.L1I.Stats().PrefetchReqs != 1 {
		t.Fatalf("L1I prefetch reqs = %d", h.L1I.Stats().PrefetchReqs)
	}
}

func TestTriggerTableFiresWithoutInsertion(t *testing.T) {
	target := isa.Addr(0xa00000)
	instrs := seqStream(0x1000, 4)
	triggers := map[isa.Addr][]isa.Addr{0x1004: {target}}
	fe, h := newFE(t, DefaultConfig(), instrs, triggers)
	drain(fe, 2000)
	if fe.Stats().TriggerPrefetchesIssued != 1 {
		t.Fatalf("TriggerPrefetchesIssued = %d", fe.Stats().TriggerPrefetchesIssued)
	}
	if !h.L1I.Probe(target) {
		t.Fatal("triggered prefetch target not in L1-I")
	}
}

func TestConservativeFTQLimitsRunAhead(t *testing.T) {
	// With a 2-entry FTQ and nothing dequeued, only 2 blocks fill.
	instrs := seqStream(0x1000, 64)
	fe, _ := newFE(t, ConservativeConfig(), instrs, nil)
	for now := cache.Cycle(0); now < 100; now++ {
		fe.Cycle(now)
	}
	if got := fe.FTQ().Stats().Pushed; got != 2 {
		t.Fatalf("conservative FTQ filled %d blocks without dequeues", got)
	}
}

func TestResetStatsKeepsState(t *testing.T) {
	instrs := seqStream(0x1000, 32)
	fe, _ := newFE(t, DefaultConfig(), instrs, nil)
	for now := cache.Cycle(0); now < 50; now++ {
		fe.Cycle(now)
	}
	fe.ResetStats()
	if fe.Stats().BlocksFilled != 0 || fe.FTQ().Stats().Pushed != 0 {
		t.Fatal("stats survived reset")
	}
	if fe.FTQ().Empty() {
		t.Fatal("reset flushed the FTQ")
	}
}

// countingPrefetcher records OnFetch calls and prefetches the next line.
type countingPrefetcher struct {
	fetches int
	hits    int
	issued  int
}

func (p *countingPrefetcher) OnFetch(line isa.Addr, now cache.Cycle, hit bool, issue func(isa.Addr)) {
	p.fetches++
	if hit {
		p.hits++
	}
	issue(line + isa.LineSize)
	p.issued++
}

func TestHardwarePrefetcherHook(t *testing.T) {
	cfg := DefaultConfig()
	pf := &countingPrefetcher{}
	cfg.Prefetcher = pf
	instrs := seqStream(0x400000, 48) // 3 lines
	fe, h := newFE(t, cfg, instrs, nil)
	drain(fe, 2000)
	if pf.fetches != 3 {
		t.Fatalf("prefetcher saw %d fetches, want 3 lines", pf.fetches)
	}
	if pf.issued != 3 {
		t.Fatalf("issued %d", pf.issued)
	}
	// The next-line beyond the stream must have been prefetched.
	if !h.L1I.Probe(0x400000 + 3*isa.LineSize) {
		t.Fatal("prefetched line absent")
	}
	if st := h.L1I.Stats(); st.PrefetchReqs == 0 {
		t.Fatal("no prefetch requests recorded")
	}
	// Hit/miss classification: the first fetch is cold, later merged lines
	// may hit; at minimum not everything can be a hit.
	if pf.hits == pf.fetches {
		t.Fatal("cold fetches misclassified as hits")
	}
}

func TestDoneFalseWhileResident(t *testing.T) {
	instrs := seqStream(0x1000, 8)
	fe, _ := newFE(t, DefaultConfig(), instrs, nil)
	fe.Cycle(0)
	if fe.Done() {
		t.Fatal("done with instructions still queued")
	}
}

func TestWrongPathFetchesDisabledByDefault(t *testing.T) {
	instrs := []isa.Instr{
		{PC: 0x1000, Class: isa.ClassBranch, Taken: true, Target: 0x2000},
		{PC: 0x2000, Class: isa.ClassALU},
	}
	fe, _ := newFE(t, DefaultConfig(), instrs, nil)
	drain(fe, 1000)
	if fe.Stats().WrongPathFetches != 0 {
		t.Fatal("wrong-path fetches issued with depth 0")
	}
}

func TestWrongPathFetchesIssueSequentialLines(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WrongPathDepth = 3
	instrs := []isa.Instr{
		{PC: 0x1000, Class: isa.ClassBranch, Taken: true, Target: 0x8000},
		{PC: 0x8000, Class: isa.ClassALU},
	}
	fe, h := newFE(t, cfg, instrs, nil)
	drain(fe, 1000)
	if got := fe.Stats().WrongPathFetches; got != 3 {
		t.Fatalf("WrongPathFetches = %d, want 3", got)
	}
	for i := 1; i <= 3; i++ {
		if !h.L1I.Probe(isa.Addr(0x1000 + i*isa.LineSize)) {
			t.Fatalf("sequential line %d not fetched", i)
		}
	}
}

func TestWrongPathDepthValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WrongPathDepth = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("accepted negative wrong-path depth")
	}
}

func TestBTBL2FillBubbleStallsFill(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BPU.L1BTBEntries = 8
	cfg.BTBL2FillPenalty = 3
	// Train a jump, thrash it out of the tiny L1 BTB via the stream
	// itself: jump at 0x1000 seen, then 16 same-set jumps, then revisit.
	var instrs []isa.Instr
	add := func(pc, tgt isa.Addr) {
		instrs = append(instrs, isa.Instr{PC: pc, Class: isa.ClassJump, Taken: true, Target: tgt})
	}
	pc := isa.Addr(0x1000)
	add(pc, 0x2000)
	prev := isa.Addr(0x2000)
	for i := 1; i <= 17; i++ {
		next := isa.Addr(0x1000 + uint64(i)*8*4)
		add(prev, next)
		prev = next + isa.InstrSize - isa.InstrSize
		// Each jump goes to the next one's address.
		instrs[len(instrs)-1].Target = next
		prev = next
	}
	fe, _ := newFE(t, cfg, instrs, nil)
	for now := cache.Cycle(0); now < 30000; now++ {
		fe.Cycle(now)
		fe.Dequeue(now, 6, nil)
	}
	// The stream revisits nothing, so bubbles may be zero; this test only
	// asserts the machinery doesn't wedge and the counter is consistent.
	if fe.Stats().BTBL2FillBubbles < 0 {
		t.Fatal("negative bubbles")
	}
	if !fe.Done() {
		t.Fatal("front-end wedged with two-level BTB enabled")
	}
}
