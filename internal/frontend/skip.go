package frontend

import "frontsim/internal/cache"

// FillBlockedUntil reports whether the fill engine can make no progress at
// cycle now, and if so the first cycle at which it might (cache.CycleMax
// when only an external event — a pop freeing an FTQ slot, or a branch
// dispatching — can unblock it). The checks mirror Cycle's early returns
// in order:
//
//   - a drained source with nothing buffered never fills again;
//   - a wrong-path stall waiting on branch resolution (stallSeq >= 0)
//     clears only when the branch dispatches, which requires a pop;
//   - a timed stall (PFC, redirect, BTB promotion) clears at stallUntil;
//   - a full queue blocks fill until a pop frees a slot.
//
// Anything else means the fill engine would push blocks this cycle, so the
// fast-forward scheduler must not skip it.
func (f *Frontend) FillBlockedUntil(now cache.Cycle) (cache.Cycle, bool) {
	if f.fillGated {
		// A gated fill engine (sampled-mode drain, SetFill) does nothing
		// until an external actor re-enables it, which only happens between
		// cycles; within simulated time the block is indefinite.
		return cache.CycleMax, true
	}
	if f.srcDone && f.peeked == nil {
		return cache.CycleMax, true
	}
	if f.stalled {
		if f.stallSeq >= 0 {
			return cache.CycleMax, true
		}
		if f.stallUntil > now {
			return f.stallUntil, true
		}
		return 0, false // stall expires this cycle; fill resumes
	}
	if f.q.Full() {
		return cache.CycleMax, true
	}
	return 0, false
}

// NextPendingPrefetchAt returns the release cycle of the earliest queued
// software prefetch, and ok=false when none are pending. Releases mutate
// the hierarchy, so the fast-forward scheduler bounds every jump by this.
func (f *Frontend) NextPendingPrefetchAt() (cache.Cycle, bool) {
	if f.pending.Len() == 0 {
		return 0, false
	}
	return f.pending.Min().at, true
}

// SkipTo bulk-accounts the front-end cycles [from, to), exactly as if
// Cycle had run once per cycle while FillBlockedUntil held for the whole
// span and no pending prefetch came due. The FTQ's per-cycle accounting
// integrates in closed form (ftq.SkipTo); the fill engine's only per-cycle
// counter is FillStallCycles, which Cycle increments on stalled cycles —
// but not after the source has drained (its early return precedes the
// stall check), and not when fill is merely blocked by a full queue.
func (f *Frontend) SkipTo(from, to cache.Cycle) {
	f.q.SkipTo(from, to)
	if f.fillGated {
		return // gated cycles are drain cycles, not stalls (mirrors Cycle)
	}
	if f.srcDone && f.peeked == nil {
		return
	}
	if f.stalled {
		f.stats.FillStallCycles += int64(to - from)
	}
}
