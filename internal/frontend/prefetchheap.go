package frontend

import (
	"frontsim/internal/cache"
	"frontsim/internal/isa"
)

// pendingPrefetch is a software prefetch awaiting its pre-decode cycle.
type pendingPrefetch struct {
	at      cache.Cycle
	target  isa.Addr
	trigger bool // from the no-overhead trigger table rather than an instruction
}

// prefetchHeap is a small binary min-heap on the issue cycle. A dedicated
// implementation (rather than container/heap) keeps the per-cycle hot path
// free of interface conversions.
type prefetchHeap struct {
	items []pendingPrefetch
}

// Len returns the number of queued prefetches.
func (h *prefetchHeap) Len() int { return len(h.items) }

// Min returns the earliest pending prefetch; callers must check Len first.
func (h *prefetchHeap) Min() pendingPrefetch { return h.items[0] }

// Push inserts a prefetch.
func (h *prefetchHeap) Push(p pendingPrefetch) {
	h.items = append(h.items, p)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].at <= h.items[i].at {
			break
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

// Pop removes and returns the earliest prefetch; callers must check Len.
func (h *prefetchHeap) Pop() pendingPrefetch {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.items) && h.items[l].at < h.items[small].at {
			small = l
		}
		if r < len(h.items) && h.items[r].at < h.items[small].at {
			small = r
		}
		if small == i {
			break
		}
		h.items[i], h.items[small] = h.items[small], h.items[i]
		i = small
	}
	return top
}
