package frontend

import (
	"frontsim/internal/cache"
	"frontsim/internal/isa"
)

// SetFill enables or disables the fill engine. Sampled simulation
// (internal/core) gates fill off while a measured window's tail drains out
// of the FTQ and ROB: delivery, dispatch and retirement continue, but no
// new blocks enter, so the window boundary is crisp. While gated, Cycle
// still releases due software prefetches and the FTQ still ticks; only the
// fill loop (and its stall accounting) is suspended.
func (f *Frontend) SetFill(enabled bool) { f.fillGated = !enabled }

// FillEnabled reports whether the fill engine is running (see SetFill).
func (f *Frontend) FillEnabled() bool { return !f.fillGated }

// WarmFunctional consumes up to n program (non-prefetch) instructions from
// the true-path source with no cycle accounting at all — the functional
// phase of SMARTS-style sampled simulation. Content state stays warm:
//
//   - instruction lines, the I-TLB and lower levels warm through the
//     hierarchy's Warm path (no timing, no counters);
//   - loads and stores warm the data path;
//   - the shadow decoder observes branches and pre-fills the BTB exactly
//     as detailed fetch would;
//   - branch predictors train on every block-ending branch (the predicted
//     path is ignored — there is no fill to steer);
//   - the hardware prefetcher observes fetches and its issued fills warm
//     content-only; software-prefetch instructions and trigger-table
//     entries likewise warm their targets immediately.
//
// Crucially the fill sequence counter does not advance: functionally
// consumed instructions never enter the FTQ or the back-end, so the
// front-end/back-end sequence lockstep (branch resolution is keyed by fill
// order) is preserved across the phase.
//
// It consumes whole basic blocks, so it may overshoot n by at most one
// block; the return value is the exact program-instruction count consumed,
// which is less than n only when the source drained. now is the frozen
// simulation cycle, passed to the prefetcher for its timestamp bookkeeping.
func (f *Frontend) WarmFunctional(n int64, now cache.Cycle) int64 {
	var consumed int64
	var lastLine isa.Addr = ^isa.Addr(0)
	for consumed < n {
		blk := f.nextBlock()
		if len(blk) == 0 {
			break
		}
		for _, in := range blk {
			if line := in.PC.Line(); line != lastLine {
				lastLine = line
				f.warmFetchLine(line, now)
			}
			switch {
			case in.Class.IsMem():
				f.mem.WarmData(in.DataAddr)
			case in.Class == isa.ClassSwPrefetch:
				f.mem.WarmPrefetchInstr(in.Target)
			}
			if f.trigFilter != nil {
				h := trigHash(in.PC)
				if f.trigFilter[h>>6]&(1<<(h&63)) != 0 {
					for _, t := range f.triggers[in.PC] {
						f.mem.WarmPrefetchInstr(t)
					}
				}
			}
			if in.Class != isa.ClassSwPrefetch {
				consumed++
			}
		}
		last := blk[len(blk)-1]
		if last.Class.IsBranch() {
			if f.sd != nil {
				f.sd.Observe(last)
			}
			f.bp.PredictAndTrain(last)
		}
	}
	return consumed
}

// warmFetchLine is fetchLine's functional counterpart: content-only
// hierarchy warm, shadow decode, and prefetcher observation whose issued
// fills also warm content-only. The hit flag handed to the prefetcher is
// the line's presence before warming, matching what the detailed path's
// access would have seen.
func (f *Frontend) warmFetchLine(line isa.Addr, now cache.Cycle) {
	hit := f.mem.L1I.Probe(line)
	f.mem.WarmInstr(line)
	if f.sd != nil {
		for _, sb := range f.sd.DecodeLine(line) {
			f.bp.ShadowInstall(sb)
		}
	}
	if f.cfg.Prefetcher != nil {
		f.cfg.Prefetcher.OnFetch(line, now, hit, func(l isa.Addr) {
			f.mem.WarmPrefetchInstr(l)
		})
	}
}
