package frontend

import (
	"fmt"

	"frontsim/internal/cache"
)

// CheckInvariants audits the front-end's structural invariants as of cycle
// now (after Cycle ran for that cycle), then delegates to the FTQ's
// checks. It returns the first violation, or nil; audit mode calls it
// every cycle, so the success path allocates nothing.
func (f *Frontend) CheckInvariants(now cache.Cycle) error {
	// The pending software-prefetch queue must be a well-formed min-heap:
	// a violated heap property releases prefetches out of cycle order and
	// feeds the hierarchy's bandwidth model non-chronologically.
	items := f.pending.items
	for i := 1; i < len(items); i++ {
		parent := (i - 1) / 2
		if items[parent].at > items[i].at {
			return fmt.Errorf("frontend: prefetch heap property broken at index %d (parent due %d > child due %d)", i, items[parent].at, items[i].at)
		}
	}
	// Stall bookkeeping: a resolution-waiting stall must reference a
	// filled sequence number, and fill must never have run past the
	// divergence it is supposedly stalled on.
	if f.stalled && f.stallSeq >= 0 && f.stallSeq >= f.seq {
		return fmt.Errorf("frontend: stalled on branch seq %d which has not been filled (next seq %d)", f.stallSeq, f.seq)
	}
	if f.stats.BlocksFilled < 0 || f.stats.InstrsFilled < f.stats.BlocksFilled {
		return fmt.Errorf("frontend: fill accounting broken: %d blocks but %d instructions", f.stats.BlocksFilled, f.stats.InstrsFilled)
	}
	return f.q.CheckInvariants(now)
}
