// Package frontend implements the fetch-directed-prefetching (FDP)
// decoupled front-end the paper characterizes: a branch-predictor-driven
// run-ahead engine that fills the FTQ with basic blocks along the predicted
// path, issues their L1-I fetches out of order, delivers instructions to
// decode in order, applies post-fetch correction (PFC) for BTB-missed
// direct branches, and fires software instruction prefetches at pre-decode.
//
// Because the simulator is trace-driven, the fill engine walks the *true*
// dynamic path while consulting the predictors; when a prediction diverges
// from the truth the fill engine has gone down a wrong path and must stall
// until the divergence is corrected — at pre-decode for PFC-recoverable
// BTB misses, or at branch resolution in the back-end otherwise. This is
// the standard ChampSim-style FDP model from the papers we follow.
package frontend

import (
	"errors"
	"fmt"

	"frontsim/internal/bpu"
	"frontsim/internal/cache"
	"frontsim/internal/ftq"
	"frontsim/internal/isa"
	"frontsim/internal/obs"
	"frontsim/internal/trace"
)

// Config parameterizes the front-end.
type Config struct {
	// FTQEntries is the fetch target queue depth: 2 models the paper's
	// conservative front-end, 24 the industry-standard one.
	FTQEntries int
	// FillWidth is the maximum basic blocks entered into the FTQ per
	// cycle.
	FillWidth int
	// EnablePFC turns on post-fetch correction: a BTB-missed direct branch
	// is discovered when its cache line is pre-decoded instead of at
	// execution.
	EnablePFC bool
	// PFCDelay is the pre-decode latency applied to PFC recovery, counted
	// from the block's fetch completion.
	PFCDelay cache.Cycle
	// RedirectPenalty is the front-end restart latency after a branch
	// resolves in the back-end.
	RedirectPenalty cache.Cycle
	// PredecodeDelay is the latency from a block's fetch completion to its
	// software prefetches issuing.
	PredecodeDelay cache.Cycle
	// BPU configures the branch prediction structures.
	BPU bpu.Config
	// Prefetcher optionally attaches a hardware L1-I prefetcher observing
	// demand fetches (e.g. next-line or an entangling prefetcher).
	Prefetcher InstrPrefetcher
	// Shadow enables shadow-branch decoding: every fetched line's
	// decodable branches (learned on first execution, standing in for raw
	// byte decode in this trace-driven model) pre-fill BTB entries that
	// steer FDP past otherwise-undiscovered branches. The zero value
	// disables it.
	Shadow bpu.ShadowConfig
	// BTBL2FillPenalty is the fill bubble paid when a branch is found
	// only in the second BTB level (two-level BTB configurations; see
	// bpu.Config.L1BTBEntries). Ignored with a single-level BTB.
	BTBL2FillPenalty cache.Cycle
	// WrongPathDepth, when positive, models the front-end continuing to
	// fetch sequential cache lines past an undiscovered taken branch (the
	// not-taken assumption real FDP hardware makes while pre-decode is in
	// flight): that many lines beyond the divergence are fetched
	// speculatively. They pollute the L1-I and consume bandwidth but act
	// as incidental next-line prefetching — quantified by ablation A6.
	WrongPathDepth int
}

// InstrPrefetcher observes demand L1-I line fetches and may issue
// speculative fills through the provided callback.
type InstrPrefetcher interface {
	// OnFetch is called once per demand line fetch with whether it hit the
	// L1-I; issue fills the given line speculatively at the current cycle.
	OnFetch(line isa.Addr, now cache.Cycle, hit bool, issue func(line isa.Addr))
}

// DefaultConfig returns the industry-standard front-end (24-entry FTQ with
// PFC and GHR filtering, per Ishii et al.).
func DefaultConfig() Config {
	return Config{
		FTQEntries:      24,
		FillWidth:       2,
		EnablePFC:       true,
		PFCDelay:        2,
		RedirectPenalty: 8,
		PredecodeDelay:  1,
		// WrongPathDepth defaults to 0: the paper's own trace-driven
		// ChampSim model cannot fetch wrong-path lines either, and the
		// reproduction targets the paper's simulator. Set it positive for
		// the hardware-faithful not-taken streaming variant (ablation A6).
		WrongPathDepth:   0,
		BTBL2FillPenalty: 2,
		BPU:              bpu.DefaultConfig(),
	}
}

// ConservativeConfig returns the paper's conservative baseline: a 2-entry
// FTQ.
func ConservativeConfig() Config {
	c := DefaultConfig()
	c.FTQEntries = 2
	return c
}

// Validate checks the parameters.
func (c Config) Validate() error {
	if c.FTQEntries <= 0 {
		return fmt.Errorf("frontend: FTQEntries %d", c.FTQEntries)
	}
	if c.FillWidth <= 0 {
		return fmt.Errorf("frontend: FillWidth %d", c.FillWidth)
	}
	if c.PFCDelay < 0 || c.RedirectPenalty < 0 || c.PredecodeDelay < 0 {
		return fmt.Errorf("frontend: negative latency")
	}
	if c.WrongPathDepth < 0 {
		return fmt.Errorf("frontend: WrongPathDepth %d", c.WrongPathDepth)
	}
	if c.BTBL2FillPenalty < 0 {
		return fmt.Errorf("frontend: BTBL2FillPenalty %d", c.BTBL2FillPenalty)
	}
	if err := c.Shadow.Validate(); err != nil {
		return err
	}
	return c.BPU.Validate()
}

// Stats counts front-end fill behaviour beyond what the FTQ tracks.
type Stats struct {
	BlocksFilled int64
	InstrsFilled int64
	// FillStallCycles: cycles the fill engine was blocked on a wrong-path
	// condition (FTQ-full cycles are not stalls).
	FillStallCycles int64
	// WrongPathEvents by recovery point.
	PFCRecoveries     int64
	ExecuteRecoveries int64
	// SwPrefetchesIssued counts prefetches fired by fetched prefetch
	// instructions; TriggerPrefetchesIssued counts no-overhead trigger
	// table firings.
	SwPrefetchesIssued      int64
	TriggerPrefetchesIssued int64
	// WrongPathFetches counts speculative sequential line fetches issued
	// past an undiscovered taken branch (WrongPathDepth > 0).
	WrongPathFetches int64
	// BTBL2FillBubbles counts fill pauses caused by second-level BTB
	// promotions (two-level BTB configurations).
	BTBL2FillBubbles int64
}

// Frontend is the FDP engine.
type Frontend struct {
	cfg Config
	bp  *bpu.BPU
	// sd is the shadow-branch decoder, nil when cfg.Shadow is disabled.
	sd   *bpu.ShadowDecoder
	q    *ftq.FTQ
	mem  *cache.Hierarchy
	src  trace.Source
	bsrc trace.BlockSource // non-nil when src yields whole blocks

	// triggers maps a trigger PC to target addresses prefetched when the
	// trigger's block completes fetch (AsmDB "no insertion overhead"
	// mode). trigFilter is a bitset over hashed trigger PCs consulted
	// before the map: the fill loop probes every filled instruction, and
	// almost none are triggers, so the lookup must be branch-cheap.
	// False positives only cost a map miss; membership is unchanged.
	triggers   map[isa.Addr][]isa.Addr
	trigFilter []uint64

	peeked   *isa.Instr // nil or &peekBuf; a stable buffer keeps the per-instruction peek off the heap
	peekBuf  isa.Instr
	blockBuf []isa.Instr
	srcDone  bool
	srcErr   error

	// pending holds scheduled software prefetches (a min-heap on cycle).
	// Prefetches trigger at a block's pre-decode, which lies in the future
	// at push time; issuing them immediately with a future timestamp would
	// feed the hierarchy's bandwidth model out of chronological order, so
	// they are queued and released by Cycle.
	pending prefetchHeap

	seq int64 // dynamic index of the next instruction to fill

	// Wrong-path stall state: fill resumes at stallUntil when known, or
	// once the branch with sequence stallSeq resolves.
	stalled    bool
	stallUntil cache.Cycle
	stallSeq   int64

	// fillGated suspends the fill engine while sampled simulation drains a
	// measured window out of the pipeline (SetFill).
	fillGated bool

	sink obs.Sink // nil when observation is off

	stats Stats
}

// New builds a front-end reading the true path from src and fetching
// through mem. triggers may be nil.
func New(cfg Config, src trace.Source, mem *cache.Hierarchy, triggers map[isa.Addr][]isa.Addr) (*Frontend, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	bp, err := bpu.New(cfg.BPU)
	if err != nil {
		return nil, err
	}
	f := &Frontend{
		cfg:      cfg,
		bp:       bp,
		q:        ftq.New(cfg.FTQEntries),
		mem:      mem,
		src:      src,
		triggers: triggers,
		stallSeq: -1,
		blockBuf: make([]isa.Instr, 0, ftq.MaxBlockInstrs),
	}
	f.bsrc, _ = trace.AsBlockSource(src)
	if cfg.Shadow.Enabled() {
		if f.sd, err = bpu.NewShadowDecoder(cfg.Shadow); err != nil {
			return nil, err
		}
	}
	if len(triggers) > 0 {
		f.trigFilter = make([]uint64, trigFilterWords)
		//lint:allow detmap bitset ORs commute, so insertion order cannot escape
		for pc := range triggers {
			h := trigHash(pc)
			f.trigFilter[h>>6] |= 1 << (h & 63)
		}
	}
	return f, nil
}

// trigFilterWords sizes the trigger pre-filter at 2^18 bits (32 KiB);
// trigger tables hold a few thousand PCs, keeping false positives rare.
const trigFilterWords = 1 << 12

func trigHash(pc isa.Addr) uint64 {
	return (uint64(pc) >> 2) & (trigFilterWords*64 - 1)
}

// FTQ exposes the queue (stats and inspection).
func (f *Frontend) FTQ() *ftq.FTQ { return f.q }

// BPU exposes the branch predictors.
func (f *Frontend) BPU() *bpu.BPU { return f.bp }

// ShadowDecoder exposes the shadow-branch decoder (nil when disabled).
func (f *Frontend) ShadowDecoder() *bpu.ShadowDecoder { return f.sd }

// SetObserver attaches an observability sink to the front-end and its FTQ
// (nil detaches). Observation is strictly read-only.
func (f *Frontend) SetObserver(s obs.Sink) {
	f.sink = s
	f.q.SetObserver(s)
}

// FillStalled reports whether the fill engine is currently blocked on a
// wrong-path condition (for time-series sampling).
func (f *Frontend) FillStalled() bool { return f.stalled }

// Stats returns a snapshot of fill counters.
func (f *Frontend) Stats() Stats { return f.stats }

// ResetStats clears front-end, FTQ and BPU counters (warmup boundary).
func (f *Frontend) ResetStats() {
	f.stats = Stats{}
	f.q.ResetStats()
	f.bp.ResetStats()
}

// Err returns the source error, if the stream failed (ErrEnd is not an
// error).
func (f *Frontend) Err() error { return f.srcErr }

// Done reports that the source is exhausted and every instruction has left
// the FTQ.
func (f *Frontend) Done() bool {
	return f.srcDone && f.q.Empty() && f.peeked == nil
}

func (f *Frontend) peek() *isa.Instr {
	if f.peeked != nil || f.srcDone {
		return f.peeked
	}
	in, err := f.src.Next()
	if err != nil {
		f.srcDone = true
		if !errors.Is(err, trace.ErrEnd) {
			f.srcErr = err
		}
		return nil
	}
	f.peekBuf = in
	f.peeked = &f.peekBuf
	return f.peeked
}

// nextBlock accumulates the next basic block from the true-path stream: up
// to MaxBlockInstrs contiguous instructions, ended early by any branch.
// Block-capable sources hand over the whole run in one call; the
// incremental path below defines the boundary semantics both must match.
func (f *Frontend) nextBlock() []isa.Instr {
	if f.bsrc != nil && !f.srcDone {
		blk, err := f.bsrc.NextBlock(f.blockBuf[:0], ftq.MaxBlockInstrs)
		if err != nil {
			f.srcDone = true
			if !errors.Is(err, trace.ErrEnd) {
				f.srcErr = err
			}
		}
		return blk
	}
	f.blockBuf = f.blockBuf[:0]
	for len(f.blockBuf) < ftq.MaxBlockInstrs {
		p := f.peek()
		if p == nil {
			break
		}
		if len(f.blockBuf) > 0 {
			prev := f.blockBuf[len(f.blockBuf)-1]
			if p.PC != prev.PC+isa.InstrSize {
				// Discontinuity without a branch terminator cannot happen
				// in a well-formed trace, but a serialized trace is
				// external input: treat the boundary as a block break.
				break
			}
		}
		f.peeked = nil
		f.blockBuf = append(f.blockBuf, *p)
		if p.Class.IsBranch() {
			break
		}
	}
	return f.blockBuf
}

// Cycle advances the front-end by one cycle: accounts FTQ state, releases
// due software prefetches, then runs the fill engine.
func (f *Frontend) Cycle(now cache.Cycle) {
	f.q.Tick(now)
	for f.pending.Len() > 0 && f.pending.Min().at <= now {
		p := f.pending.Pop()
		f.mem.PrefetchInstr(p.target, now)
		trig := int64(0)
		if p.trigger {
			f.stats.TriggerPrefetchesIssued++
			trig = 1
		} else {
			f.stats.SwPrefetchesIssued++
		}
		if f.sink != nil {
			f.sink.Event(obs.Event{Cycle: int64(now), Kind: obs.EvPrefetchIssue, Addr: uint64(p.target), Arg: trig})
		}
	}
	if f.fillGated {
		// A gated cycle is a drain cycle, not a stall: the timed-stall
		// check below must not run, so a wrong-path stall neither counts
		// nor expires while the window boundary drains.
		return
	}
	if f.srcDone && f.peeked == nil {
		return
	}
	if f.stalled {
		if f.stallSeq >= 0 || now < f.stallUntil {
			f.stats.FillStallCycles++
			return
		}
		f.stalled = false
	}
	for i := 0; i < f.cfg.FillWidth; i++ {
		if f.q.Full() {
			return
		}
		// Assemble the next block without consuming it past a failed push:
		// Push cannot fail here because we checked Full, and nextBlock
		// consumes from the stream.
		blk := f.nextBlock()
		if len(blk) == 0 {
			return
		}
		ready, ok := f.q.Push(blk, now, f.fetchLine)
		if !ok {
			// Unreachable: guarded by Full above. Keep the stream sane by
			// pushing back is impossible, so panic loudly.
			panic("frontend: FTQ push failed after Full check")
		}
		f.stats.BlocksFilled++
		f.stats.InstrsFilled += int64(len(blk))
		f.firePrefetches(blk, ready)
		blockSeq := f.seq
		f.seq += int64(len(blk))

		last := blk[len(blk)-1]
		if last.Class.IsBranch() {
			if f.sd != nil {
				// First execution "decodes" the branch into its line's
				// shadow record; later fetches of the line replay it.
				f.sd.Observe(last)
			}
			res := f.bp.PredictAndTrain(last)
			if !res.CorrectPath {
				f.stallFill(res, ready, blockSeq+int64(len(blk))-1, last.PC, now)
				f.fetchWrongPath(last, now)
				return
			}
			if res.BTBL2Fill && f.cfg.BTBL2FillPenalty > 0 {
				// The branch was identified from the second BTB level:
				// fill pays a promotion bubble but stays on the true path.
				f.stalled = true
				f.stallSeq = -1
				f.stallUntil = now + f.cfg.BTBL2FillPenalty
				f.stats.BTBL2FillBubbles++
				return
			}
		}
	}
}

func (f *Frontend) fetchLine(line isa.Addr, now cache.Cycle) cache.Cycle {
	ready := f.mem.FetchInstr(line, now)
	if f.sd != nil {
		// Shadow decode: pre-fill the BTB with the fetched line's known
		// decodable branches, never displacing trained entries.
		for _, sb := range f.sd.DecodeLine(line) {
			f.bp.ShadowInstall(sb)
		}
	}
	if f.cfg.Prefetcher != nil {
		hit := ready-now <= f.mem.L1I.Config().HitLatency
		f.cfg.Prefetcher.OnFetch(line, now, hit, func(l isa.Addr) {
			f.mem.PrefetchInstr(l, now)
		})
	}
	return ready
}

// firePrefetches schedules software prefetches carried by the block
// (inserted prefetch instructions) and trigger-table prefetches
// (no-overhead mode), both timed at the block's pre-decode.
func (f *Frontend) firePrefetches(blk []isa.Instr, ready cache.Cycle) {
	at := ready + f.cfg.PredecodeDelay
	for _, in := range blk {
		if in.Class == isa.ClassSwPrefetch {
			f.pending.Push(pendingPrefetch{at: at, target: in.Target})
		}
		if f.trigFilter != nil {
			h := trigHash(in.PC)
			if f.trigFilter[h>>6]&(1<<(h&63)) == 0 {
				continue
			}
			if targets, ok := f.triggers[in.PC]; ok {
				for _, t := range targets {
					f.pending.Push(pendingPrefetch{at: at, target: t, trigger: true})
				}
			}
		}
	}
}

// stallFill suspends run-ahead after a wrong-path divergence.
func (f *Frontend) stallFill(res bpu.Result, blockReady cache.Cycle, branchSeq int64, branchPC isa.Addr, now cache.Cycle) {
	f.stalled = true
	if res.Recovery == bpu.RecoverPreDecode && f.cfg.EnablePFC {
		// Pre-decode of the fetched line exposes the direct branch; fill
		// resumes with the corrected history.
		f.stallUntil = blockReady + f.cfg.PFCDelay
		f.stallSeq = -1
		f.stats.PFCRecoveries++
		if f.sink != nil {
			f.sink.Event(obs.Event{Cycle: int64(now), Kind: obs.EvPFC, Addr: uint64(branchPC), Arg: int64(f.stallUntil)})
		}
		return
	}
	// Wait for the branch to resolve in the back-end.
	f.stallSeq = branchSeq
	f.stallUntil = 0
	f.stats.ExecuteRecoveries++
}

// fetchWrongPath models the not-taken assumption: while the divergence is
// unresolved, the fetch engine streams sequential lines past the branch.
// The trace cannot supply wrong-path instructions, but the addresses are
// known (sequential), so the cache-side effects are exact.
func (f *Frontend) fetchWrongPath(branch isa.Instr, now cache.Cycle) {
	if f.cfg.WrongPathDepth <= 0 {
		return
	}
	line := branch.PC.Line()
	for i := 1; i <= f.cfg.WrongPathDepth; i++ {
		f.mem.PrefetchInstr(line+isa.Addr(i*isa.LineSize), now)
		f.stats.WrongPathFetches++
	}
}

// OnBranchResolved informs the front-end that the dynamic instruction with
// the given fill sequence number (a branch) finished executing at cycle
// done. If fill is waiting on it, run-ahead resumes after the redirect
// penalty.
func (f *Frontend) OnBranchResolved(seq int64, done cache.Cycle) {
	if f.stalled && f.stallSeq == seq {
		f.stallSeq = -1
		f.stallUntil = done + f.cfg.RedirectPenalty
		if f.sink != nil {
			f.sink.Event(obs.Event{Cycle: int64(done), Kind: obs.EvRedirect, Arg: int64(f.stallUntil)})
		}
	}
}

// Dequeue pulls up to max fetched instructions in program order.
func (f *Frontend) Dequeue(now cache.Cycle, max int, out []isa.Instr) []isa.Instr {
	return f.q.PopReady(now, max, out)
}
