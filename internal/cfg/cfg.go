// Package cfg builds the profiling control-flow graph AsmDB consumes: basic
// blocks as nodes, dynamic control transfers as weighted edges, and per-
// block L1-I miss counts. The paper's AsmDB collects this from Intel LBR
// samples on production machines; here the profile comes from a pass over
// the workload's dynamic stream against a standalone L1-I cache model (see
// DESIGN.md §2 — the consumer only needs the weighted CFG and the miss
// ranking, not the mechanism that produced them).
package cfg

import (
	"errors"
	"fmt"
	"sort"

	"frontsim/internal/cache"
	"frontsim/internal/isa"
	"frontsim/internal/trace"
)

// MaxBlockInstrs mirrors the front-end's basic-block capacity so profiled
// blocks correspond one-to-one with FTQ entries.
const MaxBlockInstrs = 8

// Node is one profiled basic block.
type Node struct {
	// PC is the block start address.
	PC isa.Addr
	// Instrs is the block length in instructions (largest observed; blocks
	// are re-split identically on every visit, so this is stable).
	Instrs int
	// Execs counts block executions.
	Execs int64
	// Misses counts L1-I line misses attributed to fetching this block.
	Misses int64
	// Succs and Preds hold dynamic edge counts keyed by neighbour start
	// PC.
	Succs map[isa.Addr]int64
	Preds map[isa.Addr]int64
}

// Graph is the profiled CFG.
type Graph struct {
	Nodes map[isa.Addr]*Node
	// Instructions is the total dynamic instruction count profiled.
	Instructions int64
	// TotalMisses sums per-node misses.
	TotalMisses int64
	// IPC is the measured baseline IPC supplied by the caller (used by
	// AsmDB's minimum-distance heuristic); zero when unknown.
	IPC float64
}

// Node returns the node at pc, or nil.
func (g *Graph) Node(pc isa.Addr) *Node { return g.Nodes[pc] }

// MPKI returns profiled L1-I misses per thousand instructions.
func (g *Graph) MPKI() float64 {
	if g.Instructions == 0 {
		return 0
	}
	return float64(g.TotalMisses) / float64(g.Instructions) * 1000
}

// RankedByMisses returns the nodes ordered by descending miss count,
// breaking ties by PC for determinism.
func (g *Graph) RankedByMisses() []*Node {
	out := make([]*Node, 0, len(g.Nodes))
	for _, n := range g.Nodes {
		if n.Misses > 0 {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Misses != out[j].Misses {
			return out[i].Misses > out[j].Misses
		}
		return out[i].PC < out[j].PC
	})
	return out
}

// EdgeProb returns the probability that execution of from continues to to,
// estimated from dynamic edge counts.
func (g *Graph) EdgeProb(from, to isa.Addr) float64 {
	n := g.Nodes[from]
	if n == nil || n.Execs == 0 {
		return 0
	}
	return float64(n.Succs[to]) / float64(n.Execs)
}

// Options configures profiling.
type Options struct {
	// MaxInstrs bounds the profiled stream length (<=0 means unbounded).
	MaxInstrs int64
	// L1I configures the standalone instruction cache model used to
	// attribute misses; zero value selects the paper's 32 KiB / 8-way.
	L1I cache.LevelConfig
	// IPC records the measured baseline IPC into the graph.
	IPC float64
}

// flatMemory terminates the profiling cache: timing is irrelevant here,
// only hit/miss classification.
type flatMemory struct{}

func (flatMemory) Access(lineAddr isa.Addr, now cache.Cycle, kind cache.AccessKind) cache.Cycle {
	return now + 1
}

// Profile consumes src and builds the weighted CFG with miss attribution.
func Profile(src trace.Source, opts Options) (*Graph, error) {
	l1cfg := opts.L1I
	if l1cfg.SizeBytes == 0 {
		l1cfg = cache.LevelConfig{Name: "prof-L1I", SizeBytes: 32 << 10, Ways: 8, HitLatency: 1, Repl: cache.ReplLRU}
	}
	l1, err := cache.NewLevel(l1cfg, flatMemory{})
	if err != nil {
		return nil, fmt.Errorf("cfg: building profiling cache: %w", err)
	}

	g := &Graph{Nodes: make(map[isa.Addr]*Node), IPC: opts.IPC}
	var (
		prevBlock isa.Addr
		hasPrev   bool
		block     []isa.Instr
		now       cache.Cycle
	)

	flush := func() {
		if len(block) == 0 {
			return
		}
		start := block[0].PC
		n := g.Nodes[start]
		if n == nil {
			n = &Node{PC: start, Succs: make(map[isa.Addr]int64), Preds: make(map[isa.Addr]int64)}
			g.Nodes[start] = n
		}
		if len(block) > n.Instrs {
			n.Instrs = len(block)
		}
		n.Execs++
		// Attribute line misses to the block initiating the fetch.
		first := block[0].PC.Line()
		last := block[len(block)-1].PC.Line()
		for line := first; line <= last; line += isa.LineSize {
			now++
			before := l1.Stats().Misses
			l1.Access(line, now, cache.Demand)
			if l1.Stats().Misses > before {
				n.Misses++
				g.TotalMisses++
			}
		}
		if hasPrev {
			g.Nodes[prevBlock].Succs[start]++
			n.Preds[prevBlock]++
		}
		prevBlock = start
		hasPrev = true
		block = block[:0]
	}

	remaining := opts.MaxInstrs
	for {
		if opts.MaxInstrs > 0 && remaining == 0 {
			break
		}
		in, err := src.Next()
		if errors.Is(err, trace.ErrEnd) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("cfg: reading stream: %w", err)
		}
		remaining--
		g.Instructions++
		if len(block) > 0 {
			prev := block[len(block)-1]
			if in.PC != prev.PC+isa.InstrSize {
				// Should have been ended by a branch; treat as a break.
				flush()
			}
		}
		block = append(block, in)
		if in.Class.IsBranch() || len(block) == MaxBlockInstrs {
			flush()
		}
	}
	flush()
	return g, nil
}

// Validate checks graph invariants: edge flow conservation (outgoing edge
// counts never exceed executions plus one for the final open block) and
// Pred/Succ symmetry. Intended for tests.
func (g *Graph) Validate() error {
	for pc, n := range g.Nodes {
		if n.PC != pc {
			return fmt.Errorf("cfg: node keyed %v has PC %v", pc, n.PC)
		}
		var out int64
		for succ, c := range n.Succs {
			if c <= 0 {
				return fmt.Errorf("cfg: non-positive edge %v->%v", pc, succ)
			}
			s := g.Nodes[succ]
			if s == nil {
				return fmt.Errorf("cfg: dangling edge %v->%v", pc, succ)
			}
			if s.Preds[pc] != c {
				return fmt.Errorf("cfg: asymmetric edge %v->%v: %d vs %d", pc, succ, c, s.Preds[pc])
			}
			out += c
		}
		if out > n.Execs {
			return fmt.Errorf("cfg: node %v out-flow %d exceeds execs %d", pc, out, n.Execs)
		}
	}
	return nil
}
