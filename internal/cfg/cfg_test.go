package cfg

import (
	"testing"

	"frontsim/internal/isa"
	"frontsim/internal/trace"
	"frontsim/internal/workload"
)

// loopStream emits reps iterations of: blockA (4 instrs ending in a taken
// branch) -> blockB (2 instrs ending in a taken branch back to A).
func loopStream(reps int) []isa.Instr {
	var out []isa.Instr
	for r := 0; r < reps; r++ {
		out = append(out,
			isa.Instr{PC: 0x1000, Class: isa.ClassALU},
			isa.Instr{PC: 0x1004, Class: isa.ClassALU},
			isa.Instr{PC: 0x1008, Class: isa.ClassALU},
			isa.Instr{PC: 0x100c, Class: isa.ClassBranch, Taken: true, Target: 0x2000},
			isa.Instr{PC: 0x2000, Class: isa.ClassALU},
			isa.Instr{PC: 0x2004, Class: isa.ClassBranch, Taken: true, Target: 0x1000},
		)
	}
	return out
}

func TestProfileBuildsNodesAndEdges(t *testing.T) {
	g, err := Profile(trace.NewSlice(loopStream(100)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes) != 2 {
		t.Fatalf("nodes = %d, want 2", len(g.Nodes))
	}
	a, b := g.Node(0x1000), g.Node(0x2000)
	if a == nil || b == nil {
		t.Fatal("missing nodes")
	}
	if a.Execs != 100 || b.Execs != 100 {
		t.Fatalf("execs %d/%d", a.Execs, b.Execs)
	}
	if a.Instrs != 4 || b.Instrs != 2 {
		t.Fatalf("instr lengths %d/%d", a.Instrs, b.Instrs)
	}
	if a.Succs[0x2000] != 100 || b.Succs[0x1000] != 99 {
		t.Fatalf("edges %v %v", a.Succs, b.Succs)
	}
	if g.Instructions != 600 {
		t.Fatalf("instructions %d", g.Instructions)
	}
	if p := g.EdgeProb(0x1000, 0x2000); p != 1.0 {
		t.Fatalf("edge prob %v", p)
	}
}

func TestProfileMissAttribution(t *testing.T) {
	// Both blocks fit the cache: exactly one cold miss each.
	g, err := Profile(trace.NewSlice(loopStream(50)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g.TotalMisses != 2 {
		t.Fatalf("misses = %d, want 2 cold misses", g.TotalMisses)
	}
	if g.Node(0x1000).Misses != 1 || g.Node(0x2000).Misses != 1 {
		t.Fatal("misses not attributed per block")
	}
}

func TestProfileRespectsMaxInstrs(t *testing.T) {
	g, err := Profile(trace.NewSlice(loopStream(100)), Options{MaxInstrs: 60})
	if err != nil {
		t.Fatal(err)
	}
	if g.Instructions != 60 {
		t.Fatalf("instructions %d", g.Instructions)
	}
}

func TestProfileSplitsLongRuns(t *testing.T) {
	var instrs []isa.Instr
	pc := isa.Addr(0x400000)
	for i := 0; i < 20; i++ {
		instrs = append(instrs, isa.Instr{PC: pc, Class: isa.ClassALU})
		pc += isa.InstrSize
	}
	g, err := Profile(trace.NewSlice(instrs), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// 8 + 8 + 4.
	if len(g.Nodes) != 3 {
		t.Fatalf("nodes = %d, want 3", len(g.Nodes))
	}
	if g.Node(0x400000).Instrs != 8 {
		t.Fatal("first block not capped at 8")
	}
}

func TestRankedByMissesOrdering(t *testing.T) {
	s, _ := workload.Lookup("secret_srv12")
	src, err := s.NewSource()
	if err != nil {
		t.Fatal(err)
	}
	g, err := Profile(trace.NewLimit(src, 300_000), Options{IPC: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	ranked := g.RankedByMisses()
	if len(ranked) == 0 {
		t.Fatal("no miss targets on a server workload")
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Misses > ranked[i-1].Misses {
			t.Fatalf("ranking not descending at %d", i)
		}
	}
	if g.IPC != 0.5 {
		t.Fatalf("IPC not recorded: %v", g.IPC)
	}
	if g.MPKI() <= 0 {
		t.Fatal("MPKI should be positive")
	}
}

func TestGraphMPKIEmpty(t *testing.T) {
	g := &Graph{Nodes: map[isa.Addr]*Node{}}
	if g.MPKI() != 0 {
		t.Fatal("empty MPKI")
	}
	if g.EdgeProb(1, 2) != 0 {
		t.Fatal("missing edge prob should be 0")
	}
}
