// Package feedback prototypes the second of the paper's §VI proposals:
// feedback-directed software prefetching. The binary is periodically
// re-tuned — the number of inserted prefetches raised or lowered depending
// on their measured performance impact — without re-profiling, in the
// spirit of AutoFDO-style feedback loops.
//
// The prototype is a guided search over AsmDB's aggressiveness knobs
// (fanout threshold and sites-per-target): each candidate plan is applied
// and run, and the best-measured binary wins. A candidate that degrades
// IPC relative to the no-prefetch baseline is discarded, which is exactly
// the adaptation the paper argues an aggressive front-end needs.
package feedback

import (
	"fmt"

	"frontsim/internal/asmdb"
	"frontsim/internal/cfg"
	"frontsim/internal/core"
	"frontsim/internal/program"
)

// Candidate is one evaluated tuning point.
type Candidate struct {
	// Fanout and SitesPerTarget are the knob settings.
	Fanout         float64
	SitesPerTarget int
	// Insertions is the plan size at this point.
	Insertions int
	// IPC is the measured performance of the rewritten binary.
	IPC float64
	// Speedup is IPC over the no-prefetch baseline.
	Speedup float64
}

// Result reports a feedback-tuning session.
type Result struct {
	// BaselineIPC is the no-prefetch IPC on the evaluation config.
	BaselineIPC float64
	// Candidates lists every evaluated point in evaluation order.
	Candidates []Candidate
	// Best is the winning candidate; Best.Insertions == 0 means the
	// feedback loop chose to disable software prefetching entirely.
	Best Candidate
	// Program is the winning rewritten program (the original when
	// prefetching is disabled).
	Program *program.Program
	// Plan is the winning plan (nil when disabled).
	Plan *asmdb.Plan
}

// Options configures the tuning session.
type Options struct {
	// Base is the starting AsmDB configuration.
	Base asmdb.Options
	// Fanouts are the thresholds to explore (descending aggressiveness
	// order is conventional but not required).
	Fanouts []float64
	// SiteCounts are the per-target insertion budgets to explore.
	SiteCounts []int
	// Eval is the machine configuration used for measurement runs.
	Eval core.Config
	// ExecSeed drives the executor for every run.
	ExecSeed uint64
}

// DefaultOptions explores a small grid around the paper's configuration.
func DefaultOptions(eval core.Config, seed uint64) Options {
	return Options{
		Base:       asmdb.DefaultOptions(),
		Fanouts:    []float64{0.2, 0.3, 0.5},
		SiteCounts: []int{2, 4},
		Eval:       eval,
		ExecSeed:   seed,
	}
}

// Tune runs the feedback loop: measure the baseline, then measure each
// candidate rewriting, and keep the best binary. The profiled graph is
// reused across candidates (the §VI point: feedback avoids re-profiling).
func Tune(prog *program.Program, graph *cfg.Graph, opts Options) (*Result, error) {
	if len(opts.Fanouts) == 0 || len(opts.SiteCounts) == 0 {
		return nil, fmt.Errorf("feedback: empty search grid")
	}
	base, err := core.RunSource(opts.Eval, program.NewExecutor(prog, opts.ExecSeed))
	if err != nil {
		return nil, fmt.Errorf("feedback: baseline: %w", err)
	}
	res := &Result{
		BaselineIPC: base.IPC(),
		Best:        Candidate{IPC: base.IPC(), Speedup: 1},
		Program:     prog,
	}

	for _, fanout := range opts.Fanouts {
		for _, sites := range opts.SiteCounts {
			o := opts.Base
			o.FanoutThreshold = fanout
			o.MaxSitesPerTarget = sites
			plan, err := asmdb.Build(graph, o)
			if err != nil {
				return nil, fmt.Errorf("feedback: plan fanout=%v sites=%d: %w", fanout, sites, err)
			}
			rewritten, _, err := asmdb.Apply(prog, plan)
			if err != nil {
				return nil, fmt.Errorf("feedback: apply: %w", err)
			}
			st, err := core.RunSource(opts.Eval, program.NewExecutor(rewritten, opts.ExecSeed))
			if err != nil {
				return nil, fmt.Errorf("feedback: run: %w", err)
			}
			c := Candidate{
				Fanout:         fanout,
				SitesPerTarget: sites,
				Insertions:     len(plan.Insertions),
				IPC:            st.IPC(),
			}
			if res.BaselineIPC > 0 {
				c.Speedup = c.IPC / res.BaselineIPC
			}
			res.Candidates = append(res.Candidates, c)
			if c.IPC > res.Best.IPC {
				res.Best = c
				res.Program = rewritten
				res.Plan = plan
			}
		}
	}
	return res, nil
}
