package feedback

import (
	"testing"

	"frontsim/internal/cfg"
	"frontsim/internal/core"
	"frontsim/internal/program"
	"frontsim/internal/trace"
	"frontsim/internal/workload"
)

func setup(t *testing.T) (*program.Program, *cfg.Graph, Options) {
	t.Helper()
	spec, _ := workload.Lookup("public_srv_60")
	prog, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	seed := spec.Seed ^ 0x5eed
	graph, err := cfg.Profile(trace.NewLimit(program.NewExecutor(prog, seed), 300_000), cfg.Options{IPC: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	eval := core.DefaultConfig()
	eval.WarmupInstrs = 100_000
	eval.MaxInstrs = 250_000
	opts := DefaultOptions(eval, seed)
	opts.Fanouts = []float64{0.3, 0.6}
	opts.SiteCounts = []int{2}
	return prog, graph, opts
}

func TestTuneEvaluatesGrid(t *testing.T) {
	prog, graph, opts := setup(t)
	res, err := Tune(prog, graph, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != 2 {
		t.Fatalf("candidates = %d, want 2", len(res.Candidates))
	}
	if res.BaselineIPC <= 0 {
		t.Fatal("no baseline IPC")
	}
	for _, c := range res.Candidates {
		if c.IPC <= 0 || c.Insertions <= 0 {
			t.Fatalf("degenerate candidate %+v", c)
		}
	}
}

func TestTuneBestNeverWorseThanBaseline(t *testing.T) {
	prog, graph, opts := setup(t)
	res, err := Tune(prog, graph, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.IPC < res.BaselineIPC {
		t.Fatalf("best %.4f below baseline %.4f — feedback must fall back", res.Best.IPC, res.BaselineIPC)
	}
	if res.Program == nil {
		t.Fatal("no winning program")
	}
	// When a candidate wins, the winning program must contain its
	// insertions; when none wins, the original program is returned.
	if res.Best.Insertions > 0 {
		if res.Program.NumInstrs() != prog.NumInstrs()+res.Best.Insertions {
			t.Fatalf("winner has %d instrs, want %d+%d",
				res.Program.NumInstrs(), prog.NumInstrs(), res.Best.Insertions)
		}
		if res.Plan == nil {
			t.Fatal("winner without plan")
		}
	} else if res.Program != prog {
		t.Fatal("disabled prefetching must return the original program")
	}
}

func TestTuneEmptyGrid(t *testing.T) {
	prog, graph, opts := setup(t)
	opts.Fanouts = nil
	if _, err := Tune(prog, graph, opts); err == nil {
		t.Fatal("accepted empty grid")
	}
}

func TestTuneDeterministic(t *testing.T) {
	prog, graph, opts := setup(t)
	a, err := Tune(prog, graph, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Tune(prog, graph, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Best.Fanout != b.Best.Fanout || a.Best.IPC != b.Best.IPC {
		t.Fatalf("non-deterministic tuning: %+v vs %+v", a.Best, b.Best)
	}
}
