package experiment

import (
	"fmt"
	"math"
	"sort"

	"frontsim/internal/core"
	"frontsim/internal/stats"
	"frontsim/internal/workload"
)

// SamplingValidation runs every prefetch mechanism over specs twice — once
// exact and once with p.Sampling — and reports how well the sampled
// estimator tracks ground truth: the signed and absolute IPC error
// distribution per mechanism, and the fraction of cells whose 95%
// confidence interval contains the exact IPC (the estimator's headline
// contract: EXPERIMENTS.md requires >= 90% coverage). p.Sampling must be
// enabled; the exact leg reuses p with the sampling block cleared, so both
// legs share budgets, cache, and execution strategy.
//
// The summary table is returned along with the overall CI coverage
// fraction across all cells.
func SamplingValidation(specs []workload.Spec, p Params) (*stats.Table, float64, error) {
	if !p.Sampling.Enabled() {
		return nil, 0, fmt.Errorf("experiment: SamplingValidation needs p.Sampling enabled")
	}
	mechs := Mechanisms()
	for _, m := range mechs {
		if _, err := m.Config(p); err != nil {
			return nil, 0, fmt.Errorf("mechanism %s: %w", m.Label, err)
		}
	}
	mk := func(p Params) func(spec workload.Spec, ci int) core.Config {
		return func(spec workload.Spec, ci int) core.Config {
			c, err := mechs[ci].Config(p)
			if err != nil {
				panic(fmt.Sprintf("experiment: mechanism %s: %v", mechs[ci].Label, err))
			}
			return c
		}
	}
	exact := p
	exact.Sampling = core.SamplingConfig{}
	ground, err := sweep(specs, len(mechs), exact, mk(exact))
	if err != nil {
		return nil, 0, err
	}
	sampled, err := sweep(specs, len(mechs), p, mk(p))
	if err != nil {
		return nil, 0, err
	}

	t := stats.NewTable(
		fmt.Sprintf("Sampling validation: |IPC error| and 95%%-CI coverage (interval=%d detail=%d warm=%d)",
			p.Sampling.IntervalInstrs, p.Sampling.DetailInstrs, p.Sampling.WarmInstrs),
		"mechanism", "cells", "mean-err%", "mean|err|%", "p50|err|%", "p90|err|%", "max|err|%", "ci-cover%")
	var allAbs []float64
	covered, total := 0, 0
	for ci, m := range mechs {
		var signed, abs []float64
		cov := 0
		for si := range specs {
			g, s := ground[si][ci], sampled[si][ci]
			if s.Sampling == nil {
				return nil, 0, fmt.Errorf("cell %s/%s: sampled run lacks sampling stats", specs[si].Name, m.Label)
			}
			e := 100 * (s.Sampling.IPCMean() - g.IPC()) / g.IPC()
			signed = append(signed, e)
			abs = append(abs, math.Abs(e))
			if s.Sampling.ContainsIPC(g.IPC()) {
				cov++
			}
		}
		covered += cov
		total += len(specs)
		allAbs = append(allAbs, abs...)
		t.AddRow(m.Label,
			fmt.Sprint(len(specs)),
			fmt.Sprintf("%+.2f", stats.Mean(signed)),
			fmt.Sprintf("%.2f", stats.Mean(abs)),
			fmt.Sprintf("%.2f", percentile(abs, 0.50)),
			fmt.Sprintf("%.2f", percentile(abs, 0.90)),
			fmt.Sprintf("%.2f", stats.Max(abs)),
			fmt.Sprintf("%.1f", 100*float64(cov)/float64(len(specs))))
	}
	coverage := float64(covered) / float64(total)
	t.AddRow("overall",
		fmt.Sprint(total),
		"",
		fmt.Sprintf("%.2f", stats.Mean(allAbs)),
		fmt.Sprintf("%.2f", percentile(allAbs, 0.50)),
		fmt.Sprintf("%.2f", percentile(allAbs, 0.90)),
		fmt.Sprintf("%.2f", stats.Max(allAbs)),
		fmt.Sprintf("%.1f", 100*coverage))
	return t, coverage, nil
}

// percentile returns the q-quantile (0..1) of xs by nearest-rank on a
// sorted copy; 0 for an empty slice.
func percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	i := int(math.Ceil(q*float64(len(s)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}
