package experiment

import (
	"context"
	"encoding/json"
	"fmt"

	"frontsim/internal/asmdb"
	"frontsim/internal/cfg"
	"frontsim/internal/core"
	"frontsim/internal/program"
	"frontsim/internal/runner"
	"frontsim/internal/trace"
	"frontsim/internal/workload"
)

// This file is the single-cell surface of the experiment harness: one
// (workload, series) simulation, addressable before it runs, executable
// with cooperative cancellation, and cached under exactly the same keys
// the suite path uses — so a cell served over HTTP (internal/serve) and
// the same cell produced by cmd/experiments are byte-identical, sharing
// one run-cache entry.

// SeriesLabels returns the ten per-workload series names, in suite
// order: cons, fdp24, eip+fdp24, asmdb+cons, asmdb-ideal+cons,
// asmdb+fdp24, asmdb-ideal+fdp24, mana+fdp24, shadow+fdp24, itlb+fdp24.
func SeriesLabels() []string {
	out := make([]string, numSeries)
	copy(out, seriesLabels[:])
	return out
}

// seriesByLabel resolves a series name to its internal id.
func seriesByLabel(label string) (seriesID, error) {
	for id := seriesID(0); id < numSeries; id++ {
		if seriesLabels[id] == label {
			return id, nil
		}
	}
	return 0, fmt.Errorf("experiment: unknown series %q (valid: %v)", label, SeriesLabels())
}

// CellResult is one completed simulation cell.
type CellResult struct {
	// Stats is the cell's statistics snapshot, identical to what the
	// suite path would cache for the same key.
	Stats core.Stats
	// Fingerprint is the cell's content address: the run-cache address of
	// its full input identity (config fingerprint, workload, seed,
	// budgets, plan provenance). Equal fingerprints mean byte-identical
	// results.
	Fingerprint string
	// Cached reports whether the result came from the run cache without
	// simulating.
	Cached bool
}

// CellAddress returns the content address of the (workload, series) cell
// under p without running anything — the coalescing and cache-lookup key
// of the serving layer.
func CellAddress(spec workload.Spec, series string, p Params) (string, error) {
	id, err := seriesByLabel(series)
	if err != nil {
		return "", err
	}
	keys, err := newMatrixKeys(spec, p)
	if err != nil {
		return "", err
	}
	return runner.Fingerprint(keys.series[id])
}

// RunCellCtx produces one (workload, series) cell: from the run cache
// when warm, otherwise by simulating on pool with ctx plumbed through the
// scheduler join (runner.Group.WaitCtx) and the cycle loop (core.RunCtx).
// Plan-derived series (asmdb*, asmdb-ideal*) first materialize their
// dependencies — the conservative profiling baseline and the AsmDB plan —
// through the same cache, so a cold cell performs exactly the work the
// suite path would and leaves the same entries behind.
//
// A cancelled cell is never written to the cache: cancellation aborts the
// simulation before a result exists, and dependency results are cached
// only when their own runs complete. On cancellation the returned error
// wraps ctx.Err().
func RunCellCtx(ctx context.Context, pool *runner.Pool, spec workload.Spec, series string, p Params) (CellResult, error) {
	if err := p.Validate(); err != nil {
		return CellResult{}, err
	}
	id, err := seriesByLabel(series)
	if err != nil {
		return CellResult{}, err
	}
	keys, err := newMatrixKeys(spec, p)
	if err != nil {
		return CellResult{}, err
	}
	addr, err := runner.Fingerprint(keys.series[id])
	if err != nil {
		return CellResult{}, err
	}
	res := CellResult{Fingerprint: addr}
	if ok, err := p.Cache.Get(keys.series[id], &res.Stats); err != nil {
		return CellResult{}, err
	} else if ok {
		res.Cached = true
		p.obsRecord(&res.Stats, spec.Name, series)
		return res, nil
	}

	prog, err := spec.Build()
	if err != nil {
		return CellResult{}, err
	}
	execSeed := spec.Seed ^ p.ExecSeedSalt

	// runOne simulates cfg over target on the pool, joining with ctx, and
	// caches the result under key.
	runOne := func(cfgc core.Config, target *program.Program, key simKey) (core.Stats, error) {
		return runCellSim(ctx, pool, p, spec, cfgc, target, key)
	}

	switch id {
	case serCons, serFDP, serEIP, serMANAFDP, serShadowFDP, serITLBFDP:
		var cfgc core.Config
		switch id {
		case serCons:
			cfgc = p.consConfig()
		case serFDP:
			cfgc = p.fdpConfig()
		case serMANAFDP:
			if cfgc, err = p.manaConfig(); err != nil {
				return CellResult{}, err
			}
		case serShadowFDP:
			cfgc = p.shadowConfig()
		case serITLBFDP:
			cfgc = p.itlbConfig()
		default:
			if cfgc, err = p.eipConfig(); err != nil {
				return CellResult{}, err
			}
		}
		st, err := runOne(cfgc, prog, keys.series[id])
		if err != nil {
			return CellResult{}, err
		}
		res.Stats = st
		p.obsRecord(&res.Stats, spec.Name, series)
		return res, nil
	}

	// Plan-derived series: materialize the conservative baseline (the
	// profiling IPC source) and the plan, cache-first.
	var cons core.Stats
	if ok, err := p.Cache.Get(keys.series[serCons], &cons); err != nil {
		return CellResult{}, err
	} else if !ok {
		if cons, err = runOne(p.consConfig(), prog, keys.series[serCons]); err != nil {
			return CellResult{}, err
		}
	}
	var pe planEntry
	if ok, err := p.Cache.Get(keys.plan, &pe); err != nil {
		return CellResult{}, err
	} else if !ok {
		if err := ctx.Err(); err != nil {
			return CellResult{}, fmt.Errorf("%s plan: %w", spec.Name, err)
		}
		graph, err := cfg.Profile(trace.NewLimit(program.NewExecutor(prog, execSeed), p.ProfileInstrs),
			cfg.Options{IPC: cons.IPC()})
		if err != nil {
			return CellResult{}, fmt.Errorf("%s profile: %w", spec.Name, err)
		}
		if pe.Plan, err = asmdb.Build(graph, p.AsmDB); err != nil {
			return CellResult{}, fmt.Errorf("%s plan: %w", spec.Name, err)
		}
		pe.StaticBloat = pe.Plan.StaticBloat(prog)
		if err := p.Cache.Put(keys.plan, pe); err != nil {
			return CellResult{}, err
		}
	}

	cfgc := p.consConfig()
	if id == serAsmdbFDP || id == serAsmdbFDPIdeal {
		cfgc = p.fdpConfig()
	}
	target := prog
	switch id {
	case serAsmdbCons, serAsmdbFDP:
		if target, _, err = asmdb.Apply(prog, pe.Plan); err != nil {
			return CellResult{}, fmt.Errorf("%s apply: %w", spec.Name, err)
		}
	case serAsmdbConsIdeal, serAsmdbFDPIdeal:
		cfgc.Triggers = asmdb.Triggers(prog, pe.Plan)
	}
	st, err := runOne(cfgc, target, keys.series[id])
	if err != nil {
		return CellResult{}, err
	}
	res.Stats = st
	p.obsRecord(&res.Stats, spec.Name, series)
	return res, nil
}

// runCellSim executes one configuration against target on the pool,
// joining with ctx (runner.Group.WaitCtx) while the task itself polls the
// same ctx (core.RunSourceCtx) — so an abandoned join stops the
// simulation instead of stranding it on a worker — and caches the result
// under key only when the run completes.
func runCellSim(ctx context.Context, pool *runner.Pool, p Params, spec workload.Spec, cfgc core.Config, target *program.Program, key simKey) (core.Stats, error) {
	var st core.Stats
	g := pool.NewGroup()
	g.Go(func() error {
		s, err := core.RunSourceCtx(ctx, cfgc, program.NewExecutor(target, key.ExecSeed))
		if err != nil {
			return err
		}
		st = s
		return p.Cache.Put(key, s)
	})
	if err := g.WaitCtx(ctx); err != nil {
		return core.Stats{}, fmt.Errorf("%s %s: %w", spec.Name, cfgc.Name, err)
	}
	return st, nil
}

// ProbeCell looks a (workload, series) cell up in the cache without
// executing anything: the serving layer's hot path. It returns the cell's
// content address in either case.
func ProbeCell(spec workload.Spec, series string, p Params) (core.Stats, string, bool, error) {
	id, err := seriesByLabel(series)
	if err != nil {
		return core.Stats{}, "", false, err
	}
	keys, err := newMatrixKeys(spec, p)
	if err != nil {
		return core.Stats{}, "", false, err
	}
	addr, err := runner.Fingerprint(keys.series[id])
	if err != nil {
		return core.Stats{}, "", false, err
	}
	var st core.Stats
	ok, err := p.Cache.Get(keys.series[id], &st)
	return st, addr, ok, err
}

// StoreCellBytes writes raw — a core.Stats CanonicalJSON — into p.Cache
// under the (workload, series) cell's key, verbatim: the write-back path
// of the serving layer's peer cache fill. Storing the home node's bytes
// unmodified (rather than decode-and-re-encode) keeps the local cache
// entry byte-identical to the home's, so a sharded cluster converges to
// identical files. The bytes must decode as a stats snapshot (unknown
// fields rejected); anything else is refused before touching the cache.
func StoreCellBytes(spec workload.Spec, series string, p Params, raw []byte) error {
	if _, err := core.StatsFromJSON(raw); err != nil {
		return fmt.Errorf("experiment: refusing to store cell bytes: %w", err)
	}
	id, err := seriesByLabel(series)
	if err != nil {
		return err
	}
	keys, err := newMatrixKeys(spec, p)
	if err != nil {
		return err
	}
	return p.Cache.Put(keys.series[id], json.RawMessage(raw))
}

// StoreConfigCellBytes is StoreCellBytes for an arbitrary configuration
// against the workload's unmodified program.
func StoreConfigCellBytes(spec workload.Spec, c core.Config, p Params, raw []byte) error {
	if _, err := core.StatsFromJSON(raw); err != nil {
		return fmt.Errorf("experiment: refusing to store cell bytes: %w", err)
	}
	return p.Cache.Put(baseSimKey(spec, p, c), json.RawMessage(raw))
}

// ConfigCellAddress returns the content address of a run of c against
// spec's unmodified program under p — the identity ablation sweeps use
// for the same configuration.
func ConfigCellAddress(spec workload.Spec, c core.Config, p Params) (string, error) {
	return runner.Fingerprint(baseSimKey(spec, p, c))
}

// ProbeConfigCell is ProbeCell for an arbitrary configuration against the
// workload's unmodified program.
func ProbeConfigCell(spec workload.Spec, c core.Config, p Params) (core.Stats, string, bool, error) {
	key := baseSimKey(spec, p, c)
	addr, err := runner.Fingerprint(key)
	if err != nil {
		return core.Stats{}, "", false, err
	}
	var st core.Stats
	ok, err := p.Cache.Get(key, &st)
	return st, addr, ok, err
}

// RunConfigCellCtx runs an arbitrary whole-machine configuration against
// the workload's unmodified program — the serving layer's config-override
// and ablation cells — cached under exactly the key an ablation sweep of
// the same configuration would use, so served and swept cells share
// entries.
func RunConfigCellCtx(ctx context.Context, pool *runner.Pool, spec workload.Spec, c core.Config, p Params) (CellResult, error) {
	if err := p.Validate(); err != nil {
		return CellResult{}, err
	}
	if err := c.Validate(); err != nil {
		return CellResult{}, err
	}
	key := baseSimKey(spec, p, c)
	addr, err := runner.Fingerprint(key)
	if err != nil {
		return CellResult{}, err
	}
	res := CellResult{Fingerprint: addr}
	if ok, err := p.Cache.Get(key, &res.Stats); err != nil {
		return CellResult{}, err
	} else if ok {
		res.Cached = true
		p.obsRecord(&res.Stats, spec.Name, c.Name)
		return res, nil
	}
	prog, err := spec.Build()
	if err != nil {
		return CellResult{}, err
	}
	st, err := runCellSim(ctx, pool, p, spec, c, prog, key)
	if err != nil {
		return CellResult{}, err
	}
	res.Stats = st
	p.obsRecord(&res.Stats, spec.Name, c.Name)
	return res, nil
}
