// Package experiment defines one runnable experiment per table and figure
// in the paper's evaluation, plus the ablations called out in DESIGN.md.
// The unit of work is the Matrix: for one workload, the six configurations
// Figure 1 compares (conservative baseline, AsmDB and ideal AsmDB on the
// conservative front-end, the industry-standard 24-entry FDP, and AsmDB /
// ideal AsmDB on top of it), plus the characterization-matrix mechanisms
// layered on FDP: the EIP and MANA hardware prefetchers, shadow-branch
// decoding, and the I-TLB model. Every figure is then a projection of the
// suite's matrices.
//
// Execution is decomposed into per-(workload, configuration) jobs on the
// internal/runner work-stealing pool — so one slow workload's ten
// configurations spread across idle workers instead of serializing — and
// every simulation run is keyed into the runner's content-addressed cache
// by (config fingerprint, workload spec, seed, budgets, plan provenance),
// making warm re-runs near-instant. The cache is only sound because runs
// are bit-deterministic; TestDeterminismAcrossParallelism guards that.
package experiment

import (
	"fmt"

	"frontsim/internal/asmdb"
	"frontsim/internal/bpu"
	"frontsim/internal/cache"
	"frontsim/internal/cfg"
	"frontsim/internal/core"
	"frontsim/internal/hwpf"
	"frontsim/internal/obs"
	"frontsim/internal/program"
	"frontsim/internal/runner"
	"frontsim/internal/trace"
	"frontsim/internal/workload"
)

// Params controls simulation scale. The paper simulates 100M instructions
// per trace; the defaults here are scaled down for laptop-class runtimes
// and can be raised via cmd/experiments flags (see EXPERIMENTS.md).
type Params struct {
	// WarmupInstrs run before measurement begins.
	WarmupInstrs int64
	// MeasureInstrs are measured program instructions per run.
	MeasureInstrs int64
	// ProfileInstrs is the AsmDB profiling stream length.
	ProfileInstrs int64
	// Parallelism bounds pool workers (<=0: GOMAXPROCS). Results are
	// bit-identical at every setting; a goroutine joining a job group also
	// executes that group's queued jobs, so effective concurrency can
	// briefly exceed this bound by the number of concurrent waiters.
	Parallelism int
	// AsmDB tunes the software prefetcher.
	AsmDB asmdb.Options
	// ExecSeedSalt separates executor randomness from structural seeds.
	ExecSeedSalt uint64
	// Cache, when non-nil, is consulted before and filled after every
	// simulation run. Never part of a cache key itself.
	Cache *runner.Cache `json:"-"`
	// Audit turns on per-cycle invariant checking (core.Config.Audit) for
	// every simulated cell. Observational only: fingerprints, cache keys
	// and results are identical with it on or off, so it is excluded from
	// serialized keys. Cached cells are not re-simulated — run against a
	// cold cache to audit the whole matrix.
	Audit bool `json:"-"`
	// Obs, when non-nil, collects one MetricSet per completed simulation
	// cell — cached and live alike, so a warm suite reports the same
	// metrics as a cold one. Observational only; never part of cache keys.
	Obs *obs.SuiteCollector `json:"-"`
	// ObsRun, when non-nil, supplies a per-run observability sink (cycle
	// samples + event trace) for each *live* simulation, keyed by workload
	// and series label. Sinks that implement io.Closer are closed when the
	// run finishes. Cached cells never invoke it — there is no simulation
	// to observe. Observational only; never part of cache keys.
	ObsRun func(workload, series string) obs.Sink `json:"-"`
	// FastForward enables the event-driven cycle-skipping fast path
	// (core.Config.FastForward) for every simulated cell. Results are
	// byte-identical with it on or off (TestFastForwardEquivalence), so it
	// is excluded from fingerprints and cache keys: fast-forwarded and
	// cycle-stepped runs share cache entries. DefaultParams turns it on.
	FastForward bool `json:"-"`
	// Sampling selects SMARTS-style sampled simulation
	// (core.Config.Sampling) for every simulated cell. Unlike Audit,
	// FastForward and Batch it is *semantic*: the sampling geometry is part
	// of every config fingerprint, so sampled and exact cells never share
	// run-cache entries, and sampled Stats carry the per-window CPI
	// estimate (core.SamplingStats) the tables render as ± confidence
	// half-widths. The zero value keeps every cell exact. MaxInstrs still
	// bounds the covered stream region, so a sampled suite traverses the
	// same instructions as its exact counterpart. Extension pipelines
	// (X1/X2) always run exact: their tuning loops compare absolute IPC
	// across rewritten programs, where sampling noise would feed back into
	// plan selection.
	Sampling core.SamplingConfig
	// Batch groups a workload's cold cells into one lockstep batch job:
	// the instruction stream is generated and decoded once per workload
	// and fanned out to every cold config's simulator (trace.Fanout +
	// core.RunBatch). Purely an execution strategy: per-cell cache
	// identities, fingerprints and results are byte-identical with it on
	// or off (TestBatchEquivalence), so it is excluded from serialized
	// keys and batched and per-cell runs share cache entries. Warm cells
	// are served from the cache and never join a batch. DefaultParams
	// turns it on.
	Batch bool `json:"-"`
}

// obsRecord exports one cell's metrics to the suite collector.
func (p Params) obsRecord(st *core.Stats, wl, series string) {
	if p.Obs == nil {
		return
	}
	p.Obs.Record(st.MetricSet(
		obs.Label{Key: "workload", Value: wl},
		obs.Label{Key: "series", Value: series},
	))
}

// DefaultParams returns the scaled-down defaults.
func DefaultParams() Params {
	return Params{
		WarmupInstrs:  500_000,
		MeasureInstrs: 1_500_000,
		ProfileInstrs: 2_000_000,
		AsmDB:         asmdb.DefaultOptions(),
		ExecSeedSalt:  0x5eed5eed5eed5eed,
		FastForward:   true,
		Batch:         true,
	}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.WarmupInstrs < 0 || p.MeasureInstrs <= 0 || p.ProfileInstrs <= 0 {
		return fmt.Errorf("experiment: instruction budgets %+v", p)
	}
	if err := p.Sampling.Validate(); err != nil {
		return err
	}
	return p.AsmDB.Validate()
}

// Matrix holds every per-workload measurement the figures project.
type Matrix struct {
	Spec  workload.Spec
	Index int // 1-based position in the suite (figure x-axis)

	Plan        *asmdb.Plan
	StaticBloat float64

	// The six Figure-1 series, the EIP hardware comparator, and the
	// characterization-matrix mechanisms (MANA, shadow-branch decoding,
	// I-TLB), all layered on the industry-standard FDP front-end.
	Cons           core.Stats // conservative 2-entry FTQ baseline
	AsmdbCons      core.Stats // AsmDB on conservative
	AsmdbConsIdeal core.Stats // AsmDB, no insertion overhead, conservative
	FDP            core.Stats // industry-standard 24-entry FTQ
	AsmdbFDP       core.Stats // AsmDB on FDP
	AsmdbFDPIdeal  core.Stats // AsmDB, no insertion overhead, on FDP
	EIPFDP         core.Stats // EIP hardware prefetcher on FDP
	MANAFDP        core.Stats // MANA spatial-region prefetcher on FDP
	ShadowFDP      core.Stats // shadow-branch decoding on FDP
	ITLBFDP        core.Stats // I-TLB model (prefetch dropping) on FDP
}

// Speedup returns st's IPC normalized to the conservative baseline.
func (m *Matrix) Speedup(st core.Stats) float64 {
	// IPC is zero exactly when nothing was measured; test the integer
	// counters it is derived from rather than the float.
	if m.Cons.Cycles == 0 || m.Cons.Instructions == 0 {
		return 0
	}
	return st.IPC() / m.Cons.IPC()
}

// seriesID indexes the ten per-workload configurations.
type seriesID int

const (
	serCons seriesID = iota
	serFDP
	serEIP
	serAsmdbCons
	serAsmdbConsIdeal
	serAsmdbFDP
	serAsmdbFDPIdeal
	serMANAFDP
	serShadowFDP
	serITLBFDP
	numSeries
)

// seriesLabels name the series in cache keys and progress lines.
var seriesLabels = [numSeries]string{
	"cons", "fdp24", "eip+fdp24",
	"asmdb+cons", "asmdb-ideal+cons", "asmdb+fdp24", "asmdb-ideal+fdp24",
	"mana+fdp24", "shadow+fdp24", "itlb+fdp24",
}

func (m *Matrix) seriesPtr(id seriesID) *core.Stats {
	switch id {
	case serCons:
		return &m.Cons
	case serFDP:
		return &m.FDP
	case serEIP:
		return &m.EIPFDP
	case serAsmdbCons:
		return &m.AsmdbCons
	case serAsmdbConsIdeal:
		return &m.AsmdbConsIdeal
	case serAsmdbFDP:
		return &m.AsmdbFDP
	case serAsmdbFDPIdeal:
		return &m.AsmdbFDPIdeal
	case serMANAFDP:
		return &m.MANAFDP
	case serShadowFDP:
		return &m.ShadowFDP
	case serITLBFDP:
		return &m.ITLBFDP
	}
	panic(fmt.Sprintf("experiment: series %d", id))
}

// cacheSchema versions the run-cache key layout. Bump together with
// core.FingerprintSchema when key semantics change. Schema 2: ftq.Stats
// gained the per-cycle scenario partition, changing the cached Stats value
// shape. Schema 3: core.Stats gained WarmupOvershoot. Schema 4: the run
// loop gained the event-driven fast-forward path; entries written by
// pre-fast-forward binaries are retired rather than reused across the
// semantics boundary (TestStaleSchemaEntryRejected). Schema 5: the
// mechanism matrix — MANA, shadow-branch decoding, and the I-TLB became
// config dimensions and Stats gained their counter blocks, so schema-4
// entries decode with those counters silently zero and are retired.
// Schema 6: sampled simulation — core.Config.Sampling joined the
// fingerprinted canonical form (sampled and exact runs must never share
// entries) and core.Stats gained the optional Sampling estimate block, so
// schema-5 entries are retired across the value-shape boundary.
const cacheSchema = 6

// Program-variant tags in run-cache keys. The config fingerprint cannot
// see which instruction stream it runs against, so the key must.
const (
	progBase     = "base"          // the workload's generated program
	progAsmdb    = "asmdb"         // AsmDB-rewritten program
	progTriggers = "base+triggers" // base program plus plan-derived trigger table
)

// simKey is the canonical identity of one simulation run: everything that
// determines its Stats bit-for-bit, and nothing else. For plan-derived
// runs (rewritten programs, trigger tables) the plan's full provenance —
// AsmDB options, profile budget, and the fingerprint of the configuration
// whose IPC seeds the profiler — stands in for the plan content, because
// planning is a deterministic function of that provenance.
type simKey struct {
	Schema        int            `json:"schema"`
	Kind          string         `json:"kind"`
	Workload      workload.Spec  `json:"workload"`
	Program       string         `json:"program"`
	AsmDB         *asmdb.Options `json:"asmdb,omitempty"`
	ProfileInstrs int64          `json:"profile_instrs,omitempty"`
	ProfileConfig string         `json:"profile_config,omitempty"`
	Config        string         `json:"config"`
	ExecSeed      uint64         `json:"exec_seed"`
}

// planKey addresses the cached AsmDB plan (and its static bloat) for one
// workload under one profiling setup.
type planKey struct {
	Schema        int           `json:"schema"`
	Kind          string        `json:"kind"`
	Workload      workload.Spec `json:"workload"`
	AsmDB         asmdb.Options `json:"asmdb"`
	ProfileInstrs int64         `json:"profile_instrs"`
	ProfileConfig string        `json:"profile_config"`
	ExecSeed      uint64        `json:"exec_seed"`
}

// planEntry is the cached plan value.
type planEntry struct {
	Plan        *asmdb.Plan `json:"plan"`
	StaticBloat float64     `json:"static_bloat"`
}

// matrixKeys precomputes the cache identities of a workload's runs. All of
// them are derivable before anything executes, which is what lets a fully
// warm workload skip even building its program.
type matrixKeys struct {
	series [numSeries]simKey
	plan   planKey
}

func (p Params) consConfig() core.Config {
	c := core.ConservativeConfig()
	c.WarmupInstrs, c.MaxInstrs = p.WarmupInstrs, p.MeasureInstrs
	c.Audit = p.Audit
	c.FastForward = p.FastForward
	c.Sampling = p.Sampling
	return c
}

func (p Params) fdpConfig() core.Config {
	c := core.DefaultConfig()
	c.WarmupInstrs, c.MaxInstrs = p.WarmupInstrs, p.MeasureInstrs
	c.Audit = p.Audit
	c.FastForward = p.FastForward
	c.Sampling = p.Sampling
	return c
}

func (p Params) eipConfig() (core.Config, error) {
	c := p.fdpConfig()
	eip, err := hwpf.NewEIP(hwpf.DefaultEIPConfig())
	if err != nil {
		return c, err
	}
	c.Frontend.Prefetcher = eip
	return c, nil
}

// manaConfig layers the MANA spatial-region prefetcher on the FDP
// front-end, mirroring eipConfig's shape for the hardware comparator.
func (p Params) manaConfig() (core.Config, error) {
	c := p.fdpConfig()
	mana, err := hwpf.NewMANA(hwpf.DefaultMANAConfig())
	if err != nil {
		return c, err
	}
	c.Frontend.Prefetcher = mana
	return c, nil
}

// shadowConfig enables shadow-branch decoding on the FDP front-end.
func (p Params) shadowConfig() core.Config {
	c := p.fdpConfig()
	c.Frontend.Shadow = bpu.DefaultShadowConfig()
	return c
}

// itlbConfig enables the I-TLB model (with prefetch dropping) on the FDP
// front-end.
func (p Params) itlbConfig() core.Config {
	c := p.fdpConfig()
	c.Memory.ITLB = cache.DefaultITLBConfig()
	return c
}

func newMatrixKeys(spec workload.Spec, p Params) (matrixKeys, error) {
	eipCfg, err := p.eipConfig()
	if err != nil {
		return matrixKeys{}, err
	}
	manaCfg, err := p.manaConfig()
	if err != nil {
		return matrixKeys{}, err
	}
	consFP := p.consConfig().Fingerprint()
	fdpFP := p.fdpConfig().Fingerprint()
	eipFP := eipCfg.Fingerprint()
	manaFP := manaCfg.Fingerprint()
	shadowFP := p.shadowConfig().Fingerprint()
	itlbFP := p.itlbConfig().Fingerprint()
	seed := spec.Seed ^ p.ExecSeedSalt
	opts := p.AsmDB

	base := func(cfgFP string) simKey {
		return simKey{Schema: cacheSchema, Kind: "sim", Workload: spec,
			Program: progBase, Config: cfgFP, ExecSeed: seed}
	}
	planned := func(prog, cfgFP string) simKey {
		k := base(cfgFP)
		k.Program = prog
		k.AsmDB = &opts
		k.ProfileInstrs = p.ProfileInstrs
		k.ProfileConfig = consFP
		return k
	}
	var mk matrixKeys
	mk.series[serCons] = base(consFP)
	mk.series[serFDP] = base(fdpFP)
	mk.series[serEIP] = base(eipFP)
	mk.series[serAsmdbCons] = planned(progAsmdb, consFP)
	mk.series[serAsmdbConsIdeal] = planned(progTriggers, consFP)
	mk.series[serAsmdbFDP] = planned(progAsmdb, fdpFP)
	mk.series[serAsmdbFDPIdeal] = planned(progTriggers, fdpFP)
	mk.series[serMANAFDP] = base(manaFP)
	mk.series[serShadowFDP] = base(shadowFP)
	mk.series[serITLBFDP] = base(itlbFP)
	mk.plan = planKey{Schema: cacheSchema, Kind: "plan", Workload: spec,
		AsmDB: opts, ProfileInstrs: p.ProfileInstrs, ProfileConfig: consFP, ExecSeed: seed}
	return mk, nil
}

// RunMatrix builds the workload, profiles it, generates and applies the
// AsmDB plan, and runs all ten configurations, parallelized over a
// private pool and cached through p.Cache when set.
func RunMatrix(spec workload.Spec, index int, p Params) (*Matrix, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	pool := runner.NewPool(p.Parallelism)
	defer pool.Close()
	return runMatrixPooled(pool, spec, index, p, nil)
}

// runMatrixPooled executes one workload's matrix on a shared pool. It
// probes the cache for every series first; whatever is missing runs as
// per-configuration jobs in two fork-join waves (plain-program runs, then
// plan-derived runs, which need the baseline IPC to profile against).
func runMatrixPooled(pool *runner.Pool, spec workload.Spec, index int, p Params, pr *runner.Progress) (*Matrix, error) {
	m := &Matrix{Spec: spec, Index: index}
	keys, err := newMatrixKeys(spec, p)
	if err != nil {
		return nil, err
	}

	var have [numSeries]bool
	missing := 0
	for id := seriesID(0); id < numSeries; id++ {
		ok, err := p.Cache.Get(keys.series[id], m.seriesPtr(id))
		if err != nil {
			return nil, err
		}
		have[id] = ok
		if ok {
			p.obsRecord(m.seriesPtr(id), spec.Name, seriesLabels[id])
			pr.JobDone(spec.Name+"/"+seriesLabels[id], true)
		} else {
			missing++
		}
	}
	var pe planEntry
	havePlan, err := p.Cache.Get(keys.plan, &pe)
	if err != nil {
		return nil, err
	}
	if havePlan {
		m.Plan, m.StaticBloat = pe.Plan, pe.StaticBloat
	}
	if havePlan && missing == 0 {
		return m, nil
	}

	prog, err := spec.Build()
	if err != nil {
		return nil, err
	}
	execSeed := spec.Seed ^ p.ExecSeedSalt

	// seriesCell wraps one cold series as a batchCell; its commit is the
	// exact post-run sequence the historical per-series jobs performed.
	seriesCell := func(id seriesID, c core.Config) batchCell {
		return batchCell{
			cfg: c,
			wl:  spec.Name, series: seriesLabels[id],
			label: spec.Name + " " + seriesLabels[id],
			commit: func(st core.Stats) error {
				*m.seriesPtr(id) = st
				if err := p.Cache.Put(keys.series[id], st); err != nil {
					return err
				}
				p.obsRecord(&st, spec.Name, seriesLabels[id])
				pr.JobDone(spec.Name+"/"+seriesLabels[id], false)
				return nil
			},
		}
	}

	// Wave 1: runs against the unmodified program — one lockstep batch
	// over a shared stream when batching is on. The conservative baseline
	// doubles as the profiling IPC source, as the paper profiles on the
	// pre-FDP machine AsmDB's authors evaluated.
	g := pool.NewGroup()
	var w1 []batchCell
	if !have[serCons] {
		w1 = append(w1, seriesCell(serCons, p.consConfig()))
	}
	if !have[serFDP] {
		w1 = append(w1, seriesCell(serFDP, p.fdpConfig()))
	}
	if !have[serEIP] {
		c, err := p.eipConfig()
		if err != nil {
			return nil, err
		}
		w1 = append(w1, seriesCell(serEIP, c))
	}
	if !have[serMANAFDP] {
		c, err := p.manaConfig()
		if err != nil {
			return nil, err
		}
		w1 = append(w1, seriesCell(serMANAFDP, c))
	}
	if !have[serShadowFDP] {
		w1 = append(w1, seriesCell(serShadowFDP, p.shadowConfig()))
	}
	if !have[serITLBFDP] {
		w1 = append(w1, seriesCell(serITLBFDP, p.itlbConfig()))
	}
	dispatchCells(g, p, prog, execSeed, w1)
	if err := g.Wait(); err != nil {
		return nil, err
	}

	needPlanned := !have[serAsmdbCons] || !have[serAsmdbConsIdeal] ||
		!have[serAsmdbFDP] || !have[serAsmdbFDPIdeal]
	if !havePlan {
		graph, err := cfg.Profile(trace.NewLimit(program.NewExecutor(prog, execSeed), p.ProfileInstrs),
			cfg.Options{IPC: m.Cons.IPC()})
		if err != nil {
			return nil, fmt.Errorf("%s profile: %w", spec.Name, err)
		}
		if m.Plan, err = asmdb.Build(graph, p.AsmDB); err != nil {
			return nil, fmt.Errorf("%s plan: %w", spec.Name, err)
		}
		m.StaticBloat = m.Plan.StaticBloat(prog)
		if err := p.Cache.Put(keys.plan, planEntry{Plan: m.Plan, StaticBloat: m.StaticBloat}); err != nil {
			return nil, err
		}
	}

	// Wave 2: runs that need the plan — the rewritten program for the
	// insertion-overhead series, the trigger table for the ideal ones.
	// Two distinct instruction streams, so two batches: cells over the
	// rewritten program, and trigger-table cells over the base program.
	if needPlanned {
		rewritten, _, err := asmdb.Apply(prog, m.Plan)
		if err != nil {
			return nil, fmt.Errorf("%s apply: %w", spec.Name, err)
		}
		triggers := asmdb.Triggers(prog, m.Plan)
		withTriggers := func(c core.Config) core.Config {
			c.Triggers = triggers
			return c
		}
		g = pool.NewGroup()
		var rw, trg []batchCell
		if !have[serAsmdbCons] {
			rw = append(rw, seriesCell(serAsmdbCons, p.consConfig()))
		}
		if !have[serAsmdbFDP] {
			rw = append(rw, seriesCell(serAsmdbFDP, p.fdpConfig()))
		}
		if !have[serAsmdbConsIdeal] {
			trg = append(trg, seriesCell(serAsmdbConsIdeal, withTriggers(p.consConfig())))
		}
		if !have[serAsmdbFDPIdeal] {
			trg = append(trg, seriesCell(serAsmdbFDPIdeal, withTriggers(p.fdpConfig())))
		}
		dispatchCells(g, p, rewritten, execSeed, rw)
		dispatchCells(g, p, prog, execSeed, trg)
		if err := g.Wait(); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// RunSuite runs matrices for every spec, in parallel, preserving order.
// progress (optional) receives one line per completed workload.
func RunSuite(specs []workload.Spec, p Params, progress func(string)) ([]*Matrix, error) {
	return RunSuiteMonitor(specs, p, progress, nil)
}

// RunSuiteMonitor is RunSuite with an additional per-job channel:
// jobProgress (optional) receives one line per completed
// (workload, configuration) simulation, with elapsed time and ETA.
func RunSuiteMonitor(specs []workload.Spec, p Params, progress, jobProgress func(string)) ([]*Matrix, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	pool := runner.NewPool(p.Parallelism)
	defer pool.Close()
	pr := runner.NewProgress(jobProgress)
	pr.AddTotal(int(numSeries) * len(specs))

	out := make([]*Matrix, len(specs))
	errs := make([]error, len(specs))
	g := pool.NewGroup()
	for i, spec := range specs {
		i, spec := i, spec
		g.Go(func() error {
			m, err := runMatrixPooled(pool, spec, i+1, p, pr)
			out[i], errs[i] = m, err
			if progress != nil {
				if err != nil {
					progress(fmt.Sprintf("[%2d/%d] %-18s FAILED: %v", i+1, len(specs), spec.Name, err))
				} else {
					progress(fmt.Sprintf("[%2d/%d] %-18s base=%.3f fdp=%.3f asmdb+fdp=%.3f mpki=%.1f",
						i+1, len(specs), spec.Name, m.Cons.IPC(), m.Speedup(m.FDP), m.Speedup(m.AsmdbFDP), m.FDP.L1IMPKI()))
				}
			}
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("workload %d (%s): %w", i+1, specs[i].Name, err)
		}
	}
	return out, nil
}
