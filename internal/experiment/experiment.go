// Package experiment defines one runnable experiment per table and figure
// in the paper's evaluation, plus the ablations called out in DESIGN.md.
// The unit of work is the Matrix: for one workload, the six configurations
// Figure 1 compares (conservative baseline, AsmDB and ideal AsmDB on the
// conservative front-end, the industry-standard 24-entry FDP, and AsmDB /
// ideal AsmDB on top of it), plus an EIP hardware-prefetching series.
// Every figure is then a projection of the suite's matrices.
package experiment

import (
	"fmt"
	"runtime"
	"sync"

	"frontsim/internal/asmdb"
	"frontsim/internal/cfg"
	"frontsim/internal/core"
	"frontsim/internal/hwpf"
	"frontsim/internal/program"
	"frontsim/internal/trace"
	"frontsim/internal/workload"
)

// Params controls simulation scale. The paper simulates 100M instructions
// per trace; the defaults here are scaled down for laptop-class runtimes
// and can be raised via cmd/experiments flags (see EXPERIMENTS.md).
type Params struct {
	// WarmupInstrs run before measurement begins.
	WarmupInstrs int64
	// MeasureInstrs are measured program instructions per run.
	MeasureInstrs int64
	// ProfileInstrs is the AsmDB profiling stream length.
	ProfileInstrs int64
	// Parallelism bounds concurrent workload matrices (<=0: GOMAXPROCS).
	Parallelism int
	// AsmDB tunes the software prefetcher.
	AsmDB asmdb.Options
	// ExecSeedSalt separates executor randomness from structural seeds.
	ExecSeedSalt uint64
}

// DefaultParams returns the scaled-down defaults.
func DefaultParams() Params {
	return Params{
		WarmupInstrs:  500_000,
		MeasureInstrs: 1_500_000,
		ProfileInstrs: 2_000_000,
		AsmDB:         asmdb.DefaultOptions(),
		ExecSeedSalt:  0x5eed5eed5eed5eed,
	}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.WarmupInstrs < 0 || p.MeasureInstrs <= 0 || p.ProfileInstrs <= 0 {
		return fmt.Errorf("experiment: instruction budgets %+v", p)
	}
	return p.AsmDB.Validate()
}

// Matrix holds every per-workload measurement the figures project.
type Matrix struct {
	Spec  workload.Spec
	Index int // 1-based position in the suite (figure x-axis)

	Plan        *asmdb.Plan
	StaticBloat float64

	// The six Figure-1 series plus the EIP hardware comparator.
	Cons           core.Stats // conservative 2-entry FTQ baseline
	AsmdbCons      core.Stats // AsmDB on conservative
	AsmdbConsIdeal core.Stats // AsmDB, no insertion overhead, conservative
	FDP            core.Stats // industry-standard 24-entry FTQ
	AsmdbFDP       core.Stats // AsmDB on FDP
	AsmdbFDPIdeal  core.Stats // AsmDB, no insertion overhead, on FDP
	EIPFDP         core.Stats // EIP hardware prefetcher on FDP
}

// Speedup returns st's IPC normalized to the conservative baseline.
func (m *Matrix) Speedup(st core.Stats) float64 {
	base := m.Cons.IPC()
	if base == 0 {
		return 0
	}
	return st.IPC() / base
}

// RunMatrix builds the workload, profiles it, generates and applies the
// AsmDB plan, and runs all seven configurations.
func RunMatrix(spec workload.Spec, index int, p Params) (*Matrix, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	prog, err := spec.Build()
	if err != nil {
		return nil, err
	}
	execSeed := spec.Seed ^ p.ExecSeedSalt
	exec := func(pr *program.Program) trace.Source {
		return program.NewExecutor(pr, execSeed)
	}

	consCfg := func() core.Config {
		c := core.ConservativeConfig()
		c.WarmupInstrs, c.MaxInstrs = p.WarmupInstrs, p.MeasureInstrs
		return c
	}
	fdpCfg := func() core.Config {
		c := core.DefaultConfig()
		c.WarmupInstrs, c.MaxInstrs = p.WarmupInstrs, p.MeasureInstrs
		return c
	}

	m := &Matrix{Spec: spec, Index: index}

	// Conservative baseline (also supplies the profiling IPC, as the paper
	// profiles on the pre-FDP machine AsmDB's authors evaluated).
	if m.Cons, err = core.RunSource(consCfg(), exec(prog)); err != nil {
		return nil, fmt.Errorf("%s baseline: %w", spec.Name, err)
	}

	// Profile and plan.
	graph, err := cfg.Profile(trace.NewLimit(exec(prog), p.ProfileInstrs), cfg.Options{IPC: m.Cons.IPC()})
	if err != nil {
		return nil, fmt.Errorf("%s profile: %w", spec.Name, err)
	}
	m.Plan, err = asmdb.Build(graph, p.AsmDB)
	if err != nil {
		return nil, fmt.Errorf("%s plan: %w", spec.Name, err)
	}
	m.StaticBloat = m.Plan.StaticBloat(prog)
	rewritten, _, err := asmdb.Apply(prog, m.Plan)
	if err != nil {
		return nil, fmt.Errorf("%s apply: %w", spec.Name, err)
	}
	triggers := asmdb.Triggers(prog, m.Plan)

	// AsmDB on the conservative front-end.
	if m.AsmdbCons, err = core.RunSource(consCfg(), exec(rewritten)); err != nil {
		return nil, fmt.Errorf("%s asmdb+cons: %w", spec.Name, err)
	}
	c := consCfg()
	c.Triggers = triggers
	if m.AsmdbConsIdeal, err = core.RunSource(c, exec(prog)); err != nil {
		return nil, fmt.Errorf("%s asmdb-ideal+cons: %w", spec.Name, err)
	}

	// Industry-standard FDP and AsmDB on top of it.
	if m.FDP, err = core.RunSource(fdpCfg(), exec(prog)); err != nil {
		return nil, fmt.Errorf("%s fdp: %w", spec.Name, err)
	}
	if m.AsmdbFDP, err = core.RunSource(fdpCfg(), exec(rewritten)); err != nil {
		return nil, fmt.Errorf("%s asmdb+fdp: %w", spec.Name, err)
	}
	c = fdpCfg()
	c.Triggers = triggers
	if m.AsmdbFDPIdeal, err = core.RunSource(c, exec(prog)); err != nil {
		return nil, fmt.Errorf("%s asmdb-ideal+fdp: %w", spec.Name, err)
	}

	// EIP hardware prefetcher series.
	c = fdpCfg()
	eip, err := hwpf.NewEIP(hwpf.DefaultEIPConfig())
	if err != nil {
		return nil, err
	}
	c.Frontend.Prefetcher = eip
	if m.EIPFDP, err = core.RunSource(c, exec(prog)); err != nil {
		return nil, fmt.Errorf("%s eip+fdp: %w", spec.Name, err)
	}
	return m, nil
}

// RunSuite runs matrices for every spec, in parallel, preserving order.
// progress (optional) receives one line per completed workload.
func RunSuite(specs []workload.Spec, p Params, progress func(string)) ([]*Matrix, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	par := p.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > len(specs) {
		par = len(specs)
	}
	out := make([]*Matrix, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, par)
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec workload.Spec) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			m, err := RunMatrix(spec, i+1, p)
			out[i], errs[i] = m, err
			if progress != nil {
				if err != nil {
					progress(fmt.Sprintf("[%2d/%d] %-18s FAILED: %v", i+1, len(specs), spec.Name, err))
				} else {
					progress(fmt.Sprintf("[%2d/%d] %-18s base=%.3f fdp=%.3f asmdb+fdp=%.3f mpki=%.1f",
						i+1, len(specs), spec.Name, m.Cons.IPC(), m.Speedup(m.FDP), m.Speedup(m.AsmdbFDP), m.FDP.L1IMPKI()))
				}
			}
		}(i, spec)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("workload %d (%s): %w", i+1, specs[i].Name, err)
		}
	}
	return out, nil
}
