package experiment

import (
	"fmt"

	"frontsim/internal/core"
	"frontsim/internal/stats"
	"frontsim/internal/workload"
)

// Mechanism is one row of the cross-prefetcher characterization matrix: a
// named front-end configuration whose prefetch mechanism (or absence of
// one) the conformance harness and the mechanism ablation both iterate.
// Config must be pure — it is called once per cell on arbitrary workers —
// and must return a fully distinct core.Config per call (prefetcher
// instances carry learned state, so sharing one across runs would leak it).
type Mechanism struct {
	// Label names the mechanism in tables, cache-series labels and test
	// output. It matches the matrix series label where one exists.
	Label string
	// Config builds the mechanism's machine configuration from the
	// sweep's budgets. Audit/FastForward are overridden by the caller.
	Config func(p Params) (core.Config, error)
}

// Mechanisms returns the characterization-matrix registry: every prefetch
// mechanism the simulator models, each layered on the machine it is
// evaluated on in EXPERIMENTS.md. The two FTQ baselines lead so speedups
// can be read against them; the order is stable and tests index into it.
func Mechanisms() []Mechanism {
	return []Mechanism{
		{Label: "cons", Config: func(p Params) (core.Config, error) {
			return p.consConfig(), nil
		}},
		{Label: "fdp24", Config: func(p Params) (core.Config, error) {
			return p.fdpConfig(), nil
		}},
		{Label: "eip+fdp24", Config: func(p Params) (core.Config, error) {
			return p.eipConfig()
		}},
		{Label: "mana+fdp24", Config: func(p Params) (core.Config, error) {
			return p.manaConfig()
		}},
		{Label: "shadow+fdp24", Config: func(p Params) (core.Config, error) {
			return p.shadowConfig(), nil
		}},
		{Label: "itlb+fdp24", Config: func(p Params) (core.Config, error) {
			return p.itlbConfig(), nil
		}},
	}
}

// AblationMechanism runs every mechanism over every workload and reports
// the Scenario-1/2/3 head-stall decomposition next to IPC and speedup —
// placing each prefetch mechanism in the paper's taxonomy: Scenario 1
// (shoot-through, a ready head), Scenario 2 (stalling head blocking
// completed followers) and Scenario 3 (shadow stalls, nothing behind the
// stalling head ready either), as shares of measured cycles.
func AblationMechanism(specs []workload.Spec, p Params) (*stats.Table, error) {
	mechs := Mechanisms()
	// Pre-validate every constructor once so sweep's pure mkCfg cannot
	// fail: a mechanism whose prefetcher rejects its default config is a
	// programming error surfaced here, not mid-sweep.
	for _, m := range mechs {
		if _, err := m.Config(p); err != nil {
			return nil, fmt.Errorf("mechanism %s: %w", m.Label, err)
		}
	}
	res, err := sweep(specs, len(mechs), p, func(spec workload.Spec, ci int) core.Config {
		c, err := mechs[ci].Config(p)
		if err != nil {
			// Unreachable: the constructor succeeded during pre-validation
			// and takes no per-spec input.
			panic(fmt.Sprintf("experiment: mechanism %s: %v", mechs[ci].Label, err))
		}
		return c
	})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable(
		"Ablation A8: prefetch mechanisms in the Scenario-1/2/3 decomposition",
		"workload", "mechanism", "ipc", "speedup/cons", "l1i-mpki",
		"scen1%", "scen2%", "scen3%", "empty%")
	geo := make([][]float64, len(mechs))
	for si, spec := range specs {
		base := res[si][0].IPC()
		for ci, m := range mechs {
			st := res[si][ci]
			sp := 0.0
			if base > 0 {
				sp = st.IPC() / base
			}
			geo[ci] = append(geo[ci], sp)
			share := func(n int64) string {
				if st.FTQ.Cycles == 0 {
					return "0.0"
				}
				return fmt.Sprintf("%.1f", 100*float64(n)/float64(st.FTQ.Cycles))
			}
			t.AddRow(spec.Name, m.Label,
				ipcCell(st),
				speedupCell(st, res[si][0]),
				fmt.Sprintf("%.1f", st.L1IMPKI()),
				share(st.FTQ.ShootThroughCycles),
				share(st.FTQ.Scenario2Cycles),
				share(st.FTQ.Scenario3Cycles),
				share(st.FTQ.EmptyCycles))
		}
	}
	for ci, m := range mechs {
		t.AddRow("geomean", m.Label, "", fmt.Sprintf("%.3f", stats.Geomean(geo[ci])), "", "", "", "", "")
	}
	return t, nil
}
