package experiment

import (
	"bytes"
	"testing"

	"frontsim/internal/core"
	"frontsim/internal/runner"
	"frontsim/internal/workload"
)

// TestFastForwardEquivalence is the differential-equivalence harness for
// the event-driven fast path: the full per-workload matrix — all ten
// series, profiling and planning included — run cycle-by-cycle and
// fast-forwarded must produce byte-identical canonical Stats JSON, and the
// FastForward flag must be invisible to every mechanism's config
// fingerprint (like Audit and Obs), so both modes share run-cache entries.
func TestFastForwardEquivalence(t *testing.T) {
	spec, ok := workload.Lookup("public_srv_60")
	if !ok {
		t.Fatal("suite workload missing")
	}
	p := tinyParams()

	pOff := p
	pOff.FastForward = false
	pOn := p
	pOn.FastForward = true

	// Fingerprint exclusion first, across the whole mechanism registry: a
	// leak here would split the cache by run-loop mode and invalidate the
	// sharing the harness proves safe.
	for _, mech := range Mechanisms() {
		off, err := mech.Config(pOff)
		if err != nil {
			t.Fatal(err)
		}
		on, err := mech.Config(pOn)
		if err != nil {
			t.Fatal(err)
		}
		if off.Fingerprint() != on.Fingerprint() {
			t.Fatalf("FastForward leaked into the %s fingerprint", mech.Label)
		}
	}

	mOff, err := RunMatrix(spec, 1, pOff)
	if err != nil {
		t.Fatal(err)
	}
	mOn, err := RunMatrix(spec, 1, pOn)
	if err != nil {
		t.Fatal(err)
	}
	for id := seriesID(0); id < numSeries; id++ {
		off, err := mOff.seriesPtr(id).CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		on, err := mOn.seriesPtr(id).CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(off, on) {
			t.Errorf("%s: stats diverge under fast-forward:\ncycle-by-cycle: %s\nfast-forward:   %s", seriesLabels[id], off, on)
		}
	}
}

// TestFastForwardAblationEquivalence extends the differential harness to
// an ablation sweep (non-default FTQ depths, including the paper's
// 2-entry conservative shape), comparing the fully rendered tables.
func TestFastForwardAblationEquivalence(t *testing.T) {
	spec, ok := workload.Lookup("secret_crypto52")
	if !ok {
		t.Fatal("suite workload missing")
	}
	specs := []workload.Spec{spec}
	depths := []int{2, 8, 24}

	p := tinyParams()
	p.FastForward = false
	off, err := AblationFTQDepth(specs, depths, p)
	if err != nil {
		t.Fatal(err)
	}
	p.FastForward = true
	on, err := AblationFTQDepth(specs, depths, p)
	if err != nil {
		t.Fatal(err)
	}
	if off.String() != on.String() {
		t.Fatalf("ablation table diverges under fast-forward:\ncycle-by-cycle:\n%s\nfast-forward:\n%s", off, on)
	}
}

// TestStaleSchemaEntryRejected pins the cache-key schema bump: an entry
// written under the pre-sampling key layout (schema 5) must miss, not be
// silently reused, when the current binary probes the same simulation.
// Before cacheSchema moved to 6 this test failed — the stale entry's key
// was byte-identical to the live one.
func TestStaleSchemaEntryRejected(t *testing.T) {
	if cacheSchema != core.FingerprintSchema {
		t.Fatalf("cacheSchema %d and core.FingerprintSchema %d moved apart; bump them in lockstep", cacheSchema, core.FingerprintSchema)
	}
	c, err := runner.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := tinyParams()
	p.Cache = c
	spec, ok := workload.Lookup("public_srv_60")
	if !ok {
		t.Fatal("suite workload missing")
	}
	keys, err := newMatrixKeys(spec, p)
	if err != nil {
		t.Fatal(err)
	}

	// Write the FDP cell exactly as a schema-5 binary would have keyed it.
	stale := keys.series[serFDP]
	stale.Schema = 5
	if err := c.Put(stale, core.Stats{Config: "stale-schema-5"}); err != nil {
		t.Fatal(err)
	}

	var got core.Stats
	hit, err := c.Get(keys.series[serFDP], &got)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatalf("stale schema-5 cache entry silently reused: %+v", got)
	}

	// The stale entry is still addressable under its own (old) key — the
	// bump retires it from current lookups without corrupting the store.
	hit, err = c.Get(stale, &got)
	if err != nil {
		t.Fatal(err)
	}
	if !hit || got.Config != "stale-schema-5" {
		t.Fatal("stale entry unexpectedly unreadable under its own key")
	}
}
