package experiment

import (
	"fmt"

	"frontsim/internal/asmdb"
	"frontsim/internal/cfg"
	"frontsim/internal/core"
	"frontsim/internal/feedback"
	"frontsim/internal/ispy"
	"frontsim/internal/preload"
	"frontsim/internal/program"
	"frontsim/internal/stats"
	"frontsim/internal/trace"
	"frontsim/internal/workload"
)

// pipeline holds the shared per-workload AsmDB artifacts the extension
// experiments reuse.
type pipeline struct {
	spec  workload.Spec
	prog  *program.Program
	graph *cfg.Graph
	plan  *asmdb.Plan
	seed  uint64
}

func buildPipeline(spec workload.Spec, p Params) (*pipeline, error) {
	prog, err := spec.Build()
	if err != nil {
		return nil, err
	}
	seed := spec.Seed ^ p.ExecSeedSalt
	baseCfg := core.ConservativeConfig()
	baseCfg.WarmupInstrs, baseCfg.MaxInstrs = p.WarmupInstrs/2+1, p.MeasureInstrs/2+1
	baseCfg.Audit = p.Audit
	base, err := core.RunSource(baseCfg, program.NewExecutor(prog, seed))
	if err != nil {
		return nil, err
	}
	graph, err := cfg.Profile(trace.NewLimit(program.NewExecutor(prog, seed), p.ProfileInstrs), cfg.Options{IPC: base.IPC()})
	if err != nil {
		return nil, err
	}
	plan, err := asmdb.Build(graph, p.AsmDB)
	if err != nil {
		return nil, err
	}
	return &pipeline{spec: spec, prog: prog, graph: graph, plan: plan, seed: seed}, nil
}

func (pl *pipeline) run(c core.Config, prog *program.Program, p Params) (core.Stats, error) {
	c.WarmupInstrs, c.MaxInstrs = p.WarmupInstrs, p.MeasureInstrs
	c.Audit = p.Audit
	return core.RunSource(c, program.NewExecutor(prog, pl.seed))
}

// ExtensionPreload compares the §VI metadata-preloading prototype against
// plain FDP and inserted-instruction AsmDB on the industry front-end.
func ExtensionPreload(specs []workload.Spec, p Params) (*stats.Table, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	t := stats.NewTable(
		"Extension X1: metadata preloading on FDP-24 (IPC speedup over FDP-24)",
		"workload", "asmdb-inserted", "preload", "preload-mdmiss%", "store-entries")
	for _, spec := range specs {
		pl, err := buildPipeline(spec, p)
		if err != nil {
			return nil, err
		}
		fdp, err := pl.run(core.DefaultConfig(), pl.prog, p)
		if err != nil {
			return nil, err
		}
		rewritten, _, err := asmdb.Apply(pl.prog, pl.plan)
		if err != nil {
			return nil, err
		}
		inserted, err := pl.run(core.DefaultConfig(), rewritten, p)
		if err != nil {
			return nil, err
		}
		loader, err := preload.New(preload.DefaultConfig(), pl.plan)
		if err != nil {
			return nil, err
		}
		c := core.DefaultConfig()
		c.Frontend.Prefetcher = loader
		pre, err := pl.run(c, pl.prog, p)
		if err != nil {
			return nil, err
		}
		ls := loader.Stats()
		missPct := 0.0
		if ls.Lookups > 0 {
			missPct = 100 * float64(ls.MetadataMisses) / float64(ls.Lookups)
		}
		t.AddRow(spec.Name,
			fmt.Sprintf("%.3f", ratio(inserted.IPC(), fdp.IPC())),
			fmt.Sprintf("%.3f", ratio(pre.IPC(), fdp.IPC())),
			fmt.Sprintf("%.2f", missPct),
			fmt.Sprint(loader.StoreEntries()))
	}
	return t, nil
}

// ExtensionISpy compares I-SPY's coalesced/conditional prefetching against
// AsmDB on the industry front-end (both in trigger form, isolating the
// targeting policies from insertion overhead).
func ExtensionISpy(specs []workload.Spec, p Params) (*stats.Table, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	t := stats.NewTable(
		"Extension X3: I-SPY vs AsmDB triggers on FDP-24 (IPC speedup over FDP-24)",
		"workload", "asmdb", "ispy", "coalesce-savings%", "conditionals")
	for _, spec := range specs {
		pl, err := buildPipeline(spec, p)
		if err != nil {
			return nil, err
		}
		fdp, err := pl.run(core.DefaultConfig(), pl.prog, p)
		if err != nil {
			return nil, err
		}
		c := core.DefaultConfig()
		c.Triggers = asmdb.Triggers(pl.prog, pl.plan)
		asm, err := pl.run(c, pl.prog, p)
		if err != nil {
			return nil, err
		}
		iplan, err := ispy.Transform(pl.plan, ispy.DefaultOptions())
		if err != nil {
			return nil, err
		}
		c = core.DefaultConfig()
		c.Triggers = iplan.Triggers(nil)
		isp, err := pl.run(c, pl.prog, p)
		if err != nil {
			return nil, err
		}
		t.AddRow(spec.Name,
			fmt.Sprintf("%.3f", ratio(asm.IPC(), fdp.IPC())),
			fmt.Sprintf("%.3f", ratio(isp.IPC(), fdp.IPC())),
			fmt.Sprintf("%.1f", 100*iplan.CoalescingSavings()),
			fmt.Sprint(iplan.Conditionals))
	}
	return t, nil
}

// ExtensionFeedback runs the §VI feedback-directed tuning loop per
// workload and reports the chosen operating point.
func ExtensionFeedback(specs []workload.Spec, p Params) (*stats.Table, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	t := stats.NewTable(
		"Extension X2: feedback-directed software prefetching on FDP-24",
		"workload", "baseline-ipc", "best-ipc", "speedup", "chosen-fanout", "chosen-sites", "insertions")
	for _, spec := range specs {
		pl, err := buildPipeline(spec, p)
		if err != nil {
			return nil, err
		}
		eval := core.DefaultConfig()
		eval.WarmupInstrs, eval.MaxInstrs = p.WarmupInstrs, p.MeasureInstrs
		eval.Audit = p.Audit
		opts := feedback.DefaultOptions(eval, pl.seed)
		res, err := feedback.Tune(pl.prog, pl.graph, opts)
		if err != nil {
			return nil, err
		}
		t.AddRow(spec.Name,
			fmt.Sprintf("%.3f", res.BaselineIPC),
			fmt.Sprintf("%.3f", res.Best.IPC),
			fmt.Sprintf("%.3f", res.Best.Speedup),
			fmt.Sprintf("%.2f", res.Best.Fanout),
			fmt.Sprint(res.Best.SitesPerTarget),
			fmt.Sprint(res.Best.Insertions))
	}
	return t, nil
}

func ratio(a, b float64) float64 {
	if b == 0 { //lint:allow exact-zero guard before division; any nonzero b, however small, must divide
		return 0
	}
	return a / b
}
