package experiment

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"frontsim/internal/asmdb"
	"frontsim/internal/core"
	"frontsim/internal/runner"
	"frontsim/internal/stats"
	"frontsim/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// cannedMatrix is a hand-written Matrix with every layer populated —
// independent of the simulator, so the golden file below only changes when
// the serialized shape of Matrix/Stats/Plan changes.
func cannedMatrix() *Matrix {
	m := &Matrix{
		Spec:        workload.Spec{Name: "golden_wl", Seed: 42, Funcs: 3, Levels: 2, BlocksPerFunc: 4, BodyLenMean: 6.5},
		Index:       1,
		StaticBloat: 0.0125,
		Plan: &asmdb.Plan{
			Insertions: []asmdb.Insertion{
				{Site: 0x1000, Target: 0x4040, Distance: 37, Prob: 0.875, TargetMisses: 1200},
				{Site: 0x2080, Target: 0x4040, Distance: 61, Prob: 0.5, TargetMisses: 1200},
			},
			MinDistance:    27,
			TargetsCovered: 1,
			MissesCovered:  1200,
			TotalMisses:    1500,
		},
	}
	fill := func(st *core.Stats, name string, cycles int64) {
		st.Config = name
		st.Cycles = cycles
		st.Instructions = 2 * cycles
		st.SwPrefetchInstrs = cycles / 100
		st.FTQ.HeadStallCycles = cycles / 10
		st.L1I.Accesses = cycles * 3
		st.L1I.Misses = cycles / 50
		st.BPU.CondBranches = cycles / 5
		st.BPU.CondMispredicts = cycles / 500
		st.DRAMQueueing = 7
	}
	for id := seriesID(0); id < numSeries; id++ {
		fill(m.seriesPtr(id), seriesLabels[id], 100_000+int64(id)*10_000)
	}
	// One sampled series pins the optional SamplingStats block's shape in
	// the golden alongside the exact (nil) ones.
	m.FDP.Sampling = &core.SamplingStats{
		Windows:          12,
		TruncatedWindows: 1,
		FunctionalInstrs: 90_000,
		WarmDetailInstrs: 24_000,
		DrainInstrs:      600,
		CPI:              stats.Estimate{N: 12, Mean: 0.5, M2: 0.02},
	}
	return m
}

// TestCacheGoldenRoundTrip pushes a canned Matrix through the runner
// cache's serialized form and back, comparing field by field, and pins the
// canonical encoding to a golden file so schema drift (renamed, removed,
// re-typed fields) fails loudly instead of silently invalidating caches.
// Refresh with: go test ./internal/experiment -run Golden -update
func TestCacheGoldenRoundTrip(t *testing.T) {
	m := cannedMatrix()
	enc, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	enc = append(enc, '\n')

	golden := filepath.Join("testdata", "matrix_cache_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, enc, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, want) {
		t.Fatalf("Matrix encoding drifted from golden file (run with -update after bumping cacheSchema):\n got: %s\nwant: %s", enc, want)
	}

	// The golden bytes must decode strictly: an unknown field in the file
	// means a Go field was removed or renamed — cached entries from older
	// binaries would silently lose data instead of missing.
	dec := json.NewDecoder(bytes.NewReader(want))
	dec.DisallowUnknownFields()
	var fromGolden Matrix
	if err := dec.Decode(&fromGolden); err != nil {
		t.Fatalf("golden no longer decodes strictly: %v", err)
	}

	// Round trip through the real cache: per-series Stats entries plus the
	// plan entry, exactly as runMatrixPooled stores them.
	c, err := runner.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.Cache = c
	keys, err := newMatrixKeys(m.Spec, p)
	if err != nil {
		t.Fatal(err)
	}
	for id := seriesID(0); id < numSeries; id++ {
		if err := c.Put(keys.series[id], *m.seriesPtr(id)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Put(keys.plan, planEntry{Plan: m.Plan, StaticBloat: m.StaticBloat}); err != nil {
		t.Fatal(err)
	}

	got := &Matrix{Spec: m.Spec, Index: m.Index}
	for id := seriesID(0); id < numSeries; id++ {
		ok, err := c.Get(keys.series[id], got.seriesPtr(id))
		if err != nil || !ok {
			t.Fatalf("series %s: ok=%v err=%v", seriesLabels[id], ok, err)
		}
	}
	var pe planEntry
	if ok, err := c.Get(keys.plan, &pe); err != nil || !ok {
		t.Fatalf("plan: ok=%v err=%v", ok, err)
	}
	got.Plan, got.StaticBloat = pe.Plan, pe.StaticBloat

	wantV, gotV := reflect.ValueOf(*m), reflect.ValueOf(*got)
	for i := 0; i < wantV.NumField(); i++ {
		name := wantV.Type().Field(i).Name
		if !reflect.DeepEqual(gotV.Field(i).Interface(), wantV.Field(i).Interface()) {
			t.Errorf("field %s drifted through the cache:\n got %+v\nwant %+v",
				name, gotV.Field(i).Interface(), wantV.Field(i).Interface())
		}
	}
}

// TestMatrixWarmCacheByteIdentical runs one workload cold, then again
// against the warm cache, and requires (a) the warm run to be pure cache
// hits — it must not simulate, build, or profile anything — and (b) every
// derived artifact, from canonical stats JSON to rendered figure tables,
// to be byte-identical between the two.
func TestMatrixWarmCacheByteIdentical(t *testing.T) {
	dir := t.TempDir()
	spec, ok := workload.Lookup("public_srv_60")
	if !ok {
		t.Fatal("workload missing")
	}
	p := tinyParams()

	cold1, err := runner.OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	p.Cache = cold1
	cold, err := RunMatrix(spec, 1, p)
	if err != nil {
		t.Fatal(err)
	}
	if m := cold1.Metrics(); m.Hits != 0 || m.Puts != int64(numSeries)+1 {
		t.Fatalf("cold run metrics %+v", m)
	}

	warm1, err := runner.OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	p.Cache = warm1
	warm, err := RunMatrix(spec, 1, p)
	if err != nil {
		t.Fatal(err)
	}
	if m := warm1.Metrics(); m.Misses != 0 || m.Puts != 0 || m.Hits != int64(numSeries)+1 {
		t.Fatalf("warm run was not pure cache hits: %+v", m)
	}

	for id := seriesID(0); id < numSeries; id++ {
		a, err := cold.seriesPtr(id).CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		b, err := warm.seriesPtr(id).CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("series %s differs warm vs cold:\n cold %s\n warm %s", seriesLabels[id], a, b)
		}
	}
	ca, wa := []*Matrix{cold}, []*Matrix{warm}
	if Figure1(ca).String() != Figure1(wa).String() {
		t.Error("Figure 1 differs warm vs cold")
	}
	if Figure9(ca).String() != Figure9(wa).String() {
		t.Error("Figure 9 differs warm vs cold")
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Errorf("matrices differ warm vs cold:\n cold %+v\n warm %+v", cold, warm)
	}
}

// TestAblationCacheReuse checks that the ablation path shares the suite's
// cache identity scheme: a sweep cell that matches a prior run (same
// config fingerprint, program, seed) is a hit, not a re-simulation.
func TestAblationCacheReuse(t *testing.T) {
	c, err := runner.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	specs := workload.All()[:1]
	p := tinyParams()
	p.Cache = c
	if _, err := AblationPredictor(specs, p); err != nil {
		t.Fatal(err)
	}
	first := c.Metrics()
	if first.Puts != 2 {
		t.Fatalf("cold sweep metrics %+v", first)
	}
	// The predictor sweep's tournament cell is exactly DefaultConfig at
	// these budgets, and so is AblationFrontend's {pfc,ghr}={true,true}
	// combo — the second sweep must reuse that run.
	if _, err := AblationFrontend(specs, p); err != nil {
		t.Fatal(err)
	}
	second := c.Metrics()
	if second.Hits-first.Hits < 1 {
		t.Fatalf("ablations did not share cache entries: %+v -> %+v", first, second)
	}
}

func matrixCanonical(t *testing.T, m *Matrix) []byte {
	t.Helper()
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
