//go:build race

package experiment

// Reduced long-tier budget under the race detector; see
// longtier_norace_test.go for the full-contract value.
const longTierTestInstrs = 20_000_000
