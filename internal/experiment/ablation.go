package experiment

import (
	"fmt"

	"frontsim/internal/asmdb"
	"frontsim/internal/cache"
	"frontsim/internal/cfg"
	"frontsim/internal/core"
	"frontsim/internal/program"
	"frontsim/internal/stats"
	"frontsim/internal/trace"
	"frontsim/internal/workload"
)

// AblationFTQDepth sweeps the FTQ depth between the paper's conservative
// and industry-standard endpoints and beyond, reporting IPC speedup over
// depth 2 for each workload.
func AblationFTQDepth(specs []workload.Spec, depths []int, p Params) (*stats.Table, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	cols := []string{"workload"}
	for _, d := range depths {
		cols = append(cols, fmt.Sprintf("ftq=%d", d))
	}
	t := stats.NewTable("Ablation A1: IPC speedup vs FTQ depth (over depth 2)", cols...)

	geo := make([][]float64, len(depths))
	for _, spec := range specs {
		prog, err := spec.Build()
		if err != nil {
			return nil, err
		}
		var base float64
		row := []string{spec.Name}
		for di, d := range depths {
			c := core.DefaultConfig()
			c.Name = fmt.Sprintf("ftq%d", d)
			c.Frontend.FTQEntries = d
			c.WarmupInstrs, c.MaxInstrs = p.WarmupInstrs, p.MeasureInstrs
			st, err := core.RunSource(c, program.NewExecutor(prog, spec.Seed^p.ExecSeedSalt))
			if err != nil {
				return nil, fmt.Errorf("%s ftq=%d: %w", spec.Name, d, err)
			}
			if di == 0 {
				base = st.IPC()
			}
			sp := 0.0
			if base > 0 {
				sp = st.IPC() / base
			}
			geo[di] = append(geo[di], sp)
			row = append(row, fmt.Sprintf("%.3f", sp))
		}
		t.AddRow(row...)
	}
	gm := []string{"geomean"}
	for di := range depths {
		gm = append(gm, fmt.Sprintf("%.3f", stats.Geomean(geo[di])))
	}
	t.AddRow(gm...)
	return t, nil
}

// AblationFanout sweeps AsmDB's fanout threshold on the industry-standard
// front-end: lower thresholds raise coverage (and bloat) at lower accuracy
// (paper §II-B2).
func AblationFanout(specs []workload.Spec, thresholds []float64, p Params) (*stats.Table, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	cols := []string{"workload"}
	for _, th := range thresholds {
		cols = append(cols, fmt.Sprintf("fan=%.2f", th), fmt.Sprintf("bloat@%.2f%%", th))
	}
	t := stats.NewTable("Ablation A2: AsmDB fanout threshold on FDP-24 (speedup over FDP-24, dynamic bloat)", cols...)

	for _, spec := range specs {
		prog, err := spec.Build()
		if err != nil {
			return nil, err
		}
		seed := spec.Seed ^ p.ExecSeedSalt
		mk := func() core.Config {
			c := core.DefaultConfig()
			c.WarmupInstrs, c.MaxInstrs = p.WarmupInstrs, p.MeasureInstrs
			return c
		}
		base, err := core.RunSource(mk(), program.NewExecutor(prog, seed))
		if err != nil {
			return nil, err
		}
		graph, err := cfg.Profile(trace.NewLimit(program.NewExecutor(prog, seed), p.ProfileInstrs), cfg.Options{IPC: base.IPC()})
		if err != nil {
			return nil, err
		}
		row := []string{spec.Name}
		for _, th := range thresholds {
			opts := p.AsmDB
			opts.FanoutThreshold = th
			plan, err := asmdb.Build(graph, opts)
			if err != nil {
				return nil, err
			}
			rw, _, err := asmdb.Apply(prog, plan)
			if err != nil {
				return nil, err
			}
			st, err := core.RunSource(mk(), program.NewExecutor(rw, seed))
			if err != nil {
				return nil, err
			}
			sp := 0.0
			if base.IPC() > 0 {
				sp = st.IPC() / base.IPC()
			}
			row = append(row, fmt.Sprintf("%.3f", sp), fmt.Sprintf("%.1f", 100*st.DynamicBloat()))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// AblationBTB compares the single-level BTB against the Ishii-style
// two-level organization (small zero-penalty L1 backed by the full table
// with a promotion bubble) on the industry front-end.
func AblationBTB(specs []workload.Spec, l1Entries []int, p Params) (*stats.Table, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	cols := []string{"workload"}
	for _, e := range l1Entries {
		label := "single"
		if e > 0 {
			label = fmt.Sprintf("l1=%d", e)
		}
		cols = append(cols, label+"-ipc", label+"-bubbles/Ki")
	}
	t := stats.NewTable("Ablation A7: BTB organization on FDP-24", cols...)
	for _, spec := range specs {
		prog, err := spec.Build()
		if err != nil {
			return nil, err
		}
		row := []string{spec.Name}
		for _, e := range l1Entries {
			c := core.DefaultConfig()
			c.Frontend.BPU.L1BTBEntries = e
			c.WarmupInstrs, c.MaxInstrs = p.WarmupInstrs, p.MeasureInstrs
			st, err := core.RunSource(c, program.NewExecutor(prog, spec.Seed^p.ExecSeedSalt))
			if err != nil {
				return nil, err
			}
			perKi := float64(st.Frontend.BTBL2FillBubbles) / float64(st.Instructions) * 1000
			row = append(row, fmt.Sprintf("%.3f", st.IPC()), fmt.Sprintf("%.2f", perKi))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// AblationWrongPath sweeps the wrong-path sequential-fetch depth on the
// industry front-end: 0 (the calibrated default, no wrong-path traffic)
// against shallow and deep not-taken-assumption streaming. Positive
// depths trade L1-I pollution and bandwidth against incidental next-line
// coverage.
func AblationWrongPath(specs []workload.Spec, depths []int, p Params) (*stats.Table, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	cols := []string{"workload"}
	for _, d := range depths {
		cols = append(cols, fmt.Sprintf("wp=%d-ipc", d), fmt.Sprintf("wp=%d-mpki", d))
	}
	t := stats.NewTable("Ablation A6: wrong-path sequential fetch depth on FDP-24", cols...)
	for _, spec := range specs {
		prog, err := spec.Build()
		if err != nil {
			return nil, err
		}
		row := []string{spec.Name}
		for _, d := range depths {
			c := core.DefaultConfig()
			c.Frontend.WrongPathDepth = d
			c.WarmupInstrs, c.MaxInstrs = p.WarmupInstrs, p.MeasureInstrs
			st, err := core.RunSource(c, program.NewExecutor(prog, spec.Seed^p.ExecSeedSalt))
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.3f", st.IPC()), fmt.Sprintf("%.1f", st.L1IMPKI()))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// AblationReplacement sweeps the L1-I replacement policy on the
// industry-standard front-end: instruction streams are loop- and
// sequence-heavy, so recency (LRU) versus re-reference prediction (SRRIP)
// versus random quantifies how much of the paper's L1-I miss profile is
// policy-sensitive.
func AblationReplacement(specs []workload.Spec, p Params) (*stats.Table, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	policies := []cache.ReplKind{cache.ReplLRU, cache.ReplSRRIP, cache.ReplRandom}
	cols := []string{"workload"}
	for _, pol := range policies {
		cols = append(cols, pol.String()+"-ipc", pol.String()+"-mpki")
	}
	t := stats.NewTable("Ablation A5: L1-I replacement policy on FDP-24", cols...)
	for _, spec := range specs {
		prog, err := spec.Build()
		if err != nil {
			return nil, err
		}
		row := []string{spec.Name}
		for _, pol := range policies {
			c := core.DefaultConfig()
			c.Memory.L1I.Repl = pol
			c.WarmupInstrs, c.MaxInstrs = p.WarmupInstrs, p.MeasureInstrs
			st, err := core.RunSource(c, program.NewExecutor(prog, spec.Seed^p.ExecSeedSalt))
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.3f", st.IPC()), fmt.Sprintf("%.1f", st.L1IMPKI()))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// AblationPredictor compares the tournament (bimodal+gshare) direction
// predictor against TAGE-lite on the industry-standard front-end: better
// direction prediction lengthens run-ahead epochs and lifts the FDP
// baseline — quantifying how sensitive the paper's FDP numbers are to
// predictor quality.
func AblationPredictor(specs []workload.Spec, p Params) (*stats.Table, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	t := stats.NewTable(
		"Ablation A4: direction predictor on FDP-24 (IPC, accuracy)",
		"workload", "tournament-ipc", "tage-ipc", "tage/tournament", "tournament-acc", "tage-acc")
	var ratios []float64
	for _, spec := range specs {
		prog, err := spec.Build()
		if err != nil {
			return nil, err
		}
		run := func(useTage bool) (core.Stats, error) {
			c := core.DefaultConfig()
			c.Frontend.BPU.UseTAGE = useTage
			c.WarmupInstrs, c.MaxInstrs = p.WarmupInstrs, p.MeasureInstrs
			return core.RunSource(c, program.NewExecutor(prog, spec.Seed^p.ExecSeedSalt))
		}
		tour, err := run(false)
		if err != nil {
			return nil, err
		}
		tage, err := run(true)
		if err != nil {
			return nil, err
		}
		ratio := 0.0
		if tour.IPC() > 0 {
			ratio = tage.IPC() / tour.IPC()
		}
		ratios = append(ratios, ratio)
		t.AddRow(spec.Name,
			fmt.Sprintf("%.3f", tour.IPC()),
			fmt.Sprintf("%.3f", tage.IPC()),
			fmt.Sprintf("%.3f", ratio),
			fmt.Sprintf("%.4f", tour.BPU.CondAccuracy()),
			fmt.Sprintf("%.4f", tage.BPU.CondAccuracy()))
	}
	t.AddRow("geomean", "", "", fmt.Sprintf("%.3f", stats.Geomean(ratios)), "", "")
	return t, nil
}

// AblationFrontend toggles the two FDP refinements the paper's §II-A
// baseline includes — post-fetch correction and GHR filtering — on the
// industry-standard front-end.
func AblationFrontend(specs []workload.Spec, p Params) (*stats.Table, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	t := stats.NewTable(
		"Ablation A3: FDP refinements (IPC speedup over both disabled)",
		"workload", "neither", "pfc-only", "ghr-filter-only", "both")
	combos := []struct {
		pfc, ghr bool
	}{{false, false}, {true, false}, {false, true}, {true, true}}

	geo := make([][]float64, len(combos))
	for _, spec := range specs {
		prog, err := spec.Build()
		if err != nil {
			return nil, err
		}
		var base float64
		row := []string{spec.Name}
		for ci, combo := range combos {
			c := core.DefaultConfig()
			c.Frontend.EnablePFC = combo.pfc
			c.Frontend.BPU.FilterGHR = combo.ghr
			c.WarmupInstrs, c.MaxInstrs = p.WarmupInstrs, p.MeasureInstrs
			st, err := core.RunSource(c, program.NewExecutor(prog, spec.Seed^p.ExecSeedSalt))
			if err != nil {
				return nil, err
			}
			if ci == 0 {
				base = st.IPC()
			}
			sp := 0.0
			if base > 0 {
				sp = st.IPC() / base
			}
			geo[ci] = append(geo[ci], sp)
			row = append(row, fmt.Sprintf("%.3f", sp))
		}
		t.AddRow(row...)
	}
	gm := []string{"geomean"}
	for ci := range combos {
		gm = append(gm, fmt.Sprintf("%.3f", stats.Geomean(geo[ci])))
	}
	t.AddRow(gm...)
	return t, nil
}
