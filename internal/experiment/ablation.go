package experiment

import (
	"fmt"
	"io"
	"math"

	"frontsim/internal/asmdb"
	"frontsim/internal/cache"
	"frontsim/internal/cfg"
	"frontsim/internal/core"
	"frontsim/internal/program"
	"frontsim/internal/runner"
	"frontsim/internal/stats"
	"frontsim/internal/trace"
	"frontsim/internal/workload"
)

// baseSimKey is the cache identity of a run of cfg against the workload's
// unmodified program.
func baseSimKey(spec workload.Spec, p Params, c core.Config) simKey {
	return simKey{Schema: cacheSchema, Kind: "sim", Workload: spec,
		Program: progBase, Config: c.Fingerprint(), ExecSeed: spec.Seed ^ p.ExecSeedSalt}
}

// runCachedSim executes one configuration against prog, consulting and
// filling p.Cache under key. This is the single execution path every
// ablation cell shares with the suite's matrix jobs.
func runCachedSim(p Params, key simKey, c core.Config, prog *program.Program) (core.Stats, error) {
	var st core.Stats
	if ok, err := p.Cache.Get(key, &st); err != nil {
		return st, err
	} else if ok {
		p.obsRecord(&st, key.Workload.Name, c.Name)
		return st, nil
	}
	if p.ObsRun != nil {
		c.Obs = p.ObsRun(key.Workload.Name, c.Name)
	}
	st, err := core.RunSource(c, program.NewExecutor(prog, key.ExecSeed))
	if cl, ok := c.Obs.(io.Closer); ok {
		if cerr := cl.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("closing observer: %w", cerr)
		}
	}
	if err != nil {
		return st, err
	}
	p.obsRecord(&st, key.Workload.Name, c.Name)
	return st, p.Cache.Put(key, st)
}

// ipcCell renders a table IPC cell. Exact runs print the plain value;
// sampled runs append the 95% confidence half-width on the IPC estimate,
// so every ablation table carries its uncertainty when sampling is on.
func ipcCell(st core.Stats) string {
	if sp := st.Sampling; sp != nil {
		return fmt.Sprintf("%.3f±%.3f", st.IPC(), sp.IPCCI95())
	}
	return fmt.Sprintf("%.3f", st.IPC())
}

// speedupCell renders st's IPC normalized to base. For sampled runs the
// two estimates' relative confidence half-widths combine in quadrature
// (first-order error propagation through the ratio; the CPI and IPC
// relative widths agree to the same order), so speedup columns carry a ±
// too.
func speedupCell(st, base core.Stats) string {
	sp := 0.0
	if base.Cycles > 0 && base.Instructions > 0 {
		sp = st.IPC() / base.IPC()
	}
	if st.Sampling == nil || base.Sampling == nil {
		return fmt.Sprintf("%.3f", sp)
	}
	rs, rb := st.Sampling.CPI.RelCI95(), base.Sampling.CPI.RelCI95()
	return fmt.Sprintf("%.3f±%.3f", sp, sp*math.Sqrt(rs*rs+rb*rb))
}

// sweep runs one configuration grid — cells[si][ci] for spec si and
// configuration ci — through the runner pool. Each spec's cells are
// probed against the cache first (warm cells are recorded immediately
// and never join a batch; a fully warm spec skips even building its
// program); the cold remainder runs as one lockstep batch over the
// spec's shared stream, or as per-cell stealable jobs with batching off.
// mkCfg must be pure: it is called once per cell on an arbitrary worker.
func sweep(specs []workload.Spec, nCfg int, p Params, mkCfg func(spec workload.Spec, ci int) core.Config) ([][]core.Stats, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	pool := runner.NewPool(p.Parallelism)
	defer pool.Close()
	out := make([][]core.Stats, len(specs))
	g := pool.NewGroup()
	for si, spec := range specs {
		si, spec := si, spec
		out[si] = make([]core.Stats, nCfg)
		g.Go(func() error {
			var cells []batchCell
			for ci := 0; ci < nCfg; ci++ {
				ci := ci
				c := mkCfg(spec, ci)
				c.Audit = p.Audit
				c.FastForward = p.FastForward
				c.Sampling = p.Sampling
				key := baseSimKey(spec, p, c)
				var st core.Stats
				if ok, err := p.Cache.Get(key, &st); err != nil {
					return err
				} else if ok {
					p.obsRecord(&st, spec.Name, c.Name)
					out[si][ci] = st
					continue
				}
				cells = append(cells, batchCell{
					cfg: c,
					wl:  spec.Name, series: c.Name,
					label: fmt.Sprintf("%s cell %d", spec.Name, ci),
					commit: func(st core.Stats) error {
						out[si][ci] = st
						if err := p.Cache.Put(key, st); err != nil {
							return err
						}
						p.obsRecord(&st, spec.Name, c.Name)
						return nil
					},
				})
			}
			if len(cells) == 0 {
				return nil
			}
			prog, err := spec.Build()
			if err != nil {
				return err
			}
			execSeed := spec.Seed ^ p.ExecSeedSalt
			sub := pool.NewGroup()
			dispatchCells(sub, p, prog, execSeed, cells)
			return sub.Wait()
		})
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}
	return out, nil
}

// AblationFTQDepth sweeps the FTQ depth between the paper's conservative
// and industry-standard endpoints and beyond, reporting IPC speedup over
// depth 2 for each workload.
func AblationFTQDepth(specs []workload.Spec, depths []int, p Params) (*stats.Table, error) {
	res, err := sweep(specs, len(depths), p, func(spec workload.Spec, ci int) core.Config {
		c := core.DefaultConfig()
		c.Name = fmt.Sprintf("ftq%d", depths[ci])
		c.Frontend.FTQEntries = depths[ci]
		c.WarmupInstrs, c.MaxInstrs = p.WarmupInstrs, p.MeasureInstrs
		return c
	})
	if err != nil {
		return nil, err
	}
	cols := []string{"workload"}
	for _, d := range depths {
		cols = append(cols, fmt.Sprintf("ftq=%d", d))
	}
	t := stats.NewTable("Ablation A1: IPC speedup vs FTQ depth (over depth 2)", cols...)
	geo := make([][]float64, len(depths))
	for si, spec := range specs {
		base := res[si][0].IPC()
		row := []string{spec.Name}
		for di := range depths {
			sp := 0.0
			if base > 0 {
				sp = res[si][di].IPC() / base
			}
			geo[di] = append(geo[di], sp)
			row = append(row, speedupCell(res[si][di], res[si][0]))
		}
		t.AddRow(row...)
	}
	gm := []string{"geomean"}
	for di := range depths {
		gm = append(gm, fmt.Sprintf("%.3f", stats.Geomean(geo[di])))
	}
	t.AddRow(gm...)
	return t, nil
}

// AblationFanout sweeps AsmDB's fanout threshold on the industry-standard
// front-end: lower thresholds raise coverage (and bloat) at lower accuracy
// (paper §II-B2). Each workload profiles once; the per-threshold plan,
// rewrite, and run then fan out as jobs.
func AblationFanout(specs []workload.Spec, thresholds []float64, p Params) (*stats.Table, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	type cell struct {
		speedup string // rendered by speedupCell (carries ± when sampled)
		bloat   float64
	}
	res := make([][]cell, len(specs))
	pool := runner.NewPool(p.Parallelism)
	defer pool.Close()
	g := pool.NewGroup()
	for si, spec := range specs {
		si, spec := si, spec
		res[si] = make([]cell, len(thresholds))
		g.Go(func() error {
			prog, err := spec.Build()
			if err != nil {
				return err
			}
			mk := func() core.Config {
				c := core.DefaultConfig()
				c.WarmupInstrs, c.MaxInstrs = p.WarmupInstrs, p.MeasureInstrs
				c.Audit = p.Audit
				c.FastForward = p.FastForward
				c.Sampling = p.Sampling
				return c
			}
			base, err := runCachedSim(p, baseSimKey(spec, p, mk()), mk(), prog)
			if err != nil {
				return err
			}
			seed := spec.Seed ^ p.ExecSeedSalt
			graph, err := cfg.Profile(trace.NewLimit(program.NewExecutor(prog, seed), p.ProfileInstrs), cfg.Options{IPC: base.IPC()})
			if err != nil {
				return err
			}
			fdpFP := mk().Fingerprint()
			sub := pool.NewGroup()
			for ti, th := range thresholds {
				ti, th := ti, th
				sub.Go(func() error {
					opts := p.AsmDB
					opts.FanoutThreshold = th
					key := baseSimKey(spec, p, mk())
					key.Program = progAsmdb
					key.AsmDB = &opts
					key.ProfileInstrs = p.ProfileInstrs
					key.ProfileConfig = fdpFP
					var st core.Stats
					if ok, err := p.Cache.Get(key, &st); err != nil {
						return err
					} else if !ok {
						plan, err := asmdb.Build(graph, opts)
						if err != nil {
							return err
						}
						rw, _, err := asmdb.Apply(prog, plan)
						if err != nil {
							return err
						}
						if st, err = core.RunSource(mk(), program.NewExecutor(rw, seed)); err != nil {
							return err
						}
						if err := p.Cache.Put(key, st); err != nil {
							return err
						}
					}
					res[si][ti] = cell{speedup: speedupCell(st, base), bloat: 100 * st.DynamicBloat()}
					return nil
				})
			}
			return sub.Wait()
		})
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}
	cols := []string{"workload"}
	for _, th := range thresholds {
		cols = append(cols, fmt.Sprintf("fan=%.2f", th), fmt.Sprintf("bloat@%.2f%%", th))
	}
	t := stats.NewTable("Ablation A2: AsmDB fanout threshold on FDP-24 (speedup over FDP-24, dynamic bloat)", cols...)
	for si, spec := range specs {
		row := []string{spec.Name}
		for ti := range thresholds {
			row = append(row, res[si][ti].speedup, fmt.Sprintf("%.1f", res[si][ti].bloat))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// AblationBTB compares the single-level BTB against the Ishii-style
// two-level organization (small zero-penalty L1 backed by the full table
// with a promotion bubble) on the industry front-end.
func AblationBTB(specs []workload.Spec, l1Entries []int, p Params) (*stats.Table, error) {
	res, err := sweep(specs, len(l1Entries), p, func(spec workload.Spec, ci int) core.Config {
		c := core.DefaultConfig()
		c.Frontend.BPU.L1BTBEntries = l1Entries[ci]
		c.WarmupInstrs, c.MaxInstrs = p.WarmupInstrs, p.MeasureInstrs
		return c
	})
	if err != nil {
		return nil, err
	}
	cols := []string{"workload"}
	for _, e := range l1Entries {
		label := "single"
		if e > 0 {
			label = fmt.Sprintf("l1=%d", e)
		}
		cols = append(cols, label+"-ipc", label+"-bubbles/Ki")
	}
	t := stats.NewTable("Ablation A7: BTB organization on FDP-24", cols...)
	for si, spec := range specs {
		row := []string{spec.Name}
		for ci := range l1Entries {
			st := res[si][ci]
			perKi := float64(st.Frontend.BTBL2FillBubbles) / float64(st.Instructions) * 1000
			row = append(row, ipcCell(st), fmt.Sprintf("%.2f", perKi))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// AblationWrongPath sweeps the wrong-path sequential-fetch depth on the
// industry front-end: 0 (the calibrated default, no wrong-path traffic)
// against shallow and deep not-taken-assumption streaming. Positive
// depths trade L1-I pollution and bandwidth against incidental next-line
// coverage.
func AblationWrongPath(specs []workload.Spec, depths []int, p Params) (*stats.Table, error) {
	res, err := sweep(specs, len(depths), p, func(spec workload.Spec, ci int) core.Config {
		c := core.DefaultConfig()
		c.Frontend.WrongPathDepth = depths[ci]
		c.WarmupInstrs, c.MaxInstrs = p.WarmupInstrs, p.MeasureInstrs
		return c
	})
	if err != nil {
		return nil, err
	}
	cols := []string{"workload"}
	for _, d := range depths {
		cols = append(cols, fmt.Sprintf("wp=%d-ipc", d), fmt.Sprintf("wp=%d-mpki", d))
	}
	t := stats.NewTable("Ablation A6: wrong-path sequential fetch depth on FDP-24", cols...)
	for si, spec := range specs {
		row := []string{spec.Name}
		for ci := range depths {
			st := res[si][ci]
			row = append(row, ipcCell(st), fmt.Sprintf("%.1f", st.L1IMPKI()))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// AblationReplacement sweeps the L1-I replacement policy on the
// industry-standard front-end: instruction streams are loop- and
// sequence-heavy, so recency (LRU) versus re-reference prediction (SRRIP)
// versus random quantifies how much of the paper's L1-I miss profile is
// policy-sensitive.
func AblationReplacement(specs []workload.Spec, p Params) (*stats.Table, error) {
	policies := []cache.ReplKind{cache.ReplLRU, cache.ReplSRRIP, cache.ReplRandom}
	res, err := sweep(specs, len(policies), p, func(spec workload.Spec, ci int) core.Config {
		c := core.DefaultConfig()
		c.Memory.L1I.Repl = policies[ci]
		c.WarmupInstrs, c.MaxInstrs = p.WarmupInstrs, p.MeasureInstrs
		return c
	})
	if err != nil {
		return nil, err
	}
	cols := []string{"workload"}
	for _, pol := range policies {
		cols = append(cols, pol.String()+"-ipc", pol.String()+"-mpki")
	}
	t := stats.NewTable("Ablation A5: L1-I replacement policy on FDP-24", cols...)
	for si, spec := range specs {
		row := []string{spec.Name}
		for ci := range policies {
			st := res[si][ci]
			row = append(row, ipcCell(st), fmt.Sprintf("%.1f", st.L1IMPKI()))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// AblationPredictor compares the tournament (bimodal+gshare) direction
// predictor against TAGE-lite on the industry-standard front-end: better
// direction prediction lengthens run-ahead epochs and lifts the FDP
// baseline — quantifying how sensitive the paper's FDP numbers are to
// predictor quality.
func AblationPredictor(specs []workload.Spec, p Params) (*stats.Table, error) {
	res, err := sweep(specs, 2, p, func(spec workload.Spec, ci int) core.Config {
		c := core.DefaultConfig()
		c.Frontend.BPU.UseTAGE = ci == 1
		c.WarmupInstrs, c.MaxInstrs = p.WarmupInstrs, p.MeasureInstrs
		return c
	})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable(
		"Ablation A4: direction predictor on FDP-24 (IPC, accuracy)",
		"workload", "tournament-ipc", "tage-ipc", "tage/tournament", "tournament-acc", "tage-acc")
	var ratios []float64
	for si, spec := range specs {
		tour, tage := res[si][0], res[si][1]
		ratio := 0.0
		if tour.IPC() > 0 {
			ratio = tage.IPC() / tour.IPC()
		}
		ratios = append(ratios, ratio)
		t.AddRow(spec.Name,
			ipcCell(tour),
			ipcCell(tage),
			speedupCell(tage, tour),
			fmt.Sprintf("%.4f", tour.BPU.CondAccuracy()),
			fmt.Sprintf("%.4f", tage.BPU.CondAccuracy()))
	}
	t.AddRow("geomean", "", "", fmt.Sprintf("%.3f", stats.Geomean(ratios)), "", "")
	return t, nil
}

// AblationFrontend toggles the two FDP refinements the paper's §II-A
// baseline includes — post-fetch correction and GHR filtering — on the
// industry-standard front-end.
func AblationFrontend(specs []workload.Spec, p Params) (*stats.Table, error) {
	combos := []struct {
		pfc, ghr bool
	}{{false, false}, {true, false}, {false, true}, {true, true}}
	res, err := sweep(specs, len(combos), p, func(spec workload.Spec, ci int) core.Config {
		c := core.DefaultConfig()
		c.Frontend.EnablePFC = combos[ci].pfc
		c.Frontend.BPU.FilterGHR = combos[ci].ghr
		c.WarmupInstrs, c.MaxInstrs = p.WarmupInstrs, p.MeasureInstrs
		return c
	})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable(
		"Ablation A3: FDP refinements (IPC speedup over both disabled)",
		"workload", "neither", "pfc-only", "ghr-filter-only", "both")
	geo := make([][]float64, len(combos))
	for si, spec := range specs {
		base := res[si][0].IPC()
		row := []string{spec.Name}
		for ci := range combos {
			sp := 0.0
			if base > 0 {
				sp = res[si][ci].IPC() / base
			}
			geo[ci] = append(geo[ci], sp)
			row = append(row, speedupCell(res[si][ci], res[si][0]))
		}
		t.AddRow(row...)
	}
	gm := []string{"geomean"}
	for ci := range combos {
		gm = append(gm, fmt.Sprintf("%.3f", stats.Geomean(geo[ci])))
	}
	t.AddRow(gm...)
	return t, nil
}
