package experiment

import (
	"testing"

	"frontsim/internal/core"
	"frontsim/internal/program"
	"frontsim/internal/stats"
	"frontsim/internal/workload"
)

// TestPaperShapesOnServerWorkloads is the reproduction's regression
// anchor: the qualitative Figure-1 relationships the paper reports must
// hold on a small server sub-suite at moderate scale. If a change to the
// simulator or the workload tuning breaks one of these orderings, the
// reproduction is no longer telling the paper's story.
func TestPaperShapesOnServerWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-configuration suite run")
	}
	specs := []workload.Spec{}
	for _, n := range []string{"public_srv_60", "secret_srv12", "secret_srv41"} {
		s, _ := workload.Lookup(n)
		specs = append(specs, s)
	}
	p := DefaultParams()
	p.WarmupInstrs = 300_000
	p.MeasureInstrs = 800_000
	p.ProfileInstrs = 1_000_000

	ms, err := RunSuite(specs, p, nil)
	if err != nil {
		t.Fatal(err)
	}

	geo := func(f func(*Matrix) float64) float64 {
		var xs []float64
		for _, m := range ms {
			xs = append(xs, f(m))
		}
		return stats.Geomean(xs)
	}

	asmdbCons := geo(func(m *Matrix) float64 { return m.Speedup(m.AsmdbCons) })
	idealCons := geo(func(m *Matrix) float64 { return m.Speedup(m.AsmdbConsIdeal) })
	fdp := geo(func(m *Matrix) float64 { return m.Speedup(m.FDP) })
	asmdbFDP := geo(func(m *Matrix) float64 { return m.Speedup(m.AsmdbFDP) })
	idealFDP := geo(func(m *Matrix) float64 { return m.Speedup(m.AsmdbFDPIdeal) })

	// Shape 1: AsmDB helps the conservative front-end.
	if asmdbCons < 1.02 {
		t.Errorf("AsmDB on conservative gives %.3f, want clearly > 1", asmdbCons)
	}
	// Shape 2: removing insertion overhead helps more.
	if idealCons <= asmdbCons {
		t.Errorf("ideal AsmDB (%.3f) should beat inserted AsmDB (%.3f) on conservative", idealCons, asmdbCons)
	}
	// Shape 3: the aggressive FDP front-end alone beats AsmDB-on-conservative.
	if fdp <= asmdbCons+0.05 {
		t.Errorf("FDP (%.3f) should dominate AsmDB on conservative (%.3f)", fdp, asmdbCons)
	}
	// Shape 4 (the headline): AsmDB adds nothing on the aggressive
	// front-end — within a few percent of FDP alone, not a clear win.
	if asmdbFDP > fdp*1.05 {
		t.Errorf("AsmDB+FDP (%.3f) should not clearly beat FDP (%.3f)", asmdbFDP, fdp)
	}
	// Shape 5: the insertion overhead is the mechanism — waiving it
	// restores a gain over FDP and over the inserted variant.
	if idealFDP <= asmdbFDP {
		t.Errorf("ideal AsmDB+FDP (%.3f) should beat inserted AsmDB+FDP (%.3f)", idealFDP, asmdbFDP)
	}
	if idealFDP <= fdp {
		t.Errorf("ideal AsmDB+FDP (%.3f) should exceed FDP alone (%.3f)", idealFDP, fdp)
	}

	// Scenario-statistics shapes (Figs 8-11 directions).
	for _, m := range ms {
		if m.FDP.FTQ.AvgHeadFetch() <= m.FDP.FTQ.AvgNonHeadFetch() {
			t.Errorf("%s: head fetch latency should exceed non-head", m.Spec.Name)
		}
		// Fewer Scenario-3 partials at depth 24 than depth 2 (both
		// normalized per instruction).
		p2 := float64(m.Cons.FTQ.PartialEntries) / float64(m.Cons.Instructions)
		p24 := float64(m.FDP.FTQ.PartialEntries) / float64(m.FDP.Instructions)
		if p24 >= p2 {
			t.Errorf("%s: partials/instr at 24 (%.5f) should be below 2-entry (%.5f)", m.Spec.Name, p24, p2)
		}
		// FTQ merging cuts L1-I accesses at depth 24.
		a2 := float64(m.Cons.L1I.Accesses) / float64(m.Cons.Instructions)
		a24 := float64(m.FDP.L1I.Accesses) / float64(m.FDP.Instructions)
		if a24 >= a2 {
			t.Errorf("%s: L1-I accesses/instr at 24 (%.4f) should be below 2-entry (%.4f)", m.Spec.Name, a24, a2)
		}
		// AsmDB raises waiting entries over the matching baseline (the
		// paper's Scenario-2 interference argument) on the deep FTQ.
		w := float64(m.FDP.FTQ.WaitingEntryCycles) / float64(m.FDP.Instructions)
		wa := float64(m.AsmdbFDP.FTQ.WaitingEntryCycles) / float64(m.AsmdbFDP.Instructions)
		if wa <= w*0.95 {
			t.Errorf("%s: AsmDB should not reduce waiting entry-cycles markedly (%.4f vs %.4f)", m.Spec.Name, wa, w)
		}
	}
}

// TestMPKIBandsPerCategory pins the workload calibration: each category's
// L1-I MPKI on the 24-entry baseline stays in its designed band.
func TestMPKIBandsPerCategory(t *testing.T) {
	if testing.Short() {
		t.Skip("several baseline runs")
	}
	cases := []struct {
		name   string
		lo, hi float64
	}{
		{"secret_crypto52", 0, 4},
		{"secret_crypto80", 0, 4},
		{"secret_int_44", 2, 16},
		{"secret_int_124", 2, 16},
		{"secret_srv12", 6, 45},
		{"public_srv_60", 6, 45},
	}
	p := DefaultParams()
	for _, c := range cases {
		spec, _ := workload.Lookup(c.name)
		prog, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.DefaultConfig()
		cfg.WarmupInstrs, cfg.MaxInstrs = 200_000, 500_000
		st, err := core.RunSource(cfg, program.NewExecutor(prog, spec.Seed^p.ExecSeedSalt))
		if err != nil {
			t.Fatal(err)
		}
		mpki := st.L1IMPKI()
		if mpki < c.lo || mpki > c.hi {
			t.Errorf("%s MPKI %.1f outside [%v,%v]", c.name, mpki, c.lo, c.hi)
		}
	}
}
