package experiment

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"frontsim/internal/runner"
	"frontsim/internal/workload"
)

func cellParams(t *testing.T, dir string) Params {
	t.Helper()
	p := DefaultParams()
	p.WarmupInstrs = 20_000
	p.MeasureInstrs = 60_000
	p.ProfileInstrs = 80_000
	c, err := runner.OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	p.Cache = c
	return p
}

// TestCellMatchesSuite pins the serving layer's core guarantee: a cell
// produced by RunCellCtx is byte-identical to the same cell produced by
// the suite path, and the two share one cache entry.
func TestCellMatchesSuite(t *testing.T) {
	dir := t.TempDir()
	p := cellParams(t, dir)
	spec := workload.All()[0]

	m, err := RunMatrix(spec, 1, p)
	if err != nil {
		t.Fatal(err)
	}

	pool := runner.NewPool(2)
	defer pool.Close()
	for id := seriesID(0); id < numSeries; id++ {
		label := seriesLabels[id]
		res, err := RunCellCtx(context.Background(), pool, spec, label, p)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if !res.Cached {
			t.Fatalf("%s: cell missed the cache the suite populated", label)
		}
		want, err := m.seriesPtr(id).CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		got, err := res.Stats.CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: cell and suite stats differ:\ncell:  %s\nsuite: %s", label, got, want)
		}
	}
}

// TestColdCellMatchesSuite runs one plan-derived cell cold (its own cache)
// and asserts it reproduces the suite's result bit-for-bit, including the
// dependency chain (baseline, profile, plan).
func TestColdCellMatchesSuite(t *testing.T) {
	spec := workload.All()[0]

	suiteP := cellParams(t, t.TempDir())
	m, err := RunMatrix(spec, 1, suiteP)
	if err != nil {
		t.Fatal(err)
	}

	cellP := cellParams(t, t.TempDir())
	pool := runner.NewPool(2)
	defer pool.Close()
	res, err := RunCellCtx(context.Background(), pool, spec, "asmdb+fdp24", cellP)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached {
		t.Fatal("cold cell reported a cache hit")
	}
	want, err := m.AsmdbFDP.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.Stats.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("cold cell diverged from suite:\ncell:  %s\nsuite: %s", got, want)
	}

	// Both paths must also agree on the cell's content address, i.e. they
	// wrote the same cache entry.
	addr, err := CellAddress(spec, "asmdb+fdp24", cellP)
	if err != nil {
		t.Fatal(err)
	}
	if addr != res.Fingerprint {
		t.Fatalf("CellAddress %s != RunCellCtx fingerprint %s", addr, res.Fingerprint)
	}
	entry := filepath.Join(suiteP.Cache.Dir(), addr[:2], addr+".json")
	if _, err := os.Stat(entry); err != nil {
		t.Fatalf("suite cache lacks the cell's entry at its address: %v", err)
	}
}

// cacheDirState scans a cache directory: entry files, temp litter.
func cacheDirState(t *testing.T, dir string) (entries, temps []string) {
	t.Helper()
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return nil
		}
		if strings.HasPrefix(d.Name(), ".tmp-") {
			temps = append(temps, path)
		} else {
			entries = append(entries, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return entries, temps
}

// TestCancelledCellNeverCached cancels cell executions and asserts the
// run cache never contains the cancelled cell: a pre-cancelled request
// writes nothing at all, and a mid-run cancellation leaves only valid,
// fully-written dependency entries — never the requested cell, never temp
// litter.
func TestCancelledCellNeverCached(t *testing.T) {
	spec := workload.All()[0]
	pool := runner.NewPool(2)
	defer pool.Close()

	t.Run("pre-cancelled", func(t *testing.T) {
		dir := t.TempDir()
		p := cellParams(t, dir)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, err := RunCellCtx(ctx, pool, spec, "fdp24", p)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("RunCellCtx = %v, want context.Canceled", err)
		}
		entries, temps := cacheDirState(t, dir)
		if len(entries) != 0 || len(temps) != 0 {
			t.Fatalf("pre-cancelled cell wrote to the cache: entries %v temps %v", entries, temps)
		}
	})

	t.Run("mid-run", func(t *testing.T) {
		dir := t.TempDir()
		p := cellParams(t, dir)
		addr, err := CellAddress(spec, "asmdb+fdp24", p)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(30 * time.Millisecond)
			cancel()
		}()
		_, err = RunCellCtx(ctx, pool, spec, "asmdb+fdp24", p)
		if err == nil {
			t.Skip("run completed before the cancel landed; nothing to assert")
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("RunCellCtx = %v, want context.Canceled", err)
		}
		entries, temps := cacheDirState(t, dir)
		if len(temps) != 0 {
			t.Fatalf("cancelled cell left temp litter: %v", temps)
		}
		for _, e := range entries {
			if strings.HasSuffix(e, addr+".json") {
				t.Fatalf("cancelled cell %s was written to the cache", addr)
			}
			// Whatever dependencies completed must be whole entries.
			b, err := os.ReadFile(e)
			if err != nil {
				t.Fatal(err)
			}
			if !json.Valid(b) {
				t.Fatalf("torn cache entry %s", e)
			}
		}
	})
}

// TestStoreCellBytesRoundTrip pins the peer write-back contract: bytes
// produced by a cell run on one cache, stored verbatim into a second
// cache via StoreCellBytes, yield a byte-identical on-disk entry — the
// property that makes a sharded cluster's caches converge — and the
// second cache answers ProbeCell without executing anything.
func TestStoreCellBytesRoundTrip(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	pA := cellParams(t, dirA)
	pB := cellParams(t, dirB)
	spec := workload.All()[0]

	pool := runner.NewPool(2)
	defer pool.Close()
	res, err := RunCellCtx(context.Background(), pool, spec, "fdp24", pA)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := res.Stats.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}

	if err := StoreCellBytes(spec, "fdp24", pB, raw); err != nil {
		t.Fatal(err)
	}

	entry := filepath.Join(res.Fingerprint[:2], res.Fingerprint+".json")
	a, err := os.ReadFile(filepath.Join(dirA, entry))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dirB, entry))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("stored entry differs from the executed one:\nA: %s\nB: %s", a, b)
	}

	st, addr, ok, err := ProbeCell(spec, "fdp24", pB)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || addr != res.Fingerprint {
		t.Fatalf("probe after store: ok=%v addr=%s, want hit at %s", ok, addr, res.Fingerprint)
	}
	got, err := st.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, raw) {
		t.Fatal("probed stats decode to different canonical bytes")
	}

	// Garbage and schema-mismatched payloads must be refused before the
	// cache is touched.
	if err := StoreCellBytes(spec, "fdp24", pB, []byte(`{"not_a_stat":1}`)); err == nil {
		t.Fatal("unknown-field payload accepted")
	}
	if err := StoreCellBytes(spec, "fdp24", pB, []byte(`garbage`)); err == nil {
		t.Fatal("non-JSON payload accepted")
	}
	if err := StoreCellBytes(spec, "no-such-series", pB, raw); err == nil {
		t.Fatal("unknown series accepted")
	}
}
