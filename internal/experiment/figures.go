package experiment

import (
	"fmt"

	"frontsim/internal/cache"
	"frontsim/internal/core"
	"frontsim/internal/ftq"
	"frontsim/internal/stats"
)

// column extracts one series across matrices.
func column(ms []*Matrix, f func(*Matrix) float64) []float64 {
	out := make([]float64, len(ms))
	for i, m := range ms {
		out[i] = f(m)
	}
	return out
}

// Figure1 reproduces the headline comparison: per-workload IPC normalized
// to the conservative 2-entry-FTQ baseline for every series, with the
// geometric mean in the final row.
func Figure1(ms []*Matrix) *stats.Table {
	t := stats.NewTable(
		"Figure 1: performance over a conservative front-end with a 2-entry FTQ (IPC speedup)",
		"#", "workload", "asmdb", "asmdb-ideal", "fdp24", "asmdb+fdp24", "asmdb-ideal+fdp24", "eip+fdp24",
	)
	series := []func(*Matrix) float64{
		func(m *Matrix) float64 { return m.Speedup(m.AsmdbCons) },
		func(m *Matrix) float64 { return m.Speedup(m.AsmdbConsIdeal) },
		func(m *Matrix) float64 { return m.Speedup(m.FDP) },
		func(m *Matrix) float64 { return m.Speedup(m.AsmdbFDP) },
		func(m *Matrix) float64 { return m.Speedup(m.AsmdbFDPIdeal) },
		func(m *Matrix) float64 { return m.Speedup(m.EIPFDP) },
	}
	for _, m := range ms {
		cells := []interface{}{fmt.Sprint(m.Index), m.Spec.Name}
		for _, f := range series {
			cells = append(cells, f(m))
		}
		t.AddRowf(cells...)
	}
	gm := []interface{}{"", "geomean"}
	for _, f := range series {
		gm = append(gm, stats.Geomean(column(ms, f)))
	}
	t.AddRowf(gm...)
	return t
}

// Figure7 reports static (7a) and dynamic (7b) code bloat percentages.
func Figure7(ms []*Matrix) *stats.Table {
	t := stats.NewTable(
		"Figure 7: AsmDB code bloat (percent)",
		"#", "workload", "static%", "dynamic%",
	)
	for _, m := range ms {
		t.AddRow(fmt.Sprint(m.Index), m.Spec.Name,
			fmt.Sprintf("%.2f", 100*m.StaticBloat),
			fmt.Sprintf("%.2f", 100*m.AsmdbFDP.DynamicBloat()))
	}
	t.AddRow("", "average",
		fmt.Sprintf("%.2f", 100*stats.Mean(column(ms, func(m *Matrix) float64 { return m.StaticBloat }))),
		fmt.Sprintf("%.2f", 100*stats.Mean(column(ms, func(m *Matrix) float64 { return m.AsmdbFDP.DynamicBloat() }))))
	return t
}

// Figure8 reports average cycles to fetch a head entry vs a non-head entry
// for the 24-entry and 2-entry FDP baselines (panels a-d of the paper).
func Figure8(ms []*Matrix) *stats.Table {
	t := stats.NewTable(
		"Figure 8: average cycles to fetch FTQ entries (head = stalled at head; non-head = covered)",
		"#", "workload", "head@24", "head@2", "nonhead@24", "nonhead@2",
	)
	for _, m := range ms {
		t.AddRow(fmt.Sprint(m.Index), m.Spec.Name,
			fmt.Sprintf("%.1f", m.FDP.FTQ.AvgHeadFetch()),
			fmt.Sprintf("%.1f", m.Cons.FTQ.AvgHeadFetch()),
			fmt.Sprintf("%.1f", m.FDP.FTQ.AvgNonHeadFetch()),
			fmt.Sprintf("%.1f", m.Cons.FTQ.AvgNonHeadFetch()))
	}
	t.AddRow("", "average",
		fmt.Sprintf("%.1f", stats.Mean(column(ms, func(m *Matrix) float64 { return m.FDP.FTQ.AvgHeadFetch() }))),
		fmt.Sprintf("%.1f", stats.Mean(column(ms, func(m *Matrix) float64 { return m.Cons.FTQ.AvgHeadFetch() }))),
		fmt.Sprintf("%.1f", stats.Mean(column(ms, func(m *Matrix) float64 { return m.FDP.FTQ.AvgNonHeadFetch() }))),
		fmt.Sprintf("%.1f", stats.Mean(column(ms, func(m *Matrix) float64 { return m.Cons.FTQ.AvgNonHeadFetch() }))))
	return t
}

// HeadStallBreakdown supplements Figure 8/9: the distribution of
// head-stall episode durations over the hierarchy's latency bands, showing
// which memory level the stalling heads wait on at each FTQ depth.
func HeadStallBreakdown(ms []*Matrix) *stats.Table {
	bounds := ftq.HeadStallBuckets
	cols := []string{"#", "workload", "depth"}
	prev := cache.Cycle(0)
	for _, b := range bounds {
		cols = append(cols, fmt.Sprintf("%d-%dcyc", prev, b-1))
		prev = b
	}
	cols = append(cols, fmt.Sprintf(">=%dcyc", prev))
	t := stats.NewTable(
		"Head-stall episode durations by latency band (share of episodes)",
		cols...,
	)
	add := func(m *Matrix, label string, st core.Stats) {
		hist := st.FTQ.HeadStallHist
		var total int64
		for _, c := range hist {
			total += c
		}
		row := []string{fmt.Sprint(m.Index), m.Spec.Name, label}
		for _, c := range hist {
			pct := 0.0
			if total > 0 {
				pct = 100 * float64(c) / float64(total)
			}
			row = append(row, fmt.Sprintf("%.1f%%", pct))
		}
		t.AddRow(row...)
	}
	for _, m := range ms {
		add(m, "ftq2", m.Cons)
		add(m, "ftq24", m.FDP)
	}
	return t
}

// perMillion scales a counter to events per million measured instructions
// so series with different run lengths compare directly.
func perMillion(st core.Stats, v int64) float64 {
	if st.Instructions == 0 {
		return 0
	}
	return float64(v) / float64(st.Instructions) * 1e6
}

// figureStall builds the Fig 9/10/11 family: one metric, both FTQ depths,
// three series each (baseline, AsmDB, AsmDB without insertion overhead).
func figureStall(ms []*Matrix, title string, metric func(core.Stats) int64) *stats.Table {
	t := stats.NewTable(title,
		"#", "workload",
		"ftq2", "ftq2+asmdb", "ftq2+asmdb-ideal",
		"ftq24", "ftq24+asmdb", "ftq24+asmdb-ideal",
	)
	get := func(st core.Stats) string {
		return fmt.Sprintf("%.0f", perMillion(st, metric(st)))
	}
	for _, m := range ms {
		t.AddRow(fmt.Sprint(m.Index), m.Spec.Name,
			get(m.Cons), get(m.AsmdbCons), get(m.AsmdbConsIdeal),
			get(m.FDP), get(m.AsmdbFDP), get(m.AsmdbFDPIdeal))
	}
	avg := func(f func(*Matrix) core.Stats) string {
		return fmt.Sprintf("%.0f", stats.Mean(column(ms, func(m *Matrix) float64 {
			st := f(m)
			return perMillion(st, metric(st))
		})))
	}
	t.AddRow("", "average",
		avg(func(m *Matrix) core.Stats { return m.Cons }),
		avg(func(m *Matrix) core.Stats { return m.AsmdbCons }),
		avg(func(m *Matrix) core.Stats { return m.AsmdbConsIdeal }),
		avg(func(m *Matrix) core.Stats { return m.FDP }),
		avg(func(m *Matrix) core.Stats { return m.AsmdbFDP }),
		avg(func(m *Matrix) core.Stats { return m.AsmdbFDPIdeal }))
	return t
}

// Figure9 reports head-entry stall cycles (Scenario 2 exposure).
func Figure9(ms []*Matrix) *stats.Table {
	return figureStall(ms,
		"Figure 9: stalls caused by head FTQ entries (stall cycles per million instructions)",
		func(st core.Stats) int64 { return st.FTQ.HeadStallCycles })
}

// Figure10 reports entries waiting behind a stalling head.
func Figure10(ms []*Matrix) *stats.Table {
	return figureStall(ms,
		"Figure 10: FTQ entries waiting on a stalling head (entry-cycles per million instructions)",
		func(st core.Stats) int64 { return st.FTQ.WaitingEntryCycles })
}

// Figure11 reports entries promoted to head before completing fetch
// (Scenario 3, shadow stalls).
func Figure11(ms []*Matrix) *stats.Table {
	return figureStall(ms,
		"Figure 11: FTQ entries moving into the head position while still fetching (per million instructions)",
		func(st core.Stats) int64 { return st.FTQ.PartialEntries })
}

// TableI renders the simulated machine parameters.
func TableI() *stats.Table {
	c := core.DefaultConfig()
	t := stats.NewTable("Table I: simulation parameters", "component", "configuration")
	t.AddRow("Core", fmt.Sprintf("%d-wide decode/dispatch, %d-wide retire, %d-entry ROB, %d-cycle pipeline",
		c.DecodeWidth, c.Backend.RetireWidth, c.Backend.ROBSize, c.Backend.PipelineDepth))
	t.AddRow("Front-end (industry)", fmt.Sprintf("FDP, %d-entry FTQ (basic blocks of up to 8 instrs), PFC, GHR filtering, %d-line wrong-path streaming", c.Frontend.FTQEntries, c.Frontend.WrongPathDepth))
	t.AddRow("Front-end (conservative)", fmt.Sprintf("FDP, %d-entry FTQ", core.ConservativeConfig().Frontend.FTQEntries))
	t.AddRow("Branch predictor", fmt.Sprintf("bimodal+gshare tournament (%d-bit GHR), %d-entry/%d-way BTB, %d-deep RAS, 2^%d indirect",
		c.Frontend.BPU.GHRBits, c.Frontend.BPU.BTBEntries, c.Frontend.BPU.BTBWays, c.Frontend.BPU.RASDepth, c.Frontend.BPU.IndirectBits))
	t.AddRow("L1-I", fmt.Sprintf("%d KiB, %d-way, %d-cycle", c.Memory.L1I.SizeBytes>>10, c.Memory.L1I.Ways, c.Memory.L1I.HitLatency))
	t.AddRow("L1-D", fmt.Sprintf("%d KiB, %d-way, %d-cycle", c.Memory.L1D.SizeBytes>>10, c.Memory.L1D.Ways, c.Memory.L1D.HitLatency))
	t.AddRow("L2", fmt.Sprintf("%d KiB, %d-way, %d-cycle", c.Memory.L2.SizeBytes>>10, c.Memory.L2.Ways, c.Memory.L2.HitLatency))
	t.AddRow("LLC", fmt.Sprintf("%d MiB, %d-way, %d-cycle, SRRIP", c.Memory.LLC.SizeBytes>>20, c.Memory.LLC.Ways, c.Memory.LLC.HitLatency))
	t.AddRow("DRAM", fmt.Sprintf("%d-cycle latency, %d channels, %d-cycle line occupancy",
		c.Memory.DRAM.Latency, c.Memory.DRAM.Channels, c.Memory.DRAM.BusCycles))
	return t
}

// Methodology reports the per-workload L1-I MPKI band (§IV: ~2-28 MPKI)
// and the §V-B L1-I access reduction from FTQ aliasing.
func Methodology(ms []*Matrix) *stats.Table {
	t := stats.NewTable(
		"Methodology: L1-I MPKI (24-entry FTQ baseline) and FTQ-aliasing access reduction",
		"#", "workload", "mpki@24", "l1i-acc@2/Minstr", "l1i-acc@24/Minstr", "reduction%",
	)
	var reductions []float64
	for _, m := range ms {
		a2 := perMillion(m.Cons, m.Cons.L1I.Accesses)
		a24 := perMillion(m.FDP, m.FDP.L1I.Accesses)
		red := 0.0
		if a2 > 0 {
			red = 100 * (1 - a24/a2)
		}
		reductions = append(reductions, red)
		t.AddRow(fmt.Sprint(m.Index), m.Spec.Name,
			fmt.Sprintf("%.1f", m.FDP.L1IMPKI()),
			fmt.Sprintf("%.0f", a2),
			fmt.Sprintf("%.0f", a24),
			fmt.Sprintf("%.1f", red))
	}
	t.AddRow("", "average",
		fmt.Sprintf("%.1f", stats.Mean(column(ms, func(m *Matrix) float64 { return m.FDP.L1IMPKI() }))),
		"", "",
		fmt.Sprintf("%.1f", stats.Mean(reductions)))
	return t
}
