package experiment

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"frontsim/internal/obs"
	"frontsim/internal/runner"
	"frontsim/internal/workload"
)

// batchHarnessParams scales the budgets below tinyParams so the
// equivalence harness can afford two full passes (matrix plus all eight
// ablations, batched and per-cell) in one test.
func batchHarnessParams() Params {
	p := DefaultParams()
	p.WarmupInstrs = 40_000
	p.MeasureInstrs = 100_000
	p.ProfileInstrs = 200_000
	return p
}

// snapshotDir reads every file under dir keyed by slash-separated
// relative path, for byte-level directory comparison.
func snapshotDir(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	files := map[string][]byte{}
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		files[filepath.ToSlash(rel)] = b
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return files
}

// batchPass is everything one full batched or per-cell pass produces: the
// matrix series, every ablation table, the suite metrics export, the
// run-cache directory contents, and execution-shape counters.
type batchPass struct {
	series   [][]byte          // canonical stats JSON per matrix series
	tables   map[string]string // rendered ablation tables by name
	obs      []byte            // suite metrics export
	cache    map[string][]byte // cache dir file snapshot
	sinks    int64             // ObsRun invocations (one per live cell)
	poolJobs int64             // pool jobs the matrix pass executed
}

// runBatchPass executes the full evaluation surface — the per-workload
// matrix plus all eight ablations — against a fresh cache, with audit and
// both observability hooks enabled, in the requested execution mode.
func runBatchPass(t *testing.T, spec workload.Spec, batch bool) batchPass {
	t.Helper()
	dir := t.TempDir()
	c, err := runner.OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	p := batchHarnessParams()
	p.Cache = c
	p.Batch = batch
	p.Audit = true
	col := &obs.SuiteCollector{}
	p.Obs = col
	var sinks atomic.Int64
	p.ObsRun = func(workload, series string) obs.Sink {
		sinks.Add(1)
		return nil
	}

	pool := runner.NewPool(p.Parallelism)
	m, err := runMatrixPooled(pool, spec, 1, p, nil)
	poolJobs := pool.JobsExecuted()
	pool.Close()
	if err != nil {
		t.Fatal(err)
	}
	out := batchPass{tables: map[string]string{}, poolJobs: poolJobs}
	for id := seriesID(0); id < numSeries; id++ {
		j, err := m.seriesPtr(id).CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		out.series = append(out.series, j)
	}

	specs := []workload.Spec{spec}
	for _, abl := range []struct {
		name string
		run  func() (interface{ String() string }, error)
	}{
		{"ftq", func() (interface{ String() string }, error) { return AblationFTQDepth(specs, []int{2, 8, 24}, p) }},
		{"fanout", func() (interface{ String() string }, error) { return AblationFanout(specs, []float64{0.3, 0.6}, p) }},
		{"frontend", func() (interface{ String() string }, error) { return AblationFrontend(specs, p) }},
		{"predictor", func() (interface{ String() string }, error) { return AblationPredictor(specs, p) }},
		{"replacement", func() (interface{ String() string }, error) { return AblationReplacement(specs, p) }},
		{"wrongpath", func() (interface{ String() string }, error) { return AblationWrongPath(specs, []int{0, 4}, p) }},
		{"btb", func() (interface{ String() string }, error) { return AblationBTB(specs, []int{0, 64}, p) }},
		{"mechanism", func() (interface{ String() string }, error) { return AblationMechanism(specs, p) }},
	} {
		tab, err := abl.run()
		if err != nil {
			t.Fatalf("%s: %v", abl.name, err)
		}
		out.tables[abl.name] = tab.String()
	}

	var buf bytes.Buffer
	if err := col.Export().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out.obs = buf.Bytes()
	out.cache = snapshotDir(t, dir)
	out.sinks = sinks.Load()
	return out
}

// TestBatchEquivalence is the harness the tentpole is pinned by: the
// complete evaluation surface — the ten-series matrix and all eight
// ablations, with audit and observability enabled — run batched and
// per-cell from cold caches must produce byte-identical stats, identical
// tables, identical metric exports, and byte-identical cache directories
// (same file names, same bytes: the Batch flag is invisible to every
// fingerprint and cache key, so both modes share entries).
func TestBatchEquivalence(t *testing.T) {
	spec, ok := workload.Lookup("public_srv_60")
	if !ok {
		t.Fatal("suite workload missing")
	}
	batched := runBatchPass(t, spec, true)
	solo := runBatchPass(t, spec, false)

	for id := seriesID(0); id < numSeries; id++ {
		if !bytes.Equal(batched.series[id], solo.series[id]) {
			t.Errorf("%s: stats diverge\nbatched:  %s\nper-cell: %s",
				seriesLabels[id], batched.series[id], solo.series[id])
		}
	}
	for name, want := range solo.tables {
		if got := batched.tables[name]; got != want {
			t.Errorf("ablation %s diverges\nbatched:\n%s\nper-cell:\n%s", name, got, want)
		}
	}
	if !bytes.Equal(batched.obs, solo.obs) {
		t.Errorf("suite metrics diverge\nbatched:  %s\nper-cell: %s", batched.obs, solo.obs)
	}
	if batched.sinks != solo.sinks {
		t.Errorf("ObsRun invocations: batched %d, per-cell %d", batched.sinks, solo.sinks)
	}

	if len(batched.cache) == 0 {
		t.Fatal("batched pass wrote no cache entries")
	}
	for rel, want := range solo.cache {
		got, ok := batched.cache[rel]
		if !ok {
			t.Errorf("cache entry %s missing from batched run", rel)
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("cache entry %s differs between modes", rel)
		}
	}
	for rel := range batched.cache {
		if _, ok := solo.cache[rel]; !ok {
			t.Errorf("cache entry %s only written by batched run", rel)
		}
	}

	// The batch is the pool's scheduling unit: the batched matrix runs its
	// ten cold cells as three stream jobs (base program, rewritten
	// program, trigger table), the per-cell matrix as ten.
	if batched.poolJobs >= solo.poolJobs {
		t.Errorf("batched matrix executed %d pool jobs, per-cell %d; batching did not coarsen job granularity",
			batched.poolJobs, solo.poolJobs)
	}
}

// TestMixedWarmColdBatch pins batch composition against a half-warm
// cache: cells pre-warmed by an earlier pass are served straight from the
// cache and never join a batch, and each workload's remaining cold cells
// run as exactly one lockstep batch.
func TestMixedWarmColdBatch(t *testing.T) {
	specA, ok := workload.Lookup("public_srv_60")
	if !ok {
		t.Fatal("suite workload missing")
	}
	specB, ok := workload.Lookup("secret_crypto52")
	if !ok {
		t.Fatal("suite workload missing")
	}
	c, err := runner.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := batchHarnessParams()
	p.Cache = c

	// Pre-warm a strict subset: specA's ftq=8 cell only.
	if _, err := AblationFTQDepth([]workload.Spec{specA}, []int{8}, p); err != nil {
		t.Fatal(err)
	}
	pre := c.Metrics()

	var mu sync.Mutex
	batches := map[string][][]string{} // workload -> one series list per batch
	batchHook = func(cells []batchCell) {
		mu.Lock()
		defer mu.Unlock()
		var series []string
		for _, cell := range cells {
			if cell.wl != cells[0].wl {
				t.Errorf("batch mixes workloads %s and %s", cells[0].wl, cell.wl)
			}
			series = append(series, cell.series)
		}
		batches[cells[0].wl] = append(batches[cells[0].wl], series)
	}
	defer func() { batchHook = nil }()

	if _, err := AblationFTQDepth([]workload.Spec{specA, specB}, []int{2, 8, 24}, p); err != nil {
		t.Fatal(err)
	}

	if m := c.Metrics(); m.Hits <= pre.Hits {
		t.Errorf("pre-warmed cell was not served from the cache: %+v -> %+v", pre, m)
	}
	for wl, want := range map[string][]string{
		specA.Name: {"ftq2", "ftq24"}, // ftq8 is warm and must stay out
		specB.Name: {"ftq2", "ftq8", "ftq24"},
	} {
		got := batches[wl]
		if len(got) != 1 {
			t.Fatalf("%s: %d batch jobs, want exactly 1 (%v)", wl, len(got), got)
		}
		if len(got[0]) != len(want) {
			t.Fatalf("%s: batch %v, want %v", wl, got[0], want)
		}
		for i := range want {
			if got[0][i] != want[i] {
				t.Fatalf("%s: batch %v, want %v", wl, got[0], want)
			}
		}
	}
}
