//go:build !race

package experiment

// longTierTestInstrs is the coverage budget TestLongTierSampledRun uses:
// the full long-tier contract is >=100M instructions per cell. The race
// detector multiplies functional-warming cost severalfold, so the raced
// build drops to a reduced budget (longtier_race_test.go) that still
// exercises the same machinery.
const longTierTestInstrs = 100_000_000
