package experiment

import (
	"bytes"
	"context"
	"math"
	"reflect"
	"strings"
	"testing"

	"frontsim/internal/core"
	"frontsim/internal/runner"
	"frontsim/internal/workload"
)

// sampledParams is tinyParams with SMARTS sampling on: ~10 windows across
// the 250k budget, enough for a t-interval while keeping the test quick.
func sampledParams() Params {
	p := tinyParams()
	p.Sampling = core.SamplingConfig{IntervalInstrs: 25_000, DetailInstrs: 2_500, WarmInstrs: 5_000}
	return p
}

// TestSamplingCacheDisjoint pins the tentpole cache-isolation contract at
// the experiment layer: a sampled suite run and an exact one over the same
// workload must address entirely disjoint run-cache entries, and the
// second run must therefore be all misses against the first one's cache.
func TestSamplingCacheDisjoint(t *testing.T) {
	spec, ok := workload.Lookup("public_srv_60")
	if !ok {
		t.Fatal("workload missing")
	}
	exact, sampled := tinyParams(), sampledParams()
	ke, err := newMatrixKeys(spec, exact)
	if err != nil {
		t.Fatal(err)
	}
	ks, err := newMatrixKeys(spec, sampled)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for id := seriesID(0); id < numSeries; id++ {
		fe, err := runner.Fingerprint(ke.series[id])
		if err != nil {
			t.Fatal(err)
		}
		fs, err := runner.Fingerprint(ks.series[id])
		if err != nil {
			t.Fatal(err)
		}
		if fe == fs {
			t.Fatalf("series %s: sampled and exact cells share cache address %s", seriesLabels[id], fe)
		}
		if seen[fe] || seen[fs] {
			t.Fatalf("series %s: duplicate cache address", seriesLabels[id])
		}
		seen[fe], seen[fs] = true, true
	}

	// End to end: warm the cache exactly, then run sampled — every sampled
	// cell must miss and re-simulate.
	c, err := runner.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	exact.Cache = c
	if _, err := RunMatrix(spec, 1, exact); err != nil {
		t.Fatal(err)
	}
	before := c.Metrics()
	sampled.Cache = c
	m, err := RunMatrix(spec, 1, sampled)
	if err != nil {
		t.Fatal(err)
	}
	after := c.Metrics()
	// numSeries fresh cells plus one fresh plan: the plan's provenance key
	// embeds the profiling config's fingerprint, which sampling changes.
	if got := after.Puts - before.Puts; got != int64(numSeries)+1 {
		t.Fatalf("sampled run stored %d new entries, want %d (cache sharing with exact?)", got, numSeries+1)
	}
	if m.FDP.Sampling == nil || m.FDP.Sampling.Windows == 0 {
		t.Fatalf("sampled matrix cell lacks sampling stats: %+v", m.FDP.Sampling)
	}
}

// TestSamplingConformance crosses the sampled run mode with the suite's
// execution-strategy toggles — fast-forward, lockstep batching, audit —
// and requires byte-identical matrices from every combination. Each run
// uses a cold cache so nothing is served across combinations.
func TestSamplingConformance(t *testing.T) {
	spec, ok := workload.Lookup("public_srv_60")
	if !ok {
		t.Fatal("workload missing")
	}
	type combo struct {
		name      string
		ff, batch bool
		audit     bool
	}
	combos := []combo{
		{"ff+batch", true, true, false},
		{"plain", false, false, false},
		{"ff-only", true, false, false},
		{"batch-audit", false, true, true},
	}
	var ref *Matrix
	for _, cb := range combos {
		p := sampledParams()
		p.FastForward, p.Batch, p.Audit = cb.ff, cb.batch, cb.audit
		c, err := runner.OpenCache(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		p.Cache = c
		m, err := RunMatrix(spec, 1, p)
		if err != nil {
			t.Fatalf("%s: %v", cb.name, err)
		}
		if ref == nil {
			ref = m
			continue
		}
		for id := seriesID(0); id < numSeries; id++ {
			a, err := ref.seriesPtr(id).CanonicalJSON()
			if err != nil {
				t.Fatal(err)
			}
			b, err := m.seriesPtr(id).CanonicalJSON()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a, b) {
				t.Errorf("%s: series %s differs from %s:\n %s\n %s",
					cb.name, seriesLabels[id], combos[0].name, b, a)
			}
		}
		if !reflect.DeepEqual(ref.Plan, m.Plan) {
			t.Errorf("%s: plan differs", cb.name)
		}
	}
}

// TestSamplingTableCI checks the rendered ablation tables carry ± columns
// exactly when sampling is on: the A8 mechanism table gets confidence
// half-widths on IPC and speedup cells under sampledParams and plain
// values under tinyParams.
func TestSamplingTableCI(t *testing.T) {
	specs := []workload.Spec{mustLookup(t, "public_srv_60")}
	c, err := runner.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := sampledParams()
	p.Cache = c
	tbl, err := AblationMechanism(specs, p)
	if err != nil {
		t.Fatal(err)
	}
	if s := tbl.String(); !strings.Contains(s, "±") {
		t.Fatalf("sampled A8 table lacks confidence intervals:\n%s", s)
	}
	pe := tinyParams()
	pe.Cache = c
	tbl, err = AblationMechanism(specs, pe)
	if err != nil {
		t.Fatal(err)
	}
	if s := tbl.String(); strings.Contains(s, "±") {
		t.Fatalf("exact A8 table unexpectedly shows confidence intervals:\n%s", s)
	}
}

func mustLookup(t *testing.T, name string) workload.Spec {
	t.Helper()
	spec, ok := workload.Lookup(name)
	if !ok {
		t.Fatalf("workload %s missing", name)
	}
	return spec
}

// TestLongTierSampledRun is the executable contract behind
// workload.LongBudgetInstrs: a long-tier workload, sampled with the
// validated long-tier geometry at a coverage budget of at least 100M
// instructions (reduced under the race detector), completes and reports a
// finite confidence interval whose coverage bookkeeping accounts for the
// whole budget. EXPERIMENTS.md carries the measured wall-time and
// accuracy numbers for the full 200M budget.
func TestLongTierSampledRun(t *testing.T) {
	if testing.Short() {
		t.Skip("long-tier run simulates a multi-million-instruction budget")
	}
	spec := mustLookup(t, "long_srv_584")
	p := DefaultParams()
	p.WarmupInstrs = 1_000_000
	p.MeasureInstrs = longTierTestInstrs
	p.ProfileInstrs = 2_000_000
	p.Sampling = core.SamplingConfig{IntervalInstrs: 1_000_000, DetailInstrs: 10_000, WarmInstrs: 50_000}
	c, err := runner.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p.Cache = c
	pool := runner.NewPool(2)
	defer pool.Close()
	res, err := RunConfigCellCtx(context.Background(), pool, spec, p.fdpConfig(), p)
	if err != nil {
		t.Fatal(err)
	}
	sp := res.Stats.Sampling
	if sp == nil {
		t.Fatal("long-tier sampled run reported no sampling stats")
	}
	wantWindows := longTierTestInstrs / p.Sampling.IntervalInstrs
	if sp.Windows < wantWindows-1 || sp.Windows > wantWindows+1 {
		t.Errorf("measured %d windows, want ~%d", sp.Windows, wantWindows)
	}
	lo, hi := sp.IPCInterval()
	if !(lo > 0 && hi > lo) || math.IsInf(hi, 1) {
		t.Errorf("degenerate IPC interval [%v, %v]", lo, hi)
	}
	if est := sp.IPCMean(); est < lo || est > hi {
		t.Errorf("IPC point estimate %v outside its own interval [%v, %v]", est, lo, hi)
	}
	covered := sp.FunctionalInstrs + sp.WarmDetailInstrs + res.Stats.Instructions + sp.DrainInstrs
	if covered < longTierTestInstrs || covered > longTierTestInstrs+2*p.Sampling.IntervalInstrs {
		t.Errorf("coverage bookkeeping %d instrs does not account for the %d budget", covered, longTierTestInstrs)
	}
}
