package experiment

import (
	"strings"
	"testing"

	"frontsim/internal/core"
	"frontsim/internal/runner"
	"frontsim/internal/workload"
)

// TestSamplingValidationTiny exercises the estimator-validation harness at
// test scale: one workload, every mechanism, sampled vs exact. The
// acceptance-scale coverage contract (>= 90% over the full 48-workload
// suite) is enforced by `experiments -sampling-validate`; here we pin the
// harness mechanics — a row per mechanism plus the overall row, a
// coverage fraction in [0, 1], and rejection of a disabled sampling
// config.
func TestSamplingValidationTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every mechanism twice")
	}
	specs := []workload.Spec{mustLookup(t, "public_srv_60")}
	p := sampledParams()
	c, err := runner.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p.Cache = c
	tbl, cov, err := SamplingValidation(specs, p)
	if err != nil {
		t.Fatal(err)
	}
	if cov < 0 || cov > 1 {
		t.Fatalf("coverage fraction %v out of range", cov)
	}
	s := tbl.String()
	for _, m := range Mechanisms() {
		if !strings.Contains(s, m.Label) {
			t.Errorf("validation table lacks a %s row:\n%s", m.Label, s)
		}
	}
	if !strings.Contains(s, "overall") {
		t.Errorf("validation table lacks the overall row:\n%s", s)
	}

	exact := p
	exact.Sampling = core.SamplingConfig{}
	if _, _, err := SamplingValidation(specs, exact); err == nil {
		t.Fatal("SamplingValidation accepted a disabled sampling config")
	}
}

// TestPercentile pins the nearest-rank quantile helper the validation
// table aggregates with.
func TestPercentile(t *testing.T) {
	xs := []float64{3, 1, 2, 5, 4}
	cases := []struct {
		q, want float64
	}{{0, 1}, {0.5, 3}, {0.9, 5}, {1, 5}}
	for _, c := range cases {
		if got := percentile(xs, c.q); got != c.want {
			t.Errorf("percentile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("percentile(nil) = %v, want 0", got)
	}
}
