package experiment

import (
	"strings"
	"testing"

	"frontsim/internal/workload"
)

func extSpecs() []workload.Spec {
	s, _ := workload.Lookup("secret_crypto52")
	return []workload.Spec{s}
}

func TestExtensionPreloadTable(t *testing.T) {
	tab, err := ExtensionPreload(extSpecs(), tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if !strings.Contains(tab.String(), "secret_crypto52") {
		t.Fatal("workload row missing")
	}
}

func TestExtensionISpyTable(t *testing.T) {
	tab, err := ExtensionISpy(extSpecs(), tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 || len(tab.Columns) != 5 {
		t.Fatalf("shape %dx%d", len(tab.Rows), len(tab.Columns))
	}
}

func TestExtensionFeedbackTable(t *testing.T) {
	tab, err := ExtensionFeedback(extSpecs(), tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestAblationWrongPathTable(t *testing.T) {
	tab, err := AblationWrongPath(extSpecs(), []int{0, 4}, tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Columns) != 5 {
		t.Fatalf("columns = %d", len(tab.Columns))
	}
}

func TestAblationReplacementTable(t *testing.T) {
	tab, err := AblationReplacement(extSpecs(), tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 || len(tab.Columns) != 7 {
		t.Fatalf("shape %dx%d", len(tab.Rows), len(tab.Columns))
	}
}

func TestAblationPredictorTable(t *testing.T) {
	tab, err := AblationPredictor(extSpecs(), tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 { // workload + geomean
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}
