package experiment

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"frontsim/internal/core"
	"frontsim/internal/runner"
	"frontsim/internal/workload"
)

// mechanismPass runs every registered mechanism over one workload in one
// execution mode against a fresh cache, returning the per-mechanism
// canonical Stats JSON and a byte snapshot of the cache directory.
type mechanismPass struct {
	stats [][]byte
	cache map[string][]byte
}

func runMechanismPass(t *testing.T, spec workload.Spec, mode func(*Params)) mechanismPass {
	t.Helper()
	dir := t.TempDir()
	c, err := runner.OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	p := batchHarnessParams()
	p.Cache = c
	p.Batch = false
	mode(&p)

	mechs := Mechanisms()
	res, err := sweep([]workload.Spec{spec}, len(mechs), p, func(_ workload.Spec, ci int) core.Config {
		cfg, err := mechs[ci].Config(p)
		if err != nil {
			panic(err)
		}
		return cfg
	})
	if err != nil {
		t.Fatal(err)
	}
	out := mechanismPass{cache: snapshotDir(t, dir)}
	for ci := range mechs {
		j, err := res[0][ci].CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		out.stats = append(out.stats, j)
	}
	return out
}

// TestMechanismConformance is the cross-prefetcher conformance harness:
// every registered mechanism — no prefetching on both FTQ shapes, EIP,
// MANA, shadow-branch decoding, and the I-TLB model — must behave
// identically across every execution mode. Concretely, runs with
// fast-forward off, under lockstep batching, and under per-cycle audit
// must produce byte-identical canonical Stats and byte-identical run-cache
// directories (same keys, same bytes) as the plain fast-forwarded pass,
// and a cache warmed by one mode must serve every other mode without a
// single miss. A mechanism whose state mutates inside a fast-forwarded
// span, or that breaks a per-cycle invariant, fails here.
func TestMechanismConformance(t *testing.T) {
	spec, ok := workload.Lookup("public_srv_60")
	if !ok {
		t.Fatal("suite workload missing")
	}
	mechs := Mechanisms()

	// Identity first: every mechanism must fingerprint distinctly from
	// every other, or the run cache would conflate their results.
	p := batchHarnessParams()
	fps := map[string]string{}
	for _, m := range mechs {
		cfg, err := m.Config(p)
		if err != nil {
			t.Fatalf("%s: %v", m.Label, err)
		}
		fp := cfg.Fingerprint()
		if prev, dup := fps[fp]; dup {
			t.Fatalf("mechanisms %s and %s share fingerprint %s", prev, m.Label, fp)
		}
		fps[fp] = m.Label
	}

	base := runMechanismPass(t, spec, func(p *Params) {})
	modes := []struct {
		name string
		mode func(*Params)
	}{
		{"ff-off", func(p *Params) { p.FastForward = false }},
		{"batch", func(p *Params) { p.Batch = true }},
		{"audit", func(p *Params) { p.Audit = true }},
	}
	for _, m := range modes {
		got := runMechanismPass(t, spec, m.mode)
		for ci, mech := range mechs {
			if !bytes.Equal(base.stats[ci], got.stats[ci]) {
				t.Errorf("%s/%s: stats diverge\nbase: %s\n%s:   %s",
					mech.Label, m.name, base.stats[ci], m.name, got.stats[ci])
			}
		}
		for rel, want := range base.cache {
			b, ok := got.cache[rel]
			if !ok {
				t.Errorf("%s: cache entry %s missing", m.name, rel)
				continue
			}
			if !bytes.Equal(b, want) {
				t.Errorf("%s: cache entry %s differs from base mode", m.name, rel)
			}
		}
		for rel := range got.cache {
			if _, ok := base.cache[rel]; !ok {
				t.Errorf("%s: cache entry %s only written by this mode", m.name, rel)
			}
		}
	}

	// Cross-mode cache sharing: replay the base pass's entries byte-for-
	// byte into a fresh cache directory, then run the opposite execution
	// mode against it. Every cell must hit — the mode flags are invisible
	// to every key.
	dir := t.TempDir()
	for rel, b := range base.cache {
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	warm, err := runner.OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	pre := warm.Metrics()
	pWarm := batchHarnessParams()
	pWarm.Cache = warm
	pWarm.FastForward = false
	pWarm.Audit = true
	pWarm.Batch = true
	res, err := sweep([]workload.Spec{spec}, len(mechs), pWarm, func(_ workload.Spec, ci int) core.Config {
		cfg, err := mechs[ci].Config(pWarm)
		if err != nil {
			panic(err)
		}
		return cfg
	})
	if err != nil {
		t.Fatal(err)
	}
	post := warm.Metrics()
	if post.Misses != pre.Misses {
		t.Errorf("warm cross-mode sweep missed the cache %d times; modes do not share entries", post.Misses-pre.Misses)
	}
	if post.Hits-pre.Hits != int64(len(mechs)) {
		t.Errorf("warm cross-mode sweep hit %d entries, want %d", post.Hits-pre.Hits, len(mechs))
	}
	for ci, mech := range mechs {
		j, err := res[0][ci].CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(j, base.stats[ci]) {
			t.Errorf("%s: warm cross-mode stats differ from cold base pass", mech.Label)
		}
	}
}

// FuzzMechanismFingerprint drives the mechanism constructors with fuzzed
// budgets and asserts the fingerprint contract the run cache depends on:
// distinct mechanisms never collide, identical (mechanism, budgets) pairs
// always agree, and budget changes reach every mechanism's fingerprint.
func FuzzMechanismFingerprint(f *testing.F) {
	f.Add(int64(1000), int64(5000), int64(2000), int64(8000))
	f.Add(int64(0), int64(1), int64(0), int64(1))
	f.Add(int64(40_000), int64(100_000), int64(40_000), int64(100_000))
	f.Fuzz(func(t *testing.T, warmA, measA, warmB, measB int64) {
		if warmA < 0 || measA <= 0 || warmB < 0 || measB <= 0 {
			t.Skip()
		}
		pA := DefaultParams()
		pA.WarmupInstrs, pA.MeasureInstrs = warmA, measA
		pB := DefaultParams()
		pB.WarmupInstrs, pB.MeasureInstrs = warmB, measB
		sameBudget := warmA == warmB && measA == measB

		mechs := Mechanisms()
		fpsA := make([]string, len(mechs))
		for i, m := range mechs {
			cfgA, err := m.Config(pA)
			if err != nil {
				t.Fatalf("%s: %v", m.Label, err)
			}
			fpsA[i] = cfgA.Fingerprint()
			// Re-building the same mechanism must agree with itself: a
			// constructor that leaks instance identity (pointer, counter)
			// into the fingerprint would split the cache per run.
			again, err := m.Config(pA)
			if err != nil {
				t.Fatalf("%s: %v", m.Label, err)
			}
			if again.Fingerprint() != fpsA[i] {
				t.Errorf("%s: fingerprint unstable across constructions", m.Label)
			}
			cfgB, err := m.Config(pB)
			if err != nil {
				t.Fatalf("%s: %v", m.Label, err)
			}
			if got := cfgB.Fingerprint() == fpsA[i]; got != sameBudget {
				t.Errorf("%s: budget (%d,%d)vs(%d,%d) fingerprint equality = %v, want %v",
					m.Label, warmA, measA, warmB, measB, got, sameBudget)
			}
		}
		for i := range mechs {
			for j := i + 1; j < len(mechs); j++ {
				if fpsA[i] == fpsA[j] {
					t.Errorf("mechanisms %s and %s collide: %s", mechs[i].Label, mechs[j].Label, fpsA[i])
				}
			}
		}
	})
}
