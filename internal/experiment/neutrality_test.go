package experiment

import (
	"reflect"
	"testing"
)

// TestFingerprintNeutralRegistryMirrorsTags is the Params twin of the
// internal/core test: the json:"-" tag set and the neutrality registry
// must be the same set of fields.
func TestFingerprintNeutralRegistryMirrorsTags(t *testing.T) {
	typ := reflect.TypeOf(Params{})
	excluded := map[string]bool{}
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		if f.Tag.Get("json") != "-" {
			continue
		}
		excluded[f.Name] = true
		if test, ok := FingerprintNeutral[f.Name]; !ok {
			t.Errorf("Params.%s is fingerprint-excluded (json:\"-\") but missing from FingerprintNeutral", f.Name)
		} else if test == "" {
			t.Errorf("Params.%s is registered without an equivalence test", f.Name)
		}
	}
	for name := range FingerprintNeutral {
		if !excluded[name] {
			t.Errorf("FingerprintNeutral entry %q does not match a json:\"-\" Params field", name)
		}
	}
}
