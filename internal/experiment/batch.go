package experiment

import (
	"fmt"
	"io"

	"frontsim/internal/core"
	"frontsim/internal/obs"
	"frontsim/internal/program"
	"frontsim/internal/runner"
	"frontsim/internal/trace"
)

// batchCell is one cold (cache-missed) simulation cell queued for
// execution against a workload's instruction stream. Warm cells are
// recorded straight from the cache by the planners and never reach here,
// so a batch contains exactly the cold configurations.
type batchCell struct {
	cfg core.Config
	// wl and series key the observability hooks (Params.ObsRun and the
	// suite collector), exactly as the per-cell path keys them.
	wl, series string
	// label prefixes errors ("workload series: ...").
	label string
	// commit publishes the finished stats: result slot, cache put,
	// obs record, progress line — identical to the per-cell path's
	// post-run sequence.
	commit func(core.Stats) error
}

// batchHook, when non-nil, observes every batched execution with its
// cells; the mixed warm/cold regression test uses it to assert batch
// composition. Never set outside tests.
var batchHook func(cells []batchCell)

// dispatchCells submits cells to the group: in batch mode one lockstep
// job per workload stream (the batch is the pool's scheduling unit), in
// per-cell mode one stealable job per cell — the pre-batching execution
// path, preserved both as the equivalence baseline and for -batch=false.
func dispatchCells(g *runner.Group, p Params, prog *program.Program, execSeed uint64, cells []batchCell) {
	if p.Batch && len(cells) > 1 {
		g.Go(func() error { return runCellBatch(p, prog, execSeed, cells) })
		return
	}
	for _, cell := range cells {
		cell := cell
		g.Go(func() error { return runCellSolo(p, prog, execSeed, cell) })
	}
}

// runCellSolo executes one cold cell over its own executor — the
// pre-batching live path, byte-for-byte.
func runCellSolo(p Params, prog *program.Program, execSeed uint64, cell batchCell) error {
	c := cell.cfg
	if p.ObsRun != nil {
		c.Obs = p.ObsRun(cell.wl, cell.series)
	}
	st, err := core.RunSource(c, program.NewExecutor(prog, execSeed))
	if cl, ok := c.Obs.(io.Closer); ok {
		if cerr := cl.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("closing observer: %w", cerr)
		}
	}
	if err != nil {
		return fmt.Errorf("%s: %w", cell.label, err)
	}
	return cell.commit(st)
}

// runCellBatch executes the cold cells in lockstep over one shared
// fan-out of the workload's stream: the program is executed and decoded
// once, every live config's simulator consumes the same blocks, and a
// cell that finishes early detaches without stalling the rest. Per-cell
// identities are untouched — each cell keeps its own config, cache key,
// observer and commit — so batched results are byte-identical to the
// per-cell path (TestBatchEquivalence).
func runCellBatch(p Params, prog *program.Program, execSeed uint64, cells []batchCell) error {
	if len(cells) == 0 {
		return nil
	}
	if batchHook != nil {
		batchHook(cells)
	}
	fo := trace.NewFanout(program.NewExecutor(prog, execSeed))
	members := make([]core.BatchMember, len(cells))
	sinks := make([]obs.Sink, len(cells))
	for i, cell := range cells {
		c := cell.cfg
		if p.ObsRun != nil {
			sinks[i] = p.ObsRun(cell.wl, cell.series)
			c.Obs = sinks[i]
		}
		r := fo.NewReader()
		sim, err := core.New(c, r)
		if err != nil {
			closeSinks(sinks[:i+1])
			return fmt.Errorf("%s: %w", cell.label, err)
		}
		members[i] = core.BatchMember{Sim: sim, Pos: r.Consumed, Detach: r.Detach}
	}
	results := core.RunBatch(members)

	var firstErr error
	for i, cell := range cells {
		err := results[i].Err
		if cl, ok := sinks[i].(io.Closer); ok {
			if cerr := cl.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("closing observer: %w", cerr)
			}
		}
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", cell.label, err)
			}
			continue
		}
		if err := cell.commit(results[i].Stats); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// closeSinks best-effort-closes the observers of a batch that failed to
// assemble, so no file-backed sink leaks its descriptor.
func closeSinks(sinks []obs.Sink) {
	for _, s := range sinks {
		if cl, ok := s.(io.Closer); ok {
			cl.Close()
		}
	}
}
