package experiment

import (
	"bytes"
	"sync/atomic"
	"testing"

	"frontsim/internal/obs"
	"frontsim/internal/runner"
	"frontsim/internal/workload"
)

// TestObsUniformAcrossCacheStates pins the exporter's uniformity contract:
// a fully-cached suite pass reports exactly the same metric points as the
// cold pass that populated the cache — cache hits replay their decoded
// snapshots through the same MetricSet path — while per-run observer
// construction (ObsRun) is only ever invoked for live simulations.
func TestObsUniformAcrossCacheStates(t *testing.T) {
	dir := t.TempDir()
	spec, ok := workload.Lookup("public_srv_60")
	if !ok {
		t.Fatal("workload missing")
	}

	var liveSinks, warmSinks atomic.Int64
	runPass := func(c *runner.Cache, counter *atomic.Int64) *obs.SuiteCollector {
		p := tinyParams()
		p.Cache = c
		col := &obs.SuiteCollector{}
		p.Obs = col
		p.ObsRun = func(workload, series string) obs.Sink {
			counter.Add(1)
			return nil
		}
		if _, err := RunMatrix(spec, 1, p); err != nil {
			t.Fatal(err)
		}
		return col
	}

	cold, err := runner.OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	colA := runPass(cold, &liveSinks)
	if liveSinks.Load() == 0 {
		t.Fatal("cold pass built no per-run observers")
	}
	// One MetricSet of points per series cell.
	if colA.Len() == 0 || colA.Len()%int(numSeries) != 0 {
		t.Fatalf("cold pass recorded %d metric points, want a multiple of %d", colA.Len(), numSeries)
	}

	warm, err := runner.OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	colB := runPass(warm, &warmSinks)
	if m := warm.Metrics(); m.Misses != 0 {
		t.Fatalf("warm pass was not pure cache hits: %+v", m)
	}
	if n := warmSinks.Load(); n != 0 {
		t.Fatalf("cached cells invoked ObsRun %d times", n)
	}
	if colB.Len() != colA.Len() {
		t.Fatalf("warm pass recorded %d runs, cold %d", colB.Len(), colA.Len())
	}

	var a, b bytes.Buffer
	if err := colA.Export().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := colB.Export().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("suite metrics differ cached vs live:\n cold %s\n warm %s", a.Bytes(), b.Bytes())
	}
}
