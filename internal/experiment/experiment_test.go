package experiment

import (
	"bytes"
	"strings"
	"testing"

	"frontsim/internal/workload"
)

// tinyParams keeps integration runs fast.
func tinyParams() Params {
	p := DefaultParams()
	p.WarmupInstrs = 100_000
	p.MeasureInstrs = 250_000
	p.ProfileInstrs = 300_000
	return p
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.MeasureInstrs = 0
	if err := p.Validate(); err == nil {
		t.Fatal("accepted zero measure")
	}
	p = DefaultParams()
	p.AsmDB.Window = 0
	if err := p.Validate(); err == nil {
		t.Fatal("accepted bad asmdb options")
	}
}

func runOne(t *testing.T) *Matrix {
	t.Helper()
	spec, _ := workload.Lookup("public_srv_60")
	m, err := RunMatrix(spec, 1, tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRunMatrixProducesAllSeries(t *testing.T) {
	m := runOne(t)
	for name, st := range map[string]float64{
		"cons":        m.Cons.IPC(),
		"asmdb":       m.AsmdbCons.IPC(),
		"asmdb-ideal": m.AsmdbConsIdeal.IPC(),
		"fdp":         m.FDP.IPC(),
		"asmdb+fdp":   m.AsmdbFDP.IPC(),
		"ideal+fdp":   m.AsmdbFDPIdeal.IPC(),
		"eip+fdp":     m.EIPFDP.IPC(),
	} {
		if st <= 0 {
			t.Errorf("series %s has IPC %v", name, st)
		}
	}
	if m.Plan == nil || len(m.Plan.Insertions) == 0 {
		t.Fatal("no AsmDB plan")
	}
	if m.StaticBloat <= 0 {
		t.Fatal("no static bloat")
	}
	// Paper-shape invariants on a server workload, even at tiny scale:
	// the deep FTQ beats the conservative baseline, and the inserted
	// prefetches show up as dynamic bloat only in the overhead runs.
	if m.Speedup(m.FDP) <= 1.0 {
		t.Fatalf("FDP speedup %v", m.Speedup(m.FDP))
	}
	if m.AsmdbFDP.DynamicBloat() <= 0 {
		t.Fatal("overhead run has no dynamic bloat")
	}
	if m.AsmdbFDPIdeal.DynamicBloat() != 0 {
		t.Fatal("ideal run has dynamic bloat")
	}
}

func TestFigureTablesWellFormed(t *testing.T) {
	m := runOne(t)
	ms := []*Matrix{m}
	figs := map[string]interface{ String() string }{
		"fig1":      Figure1(ms),
		"fig7":      Figure7(ms),
		"fig8":      Figure8(ms),
		"fig9":      Figure9(ms),
		"fig10":     Figure10(ms),
		"fig11":     Figure11(ms),
		"meth":      Methodology(ms),
		"tab1":      TableI(),
		"headstall": HeadStallBreakdown(ms),
	}
	for name, f := range figs {
		s := f.String()
		if s == "" {
			t.Errorf("%s renders empty", name)
		}
		if name != "tab1" && !strings.Contains(s, "public_srv_60") {
			t.Errorf("%s missing workload row:\n%s", name, s)
		}
	}
	// Figure 1 has a geomean row; with one workload it equals the row.
	f1 := Figure1(ms)
	last := f1.Rows[len(f1.Rows)-1]
	if last[1] != "geomean" {
		t.Fatalf("last row %v", last)
	}
}

func TestRunSuiteParallelMatchesOrder(t *testing.T) {
	specs := workload.All()[:3]
	p := tinyParams()
	p.Parallelism = 3
	var lines []string
	ms, err := RunSuite(specs, p, func(s string) { lines = append(lines, s) })
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 {
		t.Fatalf("matrices = %d", len(ms))
	}
	for i, m := range ms {
		if m.Spec.Name != specs[i].Name || m.Index != i+1 {
			t.Fatalf("order broken at %d: %s", i, m.Spec.Name)
		}
	}
	if len(lines) != 3 {
		t.Fatalf("progress lines = %d", len(lines))
	}
}

// TestRunSuiteDeterminismAcrossParallelism is the regression test the
// run cache's soundness rests on: the full per-workload measurement —
// every series, every counter, serialized canonically — must be
// byte-identical whether jobs run serially (Parallelism=1), spread over a
// work-stealing pool (8), or repeated at 8 (no run-to-run jitter).
func TestRunSuiteDeterminismAcrossParallelism(t *testing.T) {
	specs := workload.All()[:2]
	run := func(par int) []*Matrix {
		t.Helper()
		p := tinyParams()
		p.Parallelism = par
		ms, err := RunSuite(specs, p, nil)
		if err != nil {
			t.Fatal(err)
		}
		return ms
	}
	serial := run(1)
	par8a := run(8)
	par8b := run(8)
	for i := range serial {
		a := matrixCanonical(t, serial[i])
		b := matrixCanonical(t, par8a[i])
		c := matrixCanonical(t, par8b[i])
		if !bytes.Equal(a, b) {
			t.Fatalf("parallelism changed results for %s:\n par1 %s\n par8 %s", serial[i].Spec.Name, a, b)
		}
		if !bytes.Equal(b, c) {
			t.Fatalf("repeated par-8 runs differ for %s:\n first  %s\n second %s", serial[i].Spec.Name, b, c)
		}
		for id := seriesID(0); id < numSeries; id++ {
			sa, err := serial[i].seriesPtr(id).CanonicalJSON()
			if err != nil {
				t.Fatal(err)
			}
			sb, err := par8a[i].seriesPtr(id).CanonicalJSON()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(sa, sb) {
				t.Fatalf("series %s of %s differs across parallelism", seriesLabels[id], serial[i].Spec.Name)
			}
		}
	}
}

func TestAblationFTQDepth(t *testing.T) {
	specs := workload.All()[:1]
	tab, err := AblationFTQDepth(specs, []int{2, 24}, tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 { // workload + geomean
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if tab.Rows[0][1] != "1.000" {
		t.Fatalf("depth-2 column must be the baseline: %v", tab.Rows[0])
	}
}

func TestAblationFrontend(t *testing.T) {
	specs := workload.All()[:1]
	tab, err := AblationFrontend(specs, tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Columns) != 5 {
		t.Fatalf("columns = %d", len(tab.Columns))
	}
}

func TestAblationFanout(t *testing.T) {
	specs := workload.All()[:1]
	tab, err := AblationFanout(specs, []float64{0.3, 0.7}, tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 || len(tab.Columns) != 5 {
		t.Fatalf("shape %dx%d", len(tab.Rows), len(tab.Columns))
	}
}
