package experiment

// FingerprintNeutral is the fingerprint-neutrality registry for Params,
// enforced by the fpexclude analyzer exactly as core.FingerprintNeutral is
// for core.Config: every json:"-" field must be registered with the
// equivalence test proving cells produced with the knob on and off are
// byte-identical (same canonical stats, same cache entries). Audit's proof
// lives in internal/core — the knob is a pass-through to core.Config.Audit
// — hence the qualified name.
var FingerprintNeutral = map[string]string{
	"Cache":       "TestMatrixWarmCacheByteIdentical",
	"Audit":       "internal/core.TestAuditCleanRun",
	"Obs":         "TestObsUniformAcrossCacheStates",
	"ObsRun":      "TestObsUniformAcrossCacheStates",
	"FastForward": "TestFastForwardEquivalence",
	"Batch":       "TestBatchEquivalence",
}
