// Package runner provides the shared execution substrate for the
// experiment harness: a work-stealing job scheduler with fork-join groups
// (so one slow workload's configurations spread across idle workers instead
// of serializing), a content-addressed on-disk result cache keyed by a
// canonical hash of each job's full input (so re-runs after unrelated code
// changes are near-instant), and per-job progress/ETA reporting.
//
// The package is deliberately generic: it knows nothing about simulations.
// internal/experiment builds per-(workload, configuration) jobs on top of
// it, and the cache's correctness rests on the simulator's determinism —
// guarded by the determinism regression tests in internal/experiment.
package runner

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// ErrPoolClosed is returned (via Group.Wait) for tasks submitted after
// Close: the submission is refused — neither executed nor silently
// dropped — and the group's join surfaces the refusal.
var ErrPoolClosed = errors.New("runner: pool closed")

// task is one schedulable unit of work, always owned by a Group.
type task struct {
	fn func() error
	g  *Group
}

// Pool is a work-stealing scheduler. Each worker owns a LIFO deque;
// submissions are distributed round-robin and idle workers steal the
// oldest task from the busiest deque. Groups provide fork-join structure:
// a task may spawn a subgroup and Wait on it, and the waiting goroutine
// helps execute its own group's queued tasks, so nested waits never
// deadlock even with a single worker.
type Pool struct {
	mu     sync.Mutex
	cond   *sync.Cond
	deques [][]*task
	next   int // round-robin push cursor
	queued int // tasks currently queued across all deques
	closed bool
	wg     sync.WaitGroup

	executed atomic.Int64 // tasks run to completion (or panic) since creation
}

// NewPool starts a pool with the given number of workers (<=0 means
// GOMAXPROCS). Goroutines that Wait on a group additionally execute that
// group's queued tasks themselves, so effective concurrency can briefly
// exceed the worker count by the number of concurrent waiters.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{deques: make([][]*task, workers)}
	p.cond = sync.NewCond(&p.mu)
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker(i)
	}
	return p
}

// Workers returns the worker count.
func (p *Pool) Workers() int { return len(p.deques) }

// JobsExecuted returns the number of tasks the pool has run since
// creation. It measures scheduling granularity — a lockstep batch counts
// as one job regardless of how many cells it carries — which is what the
// batch-composition tests assert on.
func (p *Pool) JobsExecuted() int64 { return p.executed.Load() }

// Close stops the workers once every queued task has drained. Close is
// idempotent: concurrent or repeated calls all block until the workers
// have exited. Submissions racing with Close either run to completion or
// are refused with ErrPoolClosed (see Group.Go); they are never dropped.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}

func (p *Pool) worker(id int) {
	defer p.wg.Done()
	p.mu.Lock()
	for {
		t := p.takeLocked(id, nil)
		if t == nil {
			if p.closed {
				p.mu.Unlock()
				return
			}
			p.cond.Wait()
			continue
		}
		p.mu.Unlock()
		p.run(t)
		p.mu.Lock()
	}
}

// takeLocked removes one runnable task. A worker (self >= 0) pops its own
// deque newest-first and steals oldest-first from the longest other deque.
// A group waiter (g != nil) takes only tasks belonging to its group, so a
// helping Wait cannot wander into an unrelated long-running job.
func (p *Pool) takeLocked(self int, g *Group) *task {
	if g != nil {
		for di, d := range p.deques {
			for i := len(d) - 1; i >= 0; i-- {
				if d[i].g == g {
					t := d[i]
					p.deques[di] = append(d[:i:i], d[i+1:]...)
					p.queued--
					return t
				}
			}
		}
		return nil
	}
	if self >= 0 {
		if d := p.deques[self]; len(d) > 0 {
			t := d[len(d)-1]
			p.deques[self] = d[:len(d)-1]
			p.queued--
			return t
		}
	}
	victim, longest := -1, 0
	for i, d := range p.deques {
		if i != self && len(d) > longest {
			victim, longest = i, len(d)
		}
	}
	if victim < 0 {
		return nil
	}
	d := p.deques[victim]
	t := d[0]
	p.deques[victim] = d[1:]
	p.queued--
	return t
}

var errTaskPanic = errors.New("runner: task panicked")

// run executes t and settles its group bookkeeping. On panic the group is
// still decremented (so waiters are not stranded) before the panic
// propagates and crashes the process with the original stack.
func (p *Pool) run(t *task) {
	panicked := true
	var err error
	defer func() {
		p.executed.Add(1)
		p.mu.Lock()
		t.g.active--
		if panicked && t.g.err == nil {
			t.g.err = errTaskPanic
		} else if err != nil && t.g.err == nil {
			t.g.err = err
		}
		if t.g.active == 0 {
			p.cond.Broadcast()
		}
		p.mu.Unlock()
	}()
	err = t.fn()
	panicked = false
}

// Group is a fork-join scope: spawn tasks with Go, join with Wait.
type Group struct {
	p         *Pool
	active    int   // tasks spawned and not yet finished; guarded by p.mu
	err       error // first error; guarded by p.mu
	cancelled bool  // WaitCtx observed its context die; guarded by p.mu
}

// NewGroup creates an empty group on the pool.
func (p *Pool) NewGroup() *Group { return &Group{p: p} }

// Go submits fn to the pool as part of the group. Submitting to a closed
// pool, or to a group whose WaitCtx has already been cancelled, refuses
// the task: fn never runs and the group's join returns ErrPoolClosed
// (respectively the context's error) instead of panicking or silently
// dropping work.
func (g *Group) Go(fn func() error) {
	t := &task{fn: fn, g: g}
	p := g.p
	p.mu.Lock()
	if p.closed || g.cancelled {
		if g.err == nil {
			if p.closed {
				g.err = ErrPoolClosed
			} else {
				g.err = context.Canceled
			}
		}
		// Waiters must still wake up: the refused submission may be the
		// event a Wait with active==0 is blocked on.
		p.cond.Broadcast()
		p.mu.Unlock()
		return
	}
	g.active++
	i := p.next % len(p.deques)
	p.next++
	p.deques[i] = append(p.deques[i], t)
	p.queued++
	// Broadcast, not Signal: a group waiter can be woken by a task it is
	// not allowed to take, and a single consumed signal would then strand
	// the task with every worker asleep.
	p.cond.Broadcast()
	p.mu.Unlock()
}

// Wait blocks until every task spawned on the group has finished and
// returns the first error any of them produced. While waiting it executes
// the group's own queued tasks, so a task that forks a subgroup and joins
// it makes progress even when every worker is busy.
func (g *Group) Wait() error {
	p := g.p
	p.mu.Lock()
	for g.active > 0 {
		t := p.takeLocked(-1, g)
		if t == nil {
			p.cond.Wait()
			continue
		}
		p.mu.Unlock()
		p.run(t)
		p.mu.Lock()
	}
	err := g.err
	p.mu.Unlock()
	return err
}

// WaitCtx is Wait with abandonment: when ctx ends first, the group's
// still-queued tasks are aborted (unqueued, never started), further Go
// calls on the group are refused, and WaitCtx blocks only for the tasks
// already running — which are expected to observe the same ctx and bail
// cooperatively — before returning the context's error. So a cancelled
// join leaves no orphan task that could later write into shared state.
func (g *Group) WaitCtx(ctx context.Context) error {
	if ctx.Done() == nil {
		return g.Wait() //lint:allow ctx can never fire (Done() is nil); the plain join is the fast path
	}
	p := g.p
	// Wake the cond loop when ctx fires; cond.Wait cannot watch a channel.
	stop := context.AfterFunc(ctx, func() {
		p.mu.Lock()
		p.cond.Broadcast()
		p.mu.Unlock()
	})
	defer stop()

	p.mu.Lock()
	for g.active > 0 {
		if ctx.Err() != nil && !g.cancelled {
			g.cancelled = true
			p.purgeLocked(g)
			if g.err == nil {
				g.err = ctx.Err()
			}
		}
		// Once cancelled, stop helping: draining the group's queue has
		// already happened via purge, so only in-flight tasks remain.
		if !g.cancelled {
			if t := p.takeLocked(-1, g); t != nil {
				p.mu.Unlock()
				p.run(t)
				p.mu.Lock()
				continue
			}
		}
		if g.active == 0 {
			break
		}
		p.cond.Wait()
	}
	err := g.err
	p.mu.Unlock()
	if cerr := ctx.Err(); cerr != nil {
		return cerr
	}
	return err
}

// purgeLocked removes every queued (not yet running) task belonging to g,
// settling the group's bookkeeping as if each had never been spawned.
func (p *Pool) purgeLocked(g *Group) {
	for di, d := range p.deques {
		kept := d[:0]
		for _, t := range d {
			if t.g == g {
				g.active--
				p.queued--
				continue
			}
			kept = append(kept, t)
		}
		p.deques[di] = kept
	}
	if g.active == 0 {
		p.cond.Broadcast()
	}
}
