package runner

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// --- Pool post-Close semantics -----------------------------------------

func TestSubmitAfterCloseReturnsSentinel(t *testing.T) {
	p := NewPool(2)
	p.Close()
	g := p.NewGroup()
	ran := false
	g.Go(func() error { ran = true; return nil })
	if err := g.Wait(); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("Wait after post-Close submit = %v, want ErrPoolClosed", err)
	}
	if ran {
		t.Fatal("task submitted after Close must not run")
	}
}

func TestDoubleCloseIdempotent(t *testing.T) {
	p := NewPool(2)
	g := p.NewGroup()
	g.Go(func() error { return nil })
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	p.Close()
	p.Close() // must not panic or hang

	// Concurrent double close as well.
	p2 := NewPool(2)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); p2.Close() }()
	}
	wg.Wait()
}

// TestConcurrentSubmitClose races Go against Close: every accepted task
// must run exactly once, every refused task must surface ErrPoolClosed,
// and nothing may panic or be silently dropped. Run under -race.
func TestConcurrentSubmitClose(t *testing.T) {
	for round := 0; round < 20; round++ {
		p := NewPool(4)
		var executed atomic.Int64
		var refused atomic.Int64
		var wg sync.WaitGroup
		const submitters = 8
		for i := 0; i < submitters; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				g := p.NewGroup()
				g.Go(func() error { executed.Add(1); return nil })
				if err := g.Wait(); err != nil {
					if !errors.Is(err, ErrPoolClosed) {
						t.Errorf("Wait = %v, want nil or ErrPoolClosed", err)
					}
					refused.Add(1)
				}
			}()
		}
		p.Close()
		wg.Wait()
		if got := executed.Load() + refused.Load(); got != submitters {
			t.Fatalf("round %d: executed %d + refused %d != %d submissions",
				round, executed.Load(), refused.Load(), submitters)
		}
	}
}

// --- WaitCtx ------------------------------------------------------------

func TestWaitCtxBackgroundBehavesLikeWait(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	g := p.NewGroup()
	var n atomic.Int64
	for i := 0; i < 16; i++ {
		g.Go(func() error { n.Add(1); return nil })
	}
	if err := g.WaitCtx(context.Background()); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 16 {
		t.Fatalf("ran %d of 16 tasks", n.Load())
	}
}

func TestWaitCtxReturnsFirstTaskError(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	g := p.NewGroup()
	boom := fmt.Errorf("boom")
	g.Go(func() error { return boom })
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := g.WaitCtx(ctx); !errors.Is(err, boom) {
		t.Fatalf("WaitCtx = %v, want boom", err)
	}
}

// TestWaitCtxAbortsQueuedTasks cancels a join while one task blocks the
// only worker: the queued remainder must be aborted unstarted, WaitCtx
// must return promptly once the running task finishes, and no aborted
// task may run afterwards.
func TestWaitCtxAbortsQueuedTasks(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	g := p.NewGroup()

	started := make(chan struct{})
	release := make(chan struct{})
	var ran atomic.Int64
	g.Go(func() error {
		close(started)
		<-release
		ran.Add(1)
		return nil
	})
	// Only queue the rest once the blocker occupies the lone worker;
	// workers pop LIFO, so queueing earlier could run these first.
	<-started
	for i := 0; i < 32; i++ {
		g.Go(func() error { ran.Add(1); return nil })
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	done := make(chan error, 1)
	go func() { done <- g.WaitCtx(ctx) }()

	// The join must be blocked only on the in-flight task.
	select {
	case err := <-done:
		t.Fatalf("WaitCtx returned %v while a task was still running", err)
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("WaitCtx = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitCtx did not return after the running task finished")
	}
	if got := ran.Load(); got != 1 {
		t.Fatalf("%d tasks ran, want only the in-flight one", got)
	}

	// The cancelled group refuses later submissions instead of leaking them.
	g.Go(func() error { ran.Add(1); return nil })
	if got := ran.Load(); got != 1 {
		t.Fatalf("post-cancel submission ran (total %d)", got)
	}
}

// TestWaitCtxDoesNotStrandOtherGroups proves aborting one group leaves an
// unrelated group's queued work intact.
func TestWaitCtxDoesNotStrandOtherGroups(t *testing.T) {
	p := NewPool(1)
	defer p.Close()

	gate := make(chan struct{})
	occupied := make(chan struct{})
	blocker := p.NewGroup()
	blocker.Go(func() error { close(occupied); <-gate; return nil })
	<-occupied

	doomed := p.NewGroup()
	var doomedRan atomic.Int64
	for i := 0; i < 8; i++ {
		doomed.Go(func() error { doomedRan.Add(1); return nil })
	}
	survivor := p.NewGroup()
	var survivorRan atomic.Int64
	for i := 0; i < 8; i++ {
		survivor.Go(func() error { survivorRan.Add(1); return nil })
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := doomed.WaitCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("WaitCtx = %v", err)
	}
	close(gate)
	if err := blocker.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := survivor.Wait(); err != nil {
		t.Fatal(err)
	}
	if survivorRan.Load() != 8 {
		t.Fatalf("survivor ran %d of 8", survivorRan.Load())
	}
	if doomedRan.Load() != 0 {
		t.Fatalf("doomed group ran %d tasks after abort", doomedRan.Load())
	}
}

// --- Cache Put durability ----------------------------------------------

// listTemps returns every .tmp-* file under the cache root.
func listTemps(t *testing.T, dir string) []string {
	t.Helper()
	var temps []string
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasPrefix(d.Name(), ".tmp-") {
			temps = append(temps, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return temps
}

type durKey struct {
	Name string `json:"name"`
}

// TestPutWriteErrorLeavesNoLitter injects a write failure (a full disk in
// miniature) and asserts Put reports it, removes the temp file, and leaves
// no half-written entry behind.
func TestPutWriteErrorLeavesNoLitter(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	injected := fmt.Errorf("disk full")
	prev := writeTemp
	writeTemp = func(f *os.File, b []byte) (int, error) { return 0, injected }
	defer func() { writeTemp = prev }()

	key := durKey{Name: "write-error"}
	if err := c.Put(key, 42); !errors.Is(err, injected) {
		t.Fatalf("Put = %v, want injected write error", err)
	}
	if temps := listTemps(t, dir); len(temps) != 0 {
		t.Fatalf("stray temp files after failed Put: %v", temps)
	}
	writeTemp = prev
	var out int
	if ok, err := c.Get(key, &out); err != nil || ok {
		t.Fatalf("Get after failed Put = (%v, %v), want clean miss", ok, err)
	}
	// The same key must be writable once the fault clears.
	if err := c.Put(key, 42); err != nil {
		t.Fatal(err)
	}
	if ok, err := c.Get(key, &out); err != nil || !ok || out != 42 {
		t.Fatalf("Get after recovery = (%v, %v, %d)", ok, err, out)
	}
}

// TestPutFsyncErrorLeavesNoLitter injects an fsync failure and asserts the
// temp file is removed and the entry absent.
func TestPutFsyncErrorLeavesNoLitter(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	injected := fmt.Errorf("fsync: I/O error")
	prev := syncFile
	syncFile = func(f *os.File) error { return injected }
	defer func() { syncFile = prev }()

	key := durKey{Name: "fsync-error"}
	if err := c.Put(key, 7); !errors.Is(err, injected) {
		t.Fatalf("Put = %v, want injected fsync error", err)
	}
	if temps := listTemps(t, dir); len(temps) != 0 {
		t.Fatalf("stray temp files after failed Put: %v", temps)
	}
	var out int
	syncFile = prev
	if ok, _ := c.Get(key, &out); ok {
		t.Fatal("entry exists after failed fsync")
	}
}

// TestPutRenameErrorLeavesNoLitter forces the final rename to fail (the
// destination is occupied by a non-empty directory) and asserts the temp
// file is removed.
func TestPutRenameErrorLeavesNoLitter(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := durKey{Name: "rename-error"}
	hash, err := Fingerprint(key)
	if err != nil {
		t.Fatal(err)
	}
	dst := c.path(hash)
	if err := os.MkdirAll(filepath.Join(dst, "occupied"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(key, 1); err == nil {
		t.Fatal("Put succeeded despite blocked rename")
	}
	if temps := listTemps(t, dir); len(temps) != 0 {
		t.Fatalf("stray temp files after failed rename: %v", temps)
	}
}

// TestPutSuccessLeavesNoTemps pins the happy path: a successful Put leaves
// exactly the entry and nothing else.
func TestPutSuccessLeavesNoTemps(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(durKey{Name: "ok"}, "v"); err != nil {
		t.Fatal(err)
	}
	if temps := listTemps(t, dir); len(temps) != 0 {
		t.Fatalf("stray temp files after successful Put: %v", temps)
	}
}
