package runner

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
)

// Cache is a content-addressed on-disk result store. Keys are arbitrary
// JSON-marshalable values; the address is the SHA-256 of the key's
// canonical JSON (encoding/json is canonical for our keys: struct fields
// serialize in declaration order and map keys sort). Values are stored as
// JSON alongside the full key, and a lookup whose stored key does not
// byte-match the probe key is treated as a miss, so hash collisions and
// torn files degrade to re-computation, never to wrong results.
//
// A nil *Cache is valid and behaves as an always-miss, discard-writes
// cache, which is how -no-cache is implemented.
type Cache struct {
	dir               string
	hits, misses, puts atomic.Int64
}

// envelope is the on-disk record: the key is stored with the value so Get
// can verify the address actually belongs to the probe.
type envelope struct {
	Key   json.RawMessage `json:"key"`
	Value json.RawMessage `json:"value"`
}

// OpenCache creates (if needed) and opens a cache rooted at dir.
func OpenCache(dir string) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("runner: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runner: opening cache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache root ("" for a nil cache).
func (c *Cache) Dir() string {
	if c == nil {
		return ""
	}
	return c.dir
}

// Fingerprint returns the hex SHA-256 of key's canonical JSON.
func Fingerprint(key any) (string, error) {
	b, err := json.Marshal(key)
	if err != nil {
		return "", fmt.Errorf("runner: marshaling cache key: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

func (c *Cache) path(hash string) string {
	return filepath.Join(c.dir, hash[:2], hash+".json")
}

// Get looks key up and, on a hit, unmarshals the stored value into out
// (which must be a pointer). Corrupt or mismatched entries are misses.
func (c *Cache) Get(key, out any) (bool, error) {
	if c == nil {
		return false, nil
	}
	keyJSON, err := json.Marshal(key)
	if err != nil {
		return false, fmt.Errorf("runner: marshaling cache key: %w", err)
	}
	sum := sha256.Sum256(keyJSON)
	raw, err := os.ReadFile(c.path(hex.EncodeToString(sum[:])))
	if err != nil {
		c.misses.Add(1)
		return false, nil
	}
	var env envelope
	if err := json.Unmarshal(raw, &env); err != nil || !bytes.Equal(env.Key, keyJSON) {
		c.misses.Add(1)
		return false, nil
	}
	if err := json.Unmarshal(env.Value, out); err != nil {
		c.misses.Add(1)
		return false, nil
	}
	c.hits.Add(1)
	return true, nil
}

// Test seams for fault injection: the durability tests swap these to
// simulate full-disk writes and fsync failures without a faulty device.
var (
	writeTemp = func(f *os.File, b []byte) (int, error) { return f.Write(b) }
	syncFile  = func(f *os.File) error { return f.Sync() }
)

// Put stores value under key, atomically and durably: the blob is written
// to a same-directory temp file, fsynced, renamed over the destination,
// and the parent directory is fsynced so the entry survives a crash right
// after Put returns. Concurrent runs sharing a cache directory never
// observe torn entries, and every failure path removes the temp file so a
// crashed or full-disk run leaves no .tmp-* litter for later scans to
// trip over.
func (c *Cache) Put(key, value any) error {
	if c == nil {
		return nil
	}
	keyJSON, err := json.Marshal(key)
	if err != nil {
		return fmt.Errorf("runner: marshaling cache key: %w", err)
	}
	valJSON, err := json.Marshal(value)
	if err != nil {
		return fmt.Errorf("runner: marshaling cache value: %w", err)
	}
	blob, err := json.Marshal(envelope{Key: keyJSON, Value: valJSON})
	if err != nil {
		return err
	}
	sum := sha256.Sum256(keyJSON)
	dst := c.path(hex.EncodeToString(sum[:]))
	dir := filepath.Dir(dst)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("runner: cache put: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("runner: cache put: %w", err)
	}
	// From here on, any failure must both close and remove the temp file.
	fail := func(op string, err error) error {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("runner: cache put %s: %w", op, err)
	}
	if _, err := writeTemp(tmp, blob); err != nil {
		return fail("write", err)
	}
	// fsync before rename: otherwise a crash can leave the rename durable
	// but the contents not, i.e. a persistent torn entry at the final path.
	if err := syncFile(tmp); err != nil {
		return fail("fsync", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runner: cache put close: %w", err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runner: cache put rename: %w", err)
	}
	// fsync the parent directory so the rename itself is durable. Failure
	// here is reported, but the entry is already valid and atomic, so the
	// destination is left in place.
	if err := syncDir(dir); err != nil {
		return fmt.Errorf("runner: cache put: %w", err)
	}
	c.puts.Add(1)
	return nil
}

// syncDir fsyncs a directory, making a just-renamed entry durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := syncFile(d); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}

// Metrics reports lookup and store counts since open.
type Metrics struct {
	Hits, Misses, Puts int64
}

// Metrics returns the cache's counters (zeros for a nil cache).
func (c *Cache) Metrics() Metrics {
	if c == nil {
		return Metrics{}
	}
	return Metrics{Hits: c.hits.Load(), Misses: c.misses.Load(), Puts: c.puts.Load()}
}
