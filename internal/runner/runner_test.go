package runner

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsEverything(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var n atomic.Int64
	g := p.NewGroup()
	for i := 0; i < 100; i++ {
		g.Go(func() error { n.Add(1); return nil })
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 100 {
		t.Fatalf("ran %d of 100 tasks", n.Load())
	}
}

func TestPoolFirstErrorWins(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	g := p.NewGroup()
	want := errors.New("boom")
	for i := 0; i < 10; i++ {
		i := i
		g.Go(func() error {
			if i%3 == 0 {
				return want
			}
			return nil
		})
	}
	if err := g.Wait(); !errors.Is(err, want) {
		t.Fatalf("Wait() = %v, want %v", err, want)
	}
}

// TestPoolNestedGroupsSingleWorker is the deadlock regression: with one
// worker, a task that forks a subgroup and joins it can only finish if the
// waiting goroutine helps execute its own subtasks.
func TestPoolNestedGroupsSingleWorker(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	var n atomic.Int64
	g := p.NewGroup()
	for i := 0; i < 4; i++ {
		g.Go(func() error {
			sub := p.NewGroup()
			for j := 0; j < 4; j++ {
				sub.Go(func() error {
					leaf := p.NewGroup()
					leaf.Go(func() error { n.Add(1); return nil })
					return leaf.Wait()
				})
			}
			return sub.Wait()
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 16 {
		t.Fatalf("ran %d of 16 leaves", n.Load())
	}
}

// TestPoolStress hammers the scheduler from many submitters so the race
// detector can see into the deque and group bookkeeping.
func TestPoolStress(t *testing.T) {
	p := NewPool(8)
	defer p.Close()
	var n atomic.Int64
	g := p.NewGroup()
	for i := 0; i < 32; i++ {
		g.Go(func() error {
			sub := p.NewGroup()
			for j := 0; j < 50; j++ {
				sub.Go(func() error { n.Add(1); return nil })
			}
			return sub.Wait()
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 32*50 {
		t.Fatalf("ran %d of %d", n.Load(), 32*50)
	}
}

func TestGroupWaitHelpsOwnGroupOnly(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	outer := p.NewGroup()
	outer.Go(func() error {
		// The single worker is now occupied; the subgroup's task can only
		// run through the helping Wait below.
		sub := p.NewGroup()
		ran := false
		sub.Go(func() error { ran = true; return nil })
		if err := sub.Wait(); err != nil {
			return err
		}
		if !ran {
			return errors.New("subtask never ran")
		}
		return nil
	})
	if err := outer.Wait(); err != nil {
		t.Fatal(err)
	}
}

type testKey struct {
	Kind string `json:"kind"`
	N    int    `json:"n"`
}

type testValue struct {
	Words []string `json:"words"`
	Score float64  `json:"score"`
}

func TestCacheRoundTrip(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey{Kind: "unit", N: 7}
	want := testValue{Words: []string{"a", "b"}, Score: 1.25}

	var got testValue
	if ok, err := c.Get(key, &got); err != nil || ok {
		t.Fatalf("Get before Put = %v, %v", ok, err)
	}
	if err := c.Put(key, want); err != nil {
		t.Fatal(err)
	}
	if ok, err := c.Get(key, &got); err != nil || !ok {
		t.Fatalf("Get after Put = %v, %v", ok, err)
	}
	if got.Score != want.Score || len(got.Words) != 2 || got.Words[0] != "a" {
		t.Fatalf("round trip: got %+v want %+v", got, want)
	}
	m := c.Metrics()
	if m.Hits != 1 || m.Misses != 1 || m.Puts != 1 {
		t.Fatalf("metrics %+v", m)
	}
}

func TestCacheDistinctKeysDistinctEntries(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(testKey{Kind: "k", N: 1}, testValue{Score: 1}); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(testKey{Kind: "k", N: 2}, testValue{Score: 2}); err != nil {
		t.Fatal(err)
	}
	var v testValue
	if ok, _ := c.Get(testKey{Kind: "k", N: 1}, &v); !ok || v.Score != 1 {
		t.Fatalf("key 1: ok=%v v=%+v", ok, v)
	}
	if ok, _ := c.Get(testKey{Kind: "k", N: 2}, &v); !ok || v.Score != 2 {
		t.Fatalf("key 2: ok=%v v=%+v", ok, v)
	}
}

func TestCacheCorruptEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey{Kind: "corrupt", N: 1}
	if err := c.Put(key, testValue{Score: 3}); err != nil {
		t.Fatal(err)
	}
	// Truncate every stored entry.
	err = filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		return os.WriteFile(path, []byte("{not json"), 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	var v testValue
	if ok, err := c.Get(key, &v); err != nil || ok {
		t.Fatalf("corrupt entry: ok=%v err=%v", ok, err)
	}
}

func TestCacheNilIsInert(t *testing.T) {
	var c *Cache
	if err := c.Put(testKey{}, testValue{}); err != nil {
		t.Fatal(err)
	}
	var v testValue
	if ok, err := c.Get(testKey{}, &v); err != nil || ok {
		t.Fatalf("nil cache Get = %v, %v", ok, err)
	}
	if c.Dir() != "" || (c.Metrics() != Metrics{}) {
		t.Fatal("nil cache not inert")
	}
}

func TestCacheConcurrentSameKey(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(8)
	defer p.Close()
	g := p.NewGroup()
	key := testKey{Kind: "contended", N: 9}
	for i := 0; i < 32; i++ {
		g.Go(func() error {
			if err := c.Put(key, testValue{Score: 42}); err != nil {
				return err
			}
			var v testValue
			if ok, err := c.Get(key, &v); err != nil {
				return err
			} else if ok && v.Score != 42 {
				return fmt.Errorf("torn read: %+v", v)
			}
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestFingerprintStable(t *testing.T) {
	a, err := Fingerprint(testKey{Kind: "fp", N: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fingerprint(testKey{Kind: "fp", N: 3})
	if err != nil {
		t.Fatal(err)
	}
	if a != b || len(a) != 64 {
		t.Fatalf("fingerprints %q vs %q", a, b)
	}
	c, _ := Fingerprint(testKey{Kind: "fp", N: 4})
	if c == a {
		t.Fatal("distinct keys share a fingerprint")
	}
}

func TestProgressLines(t *testing.T) {
	var lines []string
	pr := NewProgress(func(s string) { lines = append(lines, s) })
	pr.AddTotal(3)
	pr.JobDone("w1/cons", false)
	pr.JobDone("w1/fdp24", true)
	pr.JobDone("w1/eip", false)
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.Contains(lines[0], "[  1/3]") || !strings.Contains(lines[0], "eta") {
		t.Fatalf("first line %q", lines[0])
	}
	if !strings.Contains(lines[1], "(cached)") {
		t.Fatalf("cached line %q", lines[1])
	}
	if !strings.Contains(lines[2], "done") {
		t.Fatalf("final line %q", lines[2])
	}
	var nilPr *Progress
	nilPr.AddTotal(1)
	nilPr.JobDone("x", false) // must not panic
}

// fakeClockProgress returns a tracker whose clock the test controls.
func fakeClockProgress(emit func(string)) (*Progress, *time.Time) {
	pr := NewProgress(emit)
	base := time.Unix(1_700_000_000, 0)
	cur := new(time.Time)
	*cur = base
	pr.now = func() time.Time { return *cur }
	pr.start = base
	return pr, cur
}

// TestProgressETALivePace pins the live-pace projection: cache hits are
// nearly free, so the ETA must extrapolate from live jobs only. Fails on
// the pre-fix code, which averaged cache hits into the pace and halved
// the projection here.
func TestProgressETALivePace(t *testing.T) {
	var lines []string
	pr, cur := fakeClockProgress(func(s string) { lines = append(lines, s) })
	pr.AddTotal(4)

	// One live job takes 10s, then a cache hit lands instantly. Two jobs
	// remain; at the live pace of 10s/job the honest ETA is 20s.
	*cur = cur.Add(10 * time.Second)
	pr.JobDone("live", false)
	pr.JobDone("hit", true)
	if !strings.Contains(lines[1], "eta 20s") {
		t.Fatalf("mixed-pace line %q, want live-pace projection of 20s", lines[1])
	}
}

// TestProgressFullyCachedSuite drives an all-cache-hits suite through the
// tracker: every emitted ETA must be finite (no +Inf from a zero live-job
// divisor), non-negative, and non-increasing.
func TestProgressFullyCachedSuite(t *testing.T) {
	var lines []string
	pr, cur := fakeClockProgress(func(s string) { lines = append(lines, s) })
	const total = 6
	pr.AddTotal(total)
	for i := 0; i < total; i++ {
		*cur = cur.Add(2 * time.Second)
		pr.JobDone(fmt.Sprintf("job%d", i), true)
	}
	if len(lines) != total {
		t.Fatalf("emitted %d lines, want %d", len(lines), total)
	}
	re := regexp.MustCompile(`eta (\S+),`)
	prev := time.Duration(1<<63 - 1)
	for i, ln := range lines[:total-1] {
		if strings.Contains(ln, "Inf") || strings.Contains(ln, "NaN") || strings.Contains(ln, "eta -") {
			t.Fatalf("line %d not finite/non-negative: %q", i, ln)
		}
		m := re.FindStringSubmatch(ln)
		if m == nil {
			t.Fatalf("line %d has no eta: %q", i, ln)
		}
		d, err := time.ParseDuration(m[1])
		if err != nil {
			t.Fatalf("line %d eta %q: %v", i, m[1], err)
		}
		if d < 0 || d > prev {
			t.Fatalf("line %d eta %v not monotone non-increasing (prev %v)", i, d, prev)
		}
		prev = d
	}
	if !strings.Contains(lines[total-1], "done") {
		t.Fatalf("final line %q", lines[total-1])
	}
}

// TestProgressClampsNegativeRemaining feeds a clock that runs backwards
// (elapsed < 0, as a stepping fake or a suspended host can produce) and
// asserts the ETA clamps to zero instead of emitting a negative duration.
// Fails on the pre-fix code ("eta -2s").
func TestProgressClampsNegativeRemaining(t *testing.T) {
	var lines []string
	pr, cur := fakeClockProgress(func(s string) { lines = append(lines, s) })
	pr.AddTotal(3)
	*cur = cur.Add(-2 * time.Second)
	pr.JobDone("w", false)
	if !strings.Contains(lines[0], "eta 0s") {
		t.Fatalf("negative-elapsed line %q, want clamped eta 0s", lines[0])
	}
}
