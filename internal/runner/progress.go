package runner

import (
	"fmt"
	"sync"
	"time"
)

// Progress aggregates per-job completion into "[done/total] label ... eta"
// lines. All methods are safe for concurrent use and safe on a nil
// receiver, so call sites never need to guard on whether reporting is on.
type Progress struct {
	mu     sync.Mutex
	emit   func(string)
	now    func() time.Time
	start  time.Time
	total  int
	done   int
	cached int
}

// NewProgress returns a tracker emitting lines through emit, or nil (an
// inert tracker) if emit is nil.
func NewProgress(emit func(string)) *Progress {
	if emit == nil {
		return nil
	}
	now := time.Now
	return &Progress{emit: emit, now: now, start: now()}
}

// AddTotal announces n more expected jobs.
func (p *Progress) AddTotal(n int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.total += n
	p.mu.Unlock()
}

// JobDone records one finished job and emits its progress line. Cached
// jobs count toward completion but are flagged, and the ETA is projected
// from the pace of live (actually simulated) jobs — cache hits are nearly
// free, so averaging them in would wildly understate the remaining work.
func (p *Progress) JobDone(label string, fromCache bool) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.done++
	if fromCache {
		p.cached++
	}
	done, total, cached := p.done, p.total, p.cached
	elapsed := p.now().Sub(p.start)
	p.mu.Unlock()

	suffix := ""
	if fromCache {
		suffix = " (cached)"
	}
	eta := "done"
	if done < total {
		// An all-cache-hits prefix has no live pace to project from
		// (live == 0 would divide to +Inf); fall back to the overall
		// pace, which is finite because done >= 1 here.
		pace := float64(elapsed) / float64(done)
		if live := done - cached; live > 0 {
			pace = float64(elapsed) / float64(live)
		}
		remaining := time.Duration(pace * float64(total-done))
		if remaining < 0 {
			remaining = 0
		}
		eta = "eta " + remaining.Round(time.Second).String()
	}
	p.emit(fmt.Sprintf("[%3d/%d] %-28s %s, %s, %d cached%s",
		done, total, label, elapsed.Round(time.Millisecond), eta, cached, suffix))
}
