package workload

import (
	"fmt"
	"strings"

	"frontsim/internal/xrand"
)

// suiteNames lists the 48 workloads in the order the paper's Figure 1
// presents them; the experiment harness numbers them 1–48 in this order.
var suiteNames = []string{
	"public_srv_60",
	"secret_crypto52", "secret_crypto80", "secret_crypto90",
	"secret_int_124", "secret_int_155", "secret_int_290", "secret_int_327",
	"secret_int_44", "secret_int_624", "secret_int_678", "secret_int_706",
	"secret_int_83", "secret_int_86", "secret_int_948", "secret_int_965",
	"secret_srv12", "secret_srv128", "secret_srv194", "secret_srv207",
	"secret_srv21", "secret_srv222", "secret_srv225", "secret_srv255",
	"secret_srv259", "secret_srv32", "secret_srv408", "secret_srv41",
	"secret_srv426", "secret_srv442", "secret_srv48", "secret_srv495",
	"secret_srv504", "secret_srv537", "secret_srv540", "secret_srv582",
	"secret_srv61", "secret_srv617", "secret_srv641", "secret_srv669",
	"secret_srv702", "secret_srv727", "secret_srv73", "secret_srv742",
	"secret_srv757", "secret_srv764", "secret_srv771", "secret_srv85",
}

// longNames lists the "long" workload tier: the same three tuning
// regimes, but meant to run at multi-hundred-million-instruction budgets
// (LongBudgetInstrs) that only the sampled simulator (core.Config.Sampling)
// can cover in tolerable wall time. They are deliberately not part of the
// 48-workload presentation suite — Names/All/ByIndex exclude them — but
// Lookup resolves them, so cmd/fesim and the serve layer can run them by
// name.
var longNames = []string{
	"long_crypto_17", "long_int_333", "long_srv_584", "long_srv_872",
}

// LongBudgetInstrs is the recommended coverage budget for the long tier:
// 200M post-warm-up instructions, ~130x the default suite budget. SMARTS
// sampling (-sampling-interval 1000000 -sampling-detail 10000
// -sampling-warm 50000) simulates ~6% of that in detail and runs the
// cell at roughly the functional-warming floor — measured numbers and the
// validated geometry are in EXPERIMENTS.md ("Long workload tier");
// experiment.TestLongTierSampledRun is the executable contract.
const LongBudgetInstrs = 200_000_000

// Names returns the 48 workload names in presentation order.
func Names() []string {
	out := make([]string, len(suiteNames))
	copy(out, suiteNames)
	return out
}

// LongNames returns the long-tier workload names.
func LongNames() []string {
	out := make([]string, len(longNames))
	copy(out, longNames)
	return out
}

// LongAll returns the long tier's Specs.
func LongAll() []Spec {
	out := make([]Spec, len(longNames))
	for i, n := range longNames {
		out[i] = specFor(n)
	}
	return out
}

// Count is the suite size.
const Count = 48

// categoryOf infers the tuning category from a workload name.
func categoryOf(name string) Category {
	switch {
	case strings.Contains(name, "crypto"):
		return Crypto
	case strings.Contains(name, "int"):
		return Integer
	default:
		return Server
	}
}

// seedOf derives a stable 64-bit seed from the name.
func seedOf(name string) uint64 {
	var h uint64 = 0xcbf29ce484222325
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 0x100000001b3
	}
	return h
}

// Lookup returns the Spec for a suite or long-tier workload name.
func Lookup(name string) (Spec, bool) {
	for _, n := range suiteNames {
		if n == name {
			return specFor(n), true
		}
	}
	for _, n := range longNames {
		if n == name {
			return specFor(n), true
		}
	}
	return Spec{}, false
}

// ByIndex returns the Spec for the 1-based workload number used in the
// paper's figures.
func ByIndex(i int) (Spec, error) {
	if i < 1 || i > len(suiteNames) {
		return Spec{}, fmt.Errorf("workload: index %d out of [1,%d]", i, len(suiteNames))
	}
	return specFor(suiteNames[i-1]), nil
}

// All returns the full suite in presentation order.
func All() []Spec {
	out := make([]Spec, len(suiteNames))
	for i, n := range suiteNames {
		out[i] = specFor(n)
	}
	return out
}

// specFor builds the tuned Spec for a named workload: category sets the
// regime, and a per-name jitter stream varies every parameter within the
// regime band so the 48 workloads spread across the paper's MPKI range.
func specFor(name string) Spec {
	seed := seedOf(name)
	j := xrand.New(seed ^ 0x1234abcd5678ef00) // jitter stream, independent of build seed

	band := func(lo, hi float64) float64 { return lo + (hi-lo)*j.Float64() }
	iband := func(lo, hi int) int { return lo + j.Intn(hi-lo+1) }

	s := Spec{
		Name:     name,
		Category: categoryOf(name),
		Seed:     seed,
	}

	switch s.Category {
	case Crypto:
		// Small, loop-dominated kernels: instruction set fits mostly in
		// L1-I/L2; the misses that remain come from phase changes.
		s.Funcs = iband(280, 560)
		s.Levels = 3
		s.Dispatchers = iband(2, 4)
		s.DispatchFanout = iband(12, 24)
		s.BlocksPerFunc = iband(8, 14)
		s.BodyLenMean = band(4.0, 5.5)
		s.LoopFrac = band(0.24, 0.34)
		s.CondFrac = band(0.22, 0.30)
		s.CallFrac = band(0.06, 0.10)
		s.JumpFrac = 0.04
		s.IndJumpFrac = 0.02
		s.IndCallFrac = 0.01
		s.LoopTripMean = band(16, 36)
		s.BulkyFrac = 0.05
		s.CalleeSkew = band(0.55, 0.9)
		s.LoadFrac = band(0.16, 0.22)
		s.StoreFrac = band(0.05, 0.09)
		s.MulFrac = band(0.04, 0.10)
		s.Stickiness = band(0.60, 0.75)
		s.HotDataBytes = 32 << 10
		s.WarmDataBytes = 256 << 10
		s.ColdDataBytes = 8 << 20
	case Integer:
		s.Funcs = iband(1700, 3000)
		s.Levels = 5
		s.Dispatchers = iband(3, 6)
		s.DispatchFanout = iband(24, 48)
		s.BlocksPerFunc = iband(9, 15)
		s.BodyLenMean = band(4.2, 5.4)
		s.LoopFrac = band(0.07, 0.12)
		s.CondFrac = band(0.26, 0.34)
		s.CallFrac = band(0.09, 0.14)
		s.JumpFrac = 0.03
		s.IndJumpFrac = 0.02
		s.IndCallFrac = 0.02
		s.LoopTripMean = band(8, 14)
		s.BulkyFrac = band(0.15, 0.25)
		s.CalleeSkew = band(0.60, 0.90)
		s.LoadFrac = band(0.18, 0.24)
		s.StoreFrac = band(0.06, 0.10)
		s.MulFrac = band(0.02, 0.06)
		s.Stickiness = band(0.65, 0.80)
		s.HotDataBytes = 64 << 10
		s.WarmDataBytes = 1 << 20
		s.ColdDataBytes = 32 << 20
	default: // Server
		s.Funcs = iband(4200, 7000)
		s.Levels = 6
		s.Dispatchers = iband(4, 8)
		s.DispatchFanout = iband(40, 64)
		s.BlocksPerFunc = iband(10, 16)
		s.BodyLenMean = band(4.5, 6.0)
		s.LoopFrac = band(0.02, 0.05)
		s.CondFrac = band(0.28, 0.36)
		s.CallFrac = band(0.11, 0.16)
		s.JumpFrac = 0.02
		s.IndJumpFrac = 0.015
		s.IndCallFrac = 0.02
		s.LoopTripMean = band(6, 10)
		s.BulkyFrac = band(0.30, 0.45)
		s.CalleeSkew = band(0.80, 1.10)
		s.LoadFrac = band(0.20, 0.26)
		s.StoreFrac = band(0.07, 0.11)
		s.MulFrac = band(0.02, 0.05)
		s.Stickiness = band(0.70, 0.85)
		s.HotDataBytes = 128 << 10
		s.WarmDataBytes = 2 << 20
		s.ColdDataBytes = 64 << 20
	}
	return s
}
