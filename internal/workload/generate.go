package workload

import (
	"math"

	"frontsim/internal/isa"
	"frontsim/internal/program"
)

// build constructs the program: function 0 is an endless dispatcher loop
// indirect-calling level-0 functions; functions at level l call only
// functions at level l+1, making the call graph a DAG with bounded depth.
func (g *generator) build() *program.Program {
	s := g.spec
	p := &program.Program{Name: s.Name, Base: codeBase, Entry: 0}
	p.Funcs = make([]*program.Func, s.Funcs)

	lvlSize := (s.Funcs - 1) / s.Levels
	levelRange := func(l int) (lo, hi int) {
		lo = 1 + l*lvlSize
		hi = lo + lvlSize
		if l == s.Levels-1 {
			hi = s.Funcs // last level absorbs the remainder
		}
		return lo, hi
	}

	p.Funcs[0] = g.buildMain(levelRange)
	for l := 0; l < s.Levels; l++ {
		lo, hi := levelRange(l)
		var clo, chi int
		if l+1 < s.Levels {
			clo, chi = levelRange(l + 1)
		}
		for id := lo; id < hi; id++ {
			p.Funcs[id] = g.buildFunc(id, clo, chi)
		}
	}
	return p
}

// buildMain generates the dispatcher: enough dispatcher blocks that the
// whole first call-graph level is reachable, each indirect-calling a
// weighted partition of the level-0 functions; the final block jumps back
// to block 0, making the stream endless. Full coverage matters: the cold
// tail of rarely-called functions is what gives the server workloads their
// multi-megabyte live instruction footprints.
func (g *generator) buildMain(levelRange func(int) (int, int)) *program.Func {
	s := g.spec
	lo, hi := levelRange(0)
	f := &program.Func{ID: 0, Name: "main"}

	fanout := s.DispatchFanout
	if fanout > hi-lo {
		fanout = hi - lo
	}
	dispatchers := (hi - lo + fanout - 1) / fanout
	if dispatchers < s.Dispatchers {
		dispatchers = s.Dispatchers
	}
	// A shuffled partition of level 0 so each dispatcher site has a
	// distinct, stable target set (keeps per-site indirect predictability
	// realistic while covering the level).
	perm := g.r.Perm(hi - lo)
	next := 0
	for d := 0; d < dispatchers; d++ {
		blk := &program.Block{Body: g.body(2)}
		callees := make([]program.FuncID, 0, fanout)
		weights := make([]float64, 0, fanout)
		for k := 0; k < fanout; k++ {
			callees = append(callees, program.FuncID(lo+perm[next%len(perm)]))
			weights = append(weights, g.heavyTailWeight())
			next++
		}
		blk.Term = program.Terminator{
			Kind:       program.TermIndirectCall,
			Callees:    callees,
			Weights:    weights,
			StickyProb: s.Stickiness,
		}
		f.Blocks = append(f.Blocks, blk)
	}
	// Loop closure.
	f.Blocks = append(f.Blocks, &program.Block{
		Body: g.body(1),
		Term: program.Terminator{Kind: program.TermJump, Target: program.BlockRef{Func: 0, Block: 0}},
	})
	return f
}

// heavyTailWeight draws a callee weight with a heavy upper tail
// (w = u^-skew): CalleeSkew 0 is uniform, values near 1 make a few callees
// dominate (hot code) while the rest form the cold instruction footprint.
func (g *generator) heavyTailWeight() float64 {
	u := g.r.Float64()
	if u < 1e-4 {
		u = 1e-4
	}
	return math.Pow(u, -g.spec.CalleeSkew)
}

// buildFunc generates one non-main function with a realistic block mix.
// Callees (if any) are drawn from [clo, chi).
func (g *generator) buildFunc(id, clo, chi int) *program.Func {
	if g.r.Bool(g.spec.BulkyFrac) {
		return g.buildBulkyFunc(id, clo, chi)
	}
	f := &program.Func{ID: program.FuncID(id), Name: fnName(id)}
	nb := g.blockCount()
	canCall := chi > clo

	// Loop back-edges are restricted to disjoint regions: each new loop
	// must start after the previous one ended. Nested random loops would
	// multiply trip counts and trap execution in one function for millions
	// of instructions, destroying the instruction-footprint churn the
	// suite needs.
	minLoopTarget := 0

	for bi := 0; bi < nb; bi++ {
		blk := &program.Block{Body: g.body(g.bodyLen())}
		if bi == nb-1 {
			blk.Term = program.Terminator{Kind: program.TermReturn}
			f.Blocks = append(f.Blocks, blk)
			break
		}
		blk.Term = g.terminator(id, bi, nb, clo, chi, canCall, &minLoopTarget)
		f.Blocks = append(f.Blocks, blk)
	}
	return f
}

// buildBulkyFunc generates a long, mostly straight-line function (3x the
// usual block count; fall-through and weakly-taken forward conditionals,
// occasional calls). Executed cold, it streams sequential line misses.
func (g *generator) buildBulkyFunc(id, clo, chi int) *program.Func {
	f := &program.Func{ID: program.FuncID(id), Name: fnName(id)}
	// Roughly twice a normal function, capped so a cold visit fits within
	// an industry-standard FTQ's run-ahead reach (24 blocks): the deep
	// front-end can then overlap the whole region's misses, which is the
	// regime the paper's traces exhibit (FDP alone covers what software
	// prefetching would have).
	nb := 2 * g.blockCount()
	if nb > 22 {
		nb = 22
	}
	if nb < 12 {
		nb = 12
	}
	canCall := chi > clo
	for bi := 0; bi < nb; bi++ {
		blk := &program.Block{Body: g.body(g.bodyLen())}
		switch {
		case bi == nb-1:
			blk.Term = program.Terminator{Kind: program.TermReturn}
		default:
			u := g.r.Float64()
			switch {
			case u < 0.70:
				blk.Term = program.Terminator{Kind: program.TermNone}
			case u < 0.94 && bi+2 <= nb-1:
				target := bi + 2 + g.r.Intn(2)
				if target > nb-1 {
					target = nb - 1
				}
				blk.Term = program.Terminator{
					Kind:       program.TermCond,
					Target:     program.BlockRef{Func: program.FuncID(id), Block: target},
					TakenProb:  0.02 + 0.08*g.r.Float64(),
					StickyProb: g.spec.Stickiness,
				}
			case canCall:
				blk.Term = program.Terminator{
					Kind:   program.TermCall,
					Callee: program.FuncID(clo + g.r.Intn(chi-clo)),
				}
			default:
				blk.Term = program.Terminator{Kind: program.TermNone}
			}
		}
		f.Blocks = append(f.Blocks, blk)
	}
	return f
}

func (g *generator) blockCount() int {
	n := g.r.Geometric(float64(g.spec.BlocksPerFunc))
	if n < 2 {
		n = 2
	}
	if n > 4*g.spec.BlocksPerFunc {
		n = 4 * g.spec.BlocksPerFunc
	}
	return n
}

func (g *generator) bodyLen() int {
	n := g.r.Geometric(g.spec.BodyLenMean)
	if n < 1 {
		n = 1
	}
	if n > 7 {
		n = 7
	}
	return n
}

// body generates n body instructions with the configured class mix.
func (g *generator) body(n int) []program.StaticInstr {
	s := g.spec
	out := make([]program.StaticInstr, n)
	for i := range out {
		u := g.r.Float64()
		switch {
		case u < s.LoadFrac:
			out[i] = program.StaticInstr{Class: isa.ClassLoad, Data: g.dataPattern()}
		case u < s.LoadFrac+s.StoreFrac:
			out[i] = program.StaticInstr{Class: isa.ClassStore, Data: g.dataPattern()}
		case u < s.LoadFrac+s.StoreFrac+s.MulFrac:
			out[i] = program.StaticInstr{Class: isa.ClassMul}
		default:
			out[i] = program.StaticInstr{Class: isa.ClassALU}
		}
	}
	return out
}

// dataPattern assigns a memory instruction's address behaviour over the
// hot/warm/cold regions.
func (g *generator) dataPattern() program.DataPattern {
	u := g.r.Float64()
	switch {
	case u < 0.52:
		return program.DataPattern{Kind: program.DataStride, Region: g.hot, Stride: 8 * (1 + uint64(g.r.Intn(4)))}
	case u < 0.72:
		return program.DataPattern{Kind: program.DataPoint, Region: g.hot}
	case u < 0.88:
		return program.DataPattern{Kind: program.DataStride, Region: g.warm, Stride: 64}
	case u < 0.96:
		return program.DataPattern{Kind: program.DataRandom, Region: g.warm}
	default:
		return program.DataPattern{Kind: program.DataRandom, Region: g.cold}
	}
}

// condBias draws a conditional branch's taken probability from a bimodal
// distribution matching real code: most branches are strongly biased (and
// thus predictable), a minority are genuinely hard. Because the executor
// draws outcomes independently per execution, a predictor's accuracy on a
// branch is capped at max(p, 1-p); this mix puts aggregate conditional
// accuracy in the ~0.92–0.96 band real front-ends see.
func (g *generator) condBias() float64 {
	u := g.r.Float64()
	switch {
	case u < 0.64: // strongly not-taken (sequential transit code)
		return 0.015 + 0.04*g.r.Float64()
	case u < 0.93: // strongly taken
		return 0.94 + 0.045*g.r.Float64()
	case u < 0.98: // moderately biased
		return 0.12 + 0.15*g.r.Float64()
	default: // hard
		return 0.35 + 0.30*g.r.Float64()
	}
}

// terminator picks a block ending for block bi of nb in function id.
// minLoopTarget enforces disjoint loop regions (see buildFunc).
func (g *generator) terminator(id, bi, nb, clo, chi int, canCall bool, minLoopTarget *int) program.Terminator {
	s := g.spec
	u := g.r.Float64()
	cum := s.LoopFrac
	// A loop back-edge needs an eligible earlier block and room to fall
	// through.
	if u < cum && bi >= *minLoopTarget {
		target := *minLoopTarget + g.r.Intn(bi-*minLoopTarget+1)
		*minLoopTarget = bi + 1
		trip := g.r.Geometric(s.LoopTripMean)
		if trip < 4 {
			trip = 4
		}
		p := 1 - 1/float64(trip)
		if p > 0.98 {
			p = 0.98
		}
		return program.Terminator{
			Kind:      program.TermCond,
			Target:    program.BlockRef{Func: program.FuncID(id), Block: target},
			TakenProb: p,
		}
	}
	cum += s.CondFrac
	if u < cum && bi+2 <= nb-1 {
		// Forward conditional skipping 1..3 blocks.
		span := 1 + g.r.Intn(3)
		target := bi + 1 + span
		if target > nb-1 {
			target = nb - 1
		}
		return program.Terminator{
			Kind:       program.TermCond,
			Target:     program.BlockRef{Func: program.FuncID(id), Block: target},
			TakenProb:  g.condBias(),
			StickyProb: g.spec.Stickiness,
		}
	}
	cum += s.CallFrac
	if u < cum && canCall {
		return program.Terminator{
			Kind:   program.TermCall,
			Callee: program.FuncID(clo + g.r.Intn(chi-clo)),
		}
	}
	cum += s.JumpFrac
	if u < cum && bi+2 <= nb-1 {
		target := bi + 1 + g.r.Intn(nb-1-bi-1)
		if target <= bi {
			target = bi + 1
		}
		return program.Terminator{
			Kind:   program.TermJump,
			Target: program.BlockRef{Func: program.FuncID(id), Block: target},
		}
	}
	cum += s.IndJumpFrac
	if u < cum && bi+3 <= nb-1 {
		// Switch-like indirect jump over a few forward blocks.
		n := 2 + g.r.Intn(3)
		targets := make([]program.BlockRef, 0, n)
		weights := make([]float64, 0, n)
		for k := 0; k < n; k++ {
			tb := bi + 1 + g.r.Intn(nb-1-bi)
			if tb > nb-1 {
				tb = nb - 1
			}
			targets = append(targets, program.BlockRef{Func: program.FuncID(id), Block: tb})
			weights = append(weights, g.heavyTailWeight())
		}
		return program.Terminator{Kind: program.TermIndirect, Targets: targets, Weights: weights, StickyProb: g.spec.Stickiness}
	}
	cum += s.IndCallFrac
	if u < cum && canCall && chi-clo >= 2 {
		n := 2 + g.r.Intn(3)
		callees := make([]program.FuncID, 0, n)
		weights := make([]float64, 0, n)
		for k := 0; k < n; k++ {
			callees = append(callees, program.FuncID(clo+g.r.Intn(chi-clo)))
			weights = append(weights, g.heavyTailWeight())
		}
		return program.Terminator{Kind: program.TermIndirectCall, Callees: callees, Weights: weights, StickyProb: g.spec.Stickiness}
	}
	return program.Terminator{Kind: program.TermNone}
}

func fnName(id int) string {
	const chars = "abcdefghijklmnopqrstuvwxyz"
	buf := make([]byte, 0, 8)
	buf = append(buf, 'f', '_')
	for id > 0 {
		buf = append(buf, chars[id%len(chars)])
		id /= len(chars)
	}
	return string(buf)
}
