// Package workload defines the 48 synthetic workloads standing in for the
// CVP-1 trace subset the paper evaluates (proprietary and unavailable; see
// DESIGN.md §2). Each workload is a generator Spec that deterministically
// builds a synthetic program (internal/program) whose gross properties —
// instruction footprint, basic-block size distribution, branch mix and
// bias, call-graph shape, data working set — are tuned per category so the
// suite's L1-I MPKI spans the paper's ~2–28 band on the 24-entry-FTQ
// baseline.
//
// The workload names mirror the paper's Figure 1 labels. Three categories
// drive the tuning: "crypto" (small, loopy kernels: low MPKI), "int"
// (medium footprints), and "srv" (server-like multi-megabyte instruction
// footprints with deep call stacks: high MPKI).
package workload

import (
	"fmt"

	"frontsim/internal/isa"
	"frontsim/internal/program"
	"frontsim/internal/trace"
	"frontsim/internal/xrand"
)

// Category classifies a workload's tuning regime.
type Category uint8

const (
	// Crypto models small compute kernels with tight loops.
	Crypto Category = iota
	// Integer models general-purpose medium-footprint code.
	Integer
	// Server models warehouse-scale services with large instruction
	// footprints and deep software stacks.
	Server
)

// String names the category.
func (c Category) String() string {
	switch c {
	case Crypto:
		return "crypto"
	case Integer:
		return "int"
	case Server:
		return "srv"
	}
	return fmt.Sprintf("category(%d)", uint8(c))
}

// Spec fully determines a synthetic workload.
type Spec struct {
	Name     string
	Category Category
	Seed     uint64

	// Static shape.
	Funcs          int // total functions including the main dispatcher
	Levels         int // call-graph depth (functions call only the next level)
	Dispatchers    int // dispatcher blocks in main
	DispatchFanout int // candidate callees per dispatcher site
	BlocksPerFunc  int // mean basic blocks per function
	BodyLenMean    float64

	// Terminator mix for non-final blocks (remainder falls through).
	LoopFrac    float64
	CondFrac    float64
	CallFrac    float64
	JumpFrac    float64
	IndJumpFrac float64
	IndCallFrac float64

	LoopTripMean float64
	// BulkyFrac is the fraction of functions generated as long, mostly
	// straight-line code (serialization/logging-style paths). Cold visits
	// to bulky functions stream many sequential cache-line misses — the
	// pattern that lets a deep FTQ's out-of-order fetch overlap misses
	// while a 2-entry FTQ serializes them.
	BulkyFrac float64
	// Stickiness is the probability a branch repeats its previous dynamic
	// outcome (temporal correlation); it is what makes the synthetic
	// branches realistically predictable rather than capped at their
	// static bias.
	Stickiness float64
	// CalleeSkew shapes the hot/cold callee weight distribution; larger
	// values concentrate execution on fewer functions (smaller effective
	// instruction working set).
	CalleeSkew float64

	// Body instruction mix (remainder is ALU).
	LoadFrac  float64
	StoreFrac float64
	MulFrac   float64

	// Data working set regions.
	HotDataBytes  uint64
	WarmDataBytes uint64
	ColdDataBytes uint64
}

// Validate sanity-checks the generator parameters.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("workload: empty name")
	}
	if s.Funcs < 2 || s.Levels < 1 || s.Funcs-1 < s.Levels {
		return fmt.Errorf("workload %s: funcs=%d levels=%d", s.Name, s.Funcs, s.Levels)
	}
	if s.Dispatchers < 1 || s.DispatchFanout < 1 {
		return fmt.Errorf("workload %s: dispatchers=%d fanout=%d", s.Name, s.Dispatchers, s.DispatchFanout)
	}
	if s.BlocksPerFunc < 2 {
		return fmt.Errorf("workload %s: BlocksPerFunc=%d", s.Name, s.BlocksPerFunc)
	}
	if s.BodyLenMean < 1 || s.BodyLenMean > 7 {
		return fmt.Errorf("workload %s: BodyLenMean=%v", s.Name, s.BodyLenMean)
	}
	sum := s.LoopFrac + s.CondFrac + s.CallFrac + s.JumpFrac + s.IndJumpFrac + s.IndCallFrac
	if sum > 1 {
		return fmt.Errorf("workload %s: terminator fractions sum %v > 1", s.Name, sum)
	}
	if s.LoopTripMean < 1 {
		return fmt.Errorf("workload %s: LoopTripMean=%v", s.Name, s.LoopTripMean)
	}
	if s.BulkyFrac < 0 || s.BulkyFrac > 1 {
		return fmt.Errorf("workload %s: BulkyFrac=%v", s.Name, s.BulkyFrac)
	}
	if s.Stickiness < 0 || s.Stickiness >= 1 {
		return fmt.Errorf("workload %s: Stickiness=%v", s.Name, s.Stickiness)
	}
	if s.LoadFrac+s.StoreFrac+s.MulFrac > 1 {
		return fmt.Errorf("workload %s: body fractions exceed 1", s.Name)
	}
	if s.HotDataBytes == 0 || s.WarmDataBytes == 0 || s.ColdDataBytes == 0 {
		return fmt.Errorf("workload %s: zero data region", s.Name)
	}
	return nil
}

const (
	hotDataBase  = isa.Addr(0x10000000)
	warmDataBase = isa.Addr(0x20000000)
	coldDataBase = isa.Addr(0x40000000)
	codeBase     = isa.Addr(0x00400000)
)

// Build deterministically generates the workload's program.
func (s Spec) Build() (*program.Program, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	g := &generator{
		spec: s,
		r:    xrand.New(s.Seed),
		hot:  program.Region{Base: hotDataBase, Size: s.HotDataBytes},
		warm: program.Region{Base: warmDataBase, Size: s.WarmDataBytes},
		cold: program.Region{Base: coldDataBase, Size: s.ColdDataBytes},
	}
	p := g.build()
	p.Layout()
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("workload %s: generated invalid program: %w", s.Name, err)
	}
	return p, nil
}

// NewSource builds the program and returns an executor over it. The
// executor seed is derived from (not equal to) the structural seed so the
// dynamic draws are independent of generation draws.
func (s Spec) NewSource() (trace.Source, error) {
	p, err := s.Build()
	if err != nil {
		return nil, err
	}
	return program.NewExecutor(p, s.Seed^0x5eed5eed5eed5eed), nil
}

type generator struct {
	spec            Spec
	r               *xrand.Rand
	hot, warm, cold program.Region
}
