package workload

import (
	"testing"
	"testing/quick"

	"frontsim/internal/isa"
	"frontsim/internal/trace"
	"frontsim/internal/xrand"
)

// randomSpec derives a structurally valid Spec from a seed, spanning the
// generator's parameter space more broadly than the tuned suite does.
func randomSpec(seed uint64) Spec {
	r := xrand.New(seed)
	band := func(lo, hi float64) float64 { return lo + (hi-lo)*r.Float64() }
	s := Spec{
		Name:           "prop",
		Category:       Category(r.Intn(3)),
		Seed:           seed,
		Funcs:          20 + r.Intn(400),
		Levels:         1 + r.Intn(5),
		Dispatchers:    1 + r.Intn(4),
		DispatchFanout: 1 + r.Intn(32),
		BlocksPerFunc:  2 + r.Intn(14),
		BodyLenMean:    band(1, 7),
		LoopFrac:       band(0, 0.3),
		CondFrac:       band(0, 0.35),
		CallFrac:       band(0, 0.2),
		JumpFrac:       band(0, 0.05),
		IndJumpFrac:    band(0, 0.04),
		IndCallFrac:    band(0, 0.04),
		LoopTripMean:   band(1, 40),
		BulkyFrac:      band(0, 0.6),
		Stickiness:     band(0, 0.95),
		CalleeSkew:     band(0, 1.3),
		LoadFrac:       band(0.05, 0.3),
		StoreFrac:      band(0.02, 0.12),
		MulFrac:        band(0, 0.08),
		HotDataBytes:   1 << 14,
		WarmDataBytes:  1 << 18,
		ColdDataBytes:  1 << 22,
	}
	if s.Funcs-1 < s.Levels {
		s.Levels = s.Funcs - 1
	}
	return s
}

// TestRandomSpecsGenerateValidPrograms is the generator's structural
// property test: any in-range parameter combination must yield a program
// that validates and executes as a continuous dynamic path.
func TestRandomSpecsGenerateValidPrograms(t *testing.T) {
	check := func(seed uint64) bool {
		s := randomSpec(seed)
		if err := s.Validate(); err != nil {
			t.Logf("seed %d: spec invalid: %v", seed, err)
			return false
		}
		p, err := s.Build()
		if err != nil {
			t.Logf("seed %d: build: %v", seed, err)
			return false
		}
		src, err := s.NewSource()
		if err != nil {
			t.Logf("seed %d: source: %v", seed, err)
			return false
		}
		// Continuity: every instruction follows from the previous one.
		var prev *isa.Instr
		for i := 0; i < 20_000; i++ {
			in, err := src.Next()
			if err != nil {
				t.Logf("seed %d: stream ended early: %v", seed, err)
				return false
			}
			if prev != nil && in.PC != prev.NextPC() {
				t.Logf("seed %d: discontinuity at %d: %v -> %v", seed, i, prev, in)
				return false
			}
			// Every PC resolves inside the program.
			if _, _, ok := p.Locate(in.PC); !ok {
				t.Logf("seed %d: PC %v outside program", seed, in.PC)
				return false
			}
			cp := in
			prev = &cp
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 12}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestRandomSpecsReplayExactly verifies determinism holds across the whole
// parameter space, not just the tuned suite.
func TestRandomSpecsReplayExactly(t *testing.T) {
	check := func(seed uint64) bool {
		s := randomSpec(seed)
		a, err := s.NewSource()
		if err != nil {
			return false
		}
		b, err := s.NewSource()
		if err != nil {
			return false
		}
		x, _ := trace.Collect(trace.NewLimit(a, 5_000), -1)
		y, _ := trace.Collect(trace.NewLimit(b, 5_000), -1)
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}
