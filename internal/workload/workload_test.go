package workload

import (
	"testing"

	"frontsim/internal/isa"
	"frontsim/internal/trace"
)

func TestSuiteHas48UniqueNames(t *testing.T) {
	names := Names()
	if len(names) != Count || Count != 48 {
		t.Fatalf("suite has %d names", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate name %q", n)
		}
		seen[n] = true
	}
}

func TestCategoryInference(t *testing.T) {
	cases := map[string]Category{
		"secret_crypto52": Crypto,
		"secret_int_124":  Integer,
		"secret_srv12":    Server,
		"public_srv_60":   Server,
	}
	for name, want := range cases {
		s, ok := Lookup(name)
		if !ok {
			t.Fatalf("Lookup(%q) failed", name)
		}
		if s.Category != want {
			t.Errorf("%s category %v, want %v", name, s.Category, want)
		}
	}
	if _, ok := Lookup("nonexistent"); ok {
		t.Fatal("Lookup accepted unknown name")
	}
}

func TestByIndex(t *testing.T) {
	s, err := ByIndex(1)
	if err != nil || s.Name != "public_srv_60" {
		t.Fatalf("ByIndex(1) = %v, %v", s.Name, err)
	}
	s, err = ByIndex(48)
	if err != nil || s.Name != "secret_srv85" {
		t.Fatalf("ByIndex(48) = %v, %v", s.Name, err)
	}
	if _, err := ByIndex(0); err == nil {
		t.Fatal("ByIndex(0) accepted")
	}
	if _, err := ByIndex(49); err == nil {
		t.Fatal("ByIndex(49) accepted")
	}
}

func TestAllSpecsValidate(t *testing.T) {
	for _, s := range All() {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestSpecValidateRejectsBad(t *testing.T) {
	good, _ := Lookup("secret_crypto52")
	muts := []func(*Spec){
		func(s *Spec) { s.Name = "" },
		func(s *Spec) { s.Funcs = 1 },
		func(s *Spec) { s.Levels = 0 },
		func(s *Spec) { s.Dispatchers = 0 },
		func(s *Spec) { s.BlocksPerFunc = 1 },
		func(s *Spec) { s.BodyLenMean = 0 },
		func(s *Spec) { s.BodyLenMean = 9 },
		func(s *Spec) { s.LoopFrac = 0.9; s.CondFrac = 0.9 },
		func(s *Spec) { s.LoopTripMean = 0 },
		func(s *Spec) { s.LoadFrac = 0.9; s.StoreFrac = 0.9 },
		func(s *Spec) { s.HotDataBytes = 0 },
	}
	for i, m := range muts {
		s := good
		m(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestBuildIsDeterministic(t *testing.T) {
	s, _ := Lookup("secret_crypto52")
	p1, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p1.NumInstrs() != p2.NumInstrs() || p1.StaticBytes() != p2.StaticBytes() {
		t.Fatalf("non-deterministic build: %d/%d vs %d/%d",
			p1.NumInstrs(), p1.StaticBytes(), p2.NumInstrs(), p2.StaticBytes())
	}
}

func TestSourceIsDeterministic(t *testing.T) {
	s, _ := Lookup("secret_int_44")
	src1, err := s.NewSource()
	if err != nil {
		t.Fatal(err)
	}
	src2, _ := s.NewSource()
	a, _ := trace.Collect(trace.NewLimit(src1, 20000), -1)
	b, _ := trace.Collect(trace.NewLimit(src2, 20000), -1)
	if len(a) != 20000 || len(b) != 20000 {
		t.Fatalf("streams short: %d %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streams diverge at %d", i)
		}
	}
}

func TestFootprintBands(t *testing.T) {
	// Static code footprints must land in the per-category bands that
	// produce the paper's MPKI spread.
	type band struct{ lo, hi int64 }
	bands := map[Category]band{
		Crypto:  {32 << 10, 640 << 10},
		Integer: {512 << 10, 8 << 20},
		Server:  {1500 << 10, 32 << 20},
	}
	for _, name := range []string{"secret_crypto52", "secret_int_44", "secret_srv12"} {
		s, _ := Lookup(name)
		p, err := s.Build()
		if err != nil {
			t.Fatal(err)
		}
		fp := int64(p.StaticBytes())
		b := bands[s.Category]
		if fp < b.lo || fp > b.hi {
			t.Errorf("%s footprint %d KiB outside [%d,%d] KiB",
				name, fp>>10, b.lo>>10, b.hi>>10)
		}
	}
}

func TestStreamComposition(t *testing.T) {
	s, _ := Lookup("secret_srv12")
	src, err := s.NewSource()
	if err != nil {
		t.Fatal(err)
	}
	st, err := trace.Measure(trace.NewLimit(src, 100000))
	if err != nil {
		t.Fatal(err)
	}
	if st.Instructions != 100000 {
		t.Fatalf("stream ended early: %d", st.Instructions)
	}
	bf := st.BranchFraction()
	if bf < 0.10 || bf > 0.40 {
		t.Errorf("branch fraction %v outside [0.10,0.40]", bf)
	}
	if st.ByClass[isa.ClassLoad] == 0 || st.ByClass[isa.ClassStore] == 0 {
		t.Error("no memory instructions in stream")
	}
	if st.ByClass[isa.ClassCall] == 0 || st.ByClass[isa.ClassReturn] == 0 {
		t.Error("no call/return in stream")
	}
	if st.ByClass[isa.ClassIndirectCall] == 0 {
		t.Error("no indirect calls in stream")
	}
	// Calls and returns must balance within the live call depth.
	diff := st.ByClass[isa.ClassCall] + st.ByClass[isa.ClassIndirectCall] - st.ByClass[isa.ClassReturn]
	if diff < 0 || diff > 1024 {
		t.Errorf("call/return imbalance %d", diff)
	}
}

func TestDistinctWorkloadsDiffer(t *testing.T) {
	a, _ := Lookup("secret_srv12")
	b, _ := Lookup("secret_srv128")
	pa, err := a.Build()
	if err != nil {
		t.Fatal(err)
	}
	pb, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if pa.NumInstrs() == pb.NumInstrs() {
		t.Error("suspiciously identical instruction counts")
	}
}

func TestCategoryString(t *testing.T) {
	for _, c := range []Category{Crypto, Integer, Server, Category(9)} {
		if c.String() == "" {
			t.Error("empty category name")
		}
	}
}

func TestSeedStability(t *testing.T) {
	// Seeds are part of the reproducibility contract: a rename-level
	// change must not silently re-tune the suite.
	if seedOf("secret_srv12") == seedOf("secret_srv128") {
		t.Fatal("seed collision")
	}
	if seedOf("secret_srv12") != seedOf("secret_srv12") {
		t.Fatal("unstable seed")
	}
}

func TestLongTier(t *testing.T) {
	long := LongNames()
	if len(long) != 4 {
		t.Fatalf("long tier has %d names, want 4", len(long))
	}
	inSuite := map[string]bool{}
	for _, n := range Names() {
		inSuite[n] = true
	}
	for _, n := range long {
		if inSuite[n] {
			t.Errorf("long-tier workload %s leaked into the 48-workload suite", n)
		}
		s, ok := Lookup(n)
		if !ok {
			t.Fatalf("Lookup(%q) failed for long-tier workload", n)
		}
		if s.Name != n {
			t.Errorf("Lookup(%q) returned spec named %q", n, s.Name)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", n, err)
		}
	}
	cats := map[string]Category{
		"long_crypto_17": Crypto,
		"long_int_333":   Integer,
		"long_srv_584":   Server,
		"long_srv_872":   Server,
	}
	for _, s := range LongAll() {
		if want := cats[s.Name]; s.Category != want {
			t.Errorf("%s category %v, want %v", s.Name, s.Category, want)
		}
	}
	if len(All()) != Count {
		t.Fatalf("All() returned %d specs, long tier must not be included", len(All()))
	}
}
