package ftq

import (
	"frontsim/internal/cache"
	"frontsim/internal/obs"
)

// Classify returns the scenario classification Tick would record for a
// cycle at which the queue holds its current contents. It is pure: entry
// ready times are fixed at push, so the classification of any cycle in a
// span with frozen contents is decidable without ticking through it.
func (q *FTQ) Classify(now cache.Cycle) obs.Scenario {
	if q.size == 0 {
		return obs.ScenarioEmpty
	}
	if q.at(0).ready > now {
		for i := 1; i < q.size; i++ {
			if q.at(i).ready <= now {
				return obs.Scenario2
			}
		}
		return obs.Scenario3
	}
	return obs.ScenarioShootThrough
}

// SkipTo accounts the cycles [from, to) in one step, exactly as if Tick
// had been called once per cycle with the queue's contents unchanged
// throughout — the caller (the fast-forward scheduler) guarantees no Push,
// PopReady or Flush lands inside the span. The per-cycle counters are
// integrable in closed form because every entry's ready cycle is a
// constant of the span:
//
//   - the head crosses from stalling to ready at most once (at its ready
//     cycle), splitting the span into a head-stall prefix and a
//     shoot-through suffix;
//   - within the stall prefix the number of completed followers is
//     non-decreasing, so Scenario 3 cycles form a prefix and Scenario 2
//     cycles a suffix, split at the earliest follower completion;
//   - WaitingEntryCycles is the sum over followers of their overlap with
//     the stall prefix.
func (q *FTQ) SkipTo(from, to cache.Cycle) {
	if to <= from {
		return
	}
	q.stats.Cycles += int64(to - from)
	if q.size == 0 {
		q.stats.EmptyCycles += int64(to - from)
	} else {
		// stallEnd clamps the head's ready cycle into the span: cycles in
		// [from, stallEnd) see a stalling head, [stallEnd, to) a ready one.
		stallEnd := q.at(0).ready
		if stallEnd < from {
			stallEnd = from
		}
		if stallEnd > to {
			stallEnd = to
		}
		if stallEnd > from {
			q.stats.HeadStallCycles += int64(stallEnd - from)
			firstFollower := cache.CycleMax
			for i := 1; i < q.size; i++ {
				r := q.at(i).ready
				if r < firstFollower {
					firstFollower = r
				}
				start := r
				if start < from {
					start = from
				}
				if start < stallEnd {
					q.stats.WaitingEntryCycles += int64(stallEnd - start)
				}
			}
			s2Start := firstFollower
			if s2Start < from {
				s2Start = from
			}
			if s2Start > stallEnd {
				s2Start = stallEnd
			}
			q.stats.Scenario3Cycles += int64(s2Start - from)
			q.stats.Scenario2Cycles += int64(stallEnd - s2Start)
		}
		q.stats.ShootThroughCycles += int64(to - stallEnd)
	}
	if q.sink != nil {
		q.lastState = q.Classify(to - 1)
		if to-1 > q.lastNow {
			q.lastNow = to - 1
		}
	}
}
