package ftq

import (
	"testing"

	"frontsim/internal/cache"
	"frontsim/internal/isa"
	"frontsim/internal/obs"
	"frontsim/internal/xrand"
)

// TestSkipToMatchesTickProperty drives two identically-loaded queues —
// one ticked cycle by cycle, one bulk-accounted with SkipTo over the same
// spans — through randomized push/pop traffic, and requires every counter
// (and the observer-facing classification) to agree after every span. The
// random latencies make head-ready and follower-ready transitions land
// inside spans, exercising the closed-form split points.
func TestSkipToMatchesTickProperty(t *testing.T) {
	for seed := uint64(0); seed < 60; seed++ {
		r := xrand.New(seed ^ 0xf00d_5eed)
		capn := 1 + r.Intn(24)
		qt, qs := New(capn), New(capn)
		observed := r.Bool(0.5)
		if observed {
			qt.SetObserver(obs.NewObserver(obs.Options{Stride: 1}))
			qs.SetObserver(obs.NewObserver(obs.Options{Stride: 1}))
		}
		pc := isa.Addr(0x1000)
		now := cache.Cycle(1)
		for phase := 0; phase < 6; phase++ {
			// Mutation window: identical pushes/pops on both queues, both
			// ticked per cycle.
			for i, n := 0, r.Intn(25); i < n; i++ {
				if !qt.Full() && r.Bool(0.6) {
					k := 1 + r.Intn(MaxBlockInstrs)
					lat := cache.Cycle(r.Intn(400))
					fetch := func(line isa.Addr, at cache.Cycle) cache.Cycle { return at + lat }
					qt.Push(block(pc, k), now, fetch)
					qs.Push(block(pc, k), now, fetch)
					pc += isa.Addr(k * isa.InstrSize)
				}
				if r.Bool(0.4) {
					w := 1 + r.Intn(8)
					qt.PopReady(now, w, nil)
					qs.PopReady(now, w, nil)
				}
				qt.Tick(now)
				qs.Tick(now)
				now++
			}
			// Frozen span: contents untouched; one queue ticks through it,
			// the other jumps.
			span := cache.Cycle(1 + r.Intn(500))
			for c := now; c < now+span; c++ {
				qt.Tick(c)
			}
			qs.SkipTo(now, now+span)
			now += span
			if qt.Stats() != qs.Stats() {
				t.Fatalf("seed %d phase %d (cap %d, span %d ending at %d): stats diverge:\nticked: %+v\nskipped: %+v",
					seed, phase, capn, span, now, qt.Stats(), qs.Stats())
			}
			if observed && qt.LastState() != qs.LastState() {
				t.Fatalf("seed %d phase %d: last state %v (ticked) vs %v (skipped)", seed, phase, qt.LastState(), qs.LastState())
			}
			if err := qs.CheckInvariants(now - 1); err != nil {
				t.Fatalf("seed %d phase %d: invariants broken after SkipTo: %v", seed, phase, err)
			}
		}
	}
}

// TestSkipToSplitPoints pins the closed-form boundaries deterministically:
// a span that starts in Scenario 3, crosses a follower completion into
// Scenario 2, then crosses the head's completion into shoot-through.
func TestSkipToSplitPoints(t *testing.T) {
	build := func() *FTQ {
		q := New(4)
		// Head ready at 100, follower at 40.
		q.Push(block(0x1000, 2), 0, func(isa.Addr, cache.Cycle) cache.Cycle { return 100 })
		q.Push(block(0x2000, 2), 0, func(isa.Addr, cache.Cycle) cache.Cycle { return 40 })
		return q
	}
	qt, qs := build(), build()
	for c := cache.Cycle(10); c < 130; c++ {
		qt.Tick(c)
	}
	qs.SkipTo(10, 130)
	st := qs.Stats()
	if qt.Stats() != st {
		t.Fatalf("stats diverge:\nticked: %+v\nskipped: %+v", qt.Stats(), st)
	}
	// [10,40) Scenario 3, [40,100) Scenario 2, [100,130) shoot-through.
	if st.Scenario3Cycles != 30 || st.Scenario2Cycles != 60 || st.ShootThroughCycles != 30 {
		t.Fatalf("split wrong: %+v", st)
	}
	if st.WaitingEntryCycles != 60 || st.HeadStallCycles != 90 {
		t.Fatalf("integrals wrong: %+v", st)
	}
	if got := qs.Classify(39); got != obs.Scenario3 {
		t.Fatalf("Classify(39) = %v", got)
	}
	if got := qs.Classify(40); got != obs.Scenario2 {
		t.Fatalf("Classify(40) = %v", got)
	}
	if got := qs.Classify(100); got != obs.ScenarioShootThrough {
		t.Fatalf("Classify(100) = %v", got)
	}
}
