// Package ftq implements the Fetch Target Queue of a decoupled (FDP)
// front-end, together with the state accounting behind the paper's
// characterization: Scenario 1 (shoot-through: head ready), Scenario 2
// (stalling head with completed followers waiting) and Scenario 3 (shadow
// stalls: entries promoted to head before their fetch completes).
//
// Each entry holds one basic block of up to MaxBlockInstrs instructions
// (the paper's eight). Fetches issue to the L1-I as soon as an entry is
// pushed — out of program order with respect to other entries — while
// instructions leave for decode strictly in order. Entries whose cache
// line(s) are already covered by another resident entry merge and issue no
// request, producing the same-line aliasing that gives deeper FTQs their
// ~14% L1-I access reduction (§V-B).
package ftq

import (
	"frontsim/internal/cache"
	"frontsim/internal/isa"
	"frontsim/internal/obs"
)

// MaxBlockInstrs is the per-entry basic block capacity (8 instructions, as
// in the paper's FDP description: a 24-entry FTQ covers 192 32-bit
// instructions).
const MaxBlockInstrs = 8

// maxEntryLines is the most cache lines a block can span: 8 instructions *
// 4 bytes = 32 bytes, so at most 2 lines.
const maxEntryLines = 2

// FetchFunc issues a demand fetch for an instruction cache line and returns
// the cycle the line becomes available.
type FetchFunc func(line isa.Addr, now cache.Cycle) cache.Cycle

// Entry is one FTQ slot: a basic block awaiting fetch completion.
type Entry struct {
	pc     isa.Addr
	n      int
	instrs [MaxBlockInstrs]isa.Instr

	issue cache.Cycle // push/issue cycle
	ready cache.Cycle // all lines available

	lines  [maxEntryLines]isa.Addr
	nlines int

	waiting  bool        // completed fetch while an older resident entry had not
	partial  bool        // promoted to head before fetch completed (Scenario 3)
	headAt   cache.Cycle // promotion cycle (valid when partial)
	consumed int         // instructions already sent to decode
}

// PC returns the block start address.
func (e *Entry) PC() isa.Addr { return e.pc }

// Ready returns the cycle the entry's fetch completes.
func (e *Entry) Ready() cache.Cycle { return e.ready }

// Len returns the number of instructions in the block.
func (e *Entry) Len() int { return e.n }

// Stats aggregates the paper's FTQ-state measurements.
type Stats struct {
	// Pushed counts entries that entered the FTQ.
	Pushed int64
	// Instructions counts instructions dequeued to decode.
	Instructions int64

	// Cycles counts Tick calls — the denominator of the scenario
	// partition. Every ticked cycle is classified as exactly one of
	// Scenario 1 (shoot-through), Scenario 2, Scenario 3, or empty, so
	// ShootThroughCycles + Scenario2Cycles + Scenario3Cycles +
	// EmptyCycles == Cycles is a conservation identity the audit mode
	// (CheckInvariants) asserts every cycle.
	Cycles int64

	// HeadStallCycles: cycles a non-empty FTQ spent with an incomplete
	// head entry (Fig. 9); always Scenario2Cycles + Scenario3Cycles.
	HeadStallCycles int64
	// ShootThroughCycles: cycles with a ready head (Scenario 1).
	ShootThroughCycles int64
	// Scenario2Cycles: head-stall cycles with at least one completed
	// follower buffered behind the stalling head (the paper's Scenario 2:
	// the queue holds finished work the stall is blocking).
	Scenario2Cycles int64
	// Scenario3Cycles: head-stall cycles with no completed follower — the
	// head was promoted before its fetch finished and nothing behind it is
	// ready either (the paper's Scenario 3 shadow stalls).
	Scenario3Cycles int64
	// EmptyCycles: cycles with no entries (fill-side limited).
	EmptyCycles int64

	// WaitingEntries: entries that completed fetch while an older resident
	// entry was still incomplete — they waited on a stalling head before
	// progressing (counted once per entry).
	WaitingEntries int64
	// WaitingEntryCycles integrates, over every head-stall cycle, the
	// number of resident entries that had completed fetch and were blocked
	// behind the stalling head (Fig. 10's measure of buffered-but-blocked
	// work).
	WaitingEntryCycles int64
	// PartialEntries: entries promoted to head before completing fetch —
	// their latency was only partially covered by the previous head
	// (Scenario 3, Fig. 11).
	PartialEntries int64

	// Fetch-latency accounting split by whether the entry ended up
	// stalling at the head (Fig. 8).
	HeadFetchCycles     int64
	HeadFetchEntries    int64
	NonHeadFetchCycles  int64
	NonHeadFetchEntries int64

	// LinesRequested counts L1-I line fetches issued; LinesMerged counts
	// entry lines satisfied by another resident entry's outstanding or
	// completed request (the aliasing effect).
	LinesRequested int64
	LinesMerged    int64

	// HeadStallHist buckets each head-stall episode by its duration in
	// cycles (the latency level that caused it): boundaries are
	// HeadStallBuckets, with the final bucket open-ended. It refines
	// Figs 8/9: which memory level the stalling heads are waiting on.
	HeadStallHist [len(HeadStallBuckets) + 1]int64
}

// HeadStallBuckets are the histogram boundaries in cycles, aligned with
// the hierarchy's latency levels (L1 hit, L2, LLC, DRAM).
var HeadStallBuckets = [4]cache.Cycle{8, 24, 64, 256}

// histBucket returns the HeadStallHist index for a stall duration.
func histBucket(d cache.Cycle) int {
	for i, b := range HeadStallBuckets {
		if d < b {
			return i
		}
	}
	return len(HeadStallBuckets)
}

// AvgHeadFetch returns the mean fetch latency of entries that stalled the
// head.
func (s *Stats) AvgHeadFetch() float64 {
	if s.HeadFetchEntries == 0 {
		return 0
	}
	return float64(s.HeadFetchCycles) / float64(s.HeadFetchEntries)
}

// AvgNonHeadFetch returns the mean fetch latency of entries that completed
// before reaching the head.
func (s *Stats) AvgNonHeadFetch() float64 {
	if s.NonHeadFetchEntries == 0 {
		return 0
	}
	return float64(s.NonHeadFetchCycles) / float64(s.NonHeadFetchEntries)
}

type lineRef struct {
	key   isa.Addr // line address + 1; 0 marks an empty slot
	ready cache.Cycle
	count int32
}

// lineRefTable is a fixed-size open-addressing hash table over the cache
// lines covered by resident entries. The queue holds at most 2·capacity
// live lines (two per entry), so a table sized 4·capacity stays under 50%
// load and every operation is a short linear probe — much cheaper than a
// Go map on the per-push/per-retire path, and trivially deterministic.
type lineRefTable struct {
	slots []lineRef
	shift uint // Fibonacci-hash shift: index = key*phi64 >> shift
}

func newLineRefTable(capacity int) lineRefTable {
	n, shift := 16, uint(60)
	for n < capacity*4 {
		n <<= 1
		shift--
	}
	return lineRefTable{slots: make([]lineRef, n), shift: shift}
}

const phi64 = 0x9e3779b97f4a7c15

func (t *lineRefTable) home(key isa.Addr) int {
	return int(uint64(key) * phi64 >> t.shift)
}

// find returns the slot index holding line, or -1.
func (t *lineRefTable) find(line isa.Addr) int {
	key := line + 1
	for i := t.home(key); ; {
		s := &t.slots[i]
		if s.key == key {
			return i
		}
		if s.key == 0 {
			return -1
		}
		if i++; i == len(t.slots) {
			i = 0
		}
	}
}

// insert adds line (which must be absent) with an initial count of 1.
func (t *lineRefTable) insert(line isa.Addr, ready cache.Cycle) {
	key := line + 1
	for i := t.home(key); ; {
		if t.slots[i].key == 0 {
			t.slots[i] = lineRef{key: key, ready: ready, count: 1}
			return
		}
		if i++; i == len(t.slots) {
			i = 0
		}
	}
}

// del removes the slot at index i, backward-shifting any displaced
// followers so linear probing stays sound without tombstones.
func (t *lineRefTable) del(i int) {
	n := len(t.slots)
	for j := i; ; {
		t.slots[i] = lineRef{}
		for {
			if j++; j == n {
				j = 0
			}
			s := t.slots[j]
			if s.key == 0 {
				return
			}
			// s can stay at j only if its home lies cyclically after the
			// hole; otherwise the hole would break s's probe chain.
			h := t.home(s.key)
			if (j-h+n)%n >= (j-i+n)%n {
				t.slots[i] = s
				i = j
				break
			}
		}
	}
}

func (t *lineRefTable) clear() {
	for i := range t.slots {
		t.slots[i] = lineRef{}
	}
}

// FTQ is the fetch target queue.
type FTQ struct {
	entries []Entry // ring buffer
	head    int
	size    int

	lineRefs  lineRefTable
	prefixMax cache.Cycle // max ready over all entries ever pushed

	stats Stats

	sink      obs.Sink     // nil when observation is off
	lastState obs.Scenario // classification of the last ticked cycle
	lastNow   cache.Cycle  // most recent cycle seen by Tick/Push (sink != nil)
}

// New creates an FTQ with the given entry capacity.
func New(capacity int) *FTQ {
	if capacity <= 0 {
		panic("ftq: non-positive capacity")
	}
	return &FTQ{
		entries:  make([]Entry, capacity),
		lineRefs: newLineRefTable(capacity),
	}
}

// Cap returns the entry capacity.
func (q *FTQ) Cap() int { return len(q.entries) }

// Len returns the number of resident entries.
func (q *FTQ) Len() int { return q.size }

// Empty reports an empty queue.
func (q *FTQ) Empty() bool { return q.size == 0 }

// Full reports a full queue.
func (q *FTQ) Full() bool { return q.size == len(q.entries) }

// SetObserver attaches an observability sink (nil detaches). Observation
// is strictly read-only; queue behaviour is identical with or without it.
func (q *FTQ) SetObserver(s obs.Sink) { q.sink = s }

// LastState returns the scenario classification of the most recently
// ticked cycle (obs.ScenarioEmpty before the first Tick). It is only
// maintained while an observer is attached.
func (q *FTQ) LastState() obs.Scenario { return q.lastState }

// ReadyMask reports, for the low min(Len, 64) resident entries, which have
// completed their fetch as of now: bit i covers the i-th entry from the
// head.
func (q *FTQ) ReadyMask(now cache.Cycle) uint64 {
	n := q.size
	if n > 64 {
		n = 64
	}
	var mask uint64
	for i := 0; i < n; i++ {
		if q.at(i).ready <= now {
			mask |= 1 << uint(i)
		}
	}
	return mask
}

// Stats returns a snapshot of the counters.
func (q *FTQ) Stats() Stats { return q.stats }

// ResetStats zeroes the counters without disturbing queue state.
func (q *FTQ) ResetStats() { q.stats = Stats{} }

func (q *FTQ) at(i int) *Entry {
	if i += q.head; i >= len(q.entries) {
		i -= len(q.entries)
	}
	return &q.entries[i]
}

// Head returns the head entry, or nil when empty.
func (q *FTQ) Head() *Entry {
	if q.size == 0 {
		return nil
	}
	return q.at(0)
}

// EntryAt returns the i-th resident entry (0 = head), or nil when out of
// range. The pointer is valid until the entry is dequeued; intended for
// inspection and visualization.
func (q *FTQ) EntryAt(i int) *Entry {
	if i < 0 || i >= q.size {
		return nil
	}
	return q.at(i)
}

// Push appends a basic block (1..MaxBlockInstrs instructions, contiguous
// PCs) and immediately issues any line fetches not already covered by a
// resident entry. It returns the entry's fetch-ready cycle and ok=false
// when the queue is full.
func (q *FTQ) Push(instrs []isa.Instr, now cache.Cycle, fetch FetchFunc) (cache.Cycle, bool) {
	if q.Full() {
		return 0, false
	}
	if len(instrs) == 0 || len(instrs) > MaxBlockInstrs {
		panic("ftq: block size out of range")
	}
	e := q.at(q.size)
	*e = Entry{pc: instrs[0].PC, n: len(instrs), issue: now}
	copy(e.instrs[:], instrs)

	// Distinct cache lines covered by the block.
	first := instrs[0].PC.Line()
	last := instrs[len(instrs)-1].PC.Line()
	e.lines[0] = first
	e.nlines = 1
	if last != first {
		e.lines[1] = last
		e.nlines = 2
	}

	ready := cache.Cycle(0)
	for i := 0; i < e.nlines; i++ {
		line := e.lines[i]
		if si := q.lineRefs.find(line); si >= 0 {
			// Covered by a resident entry: merge.
			ref := &q.lineRefs.slots[si]
			ref.count++
			q.stats.LinesMerged++
			if q.sink != nil {
				q.sink.Event(obs.Event{Cycle: int64(now), Kind: obs.EvMergeHit, Addr: uint64(line)})
			}
			if ref.ready > ready {
				ready = ref.ready
			}
			continue
		}
		r := fetch(line, now)
		q.lineRefs.insert(line, r)
		q.stats.LinesRequested++
		if r > ready {
			ready = r
		}
	}
	e.ready = ready

	// Waiting-entry classification (Fig. 10): this entry will complete
	// while an older entry is still fetching. Ready times are known at
	// issue, so the relation is decidable now; see package docs for why
	// the monotonic prefix max is exact for entries that already left.
	if q.size > 0 && e.ready < q.prefixMax {
		e.waiting = true
		q.stats.WaitingEntries++
	}
	if e.ready > q.prefixMax {
		q.prefixMax = e.ready
	}

	wasEmpty := q.size == 0
	q.size++
	q.stats.Pushed++
	if q.sink != nil && now > q.lastNow {
		q.lastNow = now
	}
	if wasEmpty {
		q.promote(now)
	}
	return ready, true
}

// promote marks the current head entry as having just reached the head
// position at cycle now, counting Scenario-3 promotions.
func (q *FTQ) promote(now cache.Cycle) {
	if q.size == 0 {
		return
	}
	h := q.at(0)
	if h.ready > now && !h.partial {
		h.partial = true
		h.headAt = now
		q.stats.PartialEntries++
	}
}

// Tick accounts one cycle of FTQ state; the front-end calls it exactly once
// per cycle. Observation bookkeeping (lastState/lastNow) is skipped entirely
// when no sink is attached so the obs-disabled hot path performs exactly the
// seed's stores.
func (q *FTQ) Tick(now cache.Cycle) {
	q.stats.Cycles++
	state := obs.ScenarioEmpty
	if q.size == 0 {
		q.stats.EmptyCycles++
	} else if q.at(0).ready > now {
		q.stats.HeadStallCycles++
		waiting := 0
		for i := 1; i < q.size; i++ {
			if q.at(i).ready <= now {
				waiting++
			}
		}
		q.stats.WaitingEntryCycles += int64(waiting)
		if waiting > 0 {
			q.stats.Scenario2Cycles++
			state = obs.Scenario2
		} else {
			q.stats.Scenario3Cycles++
			state = obs.Scenario3
		}
	} else {
		q.stats.ShootThroughCycles++
		state = obs.ScenarioShootThrough
	}
	if q.sink != nil {
		q.lastState = state
		if now > q.lastNow {
			q.lastNow = now
		}
	}
}

// PopReady dequeues up to maxInstrs instructions from completed head
// entries, appending them to out and returning the extended slice.
// Instructions leave strictly in program order; an incomplete head blocks
// everything behind it regardless of readiness (Scenario 2).
func (q *FTQ) PopReady(now cache.Cycle, maxInstrs int, out []isa.Instr) []isa.Instr {
	for maxInstrs > 0 && q.size > 0 {
		h := q.at(0)
		if h.ready > now {
			break
		}
		take := h.n - h.consumed
		if take > maxInstrs {
			take = maxInstrs
		}
		out = append(out, h.instrs[h.consumed:h.consumed+take]...)
		h.consumed += take
		maxInstrs -= take
		q.stats.Instructions += int64(take)
		if h.consumed == h.n {
			q.retire(h)
			if q.head++; q.head == len(q.entries) {
				q.head = 0
			}
			q.size--
			q.promote(now)
		}
	}
	return out
}

// retire releases an entry's line references and records its fetch-latency
// classification.
func (q *FTQ) retire(e *Entry) {
	for i := 0; i < e.nlines; i++ {
		si := q.lineRefs.find(e.lines[i])
		ref := &q.lineRefs.slots[si]
		if ref.count--; ref.count <= 0 {
			q.lineRefs.del(si)
		}
	}
	lat := e.ready - e.issue
	if lat < 0 {
		lat = 0
	}
	if e.partial {
		q.stats.HeadFetchCycles += int64(lat)
		q.stats.HeadFetchEntries++
		stall := e.ready - e.headAt
		if stall < 0 {
			stall = 0
		}
		q.stats.HeadStallHist[histBucket(stall)]++
	} else {
		q.stats.NonHeadFetchCycles += int64(lat)
		q.stats.NonHeadFetchEntries++
	}
}

// Flush discards all entries (used on pipeline resets between experiment
// phases; the trace-driven front-end never fills wrong-path blocks, so
// mispredict recovery does not flush).
func (q *FTQ) Flush() {
	if q.sink != nil && q.size > 0 {
		q.sink.Event(obs.Event{Cycle: int64(q.lastNow), Kind: obs.EvFlush, Arg: int64(q.size)})
	}
	q.head = 0
	q.size = 0
	q.lineRefs.clear()
	// Discarded entries can never be resident again, so the waiting
	// baseline must not survive them.
	q.prefixMax = 0
}
