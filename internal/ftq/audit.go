package ftq

import (
	"fmt"

	"frontsim/internal/cache"
)

// CheckInvariants audits the queue's structural and accounting invariants
// as of cycle now (called after Tick for that cycle). It returns the first
// violation found, or nil. The checks cover:
//
//   - occupancy: 0 <= Len() <= Cap();
//   - cycle conservation: every ticked cycle classified as exactly one of
//     Scenario 1 (shoot-through) / 2 / 3 / empty, and the head-stall total
//     equal to Scenario 2 + Scenario 3 — a double- or un-counted cycle
//     breaks one of the two identities;
//   - in-order delivery: no follower has sent instructions to decode, and
//     only the head may be a Scenario-3 partial; the head itself may only
//     have consumed instructions once its fetch completed;
//   - FIFO issue order: entries were pushed at non-decreasing cycles, and
//     no entry issued in the future;
//   - line accounting: every resident entry's cache lines hold a live
//     reference in the merge table.
//
// Audit mode (core.Config.Audit or the audit build tag) calls this every
// cycle; it allocates nothing on the success path.
func (q *FTQ) CheckInvariants(now cache.Cycle) error {
	if q.size < 0 || q.size > len(q.entries) {
		return fmt.Errorf("ftq: occupancy %d outside [0, %d]", q.size, len(q.entries))
	}
	s := &q.stats
	if got := s.ShootThroughCycles + s.Scenario2Cycles + s.Scenario3Cycles + s.EmptyCycles; got != s.Cycles {
		return fmt.Errorf("ftq: cycle partition broken: shoot-through %d + scenario2 %d + scenario3 %d + empty %d = %d, want %d ticked cycles",
			s.ShootThroughCycles, s.Scenario2Cycles, s.Scenario3Cycles, s.EmptyCycles, got, s.Cycles)
	}
	if got := s.Scenario2Cycles + s.Scenario3Cycles; got != s.HeadStallCycles {
		return fmt.Errorf("ftq: head-stall split broken: scenario2 %d + scenario3 %d = %d, want %d head-stall cycles",
			s.Scenario2Cycles, s.Scenario3Cycles, got, s.HeadStallCycles)
	}
	if s.Pushed < 0 || s.Instructions < 0 || s.WaitingEntries < 0 || s.WaitingEntryCycles < 0 {
		return fmt.Errorf("ftq: negative counter in %+v", *s)
	}
	for i := 0; i < q.size; i++ {
		e := q.at(i)
		if e.n <= 0 || e.n > MaxBlockInstrs {
			return fmt.Errorf("ftq: entry %d (pc %#x) holds %d instructions, want 1..%d", i, uint64(e.pc), e.n, MaxBlockInstrs)
		}
		if e.consumed < 0 || e.consumed > e.n {
			return fmt.Errorf("ftq: entry %d (pc %#x) consumed %d of %d instructions", i, uint64(e.pc), e.consumed, e.n)
		}
		if e.issue > now {
			return fmt.Errorf("ftq: entry %d (pc %#x) issued at future cycle %d (now %d)", i, uint64(e.pc), e.issue, now)
		}
		if i > 0 {
			if e.consumed != 0 {
				return fmt.Errorf("ftq: follower %d (pc %#x) sent %d instructions to decode before its head finished", i, uint64(e.pc), e.consumed)
			}
			if e.partial {
				return fmt.Errorf("ftq: follower %d (pc %#x) marked as a promoted (Scenario 3) head", i, uint64(e.pc))
			}
			if prev := q.at(i - 1); e.issue < prev.issue {
				return fmt.Errorf("ftq: entry %d (pc %#x, issue %d) pushed before its predecessor (issue %d)", i, uint64(e.pc), e.issue, prev.issue)
			}
		} else if e.consumed > 0 && e.ready > now {
			return fmt.Errorf("ftq: head (pc %#x) sent %d instructions to decode but its fetch completes at %d (now %d)", uint64(e.pc), e.consumed, e.ready, now)
		}
		for j := 0; j < e.nlines; j++ {
			si := q.lineRefs.find(e.lines[j])
			if si < 0 || q.lineRefs.slots[si].count <= 0 {
				return fmt.Errorf("ftq: entry %d (pc %#x) line %#x has no live merge-table reference", i, uint64(e.pc), uint64(e.lines[j]))
			}
		}
	}
	return nil
}
