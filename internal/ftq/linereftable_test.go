package ftq

import (
	"testing"

	"frontsim/internal/cache"
	"frontsim/internal/isa"
	"frontsim/internal/xrand"
)

// TestLineRefTableAgainstMap drives the open-addressing merge table and a
// plain Go map through the same random insert/bump/drop sequence and
// requires identical contents throughout. Small table (capacity 2 → 16
// slots) plus line addresses drawn from a narrow range force frequent
// probe collisions, exercising the backward-shift deletion path.
func TestLineRefTableAgainstMap(t *testing.T) {
	type ref struct {
		ready cache.Cycle
		count int32
	}
	rng := xrand.New(0x11fe)
	tbl := newLineRefTable(2)
	model := map[isa.Addr]ref{}
	live := []isa.Addr{}
	for op := 0; op < 20000; op++ {
		if len(live) < 4 && rng.Uint64n(2) == 0 {
			// Insert a new line (or bump it if it collides with a live one).
			line := isa.Addr(rng.Uint64n(64) * isa.LineSize)
			if _, ok := model[line]; ok {
				si := tbl.find(line)
				if si < 0 {
					t.Fatalf("op %d: line %#x in model but not in table", op, uint64(line))
				}
				tbl.slots[si].count++
				r := model[line]
				r.count++
				model[line] = r
			} else {
				ready := cache.Cycle(rng.Uint64n(1000))
				tbl.insert(line, ready)
				model[line] = ref{ready: ready, count: 1}
				live = append(live, line)
			}
		} else if len(live) > 0 {
			// Drop one reference from a random live line.
			i := int(rng.Uint64n(uint64(len(live))))
			line := live[i]
			si := tbl.find(line)
			if si < 0 {
				t.Fatalf("op %d: live line %#x missing from table", op, uint64(line))
			}
			if tbl.slots[si].count--; tbl.slots[si].count <= 0 {
				tbl.del(si)
				delete(model, line)
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			} else {
				r := model[line]
				r.count--
				model[line] = r
			}
		}
		// Full cross-check: every model entry findable with matching state,
		// every table slot backed by the model.
		for line, want := range model {
			si := tbl.find(line)
			if si < 0 {
				t.Fatalf("op %d: line %#x lost", op, uint64(line))
			}
			got := tbl.slots[si]
			if got.ready != want.ready || got.count != want.count {
				t.Fatalf("op %d: line %#x = {ready %d, count %d}, want {ready %d, count %d}",
					op, uint64(line), got.ready, got.count, want.ready, want.count)
			}
		}
		n := 0
		for _, s := range tbl.slots {
			if s.key != 0 {
				n++
			}
		}
		if n != len(model) {
			t.Fatalf("op %d: table holds %d keys, model %d", op, n, len(model))
		}
	}
}
