package ftq

import (
	"strings"
	"testing"

	"frontsim/internal/cache"
	"frontsim/internal/isa"
	"frontsim/internal/xrand"
)

// TestAuditCleanRandomRuns drives randomized push/pop/flush traffic and
// asserts CheckInvariants holds after every single cycle: the scenario
// partition is a per-cycle identity, not just an end-of-run one.
func TestAuditCleanRandomRuns(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42, 1234} {
		r := xrand.New(seed)
		q := New(1 + r.Intn(8))
		fetch := func(line isa.Addr, now cache.Cycle) cache.Cycle {
			return now + cache.Cycle(r.Intn(300))
		}
		pc := isa.Addr(0x1000)
		for now := cache.Cycle(1); now <= 2000; now++ {
			if !q.Full() && r.Bool(0.6) {
				n := 1 + r.Intn(MaxBlockInstrs)
				q.Push(block(pc, n), now, fetch)
				pc += isa.Addr(n * isa.InstrSize)
			}
			if r.Bool(0.5) {
				q.PopReady(now, 1+r.Intn(8), nil)
			}
			if r.Bool(0.01) {
				q.Flush()
			}
			q.Tick(now)
			if err := q.CheckInvariants(now); err != nil {
				t.Fatalf("seed %d cycle %d: %v", seed, now, err)
			}
		}
	}
}

// TestAuditCatchesDoubleCount corrupts the accounting the way a buggy Tick
// would — classifying one cycle as both shoot-through and head-stall — and
// requires the auditor to reject it. This is the deliberately-broken
// fixture proving the conservation check has teeth.
func TestAuditCatchesDoubleCount(t *testing.T) {
	q := New(4)
	q.Push(block(0x1000, 4), 0, fetchAt(5, nil))
	for now := cache.Cycle(0); now < 20; now++ {
		q.Tick(now)
	}
	if err := q.CheckInvariants(20); err != nil {
		t.Fatalf("invariants must hold before corruption: %v", err)
	}
	q.stats.ShootThroughCycles++ // the double-count
	err := q.CheckInvariants(20)
	if err == nil {
		t.Fatal("auditor accepted a double-counted cycle")
	}
	if !strings.Contains(err.Error(), "cycle partition broken") {
		t.Fatalf("wrong violation: %v", err)
	}
}

// TestAuditCatchesStallSplitDrift corrupts the Scenario 2/3 split without
// touching the top-level partition; the secondary identity must catch it.
func TestAuditCatchesStallSplitDrift(t *testing.T) {
	q := New(4)
	q.Push(block(0x1000, 4), 0, fetchAt(50, nil))
	for now := cache.Cycle(0); now < 20; now++ {
		q.Tick(now)
	}
	q.stats.Scenario2Cycles++
	q.stats.Scenario3Cycles--
	if err := q.CheckInvariants(20); err != nil {
		t.Fatalf("compensating drift within the split is invisible to identities: %v", err)
	}
	q.stats.Scenario3Cycles-- // now HeadStall != S2+S3 but partition still off too
	q.stats.EmptyCycles++     // repair the partition so only the split check fires
	err := q.CheckInvariants(20)
	if err == nil {
		t.Fatal("auditor accepted a broken head-stall split")
	}
	if !strings.Contains(err.Error(), "head-stall split broken") {
		t.Fatalf("wrong violation: %v", err)
	}
}

// TestAuditCatchesFollowerDelivery forges a follower that delivered
// instructions to decode ahead of its stalling head — the in-order
// contract violation the audit layer exists to catch.
func TestAuditCatchesFollowerDelivery(t *testing.T) {
	q := New(4)
	lat := map[isa.Addr]cache.Cycle{0x1000: 100, 0x2000: 5}
	fetch := func(line isa.Addr, now cache.Cycle) cache.Cycle { return now + lat[line.Line()] }
	q.Push(block(0x1000, 2), 0, fetch)
	q.Push(block(0x2000, 2), 0, fetch)
	q.at(1).consumed = 1 // follower "delivered" past the stalled head
	err := q.CheckInvariants(10)
	if err == nil {
		t.Fatal("auditor accepted out-of-order delivery")
	}
	if !strings.Contains(err.Error(), "before its head finished") {
		t.Fatalf("wrong violation: %v", err)
	}
}

// TestAuditCatchesLineRefLeak drops a resident entry's merge-table
// reference, as a refcount bug in retire/Flush would.
func TestAuditCatchesLineRefLeak(t *testing.T) {
	q := New(4)
	q.Push(block(0x1000, 4), 0, fetchAt(5, nil))
	q.lineRefs.clear()
	err := q.CheckInvariants(1)
	if err == nil {
		t.Fatal("auditor accepted a dangling line reference")
	}
	if !strings.Contains(err.Error(), "no live merge-table reference") {
		t.Fatalf("wrong violation: %v", err)
	}
}

// TestAuditCatchesOccupancyCorruption drives size outside [0, cap].
func TestAuditCatchesOccupancyCorruption(t *testing.T) {
	q := New(2)
	q.size = 3
	if err := q.CheckInvariants(0); err == nil {
		t.Fatal("auditor accepted occupancy above capacity")
	}
	q.size = -1
	if err := q.CheckInvariants(0); err == nil {
		t.Fatal("auditor accepted negative occupancy")
	}
}
