package ftq

import (
	"bytes"
	"testing"
	"testing/quick"

	"frontsim/internal/cache"
	"frontsim/internal/isa"
	"frontsim/internal/obs"
	"frontsim/internal/xrand"
)

// block builds a contiguous basic block of n ALU instructions at pc.
func block(pc isa.Addr, n int) []isa.Instr {
	out := make([]isa.Instr, n)
	for i := range out {
		out[i] = isa.Instr{PC: pc + isa.Addr(i*isa.InstrSize), Class: isa.ClassALU}
	}
	return out
}

// fetchAt returns a FetchFunc with a fixed latency, recording issued lines.
func fetchAt(latency cache.Cycle, issued *[]isa.Addr) FetchFunc {
	return func(line isa.Addr, now cache.Cycle) cache.Cycle {
		if issued != nil {
			*issued = append(*issued, line)
		}
		return now + latency
	}
}

func TestPushPopInOrder(t *testing.T) {
	q := New(4)
	fetch := fetchAt(1, nil)
	q.Push(block(0x1000, 3), 0, fetch)
	q.Push(block(0x2000, 2), 0, fetch)
	out := q.PopReady(10, 16, nil)
	if len(out) != 5 {
		t.Fatalf("popped %d instrs", len(out))
	}
	want := []isa.Addr{0x1000, 0x1004, 0x1008, 0x2000, 0x2004}
	for i, a := range want {
		if out[i].PC != a {
			t.Fatalf("out[%d].PC = %v, want %v", i, out[i].PC, a)
		}
	}
	if !q.Empty() {
		t.Fatal("queue should be empty")
	}
}

func TestPopOrderProperty(t *testing.T) {
	// Instructions always leave in exactly the order they were pushed,
	// regardless of fetch latencies.
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		q := New(8)
		fetch := func(line isa.Addr, now cache.Cycle) cache.Cycle {
			return now + cache.Cycle(r.Intn(200))
		}
		var pushed, popped []isa.Addr
		now := cache.Cycle(0)
		pc := isa.Addr(0x1000)
		for i := 0; i < 300; i++ {
			now++
			if !q.Full() && r.Bool(0.7) {
				n := 1 + r.Intn(MaxBlockInstrs)
				blk := block(pc, n)
				pc += isa.Addr(n * isa.InstrSize)
				for _, in := range blk {
					pushed = append(pushed, in.PC)
				}
				q.Push(blk, now, fetch)
			}
			for _, in := range q.PopReady(now, 1+r.Intn(8), nil) {
				popped = append(popped, in.PC)
			}
		}
		// Drain.
		for i := 0; i < 1000 && !q.Empty(); i++ {
			now += 10
			for _, in := range q.PopReady(now, 8, nil) {
				popped = append(popped, in.PC)
			}
		}
		if len(popped) != len(pushed) {
			return false
		}
		for i := range pushed {
			if pushed[i] != popped[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestFullRejectsPush(t *testing.T) {
	q := New(2)
	fetch := fetchAt(1, nil)
	if _, ok := q.Push(block(0x1000, 1), 0, fetch); !ok {
		t.Fatal("push into non-full queue failed")
	}
	if r, ok := q.Push(block(0x2000, 1), 0, fetch); !ok || r != 1 {
		t.Fatalf("push ready=%d ok=%v", r, ok)
	}
	if _, ok := q.Push(block(0x3000, 1), 0, fetch); ok {
		t.Fatal("push into full queue succeeded")
	}
	if !q.Full() || q.Len() != 2 || q.Cap() != 2 {
		t.Fatalf("Len=%d Cap=%d", q.Len(), q.Cap())
	}
}

func TestPushPanicsOnBadBlock(t *testing.T) {
	q := New(2)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on oversized block")
		}
	}()
	q.Push(block(0, MaxBlockInstrs+1), 0, fetchAt(1, nil))
}

func TestNewPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(0)
}

func TestLineMerging(t *testing.T) {
	q := New(8)
	var issued []isa.Addr
	fetch := fetchAt(100, &issued)
	// Three blocks inside one 64-byte line (16 instructions).
	q.Push(block(0x1000, 5), 0, fetch)
	q.Push(block(0x1014, 5), 0, fetch)
	q.Push(block(0x1028, 5), 0, fetch)
	if len(issued) != 1 {
		t.Fatalf("issued %d line fetches, want 1 (merge)", len(issued))
	}
	st := q.Stats()
	if st.LinesRequested != 1 || st.LinesMerged != 2 {
		t.Fatalf("stats %+v", st)
	}
	// All three share the line's ready time.
	for i := 0; i < 3; i++ {
		if got := q.at(i).ready; got != 100 {
			t.Fatalf("entry %d ready %d", i, got)
		}
	}
}

func TestLineRefsReleasedAfterPop(t *testing.T) {
	q := New(4)
	var issued []isa.Addr
	fetch := fetchAt(10, &issued)
	q.Push(block(0x1000, 4), 0, fetch)
	q.PopReady(50, 8, nil)
	// Same line pushed again after the resident entry left: re-requests.
	q.Push(block(0x1010, 4), 60, fetch)
	if len(issued) != 2 {
		t.Fatalf("issued %d, want 2 (refcount released)", len(issued))
	}
}

func TestBlockSpanningTwoLines(t *testing.T) {
	q := New(4)
	var issued []isa.Addr
	fetch := fetchAt(10, &issued)
	// 8 instructions starting 8 bytes before a line boundary.
	q.Push(block(0x1038, 8), 0, fetch)
	if len(issued) != 2 {
		t.Fatalf("issued %d lines, want 2", len(issued))
	}
	if issued[0] != 0x1000 || issued[1] != 0x1040 {
		t.Fatalf("lines %v", issued)
	}
}

func TestHeadStallBlocksReadyFollowers(t *testing.T) {
	q := New(4)
	lat := map[isa.Addr]cache.Cycle{0x1000: 100, 0x2000: 5}
	fetch := func(line isa.Addr, now cache.Cycle) cache.Cycle { return now + lat[line.Line()] }
	q.Push(block(0x1000, 2), 0, fetch) // slow head
	q.Push(block(0x2000, 2), 0, fetch) // fast follower
	// At cycle 50 the follower is ready but the head is not: Scenario 2.
	if out := q.PopReady(50, 8, nil); len(out) != 0 {
		t.Fatalf("popped %d instrs past a stalling head", len(out))
	}
	for now := cache.Cycle(0); now < 120; now++ {
		q.Tick(now)
	}
	st := q.Stats()
	if st.HeadStallCycles != 100 {
		t.Fatalf("HeadStallCycles = %d, want 100", st.HeadStallCycles)
	}
	if st.WaitingEntries != 1 {
		t.Fatalf("WaitingEntries = %d, want 1", st.WaitingEntries)
	}
	// The follower is ready from cycle 5 and blocked through cycle 99.
	if st.WaitingEntryCycles != 95 {
		t.Fatalf("WaitingEntryCycles = %d, want 95", st.WaitingEntryCycles)
	}
	// After the head completes, everything drains.
	if out := q.PopReady(120, 8, nil); len(out) != 4 {
		t.Fatalf("drained %d", len(out))
	}
}

func TestPartialEntryScenario3(t *testing.T) {
	q := New(4)
	lat := map[isa.Addr]cache.Cycle{0x1000: 20, 0x2000: 100}
	fetch := func(line isa.Addr, now cache.Cycle) cache.Cycle { return now + lat[line.Line()] }
	q.Push(block(0x1000, 2), 0, fetch) // head: short stall (partial, pushed into empty queue)
	q.Push(block(0x2000, 2), 0, fetch) // follower outlives head's latency
	q.PopReady(30, 8, nil)             // head drains at 30; follower promoted incomplete
	st := q.Stats()
	// Both the initial head (empty-queue promotion while incomplete) and
	// the follower (promoted at 30, ready at 100) are Scenario-3 partials.
	if st.PartialEntries != 2 {
		t.Fatalf("PartialEntries = %d, want 2", st.PartialEntries)
	}
	// Follower not double-counted when drained.
	q.PopReady(150, 8, nil)
	if got := q.Stats().PartialEntries; got != 2 {
		t.Fatalf("PartialEntries after drain = %d", got)
	}
}

func TestCoveredFollowerNotPartial(t *testing.T) {
	q := New(4)
	lat := map[isa.Addr]cache.Cycle{0x1000: 100, 0x2000: 50}
	fetch := func(line isa.Addr, now cache.Cycle) cache.Cycle { return now + lat[line.Line()] }
	q.Push(block(0x1000, 2), 0, fetch)
	q.Push(block(0x2000, 2), 0, fetch)
	q.PopReady(100, 2, nil) // drain head exactly at its ready time
	q.PopReady(100, 2, nil) // follower already complete: not partial
	st := q.Stats()
	if st.PartialEntries != 1 { // only the initial empty-queue head
		t.Fatalf("PartialEntries = %d, want 1", st.PartialEntries)
	}
	if st.WaitingEntries != 1 { // the covered follower waited on the head
		t.Fatalf("WaitingEntries = %d, want 1", st.WaitingEntries)
	}
}

func TestFetchLatencyBuckets(t *testing.T) {
	q := New(4)
	lat := map[isa.Addr]cache.Cycle{0x1000: 100, 0x2000: 10}
	fetch := func(line isa.Addr, now cache.Cycle) cache.Cycle { return now + lat[line.Line()] }
	q.Push(block(0x1000, 1), 0, fetch) // stalls at head -> head bucket
	q.Push(block(0x2000, 1), 0, fetch) // covered -> non-head bucket
	q.PopReady(100, 8, nil)
	st := q.Stats()
	if st.HeadFetchEntries != 1 || st.HeadFetchCycles != 100 {
		t.Fatalf("head bucket %d/%d", st.HeadFetchCycles, st.HeadFetchEntries)
	}
	if st.NonHeadFetchEntries != 1 || st.NonHeadFetchCycles != 10 {
		t.Fatalf("non-head bucket %d/%d", st.NonHeadFetchCycles, st.NonHeadFetchEntries)
	}
	if st.AvgHeadFetch() != 100 || st.AvgNonHeadFetch() != 10 {
		t.Fatalf("avgs %v %v", st.AvgHeadFetch(), st.AvgNonHeadFetch())
	}
}

func TestDecodeWidthLimitsPop(t *testing.T) {
	q := New(4)
	fetch := fetchAt(1, nil)
	q.Push(block(0x1000, 8), 0, fetch)
	out := q.PopReady(10, 6, nil)
	if len(out) != 6 {
		t.Fatalf("popped %d, want 6", len(out))
	}
	out = q.PopReady(11, 6, nil)
	if len(out) != 2 {
		t.Fatalf("popped %d, want remaining 2", len(out))
	}
}

func TestEmptyCyclesCounted(t *testing.T) {
	q := New(2)
	q.Tick(0)
	q.Tick(1)
	if q.Stats().EmptyCycles != 2 {
		t.Fatalf("EmptyCycles = %d", q.Stats().EmptyCycles)
	}
}

func TestShootThroughCycles(t *testing.T) {
	q := New(2)
	q.Push(block(0x1000, 2), 0, fetchAt(5, nil))
	for now := cache.Cycle(0); now < 10; now++ {
		q.Tick(now)
	}
	st := q.Stats()
	if st.HeadStallCycles != 5 || st.ShootThroughCycles != 5 {
		t.Fatalf("stall=%d shoot=%d", st.HeadStallCycles, st.ShootThroughCycles)
	}
}

func TestFlush(t *testing.T) {
	q := New(4)
	q.Push(block(0x1000, 4), 0, fetchAt(10, nil))
	q.Push(block(0x2000, 4), 0, fetchAt(10, nil))
	q.Flush()
	if !q.Empty() {
		t.Fatal("not empty after Flush")
	}
	var issued []isa.Addr
	q.Push(block(0x1000, 4), 100, fetchAt(10, &issued))
	if len(issued) != 1 {
		t.Fatal("line refs leaked across Flush")
	}
}

// TestFlushResetsWaitingBaseline is the regression test for a stale
// prefix-max bug: Flush discarded all entries but kept prefixMax, so an
// entry pushed after a flush was classified "waiting" against the ready
// time of an entry that was no longer resident (and never would be again).
// Before the fix, the second post-flush push below counted WaitingEntries
// even though the only older resident entry completes first.
func TestFlushResetsWaitingBaseline(t *testing.T) {
	q := New(4)
	q.Push(block(0x1000, 2), 0, fetchAt(1000, nil)) // prefixMax = 1000
	q.Flush()
	q.Push(block(0x2000, 2), 0, fetchAt(1, nil)) // ready 1
	q.Push(block(0x3000, 2), 0, fetchAt(5, nil)) // ready 5: never waits
	if st := q.Stats(); st.WaitingEntries != 0 {
		t.Fatalf("WaitingEntries = %d after flush, want 0 (stale pre-flush baseline)", st.WaitingEntries)
	}
	// The classification itself must still work post-flush.
	q.Push(block(0x4000, 2), 0, fetchAt(2, nil)) // ready 2 < 5: waits on 0x3000
	if st := q.Stats(); st.WaitingEntries != 1 {
		t.Fatalf("WaitingEntries = %d, want 1", st.WaitingEntries)
	}
}

func TestResetStats(t *testing.T) {
	q := New(2)
	q.Push(block(0x1000, 2), 0, fetchAt(5, nil))
	q.Tick(0)
	q.ResetStats()
	if q.Stats() != (Stats{}) {
		t.Fatal("stats not zeroed")
	}
	if q.Empty() {
		t.Fatal("ResetStats must not flush entries")
	}
}

func TestRingWraparound(t *testing.T) {
	q := New(3)
	fetch := fetchAt(1, nil)
	pc := isa.Addr(0x1000)
	now := cache.Cycle(0)
	for i := 0; i < 50; i++ {
		for !q.Full() {
			q.Push(block(pc, 2), now, fetch)
			pc += 8
		}
		now += 10
		q.PopReady(now, 4, nil)
	}
	// Drain and verify order continuity held throughout (covered in depth
	// by the property test; this exercises many wraps).
	for !q.Empty() {
		now += 10
		q.PopReady(now, 8, nil)
	}
	st := q.Stats()
	if st.Pushed == 0 || st.Instructions != st.Pushed*2 {
		t.Fatalf("pushed=%d instrs=%d", st.Pushed, st.Instructions)
	}
}

func TestHeadStallHistogram(t *testing.T) {
	q := New(4)
	lat := map[isa.Addr]cache.Cycle{0x1000: 5, 0x2000: 30, 0x3000: 300}
	fetch := func(line isa.Addr, now cache.Cycle) cache.Cycle { return now + lat[line.Line()] }
	// Each block lands at the head while still fetching: three partials
	// with stalls of 5 (bucket 0: <8), ~30 (bucket 2: <64) and ~300
	// (bucket 4: >=256) cycles.
	q.Push(block(0x1000, 2), 0, fetch)
	q.PopReady(400, 8, nil)
	q.Push(block(0x2000, 2), 400, fetch)
	q.PopReady(800, 8, nil)
	q.Push(block(0x3000, 2), 800, fetch)
	q.PopReady(1200, 8, nil)
	st := q.Stats()
	if st.PartialEntries != 3 {
		t.Fatalf("partials = %d", st.PartialEntries)
	}
	if st.HeadStallHist[0] != 1 || st.HeadStallHist[2] != 1 || st.HeadStallHist[4] != 1 {
		t.Fatalf("histogram %v", st.HeadStallHist)
	}
	var total int64
	for _, c := range st.HeadStallHist {
		total += c
	}
	if total != st.PartialEntries {
		t.Fatalf("histogram total %d != partials %d", total, st.PartialEntries)
	}
}

func TestHistBucketBoundaries(t *testing.T) {
	cases := map[cache.Cycle]int{0: 0, 7: 0, 8: 1, 23: 1, 24: 2, 63: 2, 64: 3, 255: 3, 256: 4, 10000: 4}
	for d, want := range cases {
		if got := histBucket(d); got != want {
			t.Errorf("histBucket(%d) = %d, want %d", d, got, want)
		}
	}
}

// TestFlushMidHeadStallScenarioPartition injects a mispredict-style flush
// in the middle of a head stall — with the event trace enabled — and
// asserts, cycle by cycle, that the scenario partition identity
// (shoot-through + Scenario 2 + Scenario 3 + empty == cycles) survives the
// discontinuity, that each cycle's classification matches LastState, and
// that the flush shows up in the event stream with the discarded entry
// count.
func TestFlushMidHeadStallScenarioPartition(t *testing.T) {
	cases := []struct {
		name       string
		capacity   int
		headLat    cache.Cycle // head block fetch latency
		followLat  cache.Cycle // follower block fetch latency
		followers  int
		flushAt    cache.Cycle
		wantDuring obs.Scenario // classification expected just before the flush
	}{
		{"scenario2-stall", 8, 40, 2, 3, 20, obs.Scenario2},
		{"scenario3-stall", 8, 40, 40, 3, 20, obs.Scenario3},
		{"flush-at-stall-onset", 4, 40, 2, 2, 2, obs.Scenario2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var events bytes.Buffer
			o := obs.NewObserver(obs.Options{Stride: 1, Events: &events})
			q := New(tc.capacity)
			q.SetObserver(o)

			// One slow head, then followers whose latency the case picks.
			q.Push(block(0x1000, 4), 1, fetchAt(tc.headLat, nil))
			pc := isa.Addr(0x2000)
			for i := 0; i < tc.followers; i++ {
				q.Push(block(pc, 4), 1, fetchAt(tc.followLat, nil))
				pc += 0x1000
			}
			sizeAtFlush := q.Len()

			checkCycle := func(now cache.Cycle) {
				before := q.Stats()
				last := q.LastState()
				q.Tick(now)
				st := q.Stats()
				if sum := st.ShootThroughCycles + st.Scenario2Cycles + st.Scenario3Cycles + st.EmptyCycles; sum != st.Cycles {
					t.Fatalf("cycle %d: partition %d != cycles %d", now, sum, st.Cycles)
				}
				if err := q.CheckInvariants(now); err != nil {
					t.Fatalf("cycle %d: %v", now, err)
				}
				// Exactly one bucket advanced, and it agrees with LastState.
				var want obs.Scenario
				switch {
				case st.ShootThroughCycles == before.ShootThroughCycles+1:
					want = obs.ScenarioShootThrough
				case st.Scenario2Cycles == before.Scenario2Cycles+1:
					want = obs.Scenario2
				case st.Scenario3Cycles == before.Scenario3Cycles+1:
					want = obs.Scenario3
				case st.EmptyCycles == before.EmptyCycles+1:
					want = obs.ScenarioEmpty
				default:
					t.Fatalf("cycle %d: no scenario bucket advanced", now)
				}
				if got := q.LastState(); got != want {
					t.Fatalf("cycle %d: LastState %v, counters say %v (was %v)", now, got, want, last)
				}
			}

			for now := cache.Cycle(2); now < tc.flushAt; now++ {
				checkCycle(now)
			}
			// The head must still be stalling when the mispredict hits.
			if h := q.Head(); h == nil || h.Ready() <= tc.flushAt {
				t.Fatalf("head not stalling at flush cycle %d", tc.flushAt)
			}
			if tc.flushAt > 2 {
				if got := q.LastState(); got != tc.wantDuring {
					t.Fatalf("pre-flush state %v, want %v", got, tc.wantDuring)
				}
			}
			q.Flush()
			if !q.Empty() {
				t.Fatal("queue not empty after flush")
			}

			// Post-flush: an empty cycle, then redirected-path refill runs
			// to completion with the identity still holding every cycle.
			checkCycle(tc.flushAt)
			if got := q.LastState(); got != obs.ScenarioEmpty {
				t.Fatalf("post-flush state %v, want empty", got)
			}
			q.Push(block(0xF000, 4), tc.flushAt+1, fetchAt(2, nil))
			for now := tc.flushAt + 1; now < tc.flushAt+10; now++ {
				checkCycle(now)
				q.PopReady(now, 8, nil)
			}

			// The flush is visible in the event stream with the discarded
			// entry count; the merge hits from the contiguous follower
			// blocks are there too.
			if err := o.Flush(); err != nil {
				t.Fatal(err)
			}
			evs, err := obs.ReadEvents(&events)
			if err != nil {
				t.Fatal(err)
			}
			var flushEv *obs.Event
			for i := range evs {
				if evs[i].Kind == obs.EvFlush {
					if flushEv != nil {
						t.Fatal("multiple flush events")
					}
					flushEv = &evs[i]
				}
			}
			if flushEv == nil {
				t.Fatal("flush missing from event stream")
			}
			if flushEv.Arg != int64(sizeAtFlush) {
				t.Fatalf("flush event discarded %d entries, want %d", flushEv.Arg, sizeAtFlush)
			}
			if o.EventCount(obs.EvFlush) != 1 {
				t.Fatalf("flush event count %d", o.EventCount(obs.EvFlush))
			}
		})
	}
}
