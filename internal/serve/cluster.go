package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"frontsim/internal/core"
	"frontsim/internal/experiment"
	"frontsim/internal/obs"
)

// Cluster mode turns N independent simd nodes into one content-addressed
// store: the cell address space is consistent-hash sharded across a peer
// set, every fingerprint has a home node, and a non-home node that
// misses its local cache probes the home peer before admitting a local
// execution — cross-node singleflight layered on the per-node flight
// coalescing, so an overlapping storm against every node of the cluster
// still costs one execution per distinct fingerprint globally. The
// peer's bytes are written back into the local cache verbatim, so the
// cluster converges: caches fill with byte-identical entries wherever a
// fingerprint has been requested.
//
// Failure is always degradation, never unavailability: a home peer that
// is down, draining, or shedding load makes the non-home node fall back
// to executing locally. A forwarded request carries the X-Simd-Peer
// header and is never forwarded again (one hop, so membership skew
// between nodes cannot form forwarding loops).

// PeerHeader marks a forwarded peer-fill request; its value is the
// origin node's name. A request carrying it is served locally no matter
// where the receiving node believes the cell's home is — the one-hop
// guard that makes forwarding loops impossible.
const PeerHeader = "X-Simd-Peer"

// ClusterConfig wires a Server into a peer set.
type ClusterConfig struct {
	// Self is this node's name; it must appear in Peers.
	Self string
	// Peers is the full membership, this node included.
	Peers []Peer
	// Replicas is the virtual-node count per peer on the ring (<=0: 64).
	Replicas int
	// PeerTimeout bounds one /metrics.json scrape during a cluster
	// rollup (<=0: 5s). Peer cell fills are bounded by the requesting
	// flight's context instead — a cold fill legitimately takes as long
	// as the simulation it deduplicates.
	PeerTimeout time.Duration
	// Reload re-reads the membership source (e.g. the peers file).
	// Optional; without it SIGHUP/POST /cluster/reload report an error.
	Reload func() ([]Peer, error)
}

// clusterState is an immutable membership snapshot. Reload swaps the
// whole snapshot atomically, so a remap applies to future requests only
// — requests that already resolved a home keep it.
type clusterState struct {
	self    string
	peers   []Peer
	ring    *Ring
	clients map[string]*Client // by peer name; excludes self
}

// newClusterState validates cfg's membership and builds the snapshot.
func newClusterState(cfg ClusterConfig, peers []Peer) (*clusterState, error) {
	cs := &clusterState{self: cfg.Self, peers: peers, clients: make(map[string]*Client)}
	selfSeen := false
	for _, p := range peers {
		if p.Name == cfg.Self {
			selfSeen = true
			continue
		}
		// Peer clients barely retry (one backoff'd second attempt): the
		// real retry policy for a failed peer fill is falling back to
		// local execution, not hammering a dying home.
		cs.clients[p.Name] = &Client{
			BaseURL:     p.URL,
			MaxAttempts: 2,
			BaseBackoff: 50 * time.Millisecond,
			MaxBackoff:  500 * time.Millisecond,
			Headers:     http.Header{PeerHeader: []string{cfg.Self}},
		}
	}
	if !selfSeen {
		return nil, fmt.Errorf("serve: cluster self %q is not in the peer list", cfg.Self)
	}
	cs.ring = NewRing(peers, cfg.Replicas)
	return cs, nil
}

// SetCluster enables cluster mode (or replaces the membership wholesale).
// Safe to call while serving; only future requests see the new map.
func (s *Server) SetCluster(cfg ClusterConfig) error {
	if cfg.PeerTimeout <= 0 {
		cfg.PeerTimeout = 5 * time.Second
	}
	cs, err := newClusterState(cfg, cfg.Peers)
	if err != nil {
		return err
	}
	s.clusterCfg = cfg
	s.cluster.Store(cs)
	return nil
}

// ReloadCluster re-reads the membership source installed by SetCluster
// and swaps the ring/peer snapshot. In-flight requests keep the homes
// they already resolved; only future requests are remapped.
func (s *Server) ReloadCluster() (int, error) {
	if s.clusterCfg.Reload == nil {
		return 0, fmt.Errorf("serve: cluster reload: no membership source configured")
	}
	peers, err := s.clusterCfg.Reload()
	if err != nil {
		return 0, fmt.Errorf("serve: cluster reload: %w", err)
	}
	cs, err := newClusterState(s.clusterCfg, peers)
	if err != nil {
		return 0, err
	}
	s.cluster.Store(cs)
	s.clusterReloads.Add(1)
	return len(peers), nil
}

// peerFill tries to satisfy a cold cell from its home peer. It returns
// ok=false whenever the cell must be produced locally instead: cluster
// mode off, this node is the home, the request is already a forwarded
// hop, or the home peer failed (down, draining, shedding) — the
// fallback that keeps a degraded cluster serving.
func (s *Server) peerFill(ctx context.Context, pc *preparedCell) (experiment.CellResult, bool) {
	cs := s.cluster.Load()
	if cs == nil || pc.peerHop {
		return experiment.CellResult{}, false
	}
	home := cs.ring.Home(pc.addr)
	if home == "" || home == cs.self {
		return experiment.CellResult{}, false
	}
	cl := cs.clients[home]
	if cl == nil {
		return experiment.CellResult{}, false
	}
	resp, err := cl.Cell(ctx, pc.req)
	if err != nil {
		s.peerFallback.Add(1)
		return experiment.CellResult{}, false
	}
	if resp.Fingerprint != pc.addr {
		// The peer resolved the same request to a different identity —
		// skewed defaults or versions. Its bytes answer a different cell;
		// execute locally.
		s.peerFallback.Add(1)
		return experiment.CellResult{}, false
	}
	st, err := core.StatsFromJSON(resp.Stats)
	if err != nil {
		s.peerFallback.Add(1)
		return experiment.CellResult{}, false
	}
	// Write-back: store the peer's canonical bytes verbatim, so this
	// node's cache entry is byte-identical to the home's and the next
	// local request is a plain cache hit. A failed write-back only costs
	// a future re-fill — the response is already in hand.
	if err := s.storeCell(pc, resp.Stats); err != nil {
		s.peerStoreErrs.Add(1)
	}
	s.peerFilled.Add(1)
	return experiment.CellResult{Stats: st, Fingerprint: pc.addr, Cached: resp.Cached}, true
}

// storeCellBytes is the production write-back seam: peer bytes land in
// the local run cache under exactly the key a local execution would use.
func (s *Server) storeCellBytes(pc *preparedCell, raw json.RawMessage) error {
	if pc.series != "" {
		return experiment.StoreCellBytes(pc.spec, pc.series, pc.params, raw)
	}
	return experiment.StoreConfigCellBytes(pc.spec, pc.config, pc.params, raw)
}

// --- cluster rollup -------------------------------------------------------

// nodeMetrics is one node's scrape result.
type nodeMetrics struct {
	node string
	ms   obs.MetricSet
	err  error
}

// clusterMetrics scrapes every member's /metrics.json (self answered
// in-process), labels each point with node=<name>, and rolls the union
// up through obs.SuiteCollector — the same mean/min/max/p50/p95 shapes
// suite exports use, plus a reachability marker per scrape failure.
func (s *Server) clusterMetrics(ctx context.Context) obs.MetricSet {
	cs := s.cluster.Load()
	if cs == nil {
		// Single node: the rollup degenerates to this node's own set.
		return s.MetricSet()
	}
	timeout := s.clusterCfg.PeerTimeout
	results := make([]nodeMetrics, len(cs.peers))
	var wg sync.WaitGroup
	for i, p := range cs.peers {
		if p.Name == cs.self {
			results[i] = nodeMetrics{node: p.Name, ms: s.MetricSet()}
			continue
		}
		wg.Add(1)
		go func(i int, p Peer) {
			defer wg.Done()
			sctx, cancel := context.WithTimeout(ctx, timeout)
			defer cancel()
			ms, err := cs.clients[p.Name].MetricsJSON(sctx)
			results[i] = nodeMetrics{node: p.Name, ms: ms, err: err}
		}(i, p)
	}
	wg.Wait()

	var col obs.SuiteCollector
	for _, r := range results {
		var tagged obs.MetricSet
		if r.err != nil {
			tagged.Add(obs.Metric{
				Name:   "simd_cluster_scrape_errors",
				Help:   "peers whose /metrics.json scrape failed during this rollup",
				Labels: []obs.Label{{Key: "node", Value: r.node}},
				Value:  1,
			})
			col.Record(tagged)
			continue
		}
		for _, m := range r.ms {
			m.Labels = append(append([]obs.Label(nil), m.Labels...), obs.Label{Key: "node", Value: r.node})
			tagged.Add(m)
		}
		col.Record(tagged)
	}
	return col.Export()
}

// --- cluster HTTP surface -------------------------------------------------

func (s *Server) handleMetricsJSON(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := s.MetricSet().WriteJSON(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleClusterMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if err := s.clusterMetrics(r.Context()).WritePrometheus(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleClusterMetricsJSON(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := s.clusterMetrics(r.Context()).WriteJSON(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleClusterReload(w http.ResponseWriter, _ *http.Request) {
	n, err := s.ReloadCluster()
	if err != nil {
		s.writeJSON(w, http.StatusConflict, errorBody{Error: err.Error()})
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"peers": n, "reloads": s.clusterReloads.Load()})
}
