package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"frontsim/internal/experiment"
	"frontsim/internal/obs"
	"frontsim/internal/runner"
	"frontsim/internal/workload"
)

// clusterNode is one in-process cluster member: a real Server with its
// own run cache behind a real HTTP listener.
type clusterNode struct {
	name  string
	srv   *Server
	ts    *httptest.Server
	cache *runner.Cache
}

// startCluster builds n nodes, each with its own cache and listener, and
// wires them into one membership. opt customizes a node's Options (nil:
// stub-friendly defaults); a nil Cache gets a fresh temp-dir cache.
func startCluster(t *testing.T, n int, opt func(i int) Options) []*clusterNode {
	t.Helper()
	nodes := make([]*clusterNode, n)
	peers := make([]Peer, n)
	for i := range nodes {
		o := Options{MaxConcurrent: 2, MaxQueue: 32}
		if opt != nil {
			o = opt(i)
		}
		if o.Cache == nil {
			c, err := runner.OpenCache(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			o.Cache = c
		}
		s := New(o)
		t.Cleanup(s.Close)
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(ts.Close)
		name := fmt.Sprintf("node-%d", i)
		nodes[i] = &clusterNode{name: name, srv: s, ts: ts, cache: o.Cache}
		peers[i] = Peer{Name: name, URL: ts.URL}
	}
	for _, nd := range nodes {
		if err := nd.srv.SetCluster(ClusterConfig{Self: nd.name, Peers: peers}); err != nil {
			t.Fatal(err)
		}
	}
	return nodes
}

// homeSplit resolves req's content address on nodes[0] and partitions the
// cluster into the cell's home node and the rest.
func homeSplit(t *testing.T, nodes []*clusterNode, req CellRequest) (addr string, home *clusterNode, others []*clusterNode) {
	t.Helper()
	pc, err := nodes[0].srv.prepare(req)
	if err != nil {
		t.Fatal(err)
	}
	homeName := nodes[0].srv.cluster.Load().ring.Home(pc.addr)
	for _, nd := range nodes {
		if nd.name == homeName {
			home = nd
		} else {
			others = append(others, nd)
		}
	}
	if home == nil {
		t.Fatalf("no node named %q", homeName)
	}
	return pc.addr, home, others
}

// postCellPeer is postCell with the X-Simd-Peer header set — a forwarded
// probe as another node would send it.
func postCellPeer(t *testing.T, url string, req CellRequest) (int, []byte) {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, url+"/v1/cell", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(PeerHeader, "test-origin")
	res, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return res.StatusCode, body
}

// TestPeerFillUsesHomeNode pins the tentpole protocol: a cold cell
// requested at a non-home node is produced by its home peer — the
// non-home node executes nothing — and the peer's bytes are written back
// into the local cache, so the repeat request is a plain local hit.
func TestPeerFillUsesHomeNode(t *testing.T) {
	nodes := startCluster(t, 2, nil)
	req := CellRequest{Workload: workload.Names()[0]}
	addr, home, others := homeSplit(t, nodes, req)
	other := others[0]

	want := stubResult("home-produced", 123)
	home.srv.runCell = func(context.Context, *preparedCell) (experiment.CellResult, error) {
		return want, nil
	}
	other.srv.runCell = func(context.Context, *preparedCell) (experiment.CellResult, error) {
		t.Error("non-home node executed a cell whose home peer is healthy")
		return experiment.CellResult{}, errors.New("must not execute")
	}

	status, _, body := postCell(t, other.ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("peer-filled cell got %d: %s", status, body)
	}
	var resp CellResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.PeerFilled {
		t.Fatal("response not marked peer_filled")
	}
	if resp.Fingerprint != addr {
		t.Fatalf("fingerprint %s, want %s", resp.Fingerprint, addr)
	}
	wantBytes, err := want.Stats.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp.Stats, wantBytes) {
		t.Fatalf("peer-filled stats differ:\ngot:  %s\nwant: %s", resp.Stats, wantBytes)
	}
	if got := other.srv.executions.Load(); got != 0 {
		t.Fatalf("non-home executions = %d, want 0", got)
	}
	if got := other.srv.peerFilled.Load(); got != 1 {
		t.Fatalf("non-home peerFilled = %d, want 1", got)
	}
	if got := home.srv.executions.Load(); got != 1 {
		t.Fatalf("home executions = %d, want 1", got)
	}
	if got := home.srv.peerServed.Load(); got != 1 {
		t.Fatalf("home peerServed = %d, want 1", got)
	}

	// Write-back: the repeat request never leaves the non-home node.
	status, _, body = postCell(t, other.ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("repeat cell got %d: %s", status, body)
	}
	var warm CellResponse
	if err := json.Unmarshal(body, &warm); err != nil {
		t.Fatal(err)
	}
	if !warm.Cached {
		t.Fatal("repeat request missed the locally written-back cache entry")
	}
	if !bytes.Equal(warm.Stats, resp.Stats) {
		t.Fatal("written-back bytes differ from the peer's response")
	}
	if got := home.srv.peerServed.Load(); got != 1 {
		t.Fatalf("repeat request reached the home peer: peerServed = %d", got)
	}
}

// TestPeerHopServedLocally pins the loop guard: a request that already
// carries X-Simd-Peer is produced locally no matter where this node
// believes the home is — one hop, never two.
func TestPeerHopServedLocally(t *testing.T) {
	nodes := startCluster(t, 2, nil)
	req := CellRequest{Workload: workload.Names()[0]}
	_, home, others := homeSplit(t, nodes, req)
	other := others[0]

	home.srv.runCell = func(context.Context, *preparedCell) (experiment.CellResult, error) {
		t.Error("forwarded hop was re-forwarded to the home node")
		return experiment.CellResult{}, errors.New("loop")
	}
	other.srv.runCell = func(context.Context, *preparedCell) (experiment.CellResult, error) {
		return stubResult("local", 7), nil
	}

	// The non-home node receives an (apparently misrouted) forwarded
	// probe: membership skew during a reload. It must serve it itself.
	status, body := postCellPeer(t, other.ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("forwarded hop got %d: %s", status, body)
	}
	if got := other.srv.executions.Load(); got != 1 {
		t.Fatalf("hop executions = %d, want 1 (local)", got)
	}
	if got := other.srv.peerServed.Load(); got != 1 {
		t.Fatalf("hop peerServed = %d, want 1", got)
	}
	if got := other.srv.peerFilled.Load() + other.srv.peerFallback.Load(); got != 0 {
		t.Fatalf("hop touched the peer-fill path %d times, want 0", got)
	}
}

// TestPeerFillFallsBackWhenHomeDown pins degradation: a dead home peer
// costs a local execution, not an error.
func TestPeerFillFallsBackWhenHomeDown(t *testing.T) {
	nodes := startCluster(t, 2, nil)
	req := CellRequest{Workload: workload.Names()[0]}
	_, home, others := homeSplit(t, nodes, req)
	other := others[0]

	home.ts.Close() // the home node is gone
	other.srv.runCell = func(context.Context, *preparedCell) (experiment.CellResult, error) {
		return stubResult("local-fallback", 9), nil
	}

	status, _, body := postCell(t, other.ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("fallback cell got %d: %s", status, body)
	}
	var resp CellResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.PeerFilled {
		t.Fatal("fallback response marked peer_filled")
	}
	if got := other.srv.executions.Load(); got != 1 {
		t.Fatalf("fallback executions = %d, want 1", got)
	}
	if got := other.srv.peerFallback.Load(); got != 1 {
		t.Fatalf("peerFallback = %d, want 1", got)
	}
}

// TestPeerProbeRefusedMidDrain pins the drain/cluster interaction: a
// forwarded probe arriving at a draining home is refused with 503 before
// it can touch the cache — not counted as a miss, not counted as served —
// and the origin node falls back to local execution.
func TestPeerProbeRefusedMidDrain(t *testing.T) {
	nodes := startCluster(t, 2, nil)
	req := CellRequest{Workload: workload.Names()[0]}
	_, home, others := homeSplit(t, nodes, req)
	other := others[0]

	if err := home.srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Direct forwarded probe against the draining home.
	status, _ := postCellPeer(t, home.ts.URL, req)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("mid-drain peer probe got %d, want 503", status)
	}
	if got := home.srv.rejectedDrai.Load(); got < 1 {
		t.Fatalf("rejectedDrai = %d, want >= 1", got)
	}
	if got := home.cache.Metrics().Misses; got != 0 {
		t.Fatalf("refused probe counted %d cache misses, want 0", got)
	}
	if got := home.srv.peerServed.Load(); got != 0 {
		t.Fatalf("refused probe counted as served: peerServed = %d", got)
	}

	// End-to-end: the non-home node's own fill attempt sees the 503s and
	// falls back to local execution.
	other.srv.runCell = func(context.Context, *preparedCell) (experiment.CellResult, error) {
		return stubResult("local-fallback", 5), nil
	}
	status, _, body := postCell(t, other.ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("fallback past a draining home got %d: %s", status, body)
	}
	if got := other.srv.peerFallback.Load(); got != 1 {
		t.Fatalf("peerFallback = %d, want 1", got)
	}
	if got := home.cache.Metrics().Misses; got != 0 {
		t.Fatalf("draining home probed its cache %d times, want 0", got)
	}
}

// TestClusterMetricsRollup pins the rollup surface: /cluster/metrics.json
// carries every node's counters tagged node=<name> plus the same _suite
// rollup shapes obs.SuiteCollector gives suite exports, the Prometheus
// form matches, and an unreachable peer degrades to a scrape-error marker
// instead of failing the rollup.
func TestClusterMetricsRollup(t *testing.T) {
	nodes := startCluster(t, 2, nil)

	res, err := http.Get(nodes[0].ts.URL + "/cluster/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if res.StatusCode != http.StatusOK {
		t.Fatalf("rollup got %d: %s", res.StatusCode, body)
	}
	var ms obs.MetricSet
	if err := json.Unmarshal(body, &ms); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, m := range ms {
		for _, l := range m.Labels {
			if m.Name == "simd_requests_total" && l.Key == "node" {
				seen[l.Value] = true
			}
		}
		if m.Name == "simd_requests_total_suite" {
			seen["rollup:"+m.Labels[0].Value] = true
		}
	}
	for _, want := range []string{"node-0", "node-1", "rollup:mean", "rollup:p95"} {
		if !seen[want] {
			t.Fatalf("rollup lacks %q; saw %v in:\n%s", want, seen, body)
		}
	}

	// The Prometheus form exposes the same union.
	res, err = http.Get(nodes[0].ts.URL + "/cluster/metrics")
	if err != nil {
		t.Fatal(err)
	}
	pb, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	prom := string(pb)
	for _, want := range []string{
		`simd_requests_total{node="node-1"} 0`,
		`simd_requests_total_suite{stat="mean"} 0`,
	} {
		if !strings.Contains(prom, want) {
			t.Fatalf("prometheus rollup lacks %q:\n%s", want, prom)
		}
	}

	// A dead peer becomes a reachability marker, not a rollup failure.
	nodes[1].ts.Close()
	res, err = http.Get(nodes[0].ts.URL + "/cluster/metrics")
	if err != nil {
		t.Fatal(err)
	}
	pb, err = io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if res.StatusCode != http.StatusOK {
		t.Fatalf("rollup with a dead peer got %d", res.StatusCode)
	}
	if want := `simd_cluster_scrape_errors{node="node-1"} 1`; !strings.Contains(string(pb), want) {
		t.Fatalf("rollup lacks %q:\n%s", want, pb)
	}
}

// TestClusterReload pins reload semantics: POST /cluster/reload swaps in
// the membership the configured source now reports, remapping future
// requests; without a source the endpoint reports a conflict.
func TestClusterReload(t *testing.T) {
	cache, err := runner.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := New(Options{Cache: cache})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	self := Peer{Name: "node-a", URL: ts.URL}
	grown := []Peer{self, {Name: "node-b", URL: "http://127.0.0.1:1"}}
	membership := []Peer{self}
	err = s.SetCluster(ClusterConfig{
		Self:   "node-a",
		Peers:  membership,
		Reload: func() ([]Peer, error) { return grown, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Alone in the ring, every address is home.
	if h := s.cluster.Load().ring.Home("anything"); h != "node-a" {
		t.Fatalf("single-node ring homed %q", h)
	}

	res, err := http.Post(ts.URL+"/cluster/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if res.StatusCode != http.StatusOK {
		t.Fatalf("reload got %d: %s", res.StatusCode, body)
	}
	var rr struct {
		Peers   int `json:"peers"`
		Reloads int `json:"reloads"`
	}
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Peers != 2 || rr.Reloads != 1 {
		t.Fatalf("reload reported %+v, want 2 peers / 1 reload", rr)
	}
	// Future requests see the remap: node-b now owns part of the keyspace.
	cs := s.cluster.Load()
	if len(cs.peers) != 2 {
		t.Fatalf("snapshot has %d peers, want 2", len(cs.peers))
	}
	remapped := false
	for i := 0; i < 200 && !remapped; i++ {
		remapped = cs.ring.Home(fmt.Sprintf("addr-%d", i)) == "node-b"
	}
	if !remapped {
		t.Fatal("after reload node-b owns no keys")
	}
	ms := s.MetricSet()
	var peersGauge, reloads float64
	for _, m := range ms {
		switch m.Name {
		case "simd_cluster_peers":
			peersGauge = m.Value
		case "simd_cluster_reloads_total":
			reloads = m.Value
		}
	}
	if peersGauge != 2 || reloads != 1 {
		t.Fatalf("metrics: peers %v reloads %v, want 2 and 1", peersGauge, reloads)
	}

	// No membership source: the endpoint must refuse, not panic.
	s2 := New(Options{Cache: cache})
	defer s2.Close()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	if err := s2.SetCluster(ClusterConfig{Self: "solo", Peers: []Peer{{Name: "solo", URL: ts2.URL}}}); err != nil {
		t.Fatal(err)
	}
	res, err = http.Post(ts2.URL+"/cluster/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusConflict {
		t.Fatalf("sourceless reload got %d, want 409", res.StatusCode)
	}
}

// smokeParams is the real-execution budget for the cluster smoke tests.
func smokeParams() experiment.Params {
	p := experiment.DefaultParams()
	p.WarmupInstrs = 20_000
	p.MeasureInstrs = 60_000
	p.ProfileInstrs = 80_000
	return p
}

// cacheEntryPath is the run cache's on-disk layout for a content address.
func cacheEntryPath(c *runner.Cache, addr string) string {
	return filepath.Join(c.Dir(), addr[:2], addr+".json")
}

// TestClusterSmoke is the acceptance smoke: 3 real nodes, 8 distinct
// cells, a 48-request storm where every request lands on a NON-home node
// (the worst case for the fill protocol), overlapping duplicates across
// both non-home nodes. Cross-node singleflight must hold: the cluster
// executes exactly one simulation per distinct fingerprint, every
// response is byte-identical to the experiment harness's answer for the
// same cell, and all three caches converge to byte-identical entry files.
func TestClusterSmoke(t *testing.T) {
	p := smokeParams()
	nodes := startCluster(t, 3, func(int) Options {
		return Options{Params: p, Workers: 2, MaxConcurrent: 4, MaxQueue: 64}
	})

	const nCells = 8
	names := workload.Names()[:nCells]
	type cellPlan struct {
		req    CellRequest
		addr   string
		home   *clusterNode
		others []*clusterNode
	}
	plans := make([]cellPlan, nCells)
	for i, name := range names {
		req := CellRequest{Workload: name, Series: "fdp24"}
		addr, home, others := homeSplit(t, nodes, req)
		plans[i] = cellPlan{req: req, addr: addr, home: home, others: others}
	}

	// Storm: 6 requests per cell, alternating between its two non-home
	// nodes, all in flight at once.
	const dup = 6
	var wg sync.WaitGroup
	statuses := make([]int, nCells*dup)
	bodies := make([][]byte, nCells*dup)
	for i := range plans {
		for j := 0; j < dup; j++ {
			wg.Add(1)
			go func(i, j int) {
				defer wg.Done()
				target := plans[i].others[j%2]
				statuses[i*dup+j], _, bodies[i*dup+j] = postCell(t, target.ts.URL, plans[i].req)
			}(i, j)
		}
	}
	wg.Wait()

	// Reference answers from the experiment harness, fresh cache.
	ref := p
	var err error
	ref.Cache, err = runner.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	pool := runner.NewPool(2)
	defer pool.Close()
	want := make([][]byte, nCells)
	for i, plan := range plans {
		spec, ok := workload.Lookup(plan.req.Workload)
		if !ok {
			t.Fatalf("unknown workload %q", plan.req.Workload)
		}
		direct, err := experiment.RunCellCtx(context.Background(), pool, spec, "fdp24", ref)
		if err != nil {
			t.Fatalf("%s reference: %v", plan.req.Workload, err)
		}
		if direct.Fingerprint != plan.addr {
			t.Fatalf("%s reference fingerprint %s != served %s", plan.req.Workload, direct.Fingerprint, plan.addr)
		}
		if want[i], err = direct.Stats.CanonicalJSON(); err != nil {
			t.Fatal(err)
		}
	}

	for i := range plans {
		for j := 0; j < dup; j++ {
			k := i*dup + j
			if statuses[k] != http.StatusOK {
				t.Fatalf("cell %s request %d got %d: %s", plans[i].req.Workload, j, statuses[k], bodies[k])
			}
			var resp CellResponse
			if err := json.Unmarshal(bodies[k], &resp); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(resp.Stats, want[i]) {
				t.Fatalf("cell %s request %d diverged from the experiment harness:\nserved: %s\nref:    %s",
					plans[i].req.Workload, j, resp.Stats, want[i])
			}
		}
	}

	// Cross-node singleflight: one execution per distinct fingerprint,
	// cluster-wide, despite 48 overlapping requests.
	var totalExec int64
	for _, nd := range nodes {
		totalExec += nd.srv.executions.Load()
	}
	if totalExec != nCells {
		for _, nd := range nodes {
			t.Logf("%s: executions=%d peerFilled=%d peerServed=%d fallback=%d",
				nd.name, nd.srv.executions.Load(), nd.srv.peerFilled.Load(),
				nd.srv.peerServed.Load(), nd.srv.peerFallback.Load())
		}
		t.Fatalf("cluster executed %d simulations for %d distinct fingerprints", totalExec, nCells)
	}
	var fallbacks int64
	for _, nd := range nodes {
		fallbacks += nd.srv.peerFallback.Load()
	}
	if fallbacks != 0 {
		t.Fatalf("healthy cluster fell back to local execution %d times", fallbacks)
	}

	// The measured topline (quoted in EXPERIMENTS.md): requests vs.
	// cluster-wide executions, and how the work split across nodes.
	for _, nd := range nodes {
		t.Logf("%s: requests=%d executions=%d peerFilled=%d peerServed=%d cacheHits=%d coalesced=%d",
			nd.name, nd.srv.requests.Load(), nd.srv.executions.Load(), nd.srv.peerFilled.Load(),
			nd.srv.peerServed.Load(), nd.srv.cacheHits.Load(), nd.srv.coalesced.Load())
	}
	t.Logf("cluster: %d requests, %d distinct fingerprints, %d executions", nCells*dup, nCells, totalExec)

	// Cache convergence: every node that touched a cell holds an entry
	// file byte-identical to the home node's.
	for i, plan := range plans {
		homeBytes, err := os.ReadFile(cacheEntryPath(plan.home.cache, plan.addr))
		if err != nil {
			t.Fatalf("cell %d home cache entry: %v", i, err)
		}
		for _, nd := range plan.others {
			got, err := os.ReadFile(cacheEntryPath(nd.cache, plan.addr))
			if err != nil {
				t.Fatalf("cell %d on %s: written-back entry missing: %v", i, nd.name, err)
			}
			if !bytes.Equal(got, homeBytes) {
				t.Fatalf("cell %d: %s cache entry differs from home's", i, nd.name)
			}
		}
	}
}

// TestClusterHomeKilled pins the degradation half of the acceptance
// smoke: with the home node dead, requests for its cells succeed on the
// surviving nodes via local-execution fallback — no 5xx anywhere.
func TestClusterHomeKilled(t *testing.T) {
	p := smokeParams()
	nodes := startCluster(t, 3, func(int) Options {
		return Options{Params: p, Workers: 2, MaxConcurrent: 4, MaxQueue: 64}
	})

	// Find four cells homed at one victim node: two served before the
	// kill (peer-filled), two after (fallback).
	names := workload.Names()
	req0 := CellRequest{Workload: names[0], Series: "fdp24"}
	_, victim, survivors := homeSplit(t, nodes, req0)
	var victimCells []CellRequest
	for _, name := range names {
		req := CellRequest{Workload: name, Series: "fdp24"}
		if _, home, _ := homeSplit(t, nodes, req); home == victim {
			victimCells = append(victimCells, req)
		}
		if len(victimCells) == 4 {
			break
		}
	}
	if len(victimCells) < 4 {
		t.Fatalf("victim %s homes only %d of %d workload cells", victim.name, len(victimCells), len(names))
	}

	// Wave 1 — healthy cluster: both survivors fill the victim's cells.
	wave := func(cells []CellRequest) []int {
		var wg sync.WaitGroup
		statuses := make([]int, len(cells)*len(survivors))
		for i := range cells {
			for j := range survivors {
				wg.Add(1)
				go func(i, j int) {
					defer wg.Done()
					statuses[i*len(survivors)+j], _, _ = postCell(t, survivors[j].ts.URL, cells[i])
				}(i, j)
			}
		}
		wg.Wait()
		return statuses
	}
	for i, st := range wave(victimCells[:2]) {
		if st != http.StatusOK {
			t.Fatalf("pre-kill request %d got %d", i, st)
		}
	}
	if got := victim.srv.executions.Load(); got != 2 {
		t.Fatalf("victim executed %d cells pre-kill, want 2", got)
	}

	// Kill the home node mid-storm.
	victim.ts.Close()

	// Wave 2 — fresh cells homed at the dead node: every survivor must
	// degrade to local execution, never a 5xx.
	before := survivors[0].srv.executions.Load() + survivors[1].srv.executions.Load()
	for i, st := range wave(victimCells[2:]) {
		if st != http.StatusOK {
			t.Fatalf("post-kill request %d got %d, want 200 via local fallback", i, st)
		}
	}
	after := survivors[0].srv.executions.Load() + survivors[1].srv.executions.Load()
	if after <= before {
		t.Fatalf("survivors executed nothing post-kill (executions %d -> %d)", before, after)
	}
	var fallbacks int64
	for _, nd := range survivors {
		fallbacks += nd.srv.peerFallback.Load()
	}
	if fallbacks < 2 {
		t.Fatalf("peerFallback = %d across survivors, want >= 2", fallbacks)
	}
}
