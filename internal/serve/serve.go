// Package serve is the simulation-as-a-service layer: a long-running
// HTTP/JSON front-end over the experiment harness that answers
// simulation-cell and suite requests from the content-addressed run cache
// and executes misses on a runner.Pool with
//
//   - request coalescing: concurrent requests for the same cell
//     fingerprint collapse into one simulation with N subscribers
//     (singleflight), so a thundering herd of identical sweeps costs one
//     execution;
//   - bounded admission: at most MaxConcurrent cells execute at once and
//     at most MaxQueue wait; beyond that the server sheds load with
//     429 + Retry-After instead of queueing unboundedly, and a request's
//     deadline keeps ticking while it waits for a slot;
//   - end-to-end cancellation: an abandoned request (client gone, deadline
//     hit) cancels its subscription; when a cell's last subscriber leaves,
//     the execution context is cancelled, the scheduler join aborts queued
//     jobs (runner.Group.WaitCtx) and the cycle loop stops at the next
//     jump boundary (core.RunCtx) — a cancelled cell is never written to
//     the cache;
//   - graceful drain: Drain stops admission (503 for new work), lets
//     in-flight cells finish until the drain deadline, then cancels
//     whatever remains.
//
// Results are byte-identical to cmd/experiments for the same fingerprint:
// cells are produced by the same experiment-package execution path and
// cached under the same keys, and responses embed the stats'
// CanonicalJSON verbatim.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"frontsim/internal/asmdb"
	"frontsim/internal/core"
	"frontsim/internal/experiment"
	"frontsim/internal/hwpf"
	"frontsim/internal/obs"
	"frontsim/internal/runner"
	"frontsim/internal/workload"
)

// Options configures a Server. The zero value of every field has a usable
// default.
type Options struct {
	// Params supplies the default instruction budgets and AsmDB tuning;
	// zero-valued fields fall back to experiment.DefaultParams.
	Params experiment.Params
	// Cache is the content-addressed run cache (nil: always-miss).
	Cache *runner.Cache
	// Workers bounds the scheduler pool (<=0: GOMAXPROCS).
	Workers int
	// MaxConcurrent bounds cells executing simultaneously (<=0: Workers).
	MaxConcurrent int
	// MaxQueue bounds cells waiting for an execution slot (<=0: 64).
	// Requests beyond it receive 429 with a Retry-After hint.
	MaxQueue int
	// RetryAfter is the hint returned with 429/503 (<=0: 1s).
	RetryAfter time.Duration
}

// Server implements the service. Create with New, mount via Handler, stop
// with Drain followed by Close.
type Server struct {
	opts  Options
	base  experiment.Params
	pool  *runner.Pool
	mux   *http.ServeMux
	slots chan struct{}

	waiting   atomic.Int64 // requests queued for an execution slot
	draining  atomic.Bool
	drainCh   chan struct{} // closed when Drain begins: queued admissions bail with errDraining
	drainOnce sync.Once
	inflight  sync.WaitGroup // admitted HTTP requests

	// Cluster membership (nil: single-node mode). See cluster.go.
	cluster    atomic.Pointer[clusterState]
	clusterCfg ClusterConfig

	mu     sync.Mutex
	flight map[string]*flight

	// Counters exported at /metrics.
	requests     atomic.Int64 // cell requests accepted for processing
	cacheHits    atomic.Int64 // answered from the run cache, no flight
	executions   atomic.Int64 // flights actually led (simulations started)
	coalesced    atomic.Int64 // requests that subscribed to an existing flight
	rejectedFull atomic.Int64 // 429: admission queue full
	rejectedDrai atomic.Int64 // 503: draining
	cancelledReq atomic.Int64 // subscriptions abandoned before completion
	failed       atomic.Int64 // cells that returned an error

	// Cluster counters (all zero in single-node mode).
	peerFilled     atomic.Int64 // cold cells satisfied by the home peer
	peerFallback   atomic.Int64 // peer fills that fell back to local execution
	peerServed     atomic.Int64 // forwarded requests served as the home node
	peerStoreErrs  atomic.Int64 // peer-fill write-backs that failed to cache
	clusterReloads atomic.Int64 // membership reloads applied

	// runCell, probe and storeCell are the execution, cache-lookup and
	// peer-write-back seams; tests stub them to make admission, coalescing
	// and cluster behavior deterministic. Production: run/probe/store a
	// real cell.
	runCell   func(ctx context.Context, pc *preparedCell) (experiment.CellResult, error)
	probe     func(pc *preparedCell) (core.Stats, bool, error)
	storeCell func(pc *preparedCell, raw json.RawMessage) error
}

// flight is one in-progress cell execution with its subscriber set.
type flight struct {
	done       chan struct{}
	res        experiment.CellResult
	err        error
	peerFilled bool // the flight was satisfied by the home peer, not local execution
	subs       int  // guarded by Server.mu
	abandoned  bool // last subscriber left and cancel was fired; guarded by Server.mu
	cancel     context.CancelFunc
}

// New builds a Server. Close releases its pool.
func New(opts Options) *Server {
	if opts.MaxQueue <= 0 {
		opts.MaxQueue = 64
	}
	if opts.RetryAfter <= 0 {
		opts.RetryAfter = time.Second
	}
	pool := runner.NewPool(opts.Workers)
	if opts.MaxConcurrent <= 0 {
		opts.MaxConcurrent = pool.Workers()
	}
	def := experiment.DefaultParams()
	p := opts.Params
	if p.WarmupInstrs <= 0 {
		p.WarmupInstrs = def.WarmupInstrs
	}
	if p.MeasureInstrs <= 0 {
		p.MeasureInstrs = def.MeasureInstrs
	}
	if p.ProfileInstrs <= 0 {
		p.ProfileInstrs = def.ProfileInstrs
	}
	if p.AsmDB == (asmdb.Options{}) {
		p.AsmDB = def.AsmDB
	}
	if p.ExecSeedSalt == 0 {
		p.ExecSeedSalt = def.ExecSeedSalt
	}
	p.FastForward = true
	p.Cache = opts.Cache
	s := &Server{
		opts:    opts,
		base:    p,
		pool:    pool,
		slots:   make(chan struct{}, opts.MaxConcurrent),
		drainCh: make(chan struct{}),
		flight:  make(map[string]*flight),
	}
	s.runCell = s.executeCell
	s.probe = s.probeCell
	s.storeCell = s.storeCellBytes
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/cell", s.handleCell)
	s.mux.HandleFunc("POST /v1/suite", s.handleSuite)
	s.mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /metrics.json", s.handleMetricsJSON)
	s.mux.HandleFunc("GET /cluster/metrics", s.handleClusterMetrics)
	s.mux.HandleFunc("GET /cluster/metrics.json", s.handleClusterMetricsJSON)
	s.mux.HandleFunc("POST /cluster/reload", s.handleClusterReload)
	return s
}

// Handler returns the HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Close releases the scheduler pool. Call after Drain.
func (s *Server) Close() { s.pool.Close() }

// Drain performs the graceful-shutdown sequence: stop admitting (new
// requests get 503 + Retry-After), wait for in-flight requests to finish,
// and — if ctx expires first — cancel every remaining flight and wait for
// the (now fast) unwind. It returns ctx.Err() when the deadline forced
// cancellations, nil for a clean drain.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	// Wake every request still waiting in the admission queue: a drain
	// must hand them a deterministic 503 now, not leave them parked until
	// their own queue deadline.
	s.drainOnce.Do(func() { close(s.drainCh) })
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}
	s.mu.Lock()
	for _, f := range s.flight {
		f.cancel()
	}
	s.mu.Unlock()
	<-done
	return ctx.Err()
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// --- request/response types ---------------------------------------------

// CellRequest asks for one simulation cell. Series selects one of the
// suite's seven per-workload series (default "fdp24"); alternatively,
// config overrides (FTQ, DecodeWidth, NoPFC, HwPrefetcher) or a named
// Ablation variant run the workload's unmodified program under a modified
// industry-standard configuration, cached under the same identity an
// ablation sweep of that configuration uses.
type CellRequest struct {
	Workload string `json:"workload"`
	Series   string `json:"series,omitempty"`

	// Ablation names a config variant: "ftq<N>" (FTQ depth sweep),
	// "nopfc" (post-fetch correction off), "eip"/"nextline" (hardware
	// prefetcher). Sugar over the explicit overrides below.
	Ablation string `json:"ablation,omitempty"`

	FTQ          int    `json:"ftq,omitempty"`
	DecodeWidth  int    `json:"decode_width,omitempty"`
	NoPFC        bool   `json:"no_pfc,omitempty"`
	HwPrefetcher string `json:"hwpf,omitempty"`

	WarmupInstrs  int64 `json:"warmup_instrs,omitempty"`
	MeasureInstrs int64 `json:"measure_instrs,omitempty"`
	ProfileInstrs int64 `json:"profile_instrs,omitempty"`

	// SamplingInterval > 0 selects SMARTS-style sampled simulation with
	// the given unit period; SamplingDetail and SamplingWarm set the
	// measured-window and detailed-warm-up lengths (core.SamplingConfig).
	// Sampling is part of the config fingerprint, so sampled cells never
	// share cache entries with exact ones.
	SamplingInterval int64 `json:"sampling_interval,omitempty"`
	SamplingDetail   int64 `json:"sampling_detail,omitempty"`
	SamplingWarm     int64 `json:"sampling_warm,omitempty"`

	// TimeoutMs bounds the whole request, queue wait included.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// CellResponse is one completed cell. Stats is the core.Stats
// CanonicalJSON — byte-identical to the run cache entry and to what
// cmd/experiments computes for the same fingerprint.
type CellResponse struct {
	Workload    string  `json:"workload"`
	Series      string  `json:"series,omitempty"`
	Config      string  `json:"config"`
	Fingerprint string  `json:"fingerprint"`
	Cached      bool    `json:"cached"`
	Coalesced   bool    `json:"coalesced"`
	PeerFilled  bool    `json:"peer_filled,omitempty"`
	IPC         float64 `json:"ipc"`
	L1IMPKI     float64 `json:"l1i_mpki"`
	// Sampled cells additionally report the 95% confidence half-width on
	// the IPC estimate and the number of measured windows behind it.
	IPCCI95         float64         `json:"ipc_ci95,omitempty"`
	SamplingWindows int64           `json:"sampling_windows,omitempty"`
	Stats           json.RawMessage `json:"stats"`
}

// SuiteRequest asks for a grid of cells: every listed workload under
// every listed series (defaults: all 48 workloads, series ["fdp24"]).
// Each cell flows through the same coalescing and admission machinery as
// a single-cell request.
type SuiteRequest struct {
	Workloads []string `json:"workloads,omitempty"`
	Series    []string `json:"series,omitempty"`

	WarmupInstrs  int64 `json:"warmup_instrs,omitempty"`
	MeasureInstrs int64 `json:"measure_instrs,omitempty"`
	ProfileInstrs int64 `json:"profile_instrs,omitempty"`

	SamplingInterval int64 `json:"sampling_interval,omitempty"`
	SamplingDetail   int64 `json:"sampling_detail,omitempty"`
	SamplingWarm     int64 `json:"sampling_warm,omitempty"`

	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// SuiteResponse preserves request order: cell i×j is Cells[i*len(Series)+j].
type SuiteResponse struct {
	Cells []CellResponse `json:"cells"`
}

// errorBody is the JSON error payload.
type errorBody struct {
	Error string `json:"error"`
}

// --- request resolution --------------------------------------------------

// preparedCell is a fully-resolved cell request: workload, execution
// parameters, and either a suite series or an explicit configuration.
type preparedCell struct {
	spec   workload.Spec
	series string      // non-empty: suite series cell
	config core.Config // series == "": config-override cell
	params experiment.Params
	addr   string

	// req is the normalized request (ablation expanded, budgets made
	// explicit) a non-home node forwards to the cell's home peer; pinning
	// resolved budgets means both nodes compute the same content address
	// even when their command-line defaults differ.
	req CellRequest
	// peerHop marks a request that already traveled one peer hop
	// (X-Simd-Peer present): it must be produced locally, never
	// re-forwarded — the loop guard.
	peerHop bool
}

func (s *Server) prepare(req CellRequest) (*preparedCell, error) {
	spec, ok := workload.Lookup(req.Workload)
	if !ok {
		return nil, fmt.Errorf("unknown workload %q", req.Workload)
	}
	p := s.base
	if req.WarmupInstrs > 0 {
		p.WarmupInstrs = req.WarmupInstrs
	}
	if req.MeasureInstrs > 0 {
		p.MeasureInstrs = req.MeasureInstrs
	}
	if req.ProfileInstrs > 0 {
		p.ProfileInstrs = req.ProfileInstrs
	}
	if req.SamplingInterval > 0 {
		p.Sampling = core.SamplingConfig{
			IntervalInstrs: req.SamplingInterval,
			DetailInstrs:   req.SamplingDetail,
			WarmInstrs:     req.SamplingWarm,
		}
		if err := p.Sampling.Validate(); err != nil {
			return nil, err
		}
	}
	pc := &preparedCell{spec: spec, params: p}

	if err := applyAblation(&req); err != nil {
		return nil, err
	}
	// The forwarded form pins everything this node resolved — ablation
	// sugar expanded, budgets explicit — so the home peer addresses the
	// identical cell regardless of its own defaults.
	pc.req = CellRequest{
		Workload: spec.Name, Series: req.Series,
		FTQ: req.FTQ, DecodeWidth: req.DecodeWidth, NoPFC: req.NoPFC, HwPrefetcher: req.HwPrefetcher,
		WarmupInstrs: p.WarmupInstrs, MeasureInstrs: p.MeasureInstrs, ProfileInstrs: p.ProfileInstrs,
		SamplingInterval: p.Sampling.IntervalInstrs, SamplingDetail: p.Sampling.DetailInstrs,
		SamplingWarm: p.Sampling.WarmInstrs,
	}
	if req.FTQ != 0 || req.DecodeWidth != 0 || req.NoPFC || req.HwPrefetcher != "" {
		if req.Series != "" {
			return nil, fmt.Errorf("series %q and config overrides are mutually exclusive", req.Series)
		}
		c, err := overrideConfig(req, p)
		if err != nil {
			return nil, err
		}
		pc.config = c
		addr, err := experiment.ConfigCellAddress(spec, c, p)
		if err != nil {
			return nil, err
		}
		pc.addr = addr
		return pc, nil
	}

	series := req.Series
	if series == "" {
		series = "fdp24"
	}
	addr, err := experiment.CellAddress(spec, series, p)
	if err != nil {
		return nil, err
	}
	pc.series = series
	pc.req.Series = series
	pc.addr = addr
	return pc, nil
}

// applyAblation expands a named ablation into explicit overrides (or, for
// "eip", the suite series that already covers it), preserving the cache
// identity the corresponding ablation sweep uses.
func applyAblation(req *CellRequest) error {
	switch a := req.Ablation; {
	case a == "":
		return nil
	case a == "nopfc":
		req.NoPFC = true
	case a == "eip":
		if req.Series != "" && req.Series != "eip+fdp24" {
			return fmt.Errorf("ablation eip conflicts with series %q", req.Series)
		}
		req.Series = "eip+fdp24"
	case a == "nextline":
		req.HwPrefetcher = a
	case len(a) > 3 && a[:3] == "ftq":
		n, err := strconv.Atoi(a[3:])
		if err != nil || n <= 0 {
			return fmt.Errorf("bad ablation %q: want ftq<N>", a)
		}
		req.FTQ = n
	default:
		return fmt.Errorf("unknown ablation %q (want ftq<N>, nopfc, eip, nextline)", a)
	}
	return nil
}

// overrideConfig builds the modified industry-standard configuration for
// explicit config overrides. Config.Name feeds the fingerprint, so names
// deliberately mirror the ablation sweeps — "ftq<N>" for FTQ depth, and
// the unchanged base name for post-fetch-correction toggles (A3 keeps it
// too) — so a served override cell and the sweep's cell for the same
// machine share one cache entry.
func overrideConfig(req CellRequest, p experiment.Params) (core.Config, error) {
	c := core.DefaultConfig()
	c.WarmupInstrs, c.MaxInstrs = p.WarmupInstrs, p.MeasureInstrs
	c.FastForward = true
	c.Sampling = p.Sampling
	if req.FTQ != 0 {
		c.Name = fmt.Sprintf("ftq%d", req.FTQ)
		c.Frontend.FTQEntries = req.FTQ
	}
	if req.DecodeWidth != 0 {
		c.Name += fmt.Sprintf("+dw%d", req.DecodeWidth)
		c.DecodeWidth = req.DecodeWidth
	}
	if req.NoPFC {
		c.Frontend.EnablePFC = false
	}
	switch req.HwPrefetcher {
	case "":
	case "nextline":
		c.Name += "+nextline"
		c.Frontend.Prefetcher = hwpf.NewNextLine(2)
	case "eip":
		c.Name += "+eip"
		eip, err := hwpf.NewEIP(hwpf.DefaultEIPConfig())
		if err != nil {
			return c, err
		}
		c.Frontend.Prefetcher = eip
	default:
		return c, fmt.Errorf("unknown hwpf %q (want nextline or eip)", req.HwPrefetcher)
	}
	if err := c.Validate(); err != nil {
		return c, err
	}
	return c, nil
}

// executeCell is the production runCell: the flight leader's simulation.
func (s *Server) executeCell(ctx context.Context, pc *preparedCell) (experiment.CellResult, error) {
	if pc.series != "" {
		return experiment.RunCellCtx(ctx, s.pool, pc.spec, pc.series, pc.params)
	}
	return experiment.RunConfigCellCtx(ctx, s.pool, pc.spec, pc.config, pc.params)
}

// probeCell is the cache fast path: no admission, no flight.
func (s *Server) probeCell(pc *preparedCell) (core.Stats, bool, error) {
	if pc.series != "" {
		st, _, ok, err := experiment.ProbeCell(pc.spec, pc.series, pc.params)
		return st, ok, err
	}
	st, _, ok, err := experiment.ProbeConfigCell(pc.spec, pc.config, pc.params)
	return st, ok, err
}

// --- core cell flow ------------------------------------------------------

// httpError carries a status code (and optional Retry-After) to the edge.
type httpError struct {
	status     int
	retryAfter time.Duration
	msg        string
}

func (e *httpError) Error() string { return e.msg }

var (
	errQueueFull = errors.New("serve: admission queue full")
	errDraining  = errors.New("serve: draining")
)

// cell answers one prepared cell request under ctx, coalescing with
// concurrent identical requests.
func (s *Server) cell(ctx context.Context, pc *preparedCell) (CellResponse, error) {
	s.requests.Add(1)
	resp := CellResponse{Workload: pc.spec.Name, Series: pc.series, Fingerprint: pc.addr}
	if pc.series == "" {
		resp.Config = pc.config.Name
	}

	// Cache fast path: warm cells are answered without touching admission.
	if st, ok, err := s.probe(pc); err != nil {
		s.failed.Add(1)
		return resp, err
	} else if ok {
		s.cacheHits.Add(1)
		resp.Cached = true
		return finishCell(resp, st)
	}

	res, coalesced, peerFilled, err := s.joinFlight(ctx, pc)
	if err != nil {
		// Execution failures are counted once, by the flight leader; here
		// only this subscriber's own abandonment is.
		if cerr := ctx.Err(); cerr != nil && errors.Is(err, cerr) {
			s.cancelledReq.Add(1)
		}
		return resp, err
	}
	resp.Cached = res.Cached
	resp.Coalesced = coalesced
	resp.PeerFilled = peerFilled
	return finishCell(resp, res.Stats)
}

// finishCell embeds the stats' canonical bytes and headline metrics.
func finishCell(resp CellResponse, st core.Stats) (CellResponse, error) {
	if resp.Config == "" {
		resp.Config = st.Config
	}
	b, err := st.CanonicalJSON()
	if err != nil {
		return resp, err
	}
	resp.Stats = b
	resp.IPC = st.IPC()
	resp.L1IMPKI = st.L1IMPKI()
	if sp := st.Sampling; sp != nil {
		// An unbounded interval (too few windows, or variance crossing
		// CPI zero) cannot be encoded as JSON; omit the half-width and
		// let the full interval in Stats.Sampling speak for itself.
		if hw := sp.IPCCI95(); !math.IsInf(hw, 1) {
			resp.IPCCI95 = hw
		}
		resp.SamplingWindows = sp.Windows
	}
	return resp, nil
}

// joinFlight subscribes ctx to the cell's flight, creating it (and
// leading the production) if none exists. The returned bools report
// whether this request coalesced onto an existing flight, and whether
// the flight was satisfied by the cell's home peer.
func (s *Server) joinFlight(ctx context.Context, pc *preparedCell) (experiment.CellResult, bool, bool, error) {
	s.mu.Lock()
	// An abandoned flight (last subscriber left, cancel already fired) is
	// not joinable: its execution is dying with context.Canceled, and a new
	// subscriber coalescing onto it would inherit that spurious failure.
	// Start a fresh flight instead; the stale entry is overwritten here and
	// lead() only deletes the map entry if it is still the current one.
	if f, ok := s.flight[pc.addr]; ok && !f.abandoned {
		f.subs++
		s.mu.Unlock()
		s.coalesced.Add(1)
		res, err := s.awaitFlight(ctx, f)
		return res, true, err == nil && f.peerFilled, err
	}
	// The flight context deliberately does not descend from any single
	// subscriber's ctx: the flight is shared, and must survive subscriber A
	// leaving while B still waits. Last-out cancellation is explicit, in
	// awaitFlight.
	fctx, cancel := context.WithCancel(context.Background()) //lint:allow flight outlives any one subscriber; the last one out cancels it in awaitFlight
	f := &flight{done: make(chan struct{}), subs: 1, cancel: cancel}
	s.flight[pc.addr] = f
	s.mu.Unlock()

	go s.lead(fctx, pc, f)
	res, err := s.awaitFlight(ctx, f)
	// f.peerFilled is published by the close(f.done) the nil-err path
	// implies; on the ctx-abandon path the flight may still be running, so
	// the field must not be read.
	return res, false, err == nil && f.peerFilled, err
}

// lead runs the flight: peer fill or admission + execution, publication,
// removal.
func (s *Server) lead(fctx context.Context, pc *preparedCell, f *flight) {
	defer f.cancel()
	f.res, f.peerFilled, f.err = s.produceCell(fctx, pc)
	if f.err == nil {
		f.res.Fingerprint = pc.addr
	} else if !errors.Is(f.err, context.Canceled) && !errors.Is(f.err, errQueueFull) && !errors.Is(f.err, errDraining) {
		s.failed.Add(1)
	}
	s.mu.Lock()
	// A fresh flight may have replaced an abandoned f under this address;
	// only remove the entry if it is still ours.
	if s.flight[pc.addr] == f {
		delete(s.flight, pc.addr)
	}
	s.mu.Unlock()
	close(f.done)
}

// produceCell is the flight leader's work: in cluster mode a cold cell
// whose home is another node is filled from that peer (one execution per
// fingerprint globally); everything else — home cells, forwarded hops,
// peer failures — is admitted and executed locally. The peer probe runs
// before admission on purpose: it holds no execution slot while waiting
// on the home node's simulation.
func (s *Server) produceCell(fctx context.Context, pc *preparedCell) (experiment.CellResult, bool, error) {
	if res, ok := s.peerFill(fctx, pc); ok {
		return res, true, nil
	}
	res, err := s.admitAndRun(fctx, pc)
	return res, false, err
}

// admitAndRun acquires an execution slot — queueing up to MaxQueue, shed
// with errQueueFull beyond that — and runs the cell. A drain that begins
// while the cell waits in the queue resolves it immediately with
// errDraining (a deterministic 503) instead of leaving it parked until
// its own deadline.
func (s *Server) admitAndRun(fctx context.Context, pc *preparedCell) (experiment.CellResult, error) {
	select {
	case s.slots <- struct{}{}:
	default:
		if s.waiting.Add(1) > int64(s.opts.MaxQueue) {
			s.waiting.Add(-1)
			return experiment.CellResult{}, errQueueFull
		}
		select {
		case s.slots <- struct{}{}:
			s.waiting.Add(-1)
		case <-s.drainCh:
			s.waiting.Add(-1)
			return experiment.CellResult{}, errDraining
		case <-fctx.Done():
			s.waiting.Add(-1)
			return experiment.CellResult{}, fctx.Err()
		}
	}
	defer func() { <-s.slots }()
	s.executions.Add(1)
	return s.runCell(fctx, pc)
}

// awaitFlight waits for the flight's result or the subscriber's ctx,
// whichever first. A departing subscriber decrements the subscription
// count; the last one out cancels the execution.
func (s *Server) awaitFlight(ctx context.Context, f *flight) (experiment.CellResult, error) {
	select {
	case <-f.done:
		return f.res, f.err
	case <-ctx.Done():
	}
	s.mu.Lock()
	f.subs--
	if f.subs == 0 && !f.abandoned {
		// Mark and cancel inside the lock: deciding "last one out" and
		// firing cancel must be atomic with joinFlight's joinability check,
		// or a subscriber arriving between them would coalesce onto a
		// flight whose cancellation is already in motion and get a spurious
		// context.Canceled for a cell that was never doomed. (CancelFunc is
		// non-blocking, so holding mu across it is safe.)
		f.abandoned = true
		f.cancel()
	}
	s.mu.Unlock()
	return experiment.CellResult{}, ctx.Err()
}

// --- HTTP edge -----------------------------------------------------------

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// No indentation: responses embed Stats CanonicalJSON as a RawMessage,
	// and an indenting encoder would reformat it, breaking the
	// byte-identity contract with the run cache.
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) writeErr(w http.ResponseWriter, err error) {
	var he *httpError
	if errors.As(err, &he) {
		if he.retryAfter > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(int((he.retryAfter+time.Second-1)/time.Second)))
		}
		s.writeJSON(w, he.status, errorBody{Error: he.msg})
		return
	}
	switch {
	case errors.Is(err, errQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(int((s.opts.RetryAfter+time.Second-1)/time.Second)))
		s.writeJSON(w, http.StatusTooManyRequests, errorBody{Error: "execution queue full; retry later"})
	case errors.Is(err, errDraining):
		w.Header().Set("Retry-After", strconv.Itoa(int((s.opts.RetryAfter+time.Second-1)/time.Second)))
		s.writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "draining"})
	case errors.Is(err, context.DeadlineExceeded):
		s.writeJSON(w, http.StatusGatewayTimeout, errorBody{Error: err.Error()})
	case errors.Is(err, context.Canceled):
		// The client is gone; the status is a formality.
		s.writeJSON(w, 499, errorBody{Error: err.Error()})
	default:
		s.writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
	}
}

// admitHTTP performs the checks shared by the work endpoints. It returns
// false after writing the response when the request must not proceed.
func (s *Server) admitHTTP(w http.ResponseWriter) bool {
	if s.draining.Load() {
		s.rejectedDrai.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(int((s.opts.RetryAfter+time.Second-1)/time.Second)))
		s.writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "draining"})
		return false
	}
	return true
}

// requestCtx derives the request's context with its optional timeout.
func requestCtx(r *http.Request, timeoutMs int64) (context.Context, context.CancelFunc) {
	if timeoutMs > 0 {
		return context.WithTimeout(r.Context(), time.Duration(timeoutMs)*time.Millisecond)
	}
	return r.Context(), func() {}
}

func (s *Server) handleCell(w http.ResponseWriter, r *http.Request) {
	if !s.admitHTTP(w) {
		return
	}
	s.inflight.Add(1)
	defer s.inflight.Done()
	var req CellRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return
	}
	pc, err := s.prepare(req)
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	if pc.peerHop = r.Header.Get(PeerHeader) != ""; pc.peerHop {
		s.peerServed.Add(1)
	}
	ctx, cancel := requestCtx(r, req.TimeoutMs)
	defer cancel()
	resp, err := s.cell(ctx, pc)
	if err != nil {
		switch {
		case errors.Is(err, errQueueFull):
			s.rejectedFull.Add(1)
		case errors.Is(err, errDraining):
			s.rejectedDrai.Add(1)
		}
		s.writeErr(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSuite(w http.ResponseWriter, r *http.Request) {
	if !s.admitHTTP(w) {
		return
	}
	s.inflight.Add(1)
	defer s.inflight.Done()
	var req SuiteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return
	}
	names := req.Workloads
	if len(names) == 0 {
		names = workload.Names()
	}
	series := req.Series
	if len(series) == 0 {
		series = []string{"fdp24"}
	}
	cells := make([]*preparedCell, 0, len(names)*len(series))
	for _, wl := range names {
		for _, ser := range series {
			pc, err := s.prepare(CellRequest{
				Workload: wl, Series: ser,
				WarmupInstrs: req.WarmupInstrs, MeasureInstrs: req.MeasureInstrs,
				ProfileInstrs:    req.ProfileInstrs,
				SamplingInterval: req.SamplingInterval, SamplingDetail: req.SamplingDetail,
				SamplingWarm: req.SamplingWarm,
			})
			if err != nil {
				s.writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
				return
			}
			cells = append(cells, pc)
		}
	}
	ctx, cancel := requestCtx(r, req.TimeoutMs)
	defer cancel()

	resps := make([]CellResponse, len(cells))
	errs := make([]error, len(cells))
	var wg sync.WaitGroup
	for i, pc := range cells {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resps[i], errs[i] = s.cell(ctx, pc)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			switch {
			case errors.Is(err, errQueueFull):
				s.rejectedFull.Add(1)
			case errors.Is(err, errDraining):
				s.rejectedDrai.Add(1)
			}
			s.writeErr(w, fmt.Errorf("cell %s/%s: %w", cells[i].spec.Name, cells[i].series, err))
			return
		}
	}
	s.writeJSON(w, http.StatusOK, SuiteResponse{Cells: resps})
}

func (s *Server) handleWorkloads(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{
		"workloads": workload.Names(),
		"series":    experiment.SeriesLabels(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	status := "ok"
	code := http.StatusOK
	if s.draining.Load() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	s.writeJSON(w, code, map[string]string{"status": status})
}

// MetricSet snapshots the server's request counters plus the run cache's
// hit/miss/store counts as an obs metric set.
func (s *Server) MetricSet() obs.MetricSet {
	var ms obs.MetricSet
	add := func(name, help string, v int64, labels ...obs.Label) {
		ms.Add(obs.Metric{Name: name, Help: help, Labels: labels, Value: float64(v)})
	}
	add("simd_requests_total", "cell requests accepted for processing", s.requests.Load())
	add("simd_cells_total", "cells answered, by production path", s.cacheHits.Load(),
		obs.Label{Key: "source", Value: "cache"})
	add("simd_cells_total", "cells answered, by production path", s.executions.Load(),
		obs.Label{Key: "source", Value: "executed"})
	add("simd_cells_total", "cells answered, by production path", s.coalesced.Load(),
		obs.Label{Key: "source", Value: "coalesced"})
	add("simd_rejected_total", "requests shed", s.rejectedFull.Load(),
		obs.Label{Key: "reason", Value: "queue_full"})
	add("simd_rejected_total", "requests shed", s.rejectedDrai.Load(),
		obs.Label{Key: "reason", Value: "draining"})
	add("simd_cancelled_total", "subscriptions abandoned before completion", s.cancelledReq.Load())
	add("simd_failed_total", "cells that returned an error", s.failed.Load())
	add("simd_queue_waiting", "requests currently waiting for an execution slot", s.waiting.Load())
	add("simd_peer_fill_total", "peer-fill outcomes, by result", s.peerFilled.Load(),
		obs.Label{Key: "result", Value: "filled"})
	add("simd_peer_fill_total", "peer-fill outcomes, by result", s.peerFallback.Load(),
		obs.Label{Key: "result", Value: "fallback"})
	add("simd_peer_served_total", "forwarded peer requests served as the home node", s.peerServed.Load())
	add("simd_peer_store_errors_total", "peer-fill write-backs that failed to cache", s.peerStoreErrs.Load())
	add("simd_cluster_reloads_total", "membership reloads applied", s.clusterReloads.Load())
	if cs := s.cluster.Load(); cs != nil {
		add("simd_cluster_peers", "current cluster membership size", int64(len(cs.peers)))
	}
	cm := s.opts.Cache.Metrics()
	add("simd_run_cache_hits_total", "run cache lookups served", cm.Hits)
	add("simd_run_cache_misses_total", "run cache lookups missed", cm.Misses)
	add("simd_run_cache_puts_total", "run cache entries stored", cm.Puts)
	ms.Sort()
	return ms
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if err := s.MetricSet().WritePrometheus(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
