package serve

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Peer is one cluster member: a stable name (the ring identity, so a node
// can change address without remapping the keyspace) and its base URL.
type Peer struct {
	Name string `json:"name"`
	URL  string `json:"url"`
}

// Ring is a consistent-hash ring over a peer set: every cell content
// address (experiment.CellAddress) maps to exactly one home peer, and
// adding or removing a peer only remaps the keyspace slice that peer
// owns. Hashing is SHA-256 based — deterministic across processes and
// architectures, so every node of a cluster sharing a membership list
// computes identical homes without coordination.
type Ring struct {
	points []ringPoint
}

// ringPoint is one virtual node: a position on the hash circle owned by
// a peer.
type ringPoint struct {
	hash uint64
	peer string
}

// ringHash maps a string to its position on the circle.
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// NewRing builds a ring with replicas virtual nodes per peer (<=0: 64).
// More replicas smooth the keyspace split at the cost of a larger sorted
// point set; 64 keeps the max/min ownership ratio under ~1.5 for small
// clusters.
func NewRing(peers []Peer, replicas int) *Ring {
	if replicas <= 0 {
		replicas = 64
	}
	r := &Ring{points: make([]ringPoint, 0, len(peers)*replicas)}
	for _, p := range peers {
		for i := 0; i < replicas; i++ {
			r.points = append(r.points, ringPoint{
				hash: ringHash(p.Name + "#" + strconv.Itoa(i)),
				peer: p.Name,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break on peer name so the ring is a pure function of the
		// membership set even in the (cosmologically unlikely) event of a
		// 64-bit point collision.
		return r.points[i].peer < r.points[j].peer
	})
	return r
}

// Home returns the name of the peer owning addr: the first ring point at
// or clockwise-after the address's hash. An empty ring homes nothing ("").
func (r *Ring) Home(addr string) string {
	if r == nil || len(r.points) == 0 {
		return ""
	}
	h := ringHash(addr)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap around the circle
	}
	return r.points[i].peer
}

// ParsePeers reads a membership list: one "name url" pair per line,
// whitespace-separated, with blank lines and #-comments ignored. Names
// must be unique — they are ring identities and metric labels.
func ParsePeers(r io.Reader) ([]Peer, error) {
	var peers []Peer
	seen := make(map[string]bool)
	sc := bufio.NewScanner(r)
	for line := 1; sc.Scan(); line++ {
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("serve: peers line %d: want \"name url\", got %q", line, text)
		}
		name, url := fields[0], fields[1]
		if seen[name] {
			return nil, fmt.Errorf("serve: peers line %d: duplicate peer %q", line, name)
		}
		seen[name] = true
		peers = append(peers, Peer{Name: name, URL: url})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("serve: reading peers: %w", err)
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("serve: peers list is empty")
	}
	return peers, nil
}

// LoadPeers reads a membership file in the ParsePeers format.
func LoadPeers(path string) ([]Peer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("serve: opening peers file: %w", err)
	}
	defer f.Close()
	peers, err := ParsePeers(f)
	if err != nil {
		return nil, fmt.Errorf("serve: %s: %w", path, err)
	}
	return peers, nil
}
