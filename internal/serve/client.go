package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"frontsim/internal/obs"
	"frontsim/internal/xrand"
)

// Client is a retrying client for the simd service. Retryable responses —
// 429 (queue full), 503 (draining or restarting) and transport errors —
// are retried with jittered exponential backoff; a Retry-After header
// overrides the computed backoff. Terminal statuses (4xx other than 429,
// 504) surface immediately as *StatusError.
type Client struct {
	// BaseURL is the service root, e.g. "http://127.0.0.1:8091".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// MaxAttempts bounds tries per request (<=0: 6).
	MaxAttempts int
	// BaseBackoff seeds the exponential schedule (<=0: 100ms). Attempt i
	// waits BaseBackoff·2^i, half of it jittered, capped at MaxBackoff.
	BaseBackoff time.Duration
	// MaxBackoff caps a single wait (<=0: 5s).
	MaxBackoff time.Duration
	// Seed makes the jitter sequence reproducible (0: a fixed default).
	Seed uint64
	// Headers is added to every request — how a cluster node marks its
	// peer-fill probes with X-Simd-Peer.
	Headers http.Header

	mu  sync.Mutex
	rng *xrand.Rand
}

// StatusError is a non-retryable (or retries-exhausted) HTTP failure.
type StatusError struct {
	Status int
	Body   string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("serve: HTTP %d: %s", e.Status, e.Body)
}

// Cell requests one simulation cell.
func (c *Client) Cell(ctx context.Context, req CellRequest) (CellResponse, error) {
	var resp CellResponse
	err := c.do(ctx, "/v1/cell", req, &resp)
	return resp, err
}

// Suite requests a grid of cells.
func (c *Client) Suite(ctx context.Context, req SuiteRequest) (SuiteResponse, error) {
	var resp SuiteResponse
	err := c.do(ctx, "/v1/suite", req, &resp)
	return resp, err
}

// Metrics fetches the Prometheus exposition text.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	b, err := c.get(ctx, "/metrics")
	return string(b), err
}

// MetricsJSON fetches and decodes the canonical metric set — the scrape
// the cluster rollup aggregates.
func (c *Client) MetricsJSON(ctx context.Context) (obs.MetricSet, error) {
	b, err := c.get(ctx, "/metrics.json")
	if err != nil {
		return nil, err
	}
	var ms obs.MetricSet
	if err := json.Unmarshal(b, &ms); err != nil {
		return nil, fmt.Errorf("serve: decoding metrics.json: %w", err)
	}
	return ms, nil
}

// get performs a single (non-retried) GET of path.
func (c *Client) get(ctx context.Context, path string) ([]byte, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return nil, err
	}
	c.applyHeaders(hreq)
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	res, err := hc.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer res.Body.Close()
	b, err := io.ReadAll(res.Body)
	if err != nil {
		return nil, err
	}
	if res.StatusCode != http.StatusOK {
		return nil, &StatusError{Status: res.StatusCode, Body: string(b)}
	}
	return b, nil
}

// applyHeaders copies the client's fixed headers onto req.
func (c *Client) applyHeaders(req *http.Request) {
	for k, vs := range c.Headers {
		for _, v := range vs {
			req.Header.Set(k, v)
		}
	}
}

// do POSTs body to path, retrying per the client's policy, and decodes
// the success payload into out.
func (c *Client) do(ctx context.Context, path string, body, out any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	attempts := c.MaxAttempts
	if attempts <= 0 {
		attempts = 6
	}
	var last error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			d := c.backoff(i-1, last)
			// Never sleep past the request's own deadline: a backoff longer
			// than the remaining budget would burn it entirely and turn a
			// still-winnable final attempt into a guaranteed
			// context.DeadlineExceeded. Cap the wait below the remainder,
			// keeping a slice of the budget for the attempt itself.
			if dl, ok := ctx.Deadline(); ok {
				if remain := time.Until(dl); d > remain {
					d = remain - remain/8
					if d < 0 {
						d = 0
					}
				}
			}
			if err := c.sleep(ctx, d); err != nil {
				return err
			}
		}
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
			c.BaseURL+path, bytes.NewReader(payload))
		if err != nil {
			return err
		}
		hreq.Header.Set("Content-Type", "application/json")
		c.applyHeaders(hreq)
		res, err := hc.Do(hreq)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			last = err
			continue
		}
		b, err := io.ReadAll(res.Body)
		res.Body.Close()
		if err != nil {
			last = err
			continue
		}
		switch {
		case res.StatusCode == http.StatusOK:
			return json.Unmarshal(b, out)
		case res.StatusCode == http.StatusTooManyRequests,
			res.StatusCode == http.StatusServiceUnavailable:
			last = &retryableError{
				err:        &StatusError{Status: res.StatusCode, Body: errText(b)},
				retryAfter: parseRetryAfter(res.Header.Get("Retry-After")),
			}
		default:
			return &StatusError{Status: res.StatusCode, Body: errText(b)}
		}
	}
	var re *retryableError
	if errors.As(last, &re) {
		return re.err
	}
	return fmt.Errorf("serve: %d attempts failed, last: %w", attempts, last)
}

// retryableError remembers the server's Retry-After hint across the loop.
type retryableError struct {
	err        error
	retryAfter time.Duration
}

func (e *retryableError) Error() string { return e.err.Error() }
func (e *retryableError) Unwrap() error { return e.err }

// backoff computes the wait before retry attempt i (0-based): the
// exponential schedule with the upper half jittered, unless the failed
// response carried a Retry-After, which wins.
func (c *Client) backoff(i int, last error) time.Duration {
	var re *retryableError
	if errors.As(last, &re) && re.retryAfter > 0 {
		return re.retryAfter
	}
	base := c.BaseBackoff
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	maxB := c.MaxBackoff
	if maxB <= 0 {
		maxB = 5 * time.Second
	}
	d := base << uint(i)
	if d <= 0 || d > maxB {
		d = maxB
	}
	half := int(d / 2)
	c.mu.Lock()
	if c.rng == nil {
		seed := c.Seed
		if seed == 0 {
			seed = 0x5e17e_c11e47
		}
		c.rng = xrand.New(seed)
	}
	j := c.rng.Intn(half + 1)
	c.mu.Unlock()
	return d/2 + time.Duration(j)
}

func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// maxRetryAfter clamps absurd server hints: a Retry-After pointing
// minutes or hours out (typo'd seconds, skewed clock behind an HTTP
// date) must not park the client longer than its own backoff ceiling
// plausibly would.
const maxRetryAfter = 5 * time.Minute

// parseRetryAfter reads both RFC 9110 forms of Retry-After — delay
// seconds and HTTP-date — clamping negative (past dates, negative
// seconds) to 0 and absurdly large hints to maxRetryAfter. 0 means "no
// usable hint": the caller falls back to computed backoff.
func parseRetryAfter(v string) time.Duration {
	v = strings.TrimSpace(v)
	if v == "" {
		return 0
	}
	var d time.Duration
	if secs, err := strconv.Atoi(v); err == nil {
		d = time.Duration(secs) * time.Second
	} else if at, err := http.ParseTime(v); err == nil {
		d = time.Until(at)
	} else {
		return 0
	}
	switch {
	case d < 0:
		return 0
	case d > maxRetryAfter:
		return maxRetryAfter
	}
	return d
}

// errText extracts the message from a JSON error body, falling back to
// the raw bytes.
func errText(b []byte) string {
	var eb errorBody
	if json.Unmarshal(b, &eb) == nil && eb.Error != "" {
		return eb.Error
	}
	return string(b)
}
