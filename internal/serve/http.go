package serve

import (
	"context"
	"errors"
	"net"
	"net/http"
	"time"
)

// NewHTTPServer wraps handler in an *http.Server with the hygiene every
// listener in this repo should have: a ReadHeaderTimeout (so an idle
// half-open connection cannot pin a goroutine forever) and a
// WriteTimeout generous enough for a cold simulation cell.
func NewHTTPServer(addr string, handler http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      10 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
}

// ListenAndServe serves srv on ln (which may be nil to listen on
// srv.Addr) until ctx is cancelled, then shuts down gracefully: the
// listener closes immediately, in-flight responses get shutdownTimeout
// to finish, and stragglers are cut off. It returns nil after a clean
// shutdown; real serve failures (port in use, ...) surface as-is. This
// is the single drain path shared by cmd/simd and cmd/experiments —
// service-level draining (Server.Drain) should happen before or
// concurrently with the ctx cancellation that triggers it.
func ListenAndServe(ctx context.Context, srv *http.Server, ln net.Listener, shutdownTimeout time.Duration) error {
	errc := make(chan error, 1)
	go func() {
		if ln != nil {
			errc <- srv.Serve(ln)
			return
		}
		errc <- srv.ListenAndServe()
	}()
	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
	}
	// ctx is already done here — deriving the shutdown deadline from it
	// directly would expire immediately — so detach its cancellation but
	// keep its values, and bound the shutdown with a fresh timeout.
	sctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), shutdownTimeout)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		_ = srv.Close()
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
