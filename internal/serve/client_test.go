package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestClientRetriesUntilSuccess pins the retry loop: 429 and 503 are
// retried (with backoff) until the server recovers, then the decoded
// response comes back.
func TestClientRetriesUntilSuccess(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			w.Header().Set("Retry-After", "0")
			http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
		case 2:
			http.Error(w, `{"error":"draining"}`, http.StatusServiceUnavailable)
		default:
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(CellResponse{Workload: "w", Fingerprint: "fp"})
		}
	}))
	defer ts.Close()

	c := &Client{BaseURL: ts.URL, MaxAttempts: 5, BaseBackoff: time.Millisecond, Seed: 1}
	resp, err := c.Cell(context.Background(), CellRequest{Workload: "w"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Fingerprint != "fp" {
		t.Fatalf("fingerprint %q, want fp", resp.Fingerprint)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3", got)
	}
}

// TestClientExhaustsRetries pins that a persistently overloaded server
// eventually surfaces the 429 as a StatusError.
func TestClientExhaustsRetries(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
	}))
	defer ts.Close()

	c := &Client{BaseURL: ts.URL, MaxAttempts: 3, BaseBackoff: time.Millisecond, Seed: 1}
	_, err := c.Cell(context.Background(), CellRequest{Workload: "w"})
	var se *StatusError
	if !errors.As(err, &se) || se.Status != http.StatusTooManyRequests {
		t.Fatalf("err = %v, want StatusError 429", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3", got)
	}
}

// TestClientTerminalStatus pins that non-retryable statuses fail fast.
func TestClientTerminalStatus(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"unknown workload"}`, http.StatusBadRequest)
	}))
	defer ts.Close()

	c := &Client{BaseURL: ts.URL, MaxAttempts: 5, BaseBackoff: time.Millisecond, Seed: 1}
	_, err := c.Cell(context.Background(), CellRequest{Workload: "nope"})
	var se *StatusError
	if !errors.As(err, &se) || se.Status != http.StatusBadRequest {
		t.Fatalf("err = %v, want StatusError 400", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("terminal status retried: %d calls", got)
	}
}

// TestBackoffHonorsRetryAfter pins the schedule arithmetic directly: a
// Retry-After hint overrides the exponential wait; without one the wait
// is the jittered exponential, capped at MaxBackoff.
func TestBackoffHonorsRetryAfter(t *testing.T) {
	c := &Client{BaseBackoff: 100 * time.Millisecond, MaxBackoff: time.Second, Seed: 7}
	hinted := &retryableError{err: errors.New("429"), retryAfter: 7 * time.Second}
	if got := c.backoff(0, hinted); got != 7*time.Second {
		t.Fatalf("backoff with Retry-After = %v, want 7s", got)
	}
	for i := 0; i < 10; i++ {
		d := c.backoff(i, errors.New("transport"))
		lo := 50 * time.Millisecond << uint(i)
		hi := 2 * lo
		if hi > time.Second || hi <= 0 {
			hi = time.Second
			lo = hi / 2
		}
		if d < lo || d > hi {
			t.Fatalf("backoff(%d) = %v, want in [%v, %v]", i, d, lo, hi)
		}
	}
}

// TestParseRetryAfter covers both RFC 9110 forms of Retry-After. The
// HTTP-date form is the regression half: the parser used to accept only
// delay-seconds, so a date-form hint silently became "no hint" and the
// client fell back to its computed backoff.
func TestParseRetryAfter(t *testing.T) {
	// Delay-seconds form: parsed, negatives zeroed, absurd hints clamped.
	cases := map[string]time.Duration{
		"":       0,
		"0":      0,
		"3":      3 * time.Second,
		" 3 ":    3 * time.Second,
		"-1":     0,
		"999999": maxRetryAfter,
		"soon":   0,
	}
	for in, want := range cases {
		if got := parseRetryAfter(in); got != want {
			t.Fatalf("parseRetryAfter(%q) = %v, want %v", in, got, want)
		}
	}

	// HTTP-date form: a near-future date yields roughly the remaining
	// wait; past dates clamp to 0; far-future dates clamp to the ceiling;
	// garbage dates mean "no hint".
	httpDate := func(d time.Duration) string {
		return time.Now().Add(d).UTC().Format(http.TimeFormat)
	}
	if got := parseRetryAfter(httpDate(3 * time.Second)); got <= time.Second || got > 3*time.Second {
		t.Fatalf("parseRetryAfter(+3s date) = %v, want in (1s, 3s]", got)
	}
	if got := parseRetryAfter(httpDate(-time.Hour)); got != 0 {
		t.Fatalf("parseRetryAfter(past date) = %v, want 0", got)
	}
	if got := parseRetryAfter(httpDate(48 * time.Hour)); got != maxRetryAfter {
		t.Fatalf("parseRetryAfter(+48h date) = %v, want clamp to %v", got, maxRetryAfter)
	}
	if got := parseRetryAfter("Mon, 99 Foo 2026 99:99:99 GMT"); got != 0 {
		t.Fatalf("parseRetryAfter(garbage date) = %v, want 0", got)
	}
}

// TestBackoffCappedByDeadline is the regression test for backoff sleeps
// outliving the request deadline: with BaseBackoff far beyond the ctx
// budget, the wait before the final attempt used to burn the entire
// remaining time and surface context.DeadlineExceeded even though the
// server had already recovered. The capped sleep must leave room for the
// retry to land.
func TestBackoffCappedByDeadline(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(CellResponse{Workload: "w", Fingerprint: "fp"})
	}))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 800*time.Millisecond)
	defer cancel()
	// 10s of backoff against an 800ms budget: only the deadline cap can
	// let the second attempt run.
	c := &Client{BaseURL: ts.URL, MaxAttempts: 2, BaseBackoff: 10 * time.Second, Seed: 1}
	resp, err := c.Cell(ctx, CellRequest{Workload: "w"})
	if err != nil {
		t.Fatalf("retry within deadline failed: %v", err)
	}
	if resp.Fingerprint != "fp" {
		t.Fatalf("fingerprint %q, want fp", resp.Fingerprint)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d calls, want 2", got)
	}
}

// TestClientContextCancelled pins that a cancelled context stops the
// retry loop immediately.
func TestClientContextCancelled(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
	}))
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := &Client{BaseURL: ts.URL, MaxAttempts: 5, BaseBackoff: time.Hour, Seed: 1}
	_, err := c.Cell(ctx, CellRequest{Workload: "w"})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
