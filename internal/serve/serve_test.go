package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"frontsim/internal/core"
	"frontsim/internal/experiment"
	"frontsim/internal/runner"
	"frontsim/internal/workload"
)

// testServer builds a Server whose execution seam is stubbed, so
// admission, coalescing and drain behavior are exercised without running
// simulations. The default stubs miss the cache and fail loudly on
// execution; tests override what they need.
func testServer(t *testing.T, opts Options) *Server {
	t.Helper()
	s := New(opts)
	t.Cleanup(s.Close)
	s.probe = func(*preparedCell) (core.Stats, bool, error) { return core.Stats{}, false, nil }
	s.runCell = func(context.Context, *preparedCell) (experiment.CellResult, error) {
		t.Error("runCell called without a test stub")
		return experiment.CellResult{}, errors.New("no stub")
	}
	return s
}

// waitFor polls cond (1ms stride) until it holds or ~5s elapse.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	for i := 0; i < 5000; i++ {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// blockingStub is a runCell stub that parks executions until released,
// returning ctx.Err() if the flight is cancelled first.
type blockingStub struct {
	started atomic.Int64
	release chan struct{}
	result  experiment.CellResult
}

func newBlockingStub(result experiment.CellResult) *blockingStub {
	return &blockingStub{release: make(chan struct{}), result: result}
}

func (b *blockingStub) run(ctx context.Context, _ *preparedCell) (experiment.CellResult, error) {
	b.started.Add(1)
	select {
	case <-b.release:
		return b.result, nil
	case <-ctx.Done():
		return experiment.CellResult{}, ctx.Err()
	}
}

func stubResult(config string, instrs int64) experiment.CellResult {
	return experiment.CellResult{Stats: core.Stats{Config: config, Instructions: instrs}}
}

// TestCoalescingSingleExecution pins the singleflight guarantee: N
// concurrent requests for one cell fingerprint run one simulation, and
// every subscriber receives the identical result.
func TestCoalescingSingleExecution(t *testing.T) {
	s := testServer(t, Options{MaxConcurrent: 4, MaxQueue: 16})
	stub := newBlockingStub(stubResult("stub", 42))
	s.runCell = stub.run
	pc := &preparedCell{addr: "cell-A", series: "fdp24"}

	const n = 8
	var wg sync.WaitGroup
	resps := make([]CellResponse, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resps[i], errs[i] = s.cell(context.Background(), pc)
		}()
	}
	// All n must be attached to the single flight before it completes.
	waitFor(t, "one leader", func() bool { return stub.started.Load() == 1 })
	waitFor(t, "subscribers", func() bool { return s.coalesced.Load() == n-1 })
	close(stub.release)
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if !bytes.Equal(resps[i].Stats, resps[0].Stats) {
			t.Fatalf("request %d got different bytes than request 0", i)
		}
	}
	if got := s.executions.Load(); got != 1 {
		t.Fatalf("executions = %d, want 1", got)
	}
	coal := 0
	for _, r := range resps {
		if r.Coalesced {
			coal++
		}
	}
	if coal != n-1 {
		t.Fatalf("%d responses marked coalesced, want %d", coal, n-1)
	}
}

// postCell fires a /v1/cell request and returns status, Retry-After, body.
func postCell(t *testing.T, url string, req CellRequest) (int, string, []byte) {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	res, err := http.Post(url+"/v1/cell", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return res.StatusCode, res.Header.Get("Retry-After"), body
}

// TestBackpressureQueueFull pins bounded admission: with one execution
// slot and a one-deep wait queue, a third distinct cell is shed with
// 429 + Retry-After instead of queueing, and the admitted two complete.
func TestBackpressureQueueFull(t *testing.T) {
	s := testServer(t, Options{MaxConcurrent: 1, MaxQueue: 1, RetryAfter: 2 * time.Second})
	stub := newBlockingStub(stubResult("stub", 7))
	s.runCell = stub.run
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	names := workload.Names()
	type reply struct {
		status int
		body   []byte
	}
	replies := make(chan reply, 2)
	for i := 0; i < 2; i++ {
		go func() {
			st, _, body := postCell(t, ts.URL, CellRequest{Workload: names[i]})
			replies <- reply{st, body}
		}()
	}
	waitFor(t, "slot occupied", func() bool { return stub.started.Load() == 1 })
	waitFor(t, "one queued", func() bool { return s.waiting.Load() == 1 })

	status, retryAfter, _ := postCell(t, ts.URL, CellRequest{Workload: names[2]})
	if status != http.StatusTooManyRequests {
		t.Fatalf("third cell got %d, want 429", status)
	}
	if retryAfter != "2" {
		t.Fatalf("Retry-After = %q, want \"2\"", retryAfter)
	}
	if got := s.rejectedFull.Load(); got != 1 {
		t.Fatalf("rejectedFull = %d, want 1", got)
	}

	close(stub.release)
	for i := 0; i < 2; i++ {
		r := <-replies
		if r.status != http.StatusOK {
			t.Fatalf("admitted cell got %d: %s", r.status, r.body)
		}
	}
	if got := s.executions.Load(); got != 2 {
		t.Fatalf("executions = %d, want 2", got)
	}
}

// TestQueuedDeadline pins that a request's deadline keeps ticking while
// it waits for a slot: a queued cell whose timeout_ms expires gets 504.
func TestQueuedDeadline(t *testing.T) {
	s := testServer(t, Options{MaxConcurrent: 1, MaxQueue: 4})
	stub := newBlockingStub(stubResult("stub", 7))
	s.runCell = stub.run
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	names := workload.Names()
	done := make(chan int, 1)
	go func() {
		st, _, _ := postCell(t, ts.URL, CellRequest{Workload: names[0]})
		done <- st
	}()
	waitFor(t, "slot occupied", func() bool { return stub.started.Load() == 1 })

	status, _, body := postCell(t, ts.URL, CellRequest{Workload: names[1], TimeoutMs: 50})
	if status != http.StatusGatewayTimeout {
		t.Fatalf("queued cell got %d (%s), want 504", status, body)
	}
	close(stub.release)
	if st := <-done; st != http.StatusOK {
		t.Fatalf("blocking cell got %d, want 200", st)
	}
}

// TestLastSubscriberCancelsExecution pins end-to-end cancellation: when
// every subscriber of a flight abandons it, the execution context is
// cancelled and the in-progress simulation stops.
func TestLastSubscriberCancelsExecution(t *testing.T) {
	s := testServer(t, Options{MaxConcurrent: 2, MaxQueue: 4})
	stub := newBlockingStub(stubResult("stub", 7))
	s.runCell = stub.run
	pc := &preparedCell{addr: "cell-B", series: "fdp24"}

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := s.cell(ctx, pc)
		errc <- err
	}()
	waitFor(t, "execution start", func() bool { return stub.started.Load() == 1 })
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("cell = %v, want context.Canceled", err)
	}
	// The flight must unwind (ctx branch of the stub) without a release.
	waitFor(t, "flight removal", func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return len(s.flight) == 0
	})
	if got := s.cancelledReq.Load(); got != 1 {
		t.Fatalf("cancelledReq = %d, want 1", got)
	}
}

// TestAbandonedFlightNotJoinable is the regression test for a coalescing
// race surfaced by the ctxflow/lockdisc sweep: when the last subscriber
// leaves, awaitFlight cancels the flight, but the dying flight stays in
// the map until its lead goroutine unwinds. A request arriving in that
// window used to coalesce onto it and inherit a spurious context.Canceled
// for a cell that was never doomed. Abandoned flights must not be
// joinable: the late arrival starts a fresh flight and succeeds.
func TestAbandonedFlightNotJoinable(t *testing.T) {
	s := testServer(t, Options{MaxConcurrent: 2, MaxQueue: 4})
	pc := &preparedCell{addr: "cell-R", series: "fdp24"}

	cancelled := make(chan struct{})
	releaseFirst := make(chan struct{})
	var calls atomic.Int64
	s.runCell = func(ctx context.Context, _ *preparedCell) (experiment.CellResult, error) {
		if calls.Add(1) == 1 {
			// First flight: observe the last-out cancel, then keep its lead
			// goroutine (and so its map entry) alive until released.
			<-ctx.Done()
			close(cancelled)
			<-releaseFirst
			return experiment.CellResult{}, ctx.Err()
		}
		return stubResult("fresh", 7), nil
	}

	actx, abandon := context.WithCancel(context.Background())
	aErr := make(chan error, 1)
	go func() {
		_, err := s.cell(actx, pc)
		aErr <- err
	}()
	waitFor(t, "first execution", func() bool { return calls.Load() == 1 })
	abandon()
	if err := <-aErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoning subscriber got %v, want context.Canceled", err)
	}
	<-cancelled // the dying flight is now parked, still occupying the map

	var bResp CellResponse
	bErr := make(chan error, 1)
	go func() {
		var err error
		bResp, err = s.cell(context.Background(), pc)
		bErr <- err
	}()
	// Before the fix this times out: B coalesces onto the dying flight and
	// no second execution ever starts.
	waitFor(t, "fresh flight for the late subscriber", func() bool { return calls.Load() == 2 })
	if err := <-bErr; err != nil {
		t.Fatalf("late subscriber inherited the dying flight: %v", err)
	}
	if bResp.Coalesced {
		t.Error("late subscriber reported Coalesced = true; it must have led a fresh flight")
	}
	if bResp.Config != "fresh" {
		t.Errorf("late subscriber got config %q, want the fresh flight's result", bResp.Config)
	}
	close(releaseFirst)
	waitFor(t, "flight map drained", func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return len(s.flight) == 0
	})
}

// TestDrain pins graceful shutdown: draining rejects new work with
// 503 + Retry-After, flips /healthz, and a drain deadline cancels
// whatever is still executing.
func TestDrain(t *testing.T) {
	s := testServer(t, Options{MaxConcurrent: 2, MaxQueue: 4, RetryAfter: time.Second})
	stub := newBlockingStub(stubResult("stub", 7))
	s.runCell = stub.run
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	names := workload.Names()
	finished := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			st, _, _ := postCell(t, ts.URL, CellRequest{Workload: names[i]})
			finished <- st
		}()
	}
	waitFor(t, "both executing", func() bool { return stub.started.Load() == 2 })

	dctx, dcancel := context.WithCancel(context.Background())
	dcancel() // expired deadline: Drain must cancel the in-flight cells
	if err := s.Drain(dctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Drain = %v, want context.Canceled", err)
	}
	for i := 0; i < 2; i++ {
		if st := <-finished; st == http.StatusOK {
			t.Fatal("cancelled cell reported 200")
		}
	}

	status, retryAfter, _ := postCell(t, ts.URL, CellRequest{Workload: names[0]})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("post-drain cell got %d, want 503", status)
	}
	if retryAfter == "" {
		t.Fatal("post-drain 503 lacks Retry-After")
	}
	hres, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hres.Body.Close()
	if hres.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining /healthz = %d, want 503", hres.StatusCode)
	}
}

// TestDrainReleasesQueued is the regression test for queued work hanging
// across a drain: a request parked in the admission queue (slot taken,
// queue not full) used to stay parked until its own deadline when Drain
// began. It must instead resolve with a deterministic 503 + Retry-After
// the moment the drain starts, while the executing cell is allowed to
// finish normally.
func TestDrainReleasesQueued(t *testing.T) {
	s := testServer(t, Options{MaxConcurrent: 1, MaxQueue: 4, RetryAfter: 3 * time.Second})
	stub := newBlockingStub(stubResult("stub", 7))
	s.runCell = stub.run
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	names := workload.Names()
	executing := make(chan int, 1)
	go func() {
		st, _, _ := postCell(t, ts.URL, CellRequest{Workload: names[0]})
		executing <- st
	}()
	waitFor(t, "slot occupied", func() bool { return stub.started.Load() == 1 })

	type reply struct {
		status     int
		retryAfter string
	}
	queued := make(chan reply, 1)
	go func() {
		st, ra, _ := postCell(t, ts.URL, CellRequest{Workload: names[1]})
		queued <- reply{st, ra}
	}()
	waitFor(t, "one queued", func() bool { return s.waiting.Load() == 1 })

	drainErr := make(chan error, 1)
	go func() { drainErr <- s.Drain(context.Background()) }()

	// The queued request must get its 503 promptly — the executing cell is
	// still blocked, so only the drain wake-up can have resolved it.
	select {
	case r := <-queued:
		if r.status != http.StatusServiceUnavailable {
			t.Fatalf("queued cell got %d during drain, want 503", r.status)
		}
		if r.retryAfter != "3" {
			t.Fatalf("queued 503 Retry-After = %q, want \"3\"", r.retryAfter)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued request still parked after drain began")
	}
	if got := s.rejectedDrai.Load(); got != 1 {
		t.Fatalf("rejectedDrai = %d, want 1", got)
	}

	// The admitted cell finishes normally and the drain completes clean.
	close(stub.release)
	if st := <-executing; st != http.StatusOK {
		t.Fatalf("executing cell got %d, want 200", st)
	}
	if err := <-drainErr; err != nil {
		t.Fatalf("Drain = %v, want nil", err)
	}
	if got := s.executions.Load(); got != 1 {
		t.Fatalf("executions = %d, want 1 (queued cell must not have run)", got)
	}
}

// TestDrainClean pins the happy path: with nothing in flight, Drain
// returns nil immediately.
func TestDrainClean(t *testing.T) {
	s := testServer(t, Options{})
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("Drain = %v, want nil", err)
	}
}

// TestCacheHitBypassesAdmission pins the warm fast path: a cached cell is
// answered even when every execution slot is taken, without executing.
func TestCacheHitBypassesAdmission(t *testing.T) {
	s := testServer(t, Options{MaxConcurrent: 1, MaxQueue: 1})
	warm := core.Stats{Config: "warm", Instructions: 99}
	s.probe = func(*preparedCell) (core.Stats, bool, error) { return warm, true, nil }
	s.slots <- struct{}{} // all slots taken

	resp, err := s.cell(context.Background(), &preparedCell{addr: "cell-C", series: "fdp24"})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Cached {
		t.Fatal("warm cell not marked cached")
	}
	want, err := warm.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp.Stats, want) {
		t.Fatalf("cached stats bytes differ:\ngot:  %s\nwant: %s", resp.Stats, want)
	}
	if s.cacheHits.Load() != 1 || s.executions.Load() != 0 {
		t.Fatalf("hits %d executions %d, want 1 and 0", s.cacheHits.Load(), s.executions.Load())
	}
}

// TestPrepare covers request resolution: defaults, ablation sugar, the
// ablation↔sweep cache-identity contract, and rejection of nonsense.
func TestPrepare(t *testing.T) {
	s := testServer(t, Options{})
	name := workload.Names()[0]

	pc, err := s.prepare(CellRequest{Workload: name})
	if err != nil {
		t.Fatal(err)
	}
	if pc.series != "fdp24" || pc.addr == "" {
		t.Fatalf("default cell: series %q addr %q", pc.series, pc.addr)
	}

	pc, err = s.prepare(CellRequest{Workload: name, Ablation: "ftq4"})
	if err != nil {
		t.Fatal(err)
	}
	if pc.series != "" || pc.config.Name != "ftq4" || pc.config.Frontend.FTQEntries != 4 {
		t.Fatalf("ftq4 cell: series %q config %+v", pc.series, pc.config)
	}
	// The override cell must be addressed exactly as an FTQ-depth
	// ablation sweep addresses the same machine.
	addr, err := experiment.ConfigCellAddress(pc.spec, pc.config, pc.params)
	if err != nil {
		t.Fatal(err)
	}
	if pc.addr != addr {
		t.Fatalf("ftq4 address %s != sweep-identity address %s", pc.addr, addr)
	}

	pc, err = s.prepare(CellRequest{Workload: name, Ablation: "eip"})
	if err != nil {
		t.Fatal(err)
	}
	if pc.series != "eip+fdp24" {
		t.Fatalf("eip ablation resolved to series %q, want eip+fdp24", pc.series)
	}

	if _, err := s.prepare(CellRequest{Workload: "no-such-workload"}); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, err := s.prepare(CellRequest{Workload: name, Ablation: "warp-drive"}); err == nil {
		t.Fatal("unknown ablation accepted")
	}
	if _, err := s.prepare(CellRequest{Workload: name, Series: "cons", FTQ: 8}); err == nil {
		t.Fatal("series+override conflict accepted")
	}
	if _, err := s.prepare(CellRequest{Workload: name, Series: "not-a-series"}); err == nil {
		t.Fatal("unknown series accepted")
	}
}

// TestServedCellMatchesExperiment is the end-to-end byte-identity pin: a
// cell served over HTTP (real execution, no stubs) is byte-identical to
// the same cell produced directly by the experiment harness, the repeat
// request is a cache hit with identical bytes, and /metrics reflects all
// of it.
func TestServedCellMatchesExperiment(t *testing.T) {
	p := experiment.DefaultParams()
	p.WarmupInstrs = 20_000
	p.MeasureInstrs = 60_000
	p.ProfileInstrs = 80_000
	cache, err := runner.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := New(Options{Params: p, Cache: cache, Workers: 2, MaxConcurrent: 2, MaxQueue: 4})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := workload.All()[0]
	req := CellRequest{Workload: spec.Name, Series: "fdp24"}

	status, _, body := postCell(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("cold cell got %d: %s", status, body)
	}
	var cold CellResponse
	if err := json.Unmarshal(body, &cold); err != nil {
		t.Fatal(err)
	}
	if cold.Cached {
		t.Fatal("cold cell reported cached")
	}

	// Reference: the same cell via the experiment harness, its own cache.
	ref := p
	ref.Cache, err = runner.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	pool := runner.NewPool(2)
	defer pool.Close()
	direct, err := experiment.RunCellCtx(context.Background(), pool, spec, "fdp24", ref)
	if err != nil {
		t.Fatal(err)
	}
	want, err := direct.Stats.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cold.Stats, want) {
		t.Fatalf("served cell diverged from experiment harness:\nserved: %s\ndirect: %s", cold.Stats, want)
	}
	if cold.Fingerprint != direct.Fingerprint {
		t.Fatalf("served fingerprint %s != direct %s", cold.Fingerprint, direct.Fingerprint)
	}

	// Repeat: answered from the cache, byte-identical.
	status, _, body = postCell(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("warm cell got %d: %s", status, body)
	}
	var warm CellResponse
	if err := json.Unmarshal(body, &warm); err != nil {
		t.Fatal(err)
	}
	if !warm.Cached {
		t.Fatal("repeat request missed the cache")
	}
	if !bytes.Equal(warm.Stats, cold.Stats) {
		t.Fatal("warm and cold bytes differ")
	}

	mres, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, err := io.ReadAll(mres.Body)
	mres.Body.Close()
	metrics := string(mb)
	for _, want := range []string{
		`simd_cells_total{source="cache"} 1`,
		`simd_requests_total 2`,
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics lack %q:\n%s", want, metrics)
		}
	}

	wres, err := http.Get(ts.URL + "/v1/workloads")
	if err != nil {
		t.Fatal(err)
	}
	defer wres.Body.Close()
	var wl struct {
		Workloads []string `json:"workloads"`
		Series    []string `json:"series"`
	}
	if err := json.NewDecoder(wres.Body).Decode(&wl); err != nil {
		t.Fatal(err)
	}
	if len(wl.Workloads) == 0 || len(wl.Series) != len(experiment.SeriesLabels()) {
		t.Fatalf("workloads endpoint: %d workloads, %d series", len(wl.Workloads), len(wl.Series))
	}
}

// TestSuiteEndpoint drives /v1/suite over stubbed execution: request
// order is preserved and duplicate cells coalesce.
func TestSuiteEndpoint(t *testing.T) {
	s := testServer(t, Options{MaxConcurrent: 2, MaxQueue: 16})
	var n atomic.Int64
	s.runCell = func(_ context.Context, pc *preparedCell) (experiment.CellResult, error) {
		n.Add(1)
		return stubResult(pc.series, int64(len(pc.spec.Name))), nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	names := workload.Names()[:3]
	b, err := json.Marshal(SuiteRequest{Workloads: names, Series: []string{"fdp24", "cons"}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := http.Post(ts.URL+"/v1/suite", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(res.Body)
		t.Fatalf("suite got %d: %s", res.StatusCode, body)
	}
	var sr SuiteResponse
	if err := json.NewDecoder(res.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Cells) != 6 {
		t.Fatalf("suite returned %d cells, want 6", len(sr.Cells))
	}
	for i, cell := range sr.Cells {
		wantWL, wantSeries := names[i/2], []string{"fdp24", "cons"}[i%2]
		if cell.Workload != wantWL || cell.Series != wantSeries {
			t.Fatalf("cell %d is %s/%s, want %s/%s", i, cell.Workload, cell.Series, wantWL, wantSeries)
		}
	}
	if got := n.Load(); got != 6 {
		t.Fatalf("suite executed %d cells, want 6", got)
	}
}

// TestServedCellSampling pins the sampled run mode over HTTP with real
// execution: a cell requested with sampling geometry reports ipc_ci95
// and sampling_windows, addresses a cache identity disjoint from the
// exact cell's, and an invalid geometry is rejected with 400 before
// anything executes.
func TestServedCellSampling(t *testing.T) {
	p := experiment.DefaultParams()
	p.WarmupInstrs = 20_000
	p.MeasureInstrs = 300_000
	p.ProfileInstrs = 80_000
	cache, err := runner.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := New(Options{Params: p, Cache: cache, Workers: 2, MaxConcurrent: 2, MaxQueue: 4})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := workload.All()[0]
	exactReq := CellRequest{Workload: spec.Name, Series: "fdp24"}
	sampReq := CellRequest{Workload: spec.Name, Series: "fdp24",
		SamplingInterval: 30_000, SamplingDetail: 3_000, SamplingWarm: 6_000}

	status, _, body := postCell(t, ts.URL, exactReq)
	if status != http.StatusOK {
		t.Fatalf("exact cell got %d: %s", status, body)
	}
	var exact CellResponse
	if err := json.Unmarshal(body, &exact); err != nil {
		t.Fatal(err)
	}
	if exact.IPCCI95 != 0 || exact.SamplingWindows != 0 {
		t.Fatalf("exact cell reported sampling fields: %+v", exact)
	}

	status, _, body = postCell(t, ts.URL, sampReq)
	if status != http.StatusOK {
		t.Fatalf("sampled cell got %d: %s", status, body)
	}
	var samp CellResponse
	if err := json.Unmarshal(body, &samp); err != nil {
		t.Fatal(err)
	}
	if samp.SamplingWindows == 0 || samp.IPCCI95 <= 0 {
		t.Fatalf("sampled cell lacks sampling fields: %+v", samp)
	}
	if samp.Fingerprint == exact.Fingerprint {
		t.Fatalf("sampled and exact cells share cache identity %s", samp.Fingerprint)
	}
	if samp.IPC <= 0 {
		t.Fatalf("sampled IPC %v", samp.IPC)
	}

	// Geometry where warm+detail exceeds the interval: rejected up front.
	bad := CellRequest{Workload: spec.Name, Series: "fdp24",
		SamplingInterval: 5_000, SamplingDetail: 3_000, SamplingWarm: 6_000}
	status, _, body = postCell(t, ts.URL, bad)
	if status != http.StatusBadRequest {
		t.Fatalf("invalid sampling geometry got %d: %s", status, body)
	}
	if got := s.executions.Load(); got != 2 {
		t.Fatalf("executions = %d, want 2 (bad request must not run)", got)
	}
}
