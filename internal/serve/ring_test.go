package serve

import (
	"fmt"
	"strings"
	"testing"
)

func testPeers(n int) []Peer {
	peers := make([]Peer, n)
	for i := range peers {
		peers[i] = Peer{Name: fmt.Sprintf("node-%c", 'a'+i), URL: fmt.Sprintf("http://127.0.0.1:%d", 18000+i)}
	}
	return peers
}

// TestRingDeterministic pins that the ring is a pure function of the
// membership set: two independently built rings home every address
// identically — the property that lets N nodes agree without
// coordination.
func TestRingDeterministic(t *testing.T) {
	peers := testPeers(3)
	r1 := NewRing(peers, 64)
	// Reversed insertion order must not matter.
	rev := []Peer{peers[2], peers[1], peers[0]}
	r2 := NewRing(rev, 64)
	for i := 0; i < 500; i++ {
		addr := fmt.Sprintf("fingerprint-%d", i)
		h1, h2 := r1.Home(addr), r2.Home(addr)
		if h1 != h2 {
			t.Fatalf("addr %q homes differ: %q vs %q", addr, h1, h2)
		}
		if h1 == "" {
			t.Fatalf("addr %q homed nowhere", addr)
		}
	}
}

// TestRingBalance pins that 64 replicas split the keyspace without
// pathological skew: across 3 nodes and 3000 addresses every node owns
// at least 15% of the keys.
func TestRingBalance(t *testing.T) {
	r := NewRing(testPeers(3), 64)
	counts := make(map[string]int)
	for i := 0; i < 3000; i++ {
		counts[r.Home(fmt.Sprintf("fingerprint-%d", i))]++
	}
	if len(counts) != 3 {
		t.Fatalf("only %d of 3 nodes own keys: %v", len(counts), counts)
	}
	for node, n := range counts {
		if n < 3000*15/100 {
			t.Fatalf("node %s owns only %d/3000 keys: %v", node, n, counts)
		}
	}
}

// TestRingConsistency pins the consistent-hashing property the reload
// semantics rely on: removing one peer only remaps the keys that peer
// owned — every other key keeps its home.
func TestRingConsistency(t *testing.T) {
	peers := testPeers(4)
	full := NewRing(peers, 64)
	shrunk := NewRing(peers[:3], 64)
	moved := 0
	for i := 0; i < 2000; i++ {
		addr := fmt.Sprintf("fingerprint-%d", i)
		before, after := full.Home(addr), shrunk.Home(addr)
		if before == peers[3].Name {
			moved++
			continue // this key's owner left; it must remap somewhere
		}
		if before != after {
			t.Fatalf("addr %q moved %q → %q though its owner stayed", addr, before, after)
		}
	}
	if moved == 0 {
		t.Fatal("removed peer owned zero keys; balance test should have caught this")
	}
}

// TestRingEmpty pins the degenerate cases.
func TestRingEmpty(t *testing.T) {
	if h := (&Ring{}).Home("x"); h != "" {
		t.Fatalf("empty ring homed %q", h)
	}
	var nilRing *Ring
	if h := nilRing.Home("x"); h != "" {
		t.Fatalf("nil ring homed %q", h)
	}
}

// TestParsePeers covers the membership file format.
func TestParsePeers(t *testing.T) {
	peers, err := ParsePeers(strings.NewReader(`
# cluster membership
node-a http://127.0.0.1:18091

node-b http://127.0.0.1:18092
node-c http://127.0.0.1:18093
`))
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 3 || peers[0].Name != "node-a" || peers[2].URL != "http://127.0.0.1:18093" {
		t.Fatalf("parsed %+v", peers)
	}

	for name, bad := range map[string]string{
		"malformed": "node-a\n",
		"duplicate": "node-a http://x\nnode-a http://y\n",
		"empty":     "# nothing\n",
	} {
		if _, err := ParsePeers(strings.NewReader(bad)); err == nil {
			t.Fatalf("%s peers list accepted", name)
		}
	}
}
