// Package preload prototypes the first of the paper's §VI proposals:
// metadata preloading. Instead of inserting prefetch instructions into the
// instruction stream (paying fetch/decode bandwidth and shifting cache
// lines), the AsmDB plan is compiled into prefetch metadata carried with
// the binary and preloaded into a dedicated structure next to the LLC when
// the application starts. A small L1-side metadata cache is checked on
// every L1-I access; on a metadata miss, the entry is requested from the
// LLC-side store with LLC-like latency and installs for future use.
//
// The prototype implements the frontend.InstrPrefetcher hook, so it drops
// into any simulator configuration in place of (not alongside) the
// inserted-instruction mechanism.
package preload

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"

	"frontsim/internal/asmdb"
	"frontsim/internal/cache"
	"frontsim/internal/isa"
)

// Config sizes the metadata hierarchy.
type Config struct {
	// L1Entries is the trigger-line capacity of the L1-side metadata
	// cache (direct mapped).
	L1Entries int
	// FillLatency is the cycles from a metadata miss to the entry being
	// usable (the LLC-side store round trip).
	FillLatency cache.Cycle
	// MaxTargetsPerLine bounds targets stored per trigger line.
	MaxTargetsPerLine int
}

// DefaultConfig mirrors a small dedicated SRAM next to the L1-I.
func DefaultConfig() Config {
	return Config{L1Entries: 512, FillLatency: 40, MaxTargetsPerLine: 4}
}

// Validate checks parameters.
func (c Config) Validate() error {
	if c.L1Entries <= 0 || c.L1Entries&(c.L1Entries-1) != 0 {
		return fmt.Errorf("preload: L1Entries %d must be a positive power of two", c.L1Entries)
	}
	if c.FillLatency < 0 || c.MaxTargetsPerLine <= 0 {
		return fmt.Errorf("preload: invalid parameters %+v", c)
	}
	return nil
}

type l1Entry struct {
	line    isa.Addr
	valid   bool
	readyAt cache.Cycle // fill completion after a metadata miss
	targets []isa.Addr
}

// Stats counts the preloader's behaviour.
type Stats struct {
	Lookups        int64
	L1Hits         int64
	MetadataMisses int64 // trigger present in the store but not L1-cached
	Prefetches     int64
}

// Preloader is the metadata-driven prefetch engine.
type Preloader struct {
	cfg Config
	// store is the full LLC-side metadata table: trigger line -> targets.
	store map[isa.Addr][]isa.Addr
	l1    []l1Entry

	stats Stats
}

// New builds a preloader whose store is compiled from an AsmDB plan: each
// insertion's site block maps to its target lines, keyed by the site's
// cache line (hardware observes line-granular fetches).
func New(cfg Config, plan *asmdb.Plan) (*Preloader, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Preloader{
		cfg:   cfg,
		store: make(map[isa.Addr][]isa.Addr),
		l1:    make([]l1Entry, cfg.L1Entries),
	}
	for _, ins := range plan.Insertions {
		line := ins.Site.Line()
		targets := p.store[line]
		targetLine := ins.Target.Line()
		if len(targets) < cfg.MaxTargetsPerLine && !contains(targets, targetLine) {
			p.store[line] = append(targets, targetLine)
		}
	}
	return p, nil
}

// StoreEntries returns the number of trigger lines in the metadata store
// (the binary's metadata section size, in entries).
func (p *Preloader) StoreEntries() int { return len(p.store) }

// Stats returns a snapshot of counters.
func (p *Preloader) Stats() Stats { return p.stats }

func (p *Preloader) slot(line isa.Addr) *l1Entry {
	return &p.l1[line.LineIndex()&uint64(p.cfg.L1Entries-1)]
}

// OnFetch implements frontend.InstrPrefetcher: every demand L1-I access
// checks the metadata hierarchy; hits issue the stored prefetches, misses
// schedule a metadata fill.
func (p *Preloader) OnFetch(line isa.Addr, now cache.Cycle, hit bool, issue func(isa.Addr)) {
	line = line.Line()
	p.stats.Lookups++
	e := p.slot(line)
	if e.valid && e.line == line {
		if now < e.readyAt {
			// Metadata still in flight from the LLC store.
			return
		}
		p.stats.L1Hits++
		for _, t := range e.targets {
			issue(t)
			p.stats.Prefetches++
		}
		return
	}
	targets, ok := p.store[line]
	if !ok {
		return
	}
	// Metadata miss: request the entry from the LLC-side store; it becomes
	// usable after the fill latency.
	p.stats.MetadataMisses++
	*e = l1Entry{line: line, valid: true, readyAt: now + p.cfg.FillLatency, targets: targets}
}

func contains(xs []isa.Addr, a isa.Addr) bool {
	for _, x := range xs {
		if x == a {
			return true
		}
	}
	return false
}

// PrefetchFingerprint implements core.PrefetchFingerprinter: the identity
// of a preloader is its configuration plus the compiled metadata store
// (site-sorted so map iteration order cannot leak into the hash).
func (p *Preloader) PrefetchFingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "preload.Config{L1Entries:%d,FillLatency:%d,MaxTargetsPerLine:%d}",
		p.cfg.L1Entries, p.cfg.FillLatency, p.cfg.MaxTargetsPerLine)
	sites := make([]isa.Addr, 0, len(p.store))
	for site := range p.store {
		sites = append(sites, site)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
	for _, site := range sites {
		fmt.Fprintf(h, ";%d:%v", site, p.store[site])
	}
	return "preload:" + hex.EncodeToString(h.Sum(nil))
}
