package preload

import (
	"testing"

	"frontsim/internal/asmdb"
	"frontsim/internal/isa"
)

func testPlan() *asmdb.Plan {
	return &asmdb.Plan{
		Insertions: []asmdb.Insertion{
			{Site: 0x1008, Target: 0x9000},
			{Site: 0x1010, Target: 0xa040}, // same trigger line as 0x1008
			{Site: 0x5000, Target: 0xb000},
		},
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{L1Entries: 0, FillLatency: 1, MaxTargetsPerLine: 1},
		{L1Entries: 100, FillLatency: 1, MaxTargetsPerLine: 1},
		{L1Entries: 16, FillLatency: -1, MaxTargetsPerLine: 1},
		{L1Entries: 16, FillLatency: 1, MaxTargetsPerLine: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestStoreCompilation(t *testing.T) {
	p, err := New(DefaultConfig(), testPlan())
	if err != nil {
		t.Fatal(err)
	}
	// 0x1008 and 0x1010 share line 0x1000; 0x5000 is its own line.
	if p.StoreEntries() != 2 {
		t.Fatalf("store entries = %d, want 2", p.StoreEntries())
	}
}

func TestMetadataMissThenHit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FillLatency = 40
	p, err := New(cfg, testPlan())
	if err != nil {
		t.Fatal(err)
	}
	var issued []isa.Addr
	issue := func(l isa.Addr) { issued = append(issued, l) }

	// First access: metadata miss — no prefetch yet.
	p.OnFetch(0x1000, 0, false, issue)
	if len(issued) != 0 {
		t.Fatal("prefetched before metadata arrived")
	}
	if p.Stats().MetadataMisses != 1 {
		t.Fatalf("stats %+v", p.Stats())
	}
	// Before the fill completes: still nothing.
	p.OnFetch(0x1000, 20, false, issue)
	if len(issued) != 0 {
		t.Fatal("prefetched while metadata in flight")
	}
	// After the fill: both targets on the trigger line fire.
	p.OnFetch(0x1000, 50, false, issue)
	if len(issued) != 2 {
		t.Fatalf("issued %v", issued)
	}
	want := map[isa.Addr]bool{isa.Addr(0x9000).Line(): true, isa.Addr(0xa040).Line(): true}
	for _, l := range issued {
		if !want[l] {
			t.Fatalf("unexpected prefetch %v", l)
		}
	}
	st := p.Stats()
	if st.L1Hits != 1 || st.Prefetches != 2 || st.Lookups != 3 {
		t.Fatalf("stats %+v", st)
	}
}

func TestUnknownLineIsQuiet(t *testing.T) {
	p, _ := New(DefaultConfig(), testPlan())
	p.OnFetch(0xdead000, 0, false, func(isa.Addr) { t.Fatal("issued for unknown line") })
	if p.Stats().MetadataMisses != 0 {
		t.Fatal("unknown line counted as metadata miss")
	}
}

func TestMaxTargetsPerLine(t *testing.T) {
	plan := &asmdb.Plan{}
	for i := 0; i < 10; i++ {
		plan.Insertions = append(plan.Insertions, asmdb.Insertion{
			Site:   0x1000,
			Target: isa.Addr(0x9000 + i*isa.LineSize),
		})
	}
	cfg := DefaultConfig()
	cfg.MaxTargetsPerLine = 3
	cfg.FillLatency = 0
	p, err := New(cfg, plan)
	if err != nil {
		t.Fatal(err)
	}
	var issued []isa.Addr
	p.OnFetch(0x1000, 0, false, func(l isa.Addr) { issued = append(issued, l) })
	p.OnFetch(0x1000, 1, false, func(l isa.Addr) { issued = append(issued, l) })
	if len(issued) != 3 {
		t.Fatalf("issued %d targets, want capped 3", len(issued))
	}
}

func TestConflictEviction(t *testing.T) {
	// Two trigger lines mapping to the same direct-mapped slot evict each
	// other; both still work after re-fill.
	cfg := Config{L1Entries: 1, FillLatency: 0, MaxTargetsPerLine: 4}
	p, err := New(cfg, testPlan())
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	issue := func(isa.Addr) { count++ }
	p.OnFetch(0x1000, 0, false, issue) // miss, installs
	p.OnFetch(0x1000, 1, false, issue) // hit: 2 prefetches
	p.OnFetch(0x5000, 2, false, issue) // conflict miss, installs over
	p.OnFetch(0x5000, 3, false, issue) // hit: 1 prefetch
	p.OnFetch(0x1000, 4, false, issue) // must re-miss
	st := p.Stats()
	if st.MetadataMisses != 3 {
		t.Fatalf("metadata misses = %d, want 3", st.MetadataMisses)
	}
	if count != 3 {
		t.Fatalf("prefetches = %d, want 3", count)
	}
}
