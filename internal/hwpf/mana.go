// MANA-style spatial-region prefetcher (Ansari et al., "MANA: Microarchitecting
// an Instruction Prefetcher"): a record table keyed by spatial region, each
// record a bit-vector over the region's cache lines, trained on the demand
// miss stream and replayed on every fetch that lands in a recorded region.
// The published design chains records through a metadata hierarchy; this
// comparator keeps the core spatial-record idea at the same table scale.

package hwpf

import (
	"fmt"

	"frontsim/internal/cache"
	"frontsim/internal/isa"
)

// MANAConfig sizes the spatial-region prefetcher.
type MANAConfig struct {
	// RecordEntries is the number of spatial records tracked (direct-mapped
	// by region, a power of two).
	RecordEntries int
	// RegionLines is the spatial region width in cache lines (a power of
	// two, at most 64 — one bit-vector word).
	RegionLines int
	// MaxIssue caps the prefetches replayed per triggering fetch.
	MaxIssue int
}

// DefaultMANAConfig mirrors the published design's scale: 2K records over
// 8-line (512 B) regions.
func DefaultMANAConfig() MANAConfig {
	return MANAConfig{RecordEntries: 2048, RegionLines: 8, MaxIssue: 4}
}

// Validate checks the configuration.
func (c MANAConfig) Validate() error {
	if c.RecordEntries <= 0 || c.RecordEntries&(c.RecordEntries-1) != 0 {
		return fmt.Errorf("hwpf: RecordEntries %d must be a positive power of two", c.RecordEntries)
	}
	if c.RegionLines <= 1 || c.RegionLines > 64 || c.RegionLines&(c.RegionLines-1) != 0 {
		return fmt.Errorf("hwpf: RegionLines %d must be a power of two in [2,64]", c.RegionLines)
	}
	if c.MaxIssue <= 0 {
		return fmt.Errorf("hwpf: non-positive MaxIssue %d", c.MaxIssue)
	}
	return nil
}

// manaRecord is one spatial record: the region's base line address and the
// bit-vector of lines within it that demand-missed.
type manaRecord struct {
	base  isa.Addr
	valid bool
	vec   uint64
}

// MANA observes the demand fetch stream: misses set the line's bit in its
// region's record (allocating the record on first miss, direct-mapped);
// any fetch into a recorded region replays the record, prefetching the
// region's other recorded lines in wrap-around order starting just past
// the triggering line's offset.
type MANA struct {
	cfg   MANAConfig
	table []manaRecord

	issued  int64
	trained int64
	records int64
}

// NewMANA builds the prefetcher.
func NewMANA(cfg MANAConfig) (*MANA, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &MANA{cfg: cfg, table: make([]manaRecord, cfg.RecordEntries)}, nil
}

// region decomposes a line address into its region base and line offset.
func (p *MANA) region(line isa.Addr) (base isa.Addr, off int) {
	regionBytes := isa.Addr(p.cfg.RegionLines * isa.LineSize)
	base = line &^ (regionBytes - 1)
	off = int((line - base) / isa.LineSize)
	return base, off
}

func (p *MANA) slot(base isa.Addr) *manaRecord {
	return &p.table[(base.LineIndex()/uint64(p.cfg.RegionLines))&uint64(p.cfg.RecordEntries-1)]
}

// OnFetch implements frontend.InstrPrefetcher.
func (p *MANA) OnFetch(line isa.Addr, now cache.Cycle, hit bool, issue func(isa.Addr)) {
	line = line.Line()
	base, off := p.region(line)
	// Replay: walk the region's bit-vector starting one line past the
	// trigger, wrapping around the region, so nearby successors issue first.
	if r := p.slot(base); r.valid && r.base == base {
		issued := 0
		for i := 1; i < p.cfg.RegionLines && issued < p.cfg.MaxIssue; i++ {
			o := (off + i) & (p.cfg.RegionLines - 1)
			if r.vec&(1<<o) != 0 {
				issue(base + isa.Addr(o*isa.LineSize))
				p.issued++
				issued++
			}
		}
	}
	// Train on the demand miss stream: record the missing line in its
	// region's bit-vector, allocating (and on conflict resetting) the
	// direct-mapped record.
	if !hit {
		r := p.slot(base)
		if !r.valid || r.base != base {
			*r = manaRecord{base: base, valid: true}
			p.records++
		}
		if r.vec&(1<<off) == 0 {
			r.vec |= 1 << off
			p.trained++
		}
	}
}

// Issued returns the number of prefetches issued.
func (p *MANA) Issued() int64 { return p.issued }

// Trained returns the number of (region, line) bits learned.
func (p *MANA) Trained() int64 { return p.trained }

// Records returns the number of record allocations (including conflict
// re-allocations).
func (p *MANA) Records() int64 { return p.records }

// PrefetchFingerprint implements core.PrefetchFingerprinter: as with the
// other hardware prefetchers, only the static configuration identifies the
// run — learned records are per-run state.
func (p *MANA) PrefetchFingerprint() string {
	return fmt.Sprintf("hwpf.MANA{RecordEntries:%d,RegionLines:%d,MaxIssue:%d}",
		p.cfg.RecordEntries, p.cfg.RegionLines, p.cfg.MaxIssue)
}
