package hwpf

import (
	"testing"

	"frontsim/internal/isa"
)

// manaLine returns the address of line n within the region starting at base.
func manaLine(base isa.Addr, n int) isa.Addr {
	return base + isa.Addr(n*isa.LineSize)
}

func TestMANAValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  MANAConfig
		ok   bool
	}{
		{"default", DefaultMANAConfig(), true},
		{"min-region", MANAConfig{RecordEntries: 1, RegionLines: 2, MaxIssue: 1}, true},
		{"max-region", MANAConfig{RecordEntries: 16, RegionLines: 64, MaxIssue: 4}, true},
		{"zero-records", MANAConfig{RecordEntries: 0, RegionLines: 8, MaxIssue: 4}, false},
		{"npot-records", MANAConfig{RecordEntries: 3, RegionLines: 8, MaxIssue: 4}, false},
		{"region-one", MANAConfig{RecordEntries: 16, RegionLines: 1, MaxIssue: 4}, false},
		{"region-npot", MANAConfig{RecordEntries: 16, RegionLines: 6, MaxIssue: 4}, false},
		{"region-over", MANAConfig{RecordEntries: 16, RegionLines: 128, MaxIssue: 4}, false},
		{"zero-issue", MANAConfig{RecordEntries: 16, RegionLines: 8, MaxIssue: 0}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if (err == nil) != tc.ok {
				t.Fatalf("Validate() = %v, want ok=%v", err, tc.ok)
			}
			if _, err := NewMANA(tc.cfg); (err == nil) != tc.ok {
				t.Fatalf("NewMANA() error = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}

// TestMANAReplayWrapOrder pins the replay order: the region walk starts one
// line past the trigger and wraps around the region boundary, so the lines
// most likely to be fetched next issue first.
func TestMANAReplayWrapOrder(t *testing.T) {
	p, err := NewMANA(MANAConfig{RecordEntries: 16, RegionLines: 8, MaxIssue: 8})
	if err != nil {
		t.Fatal(err)
	}
	base := isa.Addr(0x10000)
	// Train lines 0, 1, 6, 7 of the region via demand misses. Later misses
	// land in the already-allocated record and replay the earlier bits;
	// those issues are incidental here and ignored.
	for _, n := range []int{0, 1, 6, 7} {
		p.OnFetch(manaLine(base, n), 0, false, func(isa.Addr) {})
	}
	// Trigger a hit-fetch at line 6: replay should wrap 7, 0, 1 — skipping
	// untrained lines and the trigger itself.
	var got []isa.Addr
	p.OnFetch(manaLine(base, 6), 0, true, func(a isa.Addr) { got = append(got, a) })
	want := []isa.Addr{manaLine(base, 7), manaLine(base, 0), manaLine(base, 1)}
	if len(got) != len(want) {
		t.Fatalf("replay issued %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("replay order %v, want %v (wrap-around starting past the trigger)", got, want)
		}
	}
	if p.Trained() != 4 {
		t.Fatalf("Trained() = %d, want 4", p.Trained())
	}
}

// TestMANAMaxIssueCap pins the per-fetch issue budget.
func TestMANAMaxIssueCap(t *testing.T) {
	p, err := NewMANA(MANAConfig{RecordEntries: 16, RegionLines: 8, MaxIssue: 2})
	if err != nil {
		t.Fatal(err)
	}
	base := isa.Addr(0x4000)
	for n := 0; n < 8; n++ {
		p.OnFetch(manaLine(base, n), 0, false, func(isa.Addr) {})
	}
	issued := p.Issued()
	var got []isa.Addr
	p.OnFetch(manaLine(base, 0), 0, true, func(a isa.Addr) { got = append(got, a) })
	if len(got) != 2 {
		t.Fatalf("issued %d prefetches, want MaxIssue=2 (%v)", len(got), got)
	}
	if got[0] != manaLine(base, 1) || got[1] != manaLine(base, 2) {
		t.Fatalf("capped replay %v, want nearest successors first", got)
	}
	if p.Issued() != issued+2 {
		t.Fatalf("Issued() advanced by %d, want 2", p.Issued()-issued)
	}
}

// TestMANAConflictReset pins direct-mapped record replacement: a region
// aliasing into an occupied slot resets the record rather than merging
// bit-vectors across regions.
func TestMANAConflictReset(t *testing.T) {
	cfg := MANAConfig{RecordEntries: 4, RegionLines: 8, MaxIssue: 8}
	p, err := NewMANA(cfg)
	if err != nil {
		t.Fatal(err)
	}
	regionBytes := isa.Addr(cfg.RegionLines * isa.LineSize)
	baseA := isa.Addr(0)
	// baseB maps to the same slot: RecordEntries regions ahead.
	baseB := baseA + regionBytes*isa.Addr(cfg.RecordEntries)
	p.OnFetch(manaLine(baseA, 3), 0, false, func(isa.Addr) {})
	if p.Records() != 1 {
		t.Fatalf("Records() = %d after first allocation, want 1", p.Records())
	}
	p.OnFetch(manaLine(baseB, 5), 0, false, func(isa.Addr) {})
	if p.Records() != 2 {
		t.Fatalf("Records() = %d after conflict, want 2 (reset allocation)", p.Records())
	}
	// Region A's record is gone: a hit-fetch there replays nothing.
	p.OnFetch(manaLine(baseA, 0), 0, true, func(a isa.Addr) {
		t.Fatalf("evicted record replayed %v", a)
	})
	// Region B's record survived with only its own bit.
	var got []isa.Addr
	p.OnFetch(manaLine(baseB, 4), 0, true, func(a isa.Addr) { got = append(got, a) })
	if len(got) != 1 || got[0] != manaLine(baseB, 5) {
		t.Fatalf("conflicting record replayed %v, want only line 5 of region B", got)
	}
}

// TestMANATrainDedupe pins that re-missing a recorded line does not count
// as new training.
func TestMANATrainDedupe(t *testing.T) {
	p, err := NewMANA(DefaultMANAConfig())
	if err != nil {
		t.Fatal(err)
	}
	line := isa.Addr(0x8000)
	p.OnFetch(line, 0, false, func(isa.Addr) {})
	p.OnFetch(line, 0, false, func(isa.Addr) {})
	if p.Trained() != 1 {
		t.Fatalf("Trained() = %d after duplicate miss, want 1", p.Trained())
	}
	if p.Records() != 1 {
		t.Fatalf("Records() = %d after duplicate miss, want 1", p.Records())
	}
}

// TestMANAFingerprint pins the fingerprint contract: configuration reaches
// it, learned state does not.
func TestMANAFingerprint(t *testing.T) {
	a, err := NewMANA(DefaultMANAConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewMANA(DefaultMANAConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.PrefetchFingerprint() != b.PrefetchFingerprint() {
		t.Fatal("identical configs fingerprint differently")
	}
	a.OnFetch(isa.Addr(0x1000), 0, false, func(isa.Addr) {})
	if a.PrefetchFingerprint() != b.PrefetchFingerprint() {
		t.Fatal("learned state leaked into the fingerprint")
	}
	small := DefaultMANAConfig()
	small.RegionLines = 4
	c, err := NewMANA(small)
	if err != nil {
		t.Fatal(err)
	}
	if a.PrefetchFingerprint() == c.PrefetchFingerprint() {
		t.Fatal("distinct configs share a fingerprint")
	}
}
