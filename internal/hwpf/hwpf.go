// Package hwpf implements hardware L1-I prefetchers used as comparators in
// the paper's Figure 1: a simple next-line prefetcher and an EIP-style
// entangling prefetcher ("EIP" is the entangling instruction prefetcher
// series shown alongside FDP in the figure). Both observe demand fetches
// through the frontend.InstrPrefetcher hook.
package hwpf

import (
	"fmt"

	"frontsim/internal/cache"
	"frontsim/internal/isa"
)

// NextLine prefetches the next Degree sequential lines after every demand
// fetch. Sequential instruction streams make this surprisingly effective
// (Smith, 1978), and it is the classic low-cost baseline.
type NextLine struct {
	// Degree is how many successor lines to prefetch.
	Degree int
	// OnMissOnly restricts prefetching to demand misses.
	OnMissOnly bool

	issued int64
}

// NewNextLine builds a next-line prefetcher of the given degree.
func NewNextLine(degree int) *NextLine {
	if degree <= 0 {
		panic("hwpf: non-positive next-line degree")
	}
	return &NextLine{Degree: degree}
}

// OnFetch implements frontend.InstrPrefetcher.
func (p *NextLine) OnFetch(line isa.Addr, now cache.Cycle, hit bool, issue func(isa.Addr)) {
	if p.OnMissOnly && hit {
		return
	}
	for i := 1; i <= p.Degree; i++ {
		issue(line + isa.Addr(i*isa.LineSize))
		p.issued++
	}
}

// Issued returns the number of prefetches issued.
func (p *NextLine) Issued() int64 { return p.issued }

// EIPConfig sizes the entangling prefetcher.
type EIPConfig struct {
	// TableEntries is the number of source lines tracked (direct-mapped).
	TableEntries int
	// MaxEntangled is the number of destination lines per source.
	MaxEntangled int
	// HistoryDepth is how many recently fetched lines are candidates for
	// entangling with a new miss (the "who fetched long enough ago to have
	// hidden this miss" window).
	HistoryDepth int
}

// DefaultEIPConfig mirrors the published design's scale.
func DefaultEIPConfig() EIPConfig {
	return EIPConfig{TableEntries: 4096, MaxEntangled: 3, HistoryDepth: 16}
}

// Validate checks the configuration.
func (c EIPConfig) Validate() error {
	if c.TableEntries <= 0 || c.TableEntries&(c.TableEntries-1) != 0 {
		return fmt.Errorf("hwpf: TableEntries %d must be a positive power of two", c.TableEntries)
	}
	if c.MaxEntangled <= 0 || c.HistoryDepth <= 0 {
		return fmt.Errorf("hwpf: non-positive EIP parameter")
	}
	return nil
}

type eipEntry struct {
	src   isa.Addr
	valid bool
	dsts  []isa.Addr
}

// EIP is a simplified entangling instruction prefetcher: on a demand miss
// for line D, it entangles D with a line S fetched earlier (far enough back
// that prefetching D when S is fetched would have hidden D's latency); on
// every fetch of S it prefetches S's entangled lines.
type EIP struct {
	cfg     EIPConfig
	table   []eipEntry
	history []isa.Addr // ring of recent fetched lines
	hpos    int
	hlen    int

	issued    int64
	entangled int64
}

// NewEIP builds the prefetcher.
func NewEIP(cfg EIPConfig) (*EIP, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &EIP{
		cfg:     cfg,
		table:   make([]eipEntry, cfg.TableEntries),
		history: make([]isa.Addr, cfg.HistoryDepth),
	}, nil
}

func (p *EIP) slot(line isa.Addr) *eipEntry {
	return &p.table[line.LineIndex()&uint64(p.cfg.TableEntries-1)]
}

// OnFetch implements frontend.InstrPrefetcher.
func (p *EIP) OnFetch(line isa.Addr, now cache.Cycle, hit bool, issue func(isa.Addr)) {
	line = line.Line()
	// Replay: if this line is a known source, prefetch its entangled
	// destinations.
	if e := p.slot(line); e.valid && e.src == line {
		for _, d := range e.dsts {
			issue(d)
			p.issued++
		}
	}
	// Train: on a miss, entangle with the oldest line in the history
	// window — the fetch far enough in the past to have hidden this miss.
	if !hit && p.hlen > 0 {
		src := p.history[(p.hpos-p.hlen+len(p.history))%len(p.history)]
		if src != line {
			e := p.slot(src)
			if !e.valid || e.src != src {
				*e = eipEntry{src: src, valid: true, dsts: e.dsts[:0]}
			}
			if !containsAddr(e.dsts, line) {
				if len(e.dsts) >= p.cfg.MaxEntangled {
					copy(e.dsts, e.dsts[1:])
					e.dsts = e.dsts[:len(e.dsts)-1]
				}
				e.dsts = append(e.dsts, line)
				p.entangled++
			}
		}
	}
	// Record the fetch in the history ring.
	p.history[p.hpos] = line
	p.hpos = (p.hpos + 1) % len(p.history)
	if p.hlen < len(p.history) {
		p.hlen++
	}
}

// Issued returns the number of prefetches issued.
func (p *EIP) Issued() int64 { return p.issued }

// Entangled returns the number of (source, destination) pairs learned.
func (p *EIP) Entangled() int64 { return p.entangled }

func containsAddr(xs []isa.Addr, a isa.Addr) bool {
	for _, x := range xs {
		if x == a {
			return true
		}
	}
	return false
}

// PrefetchFingerprint implements core.PrefetchFingerprinter: the stable
// identity of a freshly constructed next-line prefetcher is its static
// configuration (learned state is per-run and excluded by design).
func (p *NextLine) PrefetchFingerprint() string {
	return fmt.Sprintf("hwpf.NextLine{Degree:%d,OnMissOnly:%v}", p.Degree, p.OnMissOnly)
}

// PrefetchFingerprint implements core.PrefetchFingerprinter for EIP; as
// with NextLine, only the static configuration identifies the run.
func (p *EIP) PrefetchFingerprint() string {
	return fmt.Sprintf("hwpf.EIP{TableEntries:%d,MaxEntangled:%d,HistoryDepth:%d}",
		p.cfg.TableEntries, p.cfg.MaxEntangled, p.cfg.HistoryDepth)
}
