package hwpf

import (
	"testing"

	"frontsim/internal/isa"
)

type issueRecorder struct {
	lines []isa.Addr
}

func (r *issueRecorder) issue(l isa.Addr) { r.lines = append(r.lines, l) }

func TestNextLineDegree(t *testing.T) {
	p := NewNextLine(3)
	rec := &issueRecorder{}
	p.OnFetch(0x1000, 0, false, rec.issue)
	if len(rec.lines) != 3 {
		t.Fatalf("issued %d", len(rec.lines))
	}
	want := []isa.Addr{0x1040, 0x1080, 0x10c0}
	for i, w := range want {
		if rec.lines[i] != w {
			t.Fatalf("line %d = %v, want %v", i, rec.lines[i], w)
		}
	}
	if p.Issued() != 3 {
		t.Fatalf("Issued = %d", p.Issued())
	}
}

func TestNextLineOnMissOnly(t *testing.T) {
	p := NewNextLine(1)
	p.OnMissOnly = true
	rec := &issueRecorder{}
	p.OnFetch(0x1000, 0, true, rec.issue)
	if len(rec.lines) != 0 {
		t.Fatal("prefetched on a hit with OnMissOnly")
	}
	p.OnFetch(0x1000, 0, false, rec.issue)
	if len(rec.lines) != 1 {
		t.Fatal("no prefetch on miss")
	}
}

func TestNewNextLinePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewNextLine(0)
}

func TestEIPConfigValidate(t *testing.T) {
	if err := DefaultEIPConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []EIPConfig{
		{TableEntries: 0, MaxEntangled: 1, HistoryDepth: 1},
		{TableEntries: 100, MaxEntangled: 1, HistoryDepth: 1}, // non-pow2
		{TableEntries: 16, MaxEntangled: 0, HistoryDepth: 1},
		{TableEntries: 16, MaxEntangled: 1, HistoryDepth: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestEIPLearnsAndReplays(t *testing.T) {
	p, err := NewEIP(EIPConfig{TableEntries: 64, MaxEntangled: 2, HistoryDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	rec := &issueRecorder{}
	// Sequence: src fetched (hit), filler, then dst misses. dst entangles
	// with the oldest history entry = src.
	p.OnFetch(0x1000, 0, true, rec.issue)  // src
	p.OnFetch(0x2000, 1, true, rec.issue)  // filler
	p.OnFetch(0x9000, 2, false, rec.issue) // miss -> entangle 0x9000 with 0x1000
	if p.Entangled() != 1 {
		t.Fatalf("entangled = %d", p.Entangled())
	}
	// Refetching src must now prefetch dst.
	rec.lines = nil
	p.OnFetch(0x1000, 10, true, rec.issue)
	if len(rec.lines) != 1 || rec.lines[0] != 0x9000 {
		t.Fatalf("replay issued %v", rec.lines)
	}
	if p.Issued() != 1 {
		t.Fatalf("Issued = %d", p.Issued())
	}
}

func TestEIPMaxEntangledEvictsOldest(t *testing.T) {
	p, _ := NewEIP(EIPConfig{TableEntries: 64, MaxEntangled: 2, HistoryDepth: 1})
	rec := &issueRecorder{}
	// With HistoryDepth=1 the entangle source is always the previous
	// fetch.
	p.OnFetch(0x1000, 0, true, rec.issue)
	p.OnFetch(0x9000, 1, false, rec.issue) // 0x1000 -> 0x9000
	p.OnFetch(0x1000, 2, true, rec.issue)
	p.OnFetch(0xa000, 3, false, rec.issue) // 0x1000 -> 0xa000
	p.OnFetch(0x1000, 4, true, rec.issue)
	p.OnFetch(0xb000, 5, false, rec.issue) // evicts 0x9000
	rec.lines = nil
	p.OnFetch(0x1000, 6, true, rec.issue)
	if len(rec.lines) != 2 {
		t.Fatalf("issued %v", rec.lines)
	}
	for _, l := range rec.lines {
		if l == 0x9000 {
			t.Fatal("oldest entangling not evicted")
		}
	}
}

func TestEIPNoSelfEntangle(t *testing.T) {
	p, _ := NewEIP(EIPConfig{TableEntries: 64, MaxEntangled: 2, HistoryDepth: 1})
	rec := &issueRecorder{}
	p.OnFetch(0x1000, 0, false, rec.issue)
	p.OnFetch(0x1000, 1, false, rec.issue) // would self-entangle
	if p.Entangled() != 0 {
		t.Fatalf("self-entangled: %d", p.Entangled())
	}
}

func TestEIPDedupDestinations(t *testing.T) {
	p, _ := NewEIP(EIPConfig{TableEntries: 64, MaxEntangled: 4, HistoryDepth: 1})
	rec := &issueRecorder{}
	for i := 0; i < 3; i++ {
		p.OnFetch(0x1000, 0, true, rec.issue)
		p.OnFetch(0x9000, 1, false, rec.issue)
	}
	if p.Entangled() != 1 {
		t.Fatalf("duplicate destinations: %d", p.Entangled())
	}
}
