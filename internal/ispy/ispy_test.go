package ispy

import (
	"testing"

	"frontsim/internal/asmdb"
	"frontsim/internal/isa"
)

func planOf(ins ...asmdb.Insertion) *asmdb.Plan {
	return &asmdb.Plan{Insertions: ins}
}

func TestOptionsValidate(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Options{
		{CoalesceDistance: -1, MaxCoalesced: 1, MinConditionProb: 0.5},
		{CoalesceDistance: 1, MaxCoalesced: 0, MinConditionProb: 0.5},
		{CoalesceDistance: 1, MaxCoalesced: 1, MinConditionProb: 0},
		{CoalesceDistance: 1, MaxCoalesced: 1, MinConditionProb: 1.5},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("bad options %d accepted", i)
		}
	}
}

func TestCoalescingAdjacentLines(t *testing.T) {
	in := planOf(
		asmdb.Insertion{Site: 0x1000, Target: 0x9000, Prob: 0.9},
		asmdb.Insertion{Site: 0x1000, Target: 0x9040, Prob: 0.8}, // next line
		asmdb.Insertion{Site: 0x1000, Target: 0x9080, Prob: 0.9}, // next again
	)
	p, err := Transform(in, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if p.InstructionCount() != 1 {
		t.Fatalf("prefetches = %d, want 1 coalesced", p.InstructionCount())
	}
	if len(p.Prefetches[0].Lines) != 3 {
		t.Fatalf("lines = %v", p.Prefetches[0].Lines)
	}
	if p.Coalesced != 2 {
		t.Fatalf("coalesced = %d", p.Coalesced)
	}
	if p.CoalescingSavings() < 0.6 {
		t.Fatalf("savings %v", p.CoalescingSavings())
	}
	// The merged prefetch carries the weakest probability.
	if p.Prefetches[0].Prob != 0.8 {
		t.Fatalf("prob %v", p.Prefetches[0].Prob)
	}
}

func TestCoalescingRespectsDistance(t *testing.T) {
	in := planOf(
		asmdb.Insertion{Site: 0x1000, Target: 0x9000, Prob: 0.9},
		asmdb.Insertion{Site: 0x1000, Target: 0x9000 + 10*isa.LineSize, Prob: 0.9},
	)
	opts := DefaultOptions()
	opts.CoalesceDistance = 2
	p, err := Transform(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	if p.InstructionCount() != 2 {
		t.Fatalf("distant targets merged: %+v", p.Prefetches)
	}
}

func TestCoalescingRespectsMax(t *testing.T) {
	var ins []asmdb.Insertion
	for i := 0; i < 6; i++ {
		ins = append(ins, asmdb.Insertion{Site: 0x1000, Target: isa.Addr(0x9000 + i*isa.LineSize), Prob: 0.9})
	}
	opts := DefaultOptions()
	opts.MaxCoalesced = 4
	p, err := Transform(planOf(ins...), opts)
	if err != nil {
		t.Fatal(err)
	}
	if p.InstructionCount() != 2 {
		t.Fatalf("prefetches = %d, want 2 (4+2)", p.InstructionCount())
	}
}

func TestDuplicateLinesFold(t *testing.T) {
	in := planOf(
		asmdb.Insertion{Site: 0x1000, Target: 0x9000, Prob: 0.9},
		asmdb.Insertion{Site: 0x1000, Target: 0x9010, Prob: 0.7}, // same line
	)
	p, err := Transform(in, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if p.InstructionCount() != 1 || len(p.Prefetches[0].Lines) != 1 {
		t.Fatalf("%+v", p.Prefetches)
	}
	if p.Prefetches[0].Prob != 0.7 {
		t.Fatalf("prob %v", p.Prefetches[0].Prob)
	}
}

func TestConditionalMarking(t *testing.T) {
	in := planOf(
		asmdb.Insertion{Site: 0x1000, Target: 0x9000, Prob: 0.9}, // unconditional
		asmdb.Insertion{Site: 0x2000, Target: 0xa000, Prob: 0.4}, // conditional
	)
	p, err := Transform(in, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if p.Conditionals != 1 {
		t.Fatalf("conditionals = %d", p.Conditionals)
	}
	for _, pf := range p.Prefetches {
		if pf.Site == 0x2000 && !pf.Conditional {
			t.Fatal("low-prob site not conditional")
		}
		if pf.Site == 0x1000 && pf.Conditional {
			t.Fatal("high-prob site marked conditional")
		}
	}
}

func TestTriggersFilterConditionals(t *testing.T) {
	in := planOf(
		asmdb.Insertion{Site: 0x1000, Target: 0x9000, Prob: 0.9},
		asmdb.Insertion{Site: 0x2000, Target: 0xa000, Prob: 0.4},
	)
	p, err := Transform(in, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// nil context: everything issues.
	all := p.Triggers(nil)
	if len(all) != 2 {
		t.Fatalf("triggers = %d", len(all))
	}
	// Rejecting context: conditionals vanish, unconditional stays.
	none := p.Triggers(func(isa.Addr, float64) bool { return false })
	if len(none) != 1 {
		t.Fatalf("filtered triggers = %d", len(none))
	}
	if _, ok := none[0x1000]; !ok {
		t.Fatal("unconditional prefetch filtered")
	}
}

func TestSitesIndependent(t *testing.T) {
	// Adjacent target lines at different sites never merge.
	in := planOf(
		asmdb.Insertion{Site: 0x1000, Target: 0x9000, Prob: 0.9},
		asmdb.Insertion{Site: 0x2000, Target: 0x9040, Prob: 0.9},
	)
	p, err := Transform(in, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if p.InstructionCount() != 2 {
		t.Fatalf("cross-site coalescing: %+v", p.Prefetches)
	}
}

func TestTransformDeterministic(t *testing.T) {
	var ins []asmdb.Insertion
	for i := 0; i < 40; i++ {
		ins = append(ins, asmdb.Insertion{
			Site:   isa.Addr(0x1000 + (i%5)*0x100),
			Target: isa.Addr(0x9000 + (i*3%11)*isa.LineSize),
			Prob:   0.3 + float64(i%7)/10,
		})
	}
	a, err := Transform(planOf(ins...), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Transform(planOf(ins...), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Prefetches) != len(b.Prefetches) {
		t.Fatal("non-deterministic size")
	}
	for i := range a.Prefetches {
		if a.Prefetches[i].Site != b.Prefetches[i].Site ||
			len(a.Prefetches[i].Lines) != len(b.Prefetches[i].Lines) {
			t.Fatalf("diverged at %d", i)
		}
	}
}
