// Package ispy models I-SPY (Khan et al., MICRO 2020), the software
// instruction prefetcher the paper's §VII-B discusses as AsmDB's
// successor. I-SPY extends AsmDB with two ideas:
//
//  1. Conditional prefetches: a prefetch carries the branch-history
//     context observed on profiled paths to the miss, and hardware issues
//     it only when the live execution context matches — cutting the
//     inaccurate prefetches high-fanout sites would otherwise fire.
//  2. Coalescing: prefetches at one site whose target lines are close
//     together merge into a single multi-line prefetch instruction,
//     reducing the inserted-instruction count (static/dynamic bloat).
//
// The model starts from an AsmDB plan: coalescing is a plan-to-plan
// transform; conditional issue is realized through the simulator's
// no-overhead trigger mechanism combined with a context filter evaluated
// at trigger time. Per the original design, prefetches that can be
// neither conditional nor coalesced fall back to plain AsmDB behaviour.
package ispy

import (
	"fmt"
	"sort"

	"frontsim/internal/asmdb"
	"frontsim/internal/isa"
)

// Options tunes the I-SPY transforms.
type Options struct {
	// CoalesceDistance is the maximum gap, in cache lines, between two
	// targets merged into one coalesced prefetch (the paper's "set
	// distance from one another").
	CoalesceDistance int
	// MaxCoalesced bounds lines covered by one coalesced prefetch (the
	// footprint one multi-line prefetch instruction can encode).
	MaxCoalesced int
	// MinConditionProb: sites whose reach probability is below this are
	// made conditional (high-fanout sites benefit most from context
	// checks); sites above it issue unconditionally.
	MinConditionProb float64
}

// DefaultOptions mirrors the published configuration's spirit.
func DefaultOptions() Options {
	return Options{CoalesceDistance: 2, MaxCoalesced: 4, MinConditionProb: 0.75}
}

// Validate checks parameters.
func (o Options) Validate() error {
	if o.CoalesceDistance < 0 || o.MaxCoalesced <= 0 {
		return fmt.Errorf("ispy: coalescing parameters %+v", o)
	}
	if o.MinConditionProb <= 0 || o.MinConditionProb > 1 {
		return fmt.Errorf("ispy: MinConditionProb %v", o.MinConditionProb)
	}
	return nil
}

// Prefetch is one transformed prefetch operation.
type Prefetch struct {
	// Site is the trigger block start PC.
	Site isa.Addr
	// Lines are the target cache lines (1 for a plain prefetch, up to
	// MaxCoalesced for a coalesced one).
	Lines []isa.Addr
	// Conditional marks a context-checked prefetch; Prob is the profiled
	// reach probability used as the issue condition's strength.
	Conditional bool
	Prob        float64
}

// Plan is the transformed prefetch set.
type Plan struct {
	Prefetches []Prefetch
	// Stats of the transformation.
	InputInsertions int
	Coalesced       int // input insertions absorbed into multi-line prefetches
	Conditionals    int // prefetches marked conditional
}

// InstructionCount returns the number of prefetch instructions the plan
// inserts — the bloat I-SPY's coalescing reduces relative to AsmDB.
func (p *Plan) InstructionCount() int { return len(p.Prefetches) }

// CoalescingSavings returns the fraction of AsmDB's insertions eliminated.
func (p *Plan) CoalescingSavings() float64 {
	if p.InputInsertions == 0 {
		return 0
	}
	return 1 - float64(len(p.Prefetches))/float64(p.InputInsertions)
}

// Transform applies I-SPY's coalescing and conditional marking to an
// AsmDB plan.
func Transform(in *asmdb.Plan, opts Options) (*Plan, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	// Group insertions by site.
	bySite := make(map[isa.Addr][]asmdb.Insertion)
	var sites []isa.Addr
	for _, ins := range in.Insertions {
		if _, ok := bySite[ins.Site]; !ok {
			sites = append(sites, ins.Site)
		}
		bySite[ins.Site] = append(bySite[ins.Site], ins)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })

	out := &Plan{InputInsertions: len(in.Insertions)}
	for _, site := range sites {
		group := bySite[site]
		// Sort targets by line for coalescing.
		sort.Slice(group, func(i, j int) bool {
			return group[i].Target.Line() < group[j].Target.Line()
		})
		i := 0
		for i < len(group) {
			pf := Prefetch{
				Site:  site,
				Lines: []isa.Addr{group[i].Target.Line()},
				Prob:  group[i].Prob,
			}
			j := i + 1
			for j < len(group) && len(pf.Lines) < opts.MaxCoalesced {
				prev := pf.Lines[len(pf.Lines)-1]
				next := group[j].Target.Line()
				if next == prev {
					// Duplicate line within the site: fold silently.
					if group[j].Prob < pf.Prob {
						pf.Prob = group[j].Prob
					}
					out.Coalesced++
					j++
					continue
				}
				gap := int(next.LineIndex() - prev.LineIndex())
				if gap > opts.CoalesceDistance {
					break
				}
				pf.Lines = append(pf.Lines, next)
				if group[j].Prob < pf.Prob {
					pf.Prob = group[j].Prob
				}
				out.Coalesced++
				j++
			}
			if pf.Prob < opts.MinConditionProb {
				pf.Conditional = true
				out.Conditionals++
			}
			out.Prefetches = append(out.Prefetches, pf)
			i = j
		}
	}
	return out, nil
}

// Triggers compiles the plan into the simulator's trigger-table form for
// the no-inserted-instruction evaluation path. Conditional prefetches are
// context-filtered by ctx: a ConditionFunc deciding, per (site, prob),
// whether the live context matches; nil issues everything (upper bound).
type ConditionFunc func(site isa.Addr, prob float64) bool

// Triggers builds a trigger table from the plan. Conditional prefetches
// consult ctx at compile time per site occurrence — the simulator's
// trigger table is static, so the condition models the average-case
// context match by thinning conditional targets through ctx.
func (p *Plan) Triggers(ctx ConditionFunc) map[isa.Addr][]isa.Addr {
	out := make(map[isa.Addr][]isa.Addr)
	for _, pf := range p.Prefetches {
		if pf.Conditional && ctx != nil && !ctx(pf.Site, pf.Prob) {
			continue
		}
		out[pf.Site] = append(out[pf.Site], pf.Lines...)
	}
	return out
}
