package program

import (
	"errors"
	"testing"
	"testing/quick"

	"frontsim/internal/isa"
	"frontsim/internal/trace"
)

// testProgram builds a small two-function program:
//
//	main:
//	  b0: alu, alu; cond(p=0.5) -> b2
//	  b1: load; call leaf
//	  b2: alu; jump -> b0        (infinite loop)
//	leaf:
//	  b0: store; return
func testProgram() *Program {
	region := Region{Base: 0x10000000, Size: 1 << 16}
	main := &Func{ID: 0, Name: "main"}
	leaf := &Func{ID: 1, Name: "leaf"}
	main.Blocks = []*Block{
		{
			Body: []StaticInstr{{Class: isa.ClassALU}, {Class: isa.ClassALU}},
			Term: Terminator{Kind: TermCond, Target: BlockRef{0, 2}, TakenProb: 0.5},
		},
		{
			Body: []StaticInstr{{Class: isa.ClassLoad, Data: DataPattern{Kind: DataRandom, Region: region}}},
			Term: Terminator{Kind: TermCall, Callee: 1},
		},
		{
			Body: []StaticInstr{{Class: isa.ClassALU}},
			Term: Terminator{Kind: TermJump, Target: BlockRef{0, 0}},
		},
	}
	leaf.Blocks = []*Block{
		{
			Body: []StaticInstr{{Class: isa.ClassStore, Data: DataPattern{Kind: DataStride, Region: region, Stride: 64}}},
			Term: Terminator{Kind: TermReturn},
		},
	}
	p := &Program{Name: "test", Base: 0x400000, Funcs: []*Func{main, leaf}, Entry: 0}
	p.Layout()
	return p
}

func TestValidateAcceptsGoodProgram(t *testing.T) {
	if err := testProgram().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadPrograms(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Program)
	}{
		{"bad entry", func(p *Program) { p.Entry = 9 }},
		{"bad cond target", func(p *Program) { p.Funcs[0].Blocks[0].Term.Target = BlockRef{5, 0} }},
		{"bad prob", func(p *Program) { p.Funcs[0].Blocks[0].Term.TakenProb = 1.5 }},
		{"bad callee", func(p *Program) { p.Funcs[0].Blocks[1].Term.Callee = 7 }},
		{"branch in body", func(p *Program) { p.Funcs[0].Blocks[0].Body[0].Class = isa.ClassJump }},
		{"mem without pattern", func(p *Program) { p.Funcs[0].Blocks[1].Body[0].Data = DataPattern{} }},
		{"cond at func end", func(p *Program) {
			p.Funcs[1].Blocks[0].Term = Terminator{Kind: TermCond, Target: BlockRef{1, 0}, TakenProb: 0.5}
		}},
		{"empty TermNone", func(p *Program) {
			p.Funcs[0].Blocks[0].Body = nil
			p.Funcs[0].Blocks[0].Term = Terminator{Kind: TermNone}
		}},
		{"indirect mismatch", func(p *Program) {
			p.Funcs[0].Blocks[2].Term = Terminator{Kind: TermIndirect, Targets: []BlockRef{{0, 0}}, Weights: nil}
		}},
	}
	for _, c := range cases {
		p := testProgram()
		c.mutate(p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a broken program", c.name)
		}
	}
}

func TestLayoutAddresses(t *testing.T) {
	p := testProgram()
	if p.Funcs[0].Blocks[0].Addr != 0x400000 {
		t.Fatalf("entry block at %v", p.Funcs[0].Blocks[0].Addr)
	}
	// main: b0=3 instrs, b1=2, b2=2 => 7 instrs = 28 bytes, leaf aligned to
	// 16 => 0x400000+32 = 0x400020.
	if got := p.Funcs[1].Blocks[0].Addr; got != 0x400020 {
		t.Fatalf("leaf at %v, want 0x400020", got)
	}
	if p.NumInstrs() != 9 {
		t.Fatalf("NumInstrs = %d, want 9", p.NumInstrs())
	}
	if p.StaticBytes() != 0x400020+8-0x400000 {
		t.Fatalf("StaticBytes = %d", p.StaticBytes())
	}
}

func TestLocate(t *testing.T) {
	p := testProgram()
	for fi, f := range p.Funcs {
		for bi, b := range f.Blocks {
			for i := 0; i < b.NumInstrs(); i++ {
				ref, idx, ok := p.Locate(b.InstrPC(i))
				if !ok || ref != (BlockRef{FuncID(fi), bi}) || idx != i {
					t.Fatalf("Locate(%v) = %v,%d,%v; want {%d,%d},%d", b.InstrPC(i), ref, idx, ok, fi, bi, i)
				}
			}
		}
	}
	if _, _, ok := p.Locate(0x3fffff); ok {
		t.Fatal("Locate accepted address below program")
	}
	if _, _, ok := p.Locate(p.Base + p.StaticBytes()); ok {
		t.Fatal("Locate accepted address past program")
	}
	// Alignment padding between main and leaf: 0x40001c is main's last
	// instruction end; 0x40001c..0x400020 is padding.
	if _, _, ok := p.Locate(0x40001c); ok {
		t.Fatal("Locate accepted padding address")
	}
	if _, _, ok := p.Locate(p.Base + 1); ok {
		t.Fatal("Locate accepted misaligned address")
	}
}

func TestExecutorDeterminism(t *testing.T) {
	p := testProgram()
	a := NewExecutor(p, 42)
	b := NewExecutor(p, 42)
	for i := 0; i < 5000; i++ {
		ia, ea := a.Next()
		ib, eb := b.Next()
		if ea != nil || eb != nil {
			t.Fatalf("unexpected end at %d: %v %v", i, ea, eb)
		}
		if ia != ib {
			t.Fatalf("streams diverged at %d: %v vs %v", i, ia, ib)
		}
	}
}

func TestExecutorResetReplays(t *testing.T) {
	p := testProgram()
	e := NewExecutor(p, 7)
	first, err := trace.Collect(trace.NewLimit(e, 2000), -1)
	if err != nil {
		t.Fatal(err)
	}
	e.Reset()
	second, err := trace.Collect(trace.NewLimit(e, 2000), -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != len(second) {
		t.Fatalf("lengths differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("replay diverged at %d", i)
		}
	}
}

func TestExecutorControlFlowConsistency(t *testing.T) {
	// Every instruction's PC must equal the previous instruction's NextPC:
	// the stream is a single well-formed dynamic path.
	p := testProgram()
	e := NewExecutor(p, 3)
	prev, err := e.Next()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20000; i++ {
		in, err := e.Next()
		if err != nil {
			t.Fatal(err)
		}
		if in.PC != prev.NextPC() {
			t.Fatalf("discontinuity at %d: prev %v -> %v, got %v", i, prev, prev.NextPC(), in.PC)
		}
		prev = in
	}
}

func TestExecutorEmitsAllClasses(t *testing.T) {
	p := testProgram()
	e := NewExecutor(p, 5)
	st, err := trace.Measure(trace.NewLimit(e, 10000))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []isa.Class{isa.ClassALU, isa.ClassLoad, isa.ClassStore, isa.ClassBranch, isa.ClassJump, isa.ClassCall, isa.ClassReturn} {
		if st.ByClass[c] == 0 {
			t.Errorf("class %v never emitted", c)
		}
	}
}

func TestExecutorDataAddressesInRegion(t *testing.T) {
	p := testProgram()
	region := Region{Base: 0x10000000, Size: 1 << 16}
	e := NewExecutor(p, 9)
	for i := 0; i < 10000; i++ {
		in, err := e.Next()
		if err != nil {
			t.Fatal(err)
		}
		if in.Class.IsMem() && !region.Contains(in.DataAddr) {
			t.Fatalf("data address %v outside region", in.DataAddr)
		}
	}
}

func TestExecutorEndsOnEntryReturn(t *testing.T) {
	f := &Func{ID: 0, Name: "main", Blocks: []*Block{
		{Body: []StaticInstr{{Class: isa.ClassALU}}, Term: Terminator{Kind: TermReturn}},
	}}
	p := &Program{Name: "tiny", Base: 0x1000, Funcs: []*Func{f}, Entry: 0}
	p.Layout()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	e := NewExecutor(p, 1)
	got, err := trace.Collect(e, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("collected %d instrs, want 2", len(got))
	}
	if _, err := e.Next(); !errors.Is(err, trace.ErrEnd) {
		t.Fatalf("want trace.ErrEnd, got %v", err)
	}
}

func TestTermNoneFallsThrough(t *testing.T) {
	f := &Func{ID: 0, Name: "main", Blocks: []*Block{
		{Body: []StaticInstr{{Class: isa.ClassALU}}, Term: Terminator{Kind: TermNone}},
		{Body: []StaticInstr{{Class: isa.ClassMul}}, Term: Terminator{Kind: TermReturn}},
	}}
	p := &Program{Name: "ft", Base: 0x1000, Funcs: []*Func{f}, Entry: 0}
	p.Layout()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	got, err := trace.Collect(NewExecutor(p, 1), -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d instrs, want 3 (no instruction for TermNone)", len(got))
	}
	if got[1].Class != isa.ClassMul || got[1].PC != got[0].PC+isa.InstrSize {
		t.Fatalf("fallthrough wrong: %v", got[1])
	}
}

func TestCloneIndependence(t *testing.T) {
	p := testProgram()
	q := p.Clone()
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	// Mutating the clone must not affect the original.
	q.Funcs[0].Blocks[0].Body[0].Class = isa.ClassMul
	if p.Funcs[0].Blocks[0].Body[0].Class != isa.ClassALU {
		t.Fatal("Clone shares body slices with original")
	}
	// Streams from original and (unmutated parts of) clone line up.
	a, _ := trace.Collect(trace.NewLimit(NewExecutor(p, 11), 1000), -1)
	p2 := testProgram()
	b, _ := trace.Collect(trace.NewLimit(NewExecutor(p2.Clone(), 11), 1000), -1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("clone stream diverged at %d", i)
		}
	}
}

func TestInsertPrefetchShiftsAddressesAndPreservesPath(t *testing.T) {
	p := testProgram()
	before, _ := trace.Collect(trace.NewLimit(NewExecutor(p, 13), 3000), -1)

	q := p.Clone()
	if err := q.InsertPrefetch(BlockRef{0, 0}, 1, BlockRef{1, 0}, 0); err != nil {
		t.Fatal(err)
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if q.NumInstrs() != p.NumInstrs()+1 {
		t.Fatalf("NumInstrs %d, want %d", q.NumInstrs(), p.NumInstrs()+1)
	}
	after, _ := trace.Collect(trace.NewLimit(NewExecutor(q, 13), 3000), -1)

	// Filter the prefetches out of the rewritten stream; the remaining
	// sequence must be the same control-flow path with shifted addresses.
	var filtered []isa.Instr
	prefetches := 0
	for _, in := range after {
		if in.Class == isa.ClassSwPrefetch {
			prefetches++
			continue
		}
		filtered = append(filtered, in)
	}
	if prefetches == 0 {
		t.Fatal("no prefetches executed")
	}
	n := len(filtered)
	if len(before) < n {
		n = len(before)
	}
	for i := 0; i < n; i++ {
		if before[i].Class != filtered[i].Class || before[i].Taken != filtered[i].Taken {
			t.Fatalf("control path diverged at %d: %v vs %v", i, before[i], filtered[i])
		}
		if before[i].Class.IsMem() && before[i].DataAddr != filtered[i].DataAddr {
			t.Fatalf("data stream diverged at %d: %v vs %v", i, before[i], filtered[i])
		}
	}
	// Blocks after the insertion point in the same function must shift by
	// one instruction slot (function alignment can absorb the shift across
	// function boundaries).
	if q.Funcs[0].Blocks[1].Addr != p.Funcs[0].Blocks[1].Addr+isa.InstrSize {
		t.Fatalf("insertion did not shift later blocks: %v vs %v",
			q.Funcs[0].Blocks[1].Addr, p.Funcs[0].Blocks[1].Addr)
	}
}

func TestInsertPrefetchErrors(t *testing.T) {
	p := testProgram()
	if err := p.InsertPrefetch(BlockRef{9, 0}, 0, BlockRef{0, 0}, 0); err == nil {
		t.Fatal("accepted bad block")
	}
	if err := p.InsertPrefetch(BlockRef{0, 0}, 99, BlockRef{0, 0}, 0); err == nil {
		t.Fatal("accepted bad position")
	}
	if err := p.InsertPrefetch(BlockRef{0, 0}, 0, BlockRef{9, 9}, 0); err == nil {
		t.Fatal("accepted bad target")
	}
}

func TestPrefetchTargetTracksLayout(t *testing.T) {
	p := testProgram()
	q := p.Clone()
	// Prefetch in main targeting the leaf entry.
	if err := q.InsertPrefetch(BlockRef{0, 1}, 0, BlockRef{1, 0}, 0); err != nil {
		t.Fatal(err)
	}
	e := NewExecutor(q, 17)
	var pfTarget isa.Addr
	for i := 0; i < 5000; i++ {
		in, err := e.Next()
		if err != nil {
			t.Fatal(err)
		}
		if in.Class == isa.ClassSwPrefetch {
			pfTarget = in.Target
			break
		}
	}
	if pfTarget != q.Funcs[1].Blocks[0].Addr {
		t.Fatalf("prefetch target %v, want shifted leaf address %v", pfTarget, q.Funcs[1].Blocks[0].Addr)
	}
}

func TestLocateRoundTripProperty(t *testing.T) {
	p := testProgram()
	f := func(fi8, bi8, ii8 uint8) bool {
		fi := int(fi8) % len(p.Funcs)
		f := p.Funcs[fi]
		bi := int(bi8) % len(f.Blocks)
		b := f.Blocks[bi]
		ii := int(ii8) % b.NumInstrs()
		ref, idx, ok := p.Locate(b.InstrPC(ii))
		return ok && ref.Func == FuncID(fi) && ref.Block == bi && idx == ii
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsCallCycles(t *testing.T) {
	region := Region{Base: 0x10000000, Size: 1 << 12}
	_ = region
	// f0 calls f1, f1 calls f0: unbounded recursion.
	mk := func(callee FuncID) []*Block {
		return []*Block{
			{Body: []StaticInstr{{Class: isa.ClassALU}}, Term: Terminator{Kind: TermCall, Callee: callee}},
			{Body: []StaticInstr{{Class: isa.ClassALU}}, Term: Terminator{Kind: TermReturn}},
		}
	}
	p := &Program{Name: "cyc", Base: 0x1000, Entry: 0, Funcs: []*Func{
		{ID: 0, Name: "a", Blocks: mk(1)},
		{ID: 1, Name: "b", Blocks: mk(0)},
	}}
	p.Layout()
	if err := p.Validate(); err == nil {
		t.Fatal("accepted a cyclic call graph")
	}
	// Self-recursion is also rejected.
	q := &Program{Name: "self", Base: 0x1000, Entry: 0, Funcs: []*Func{
		{ID: 0, Name: "a", Blocks: mk(0)},
	}}
	q.Layout()
	if err := q.Validate(); err == nil {
		t.Fatal("accepted self-recursion")
	}
	// An acyclic chain stays valid.
	r := &Program{Name: "ok", Base: 0x1000, Entry: 0, Funcs: []*Func{
		{ID: 0, Name: "a", Blocks: mk(1)},
		{ID: 1, Name: "b", Blocks: []*Block{
			{Body: []StaticInstr{{Class: isa.ClassALU}}, Term: Terminator{Kind: TermReturn}},
		}},
	}}
	r.Layout()
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateIndirectCallCycle(t *testing.T) {
	// A cycle through an indirect call site is caught too.
	p := &Program{Name: "icyc", Base: 0x1000, Entry: 0, Funcs: []*Func{
		{ID: 0, Name: "a", Blocks: []*Block{
			{Body: []StaticInstr{{Class: isa.ClassALU}},
				Term: Terminator{Kind: TermIndirectCall, Callees: []FuncID{1}, Weights: []float64{1}}},
			{Body: []StaticInstr{{Class: isa.ClassALU}}, Term: Terminator{Kind: TermReturn}},
		}},
		{ID: 1, Name: "b", Blocks: []*Block{
			{Body: []StaticInstr{{Class: isa.ClassALU}}, Term: Terminator{Kind: TermCall, Callee: 0}},
			{Body: []StaticInstr{{Class: isa.ClassALU}}, Term: Terminator{Kind: TermReturn}},
		}},
	}}
	p.Layout()
	if err := p.Validate(); err == nil {
		t.Fatal("accepted indirect call cycle")
	}
}
