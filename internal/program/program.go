// Package program models a synthetic static program: a set of functions made
// of basic blocks with realistic terminators (biased conditionals, loops,
// calls/returns, indirect jumps). An Executor walks the program drawing
// branch outcomes from a deterministic RNG and emits the dynamic instruction
// stream the simulator consumes.
//
// The package exists because the paper evaluates on 48 proprietary CVP-1
// traces we cannot ship. A program object gives us something a trace cannot:
// AsmDB's binary-rewriting step. Inserting a software prefetch into a block
// shifts every later address (the paper's static code bloat and
// cache-line-content shift), and re-running the executor with the same seed
// replays the identical control-flow path over the new layout — exactly the
// trace-regeneration methodology described in the paper's §IV.
package program

import (
	"fmt"
	"sort"

	"frontsim/internal/isa"
	"frontsim/internal/trace"
	"frontsim/internal/xrand"
)

// FuncID identifies a function within a Program.
type FuncID int

// BlockRef identifies a basic block as (function, block index).
type BlockRef struct {
	Func  FuncID
	Block int
}

// FuncAlign is the byte alignment of function entry points, mirroring
// typical compiler output; it creates the partially-used cache lines real
// binaries have.
const FuncAlign = 16

// TermKind enumerates how a basic block ends.
type TermKind uint8

const (
	// TermNone falls through to the next block in the function without a
	// control instruction (a label boundary, e.g. a loop header).
	TermNone TermKind = iota
	// TermCond is a conditional direct branch: taken with probability
	// TakenProb to Target, otherwise falls through.
	TermCond
	// TermJump is an unconditional direct jump to Target.
	TermJump
	// TermCall is a direct call to Callee; execution resumes at the next
	// block of the current function.
	TermCall
	// TermReturn pops the call stack.
	TermReturn
	// TermIndirect is an indirect jump choosing among Targets by Weights.
	TermIndirect
	// TermIndirectCall is an indirect call choosing among Callees by
	// Weights.
	TermIndirectCall
)

// Terminator describes a block's ending control transfer.
type Terminator struct {
	Kind      TermKind
	Target    BlockRef   // TermCond, TermJump
	TakenProb float64    // TermCond
	Callee    FuncID     // TermCall
	Targets   []BlockRef // TermIndirect
	Callees   []FuncID   // TermIndirectCall
	Weights   []float64  // TermIndirect, TermIndirectCall
	// StickyProb is the probability a dynamic execution repeats the
	// branch's previous outcome (conditional direction or indirect target)
	// instead of redrawing. Real branch outcomes are temporally
	// correlated — request batches, phases — which is what makes them
	// predictable; independent draws would cap any predictor's accuracy
	// at the static bias. Zero disables stickiness (loops keep geometric
	// trip counts).
	StickyProb float64
}

// instrCount returns how many instructions the terminator contributes.
func (t *Terminator) instrCount() int {
	if t.Kind == TermNone {
		return 0
	}
	return 1
}

// class maps the terminator to its instruction class.
func (t *Terminator) class() isa.Class {
	switch t.Kind {
	case TermCond:
		return isa.ClassBranch
	case TermJump:
		return isa.ClassJump
	case TermCall:
		return isa.ClassCall
	case TermReturn:
		return isa.ClassReturn
	case TermIndirect:
		return isa.ClassIndirect
	case TermIndirectCall:
		return isa.ClassIndirectCall
	}
	return isa.ClassALU
}

// DataKind enumerates how a memory instruction generates effective
// addresses.
type DataKind uint8

const (
	// DataNone marks a non-memory instruction.
	DataNone DataKind = iota
	// DataStride walks Region with a fixed stride, wrapping.
	DataStride
	// DataRandom draws uniformly within Region.
	DataRandom
	// DataPoint always touches Region.Base (a hot global).
	DataPoint
)

// Region is a data address range.
type Region struct {
	Base isa.Addr
	Size uint64
}

// Contains reports whether a falls inside the region.
func (r Region) Contains(a isa.Addr) bool {
	return a >= r.Base && uint64(a-r.Base) < r.Size
}

// DataPattern describes a static memory instruction's address behaviour.
type DataPattern struct {
	Kind   DataKind
	Region Region
	Stride uint64
}

// StaticInstr is one static instruction in a block body. Terminators are
// represented separately by the block's Terminator.
type StaticInstr struct {
	Class isa.Class
	Data  DataPattern
	// PrefetchTarget is, for ClassSwPrefetch, the code location whose cache
	// line the prefetch fetches. Kept as a block reference plus instruction
	// offset so that re-laying-out the program after an insertion
	// automatically retargets the prefetch to the shifted address — this is
	// the paper's "AsmDB accounts for this shift during prefetch
	// generation".
	PrefetchTarget BlockRef
	PrefetchOffset int
}

// Block is a basic block: a run of body instructions plus a terminator.
type Block struct {
	Body []StaticInstr
	Term Terminator

	// Addr is the block's start address; assigned by Program.Layout.
	Addr isa.Addr
	// globalIndex is the global index of the block's first instruction;
	// assigned by Layout and used for per-static-instruction executor
	// state.
	globalIndex int
}

// NumInstrs returns the number of instructions the block occupies.
func (b *Block) NumInstrs() int { return len(b.Body) + b.Term.instrCount() }

// Size returns the block size in bytes.
func (b *Block) Size() isa.Addr { return isa.Addr(b.NumInstrs() * isa.InstrSize) }

// InstrPC returns the address of the i-th instruction in the block (body
// instructions first, terminator last). Valid only after Layout.
func (b *Block) InstrPC(i int) isa.Addr { return b.Addr + isa.Addr(i*isa.InstrSize) }

// Func is a function: an ordered list of blocks. Block order defines
// fall-through adjacency and address layout.
type Func struct {
	ID     FuncID
	Name   string
	Blocks []*Block
}

// Program is a complete synthetic binary.
type Program struct {
	Name  string
	Base  isa.Addr
	Funcs []*Func
	Entry FuncID

	totalInstrs int
	sorted      []*Block // all blocks in address order, for Locate
	laidOut     bool
}

// Block returns the block identified by ref, or nil.
func (p *Program) Block(ref BlockRef) *Block {
	if int(ref.Func) < 0 || int(ref.Func) >= len(p.Funcs) {
		return nil
	}
	f := p.Funcs[ref.Func]
	if ref.Block < 0 || ref.Block >= len(f.Blocks) {
		return nil
	}
	return f.Blocks[ref.Block]
}

// EntryBlock returns the reference to the program's first executed block.
func (p *Program) EntryBlock() BlockRef { return BlockRef{Func: p.Entry, Block: 0} }

// NumInstrs returns the total static instruction count. Valid after Layout.
func (p *Program) NumInstrs() int { return p.totalInstrs }

// StaticBytes returns the laid-out code size in bytes including alignment
// padding. Valid after Layout.
func (p *Program) StaticBytes() isa.Addr {
	if len(p.sorted) == 0 {
		return 0
	}
	last := p.sorted[len(p.sorted)-1]
	return last.Addr + last.Size() - p.Base
}

// Layout assigns addresses to every block: functions are placed in ID order
// with FuncAlign alignment, blocks within a function are contiguous in
// declaration order. Layout must be called after any structural mutation
// (such as a prefetch insertion) and before execution.
func (p *Program) Layout() {
	addr := p.Base
	global := 0
	p.sorted = p.sorted[:0]
	for _, f := range p.Funcs {
		if rem := uint64(addr) % FuncAlign; rem != 0 {
			addr += isa.Addr(FuncAlign - rem)
		}
		for _, b := range f.Blocks {
			b.Addr = addr
			b.globalIndex = global
			addr += b.Size()
			global += b.NumInstrs()
			p.sorted = append(p.sorted, b)
		}
	}
	p.totalInstrs = global
	p.laidOut = true
}

// Locate maps a code address to (block, instruction index). It returns
// ok=false for addresses outside the program or in alignment padding.
// Valid after Layout.
func (p *Program) Locate(a isa.Addr) (ref BlockRef, instr int, ok bool) {
	i := sort.Search(len(p.sorted), func(i int) bool {
		b := p.sorted[i]
		return b.Addr+b.Size() > a
	})
	if i >= len(p.sorted) {
		return BlockRef{}, 0, false
	}
	b := p.sorted[i]
	if a < b.Addr || (a-b.Addr)%isa.InstrSize != 0 {
		return BlockRef{}, 0, false
	}
	// Recover the (func, block) reference; blocks carry no back-pointer to
	// keep Clone simple, so scan function extents. Layout order is function
	// ID order, letting us binary search functions too, but programs have
	// few enough functions relative to Locate calls that a per-call scan
	// would still show up in profiles — so precompute via the sorted index.
	ref, ok = p.refOf(b)
	if !ok {
		return BlockRef{}, 0, false
	}
	return ref, int((a - b.Addr) / isa.InstrSize), true
}

// refOf finds the BlockRef for a *Block by address binary search within the
// owning function.
func (p *Program) refOf(target *Block) (BlockRef, bool) {
	fi := sort.Search(len(p.Funcs), func(i int) bool {
		f := p.Funcs[i]
		last := f.Blocks[len(f.Blocks)-1]
		return last.Addr+last.Size() > target.Addr
	})
	if fi >= len(p.Funcs) {
		return BlockRef{}, false
	}
	f := p.Funcs[fi]
	bi := sort.Search(len(f.Blocks), func(i int) bool {
		b := f.Blocks[i]
		return b.Addr+b.Size() > target.Addr
	})
	if bi >= len(f.Blocks) || f.Blocks[bi] != target {
		return BlockRef{}, false
	}
	return BlockRef{Func: f.ID, Block: bi}, true
}

// Clone returns a deep copy of the program, suitable for mutation by the
// software-prefetch inserter without disturbing the original.
func (p *Program) Clone() *Program {
	q := &Program{Name: p.Name, Base: p.Base, Entry: p.Entry}
	q.Funcs = make([]*Func, len(p.Funcs))
	for i, f := range p.Funcs {
		nf := &Func{ID: f.ID, Name: f.Name, Blocks: make([]*Block, len(f.Blocks))}
		for j, b := range f.Blocks {
			nb := &Block{
				Body: append([]StaticInstr(nil), b.Body...),
				Term: b.Term,
			}
			nb.Term.Targets = append([]BlockRef(nil), b.Term.Targets...)
			nb.Term.Callees = append([]FuncID(nil), b.Term.Callees...)
			nb.Term.Weights = append([]float64(nil), b.Term.Weights...)
			nf.Blocks[j] = nb
		}
		q.Funcs[i] = nf
	}
	q.Layout()
	return q
}

// InsertPrefetch inserts a software instruction prefetch into block ref at
// body position pos (0 = before the first body instruction), targeting the
// instruction at (target, targetOff). The caller must re-run Layout — done
// here for convenience — before executing. Use InsertPrefetchDeferred when
// applying many insertions: re-laying-out per insertion is quadratic.
func (p *Program) InsertPrefetch(ref BlockRef, pos int, target BlockRef, targetOff int) error {
	if err := p.InsertPrefetchDeferred(ref, pos, target, targetOff); err != nil {
		return err
	}
	p.Layout()
	return nil
}

// InsertPrefetchDeferred performs the insertion without re-laying-out the
// program; the caller must call Layout before executing or using
// address-dependent queries.
func (p *Program) InsertPrefetchDeferred(ref BlockRef, pos int, target BlockRef, targetOff int) error {
	b := p.Block(ref)
	if b == nil {
		return fmt.Errorf("program: no block %v", ref)
	}
	if pos < 0 || pos > len(b.Body) {
		return fmt.Errorf("program: insert position %d out of range [0,%d]", pos, len(b.Body))
	}
	if p.Block(target) == nil {
		return fmt.Errorf("program: no prefetch target block %v", target)
	}
	in := StaticInstr{
		Class:          isa.ClassSwPrefetch,
		PrefetchTarget: target,
		PrefetchOffset: targetOff,
	}
	b.Body = append(b.Body, StaticInstr{})
	copy(b.Body[pos+1:], b.Body[pos:])
	b.Body[pos] = in
	p.laidOut = false
	return nil
}

// Validate checks structural invariants: every reference resolves, blocks
// requiring fall-through have a following block, conditional probabilities
// are probabilities, the entry function exists and does not return past an
// empty stack, and no block is empty with TermNone (which would emit
// nothing and loop forever).
func (p *Program) Validate() error {
	if len(p.Funcs) == 0 {
		return fmt.Errorf("program %q: no functions", p.Name)
	}
	if int(p.Entry) < 0 || int(p.Entry) >= len(p.Funcs) {
		return fmt.Errorf("program %q: entry %d out of range", p.Name, p.Entry)
	}
	callGraph := make(map[int][]int)
	for fi, f := range p.Funcs {
		if f.ID != FuncID(fi) {
			return fmt.Errorf("func %d: ID %d mismatches position", fi, f.ID)
		}
		if len(f.Blocks) == 0 {
			return fmt.Errorf("func %d: no blocks", fi)
		}
		for bi, b := range f.Blocks {
			needsFallthrough := false
			switch b.Term.Kind {
			case TermNone:
				if len(b.Body) == 0 {
					return fmt.Errorf("func %d block %d: empty block with no terminator", fi, bi)
				}
				needsFallthrough = true
			case TermCond:
				if b.Term.TakenProb < 0 || b.Term.TakenProb > 1 {
					return fmt.Errorf("func %d block %d: TakenProb %v", fi, bi, b.Term.TakenProb)
				}
				if p.Block(b.Term.Target) == nil {
					return fmt.Errorf("func %d block %d: bad cond target %v", fi, bi, b.Term.Target)
				}
				needsFallthrough = true
			case TermJump:
				if p.Block(b.Term.Target) == nil {
					return fmt.Errorf("func %d block %d: bad jump target %v", fi, bi, b.Term.Target)
				}
			case TermCall:
				if int(b.Term.Callee) < 0 || int(b.Term.Callee) >= len(p.Funcs) {
					return fmt.Errorf("func %d block %d: bad callee %d", fi, bi, b.Term.Callee)
				}
				needsFallthrough = true
			case TermReturn:
				// Always structurally fine; the entry function returning on
				// an empty stack ends the stream, which is legal.
			case TermIndirect:
				if len(b.Term.Targets) == 0 || len(b.Term.Targets) != len(b.Term.Weights) {
					return fmt.Errorf("func %d block %d: indirect targets/weights mismatch", fi, bi)
				}
				for _, t := range b.Term.Targets {
					if p.Block(t) == nil {
						return fmt.Errorf("func %d block %d: bad indirect target %v", fi, bi, t)
					}
				}
			case TermIndirectCall:
				if len(b.Term.Callees) == 0 || len(b.Term.Callees) != len(b.Term.Weights) {
					return fmt.Errorf("func %d block %d: indirect callees/weights mismatch", fi, bi)
				}
				for _, c := range b.Term.Callees {
					if int(c) < 0 || int(c) >= len(p.Funcs) {
						return fmt.Errorf("func %d block %d: bad indirect callee %d", fi, bi, c)
					}
				}
				needsFallthrough = true
			default:
				return fmt.Errorf("func %d block %d: unknown terminator kind %d", fi, bi, b.Term.Kind)
			}
			if needsFallthrough && bi+1 >= len(f.Blocks) {
				return fmt.Errorf("func %d block %d: terminator kind %d requires a fall-through block", fi, bi, b.Term.Kind)
			}
			switch b.Term.Kind {
			case TermCall:
				callGraph[fi] = append(callGraph[fi], int(b.Term.Callee))
			case TermIndirectCall:
				for _, c := range b.Term.Callees {
					callGraph[fi] = append(callGraph[fi], int(c))
				}
			}
			for ii, in := range b.Body {
				if in.Class.IsBranch() {
					return fmt.Errorf("func %d block %d instr %d: branch class %v in body", fi, bi, ii, in.Class)
				}
				if in.Class == isa.ClassSwPrefetch && p.Block(in.PrefetchTarget) == nil {
					return fmt.Errorf("func %d block %d instr %d: bad prefetch target %v", fi, bi, ii, in.PrefetchTarget)
				}
				if in.Class.IsMem() && in.Data.Kind == DataNone {
					return fmt.Errorf("func %d block %d instr %d: memory instruction without data pattern", fi, bi, ii)
				}
			}
		}
	}
	// The call graph must be acyclic: the executor has no recursion
	// semantics (its stack is bounded by MaxCallDepth and a cycle would
	// recurse unboundedly since calls are unconditional block
	// terminators).
	if cyc := findCallCycle(callGraph, len(p.Funcs)); cyc >= 0 {
		return fmt.Errorf("program %q: call graph cycle through func %d", p.Name, cyc)
	}
	return nil
}

// findCallCycle runs an iterative three-color DFS over the call graph,
// returning a function on a cycle or -1.
func findCallCycle(g map[int][]int, n int) int {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]uint8, n)
	for start := 0; start < n; start++ {
		if color[start] != white {
			continue
		}
		type frame struct {
			node int
			next int
		}
		stack := []frame{{node: start}}
		color[start] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next < len(g[f.node]) {
				succ := g[f.node][f.next]
				f.next++
				switch color[succ] {
				case white:
					color[succ] = gray
					stack = append(stack, frame{node: succ})
				case gray:
					return succ
				}
				continue
			}
			color[f.node] = black
			stack = stack[:len(stack)-1]
		}
	}
	return -1
}

// Executor walks the program emitting its dynamic instruction stream. It
// implements trace.Source. Two independent RNG streams drive control flow
// and data addresses so that inserting non-memory instructions (software
// prefetches) cannot perturb either sequence — the property that makes
// profile-then-rewrite-then-re-execute yield the same control-flow path.
type Executor struct {
	prog *Program
	seed uint64

	ctrl *xrand.Rand
	data *xrand.Rand

	cur   BlockRef
	blk   *Block // cache of prog.Block(cur), refreshed on every transfer
	idx   int
	stack []BlockRef // return sites
	ptrs  []isa.Addr // per-static-instruction stride pointers
	// Per-terminator sticky state, indexed by the terminator's global
	// instruction index: last conditional outcome (0 unset, 1 not-taken,
	// 2 taken) and last indirect choice (-1 unset).
	condLast []uint8
	indLast  []int32
	done     bool
}

// MaxCallDepth bounds the executor call stack; exceeding it indicates a
// generator bug (the generated call graph is a DAG).
const MaxCallDepth = 1024

// NewExecutor creates an executor over prog (which must be laid out and
// valid) with the given seed.
func NewExecutor(prog *Program, seed uint64) *Executor {
	if !prog.laidOut {
		prog.Layout()
	}
	e := &Executor{prog: prog, seed: seed}
	e.Reset()
	return e
}

// Reset implements trace.Resetter: rewinds to the program entry with the
// original seed, replaying the identical stream.
func (e *Executor) Reset() {
	root := xrand.New(e.seed)
	e.ctrl = root.Fork()
	e.data = root.Fork()
	e.cur = e.prog.EntryBlock()
	e.blk = e.prog.Block(e.cur)
	e.idx = 0
	e.stack = e.stack[:0]
	if cap(e.ptrs) < e.prog.totalInstrs {
		e.ptrs = make([]isa.Addr, e.prog.totalInstrs)
		e.condLast = make([]uint8, e.prog.totalInstrs)
		e.indLast = make([]int32, e.prog.totalInstrs)
	} else {
		e.ptrs = e.ptrs[:e.prog.totalInstrs]
		e.condLast = e.condLast[:e.prog.totalInstrs]
		e.indLast = e.indLast[:e.prog.totalInstrs]
		for i := range e.ptrs {
			e.ptrs[i] = 0
			e.condLast[i] = 0
			e.indLast[i] = 0
		}
	}
	for i := range e.indLast {
		e.indLast[i] = -1
	}
	e.done = false
}

// Next implements trace.Source.
func (e *Executor) Next() (isa.Instr, error) {
	for {
		if e.done {
			return isa.Instr{}, trace.ErrEnd
		}
		b := e.blk
		if e.idx < len(b.Body) {
			in := e.emitBody(b)
			e.idx++
			return in, nil
		}
		// At the terminator.
		if b.Term.Kind == TermNone {
			e.advanceFallthrough()
			continue
		}
		in := e.emitTerminator(b)
		return in, nil
	}
}

// NextBlock implements trace.BlockSource: one branch-terminated (or
// max-capped) run of contiguous instructions per call, byte-identical to
// the stream Next yields. The executor's stream can only end at a return
// branch, so the run never carries a dangling ErrEnd tail.
func (e *Executor) NextBlock(buf []isa.Instr, max int) ([]isa.Instr, error) {
	// Instructions are emitted straight into their final slots; reserving
	// capacity up front keeps the hot loop free of append bookkeeping.
	if cap(buf) < max {
		nb := make([]isa.Instr, len(buf), max)
		copy(nb, buf)
		buf = nb
	}
	for len(buf) < max {
		if e.done {
			if len(buf) == 0 {
				return buf, trace.ErrEnd
			}
			return buf, nil
		}
		b := e.blk
		for e.idx < len(b.Body) && len(buf) < max {
			buf = buf[:len(buf)+1]
			e.emitBodyInto(b, &buf[len(buf)-1])
			e.idx++
		}
		if len(buf) == max {
			return buf, nil // capped before the terminator
		}
		if b.Term.Kind == TermNone {
			e.advanceFallthrough()
			continue
		}
		buf = buf[:len(buf)+1]
		e.emitTerminatorInto(b, &buf[len(buf)-1])
		return buf, nil
	}
	return buf, nil
}

func (e *Executor) emitBody(b *Block) isa.Instr {
	var in isa.Instr
	e.emitBodyInto(b, &in)
	return in
}

func (e *Executor) emitBodyInto(b *Block, in *isa.Instr) {
	si := &b.Body[e.idx]
	*in = isa.Instr{PC: b.InstrPC(e.idx), Class: si.Class}
	switch {
	case si.Class.IsMem():
		in.DataAddr = e.dataAddr(b.globalIndex+e.idx, si)
	case si.Class == isa.ClassSwPrefetch:
		tb := e.prog.Block(si.PrefetchTarget)
		off := si.PrefetchOffset
		if off >= tb.NumInstrs() {
			off = 0
		}
		in.Target = tb.InstrPC(off)
	}
}

func (e *Executor) dataAddr(global int, si *StaticInstr) isa.Addr {
	switch si.Data.Kind {
	case DataStride:
		p := e.ptrs[global]
		if p == 0 {
			// Start each stream at a deterministic but instr-specific
			// offset inside the region.
			p = si.Data.Region.Base + isa.Addr(e.data.Uint64n(max64(si.Data.Region.Size, 1)))&^7
			if !si.Data.Region.Contains(p) {
				p = si.Data.Region.Base
			}
		}
		next := p + isa.Addr(si.Data.Stride)
		if !si.Data.Region.Contains(next) {
			next = si.Data.Region.Base
		}
		e.ptrs[global] = next
		return p
	case DataRandom:
		off := e.data.Uint64n(max64(si.Data.Region.Size, 1)) &^ 7
		return si.Data.Region.Base + isa.Addr(off)
	case DataPoint:
		return si.Data.Region.Base
	}
	return 0
}

func (e *Executor) emitTerminator(b *Block) isa.Instr {
	var in isa.Instr
	e.emitTerminatorInto(b, &in)
	return in
}

func (e *Executor) emitTerminatorInto(b *Block, in *isa.Instr) {
	pc := b.InstrPC(len(b.Body))
	termIdx := b.globalIndex + len(b.Body)
	*in = isa.Instr{PC: pc, Class: b.Term.class()}
	switch b.Term.Kind {
	case TermCond:
		var taken bool
		if last := e.condLast[termIdx]; last != 0 && b.Term.StickyProb > 0 && e.ctrl.Bool(b.Term.StickyProb) {
			taken = last == 2
		} else {
			taken = e.ctrl.Bool(b.Term.TakenProb)
		}
		if taken {
			e.condLast[termIdx] = 2
		} else {
			e.condLast[termIdx] = 1
		}
		in.Taken = taken
		in.Target = e.prog.Block(b.Term.Target).Addr
		if taken {
			e.goTo(b.Term.Target)
		} else {
			e.advanceFallthrough()
		}
	case TermJump:
		in.Taken = true
		in.Target = e.prog.Block(b.Term.Target).Addr
		e.goTo(b.Term.Target)
	case TermCall:
		in.Taken = true
		callee := e.prog.Funcs[b.Term.Callee]
		in.Target = callee.Blocks[0].Addr
		e.call(FuncID(b.Term.Callee))
	case TermReturn:
		in.Taken = true
		if len(e.stack) == 0 {
			e.done = true
			in.Target = e.prog.Block(e.prog.EntryBlock()).Addr
			return
		}
		ret := e.stack[len(e.stack)-1]
		e.stack = e.stack[:len(e.stack)-1]
		in.Target = e.prog.Block(ret).Addr
		e.goTo(ret)
	case TermIndirect:
		i := e.indirectChoice(termIdx, &b.Term)
		t := b.Term.Targets[i]
		in.Taken = true
		in.Target = e.prog.Block(t).Addr
		e.goTo(t)
	case TermIndirectCall:
		i := e.indirectChoice(termIdx, &b.Term)
		callee := b.Term.Callees[i]
		in.Taken = true
		in.Target = e.prog.Funcs[callee].Blocks[0].Addr
		e.call(callee)
	}
}

// indirectChoice picks an indirect target index, repeating the previous
// choice with the terminator's sticky probability.
func (e *Executor) indirectChoice(termIdx int, t *Terminator) int {
	if last := e.indLast[termIdx]; last >= 0 && t.StickyProb > 0 && e.ctrl.Bool(t.StickyProb) {
		return int(last)
	}
	i := e.ctrl.WeightedChoice(t.Weights)
	e.indLast[termIdx] = int32(i)
	return i
}

func (e *Executor) call(callee FuncID) {
	ret := BlockRef{Func: e.cur.Func, Block: e.cur.Block + 1}
	if len(e.stack) >= MaxCallDepth {
		panic(fmt.Sprintf("program: call depth exceeded %d in %q", MaxCallDepth, e.prog.Name))
	}
	e.stack = append(e.stack, ret)
	e.goTo(BlockRef{Func: callee, Block: 0})
}

func (e *Executor) goTo(ref BlockRef) {
	e.cur = ref
	e.blk = e.prog.Block(ref)
	e.idx = 0
}

func (e *Executor) advanceFallthrough() {
	e.goTo(BlockRef{Func: e.cur.Func, Block: e.cur.Block + 1})
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
