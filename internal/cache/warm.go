package cache

import "frontsim/internal/isa"

// Warm installs lineAddr's content with no timing or statistics side
// effects: the functional phase of sampled simulation (SMARTS-style,
// internal/core) streams instructions through the machine to keep cache
// contents, replacement state and inclusion behaviour warm between
// detailed windows, without perturbing the bandwidth model or the measured
// counters.
//
// Semantics relative to Access:
//
//   - a present line is touched (replacement recency advances) and, like a
//     demand hit, loses its prefetch mark — the functional stream did
//     demand the line, it just did so outside simulated time;
//   - a missing line recurses into lower cache levels (content inclusion
//     matches the demand path) and fills with ready=0: the line is
//     immediately usable when detailed simulation resumes, as if its fill
//     completed in the skipped-over past;
//   - DRAM is never told: channel busy state (nextFree) is timing, and a
//     phase that consumes no cycles must not occupy future bus slots;
//   - no counter moves, so measured-window statistics see none of it.
func (l *Level) Warm(lineAddr isa.Addr) {
	lineAddr = lineAddr.Line()
	set := l.setIndex(lineAddr)
	key := l.tagOf(lineAddr) + 1
	base := set * l.cfg.Ways
	keys := l.keys[base : base+l.cfg.Ways]

	wi := -1
	if h := int(l.mru[set]); keys[h] == key {
		wi = h
	} else {
		for i, k := range keys {
			if k == key {
				wi = i
				l.mru[set] = int32(i)
				break
			}
		}
	}
	if wi >= 0 {
		w := &l.lines[base+wi]
		w.prefetch = false
		l.touch(base + wi)
		return
	}

	// Only cache levels below are warmed; the recursion stops at DRAM (or
	// any non-Level backend), which holds timing state, not content.
	if nl, ok := l.next.(*Level); ok {
		nl.Warm(lineAddr)
	}
	vi := l.victim(base)
	l.lines[base+vi] = line{tag: key - 1, valid: true}
	keys[vi] = key
	l.mru[set] = int32(vi)
	l.fill(base + vi)
}

// Warm installs pc's translation with no statistics side effects: a
// resident page's recency advances, a missing page installs as if its walk
// completed outside simulated time.
func (t *ITLB) Warm(pc isa.Addr) {
	page := t.page(pc)
	if t.probe(page, true) {
		return
	}
	t.install(page)
}

// Resident reports whether pc's page is translated, with no side effects
// at all (no recency update, no counters).
func (t *ITLB) Resident(pc isa.Addr) bool {
	return t.probe(t.page(pc), false)
}

// WarmInstr warms the instruction path for pc: the L1-I line (recursing
// into L2/LLC) and, when modelled, the I-TLB translation. The functional
// counterpart of FetchInstr.
func (h *Hierarchy) WarmInstr(pc isa.Addr) {
	h.L1I.Warm(pc.Line())
	if h.ITLB != nil {
		h.ITLB.Warm(pc)
	}
}

// WarmPrefetchInstr warms an instruction line a prefetch would have
// filled. It mirrors PrefetchInstr's TLB interaction: in drop mode a
// non-resident page drops the fill (and leaves the TLB untouched — the
// detailed path's probe is a pure lookup there too); otherwise the page
// installs like a demand translation.
func (h *Hierarchy) WarmPrefetchInstr(pc isa.Addr) {
	if h.ITLB != nil {
		if h.ITLB.Config().DropPrefetchOnMiss {
			if !h.ITLB.Resident(pc) {
				return
			}
		} else {
			h.ITLB.Warm(pc)
		}
	}
	h.L1I.Warm(pc.Line())
}

// WarmData warms the data path for addr: the functional counterpart of
// Load and Store (both allocate through the L1-D).
func (h *Hierarchy) WarmData(addr isa.Addr) {
	h.L1D.Warm(addr.Line())
}
