package cache

import (
	"fmt"

	"frontsim/internal/isa"
)

// ITLBConfig sizes the instruction TLB. The zero value (Entries == 0)
// disables the model entirely, preserving the pre-TLB machine; a positive
// Entries enables translation on the instruction fetch path with TLB-aware
// prefetch dropping in the style of the front-end TLB characterization
// literature: speculative fills whose page is not resident can be dropped
// instead of triggering a page walk.
type ITLBConfig struct {
	// Entries and Ways size the set-associative TLB; Entries == 0 disables
	// the model and every other field is ignored.
	Entries int
	Ways    int
	// PageBytes is the translation granule (a power of two, >= LineSize).
	PageBytes int
	// MissLatency is the page-walk penalty added to the completion of an
	// instruction access whose page misses the TLB.
	MissLatency Cycle
	// DropPrefetchOnMiss drops prefetch fills whose page is not resident
	// instead of walking for them: a speculative fill is not worth a page
	// walk, and dropping keeps prefetchers from thrashing the TLB.
	DropPrefetchOnMiss bool
}

// DefaultITLBConfig returns a 64-entry 4-way TLB over 4 KiB pages with a
// 30-cycle walk, dropping prefetches on a miss.
func DefaultITLBConfig() ITLBConfig {
	return ITLBConfig{Entries: 64, Ways: 4, PageBytes: 4096, MissLatency: 30, DropPrefetchOnMiss: true}
}

// Enabled reports whether the configuration models a TLB at all.
func (c ITLBConfig) Enabled() bool { return c.Entries > 0 }

// Validate checks the configuration; the disabled zero value is valid.
func (c ITLBConfig) Validate() error {
	if !c.Enabled() {
		return nil
	}
	if c.Ways <= 0 || c.Entries%c.Ways != 0 {
		return fmt.Errorf("itlb: geometry %d/%d invalid", c.Entries, c.Ways)
	}
	sets := c.Entries / c.Ways
	if sets&(sets-1) != 0 {
		return fmt.Errorf("itlb: set count %d not a power of two", sets)
	}
	if c.PageBytes < isa.LineSize || c.PageBytes&(c.PageBytes-1) != 0 {
		return fmt.Errorf("itlb: PageBytes %d must be a power of two >= %d", c.PageBytes, isa.LineSize)
	}
	if c.MissLatency < 0 {
		return fmt.Errorf("itlb: negative MissLatency %d", c.MissLatency)
	}
	return nil
}

// TLBStats counts translation traffic on the instruction side.
type TLBStats struct {
	Accesses        int64 // demand translations
	Misses          int64 // demand misses (page walks)
	PrefetchProbes  int64 // prefetch-side translations
	PrefetchMisses  int64 // prefetch probes whose page was not resident
	PrefetchDropped int64 // prefetches dropped instead of walking
}

// MissRate returns the demand translation miss rate.
func (s *TLBStats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

type itlbLine struct {
	tag   uint64
	valid bool
	lru   uint64
}

// ITLB is a set-associative instruction TLB with LRU replacement. Like the
// cache levels, its timing is eager: every translation's penalty is decided
// at access time and no per-cycle state exists, which keeps the model
// compatible with the fast-forward scheduler's event reasoning.
type ITLB struct {
	cfg   ITLBConfig
	sets  int
	lines []itlbLine
	clk   uint64

	stats TLBStats
}

// NewITLB builds the TLB; the config must validate and be enabled.
func NewITLB(cfg ITLBConfig) (*ITLB, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Enabled() {
		return nil, fmt.Errorf("itlb: constructing a disabled TLB")
	}
	return &ITLB{cfg: cfg, sets: cfg.Entries / cfg.Ways, lines: make([]itlbLine, cfg.Entries)}, nil
}

// Config returns the TLB's configuration.
func (t *ITLB) Config() ITLBConfig { return t.cfg }

// Stats returns a snapshot of the counters.
func (t *ITLB) Stats() TLBStats { return t.stats }

// ResetStats clears counters, keeping translations warm (warmup boundary).
func (t *ITLB) ResetStats() { t.stats = TLBStats{} }

func (t *ITLB) page(pc isa.Addr) uint64 { return uint64(pc) / uint64(t.cfg.PageBytes) }

func (t *ITLB) set(page uint64) []itlbLine {
	i := int(page & uint64(t.sets-1))
	return t.lines[i*t.cfg.Ways : (i+1)*t.cfg.Ways]
}

// probe looks the page up; touch updates recency on a hit.
func (t *ITLB) probe(page uint64, touch bool) bool {
	tag := page / uint64(t.sets)
	set := t.set(page)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			if touch {
				t.clk++
				set[i].lru = t.clk
			}
			return true
		}
	}
	return false
}

// install fills the page's entry, evicting an invalid way first, else LRU.
func (t *ITLB) install(page uint64) {
	tag := page / uint64(t.sets)
	set := t.set(page)
	t.clk++
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	set[victim] = itlbLine{tag: tag, valid: true, lru: t.clk}
}

// TranslateDemand translates a demand instruction fetch and returns the
// page-walk penalty to add to its completion (zero on a hit). Misses walk
// and install the translation.
func (t *ITLB) TranslateDemand(pc isa.Addr) Cycle {
	t.stats.Accesses++
	page := t.page(pc)
	if t.probe(page, true) {
		return 0
	}
	t.stats.Misses++
	t.install(page)
	return t.cfg.MissLatency
}

// TranslatePrefetch translates a speculative fill. With DropPrefetchOnMiss
// a non-resident page drops the prefetch (drop=true, no walk, no install,
// and the probe leaves recency untouched — a pure lookup); otherwise the
// miss walks and installs like a demand access and the penalty is added to
// the fill's completion.
func (t *ITLB) TranslatePrefetch(pc isa.Addr) (penalty Cycle, drop bool) {
	t.stats.PrefetchProbes++
	page := t.page(pc)
	if t.cfg.DropPrefetchOnMiss {
		if t.probe(page, false) {
			return 0, false
		}
		t.stats.PrefetchMisses++
		t.stats.PrefetchDropped++
		return 0, true
	}
	if t.probe(page, true) {
		return 0, false
	}
	t.stats.PrefetchMisses++
	t.install(page)
	return t.cfg.MissLatency, false
}
