package cache

import (
	"fmt"

	"frontsim/internal/isa"
	"frontsim/internal/obs"
)

// HierarchyConfig sizes the whole memory system. Defaults mirror the
// paper's Table I machine (a Sunny-Cove-class core).
type HierarchyConfig struct {
	L1I  LevelConfig
	L1D  LevelConfig
	L2   LevelConfig
	LLC  LevelConfig
	DRAM DRAMConfig
	// ITLB optionally models an instruction TLB on the fetch path with
	// TLB-aware prefetch dropping; the zero value disables it (the
	// default machine has no TLB model, matching the paper's simulator).
	ITLB ITLBConfig
}

// DefaultHierarchyConfig returns the Table I memory system: 32 KiB/8-way
// L1-I (4-cycle), 48 KiB/12-way L1-D (5-cycle), 512 KiB/8-way L2
// (15-cycle), 2 MiB/16-way LLC (40-cycle), ~200-cycle DRAM.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		L1I:  LevelConfig{Name: "L1I", SizeBytes: 32 << 10, Ways: 8, HitLatency: 4, Repl: ReplLRU},
		L1D:  LevelConfig{Name: "L1D", SizeBytes: 48 << 10, Ways: 12, HitLatency: 5, Repl: ReplLRU},
		L2:   LevelConfig{Name: "L2", SizeBytes: 512 << 10, Ways: 8, HitLatency: 15, Repl: ReplLRU},
		LLC:  LevelConfig{Name: "LLC", SizeBytes: 2 << 20, Ways: 16, HitLatency: 40, Repl: ReplSRRIP},
		DRAM: DRAMConfig{Latency: 200, BusCycles: 4, Channels: 2},
	}
}

// Validate checks every component.
func (c HierarchyConfig) Validate() error {
	for _, lc := range []LevelConfig{c.L1I, c.L1D, c.L2, c.LLC} {
		if err := lc.Validate(); err != nil {
			return err
		}
	}
	if err := c.ITLB.Validate(); err != nil {
		return err
	}
	return c.DRAM.Validate()
}

// Hierarchy wires the levels together: both L1s miss to a unified L2, which
// misses to the LLC, which misses to DRAM.
type Hierarchy struct {
	L1I  *Level
	L1D  *Level
	L2   *Level
	LLC  *Level
	DRAM *DRAM
	// ITLB is nil when the configuration disables the TLB model.
	ITLB *ITLB
}

// NewHierarchy constructs the memory system.
func NewHierarchy(cfg HierarchyConfig) (*Hierarchy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	dram, err := NewDRAM(cfg.DRAM)
	if err != nil {
		return nil, err
	}
	llc, err := NewLevel(cfg.LLC, dram)
	if err != nil {
		return nil, err
	}
	l2, err := NewLevel(cfg.L2, llc)
	if err != nil {
		return nil, err
	}
	l1i, err := NewLevel(cfg.L1I, l2)
	if err != nil {
		return nil, err
	}
	l1d, err := NewLevel(cfg.L1D, l2)
	if err != nil {
		return nil, err
	}
	h := &Hierarchy{L1I: l1i, L1D: l1d, L2: l2, LLC: llc, DRAM: dram}
	if cfg.ITLB.Enabled() {
		if h.ITLB, err = NewITLB(cfg.ITLB); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// SetObserver attaches an observability sink to the instruction side (the
// L1-I, whose prefetch fills the front-end characterization cares about).
func (h *Hierarchy) SetObserver(s obs.Sink) { h.L1I.SetObserver(s) }

// FetchInstr requests the instruction cache line containing pc as a demand
// fetch and returns its availability cycle. With the I-TLB modelled, a
// translation miss adds the page-walk penalty to the completion; the L1-I
// access itself is untouched, so the cache-side stream is identical with
// the TLB on or off except where dropped prefetches changed the contents.
func (h *Hierarchy) FetchInstr(pc isa.Addr, now Cycle) Cycle {
	ready := h.L1I.Access(pc.Line(), now, Demand)
	if h.ITLB != nil {
		ready += h.ITLB.TranslateDemand(pc)
	}
	return ready
}

// PrefetchInstr fills the instruction line containing pc speculatively.
// With the I-TLB modelled in drop mode, a fill whose page is not resident
// is dropped before it reaches the L1-I (TLB-aware prefetch dropping).
func (h *Hierarchy) PrefetchInstr(pc isa.Addr, now Cycle) Cycle {
	if h.ITLB != nil {
		penalty, drop := h.ITLB.TranslatePrefetch(pc)
		if drop {
			return now
		}
		return h.L1I.Access(pc.Line(), now, Prefetch) + penalty
	}
	return h.L1I.Access(pc.Line(), now, Prefetch)
}

// ITLBStats returns the instruction-TLB counters (zero when disabled).
func (h *Hierarchy) ITLBStats() TLBStats {
	if h.ITLB == nil {
		return TLBStats{}
	}
	return h.ITLB.Stats()
}

// InstrReady reports the availability cycle of the instruction line
// containing pc, if resident in the L1-I. Completion times are computed
// eagerly: Level.Access and DRAM.Access decide every fill's ready cycle at
// access time and touch no per-cycle state afterward, so between accesses
// each line's ready cycle is a constant. That is what lets the fast-forward
// scheduler (internal/core) treat fill completions as future events it can
// jump toward without ticking the hierarchy.
func (h *Hierarchy) InstrReady(pc isa.Addr) (Cycle, bool) {
	return h.L1I.Ready(pc.Line())
}

// Load performs a demand data read.
func (h *Hierarchy) Load(addr isa.Addr, now Cycle) Cycle {
	return h.L1D.Access(addr.Line(), now, Demand)
}

// Store performs a demand data write (write-allocate, write-back; timing is
// the allocate path).
func (h *Hierarchy) Store(addr isa.Addr, now Cycle) Cycle {
	return h.L1D.Access(addr.Line(), now, Demand)
}

// ResetStats clears all level and DRAM counters, keeping contents warm.
func (h *Hierarchy) ResetStats() {
	h.L1I.ResetStats()
	h.L1D.ResetStats()
	h.L2.ResetStats()
	h.LLC.ResetStats()
	h.DRAM.ResetStats()
	if h.ITLB != nil {
		h.ITLB.ResetStats()
	}
}

// String summarizes the geometry, for Table I output.
func (h *Hierarchy) String() string {
	f := func(l *Level) string {
		c := l.Config()
		return fmt.Sprintf("%s %dKiB/%d-way %dcyc %s", c.Name, c.SizeBytes>>10, c.Ways, c.HitLatency, c.Repl)
	}
	return fmt.Sprintf("%s; %s; %s; %s; DRAM %dcyc", f(h.L1I), f(h.L1D), f(h.L2), f(h.LLC), h.DRAM.Config().Latency)
}
