package cache

import (
	"testing"
	"testing/quick"

	"frontsim/internal/isa"
	"frontsim/internal/xrand"
)

// fixedBackend returns now+latency for every request and records accesses.
type fixedBackend struct {
	latency  Cycle
	accesses []isa.Addr
}

func (f *fixedBackend) Access(lineAddr isa.Addr, now Cycle, kind AccessKind) Cycle {
	f.accesses = append(f.accesses, lineAddr)
	return now + f.latency
}

func smallLevel(t *testing.T, ways int, repl ReplKind, back Backend) *Level {
	t.Helper()
	cfg := LevelConfig{Name: "T", SizeBytes: 4 * ways * isa.LineSize, Ways: ways, HitLatency: 2, Repl: repl}
	l, err := NewLevel(cfg, back)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestLevelConfigValidate(t *testing.T) {
	good := LevelConfig{Name: "ok", SizeBytes: 32 << 10, Ways: 8, HitLatency: 4}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []LevelConfig{
		{Name: "zero", SizeBytes: 0, Ways: 8},
		{Name: "noways", SizeBytes: 1024, Ways: 0},
		{Name: "nonpow2", SizeBytes: 3 * isa.LineSize * 2, Ways: 2}, // 3 sets
		{Name: "neg", SizeBytes: 32 << 10, Ways: 8, HitLatency: -1},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("%s: accepted invalid config", c.Name)
		}
	}
}

func TestMissThenHit(t *testing.T) {
	back := &fixedBackend{latency: 100}
	l := smallLevel(t, 2, ReplLRU, back)
	a := isa.Addr(0x1000)

	ready := l.Access(a, 0, Demand)
	if ready != 2+100 {
		t.Fatalf("miss ready = %d, want 102", ready)
	}
	// After fill completes, hits cost hit latency.
	ready = l.Access(a, 200, Demand)
	if ready != 202 {
		t.Fatalf("hit ready = %d, want 202", ready)
	}
	st := l.Stats()
	if st.Accesses != 2 || st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("stats %+v", st)
	}
	if len(back.accesses) != 1 {
		t.Fatalf("backend saw %d accesses", len(back.accesses))
	}
}

func TestInflightMerge(t *testing.T) {
	back := &fixedBackend{latency: 100}
	l := smallLevel(t, 2, ReplLRU, back)
	a := isa.Addr(0x2000)

	first := l.Access(a, 0, Demand)
	second := l.Access(a, 10, Demand) // while in flight
	if second != first {
		t.Fatalf("merged access ready %d, want %d", second, first)
	}
	st := l.Stats()
	if st.MergedInflight != 1 {
		t.Fatalf("MergedInflight = %d", st.MergedInflight)
	}
	if len(back.accesses) != 1 {
		t.Fatalf("merge leaked to backend: %d accesses", len(back.accesses))
	}
}

func TestLRUEviction(t *testing.T) {
	back := &fixedBackend{latency: 10}
	l := smallLevel(t, 2, ReplLRU, back) // 4 sets, 2 ways
	// Three lines mapping to set 0 (set stride = 4 lines = 256B).
	a, b, c := isa.Addr(0), isa.Addr(256), isa.Addr(512)
	l.Access(a, 0, Demand)
	l.Access(b, 100, Demand)
	l.Access(a, 200, Demand) // a now MRU
	l.Access(c, 300, Demand) // must evict b
	if !l.Probe(a) || !l.Probe(c) {
		t.Fatal("a or c missing after eviction")
	}
	if l.Probe(b) {
		t.Fatal("LRU evicted the wrong line (b survived)")
	}
	if st := l.Stats(); st.Evictions != 1 {
		t.Fatalf("Evictions = %d", st.Evictions)
	}
}

func TestLRUNeverEvictsMRUProperty(t *testing.T) {
	// Property: after any access sequence, the most recently touched line
	// in a set is still present.
	f := func(seed uint64) bool {
		back := &fixedBackend{latency: 5}
		cfg := LevelConfig{Name: "P", SizeBytes: 4 * isa.LineSize, Ways: 4, HitLatency: 1, Repl: ReplLRU}
		l, err := NewLevel(cfg, back) // 1 set, 4 ways
		if err != nil {
			return false
		}
		r := xrand.New(seed)
		now := Cycle(0)
		var last isa.Addr
		for i := 0; i < 200; i++ {
			a := isa.Addr(r.Intn(16)) * isa.LineSize
			now += 100
			l.Access(a, now, Demand)
			last = a
			if !l.Probe(last) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSRRIPBasicEviction(t *testing.T) {
	back := &fixedBackend{latency: 5}
	l := smallLevel(t, 2, ReplSRRIP, back)
	a, b, c := isa.Addr(0), isa.Addr(256), isa.Addr(512)
	l.Access(a, 0, Demand)
	l.Access(a, 100, Demand) // promote a to rrpv 0
	l.Access(b, 200, Demand)
	l.Access(c, 300, Demand)
	if !l.Probe(a) {
		t.Fatal("SRRIP evicted the re-referenced line")
	}
	if !l.Probe(c) {
		t.Fatal("newly filled line missing")
	}
}

func TestRandomReplacementStillCaches(t *testing.T) {
	back := &fixedBackend{latency: 5}
	l := smallLevel(t, 2, ReplRandom, back)
	a := isa.Addr(0x40)
	l.Access(a, 0, Demand)
	if got := l.Access(a, 100, Demand); got != 102 {
		t.Fatalf("random-policy hit ready %d", got)
	}
}

func TestPrefetchStats(t *testing.T) {
	back := &fixedBackend{latency: 50}
	l := smallLevel(t, 2, ReplLRU, back)
	a := isa.Addr(0x3000)
	l.Access(a, 0, Prefetch)
	st := l.Stats()
	if st.PrefetchReqs != 1 || st.PrefetchFills != 1 || st.Accesses != 0 {
		t.Fatalf("prefetch stats %+v", st)
	}
	// Demand hit on the prefetched line counts as a useful prefetch once.
	l.Access(a, 100, Demand)
	l.Access(a, 200, Demand)
	st = l.Stats()
	if st.PrefetchHits != 1 {
		t.Fatalf("PrefetchHits = %d, want 1", st.PrefetchHits)
	}
	if st.Hits != 2 {
		t.Fatalf("Hits = %d", st.Hits)
	}
}

func TestPrefetchOnPresentLineIsCheap(t *testing.T) {
	back := &fixedBackend{latency: 50}
	l := smallLevel(t, 2, ReplLRU, back)
	a := isa.Addr(0x100)
	l.Access(a, 0, Demand)
	l.Access(a, 100, Prefetch)
	if len(back.accesses) != 1 {
		t.Fatal("redundant prefetch reached backend")
	}
}

func TestReadyAndProbe(t *testing.T) {
	back := &fixedBackend{latency: 30}
	l := smallLevel(t, 2, ReplLRU, back)
	a := isa.Addr(0x500)
	if l.Probe(a) {
		t.Fatal("Probe true before fill")
	}
	want := l.Access(a, 0, Demand)
	got, ok := l.Ready(a)
	if !ok || got != want {
		t.Fatalf("Ready = %d,%v want %d,true", got, ok, want)
	}
	if !l.Probe(a) {
		t.Fatal("Probe false after fill")
	}
	l.Flush()
	if l.Probe(a) {
		t.Fatal("Probe true after Flush")
	}
}

func TestAccessAlignsAddresses(t *testing.T) {
	back := &fixedBackend{latency: 10}
	l := smallLevel(t, 2, ReplLRU, back)
	l.Access(0x103, 0, Demand)
	if !l.Probe(0x100) || !l.Probe(0x13f) {
		t.Fatal("unaligned access did not cache the containing line")
	}
	if st := l.Stats(); st.Misses != 1 {
		t.Fatalf("Misses = %d", st.Misses)
	}
	// Second access in same line is a hit.
	l.Access(0x13c, 100, Demand)
	if st := l.Stats(); st.Hits != 1 {
		t.Fatalf("Hits = %d", st.Hits)
	}
}

func TestDRAMBandwidthQueueing(t *testing.T) {
	d, err := NewDRAM(DRAMConfig{Latency: 100, BusCycles: 10, Channels: 1})
	if err != nil {
		t.Fatal(err)
	}
	r1 := d.Access(0, 0, Demand)
	r2 := d.Access(64, 0, Demand) // queues behind r1's bus slot
	if r1 != 100 {
		t.Fatalf("r1 = %d", r1)
	}
	if r2 != 110 {
		t.Fatalf("r2 = %d, want 110 (queued)", r2)
	}
	if d.QueueingCycles() != 10 {
		t.Fatalf("QueueingCycles = %d", d.QueueingCycles())
	}
	if d.Accesses() != 2 {
		t.Fatalf("Accesses = %d", d.Accesses())
	}
}

func TestDRAMChannelsIndependent(t *testing.T) {
	d, _ := NewDRAM(DRAMConfig{Latency: 100, BusCycles: 10, Channels: 2})
	r1 := d.Access(0, 0, Demand)  // channel 0
	r2 := d.Access(64, 0, Demand) // channel 1
	if r1 != 100 || r2 != 100 {
		t.Fatalf("channel interference: %d %d", r1, r2)
	}
}

func TestHierarchyWiring(t *testing.T) {
	h, err := NewHierarchy(DefaultHierarchyConfig())
	if err != nil {
		t.Fatal(err)
	}
	pc := isa.Addr(0x400000)
	// Cold fetch goes all the way to DRAM: 4+15+40+200 = 259.
	ready := h.FetchInstr(pc, 0)
	if ready != 259 {
		t.Fatalf("cold instruction fetch ready %d, want 259", ready)
	}
	// Warm fetch hits the L1-I.
	if got := h.FetchInstr(pc, 1000); got != 1004 {
		t.Fatalf("warm fetch ready %d, want 1004", got)
	}
	// Data access is independent of the L1-I but shares L2: load of the
	// same line hits L2's copy.
	if got := h.Load(pc, 2000); got != 2000+5+15 {
		t.Fatalf("load after instr fill ready %d, want L2 hit at %d", got, 2000+5+15)
	}
	if h.DRAM.Accesses() != 1 {
		t.Fatalf("DRAM accesses = %d, want 1", h.DRAM.Accesses())
	}
}

func TestHierarchyPrefetchHidesLatency(t *testing.T) {
	h, _ := NewHierarchy(DefaultHierarchyConfig())
	pc := isa.Addr(0x500000)
	h.PrefetchInstr(pc, 0)
	// Demand at 500 (after the ~259-cycle fill) is an L1-I hit.
	if got := h.FetchInstr(pc, 500); got != 504 {
		t.Fatalf("prefetched fetch ready %d, want 504", got)
	}
	if st := h.L1I.Stats(); st.PrefetchHits != 1 {
		t.Fatalf("L1I PrefetchHits = %d", st.PrefetchHits)
	}
}

func TestHierarchyResetStats(t *testing.T) {
	h, _ := NewHierarchy(DefaultHierarchyConfig())
	h.FetchInstr(0x400000, 0)
	h.Load(0x900000, 0)
	h.ResetStats()
	if h.L1I.Stats().Accesses != 0 || h.L1D.Stats().Accesses != 0 || h.DRAM.Accesses() != 0 {
		t.Fatal("stats not cleared")
	}
	// Contents stay warm.
	if got := h.FetchInstr(0x400000, 1000); got != 1004 {
		t.Fatalf("warm line lost on ResetStats: %d", got)
	}
}

func TestHitRate(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Fatal("empty HitRate should be 0")
	}
	s.Accesses = 10
	s.Hits = 7
	if s.HitRate() != 0.7 {
		t.Fatalf("HitRate = %v", s.HitRate())
	}
}

func TestReplKindString(t *testing.T) {
	for _, k := range []ReplKind{ReplLRU, ReplSRRIP, ReplRandom, ReplKind(9)} {
		if k.String() == "" {
			t.Fatalf("empty name for %d", k)
		}
	}
}

func TestSetIndexCoversAllSets(t *testing.T) {
	back := &fixedBackend{latency: 1}
	cfg := LevelConfig{Name: "S", SizeBytes: 16 * isa.LineSize, Ways: 2, HitLatency: 1, Repl: ReplLRU} // 8 sets
	l, _ := NewLevel(cfg, back)
	seen := map[int]bool{}
	for i := 0; i < 8; i++ {
		seen[l.setIndex(isa.Addr(i*isa.LineSize))] = true
	}
	if len(seen) != 8 {
		t.Fatalf("consecutive lines map to %d distinct sets, want 8", len(seen))
	}
}

func TestDifferentTagsSameSetDoNotAlias(t *testing.T) {
	back := &fixedBackend{latency: 1}
	cfg := LevelConfig{Name: "A", SizeBytes: 2 * isa.LineSize, Ways: 2, HitLatency: 1, Repl: ReplLRU} // 1 set
	l, _ := NewLevel(cfg, back)
	a, b := isa.Addr(0), isa.Addr(1<<20)
	l.Access(a, 0, Demand)
	l.Access(b, 10, Demand)
	st := l.Stats()
	if st.Misses != 2 {
		t.Fatalf("tag aliasing: misses = %d, want 2", st.Misses)
	}
	if !l.Probe(a) || !l.Probe(b) {
		t.Fatal("both lines should be cached")
	}
}

func TestPrefetchPollutionAccounting(t *testing.T) {
	back := &fixedBackend{latency: 5}
	cfg := LevelConfig{Name: "P2", SizeBytes: 2 * isa.LineSize, Ways: 2, HitLatency: 1, Repl: ReplLRU} // 1 set
	l, _ := NewLevel(cfg, back)
	// Prefetch a line, never touch it, then force two demand fills that
	// evict it.
	l.Access(0x000, 0, Prefetch)
	l.Access(0x040, 10, Demand) // wait, different set? 1 set: all lines map here
	l.Access(0x080, 20, Demand) // evicts the LRU = prefetched 0x000
	st := l.Stats()
	if st.PrefetchEvictedUnused != 1 {
		t.Fatalf("PrefetchEvictedUnused = %d, want 1", st.PrefetchEvictedUnused)
	}
	if (&st).PrefetchAccuracy() != 0 {
		t.Fatalf("accuracy %v, want 0", (&st).PrefetchAccuracy())
	}
	// A used prefetch counts toward accuracy.
	l.Access(0x0c0, 30, Prefetch)
	l.Access(0x0c0, 40, Demand)
	st = l.Stats()
	if got := (&st).PrefetchAccuracy(); got != 0.5 {
		t.Fatalf("accuracy %v, want 0.5", got)
	}
}

func TestPrefetchAccuracyEmpty(t *testing.T) {
	var s Stats
	if s.PrefetchAccuracy() != 0 {
		t.Fatal("empty accuracy should be 0")
	}
}
