// Package cache implements the memory-side substrate: set-associative cache
// levels with pluggable replacement, in-flight-fill (MSHR-style) merging,
// prefetch fills, a bandwidth-limited DRAM model, and the multi-level
// hierarchy (L1-I, L1-D, unified L2, LLC, DRAM) from the paper's Table I.
//
// Timing model: an access at cycle `now` returns the cycle at which the
// requested line is available at the accessed level. Hits cost the level's
// hit latency; misses recurse into the next level and fill on return. A
// line whose fill is still in flight merges subsequent requests into the
// outstanding fill (this is what lets a deep FTQ alias many fetches to one
// L1-I access, the paper's §V-B effect).
package cache

import (
	"fmt"

	"frontsim/internal/isa"
	"frontsim/internal/obs"
	"frontsim/internal/xrand"
)

// Cycle is a simulation timestamp in core clock cycles.
type Cycle = int64

// AccessKind distinguishes demand from prefetch traffic for statistics.
type AccessKind uint8

const (
	// Demand is a fetch or load/store the core is waiting on.
	Demand AccessKind = iota
	// Prefetch is a speculative fill (hardware or software initiated).
	Prefetch
)

// ReplKind selects a replacement policy.
type ReplKind uint8

const (
	// ReplLRU is least-recently-used.
	ReplLRU ReplKind = iota
	// ReplSRRIP is 2-bit static re-reference interval prediction.
	ReplSRRIP
	// ReplRandom evicts a uniformly random way (ablation baseline).
	ReplRandom
)

// String names the policy.
func (k ReplKind) String() string {
	switch k {
	case ReplLRU:
		return "lru"
	case ReplSRRIP:
		return "srrip"
	case ReplRandom:
		return "random"
	}
	return fmt.Sprintf("repl(%d)", uint8(k))
}

// LevelConfig sizes one cache level.
type LevelConfig struct {
	Name string
	// SizeBytes and Ways determine the set count (SizeBytes / LineSize /
	// Ways), which must come out a power of two.
	SizeBytes int
	Ways      int
	// HitLatency is the cycles from access to data at this level.
	HitLatency Cycle
	Repl       ReplKind
}

// Sets returns the number of sets implied by the config.
func (c LevelConfig) Sets() int { return c.SizeBytes / isa.LineSize / c.Ways }

// Validate checks the configuration is realizable.
func (c LevelConfig) Validate() error {
	if c.Ways <= 0 || c.SizeBytes <= 0 {
		return fmt.Errorf("cache %s: non-positive geometry", c.Name)
	}
	sets := c.Sets()
	if sets <= 0 || sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: set count %d is not a positive power of two", c.Name, sets)
	}
	if c.HitLatency < 0 {
		return fmt.Errorf("cache %s: negative latency", c.Name)
	}
	return nil
}

// Stats counts one level's traffic.
type Stats struct {
	Accesses       int64 // demand accesses
	Hits           int64 // demand hits (including hits on in-flight fills)
	Misses         int64 // demand misses
	MergedInflight int64 // demand accesses merged into an outstanding fill
	PrefetchReqs   int64 // prefetch accesses
	PrefetchFills  int64 // lines filled by prefetch
	PrefetchHits   int64 // demand hits on prefetched, not-yet-used lines
	Evictions      int64
	// PrefetchEvictedUnused counts prefetched lines evicted before any
	// demand touched them — the pollution component of prefetch cost.
	PrefetchEvictedUnused int64
}

// PrefetchAccuracy returns the fraction of prefetched lines that saw a
// demand hit before eviction (0 when no prefetch resolved yet).
func (s *Stats) PrefetchAccuracy() float64 {
	resolved := s.PrefetchHits + s.PrefetchEvictedUnused
	if resolved == 0 {
		return 0
	}
	return float64(s.PrefetchHits) / float64(resolved)
}

// HitRate returns demand hit rate.
func (s *Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

type line struct {
	tag      uint64
	valid    bool
	ready    Cycle // fill completion; line usable for hits at/after this
	prefetch bool  // filled by a prefetch and not yet demanded
}

// Backend is anything a Level can miss to.
type Backend interface {
	// Access requests lineAddr at cycle now and returns availability time.
	Access(lineAddr isa.Addr, now Cycle, kind AccessKind) Cycle
}

// Level is one set-associative cache level.
type Level struct {
	cfg      LevelConfig
	sets     int
	shift    uint
	tagShift uint // when sets is a power of two, tagOf is a single shift
	mask     uint64
	lines  []line // sets*ways, row-major
	// keys mirrors lines: tag+1 when the way is valid, 0 when not. The hit
	// scan walks this dense array instead of the line structs, one cache
	// line of keys covering eight ways.
	keys []uint64
	// repl mirrors lines with per-way replacement state — the LRU
	// timestamp or the SRRIP re-reference value, depending on cfg.Repl —
	// so the victim scan is dense too.
	repl []uint64
	// mru holds each set's last-hit (or last-filled) way. Instruction and
	// data streams re-touch the same line in bursts, so checking the hint
	// before the way scan turns most hits into a single compare. Purely a
	// scan-order shortcut: hits, misses, victims and timing are identical
	// with or without it.
	mru    []int32
	lruClk uint64
	next   Backend
	rng    *xrand.Rand
	sink   obs.Sink // nil when observation is off
	stats  Stats
}

// NewLevel builds a level whose misses go to next.
func NewLevel(cfg LevelConfig, next Backend) (*Level, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if next == nil {
		return nil, fmt.Errorf("cache %s: nil backend", cfg.Name)
	}
	sets := cfg.Sets()
	shift := uint(0)
	for 1<<shift < isa.LineSize {
		shift++
	}
	l := &Level{
		cfg:   cfg,
		sets:  sets,
		shift: shift,
		mask:  uint64(sets - 1),
		lines: make([]line, sets*cfg.Ways),
		keys:  make([]uint64, sets*cfg.Ways),
		repl:  make([]uint64, sets*cfg.Ways),
		mru:   make([]int32, sets),
		next:  next,
		rng:   xrand.New(0xcafe ^ uint64(len(cfg.Name))),
	}
	if sets&(sets-1) == 0 {
		ts := shift
		for 1<<(ts-shift) < sets {
			ts++
		}
		l.tagShift = ts
	}
	return l, nil
}

// Config returns the level's configuration.
func (l *Level) Config() LevelConfig { return l.cfg }

// SetObserver attaches an observability sink (nil detaches). Observation
// is strictly read-only; access timing is identical with or without it.
func (l *Level) SetObserver(s obs.Sink) { l.sink = s }

// Stats returns a snapshot of the level's counters.
func (l *Level) Stats() Stats { return l.stats }

// ResetStats zeroes the counters (used to exclude warmup).
func (l *Level) ResetStats() { l.stats = Stats{} }

func (l *Level) setIndex(lineAddr isa.Addr) int {
	return int((uint64(lineAddr) >> l.shift) & l.mask)
}

func (l *Level) tagOf(lineAddr isa.Addr) uint64 {
	if l.tagShift != 0 {
		return uint64(lineAddr) >> l.tagShift
	}
	return uint64(lineAddr) >> l.shift / uint64(l.sets)
}

func (l *Level) setSlice(set int) []line {
	return l.lines[set*l.cfg.Ways : (set+1)*l.cfg.Ways]
}

// Access implements Backend. lineAddr must be line-aligned.
func (l *Level) Access(lineAddr isa.Addr, now Cycle, kind AccessKind) Cycle {
	lineAddr = lineAddr.Line()
	set := l.setIndex(lineAddr)
	key := l.tagOf(lineAddr) + 1
	base := set * l.cfg.Ways
	keys := l.keys[base : base+l.cfg.Ways]

	if kind == Demand {
		l.stats.Accesses++
	} else {
		l.stats.PrefetchReqs++
	}

	wi := -1
	if h := int(l.mru[set]); keys[h] == key {
		wi = h
	} else {
		for i, k := range keys {
			if k == key {
				wi = i
				l.mru[set] = int32(i)
				break
			}
		}
	}
	if wi >= 0 {
		// Present (possibly still in flight).
		w := &l.lines[base+wi]
		if kind == Demand {
			l.stats.Hits++
			if w.prefetch {
				l.stats.PrefetchHits++
				w.prefetch = false
			}
			if w.ready > now {
				l.stats.MergedInflight++
			}
		}
		l.touch(base + wi)
		if w.ready > now {
			return w.ready
		}
		return now + l.cfg.HitLatency
	}

	// Miss: fetch from below, fill now with a future ready time (the line
	// entry doubles as the MSHR; later requests merge on it).
	if kind == Demand {
		l.stats.Misses++
	}
	ready := l.next.Access(lineAddr, now+l.cfg.HitLatency, kind)
	vi := l.victim(base)
	v := &l.lines[base+vi]
	if v.valid {
		l.stats.Evictions++
		if v.prefetch {
			l.stats.PrefetchEvictedUnused++
		}
	}
	*v = line{tag: key - 1, valid: true, ready: ready, prefetch: kind == Prefetch}
	keys[vi] = key
	l.mru[set] = int32(vi)
	if kind == Prefetch {
		l.stats.PrefetchFills++
		if l.sink != nil {
			l.sink.Event(obs.Event{Cycle: now, Kind: obs.EvPrefetchFill, Addr: uint64(lineAddr), Arg: ready - now})
		}
	}
	l.fill(base + vi)
	return ready
}

// Probe reports whether the line is present (even in flight) without any
// side effects. Used by hardware prefetchers to filter redundant requests
// and by tests.
func (l *Level) Probe(lineAddr isa.Addr) bool {
	lineAddr = lineAddr.Line()
	set := l.setIndex(lineAddr)
	tag := l.tagOf(lineAddr)
	for _, w := range l.setSlice(set) {
		if w.valid && w.tag == tag {
			return true
		}
	}
	return false
}

// Ready returns the availability cycle of the line if present.
func (l *Level) Ready(lineAddr isa.Addr) (Cycle, bool) {
	lineAddr = lineAddr.Line()
	set := l.setIndex(lineAddr)
	tag := l.tagOf(lineAddr)
	for i := range l.setSlice(set) {
		w := &l.setSlice(set)[i]
		if w.valid && w.tag == tag {
			return w.ready, true
		}
	}
	return 0, false
}

func (l *Level) touch(idx int) {
	switch l.cfg.Repl {
	case ReplLRU, ReplRandom:
		l.lruClk++
		l.repl[idx] = l.lruClk
	case ReplSRRIP:
		l.repl[idx] = 0
	}
}

func (l *Level) fill(idx int) {
	switch l.cfg.Repl {
	case ReplLRU, ReplRandom:
		l.lruClk++
		l.repl[idx] = l.lruClk
	case ReplSRRIP:
		l.repl[idx] = 2 // long re-reference interval on insertion
	}
}

func (l *Level) victim(base int) int {
	w := l.cfg.Ways
	// Prefer an invalid way (key 0).
	for i, k := range l.keys[base : base+w] {
		if k == 0 {
			return i
		}
	}
	repl := l.repl[base : base+w]
	switch l.cfg.Repl {
	case ReplRandom:
		return l.rng.Intn(w)
	case ReplSRRIP:
		// Equivalent to the textbook scan-then-age loop: every way ages by
		// the same amount (3 minus the current maximum), and the victim is
		// the first way holding that maximum.
		var maxR uint64
		for _, r := range repl {
			if r > maxR {
				maxR = r
			}
		}
		if maxR < 3 {
			d := 3 - maxR
			for i := range repl {
				repl[i] += d
			}
		}
		for i, r := range repl {
			if r >= 3 {
				return i
			}
		}
		panic("cache: SRRIP victim scan found no way")
	default: // LRU
		v := 0
		for i := 1; i < w; i++ {
			if repl[i] < repl[v] {
				v = i
			}
		}
		return v
	}
}

// Flush invalidates every line (used between experiment phases).
func (l *Level) Flush() {
	for i := range l.lines {
		l.lines[i] = line{}
		l.keys[i] = 0
		l.repl[i] = 0
	}
	for i := range l.mru {
		l.mru[i] = 0
	}
}

// DRAMConfig models main memory timing.
type DRAMConfig struct {
	// Latency is the unloaded access latency in core cycles.
	Latency Cycle
	// BusCycles is the channel occupancy per line transfer; back-to-back
	// requests queue behind each other at this rate.
	BusCycles Cycle
	// Channels is the number of independent channels.
	Channels int
}

// Validate checks the DRAM parameters.
func (c DRAMConfig) Validate() error {
	if c.Latency <= 0 || c.BusCycles <= 0 || c.Channels <= 0 {
		return fmt.Errorf("dram: non-positive parameter %+v", c)
	}
	return nil
}

// DRAM is the bottom of the hierarchy: fixed latency plus a per-channel
// bandwidth queue.
type DRAM struct {
	cfg      DRAMConfig
	nextFree []Cycle
	accesses int64
	busy     int64 // cycles requests spent queued (congestion measure)
}

// NewDRAM builds the memory model.
func NewDRAM(cfg DRAMConfig) (*DRAM, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &DRAM{cfg: cfg, nextFree: make([]Cycle, cfg.Channels)}, nil
}

// Access implements Backend.
func (d *DRAM) Access(lineAddr isa.Addr, now Cycle, kind AccessKind) Cycle {
	ch := int(lineAddr.LineIndex()) % d.cfg.Channels
	start := now
	if d.nextFree[ch] > start {
		d.busy += int64(d.nextFree[ch] - start)
		start = d.nextFree[ch]
	}
	d.nextFree[ch] = start + d.cfg.BusCycles
	d.accesses++
	return start + d.cfg.Latency
}

// Config returns the DRAM parameters.
func (d *DRAM) Config() DRAMConfig { return d.cfg }

// Accesses returns the total number of DRAM requests.
func (d *DRAM) Accesses() int64 { return d.accesses }

// QueueingCycles returns total cycles requests waited for a channel.
func (d *DRAM) QueueingCycles() int64 { return d.busy }

// ResetStats zeroes the DRAM counters (channel state is retained).
func (d *DRAM) ResetStats() { d.accesses = 0; d.busy = 0 }
