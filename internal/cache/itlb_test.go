package cache

import (
	"testing"

	"frontsim/internal/isa"
)

func TestITLBValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  ITLBConfig
		ok   bool
	}{
		{"disabled-zero", ITLBConfig{}, true},
		{"default", DefaultITLBConfig(), true},
		{"fully-assoc", ITLBConfig{Entries: 8, Ways: 8, PageBytes: 4096, MissLatency: 10}, true},
		{"ways-zero", ITLBConfig{Entries: 8, Ways: 0, PageBytes: 4096}, false},
		{"ways-nondivisor", ITLBConfig{Entries: 8, Ways: 3, PageBytes: 4096}, false},
		{"sets-npot", ITLBConfig{Entries: 12, Ways: 2, PageBytes: 4096}, false},
		{"page-npot", ITLBConfig{Entries: 8, Ways: 2, PageBytes: 3000}, false},
		{"page-under-line", ITLBConfig{Entries: 8, Ways: 2, PageBytes: isa.LineSize / 2}, false},
		{"negative-latency", ITLBConfig{Entries: 8, Ways: 2, PageBytes: 4096, MissLatency: -1}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.cfg.Validate(); (err == nil) != tc.ok {
				t.Fatalf("Validate() = %v, want ok=%v", err, tc.ok)
			}
		})
	}
	if _, err := NewITLB(ITLBConfig{}); err == nil {
		t.Fatal("NewITLB accepted a disabled config")
	}
}

// pagePC returns an address inside page n for the given config.
func pagePC(cfg ITLBConfig, n int) isa.Addr {
	return isa.Addr(n * cfg.PageBytes)
}

func TestITLBDemandMissInstallHit(t *testing.T) {
	cfg := ITLBConfig{Entries: 4, Ways: 2, PageBytes: 4096, MissLatency: 30}
	tl, err := NewITLB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pen := tl.TranslateDemand(pagePC(cfg, 1)); pen != 30 {
		t.Fatalf("cold demand penalty %d, want MissLatency 30", pen)
	}
	// Same page, different offset: the walk installed the translation.
	if pen := tl.TranslateDemand(pagePC(cfg, 1) + 100); pen != 0 {
		t.Fatalf("warm demand penalty %d, want 0", pen)
	}
	st := tl.Stats()
	if st.Accesses != 2 || st.Misses != 1 {
		t.Fatalf("stats %+v, want Accesses=2 Misses=1", st)
	}
	if got := st.MissRate(); got != 0.5 {
		t.Fatalf("MissRate = %v, want 0.5", got)
	}
}

// TestITLBLRUEviction pins LRU within a set: touching a resident page
// protects it from the next eviction.
func TestITLBLRUEviction(t *testing.T) {
	// One set, two ways: pages conflict pairwise.
	cfg := ITLBConfig{Entries: 2, Ways: 2, PageBytes: 4096, MissLatency: 30}
	tl, err := NewITLB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tl.TranslateDemand(pagePC(cfg, 0)) // miss, install
	tl.TranslateDemand(pagePC(cfg, 1)) // miss, install
	tl.TranslateDemand(pagePC(cfg, 0)) // hit, touch: page 1 is now LRU
	tl.TranslateDemand(pagePC(cfg, 2)) // miss, evicts page 1
	if pen := tl.TranslateDemand(pagePC(cfg, 0)); pen != 0 {
		t.Fatal("recently-touched page was evicted instead of the LRU victim")
	}
	if pen := tl.TranslateDemand(pagePC(cfg, 1)); pen != 30 {
		t.Fatal("LRU page survived eviction")
	}
}

// TestITLBPrefetchDrop pins drop mode: a prefetch to a non-resident page
// is dropped without walking, without installing, and without touching
// recency — a pure probe.
func TestITLBPrefetchDrop(t *testing.T) {
	cfg := ITLBConfig{Entries: 2, Ways: 2, PageBytes: 4096, MissLatency: 30, DropPrefetchOnMiss: true}
	tl, err := NewITLB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pen, drop := tl.TranslatePrefetch(pagePC(cfg, 5))
	if !drop || pen != 0 {
		t.Fatalf("cold prefetch: penalty=%d drop=%v, want 0,true", pen, drop)
	}
	// The drop must not have installed the page.
	if pen := tl.TranslateDemand(pagePC(cfg, 5)); pen != 30 {
		t.Fatal("dropped prefetch installed its page")
	}
	// Resident page: prefetch proceeds penalty-free.
	pen, drop = tl.TranslatePrefetch(pagePC(cfg, 5))
	if drop || pen != 0 {
		t.Fatalf("warm prefetch: penalty=%d drop=%v, want 0,false", pen, drop)
	}
	st := tl.Stats()
	if st.PrefetchProbes != 2 || st.PrefetchMisses != 1 || st.PrefetchDropped != 1 {
		t.Fatalf("stats %+v, want PrefetchProbes=2 PrefetchMisses=1 PrefetchDropped=1", st)
	}

	// Pure probe: a prefetch hit must not refresh LRU. Fill the set, touch
	// page A only via prefetch, and check A is still the eviction victim.
	tl2, err := NewITLB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tl2.TranslateDemand(pagePC(cfg, 0)) // A
	tl2.TranslateDemand(pagePC(cfg, 1)) // B: A is LRU
	tl2.TranslatePrefetch(pagePC(cfg, 0))
	tl2.TranslateDemand(pagePC(cfg, 2)) // evicts A iff the probe left recency alone
	if pen := tl2.TranslateDemand(pagePC(cfg, 0)); pen != 30 {
		t.Fatal("prefetch probe refreshed LRU recency in drop mode")
	}
}

// TestITLBPrefetchWalk pins the non-drop mode: prefetch misses walk and
// install like demand accesses, with the penalty surfaced to the fill.
func TestITLBPrefetchWalk(t *testing.T) {
	cfg := ITLBConfig{Entries: 4, Ways: 2, PageBytes: 4096, MissLatency: 25}
	tl, err := NewITLB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pen, drop := tl.TranslatePrefetch(pagePC(cfg, 3))
	if drop || pen != 25 {
		t.Fatalf("cold prefetch: penalty=%d drop=%v, want 25,false", pen, drop)
	}
	// The walk installed the page for later demand fetches.
	if pen := tl.TranslateDemand(pagePC(cfg, 3)); pen != 0 {
		t.Fatal("prefetch walk did not install the translation")
	}
	st := tl.Stats()
	if st.PrefetchDropped != 0 || st.PrefetchMisses != 1 {
		t.Fatalf("stats %+v, want PrefetchMisses=1 PrefetchDropped=0", st)
	}
}

// TestITLBResetStats pins the warmup boundary: counters clear, resident
// translations stay warm.
func TestITLBResetStats(t *testing.T) {
	cfg := DefaultITLBConfig()
	tl, err := NewITLB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tl.TranslateDemand(pagePC(cfg, 7))
	tl.ResetStats()
	if st := tl.Stats(); st != (TLBStats{}) {
		t.Fatalf("stats after reset: %+v", st)
	}
	if pen := tl.TranslateDemand(pagePC(cfg, 7)); pen != 0 {
		t.Fatal("ResetStats dropped resident translations")
	}
}
