package cache

import "math"

// CycleMax is the sentinel "never" timestamp for event scheduling: the
// fast-forward scheduler (internal/core) initializes its next-event bound
// to CycleMax and takes minima against real completion times; a bound that
// stays at CycleMax means no finite event is known and cycle-by-cycle
// stepping must resume.
const CycleMax = Cycle(math.MaxInt64)

// MinCycle returns the earlier of two timestamps.
func MinCycle(a, b Cycle) Cycle {
	if a < b {
		return a
	}
	return b
}
