// Package atest is the fixture harness for the analyzer suite — a
// self-contained stand-in for golang.org/x/tools/go/analysis/analysistest.
// A fixture directory under internal/analysis/testdata holds ordinary Go
// source annotated with expectation comments:
//
//	for k := range m { // want "nondeterministic order"
//
// Run type-checks the fixture as a package with a caller-chosen import
// path (analyzer applicability filters key on it), applies one analyzer,
// and requires the diagnostics to match the `// want "substring"`
// expectations line for line: a diagnostic with no matching want, or a
// want with no diagnostic, fails the test.
package atest

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"go/token"

	"frontsim/internal/analysis"
)

// wantRe matches `// want "..."` expectation comments.
var wantRe = regexp.MustCompile(`//\s*want\s+"((?:[^"\\]|\\.)*)"`)

// expectation is one `// want` comment.
type expectation struct {
	line    int
	substr  string
	matched bool
}

// Run applies one analyzer to the fixture directory and compares
// diagnostics against its want comments. importPath is the pretend import
// path the fixture is checked under — pick one inside or outside the
// analyzer's Applies set to exercise both sides of the filter.
func Run(t *testing.T, fixtureDir, importPath string, a *analysis.Analyzer) {
	t.Helper()
	loader, err := analysis.NewLoader(moduleRoot(t))
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := loader.LoadDir(fixtureDir, importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixtureDir, err)
	}
	wants := collectWants(t, loader.Fset(), pkg)

	diags := analysis.RunAnalyzers(pkg, []*analysis.Analyzer{a})
	for _, d := range diags {
		if !matchWant(wants, d) {
			t.Errorf("unexpected diagnostic %s", d)
		}
	}
	for file, exps := range wants {
		for _, e := range exps {
			if !e.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", file, e.line, e.substr)
			}
		}
	}
}

// RunFiltered asserts the analyzer's Applies filter rejects the import
// path — i.e. the fixture's violations are invisible from outside the
// analyzer's package set.
func RunFiltered(t *testing.T, fixtureDir, importPath string, a *analysis.Analyzer) {
	t.Helper()
	if a.Applies == nil {
		t.Fatalf("analyzer %s applies everywhere; nothing to filter", a.Name)
	}
	if a.Applies(importPath) {
		t.Fatalf("analyzer %s unexpectedly applies to %s", a.Name, importPath)
	}
	loader, err := analysis.NewLoader(moduleRoot(t))
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := loader.LoadDir(fixtureDir, importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixtureDir, err)
	}
	for _, d := range analysis.RunAnalyzers(pkg, []*analysis.Analyzer{a}) {
		if d.Analyzer == a.Name {
			t.Errorf("diagnostic leaked through Applies filter: %s", d)
		}
	}
}

// moduleRoot finds the enclosing module for fixture loading: tests run
// with the package directory as cwd, so walk up to go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod found above test directory")
		}
		dir = parent
	}
}

func collectWants(t *testing.T, fset *token.FileSet, pkg *analysis.Package) map[string][]*expectation {
	t.Helper()
	wants := make(map[string][]*expectation)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				substr := strings.ReplaceAll(m[1], `\"`, `"`)
				wants[pos.Filename] = append(wants[pos.Filename], &expectation{line: pos.Line, substr: substr})
			}
		}
	}
	return wants
}

func matchWant(wants map[string][]*expectation, d analysis.Diagnostic) bool {
	for _, e := range wants[d.Pos.Filename] {
		if e.line == d.Pos.Line && strings.Contains(d.Message, e.substr) {
			e.matched = true
			return true
		}
	}
	return false
}
