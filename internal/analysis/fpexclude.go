package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Fpexclude enforces the fingerprint-neutrality contract on the two knob
// structs whose serialized form keys the run cache: core.Config and
// experiment.Params. A field excluded from serialization (json:"-") never
// reaches Fingerprint(), so the cache will happily serve one setting's
// results for another — which is only sound if the field provably cannot
// change results. The contract makes that proof explicit: every excluded
// field must appear in the package's FingerprintNeutral registry, mapped
// to the equivalence test that pins byte-identical results across its
// settings, and that test must actually exist. A new field that is
// neither fingerprinted nor registered is a compile-gate error, not a
// latent cache-poisoning bug.
//
// Registry form (package scope, same package as the struct):
//
//	var FingerprintNeutral = map[string]string{
//	    "Audit": "TestAuditCleanRun",               // test in this package
//	    "Cache": "internal/core.TestSomething",     // test elsewhere in the module
//	}
var Fpexclude = &Analyzer{
	Name: "fpexclude",
	Doc:  "every fingerprint-excluded Config/Params field is registered as neutral and named by an existing equivalence test",
	Applies: func(importPath string) bool {
		return fpexcludeTarget(importPath) != ""
	},
	Run: runFpexclude,
}

// fpexcludeTargets maps the determinism-owning packages to the struct the
// neutrality registry must cover.
var fpexcludeTargets = []struct {
	suffix string
	typ    string
}{
	{"internal/core", "Config"},
	{"internal/experiment", "Params"},
}

// neutralityRegistryName is the required package-scope registry variable.
const neutralityRegistryName = "FingerprintNeutral"

func fpexcludeTarget(importPath string) string {
	for _, t := range fpexcludeTargets {
		if strings.HasSuffix(importPath, t.suffix) {
			return t.typ
		}
	}
	return ""
}

func fpexcludeSuffix(importPath string) string {
	for _, t := range fpexcludeTargets {
		if strings.HasSuffix(importPath, t.suffix) {
			return t.suffix
		}
	}
	return ""
}

// regEntry is one parsed registry pair.
type regEntry struct {
	test string
	pos  token.Pos
}

func runFpexclude(pass *Pass) {
	structName := fpexcludeTarget(pass.ImportPath)
	if structName == "" {
		return
	}

	var fields []fieldInfo
	var structPos token.Pos
	var reg *ast.CompositeLit
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.TypeSpec:
				if d.Name.Name == structName {
					if st, ok := d.Type.(*ast.StructType); ok {
						fields = structFields(st)
						structPos = d.Pos()
					}
				}
			case *ast.ValueSpec:
				for i, name := range d.Names {
					if name.Name == neutralityRegistryName && i < len(d.Values) {
						if cl, ok := d.Values[i].(*ast.CompositeLit); ok {
							reg = cl
						}
					}
				}
			}
			return true
		})
	}

	anchor := pass.Files[0].Name.Pos()
	if structPos == token.NoPos {
		pass.Reportf(anchor, "package must declare the %s struct whose fingerprint exclusions fpexclude audits", structName)
		return
	}

	entries := map[string]regEntry{}
	if reg != nil {
		for _, elt := range reg.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				pass.Reportf(elt.Pos(), "%s entries must be literal \"Field\": \"TestName\" pairs so the contract is auditable without executing code", neutralityRegistryName)
				continue
			}
			key, kok := stringLit(kv.Key)
			val, vok := stringLit(kv.Value)
			if !kok || !vok {
				pass.Reportf(kv.Pos(), "%s entries must be literal \"Field\": \"TestName\" pairs so the contract is auditable without executing code", neutralityRegistryName)
				continue
			}
			entries[key] = regEntry{test: val, pos: kv.Pos()}
		}
	}

	byName := map[string]fieldInfo{}
	for _, fld := range fields {
		byName[fld.name] = fld
	}

	// 1. Every excluded field is registered with an existing equivalence test.
	for _, fld := range fields {
		if !fld.jsonSkip {
			continue
		}
		entry, ok := entries[fld.name]
		if !ok {
			if reg == nil {
				pass.Reportf(fld.pos, "%s.%s is fingerprint-excluded (json:\"-\") but the package declares no %s registry: add one naming the equivalence test that proves the field byte-neutral", structName, fld.name, neutralityRegistryName)
			} else {
				pass.Reportf(fld.pos, "%s.%s is fingerprint-excluded (json:\"-\") but not registered in %s: register it with the equivalence test that proves it byte-neutral", structName, fld.name, neutralityRegistryName)
			}
			continue
		}
		checkNeutralityTest(pass, entry)
	}

	// 2. No stale or contradictory registry entries.
	for _, entry := range sortedEntries(entries) {
		fld, ok := byName[entry.key]
		switch {
		case !ok:
			pass.Reportf(entry.pos, "%s entry %q matches no %s field; remove the stale entry", neutralityRegistryName, entry.key, structName)
		case !fld.jsonSkip:
			pass.Reportf(entry.pos, "%s entry %q covers a field that is serialized into the fingerprint; a registered field must carry json:\"-\"", neutralityRegistryName, entry.key)
		}
	}

	// 3. Fields whose type cannot be canonically serialized (func, chan,
	// interface) must be excluded — json.Marshal would either error or
	// produce unstable bytes, silently corrupting the cache key.
	if obj := pass.Pkg.Scope().Lookup(structName); obj != nil {
		if st, ok := obj.Type().Underlying().(*types.Struct); ok {
			for i := 0; i < st.NumFields(); i++ {
				tf := st.Field(i)
				fld, ok := byName[tf.Name()]
				if !ok || fld.jsonSkip {
					continue
				}
				switch tf.Type().Underlying().(type) {
				case *types.Signature, *types.Chan, *types.Interface:
					pass.Reportf(fld.pos, "%s.%s has a type that cannot be canonically serialized into the fingerprint; tag it json:\"-\" and register it in %s", structName, tf.Name(), neutralityRegistryName)
				}
			}
		}
	}
}

// sortedEntry pairs a registry key with its entry for deterministic
// iteration (the analyzer itself must satisfy detmap's spirit).
type sortedEntry struct {
	key string
	regEntry
}

func sortedEntries(m map[string]regEntry) []sortedEntry {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]sortedEntry, 0, len(keys))
	for _, k := range keys {
		out = append(out, sortedEntry{key: k, regEntry: m[k]})
	}
	return out
}

// checkNeutralityTest verifies the registered test name is a real test
// function: "TestX"/"FuzzX" in this package's _test.go files, or
// "path/to/pkg.TestX" elsewhere in the module.
func checkNeutralityTest(pass *Pass, entry regEntry) {
	name := entry.test
	dir := pass.Dir
	if i := strings.LastIndex(name, "."); i >= 0 {
		qualDir, base := name[:i], name[i+1:]
		suffix := fpexcludeSuffix(pass.ImportPath)
		root := strings.TrimSuffix(filepath.ToSlash(pass.Dir), suffix)
		if root == filepath.ToSlash(pass.Dir) {
			pass.Reportf(entry.pos, "cannot resolve cross-package equivalence test %q from this package's directory layout", name)
			return
		}
		dir = filepath.Join(filepath.FromSlash(root), filepath.FromSlash(qualDir))
		name = base
	}
	if !strings.HasPrefix(name, "Test") && !strings.HasPrefix(name, "Fuzz") {
		pass.Reportf(entry.pos, "%q is not a test function name; the registry must point at the Test/Fuzz function that pins byte-neutrality", entry.test)
		return
	}
	if !testFunctionExists(dir, name) {
		pass.Reportf(entry.pos, "registered equivalence test %q does not exist under %s; the neutrality claim is unproven", entry.test, dir)
	}
}

// testFunctionExists syntactically scans dir's _test.go files for a
// top-level function with the given name.
func testFunctionExists(dir, name string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.SkipObjectResolution)
		if err != nil {
			continue
		}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Recv == nil && fd.Name.Name == name {
				return true
			}
		}
	}
	return false
}

// stringLit unquotes a string literal expression.
func stringLit(e ast.Expr) (string, bool) {
	bl, ok := e.(*ast.BasicLit)
	if !ok || bl.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(bl.Value)
	if err != nil {
		return "", false
	}
	return s, true
}
