package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// checkSrc type-checks one import-free source string into a Package.
func checkSrc(t *testing.T, importPath, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{}
	tpkg, err := conf.Check(importPath, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{ImportPath: importPath, Fset: fset, Files: []*ast.File{f}, Types: tpkg, Info: info}
}

// TestBareAllowReported pins the directive contract: an allow without a
// reason is itself a finding and suppresses nothing.
func TestBareAllowReported(t *testing.T) {
	pkg := checkSrc(t, "frontsim/internal/stats", `package fixture

func f(a, b float64) bool {
	//lint:allow
	return a == b
}
`)
	diags := RunAnalyzers(pkg, []*Analyzer{Floateq})
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (bare directive + unsuppressed compare): %v", len(diags), diags)
	}
	if diags[0].Analyzer != "lint" || !strings.Contains(diags[0].Message, "requires a reason") {
		t.Errorf("first diagnostic should reject the bare directive, got %s", diags[0])
	}
	if diags[1].Analyzer != "floateq" {
		t.Errorf("bare directive must not suppress the finding below it, got %s", diags[1])
	}
}

// TestDiagnosticsSorted pins the stable output order diagnostics print in.
func TestDiagnosticsSorted(t *testing.T) {
	pkg := checkSrc(t, "frontsim/internal/stats", `package fixture

func f(a, b, c float64) bool {
	return a == b || b != c || a == c
}
`)
	diags := RunAnalyzers(pkg, []*Analyzer{Floateq})
	if len(diags) != 3 {
		t.Fatalf("got %d diagnostics, want 3", len(diags))
	}
	for i := 1; i < len(diags); i++ {
		if diags[i].Pos.Column < diags[i-1].Pos.Column {
			t.Errorf("diagnostics out of column order: %v before %v", diags[i-1], diags[i])
		}
	}
	if !strings.Contains(diags[0].String(), "fixture.go:4:") {
		t.Errorf("Diagnostic.String missing position: %s", diags[0])
	}
}

// TestAnalyzerDocs requires every registered analyzer to carry a name and
// a doc line — simlint -list is the suite's user-facing contract.
func TestAnalyzerDocs(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v incomplete", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}
