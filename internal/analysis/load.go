package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis. Files
// holds only the non-test build-constraint-satisfying sources: the
// analyzers guard simulation code, and test files legitimately use clocks,
// randomness and exact comparisons.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// Loader parses and type-checks packages of one module. Module-internal
// imports resolve against the module directory tree; standard-library
// imports type-check from $GOROOT/src through the source importer, so no
// pre-built export data or network access is needed.
type Loader struct {
	ModulePath string
	ModuleDir  string

	fset    *token.FileSet
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
	ctx     build.Context
}

// NewLoader reads the module path from dir/go.mod and returns a Loader
// rooted there.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: loader needs a module root: %w", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analysis: no module line in %s/go.mod", abs)
	}
	fset := token.NewFileSet()
	return &Loader{
		ModulePath: modPath,
		ModuleDir:  abs,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
		ctx:        build.Default,
	}, nil
}

// Fset returns the shared file set positions resolve against.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// SetBuildTags sets the build tags file constraints are evaluated under,
// exactly like `go build -tags`: a file behind `//go:build audit` is
// loaded (and linted) only when "audit" is among the tags, and its
// `//go:build !audit` counterpart only when it is not. Call before any
// Load — packages memoize the file set they were first loaded with.
func (l *Loader) SetBuildTags(tags []string) {
	l.ctx.BuildTags = append([]string(nil), tags...)
}

// Import implements types.Importer over the union of the module tree and
// the standard library.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// dirFor maps a module import path to its directory.
func (l *Loader) dirFor(importPath string) string {
	if importPath == l.ModulePath {
		return l.ModuleDir
	}
	rel := strings.TrimPrefix(importPath, l.ModulePath+"/")
	return filepath.Join(l.ModuleDir, filepath.FromSlash(rel))
}

// Load type-checks the module package with the given import path,
// memoized across the loader's lifetime.
func (l *Loader) Load(importPath string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("analysis: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)
	p, err := l.LoadDir(l.dirFor(importPath), importPath)
	if err != nil {
		return nil, err
	}
	l.pkgs[importPath] = p
	return p, nil
}

// LoadDir parses and type-checks the package in dir under the given import
// path (which decides analyzer applicability). Test files and files
// excluded by build constraints are skipped.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		match, err := l.ctx.MatchFile(dir, name)
		if err != nil {
			return nil, fmt.Errorf("analysis: %s/%s: %w", dir, name, err)
		}
		if match {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no buildable Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       l.fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// skipDirs are directory names never descended into when expanding "..."
// patterns: VCS metadata, fixtures the go tool itself ignores, and run
// outputs.
var skipDirs = map[string]bool{
	".git":     true,
	".github":  true,
	"testdata": true,
	"results":  true,
	"vendor":   true,
}

// Expand resolves package patterns relative to the module root: "./..."
// walks the whole tree, a trailing "/..." walks a subtree, and any other
// pattern names one directory ("." or "./internal/ftq" style). It returns
// module import paths of directories that contain buildable Go files.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	add := func(dir string) error {
		ok, err := l.hasGoFiles(dir)
		if err != nil || !ok {
			return err
		}
		ip := l.importPathFor(dir)
		if !seen[ip] {
			seen[ip] = true
			out = append(out, ip)
		}
		return nil
	}
	for _, pat := range patterns {
		walk := false
		if pat == "..." || strings.HasSuffix(pat, "/...") {
			walk = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
			if pat == "" {
				pat = "."
			}
		}
		root := filepath.Join(l.ModuleDir, filepath.FromSlash(pat))
		if !walk {
			if err := add(root); err != nil {
				return nil, err
			}
			continue
		}
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			if skipDirs[d.Name()] && path != root {
				return filepath.SkipDir
			}
			return add(path)
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(out)
	return out, nil
}

func (l *Loader) hasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		return true, nil
	}
	return false, nil
}

func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.ModuleDir, dir)
	if err != nil || rel == "." {
		return l.ModulePath
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel)
}
