package analysis

import (
	"strconv"
	"strings"
)

// randPackages are the forbidden randomness sources. math/rand's global
// source and shuffle algorithms are not stable across Go releases, and
// math/rand/v2 has no Seed at all — only internal/xrand's pinned PCG
// implementation may supply simulation randomness.
var randPackages = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

// Norand forbids importing math/rand outside internal/xrand.
var Norand = &Analyzer{
	Name: "norand",
	Doc:  "forbids math/rand imports outside internal/xrand (use the pinned xrand PCG)",
	Applies: func(importPath string) bool {
		return !strings.HasSuffix(importPath, "internal/xrand")
	},
	Run: runNorand,
}

func runNorand(pass *Pass) {
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if randPackages[path] {
				pass.Reportf(imp.Pos(), "import of %s: simulation randomness must come from internal/xrand, whose sequence is pinned across Go releases", path)
			}
		}
	}
}
