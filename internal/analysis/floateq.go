package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Floateq flags == and != between floating-point operands. Derived
// statistics (IPC, speedups, MPKI) accumulate rounding differently across
// refactors, so exact equality silently flips figure rows and cache
// comparisons; comparisons should be ordered (<, >), epsilon-based, or on
// the underlying integer counters. Comparisons where both sides are
// compile-time constants are exact and skipped; intentional exact
// tie-breaks in deterministic sorts carry a //lint:allow proof.
var Floateq = &Analyzer{
	Name: "floateq",
	Doc:  "flags ==/!= on floating-point values (use ordered, epsilon, or integer-counter comparisons)",
	Run:  runFloateq,
}

func runFloateq(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			xt, xok := pass.TypesInfo.Types[bin.X]
			yt, yok := pass.TypesInfo.Types[bin.Y]
			if !xok || !yok {
				return true
			}
			if !isFloat(xt.Type) && !isFloat(yt.Type) {
				return true
			}
			if xt.Value != nil && yt.Value != nil {
				return true // constant-folded: exact by definition
			}
			pass.Reportf(bin.OpPos, "%s on floating-point values (%s %s %s); use an ordered or epsilon comparison, or compare the integer counters it was derived from", bin.Op, exprString(bin.X), bin.Op, exprString(bin.Y))
			return true
		})
	}
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
