package analysis_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"frontsim/internal/analysis"
)

// TestFpexcludeRejectsUnregisteredConfigField is the live acceptance check
// for the neutrality contract: it copies the real internal/core package,
// sneaks in one fingerprint-excluded field without registering it, and
// asserts fpexclude rejects the package. If this test fails, a developer
// could exclude a results-affecting knob from the cache key and simlint
// would wave it through.
func TestFpexcludeRejectsUnregisteredConfigField(t *testing.T) {
	srcDir := filepath.Join("..", "core")
	entries, err := os.ReadDir(srcDir)
	if err != nil {
		t.Fatal(err)
	}
	// The copy keeps the real directory-suffix layout (.../internal/core)
	// so the analyzer sees the package exactly as it sees the real tree,
	// including the _test.go files the registry's test names resolve in.
	dir := filepath.Join(t.TempDir(), "internal", "core")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	const anchor = "FastForward bool `json:\"-\"`"
	patched := false
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(srcDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if e.Name() == "core.go" {
			i := strings.Index(string(data), anchor)
			if i < 0 {
				t.Fatalf("core.go no longer contains the anchor field %q; update the test", anchor)
			}
			eol := i + strings.IndexByte(string(data[i:]), '\n')
			// The blank line keeps the new field out of the preceding
			// line's //lint:allow window: the whole point is that nothing
			// vouches for it.
			ins := "\n\n\t// Sneak is a deliberately unregistered excluded field.\n\tSneak bool `json:\"-\"`"
			data = append(data[:eol:eol], append([]byte(ins), data[eol:]...)...)
			patched = true
		}
		if err := os.WriteFile(filepath.Join(dir, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if !patched {
		t.Fatal("internal/core has no core.go to patch")
	}

	l, err := analysis.NewLoader("../..")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(dir, "frontsim/internal/core")
	if err != nil {
		t.Fatal(err)
	}
	diags := analysis.RunAnalyzers(pkg, []*analysis.Analyzer{analysis.Fpexclude})
	var hit bool
	for _, d := range diags {
		if strings.Contains(d.Message, "Sneak") && strings.Contains(d.Message, "not registered") {
			hit = true
		} else {
			t.Errorf("unexpected extra diagnostic: %s", d)
		}
	}
	if !hit {
		t.Fatalf("fpexclude accepted an unregistered fingerprint-excluded field; diagnostics: %v", diags)
	}
}
