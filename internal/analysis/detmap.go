package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// detmapPackages are the import-path suffixes whose code feeds the
// determinism fingerprint: cycle accounting, fill/fetch ordering, figure
// projection, and plan construction. A map iteration there whose order
// escapes into results breaks the byte-identical-reruns guarantee the run
// cache is keyed on.
var detmapPackages = []string{
	"internal/core",
	"internal/ftq",
	"internal/frontend",
	"internal/experiment",
	"internal/asmdb",
	// obs output (sample/event streams, metric exports) must be
	// byte-identical across reruns so artifacts diff cleanly.
	"internal/obs",
}

// Detmap flags every `range` over a map in the determinism-critical
// packages. Iteration order over Go maps is deliberately randomized per
// run, so any map range whose visit order can reach simulation output is a
// nondeterminism bug. Loops whose order provably cannot escape (keys
// sorted afterwards, commutative reductions) are annotated with
// //lint:allow and the proof.
var Detmap = &Analyzer{
	Name: "detmap",
	Doc:  "flags ranging over maps in determinism-critical simulator packages",
	Applies: func(importPath string) bool {
		for _, suffix := range detmapPackages {
			if strings.HasSuffix(importPath, suffix) {
				return true
			}
		}
		return false
	},
	Run: runDetmap,
}

func runDetmap(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				pass.Reportf(rng.For, "range over map %s has nondeterministic order; iterate sorted keys or annotate with //lint:allow and a proof the order cannot escape", exprString(rng.X))
			}
			return true
		})
	}
}

// exprString renders a short source form of simple expressions for
// diagnostics (identifiers and selector chains; anything else degrades to
// the type).
func exprString(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprString(v.X) + "." + v.Sel.Name
	case *ast.CallExpr:
		return exprString(v.Fun) + "(...)"
	case *ast.IndexExpr:
		return exprString(v.X) + "[...]"
	}
	return "expression"
}
