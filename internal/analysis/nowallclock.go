package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// nowallclockExempt reports packages where wall-clock reads are
// legitimate: the runner's progress/ETA tracker and the CLI entry points
// that report human-facing durations. Simulated time is cache.Cycle;
// anything else consulting the host clock makes results depend on machine
// load.
func nowallclockExempt(importPath string) bool {
	return strings.HasSuffix(importPath, "/internal/runner") ||
		strings.Contains(importPath, "/cmd/")
}

// Nowallclock forbids time.Now and time.Since outside the exempted
// harness packages.
var Nowallclock = &Analyzer{
	Name: "nowallclock",
	Doc:  "forbids wall-clock reads (time.Now/time.Since) outside internal/runner and cmd/",
	Applies: func(importPath string) bool {
		return !nowallclockExempt(importPath)
	},
	Run: runNowallclock,
}

var wallClockFuncs = map[string]bool{"Now": true, "Since": true}

func runNowallclock(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil || !wallClockFuncs[obj.Name()] {
				return true
			}
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			pass.Reportf(sel.Pos(), "time.%s reads the wall clock; simulated components must use cache.Cycle (only internal/runner and cmd/ may time the host)", obj.Name())
			return true
		})
	}
}
