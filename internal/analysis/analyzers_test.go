package analysis_test

import (
	"path/filepath"
	"testing"

	"frontsim/internal/analysis"
	"frontsim/internal/analysis/atest"
)

func fixture(parts ...string) string {
	return filepath.Join(append([]string{"testdata"}, parts...)...)
}

func TestDetmapFixture(t *testing.T) {
	atest.Run(t, fixture("detmap"), "frontsim/internal/ftq", analysis.Detmap)
}

func TestDetmapOnlyAppliesToDeterminismCriticalPackages(t *testing.T) {
	// The same violations are invisible from a package outside the
	// critical set — detmap is a targeted contract, not a style rule.
	atest.RunFiltered(t, fixture("detmap"), "frontsim/internal/stats", analysis.Detmap)
}

func TestDetmapCoversObs(t *testing.T) {
	// The observability package emits artifacts that must diff cleanly
	// across reruns, so it is in the determinism-critical set.
	atest.Run(t, fixture("detmap"), "frontsim/internal/obs", analysis.Detmap)
}

func TestNowallclockFixture(t *testing.T) {
	atest.Run(t, fixture("nowallclock"), "frontsim/internal/frontend", analysis.Nowallclock)
}

func TestNowallclockExemptsHarnessPackages(t *testing.T) {
	atest.RunFiltered(t, fixture("nowallclock"), "frontsim/internal/runner", analysis.Nowallclock)
	atest.RunFiltered(t, fixture("nowallclock"), "frontsim/cmd/experiments", analysis.Nowallclock)
}

func TestNorandFixture(t *testing.T) {
	atest.Run(t, fixture("norand"), "frontsim/internal/workload", analysis.Norand)
}

func TestNorandExemptsXrand(t *testing.T) {
	atest.RunFiltered(t, fixture("norand"), "frontsim/internal/xrand", analysis.Norand)
}

func TestFloateqFixture(t *testing.T) {
	atest.Run(t, fixture("floateq"), "frontsim/internal/stats", analysis.Floateq)
}

func TestSuppressionFramework(t *testing.T) {
	atest.Run(t, fixture("framework"), "frontsim/internal/stats", analysis.Floateq)
}

func TestStatsjsonFailingFixture(t *testing.T) {
	atest.Run(t, fixture("statsjson", "bad"), "frontsim/internal/core", analysis.Statsjson)
}

func TestStatsjsonPassingFixture(t *testing.T) {
	atest.Run(t, fixture("statsjson", "good"), "frontsim/internal/core", analysis.Statsjson)
}

func TestStatsjsonOnlyAppliesToCore(t *testing.T) {
	atest.RunFiltered(t, fixture("statsjson", "bad"), "frontsim/internal/ftq", analysis.Statsjson)
}

func TestCtxflowFixture(t *testing.T) {
	atest.Run(t, fixture("ctxflow", "generic"), "frontsim/examples/demo", analysis.Ctxflow)
}

func TestCtxflowStrictRootBan(t *testing.T) {
	// Inside the run/request-path package set, minting a root context is
	// banned even in functions that receive no ctx.
	atest.Run(t, fixture("ctxflow", "strict"), "frontsim/internal/serve", analysis.Ctxflow)
}

func TestLockdiscFixture(t *testing.T) {
	atest.Run(t, fixture("lockdisc"), "frontsim/internal/serve", analysis.Lockdisc)
}

func TestGoroleakFixture(t *testing.T) {
	atest.Run(t, fixture("goroleak"), "frontsim/internal/serve", analysis.Goroleak)
}

func TestFpexcludeFailingFixture(t *testing.T) {
	atest.Run(t, fixture("fpexclude", "bad"), "frontsim/internal/core", analysis.Fpexclude)
}

func TestFpexcludePassingFixture(t *testing.T) {
	atest.Run(t, fixture("fpexclude", "good"), "frontsim/internal/core", analysis.Fpexclude)
}

func TestFpexcludeOnlyAppliesToKnobPackages(t *testing.T) {
	atest.RunFiltered(t, fixture("fpexclude", "bad"), "frontsim/internal/ftq", analysis.Fpexclude)
}

func TestByName(t *testing.T) {
	for _, a := range analysis.All() {
		if analysis.ByName(a.Name) != a {
			t.Errorf("ByName(%q) did not return the registered analyzer", a.Name)
		}
	}
	if analysis.ByName("nosuch") != nil {
		t.Error("ByName on an unknown name must return nil")
	}
}
