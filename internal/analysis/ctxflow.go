package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ctxflowRootBan lists the package suffixes where minting a fresh root
// context (context.Background / context.TODO) is banned outright, not just
// inside ctx-bearing functions: these packages sit on the request and run
// paths — the serving layer, the scheduler, the cycle loop, the cell
// harness and the stream fan-out — where a detached root context severs
// the cancellation chain the serve layer's never-torn / never-cached abort
// guarantees depend on. Entry points (cmd/, examples/) legitimately mint
// roots and are not listed.
var ctxflowRootBan = []string{
	"internal/serve",
	"internal/runner",
	"internal/core",
	"internal/experiment",
	"internal/trace",
}

// Ctxflow enforces the context-threading contract: a function that
// receives a context.Context must thread it — no fresh roots, no dropping
// it when the callee has a ctx-aware variant, and no blocking select that
// cannot be interrupted by ctx.Done(). Deliberate lifetime decoupling (a
// coalesced flight outliving its first subscriber, a ctx-less
// compatibility wrapper) carries a //lint:allow proof.
var Ctxflow = &Analyzer{
	Name: "ctxflow",
	Doc:  "enforces context threading: no fresh roots in run paths, ctx-aware callee variants taken, blocking selects watch ctx.Done()",
	Run:  runCtxflow,
}

func runCtxflow(pass *Pass) {
	strict := false
	for _, suffix := range ctxflowRootBan {
		if strings.HasSuffix(pass.ImportPath, suffix) {
			strict = true
			break
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			hasCtx := false
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				hasCtx = sigHasContext(obj.Type().(*types.Signature))
			}
			ctxflowBody(pass, fd.Body, hasCtx, strict)
		}
	}
}

// ctxflowBody checks one function body. hasCtx reports whether a
// context.Context is in scope — a parameter of this function or of an
// enclosing one (closures capture their parent's ctx).
func ctxflowBody(pass *Pass, body *ast.BlockStmt, hasCtx, strict bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			lit := hasCtx
			if tv, ok := pass.TypesInfo.Types[v]; ok {
				if sig, ok := tv.Type.(*types.Signature); ok && sigHasContext(sig) {
					lit = true
				}
			}
			ctxflowBody(pass, v.Body, lit, strict)
			return false
		case *ast.CallExpr:
			ctxflowCall(pass, v, hasCtx, strict)
		case *ast.SelectStmt:
			if hasCtx {
				ctxflowSelect(pass, v)
			}
		}
		return true
	})
}

func ctxflowCall(pass *Pass, call *ast.CallExpr, hasCtx, strict bool) {
	fn := calleeFunc(pass, call.Fun)
	if fn == nil {
		return
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "context" && (fn.Name() == "Background" || fn.Name() == "TODO") {
		switch {
		case hasCtx:
			pass.Reportf(call.Pos(), "context.%s inside a function that already receives a Context severs the cancellation chain; derive from the caller's ctx (or //lint:allow with the lifetime proof)", fn.Name())
		case strict:
			pass.Reportf(call.Pos(), "context.%s mints a fresh root in a run/request-path package; accept a ctx from the caller and thread it (or //lint:allow with the lifetime proof)", fn.Name())
		}
		return
	}
	if !hasCtx {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sigHasContext(sig) {
		return
	}
	variant := ctxVariant(fn)
	if variant == nil {
		return
	}
	pass.Reportf(call.Pos(), "call to %s drops the in-scope ctx; %s accepts one (or //lint:allow with why cancellation must not propagate here)", fn.Name(), variant.Name())
}

// ctxVariant returns fn's ctx-aware sibling — the function or method named
// <Name>Ctx with a context.Context parameter — or nil.
func ctxVariant(fn *types.Func) *types.Func {
	name := fn.Name() + "Ctx"
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var cand *types.Func
	if recv := sig.Recv(); recv != nil {
		cand = methodByName(recv.Type(), name)
	} else if fn.Pkg() != nil {
		if obj, ok := fn.Pkg().Scope().Lookup(name).(*types.Func); ok {
			cand = obj
		}
	}
	if cand == nil {
		return nil
	}
	if csig, ok := cand.Type().(*types.Signature); ok && sigHasContext(csig) {
		return cand
	}
	return nil
}

// ctxflowSelect flags a select that can block indefinitely — at least one
// channel case, no default — without any case watching a ctx.Done().
func ctxflowSelect(pass *Pass, sel *ast.SelectStmt) {
	hasComm, hasDefault, hasDone := false, false, false
	for _, c := range sel.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil {
			hasDefault = true
			continue
		}
		hasComm = true
		if commWatchesDone(pass, cc.Comm) {
			hasDone = true
		}
	}
	if hasComm && !hasDefault && !hasDone {
		pass.Reportf(sel.Pos(), "blocking select in a ctx-bearing function has no case on ctx.Done(); an abandoned caller would strand this goroutine (or //lint:allow with the wakeup proof)")
	}
}

// commWatchesDone reports whether a select comm clause receives from the
// Done channel of a context-typed value.
func commWatchesDone(pass *Pass, comm ast.Stmt) bool {
	var recv ast.Expr
	switch s := comm.(type) {
	case *ast.ExprStmt:
		recv = s.X
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			recv = s.Rhs[0]
		}
	}
	un, ok := recv.(*ast.UnaryExpr)
	if !ok || un.Op.String() != "<-" {
		return false
	}
	call, ok := un.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	return ok && isContextType(tv.Type)
}

// --- shared type helpers (used by ctxflow, goroleak, lockdisc) ----------

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// sigHasContext reports whether any parameter is a context.Context.
func sigHasContext(sig *types.Signature) bool {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			return true
		}
	}
	return false
}

// calleeFunc resolves a call expression's target to its types.Func, or nil
// for builtins, conversions and func-typed variables.
func calleeFunc(pass *Pass, fun ast.Expr) *types.Func {
	var id *ast.Ident
	switch v := fun.(type) {
	case *ast.Ident:
		id = v
	case *ast.SelectorExpr:
		id = v.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// methodByName finds a method on t (pointer receivers and named interfaces
// included), or nil.
func methodByName(t types.Type, name string) *types.Func {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	for i := 0; i < named.NumMethods(); i++ {
		if m := named.Method(i); m.Name() == name {
			return m
		}
	}
	if iface, ok := named.Underlying().(*types.Interface); ok {
		for i := 0; i < iface.NumMethods(); i++ {
			if m := iface.Method(i); m.Name() == name {
				return m
			}
		}
	}
	return nil
}
