// Package fixture exercises the norand analyzer: importing math/rand in
// any form is flagged; crypto/rand is not the same package and passes.
package fixture

import (
	"math/rand" // want "simulation randomness must come from internal/xrand"

	crand "crypto/rand"
)

func use() int {
	var b [1]byte
	_, _ = crand.Read(b[:])
	return rand.Intn(10)
}
