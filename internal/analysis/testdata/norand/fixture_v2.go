package fixture

import _ "math/rand/v2" // want "math/rand/v2"
