// Package fixture exercises the suppression framework itself (run under
// the floateq analyzer): a reasoned allow covers its own line or the line
// below; an unrelated directive two lines up covers nothing. Bare allows
// are covered by TestBareAllowReported in the analysis package.
package fixture

func aboveLine(a, b float64) bool {
	//lint:allow a whole-line directive covers the line below it
	return a == b
}

func trailing(a, b float64) bool {
	return a == b //lint:allow a trailing directive covers its own line
}

func tooFar(a, b float64) bool {
	//lint:allow a directive two lines up covers nothing

	return a == b // want "== on floating-point values"
}
