// Package fixture exercises ctxflow's ctx-bearing-function rules outside
// the strict root-ban package set (run under a pretend examples/ path).
package fixture

import "context"

type worker struct{ busy bool }

func (w *worker) Wait()                       { w.busy = false }
func (w *worker) WaitCtx(ctx context.Context) { w.busy = false }

func run()                       {}
func runCtx(ctx context.Context) {}

func freshRootOutsideRunPath() context.Context {
	return context.Background() // ok: no ctx in scope and not a run-path package
}

func mintsRootDespiteCtx(ctx context.Context) context.Context {
	return context.TODO() // want "severs the cancellation chain"
}

func dropsCtxMethod(ctx context.Context, w *worker) {
	w.Wait() // want "drops the in-scope ctx; WaitCtx accepts one"
}

func threadsCtxMethod(ctx context.Context, w *worker) {
	w.WaitCtx(ctx)
}

func dropsCtxFunc(ctx context.Context) {
	run() // want "drops the in-scope ctx; runCtx accepts one"
}

func threadsCtxFunc(ctx context.Context) {
	runCtx(ctx)
}

func blockingSelectNoDone(ctx context.Context, ch chan int) int {
	select { // want "no case on ctx.Done"
	case v := <-ch:
		return v
	}
}

func selectWithDone(ctx context.Context, ch chan int) int {
	select {
	case v := <-ch:
		return v
	case <-ctx.Done():
		return 0
	}
}

func selectWithDefault(ctx context.Context, ch chan int) int {
	select {
	case v := <-ch:
		return v
	default:
		return 0
	}
}

func closureInheritsCtx(ctx context.Context) {
	f := func() context.Context {
		return context.Background() // want "severs the cancellation chain"
	}
	f()
}

func suppressedRoot(ctx context.Context) context.Context {
	//lint:allow detached on purpose: the background task outlives this request by design
	return context.Background()
}
