// Package fixture exercises ctxflow's root-context ban, which applies even
// to ctx-less functions inside run/request-path packages (run under a
// pretend internal/serve path).
package fixture

import "context"

func startDetached() context.Context {
	return context.Background() // want "mints a fresh root in a run/request-path package"
}

func startTODO() context.Context {
	return context.TODO() // want "mints a fresh root in a run/request-path package"
}

func allowedDetached() context.Context {
	//lint:allow flight context must outlive any one subscriber; the last one out cancels it
	return context.Background()
}
