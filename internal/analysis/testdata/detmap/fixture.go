// Package fixture exercises the detmap analyzer: map ranges are flagged,
// slice/array/channel ranges are not, and a lint:allow with a reason
// suppresses.
package fixture

import "sort"

func flagged(m map[string]int) int {
	total := 0
	for _, v := range m { // want "nondeterministic order"
		total += v
	}
	return total
}

func flaggedKeysOnly(m map[int]bool) int {
	n := 0
	for k := range m { // want "range over map m"
		n += k
	}
	return n
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { //lint:allow keys are sorted before any order-dependent use
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func notMaps(xs []int, arr [4]int, ch chan int) int {
	total := 0
	for _, v := range xs {
		total += v
	}
	for _, v := range arr {
		total += v
	}
	for v := range ch {
		total += v
	}
	return total
}
