// Package fixture exercises the nowallclock analyzer: time.Now and
// time.Since are flagged, other time functions and constants are not.
package fixture

import "time"

func flagged() time.Duration {
	start := time.Now() // want "time.Now reads the wall clock"
	work()
	return time.Since(start) // want "time.Since reads the wall clock"
}

func allowed() time.Time {
	// Constructing times and durations is fine; only reading the host
	// clock is forbidden.
	d := 5 * time.Millisecond
	_ = d
	return time.Date(2023, time.April, 1, 0, 0, 0, 0, time.UTC)
}

func suppressed() time.Time {
	return time.Now() //lint:allow fixture proves a reasoned allow silences the diagnostic
}

func work() {}
