// Package fixture is the passing statsjson case: every Config field is
// serialized or canonically replaced, and every Stats field survives the
// JSON round trip.
package fixture

// Prefetcher stands in for the frontend.InstrPrefetcher interface field.
type Prefetcher interface{ Hint() }

type Config struct {
	Name     string
	Depth    int
	Prefetch Prefetcher
	Triggers map[uint64][]uint64
}

type Stats struct {
	Cycles       int64
	Instructions int64
}

type configFingerprint struct {
	Schema   int
	Config   Config
	Prefetch string
	Triggers []uint64
}

func (c Config) Fingerprint() string {
	shadow := c
	shadow.Prefetch = nil
	shadow.Triggers = nil
	_ = shadow
	return "hash"
}
