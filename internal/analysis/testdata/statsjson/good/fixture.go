// Package fixture is the passing statsjson case: every Config field is
// serialized, canonically replaced, or registered fingerprint-neutral, and
// every Stats field survives the JSON round trip.
package fixture

// Prefetcher stands in for the frontend.InstrPrefetcher interface field.
type Prefetcher interface{ Hint() }

type Config struct {
	Name     string
	Depth    int
	Prefetch Prefetcher
	Triggers map[uint64][]uint64
	// Tele is excluded with no canonical replacement, but its neutrality
	// is registered below — fpexclude's territory, not schema drift.
	Tele bool `json:"-"`
}

// FingerprintNeutral vouches for Tele; statsjson must defer to it.
var FingerprintNeutral = map[string]string{
	"Tele": "TestTeleNeutral",
}

type Stats struct {
	Cycles       int64
	Instructions int64
}

type configFingerprint struct {
	Schema   int
	Config   Config
	Prefetch string
	Triggers []uint64
}

func (c Config) Fingerprint() string {
	shadow := c
	shadow.Prefetch = nil
	shadow.Triggers = nil
	_ = shadow
	return "hash"
}
