// Package fixture is the failing statsjson case: every way the cache-key
// contract can drift, in one package shaped like internal/core.
package fixture

// Prefetcher stands in for the frontend.InstrPrefetcher interface field.
type Prefetcher interface{ Hint() }

type Config struct {
	Name     string
	Depth    int
	Prefetch Prefetcher
	Triggers map[uint64][]uint64
	Debug    bool `json:"-"` // want "no canonical Debug field"
	secret   int             // want "Config field secret is unexported"
}

type Stats struct {
	Cycles  int64
	hidden  int64          // want "Stats field hidden is unexported"
	Scratch int64 `json:"-"` // want "cached snapshots will lose it"
}

type configFingerprint struct {
	Schema   int
	Config   Config
	Prefetch string
	Triggers []uint64
	Orphan   string // want "does not correspond to any field cleared"
}

func (c Config) Fingerprint() string {
	shadow := c
	shadow.Prefetch = nil
	shadow.Triggers = nil
	shadow.Depth = 0 // want "no canonical Depth replacement"
	_ = shadow
	return "hash"
}
