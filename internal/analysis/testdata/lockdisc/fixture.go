// Package fixture exercises lockdisc: release-on-all-paths pairing and the
// no-blocking-while-held rules.
package fixture

import (
	"os"
	"sync"
	"time"
)

type guarded struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	cond *sync.Cond
	n    int
}

func (g *guarded) deferred() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n++
}

func (g *guarded) paired() {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

func (g *guarded) readLocked() int {
	g.rw.RLock()
	n := g.n
	g.rw.RUnlock()
	return n
}

func (g *guarded) neverReleased() {
	g.mu.Lock() // want "never released"
	g.n++
}

func (g *guarded) sendWhileHeld(ch chan int) {
	g.mu.Lock()
	ch <- g.n // want "channel send while g.mu is held"
	g.mu.Unlock()
}

func (g *guarded) recvWhileHeld(ch chan int) {
	g.mu.Lock()
	g.n = <-ch // want "channel receive while g.mu is held"
	g.mu.Unlock()
}

func (g *guarded) waitGroupWhileHeld(wg *sync.WaitGroup) {
	g.mu.Lock()
	wg.Wait() // want "sync.WaitGroup.Wait while g.mu is held"
	g.mu.Unlock()
}

func (g *guarded) sleepWhileHeld() {
	g.mu.Lock()
	time.Sleep(time.Millisecond) // want "time.Sleep while g.mu is held"
	g.mu.Unlock()
}

func (g *guarded) ioWhileHeld(path string) error {
	g.mu.Lock()
	_, err := os.ReadFile(path) // want "I/O call os.ReadFile while g.mu is held"
	g.mu.Unlock()
	return err
}

func (g *guarded) returnWhileHeld(fail bool) int {
	g.mu.Lock()
	if fail {
		return -1 // want "return while g.mu is held"
	}
	n := g.n
	g.mu.Unlock()
	return n
}

func (g *guarded) selectWhileHeld(ch chan int) {
	g.mu.Lock()
	select { // want "blocking select while g.mu is held"
	case v := <-ch:
		g.n = v
	}
	g.mu.Unlock()
}

func (g *guarded) nonBlockingSelectWhileHeld(ch chan int) {
	g.mu.Lock()
	select {
	case v := <-ch:
		g.n = v
	default:
	}
	g.mu.Unlock()
}

func (g *guarded) condLoop() {
	g.mu.Lock()
	for g.n == 0 {
		g.cond.Wait() // ok: Cond.Wait releases the lock while asleep
	}
	g.mu.Unlock()
}

func (g *guarded) workerLoop(jobs []func()) {
	g.mu.Lock()
	for {
		if g.n >= len(jobs) {
			g.mu.Unlock()
			return
		}
		job := jobs[g.n]
		g.n++
		g.mu.Unlock()
		job()
		g.mu.Lock() // ok: released at the top of the next iteration
	}
}

func (g *guarded) deferredClosureRelease() {
	g.mu.Lock()
	defer func() {
		g.n++
		g.mu.Unlock()
	}()
	g.n++
}

func (g *guarded) closureEscapesCriticalSection(ch chan int) func() {
	g.mu.Lock()
	f := func() { ch <- 1 } // ok: runs later, outside the critical section
	g.mu.Unlock()
	return f
}

func (g *guarded) allowedSend(ch chan int) {
	g.mu.Lock()
	ch <- g.n //lint:allow ch is buffered with capacity == subscriber count, proven at construction
	g.mu.Unlock()
}
