package fixture

import "testing"

// TestAuditNeutral exists so the "Audit" registry entry resolves; the
// loader skips _test.go files, so fpexclude only parses this syntactically.
func TestAuditNeutral(t *testing.T) {}
