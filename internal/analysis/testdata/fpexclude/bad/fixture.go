// Package fixture exercises every fpexclude failure mode: an excluded
// field missing from the registry, a registry entry whose test does not
// exist, a non-test registry value, a stale entry, an entry for a
// serialized field, and a non-serializable field that is not excluded.
package fixture

type Config struct {
	Name   string
	Depth  int
	Sneaky bool      `json:"-"` // want "not registered in FingerprintNeutral"
	Tracer func(int) // want "cannot be canonically serialized"
	Audit  bool      `json:"-"`
	Legacy bool      `json:"-"`
	Helper bool      `json:"-"`
}

var FingerprintNeutral = map[string]string{
	"Audit":  "TestAuditNeutral",
	"Legacy": "TestLegacyNeutral", // want "does not exist"
	"Helper": "checkHelper",       // want "not a test function name"
	"Ghost":  "TestGhostNeutral",  // want "matches no Config field"
	"Name":   "TestNameNeutral",   // want "serialized into the fingerprint"
}
