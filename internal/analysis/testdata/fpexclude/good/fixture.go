// Package fixture is the clean side of the fpexclude contract: every
// fingerprint-excluded field registered, every registered test real.
package fixture

type Config struct {
	Name  string
	Depth int
	Audit bool `json:"-"`
	Obs   bool `json:"-"`
}

var FingerprintNeutral = map[string]string{
	"Audit": "TestAuditNeutral",
	"Obs":   "TestObsNeutral",
}
