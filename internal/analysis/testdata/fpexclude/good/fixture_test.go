package fixture

import "testing"

func TestAuditNeutral(t *testing.T) {}

func TestObsNeutral(t *testing.T) {}
