// Package fixture exercises the floateq analyzer: ==/!= with a
// floating-point operand is flagged; integer and constant-folded
// comparisons are not, and ordered rewrites pass.
package fixture

type ipc float64

func flagged(a, b float64, r ipc) bool {
	if a == b { // want "== on floating-point values"
		return true
	}
	if a != 0 { // want "!= on floating-point values"
		return false
	}
	return float64(r) == a // want "== on floating-point values"
}

func namedType(a, b ipc) bool {
	return a == b // want "== on floating-point values"
}

func allowed(a, b float64, i, j int) bool {
	const x = 1.5
	const y = 3.0 / 2.0
	if x == y { // constants fold exactly
		return i == j
	}
	if a < b || a > b {
		return true
	}
	return false
}

func suppressed(denom float64) float64 {
	if denom == 0 { //lint:allow exact-zero guard before division
		return 0
	}
	return 1 / denom
}
