// Package fixture carries one used and one stale //lint:allow directive
// for the unused-suppression tracking test. This is not a // want fixture:
// staleness is only computable after the whole suite has run, so the test
// drives RunAnalyzersTracked directly.
package fixture

func exactZeroGuard(a, b float64) bool {
	//lint:allow exact-zero sentinel guard; 0 is assigned, never computed
	return a == 0 && b == 0
}

func cleanCode() int {
	//lint:allow stale on purpose: this directive suppresses nothing
	return 1
}
