// Package tagfix is the loader build-tag fixture: base.go always loads,
// audit_on.go only under -tags audit, audit_off.go only without it. The
// loader test asserts exactly which files (and which Mode value) are seen.
package tagfix

// Base is defined unconditionally.
const Base = true
