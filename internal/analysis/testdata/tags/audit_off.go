//go:build !audit

package tagfix

// Mode is the default definition.
const Mode = "noaudit"
