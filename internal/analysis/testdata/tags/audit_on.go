//go:build audit

package tagfix

// Mode is the audit-tagged definition.
const Mode = "audit"
