// Package fixture exercises goroleak: every go statement must show a
// join/cancel tie — ctx, WaitGroup, or channel discipline.
package fixture

import (
	"context"
	"sync"
)

func spin() {
	for i := 0; ; i++ {
		_ = i
	}
}

func pump(ch chan int) {
	defer close(ch)
	ch <- 1
}

func watch(ctx context.Context) {
	<-ctx.Done()
}

func leaksNamed() {
	go spin() // want "no join or cancel tie"
}

func leaksClosure() {
	go func() { // want "no join or cancel tie"
		spin()
	}()
}

func tiedByWaitGroup() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}

func tiedByChannelSend() chan int {
	ch := make(chan int)
	go func() {
		ch <- 1
	}()
	return ch
}

func tiedByCtxArgument(ctx context.Context) {
	go watch(ctx)
}

func tiedByCapturedCtx(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

func tiedNamedHelperViaBody() {
	go pump(make(chan int))
}

func allowedFireAndForget() {
	//lint:allow process-lifetime metrics flusher; exits with the program
	go spin()
}
