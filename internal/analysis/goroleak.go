package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Goroleak requires every `go` statement to be tied to a join or cancel
// mechanism the spawner can reach: a context.Context (argument or
// captured), a sync.WaitGroup, or channel discipline (the goroutine sends,
// receives, closes, or ranges — so someone is coordinating with it). A
// goroutine with none of these can outlive the work that spawned it, and
// in a simulator whose correctness harnesses compare byte-identical
// end-states, a straggler writing into shared state after the comparison
// point is a heisenbug factory. Fire-and-forget goroutines with an
// out-of-band lifecycle proof carry a //lint:allow.
var Goroleak = &Analyzer{
	Name: "goroleak",
	Doc:  "every go statement is tied to a join/cancel mechanism: ctx, WaitGroup, or channel discipline",
	Run:  runGoroleak,
}

func runGoroleak(pass *Pass) {
	// Index same-package function declarations so `go pkg.fn()` can be
	// judged by fn's body, not just its signature.
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				decls[obj] = fd
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !goroTiedCall(pass, decls, g.Call) {
				pass.Reportf(g.Pos(), "goroutine has no join or cancel tie (no ctx, WaitGroup, or channel discipline); tie its lifecycle or //lint:allow with the proof")
			}
			return true
		})
	}
}

func goroTiedCall(pass *Pass, decls map[*types.Func]*ast.FuncDecl, call *ast.CallExpr) bool {
	// A context argument ties the goroutine to its caller's lifetime.
	for _, arg := range call.Args {
		if tv, ok := pass.TypesInfo.Types[arg]; ok && isContextType(tv.Type) {
			return true
		}
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		return goroTiedBody(pass, lit.Body)
	}
	fn := calleeFunc(pass, call.Fun)
	if fn == nil {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sigHasContext(sig) {
		return true
	}
	if fd := decls[fn]; fd != nil {
		return goroTiedBody(pass, fd.Body)
	}
	// Cross-package target with no ctx in its signature: nothing provable.
	return false
}

// goroTiedBody reports whether the goroutine's body shows a lifecycle tie:
// it touches a context, a WaitGroup, or performs any channel operation.
func goroTiedBody(pass *Pass, body *ast.BlockStmt) bool {
	tied := false
	ast.Inspect(body, func(n ast.Node) bool {
		if tied {
			return false
		}
		switch v := n.(type) {
		case *ast.SendStmt:
			tied = true
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				tied = true
			}
		case *ast.RangeStmt:
			if isChanType(pass, v.X) {
				tied = true
			}
		case *ast.CallExpr:
			if id, ok := v.Fun.(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					tied = true
				}
			}
		case ast.Expr:
			if tv, ok := pass.TypesInfo.Types[v]; ok && tv.Type != nil {
				if isContextType(tv.Type) || isWaitGroup(tv.Type) {
					tied = true
				}
			}
		}
		return !tied
	})
	return tied
}

// isWaitGroup reports whether t is sync.WaitGroup (or a pointer to one).
func isWaitGroup(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}
