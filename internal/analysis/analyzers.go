package analysis

// All returns the full analyzer suite in stable order — the set
// cmd/simlint runs and CI enforces.
func All() []*Analyzer {
	return []*Analyzer{
		Detmap,
		Nowallclock,
		Norand,
		Floateq,
		Statsjson,
		Ctxflow,
		Lockdisc,
		Fpexclude,
		Goroleak,
	}
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
