// Package analysis is a self-contained static-analysis framework for the
// simulator: a minimal re-implementation of the golang.org/x/tools
// go/analysis surface (Analyzer, Pass, Diagnostic) built purely on the
// standard library's go/ast + go/types, so the lint suite needs no module
// downloads and runs anywhere the Go toolchain is installed.
//
// The analyzers it hosts (see detmap.go, nowallclock.go, norand.go,
// floateq.go, statsjson.go) enforce the invariants the run-cache's
// soundness rests on: deterministic iteration in cycle-accounting code, no
// wall-clock or unseeded randomness leaking into simulated state, no exact
// float comparison on derived statistics, and a Config fingerprint that
// covers every field the canonical Stats JSON depends on. The concurrency
// suite (ctxflow.go, lockdisc.go, goroleak.go) guards the serving/batch
// layers' cancellation and locking contracts, and fpexclude.go gates the
// fingerprint-neutrality registry that keeps observational knobs provably
// byte-neutral to cached results.
//
// Suppression: a diagnostic is silenced by a `//lint:allow <reason>`
// comment on the flagged line or on the line directly above it. The reason
// is mandatory — a bare `//lint:allow` is itself reported — so every
// suppression carries its proof of safety in the source.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check. Run inspects the package in the Pass and
// reports findings through Pass.Reportf.
type Analyzer struct {
	// Name is the short identifier used in diagnostics and -analyzers
	// filters.
	Name string
	// Doc is the one-line contract the analyzer enforces.
	Doc string
	// Applies filters packages by import path; nil means every package.
	Applies func(importPath string) bool
	// Run performs the check.
	Run func(*Pass)
}

// Diagnostic is one reported finding, position-resolved.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the conventional file:line:col: [name] message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer   *Analyzer
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	TypesInfo  *types.Info
	ImportPath string
	// Dir is the package's source directory (fpexclude scans its _test.go
	// files for the equivalence tests the neutrality registry names).
	Dir string

	suppress map[string]map[int]*directive // filename -> line -> directive
	diags    *[]Diagnostic
}

// Reportf records a diagnostic at pos unless a lint:allow comment covers
// that line. A directive that suppresses at least one diagnostic is marked
// used, which is what keeps it off the unused-suppression report.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	position := p.Fset.Position(pos)
	if lines, ok := p.suppress[position.Filename]; ok && lines[position.Line] != nil {
		lines[position.Line].used = true
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// allowDirective is the suppression comment prefix.
const allowDirective = "lint:allow"

// UnusedAllowName is the pseudo-analyzer unused suppressions are reported
// under: a //lint:allow directive that silenced no diagnostic during a
// full-suite run is stale — the finding it excused was fixed, moved, or
// never existed — and stale suppressions are how real findings sneak back
// in unnoticed.
const UnusedAllowName = "unusedallow"

// directive is one parsed //lint:allow comment.
type directive struct {
	pos    token.Position
	reason string
	used   bool
}

// buildSuppressions indexes every lint:allow comment in the files: a
// directive on line N silences diagnostics on lines N and N+1 (trailing
// and whole-line placements respectively). Bare directives with no reason
// are returned as diagnostics themselves.
func buildSuppressions(fset *token.FileSet, files []*ast.File) (map[string]map[int]*directive, []*directive, []Diagnostic) {
	sup := make(map[string]map[int]*directive)
	var all []*directive
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, allowDirective) {
					continue
				}
				reason := strings.TrimSpace(strings.TrimPrefix(text, allowDirective))
				pos := fset.Position(c.Pos())
				if reason == "" {
					bad = append(bad, Diagnostic{
						Pos:      pos,
						Analyzer: "lint",
						Message:  "lint:allow requires a reason (//lint:allow <why this is safe>)",
					})
					continue
				}
				d := &directive{pos: pos, reason: reason}
				all = append(all, d)
				if sup[pos.Filename] == nil {
					sup[pos.Filename] = make(map[int]*directive)
				}
				sup[pos.Filename][pos.Line] = d
				sup[pos.Filename][pos.Line+1] = d
			}
		}
	}
	return sup, all, bad
}

// RunAnalyzers applies every applicable analyzer to the package and returns
// the surviving diagnostics sorted by position. Malformed suppression
// directives are reported exactly once per package regardless of how many
// analyzers ran.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	diags, _ := RunAnalyzersTracked(pkg, analyzers)
	return diags
}

// RunAnalyzersTracked is RunAnalyzers plus unused-suppression tracking: the
// second slice reports (under UnusedAllowName) every //lint:allow directive
// that silenced nothing. The report is only meaningful when every analyzer
// of the suite ran — a subset run leaves directives for the omitted
// analyzers legitimately unused — so cmd/simlint consults it only for
// full-suite invocations.
func RunAnalyzersTracked(pkg *Package, analyzers []*Analyzer) (diags, unused []Diagnostic) {
	var out []Diagnostic
	sup, all, bad := buildSuppressions(pkg.Fset, pkg.Files)
	out = append(out, bad...)
	for _, a := range analyzers {
		if a.Applies != nil && !a.Applies(pkg.ImportPath) {
			continue
		}
		pass := &Pass{
			Analyzer:   a,
			Fset:       pkg.Fset,
			Files:      pkg.Files,
			Pkg:        pkg.Types,
			TypesInfo:  pkg.Info,
			ImportPath: pkg.ImportPath,
			Dir:        pkg.Dir,
			suppress:   sup,
			diags:      &out,
		}
		a.Run(pass)
	}
	sortDiagnostics(out)
	for _, d := range all {
		if !d.used {
			unused = append(unused, Diagnostic{
				Pos:      d.pos,
				Analyzer: UnusedAllowName,
				Message:  fmt.Sprintf("//lint:allow %s suppresses nothing; remove the stale directive", d.reason),
			})
		}
	}
	sortDiagnostics(unused)
	return out, unused
}

func sortDiagnostics(out []Diagnostic) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
