package analysis

import (
	"go/ast"
	"go/token"
	"reflect"
	"strconv"
	"strings"
)

// Statsjson guards the run-cache key against schema drift in
// internal/core. The cache stores Stats under a key derived from
// Config.Fingerprint(), which serializes a shadow copy of Config with the
// non-serializable fields (the prefetcher interface, the triggers map)
// cleared and replaced by canonical forms in configFingerprint. Three
// things silently break that contract:
//
//  1. an unexported or json:"-" field on Stats — dropped from the
//     canonical Stats JSON, so cached snapshots lose data;
//  2. an unexported field on Config — invisible to json.Marshal, so two
//     semantically different configs share a fingerprint;
//  3. a Config field cleared inside Fingerprint (or excluded via
//     json:"-") without a matching canonical field on configFingerprint —
//     the fingerprint stops distinguishing values of that field.
//
// Deliberately fingerprint-inert fields (pure observability toggles that
// cannot change simulated results) are instead registered in the package's
// FingerprintNeutral registry, where fpexclude verifies each one names an
// existing equivalence test.
var Statsjson = &Analyzer{
	Name: "statsjson",
	Doc:  "verifies every field behind canonical Stats JSON is covered by Config.Fingerprint()",
	Applies: func(importPath string) bool {
		return strings.HasSuffix(importPath, "internal/core")
	},
	Run: runStatsjson,
}

// fieldInfo is one struct field as the analyzer sees it.
type fieldInfo struct {
	name     string
	exported bool
	jsonSkip bool // tagged json:"-"
	pos      token.Pos
}

func runStatsjson(pass *Pass) {
	structs := map[string][]fieldInfo{}
	structPos := map[string]token.Pos{}
	registered := map[string]bool{}
	var fingerprintBody *ast.BlockStmt

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.TypeSpec:
				st, ok := d.Type.(*ast.StructType)
				if !ok {
					return true
				}
				structs[d.Name.Name] = structFields(st)
				structPos[d.Name.Name] = d.Pos()
			case *ast.FuncDecl:
				if d.Name.Name == "Fingerprint" && d.Recv != nil && recvTypeName(d.Recv) == "Config" {
					fingerprintBody = d.Body
				}
			case *ast.ValueSpec:
				// Fields in the FingerprintNeutral registry are audited by
				// fpexclude (registration + existing equivalence test), so
				// their exclusion from the fingerprint is proven, not drift.
				for i, name := range d.Names {
					if name.Name != neutralityRegistryName || i >= len(d.Values) {
						continue
					}
					if cl, ok := d.Values[i].(*ast.CompositeLit); ok {
						for _, elt := range cl.Elts {
							if kv, ok := elt.(*ast.KeyValueExpr); ok {
								if key, ok := stringLit(kv.Key); ok {
									registered[key] = true
								}
							}
						}
					}
				}
			}
			return true
		})
	}

	anchor := pass.Files[0].Name.Pos()
	cfgFields, haveCfg := structs["Config"]
	statsFields, haveStats := structs["Stats"]
	canonFields, haveCanon := structs["configFingerprint"]
	if !haveCfg || !haveStats {
		pass.Reportf(anchor, "package must declare Config and Stats structs (the run-cache key and value schemas)")
		return
	}
	if fingerprintBody == nil {
		pass.Reportf(structPos["Config"], "Config has no Fingerprint() method; the run cache cannot key on it")
		return
	}
	if !haveCanon {
		pass.Reportf(structPos["Config"], "missing configFingerprint struct: Fingerprint() has no canonical serialized form to audit against")
		return
	}

	// 1. Every Stats field must survive the canonical JSON round trip.
	for _, fld := range statsFields {
		if !fld.exported {
			pass.Reportf(fld.pos, "Stats field %s is unexported: it is dropped from the canonical Stats JSON and silently lost through the run cache", fld.name)
		} else if fld.jsonSkip {
			pass.Reportf(fld.pos, "Stats field %s is tagged json:\"-\": cached snapshots will lose it", fld.name)
		}
	}

	canonNames := map[string]bool{}
	for _, fld := range canonFields {
		canonNames[strings.ToLower(fld.name)] = true
	}

	// Fields cleared from the shadow Config inside Fingerprint.
	cleared := clearedFieldNames(fingerprintBody)

	// 2+3. Every Config field must reach the fingerprint: serialized
	// directly, or cleared/excluded with a canonical replacement.
	for _, fld := range cfgFields {
		switch {
		case !fld.exported:
			pass.Reportf(fld.pos, "Config field %s is unexported: json.Marshal skips it, so configs differing only in %s share a fingerprint and collide in the run cache", fld.name, fld.name)
		case fld.jsonSkip && !canonNames[strings.ToLower(fld.name)] && !registered[fld.name]:
			pass.Reportf(fld.pos, "Config field %s is excluded from serialization (json:\"-\") with no canonical %s field on configFingerprint: the fingerprint cannot distinguish its values", fld.name, fld.name)
		}
	}
	for name, pos := range cleared {
		if !canonNames[strings.ToLower(name)] {
			pass.Reportf(pos, "Fingerprint clears field %s from the shadow Config but configFingerprint has no canonical %s replacement: its values no longer reach the fingerprint", name, name)
		}
	}

	// Reverse direction: canonical fields must replace something real, or
	// they are dead weight that still perturbs the hash across refactors.
	for _, fld := range canonFields {
		if fld.name == "Schema" || fld.name == "Config" {
			continue
		}
		if _, ok := cleared[fld.name]; !ok {
			pass.Reportf(fld.pos, "configFingerprint field %s does not correspond to any field cleared from the serialized Config inside Fingerprint", fld.name)
		}
	}
}

func structFields(st *ast.StructType) []fieldInfo {
	var out []fieldInfo
	for _, f := range st.Fields.List {
		skip := false
		if f.Tag != nil {
			if tag, err := strconv.Unquote(f.Tag.Value); err == nil {
				jsonTag := reflect.StructTag(tag).Get("json")
				skip = jsonTag == "-"
			}
		}
		if len(f.Names) == 0 {
			// Embedded field: name is the type's base identifier.
			name := embeddedName(f.Type)
			if name != "" {
				out = append(out, fieldInfo{name: name, exported: ast.IsExported(name), jsonSkip: skip, pos: f.Pos()})
			}
			continue
		}
		for _, n := range f.Names {
			out = append(out, fieldInfo{name: n.Name, exported: n.IsExported(), jsonSkip: skip, pos: n.Pos()})
		}
	}
	return out
}

func embeddedName(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.StarExpr:
		return embeddedName(v.X)
	case *ast.SelectorExpr:
		return v.Sel.Name
	}
	return ""
}

func recvTypeName(recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return ""
	}
	return embeddedName(recv.List[0].Type)
}

// clearedFieldNames collects the final selector name of every assignment
// of the form `shadow.X...Y = <expr>` inside Fingerprint — the fields the
// method strips from the serialized Config before hashing.
func clearedFieldNames(body *ast.BlockStmt) map[string]token.Pos {
	out := map[string]token.Pos{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN {
			return true
		}
		for _, lhs := range as.Lhs {
			if sel, ok := lhs.(*ast.SelectorExpr); ok {
				out[sel.Sel.Name] = sel.Pos()
			}
		}
		return true
	})
	return out
}
