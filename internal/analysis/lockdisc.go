package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Lockdisc enforces mutex discipline over sync.Mutex / sync.RWMutex:
// every Lock/RLock must be released on all paths — by a defer or a
// provably-paired Unlock — and the critical section must not perform a
// potentially-unbounded wait while the lock is held: no channel send or
// receive, no blocking select, no Wait (sync.Cond.Wait excepted — it
// releases the lock), no sleep, no I/O.
//
// The pairing model is source-ordered and per-function-body: a Lock pairs
// with the first matching Unlock after it (or a defer, or — for
// bottom-of-loop re-lock patterns like a worker's unlock-around-run — an
// earlier Unlock inside the innermost enclosing loop). Function literals
// are separate bodies: a lock in one cannot be released in another.
// Branch-dependent regions beyond the first unlock are not re-scanned;
// the analyzer is deliberately conservative-incomplete rather than noisy.
var Lockdisc = &Analyzer{
	Name: "lockdisc",
	Doc:  "every mutex lock is released on all paths and never held across a channel op, Wait, or I/O call",
	Run:  runLockdisc,
}

// lockEvent is one Lock/Unlock-family call site.
type lockEvent struct {
	recv   string // rendered receiver expression, e.g. "p.mu"
	method string // Lock, Unlock, RLock, RUnlock
	pos    token.Pos
	end    token.Pos
}

func runLockdisc(pass *Pass) {
	for _, f := range pass.Files {
		for _, body := range functionBodies(f) {
			lockdiscBody(pass, body)
		}
	}
}

// functionBodies collects every function body in the file — FuncDecl and
// FuncLit alike — each analyzed as an independent lock scope.
func functionBodies(f *ast.File) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	ast.Inspect(f, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncDecl:
			if v.Body != nil {
				out = append(out, v.Body)
			}
		case *ast.FuncLit:
			out = append(out, v.Body)
		}
		return true
	})
	return out
}

// inspectShallow walks root but does not descend into nested function
// literals: their bodies run on their own schedule, not in this lock scope.
func inspectShallow(root ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}

func lockdiscBody(pass *Pass, body *ast.BlockStmt) {
	var events []lockEvent // lock and unlock calls in source order
	var defers []lockEvent // unlocks scheduled by defer (incl. in deferred closures)
	var loops []ast.Stmt   // for/range statements, for wrap-around pairing
	inspectShallow(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, v.(ast.Stmt))
		case *ast.DeferStmt:
			if ev, ok := mutexOp(pass, v.Call); ok && isUnlock(ev.method) {
				ev.pos = v.Pos()
				defers = append(defers, ev)
			}
			if lit, ok := v.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if call, ok := m.(*ast.CallExpr); ok {
						if ev, ok := mutexOp(pass, call); ok && isUnlock(ev.method) {
							ev.pos = v.Pos()
							defers = append(defers, ev)
						}
					}
					return true
				})
			}
			return false // a defer's effects happen at return, not here
		case *ast.CallExpr:
			if ev, ok := mutexOp(pass, v); ok {
				events = append(events, ev)
			}
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	for _, lk := range events {
		if isUnlock(lk.method) {
			continue
		}
		unlockName := "Unlock"
		if lk.method == "RLock" {
			unlockName = "RUnlock"
		}

		// Defer-released: critical section runs to the end of the body.
		deferred := false
		for _, d := range defers {
			if d.recv == lk.recv && d.method == unlockName && d.pos > lk.pos {
				deferred = true
				break
			}
		}
		if deferred {
			scanHeld(pass, body, lk, lk.end, body.End(), false)
			continue
		}

		// Paired: first matching unlock after the lock.
		var until token.Pos
		for _, u := range events {
			if u.recv == lk.recv && u.method == unlockName && u.pos > lk.pos {
				until = u.pos
				break
			}
		}
		if until != token.NoPos {
			scanHeld(pass, body, lk, lk.end, until, true)
			continue
		}

		// Bottom-of-loop re-lock: the matching unlock is at the top of the
		// next iteration of the innermost enclosing loop.
		if loop := innermostLoop(loops, lk.pos); loop != nil {
			wrapped := false
			for _, u := range events {
				if u.recv == lk.recv && u.method == unlockName &&
					u.pos >= loop.Pos() && u.pos < lk.pos {
					wrapped = true
					break
				}
			}
			if wrapped {
				scanHeld(pass, body, lk, lk.end, loop.End(), false)
				continue
			}
		}
		pass.Reportf(lk.pos, "%s.%s() is never released on some path; add defer %s.%s() or a paired %s", lk.recv, lk.method, lk.recv, unlockName, unlockName)
	}
}

// innermostLoop returns the smallest loop statement whose span contains pos.
func innermostLoop(loops []ast.Stmt, pos token.Pos) ast.Stmt {
	var best ast.Stmt
	for _, l := range loops {
		if l.Pos() <= pos && pos < l.End() {
			if best == nil || l.Pos() > best.Pos() {
				best = l
			}
		}
	}
	return best
}

// scanHeld reports blocking operations between start and end — the span the
// lock is provably held. checkReturn additionally flags returns inside a
// paired (non-defer) critical section, which leak the lock.
func scanHeld(pass *Pass, body *ast.BlockStmt, lk lockEvent, start, end token.Pos, checkReturn bool) {
	held := func(n ast.Node) bool { return n.Pos() > start && n.Pos() < end }
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit, *ast.DeferStmt, *ast.GoStmt:
			// Not executed synchronously inside the critical section.
			return false
		case *ast.SelectStmt:
			if held(v) {
				if !selectHasDefault(v) {
					pass.Reportf(v.Pos(), "blocking select while %s is held; release the lock first", lk.recv)
				}
				// A select's comm cases are its own (possibly non-blocking)
				// protocol; don't re-flag them individually.
				return false
			}
		case *ast.SendStmt:
			if held(v) {
				pass.Reportf(v.Pos(), "channel send while %s is held; release the lock first", lk.recv)
			}
		case *ast.UnaryExpr:
			if v.Op == token.ARROW && held(v) {
				pass.Reportf(v.Pos(), "channel receive while %s is held; release the lock first", lk.recv)
			}
		case *ast.RangeStmt:
			if held(v) && isChanType(pass, v.X) {
				pass.Reportf(v.Pos(), "range over channel while %s is held; release the lock first", lk.recv)
			}
		case *ast.ReturnStmt:
			if checkReturn && held(v) {
				pass.Reportf(v.Pos(), "return while %s is held; unlock before returning or use defer", lk.recv)
			}
		case *ast.CallExpr:
			if held(v) {
				checkHeldCall(pass, v, lk)
			}
		}
		return true
	})
}

func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// ioPkgs are packages whose calls can block on the outside world.
var ioPkgs = map[string]bool{
	"os":       true,
	"os/exec":  true,
	"io":       true,
	"io/fs":    true,
	"bufio":    true,
	"net":      true,
	"net/http": true,
}

// ioExempt are ioPkgs functions that only read process-local state.
var ioExempt = map[string]bool{
	"Getenv":     true,
	"LookupEnv":  true,
	"Environ":    true,
	"Getpid":     true,
	"Getppid":    true,
	"IsNotExist": true,
	"IsExist":    true,
}

// checkHeldCall flags calls that can block unboundedly under a lock.
func checkHeldCall(pass *Pass, call *ast.CallExpr, lk lockEvent) {
	fn := calleeFunc(pass, call.Fun)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	pkg := fn.Pkg().Path()
	name := fn.Name()
	if pkg == "sync" {
		// sync.Cond.Wait releases the lock while it sleeps — that is the
		// whole point of a condition variable — and the non-Wait sync calls
		// (Broadcast, Signal, nested Lock) are bounded. sync.WaitGroup.Wait
		// is NOT exempt: it blocks until goroutines that may need this very
		// lock have finished.
		if name != "Wait" || recvBaseName(fn) == "Cond" {
			return
		}
		pass.Reportf(call.Pos(), "sync.%s.Wait while %s is held can deadlock against the goroutines being waited on; release the lock first", recvBaseName(fn), lk.recv)
		return
	}
	switch {
	case name == "Wait" || name == "WaitCtx":
		pass.Reportf(call.Pos(), "%s while %s is held can deadlock against the goroutine that would unblock it; release the lock first", name, lk.recv)
	case pkg == "time" && name == "Sleep":
		pass.Reportf(call.Pos(), "time.Sleep while %s is held stalls every contender; release the lock first", lk.recv)
	case ioPkgs[pkg] && !ioExempt[name]:
		pass.Reportf(call.Pos(), "I/O call %s.%s while %s is held; release the lock first", pkg, name, lk.recv)
	}
}

// mutexOp classifies call as a sync.Mutex / sync.RWMutex lock-family call.
func mutexOp(pass *Pass, call *ast.CallExpr) (lockEvent, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockEvent{}, false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockEvent{}, false
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return lockEvent{}, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return lockEvent{}, false
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return lockEvent{}, false
	}
	if n := named.Obj().Name(); n != "Mutex" && n != "RWMutex" {
		return lockEvent{}, false
	}
	return lockEvent{
		recv:   exprString(sel.X),
		method: fn.Name(),
		pos:    call.Pos(),
		end:    call.End(),
	}, true
}

func isUnlock(method string) bool { return method == "Unlock" || method == "RUnlock" }

// recvBaseName is the receiver's named-type identifier ("Cond",
// "WaitGroup"), or "" for plain functions.
func recvBaseName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// isChanType reports whether e's type is a channel.
func isChanType(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}
