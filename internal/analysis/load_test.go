package analysis_test

import (
	"go/constant"
	"go/types"
	"path/filepath"
	"strings"
	"testing"

	"frontsim/internal/analysis"
)

// newLoader builds a loader rooted at the module (tests run with the
// package directory as cwd).
func newLoader(t *testing.T) *analysis.Loader {
	t.Helper()
	l, err := analysis.NewLoader(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	return l
}

// loadTagFixture loads the build-tag fixture under the given tags and
// returns the loaded file basenames plus the Mode constant's value.
func loadTagFixture(t *testing.T, tags []string) (map[string]bool, string) {
	t.Helper()
	l := newLoader(t)
	if tags != nil {
		l.SetBuildTags(tags)
	}
	pkg, err := l.LoadDir(filepath.Join("testdata", "tags"), "frontsim/internal/tagfix")
	if err != nil {
		t.Fatalf("loading tag fixture: %v", err)
	}
	files := make(map[string]bool)
	for _, f := range pkg.Files {
		files[filepath.Base(pkg.Fset.Position(f.Pos()).Filename)] = true
	}
	obj, ok := pkg.Types.Scope().Lookup("Mode").(*types.Const)
	if !ok {
		t.Fatalf("tag fixture lost the Mode constant (files: %v)", files)
	}
	return files, constant.StringVal(obj.Val())
}

func TestLoaderBuildTagFiltering(t *testing.T) {
	files, mode := loadTagFixture(t, nil)
	if !files["base.go"] || !files["audit_off.go"] || files["audit_on.go"] {
		t.Errorf("default tags loaded wrong file set: %v", files)
	}
	if mode != "noaudit" {
		t.Errorf("default tags: Mode = %q, want noaudit", mode)
	}

	files, mode = loadTagFixture(t, []string{"audit"})
	if !files["base.go"] || !files["audit_on.go"] || files["audit_off.go"] {
		t.Errorf("-tags audit loaded wrong file set: %v", files)
	}
	if mode != "audit" {
		t.Errorf("-tags audit: Mode = %q, want audit", mode)
	}
}

// TestUnusedSuppressionTracking pins the stale-directive report: a
// //lint:allow that silences a real diagnostic is used; one that silences
// nothing is reported under the unusedallow pseudo-analyzer.
func TestUnusedSuppressionTracking(t *testing.T) {
	l := newLoader(t)
	pkg, err := l.LoadDir(filepath.Join("testdata", "unusedallow"), "frontsim/internal/stats")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags, unused := analysis.RunAnalyzersTracked(pkg, analysis.All())
	if len(diags) != 0 {
		t.Fatalf("fixture should lint clean (the float compare is suppressed), got %v", diags)
	}
	if len(unused) != 1 {
		t.Fatalf("want exactly 1 stale directive, got %v", unused)
	}
	u := unused[0]
	if u.Analyzer != analysis.UnusedAllowName {
		t.Errorf("stale directive reported under %q, want %q", u.Analyzer, analysis.UnusedAllowName)
	}
	if want := "stale on purpose"; !strings.Contains(u.Message, want) {
		t.Errorf("stale report %q does not quote the directive reason %q", u.Message, want)
	}
}
